// Activedata: the Big Active Data extension ([17], "Breaking BAD") — a
// repetitive channel (a parameterized standing query) whose fresh results
// are pushed to subscribed brokers, built as a layer over the engine just
// as BAD extends AsterixDB.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"asterix"
	"asterix/internal/adm"
	"asterix/internal/bad"
)

// executor adapts the DB to the channel's query interface.
type executor struct{ db *asterix.DB }

func (e executor) QueryRows(ctx context.Context, src string) ([]adm.Value, error) {
	res, err := e.db.Query(ctx, src)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func main() {
	dir, err := os.MkdirTemp("", "asterix-bad-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	db, err := asterix.Open(asterix.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.Execute(ctx, `
		CREATE TYPE ReportType AS {id: int, severity: int, place: string};
		CREATE DATASET EmergencyReports(ReportType) PRIMARY KEY id;`); err != nil {
		log.Fatal(err)
	}

	// A channel: "emergencies at or above my severity threshold".
	ch := bad.NewChannel(executor{db},
		"EmergenciesNearMe",
		`SELECT r.id AS id, r.severity AS severity, r.place AS place
		 FROM EmergencyReports r
		 WHERE r.severity >= minSeverity`,
		50*time.Millisecond)

	// Two brokers with different thresholds.
	casual := ch.Subscribe(map[string]adm.Value{"minSeverity": adm.Int64(3)})
	vigilant := ch.Subscribe(map[string]adm.Value{"minSeverity": adm.Int64(1)})

	chCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- ch.Run(chCtx) }()

	report := func(id, severity int, place string) {
		stmt := fmt.Sprintf(`UPSERT INTO EmergencyReports ({"id": %d, "severity": %d, "place": %q});`,
			id, severity, place)
		if _, err := db.Execute(ctx, stmt); err != nil {
			log.Fatal(err)
		}
	}

	report(1, 2, "Aldrich Park")
	report(2, 4, "Engineering Hall")

	recv := func(name string, sub *bad.Subscription) {
		select {
		case batch := <-sub.C:
			for _, v := range batch {
				fmt.Printf("[%s] %s\n", name, adm.ToJSON(v))
			}
		case <-time.After(2 * time.Second):
			fmt.Printf("[%s] (no delivery)\n", name)
		}
	}
	// Vigilant sees both; casual only severity >= 3.
	recv("vigilant", vigilant)
	recv("casual", casual)

	// A new high-severity report: both brokers get exactly the new one.
	report(3, 5, "Student Center")
	fmt.Println("-- new severity-5 report filed --")
	recv("vigilant", vigilant)
	recv("casual", casual)

	stop()
	<-done
	ch.Unsubscribe(casual)
	ch.Unsubscribe(vigilant)
}
