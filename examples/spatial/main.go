// Spatial: the paper's Section V-B study in miniature — the same spatial
// query answered by four different LSM spatial indexes (R-tree, Z-order
// B+tree, Hilbert B+tree, grid), showing that index-portion differences
// wash out once end-to-end object fetch is included, which is why
// AsterixDB ships "just" the R-tree.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"asterix"
	"asterix/internal/adm"
)

func main() {
	dir, err := os.MkdirTemp("", "asterix-spatial-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	db, err := asterix.Open(asterix.Config{DataDir: dir, Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.Execute(ctx, `
		CREATE TYPE TweetType AS {id: int, loc: point, text: string};
		CREATE DATASET Tweets(TweetType) PRIMARY KEY id;`); err != nil {
		log.Fatal(err)
	}

	const n = 30000
	r := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		if err := db.Upsert("Tweets", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "loc", Value: adm.Point{
				X: -180 + r.Float64()*360,
				Y: -90 + r.Float64()*180,
			}},
			adm.Field{Name: "text", Value: adm.String(fmt.Sprintf("tweet %d", i))},
		)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Loaded %d geotagged records.\n\n", n)

	query := `SELECT VALUE t.id FROM Tweets t
		WHERE spatial_intersect(t.loc, create_rectangle(-10.0, -10.0, 10.0, 10.0));`

	fmt.Println("index      rows   end-to-end")
	for _, kind := range []string{"RTREE", "ZORDER", "HILBERT", "GRID"} {
		if _, err := db.Execute(ctx, fmt.Sprintf(
			`CREATE INDEX spIdx ON Tweets(loc) TYPE %s;`, kind)); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := db.Query(ctx, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %5d  %v\n", kind, len(res.Rows), time.Since(t0).Round(100*time.Microsecond))
		if _, err := db.Execute(ctx, `DROP INDEX Tweets.spIdx;`); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nPlan with an R-tree in place:")
	if _, err := db.Execute(ctx, `CREATE INDEX spIdx ON Tweets(loc) TYPE RTREE;`); err != nil {
		log.Fatal(err)
	}
	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	fmt.Println(`Per Section V-B, the differences between index types live in the
index-only portion; end-to-end they are "noticeable but relatively minor",
so the shipped system keeps only the R-tree (it also handles non-points).`)
}
