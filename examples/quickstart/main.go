// Quickstart: open an embedded instance, define a schema, store JSON-ish
// records, and query them with SQL++.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"asterix"
)

func main() {
	dir, err := os.MkdirTemp("", "asterix-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	db, err := asterix.Open(asterix.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// DDL: an open type (extra fields welcome) and a dataset.
	if _, err := db.Execute(ctx, `
		CREATE TYPE CustomerType AS {
			id: int,
			name: string,
			rating: double?
		};
		CREATE DATASET Customers(CustomerType) PRIMARY KEY id;
		CREATE INDEX ratingIdx ON Customers(rating);
	`); err != nil {
		log.Fatal(err)
	}

	// DML: records may carry undeclared fields ("schema optional").
	if _, err := db.Execute(ctx, `
		UPSERT INTO Customers ([
			{"id": 1, "name": "Ada",   "rating": 4.5, "city": "London"},
			{"id": 2, "name": "Grace", "rating": 4.9},
			{"id": 3, "name": "Edsger","rating": 3.7, "tags": ["formal", "concise"]},
			{"id": 4, "name": "Barbara"}
		]);
	`); err != nil {
		log.Fatal(err)
	}

	// Query: missing fields are handled, not errors.
	res, err := db.Query(ctx, `
		SELECT c.name AS name,
		       CASE WHEN c.rating IS MISSING THEN "unrated"
		            ELSE to_string(c.rating) END AS rating
		FROM Customers c
		ORDER BY c.name;
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers:")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}

	// The optimizer uses the secondary index for range predicates.
	plan, err := db.Explain(`SELECT VALUE c.name FROM Customers c WHERE c.rating >= 4.0;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan for the rating query:")
	fmt.Print(plan)

	res, err = db.Query(ctx, `SELECT VALUE c.name FROM Customers c WHERE c.rating >= 4.0 ORDER BY c.name;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhighly rated:", res.JSONRows())
}
