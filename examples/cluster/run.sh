#!/bin/sh
# Scripted version of README.md: boot a three-process asterixd cluster,
# run a distributed join, re-run it under an injected link fault, kill a
# node and run it once more on the survivors. Exits non-zero if any of
# the three runs fails or returns a short result.
set -eu

ROOT=$(cd "$(dirname "$0")/../.." && pwd)
WORK=$(mktemp -d)
BIN="$WORK/asterixd"
PIDS=""

cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

cd "$ROOT"
go build -o "$BIN" ./cmd/asterixd

start_node() { # id http data peers
	"$BIN" -node-id "$1" -listen "127.0.0.1:$2" -data-listen "127.0.0.1:$3" \
		-peers "$4" -data "$WORK/$1" -hb-interval 50ms -enable-fault-injection &
	PIDS="$PIDS $!"
}

start_node na 19002 19010 'nb=127.0.0.1:19011,nc=127.0.0.1:19012'
start_node nb 19003 19011 'na=127.0.0.1:19010,nc=127.0.0.1:19012'
start_node nc 19004 19012 'na=127.0.0.1:19010,nb=127.0.0.1:19011'

for port in 19002 19003 19004; do
	for _ in $(seq 1 100); do
		curl -sf "http://127.0.0.1:$port/admin/ping" >/dev/null 2>&1 && break
		sleep 0.1
	done
done
sleep 0.5

join() { # id
	curl -sf http://127.0.0.1:19002/query/distributed -d '{
	  "maxAttempts": 6, "sample": 1,
	  "spec": {
	    "id": "'"$1"'",
	    "ops": [
	      {"kind": "gen", "name": "left",  "parallelism": 3, "rows": 200, "keyMod": 100},
	      {"kind": "gen", "name": "right", "parallelism": 3, "rows": 100, "keyMod": 100},
	      {"kind": "hashjoin", "name": "join", "parallelism": 3,
	       "leftCols": [0], "rightCols": [0], "rightWidth": 2},
	      {"kind": "collect", "name": "out", "pin": "@coordinator"}
	    ],
	    "edges": [
	      {"from": 0, "to": 2, "port": 0, "conn": "hash", "hashCols": [0]},
	      {"from": 1, "to": 2, "port": 1, "conn": "hash", "hashCols": [0]},
	      {"from": 2, "to": 3, "port": 0, "conn": "merge"}
	    ]
	  }
	}'
}

check() { # label response
	echo "$2" | grep -q '"resultCount":1800' || {
		echo "FAIL($1): $2" >&2
		exit 1
	}
	echo "ok($1): $2"
}

check clean "$(join walk-clean)"

curl -sf http://127.0.0.1:19003/admin/fault \
	-d '{"spec": "net.drop:error:after=2:times=3:tag=nb"}' >/dev/null
check drop "$(join walk-drop)"
curl -sf http://127.0.0.1:19003/admin/fault -d '{"spec": ""}' >/dev/null

NC_PID=$(echo "$PIDS" | awk '{print $3}')
kill "$NC_PID"
sleep 1.2 # > 8 x 50ms heartbeat silence threshold
check dead "$(join walk-dead)"

echo "cluster walkthrough: all three runs returned the exact join result"
