// Gleambook: the paper's Figure 3 social-media application, end to end —
// the exact DDL of Figure 3(a), the external access log of 3(b), the
// analytical query of 3(c), and the upsert of 3(d), plus the AQL peer
// query and secondary-index demonstrations.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"asterix"
	"asterix/internal/adm"
)

func main() {
	dir, err := os.MkdirTemp("", "asterix-gleambook-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	// A fixed clock makes the Figure 3(c) 30-day window reproducible.
	now, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	db, err := asterix.Open(asterix.Config{
		DataDir:    filepath.Join(dir, "data"),
		Partitions: 4,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// --- Figure 3(a): types, datasets, and indexes ---
	if _, err := db.Execute(ctx, `
CREATE TYPE EmploymentType AS {
	organizationName: string,
	startDate: date,
	endDate: date?
};
CREATE TYPE GleambookUserType AS {
	id: int,
	alias: string,
	name: string,
	userSince: datetime,
	friendIds: {{ int }},
	employment: [EmploymentType]
};
CREATE TYPE GleambookMessageType AS {
	messageId: int,
	authorId: int,
	inResponseTo: int?,
	senderLocation: point?,
	message: string
};
CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId;
CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
CREATE INDEX gbAuthorIdx ON GleambookMessages(authorId) TYPE BTREE;
CREATE INDEX gbSenderLocIndex ON GleambookMessages(senderLocation) TYPE RTREE;
CREATE INDEX gbMessageIdx ON GleambookMessages(message) TYPE KEYWORD;
`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3(a) schema created (B+tree, R-tree, keyword indexes).")

	// --- Synthetic population ---
	r := rand.New(rand.NewSource(1))
	const users = 500
	for i := 0; i < users; i++ {
		since, _ := adm.ParseDatetime(fmt.Sprintf("20%02d-01-01T00:00:00", 10+i%9))
		friends := adm.Multiset{adm.Int64((i + 1) % users), adm.Int64((i + 7) % users)}
		start, _ := adm.ParseDate("2015-06-01")
		if err := db.Upsert("GleambookUsers", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(i)},
			adm.Field{Name: "alias", Value: adm.String(fmt.Sprintf("user%03d", i))},
			adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("User %d", i))},
			adm.Field{Name: "userSince", Value: since},
			adm.Field{Name: "friendIds", Value: friends},
			adm.Field{Name: "employment", Value: adm.Array{adm.NewObject(
				adm.Field{Name: "organizationName", Value: adm.String(fmt.Sprintf("Org%d", i%20))},
				adm.Field{Name: "startDate", Value: start},
			)}},
		)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		msg := adm.NewObject(
			adm.Field{Name: "messageId", Value: adm.Int64(i)},
			adm.Field{Name: "authorId", Value: adm.Int64(int64(r.Intn(users)))},
			adm.Field{Name: "message", Value: adm.String(fmt.Sprintf("msg %d about coverage and plans", i))},
		)
		if i%2 == 0 {
			msg.Set("senderLocation", adm.Point{X: -124 + r.Float64()*58, Y: 25 + r.Float64()*24})
		}
		if err := db.Upsert("GleambookMessages", msg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Loaded 500 users and 2000 messages.")

	// --- Figure 3(d): the UPSERT, verbatim ---
	if _, err := db.Execute(ctx, `
UPSERT INTO GleambookUsers (
	{"id":667,
	 "alias":"dfrump",
	 "name":"DonaldFrump",
	 "nickname":"Frumpkin",
	 "userSince":datetime("2017-01-01T00:00:00"),
	 "friendIds":{{}},
	 "employment":[{"organizationName":"USA",
	                "startDate":date("2017-01-20")}],
	 "gender":"M"}
);`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3(d) upsert applied.")

	// --- Figure 3(b): the external access log ---
	logPath := filepath.Join(dir, "accesses.txt")
	f, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(f, "10.0.%d.%d|2019-03-%02dT%02d:00:00|user%03d|GET|/p%d|200|%d\n",
			i%200, r.Intn(255), 1+r.Intn(28), r.Intn(24), r.Intn(users), i, 200+r.Intn(900))
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Execute(ctx, fmt.Sprintf(`
CREATE TYPE AccessLogType AS CLOSED {
	ip: string, time: string, user: string, verb: string,
	'path': string, stat: int32, size: int32
};
CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
	(("path"="localhost://%s"), ("format"="delimited-text"), ("delimiter"="|"));`, logPath)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3(b) external dataset attached (3000 log lines).")

	// --- Figure 3(c): the analytical query, verbatim ---
	res, err := db.Query(ctx, `
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
      user.alias = logrec.user
  AND datetime(logrec.time) >= startTime
  AND datetime(logrec.time) <= endTime
GROUP BY nf;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 3(c) — recently active users by friend count:")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}

	// --- Index-accelerated queries ---
	res, err = db.Query(ctx, `
		SELECT VALUE m.messageId FROM GleambookMessages m
		WHERE spatial_intersect(m.senderLocation, create_rectangle(-123.0, 37.0, -121.0, 38.5))
		LIMIT 5;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmessages near the Bay Area (R-tree):", res.JSONRows())

	res, err = db.Query(ctx, `
		SELECT VALUE COUNT(*) FROM GleambookMessages m
		WHERE ftcontains(m.message, "coverage");`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("messages mentioning 'coverage' (keyword index):", res.JSONRows())

	// --- The AQL peer language, same engine underneath ---
	aqlRes, err := db.QueryAQL(ctx, `
		for $u in dataset GleambookUsers
		where $u.id = 667
		return {"name": $u.name, "since": $u.userSince}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAQL (deprecated peer) result:", aqlRes.JSONRows())
}
