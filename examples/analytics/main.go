// Analytics: the Couchbase Analytics architecture of the paper's Figure 7
// — an operational KV front end serving reads/writes while its DCP-style
// mutation stream continuously feeds a shadow dataset, over which the
// analytics engine answers SQL++ queries on near-real-time data.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"asterix"
	"asterix/internal/adm"
	"asterix/internal/feed"
)

type sink struct{ db *asterix.DB }

func (s sink) Upsert(dataset string, rec *adm.Object) error { return s.db.Upsert(dataset, rec) }
func (s sink) Delete(dataset string, pk ...adm.Value) error { return s.db.Delete(dataset, pk...) }

func main() {
	dir, err := os.MkdirTemp("", "asterix-analytics-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	db, err := asterix.Open(asterix.Config{DataDir: dir, Partitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// The shadow dataset: keyed by the KV key, otherwise schema-free.
	if _, err := db.Execute(ctx, `
		CREATE TYPE OrderType AS {id: string};
		CREATE DATASET Orders(OrderType) PRIMARY KEY id;`); err != nil {
		log.Fatal(err)
	}

	// The operational store and the DCP-style link.
	store := feed.NewKVStore()
	link := &feed.ShadowLink{Store: store, Sink: sink{db}, Dataset: "Orders", PKField: "id"}
	linkCtx, stopLink := context.WithCancel(ctx)
	linkDone := make(chan error, 1)
	go func() { linkDone <- link.Run(linkCtx, 0) }()

	// The front end does its operational thing: high-rate small writes.
	r := rand.New(rand.NewSource(1))
	cities := []string{"Irvine", "Riverside", "San Diego", "Seattle", "Austin"}
	for i := 0; i < 5000; i++ {
		store.Set(fmt.Sprintf("order::%d", i), adm.NewObject(
			adm.Field{Name: "city", Value: adm.String(cities[r.Intn(len(cities))])},
			adm.Field{Name: "amount", Value: adm.Double(5 + r.Float64()*495)},
			adm.Field{Name: "items", Value: adm.Int64(int64(1 + r.Intn(9)))},
		))
	}
	// A few cancellations too.
	for i := 0; i < 200; i++ {
		store.Delete(fmt.Sprintf("order::%d", r.Intn(5000)))
	}
	fmt.Printf("front end: %d ops applied to the KV store\n", store.Ops)

	// Wait for the shadow to catch up (in production it trails by
	// milliseconds; here we just poll the lag).
	for link.Lag() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("shadow dataset caught up (lag = %d)\n\n", link.Lag())

	// Analytics on fresh data, without touching the front end's path.
	res, err := db.Query(ctx, `
		SELECT o.city AS city,
		       COUNT(*) AS orders,
		       SUM(o.amount) AS revenue,
		       AVG(o.items) AS avgItems
		FROM Orders o
		GROUP BY o.city AS city
		ORDER BY revenue DESC;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by city (near-real-time shadow):")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}

	// More front-end traffic lands in the next analytical answer.
	store.Set("order::big", adm.NewObject(
		adm.Field{Name: "city", Value: adm.String("Irvine")},
		adm.Field{Name: "amount", Value: adm.Double(1_000_000)},
		adm.Field{Name: "items", Value: adm.Int64(1)},
	))
	for link.Lag() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	res, err = db.Query(ctx, `
		SELECT VALUE SUM(o.amount) FROM Orders o WHERE o.city = "Irvine";`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIrvine revenue after the big order:", res.JSONRows())

	stopLink()
	<-linkDone
}
