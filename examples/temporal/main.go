// Temporal: the paper's §V-D user story ("To Make Sure It's Helpful") —
// Gloria Mark's stress-and-multitasking study stored multichannel
// temporal event data and "needed to time-bin their data into various
// sized bins and to deal with the possibility that a given user activity
// might span bins (so they needed to allocate portions of such an
// activity to the relevant bins)". The temporal function support that
// study motivated (interval_bin and friends) is exercised here.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"asterix"
	"asterix/internal/adm"
)

func main() {
	dir, err := os.MkdirTemp("", "asterix-temporal-*")
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore err-discard best-effort cleanup of the demo temp dir
	defer os.RemoveAll(dir)

	db, err := asterix.Open(asterix.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.Execute(ctx, `
		CREATE TYPE ActivityType AS {
			id: int,
			user: string,
			app: string,
			start: datetime,
			durationMins: int
		};
		CREATE DATASET Activities(ActivityType) PRIMARY KEY id;`); err != nil {
		log.Fatal(err)
	}

	// Synthetic multichannel activity log: app sessions of 1–90 minutes
	// across one study day (so many sessions span hour boundaries).
	apps := []string{"email", "browser", "editor", "chat", "music"}
	r := rand.New(rand.NewSource(7))
	base, _ := time.Parse(time.RFC3339, "2014-02-03T08:00:00Z")
	for i := 0; i < 800; i++ {
		start := base.Add(time.Duration(r.Intn(10*60)) * time.Minute)
		if err := db.Upsert("Activities", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "user", Value: adm.String(fmt.Sprintf("student%02d", r.Intn(20)))},
			adm.Field{Name: "app", Value: adm.String(apps[r.Intn(len(apps))])},
			adm.Field{Name: "start", Value: adm.Datetime(start.UnixMilli())},
			adm.Field{Name: "durationMins", Value: adm.Int64(int64(1 + r.Intn(90)))},
		)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Loaded 800 activity sessions (many spanning hour bins).")

	// Simple binning: sessions grouped by the hour they started in.
	res, err := db.Query(ctx, `
		SELECT bin AS hourStart, COUNT(*) AS sessions
		FROM Activities a
		LET bin = interval_bin(a.start, datetime("2014-02-03T00:00:00"), duration("PT1H"))
		GROUP BY bin
		ORDER BY bin
		LIMIT 5;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsessions by starting hour (first 5 bins):")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}

	// The study's real requirement: allocate each session's minutes to
	// every hour bin it overlaps. UNNEST a bin index per spanned hour and
	// compute the per-bin share with temporal arithmetic.
	// UNNEST lives in the FROM clause (SQL++ grammar), so the spanned-bin
	// count is inlined into the range() expression; the LET clause then
	// names the per-bin arithmetic.
	res, err = db.Query(ctx, `
		SELECT bin AS hourStart, SUM(share) AS minutes
		FROM Activities a
		UNNEST range(0, to_bigint(floor(
			(datetime_to_ms(a.start) + a.durationMins * 60000 - 1
			 - datetime_to_ms(interval_bin(a.start, datetime("2014-02-03T00:00:00"), duration("PT1H"))))
			/ 3600000.0))) slot
		LET startMs = datetime_to_ms(a.start),
		    endMs   = startMs + a.durationMins * 60000,
		    binMs   = datetime_to_ms(interval_bin(a.start, datetime("2014-02-03T00:00:00"), duration("PT1H")))
		            + slot * 3600000,
		    overlap = (CASE WHEN endMs < binMs + 3600000 THEN endMs ELSE binMs + 3600000 END)
		            - (CASE WHEN startMs > binMs THEN startMs ELSE binMs END),
		    share   = overlap / 60000.0,
		    bin     = datetime_from_ms(binMs)
		GROUP BY bin
		ORDER BY bin
		LIMIT 6;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nminutes of activity allocated per hour bin (spans split):")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}

	// Per-app breakdown in a coarser (2-hour) binning.
	res, err = db.Query(ctx, `
		SELECT a.app AS app, bin AS slot, COUNT(*) AS sessions
		FROM Activities a
		LET bin = interval_bin(a.start, datetime("2014-02-03T00:00:00"), duration("PT2H"))
		GROUP BY a.app AS app, bin
		HAVING COUNT(*) > 20
		ORDER BY app, slot;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbusy (app, 2-hour slot) pairs:")
	for _, row := range res.JSONRows() {
		fmt.Println(" ", row)
	}
}
