// Package metadata implements the catalog: named types, datasets (native
// and external), and secondary indexes, persisted as a JSON document in
// the data directory (the metadata-node role of Figure 1).
package metadata

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"asterix/internal/adm"
)

// TypeDef is a persisted named object type.
type TypeDef struct {
	Name   string     `json:"name"`
	Closed bool       `json:"closed"`
	Fields []FieldDef `json:"fields"`
}

// FieldDef is one declared field.
type FieldDef struct {
	Name     string  `json:"name"`
	Type     TypeRef `json:"type"`
	Optional bool    `json:"optional,omitempty"`
}

// TypeRef names a type structurally: exactly one member set.
type TypeRef struct {
	Named    string   `json:"named,omitempty"`
	Array    *TypeRef `json:"array,omitempty"`
	Multiset *TypeRef `json:"multiset,omitempty"`
}

// DatasetDef is a persisted dataset definition.
type DatasetDef struct {
	Name       string            `json:"name"`
	TypeName   string            `json:"type"`
	PrimaryKey []string          `json:"primaryKey,omitempty"`
	Partitions int               `json:"partitions"`
	External   bool              `json:"external,omitempty"`
	Adapter    string            `json:"adapter,omitempty"`
	Params     map[string]string `json:"params,omitempty"`
}

// IndexDef is a persisted secondary-index definition.
type IndexDef struct {
	Name    string   `json:"name"`
	Dataset string   `json:"dataset"`
	Fields  []string `json:"fields"`
	Kind    string   `json:"kind"` // BTREE, RTREE, KEYWORD, ZORDER, HILBERT, GRID
}

// Catalog is the in-memory catalog with JSON persistence. All methods are
// safe for concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	path     string
	Types    map[string]*TypeDef
	Datasets map[string]*DatasetDef
	Indexes  map[string]*IndexDef // key: dataset "." index name
}

// Open loads (or initializes) the catalog at dir/metadata.json.
func Open(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Catalog{
		path:     filepath.Join(dir, "metadata.json"),
		Types:    map[string]*TypeDef{},
		Datasets: map[string]*DatasetDef{},
		Indexes:  map[string]*IndexDef{},
	}
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("metadata: %w", err)
	}
	var snap catalogSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("metadata: corrupt catalog: %w", err)
	}
	for _, t := range snap.Types {
		c.Types[t.Name] = t
	}
	for _, d := range snap.Datasets {
		c.Datasets[d.Name] = d
	}
	for _, i := range snap.Indexes {
		c.Indexes[i.Dataset+"."+i.Name] = i
	}
	return c, nil
}

type catalogSnapshot struct {
	Types    []*TypeDef    `json:"types"`
	Datasets []*DatasetDef `json:"datasets"`
	Indexes  []*IndexDef   `json:"indexes"`
}

// save persists the catalog (caller holds mu).
func (c *Catalog) save() error {
	var snap catalogSnapshot
	for _, t := range c.Types {
		snap.Types = append(snap.Types, t)
	}
	for _, d := range c.Datasets {
		snap.Datasets = append(snap.Datasets, d)
	}
	for _, i := range c.Indexes {
		snap.Indexes = append(snap.Indexes, i)
	}
	sort.Slice(snap.Types, func(i, j int) bool { return snap.Types[i].Name < snap.Types[j].Name })
	sort.Slice(snap.Datasets, func(i, j int) bool { return snap.Datasets[i].Name < snap.Datasets[j].Name })
	sort.Slice(snap.Indexes, func(i, j int) bool {
		return snap.Indexes[i].Dataset+snap.Indexes[i].Name < snap.Indexes[j].Dataset+snap.Indexes[j].Name
	})
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// AddType registers a named type.
func (c *Catalog) AddType(t *TypeDef, ifNotExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.Types[t.Name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("metadata: type %q already exists", t.Name)
	}
	c.Types[t.Name] = t
	return c.save()
}

// AddDataset registers a dataset.
func (c *Catalog) AddDataset(d *DatasetDef, ifNotExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.Datasets[d.Name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("metadata: dataset %q already exists", d.Name)
	}
	if !d.External {
		if _, ok := c.Types[d.TypeName]; !ok && d.TypeName != "" {
			return fmt.Errorf("metadata: unknown type %q", d.TypeName)
		}
	}
	c.Datasets[d.Name] = d
	return c.save()
}

// AddIndex registers a secondary index.
func (c *Catalog) AddIndex(i *IndexDef, ifNotExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := i.Dataset + "." + i.Name
	if _, ok := c.Indexes[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("metadata: index %q on %q already exists", i.Name, i.Dataset)
	}
	ds, ok := c.Datasets[i.Dataset]
	if !ok {
		return fmt.Errorf("metadata: unknown dataset %q", i.Dataset)
	}
	if ds.External {
		return fmt.Errorf("metadata: cannot index external dataset %q", i.Dataset)
	}
	c.Indexes[key] = i
	return c.save()
}

// DropDataset removes a dataset and its indexes.
func (c *Catalog) DropDataset(name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.Datasets[name]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("metadata: unknown dataset %q", name)
	}
	delete(c.Datasets, name)
	for k, i := range c.Indexes {
		if i.Dataset == name {
			delete(c.Indexes, k)
		}
	}
	return c.save()
}

// DropType removes a named type.
func (c *Catalog) DropType(name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.Types[name]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("metadata: unknown type %q", name)
	}
	for _, d := range c.Datasets {
		if d.TypeName == name {
			return fmt.Errorf("metadata: type %q is in use by dataset %q", name, d.Name)
		}
	}
	delete(c.Types, name)
	return c.save()
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(dataset, name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := dataset + "." + name
	if _, ok := c.Indexes[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("metadata: unknown index %q on %q", name, dataset)
	}
	delete(c.Indexes, key)
	return c.save()
}

// Dataset looks up a dataset.
func (c *Catalog) Dataset(name string) (*DatasetDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.Datasets[name]
	return d, ok
}

// Type looks up a named type.
func (c *Catalog) Type(name string) (*TypeDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.Types[name]
	return t, ok
}

// IndexesOf returns the indexes on a dataset (sorted by name).
func (c *Catalog) IndexesOf(dataset string) []*IndexDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IndexDef
	for _, i := range c.Indexes {
		if i.Dataset == dataset {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveType materializes a named type (or primitive) into an adm.Type,
// following named references recursively. Unknown names error; depth is
// bounded to defend against recursive definitions.
func (c *Catalog) ResolveType(name string) (*adm.Type, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.resolveRef(TypeRef{Named: name}, 0)
}

// ResolveRef materializes a structural type reference.
func (c *Catalog) ResolveRef(ref TypeRef) (*adm.Type, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.resolveRef(ref, 0)
}

var primitives = map[string]adm.Kind{
	"boolean": adm.KindBoolean,
	"int8":    adm.KindInt64, "int16": adm.KindInt64, "int32": adm.KindInt64,
	"int64": adm.KindInt64, "int": adm.KindInt64, "bigint": adm.KindInt64,
	"float": adm.KindDouble, "double": adm.KindDouble,
	"string": adm.KindString, "date": adm.KindDate, "time": adm.KindTime,
	"datetime": adm.KindDatetime, "duration": adm.KindDuration,
	"point": adm.KindPoint, "rectangle": adm.KindRectangle,
	"uuid": adm.KindUUID, "binary": adm.KindBinary,
}

func (c *Catalog) resolveRef(ref TypeRef, depth int) (*adm.Type, error) {
	if depth > 32 {
		return nil, fmt.Errorf("metadata: type nesting too deep (recursive type?)")
	}
	switch {
	case ref.Array != nil:
		elem, err := c.resolveRef(*ref.Array, depth+1)
		if err != nil {
			return nil, err
		}
		return adm.NewArrayType(elem), nil
	case ref.Multiset != nil:
		elem, err := c.resolveRef(*ref.Multiset, depth+1)
		if err != nil {
			return nil, err
		}
		return adm.NewMultisetType(elem), nil
	case ref.Named != "":
		if ref.Named == "any" {
			return adm.AnyType, nil
		}
		if k, ok := primitives[ref.Named]; ok {
			return adm.Primitive(k), nil
		}
		td, ok := c.Types[ref.Named]
		if !ok {
			return nil, fmt.Errorf("metadata: unknown type %q", ref.Named)
		}
		var fields []adm.FieldType
		for _, f := range td.Fields {
			ft, err := c.resolveRef(f.Type, depth+1)
			if err != nil {
				return nil, err
			}
			fields = append(fields, adm.FieldType{Name: f.Name, Type: ft, Optional: f.Optional})
		}
		return adm.NewObjectType(td.Name, td.Closed, fields...), nil
	}
	return adm.AnyType, nil
}
