package metadata

import (
	"testing"

	"asterix/internal/adm"
)

func newCat(t *testing.T) (*Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c, dir
}

func employmentType() *TypeDef {
	return &TypeDef{Name: "EmploymentType", Fields: []FieldDef{
		{Name: "organizationName", Type: TypeRef{Named: "string"}},
		{Name: "startDate", Type: TypeRef{Named: "date"}},
		{Name: "endDate", Type: TypeRef{Named: "date"}, Optional: true},
	}}
}

func userType() *TypeDef {
	return &TypeDef{Name: "UserType", Fields: []FieldDef{
		{Name: "id", Type: TypeRef{Named: "int64"}},
		{Name: "friendIds", Type: TypeRef{Multiset: &TypeRef{Named: "int64"}}},
		{Name: "employment", Type: TypeRef{Array: &TypeRef{Named: "EmploymentType"}}},
	}}
}

func TestAddAndResolveTypes(t *testing.T) {
	c, _ := newCat(t)
	if err := c.AddType(employmentType(), false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddType(userType(), false); err != nil {
		t.Fatal(err)
	}
	ty, err := c.ResolveType("UserType")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Tag != adm.TagObject || len(ty.Fields) != 3 {
		t.Fatalf("resolved: %s", ty)
	}
	emp, _ := ty.Field("employment")
	if emp.Type.Tag != adm.TagArray || emp.Type.Elem.Name != "EmploymentType" {
		t.Errorf("employment: %s", emp.Type)
	}
	// Duplicate registration.
	if err := c.AddType(userType(), false); err == nil {
		t.Error("duplicate type must fail")
	}
	if err := c.AddType(userType(), true); err != nil {
		t.Errorf("IF NOT EXISTS should be quiet: %v", err)
	}
	// Unknown reference.
	if _, err := c.ResolveType("Nope"); err == nil {
		t.Error("unknown type must fail")
	}
	// Primitives resolve directly.
	p, err := c.ResolveType("string")
	if err != nil || p.Prim != adm.KindString {
		t.Errorf("primitive: %v %v", p, err)
	}
}

func TestDatasetsAndIndexes(t *testing.T) {
	c, _ := newCat(t)
	c.AddType(employmentType(), false)
	c.AddType(userType(), false)
	ds := &DatasetDef{Name: "Users", TypeName: "UserType", PrimaryKey: []string{"id"}, Partitions: 2}
	if err := c.AddDataset(ds, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDataset(ds, false); err == nil {
		t.Error("duplicate dataset must fail")
	}
	if err := c.AddDataset(&DatasetDef{Name: "Bad", TypeName: "Nope"}, false); err == nil {
		t.Error("dataset with unknown type must fail")
	}
	if err := c.AddIndex(&IndexDef{Name: "idx", Dataset: "Users", Fields: []string{"id"}, Kind: "BTREE"}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&IndexDef{Name: "idx", Dataset: "Users", Fields: []string{"id"}, Kind: "BTREE"}, false); err == nil {
		t.Error("duplicate index must fail")
	}
	if err := c.AddIndex(&IndexDef{Name: "x", Dataset: "NoDS", Fields: []string{"a"}, Kind: "BTREE"}, false); err == nil {
		t.Error("index on unknown dataset must fail")
	}
	if got := c.IndexesOf("Users"); len(got) != 1 || got[0].Name != "idx" {
		t.Errorf("IndexesOf: %v", got)
	}
	// Type in use cannot be dropped.
	if err := c.DropType("UserType", false); err == nil {
		t.Error("dropping in-use type must fail")
	}
	// Dropping the dataset removes its indexes.
	if err := c.DropDataset("Users", false); err != nil {
		t.Fatal(err)
	}
	if got := c.IndexesOf("Users"); len(got) != 0 {
		t.Errorf("indexes survived dataset drop: %v", got)
	}
	if err := c.DropDataset("Users", false); err == nil {
		t.Error("double drop must fail")
	}
	if err := c.DropDataset("Users", true); err != nil {
		t.Errorf("IF EXISTS drop should be quiet: %v", err)
	}
	if err := c.DropType("UserType", false); err != nil {
		t.Errorf("type now unused: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	c, dir := newCat(t)
	c.AddType(employmentType(), false)
	c.AddType(userType(), false)
	c.AddDataset(&DatasetDef{Name: "Users", TypeName: "UserType", PrimaryKey: []string{"id"}, Partitions: 4}, false)
	c.AddIndex(&IndexDef{Name: "idx", Dataset: "Users", Fields: []string{"id"}, Kind: "BTREE"}, false)

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := c2.Dataset("Users")
	if !ok || ds.Partitions != 4 || ds.PrimaryKey[0] != "id" {
		t.Fatalf("dataset lost: %+v", ds)
	}
	if _, err := c2.ResolveType("UserType"); err != nil {
		t.Fatal(err)
	}
	if got := c2.IndexesOf("Users"); len(got) != 1 {
		t.Fatalf("index lost: %v", got)
	}
}

func TestExternalDatasetRules(t *testing.T) {
	c, _ := newCat(t)
	c.AddType(employmentType(), false)
	ext := &DatasetDef{Name: "Log", TypeName: "EmploymentType", External: true,
		Adapter: "localfs", Params: map[string]string{"path": "/x"}, Partitions: 2}
	if err := c.AddDataset(ext, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&IndexDef{Name: "i", Dataset: "Log", Fields: []string{"a"}, Kind: "BTREE"}, false); err == nil {
		t.Error("indexing an external dataset must fail")
	}
}

func TestRecursiveTypeBounded(t *testing.T) {
	c, _ := newCat(t)
	c.AddType(&TypeDef{Name: "Loop", Fields: []FieldDef{
		{Name: "next", Type: TypeRef{Named: "Loop"}},
	}}, false)
	if _, err := c.ResolveType("Loop"); err == nil {
		t.Error("recursive type must be rejected, not loop forever")
	}
}
