package core

import (
	"context"
	"strings"
	"testing"
)

// Error-path coverage: a system headed for users needs errors, not
// panics, on every bad input (the paper's §VII hardening lesson —
// "research projects tend to focus mostly on the happy path").

func expectError(t *testing.T, e *Engine, stmt, wantSubstring string) {
	t.Helper()
	_, err := e.Execute(context.Background(), stmt)
	if err == nil {
		t.Fatalf("statement should fail: %s", stmt)
	}
	if wantSubstring != "" && !strings.Contains(err.Error(), wantSubstring) {
		t.Errorf("error %q should mention %q", err.Error(), wantSubstring)
	}
}

func TestErrorPaths(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;`)
	// One row so per-tuple evaluation errors actually surface (expression
	// errors are data-dependent, as in any lazily-evaluated engine).
	mustExec(t, e, `UPSERT INTO D ({"id": 0});`)

	t.Run("unknown dataset in query", func(t *testing.T) {
		expectError(t, e, `SELECT VALUE x FROM Nope x;`, "")
	})
	t.Run("unknown dataset in DML", func(t *testing.T) {
		expectError(t, e, `UPSERT INTO Nope ({"id": 1});`, "Nope")
		expectError(t, e, `DELETE FROM Nope n;`, "Nope")
	})
	t.Run("unknown type", func(t *testing.T) {
		expectError(t, e, `CREATE DATASET D2(NoSuchType) PRIMARY KEY id;`, "NoSuchType")
	})
	t.Run("duplicate dataset", func(t *testing.T) {
		expectError(t, e, `CREATE DATASET D(T) PRIMARY KEY id;`, "already exists")
	})
	t.Run("duplicate type", func(t *testing.T) {
		expectError(t, e, `CREATE TYPE T AS {x: int};`, "already exists")
	})
	t.Run("record missing pk", func(t *testing.T) {
		expectError(t, e, `UPSERT INTO D ({"noid": 5});`, "id")
	})
	t.Run("non-object payload", func(t *testing.T) {
		expectError(t, e, `UPSERT INTO D (42);`, "object")
	})
	t.Run("unknown index kind", func(t *testing.T) {
		expectError(t, e, `CREATE INDEX i ON D(id) TYPE QUADTREE;`, "QUADTREE")
	})
	t.Run("index on unknown dataset", func(t *testing.T) {
		expectError(t, e, `CREATE INDEX i ON Nope(x);`, "Nope")
	})
	t.Run("drop unknown index", func(t *testing.T) {
		expectError(t, e, `DROP INDEX D.nope;`, "nope")
	})
	t.Run("drop unknown dataset", func(t *testing.T) {
		expectError(t, e, `DROP DATASET Nope;`, "Nope")
	})
	t.Run("drop type in use", func(t *testing.T) {
		expectError(t, e, `DROP TYPE T;`, "in use")
	})
	t.Run("syntax error", func(t *testing.T) {
		expectError(t, e, `SELEC VALUE 1;`, "")
		expectError(t, e, `SELECT VALUE FROM D;`, "")
	})
	t.Run("unknown function", func(t *testing.T) {
		expectError(t, e, `SELECT VALUE no_such_fn(d) FROM D d;`, "no_such_fn")
	})
	t.Run("undefined variable", func(t *testing.T) {
		expectError(t, e, `SELECT VALUE zz FROM D d;`, "zz")
	})
	t.Run("negative limit", func(t *testing.T) {
		expectError(t, e, `SELECT VALUE d FROM D d LIMIT -1;`, "LIMIT")
	})
	t.Run("DML into external dataset", func(t *testing.T) {
		mustExec(t, e, `
			CREATE TYPE LT AS CLOSED {a: string};
			CREATE EXTERNAL DATASET Ext(LT) USING localfs
				(("path"="/does/not/exist"), ("format"="delimited-text"));`)
		expectError(t, e, `UPSERT INTO Ext ({"a": "x"});`, "external")
		// Querying a missing external file errors cleanly too.
		expectError(t, e, `SELECT VALUE x FROM Ext x;`, "")
	})
	t.Run("LOAD bad adapter", func(t *testing.T) {
		expectError(t, e, `LOAD DATASET D USING hdfs (("path"="/x"));`, "hdfs")
	})
	// The engine stays usable after all those errors.
	mustExec(t, e, `UPSERT INTO D ({"id": 1});`)
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM D d;`)
	if rows[0].String() != "2" {
		t.Fatalf("engine unusable after error barrage: %v", rows)
	}
}

func TestScriptStopsAtFirstError(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;`)
	results, err := e.Execute(context.Background(), `
		UPSERT INTO D ({"id": 1});
		UPSERT INTO Nope ({"id": 2});
		UPSERT INTO D ({"id": 3});`)
	if err == nil {
		t.Fatal("script should fail")
	}
	if len(results) != 1 {
		t.Fatalf("results before failure: %d", len(results))
	}
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM D d;`)
	if rows[0].String() != "1" {
		t.Fatalf("statement after the failing one must not run: %v", rows)
	}
}

// TestQueryContextCancellation: a cancelled context aborts a running
// parallel query promptly and leaves the engine usable.
func TestQueryContextCancellation(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	seedPoints(t, e, 3000, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the job must fail, not hang
	_, err := e.Query(ctx, `
		SELECT p.v AS v, COUNT(*) AS n FROM Points p, Points q
		WHERE p.v = q.v GROUP BY p.v AS v;`)
	if err == nil {
		t.Fatal("cancelled query should fail")
	}
	// Engine still works.
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Points p;`)
	if rows[0].String() != "3000" {
		t.Fatalf("engine wedged after cancellation: %v", rows)
	}
}

func TestExplainStatement(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	mustExec(t, e, `CREATE INDEX vIdx ON Points(v);`)
	res := mustExec(t, e, `EXPLAIN SELECT VALUE p.id FROM Points p WHERE p.v = 5;`)
	if len(res[0].Rows) != 1 {
		t.Fatalf("explain rows: %v", res[0].Rows)
	}
	plan := res[0].Rows[0].String()
	if !strings.Contains(plan, "index-search") {
		t.Fatalf("explain output:\n%s", plan)
	}
}
