package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"asterix/internal/adm"
)

func newEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Now == nil {
		fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
		cfg.Now = func() time.Time { return fixed }
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func mustExec(t testing.TB, e *Engine, script string) []Result {
	t.Helper()
	res, err := e.Execute(context.Background(), script)
	if err != nil {
		t.Fatalf("execute %q: %v", script, err)
	}
	return res
}

func queryRows(t testing.TB, e *Engine, q string) []adm.Value {
	t.Helper()
	r, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return r.Rows
}

const gleambookDDL = `
CREATE TYPE EmploymentType AS {
	organizationName: string,
	startDate: date,
	endDate: date?
};
CREATE TYPE GleambookUserType AS {
	id: int,
	alias: string,
	name: string,
	userSince: datetime,
	friendIds: {{ int }},
	employment: [EmploymentType]
};
CREATE TYPE GleambookMessageType AS {
	messageId: int,
	authorId: int,
	inResponseTo: int?,
	senderLocation: point?,
	message: string
};
CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId;
`

func seedUsers(t testing.TB, e *Engine, n int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `UPSERT INTO GleambookUsers ({
			"id": %d, "alias": "user%03d", "name": "User %d",
			"userSince": datetime("201%d-01-01T00:00:00"),
			"friendIds": {{ %d, %d }},
			"employment": [{"organizationName": "Org%d", "startDate": date("2015-06-01")}]
		});`, i, i, i, i%8, (i+1)%n, (i+2)%n, i%5)
	}
	mustExec(t, e, sb.String())
}

func TestDDLAndUpsertFigure3(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	// The paper's Figure 3(d) upsert, verbatim shape.
	mustExec(t, e, `
UPSERT INTO GleambookUsers (
	{"id":667,
	 "alias":"dfrump",
	 "name":"DonaldFrump",
	 "nickname":"Frumpkin",
	 "userSince":datetime("2017-01-01T00:00:00"),
	 "friendIds":{{}},
	 "employment":[{"organizationName":"USA",
	                "startDate":date("2017-01-20")}],
	 "gender":"M"}
);`)
	rows := queryRows(t, e, `SELECT VALUE u.name FROM GleambookUsers u WHERE u.id = 667;`)
	if len(rows) != 1 || rows[0].String() != `"DonaldFrump"` {
		t.Fatalf("rows: %v", rows)
	}
	// Upsert replaces.
	mustExec(t, e, `UPSERT INTO GleambookUsers ({
		"id":667, "alias":"dfrump", "name":"Replaced",
		"userSince":datetime("2017-01-01T00:00:00"),
		"friendIds":{{1}}, "employment":[]});`)
	rows = queryRows(t, e, `SELECT VALUE u.name FROM GleambookUsers u WHERE u.id = 667;`)
	if len(rows) != 1 || rows[0].String() != `"Replaced"` {
		t.Fatalf("after upsert: %v", rows)
	}
	// INSERT of a duplicate key must fail.
	if _, err := e.Execute(context.Background(), `INSERT INTO GleambookUsers ({
		"id":667, "alias":"x", "name":"x",
		"userSince":datetime("2017-01-01T00:00:00"),
		"friendIds":{{}}, "employment":[]});`); err == nil {
		t.Fatal("duplicate INSERT should fail")
	}
}

func TestTypeValidationOnInsert(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	// Missing required field `alias`.
	_, err := e.Execute(context.Background(), `UPSERT INTO GleambookUsers ({
		"id": 1, "name": "NoAlias",
		"userSince": datetime("2017-01-01T00:00:00"),
		"friendIds": {{}}, "employment": []});`)
	if err == nil {
		t.Fatal("missing required field must fail validation")
	}
	if !strings.Contains(err.Error(), "alias") {
		t.Errorf("error should mention field: %v", err)
	}
	// Open type admits extra fields.
	mustExec(t, e, `UPSERT INTO GleambookUsers ({
		"id": 1, "alias": "a", "name": "N",
		"userSince": datetime("2017-01-01T00:00:00"),
		"friendIds": {{}}, "employment": [], "extra": "fine"});`)
}

func TestQueryJoinGroupOrder(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 20)
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		loc := ""
		if i%2 == 0 {
			loc = fmt.Sprintf(`"senderLocation": point(%d, %d),`, i%30, i%20)
		}
		fmt.Fprintf(&sb, `UPSERT INTO GleambookMessages ({
			"messageId": %d, "authorId": %d, %s
			"message": "message number %d about topic%d"});`, i, i%20, loc, i, i%7)
	}
	mustExec(t, e, sb.String())

	rows := queryRows(t, e, `
		SELECT u.name AS name, COUNT(m) AS cnt
		FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id
		GROUP BY u.name AS name
		ORDER BY name
		LIMIT 5;`)
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	first := rows[0].(*adm.Object)
	if first.Get("name").String() != `"User 0"` {
		t.Errorf("order wrong: %v", first)
	}
	if c, _ := adm.AsInt(first.Get("cnt")); c != 3 {
		t.Errorf("cnt = %v", first.Get("cnt"))
	}
}

func TestSecondaryIndexUsedAndCorrect(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 50)
	mustExec(t, e, `CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);`)

	plan, err := e.Explain(`SELECT VALUE u.id FROM GleambookUsers u
		WHERE u.userSince >= datetime("2015-01-01T00:00:00")
		  AND u.userSince < datetime("2017-01-01T00:00:00");`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-search") {
		t.Errorf("expected index-search in plan:\n%s", plan)
	}
	rows := queryRows(t, e, `SELECT VALUE u.id FROM GleambookUsers u
		WHERE u.userSince >= datetime("2015-01-01T00:00:00")
		  AND u.userSince < datetime("2017-01-01T00:00:00");`)
	// Users have userSince 201X where X = i%8: years 2015, 2016 → i%8 in {5,6}.
	want := 0
	for i := 0; i < 50; i++ {
		if i%8 == 5 || i%8 == 6 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("index query returned %d, want %d", len(rows), want)
	}
	// Same query without index must agree.
	mustExec(t, e, `DROP INDEX GleambookUsers.gbUserSinceIdx;`)
	rows2 := queryRows(t, e, `SELECT VALUE u.id FROM GleambookUsers u
		WHERE u.userSince >= datetime("2015-01-01T00:00:00")
		  AND u.userSince < datetime("2017-01-01T00:00:00");`)
	if len(rows2) != want {
		t.Fatalf("scan query returned %d, want %d", len(rows2), want)
	}
}

func TestRTreeIndexQuery(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, `UPSERT INTO GleambookMessages ({
			"messageId": %d, "authorId": %d,
			"senderLocation": point(%d.5, %d.5),
			"message": "m%d"});`, i, i, i%20, i/20, i)
	}
	mustExec(t, e, sb.String())
	mustExec(t, e, `CREATE INDEX locIdx ON GleambookMessages(senderLocation) TYPE RTREE;`)
	plan, _ := e.Explain(`SELECT VALUE m.messageId FROM GleambookMessages m
		WHERE spatial_intersect(m.senderLocation, create_rectangle(0.0, 0.0, 5.0, 2.0));`)
	if !strings.Contains(plan, "RTREE") {
		t.Errorf("expected rtree index search:\n%s", plan)
	}
	rows := queryRows(t, e, `SELECT VALUE m.messageId FROM GleambookMessages m
		WHERE spatial_intersect(m.senderLocation, create_rectangle(0.0, 0.0, 5.0, 2.0));`)
	// Points (i%20+0.5, i/20+0.5) inside [0,5]x[0,2]: x in {0..4}.5 -> i%20 in 0..4, y in {0,1}.5 -> i/20 in 0..1.
	want := 0
	for i := 0; i < 100; i++ {
		x, y := float64(i%20)+0.5, float64(i/20)+0.5
		if x <= 5 && y <= 2 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("spatial query returned %d, want %d", len(rows), want)
	}
}

func TestKeywordIndexQuery(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		word := "common"
		if i%10 == 0 {
			word = "needle"
		}
		fmt.Fprintf(&sb, `UPSERT INTO GleambookMessages ({
			"messageId": %d, "authorId": %d,
			"message": "some %s text here"});`, i, i, word)
	}
	mustExec(t, e, sb.String())
	mustExec(t, e, `CREATE INDEX msgIdx ON GleambookMessages(message) TYPE KEYWORD;`)
	plan, _ := e.Explain(`SELECT VALUE m.messageId FROM GleambookMessages m
		WHERE ftcontains(m.message, "needle");`)
	if !strings.Contains(plan, "KEYWORD") {
		t.Errorf("expected keyword index search:\n%s", plan)
	}
	rows := queryRows(t, e, `SELECT VALUE m.messageId FROM GleambookMessages m
		WHERE ftcontains(m.message, "needle");`)
	if len(rows) != 4 {
		t.Fatalf("keyword query returned %d, want 4", len(rows))
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 30)
	mustExec(t, e, `CREATE INDEX aliasIdx ON GleambookUsers(alias);`)
	res := mustExec(t, e, `DELETE FROM GleambookUsers u WHERE u.id < 10;`)
	if res[0].Count != 10 {
		t.Fatalf("deleted %d", res[0].Count)
	}
	rows := queryRows(t, e, `SELECT VALUE u.id FROM GleambookUsers u WHERE u.alias = "user005";`)
	if len(rows) != 0 {
		t.Fatalf("deleted record still visible via index: %v", rows)
	}
	rows = queryRows(t, e, `SELECT VALUE u.id FROM GleambookUsers u WHERE u.alias = "user015";`)
	if len(rows) != 1 {
		t.Fatalf("surviving record lost: %v", rows)
	}
	if n, _ := queryCount(t, e, "GleambookUsers"); n != 20 {
		t.Fatalf("count after delete: %d", n)
	}
}

func queryCount(t testing.TB, e *Engine, ds string) (int64, error) {
	rows := queryRows(t, e, fmt.Sprintf(`SELECT VALUE COUNT(*) FROM %s x;`, ds))
	if len(rows) != 1 {
		return 0, fmt.Errorf("count query returned %d rows", len(rows))
	}
	n, _ := adm.AsInt(rows[0])
	return n, nil
}

func TestExternalDatasetFigure3Query(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "accesses.txt")
	var sb strings.Builder
	// ip|time|user|verb|path|stat|size — per Figure 3(b).
	for i := 0; i < 30; i++ {
		day := i%28 + 1
		fmt.Fprintf(&sb, "10.0.0.%d|2019-03-%02dT12:00:00|user%03d|GET|/page%d|200|%d\n",
			i, day, i%15, i, 100+i)
	}
	if err := os.WriteFile(logPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, Config{DataDir: dir + "/engine"})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 15)
	mustExec(t, e, fmt.Sprintf(`
CREATE TYPE AccessLogType AS CLOSED {
	ip: string,
	time: string,
	user: string,
	verb: string,
	'path': string,
	stat: int32,
	size: int32
};
CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
	(("path"="localhost://%s"), ("format"="delimited-text"), ("delimiter"="|"));`, logPath))

	// The paper's Figure 3(c) query, nearly verbatim (engine Now is fixed
	// at 2019-04-01, so the last 30 days cover all of March).
	rows := queryRows(t, e, `
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
      user.alias = logrec.user
  AND datetime(logrec.time) >= startTime
  AND datetime(logrec.time) <= endTime
GROUP BY nf;`)
	if len(rows) != 1 {
		t.Fatalf("figure 3 query rows: %v", rows)
	}
	o := rows[0].(*adm.Object)
	if nf, _ := adm.AsInt(o.Get("numFriends")); nf != 2 {
		t.Errorf("numFriends = %v", o.Get("numFriends"))
	}
	if au, _ := adm.AsInt(o.Get("activeUsers")); au != 15 {
		t.Errorf("activeUsers = %v (all 15 users appear in the log)", au)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	cfg := Config{DataDir: dir, Now: func() time.Time { return fixed }}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), gleambookDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := e.UpsertValue("GleambookUsers", userObj(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DeleteKey("GleambookUsers", adm.Int64(3)); err != nil {
		t.Fatal(err)
	}
	// Crash: no checkpoint, no flush — drop the engine on the floor
	// (memory components lost; only the WAL survives).
	e.txmgr.Log.Close()
	e.fm.Close()

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	n, err := queryCount(t, e2, "GleambookUsers")
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("recovered count = %d, want 24", n)
	}
	if _, ok, _ := e2.GetKey("GleambookUsers", adm.Int64(3)); ok {
		t.Error("deleted record resurrected by recovery")
	}
	if rec, ok, _ := e2.GetKey("GleambookUsers", adm.Int64(7)); !ok {
		t.Error("record 7 lost")
	} else if rec.Get("alias").String() != `"user007"` {
		t.Errorf("recovered record wrong: %v", rec)
	}
}

func TestCheckpointLimitsRecovery(t *testing.T) {
	dir := t.TempDir()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	cfg := Config{DataDir: dir, Now: func() time.Time { return fixed }}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), gleambookDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.UpsertValue("GleambookUsers", userObj(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := e.UpsertValue("GleambookUsers", userObj(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.txmgr.Log.Close()
	e.fm.Close()

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	n, _ := queryCount(t, e2, "GleambookUsers")
	if n != 15 {
		t.Fatalf("count after checkpointed recovery = %d, want 15", n)
	}
}

func userObj(i int) *adm.Object {
	since, _ := adm.ParseDatetime(fmt.Sprintf("201%d-01-01T00:00:00", i%8))
	start, _ := adm.ParseDate("2015-06-01")
	return adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(i)},
		adm.Field{Name: "alias", Value: adm.String(fmt.Sprintf("user%03d", i))},
		adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("User %d", i))},
		adm.Field{Name: "userSince", Value: since},
		adm.Field{Name: "friendIds", Value: adm.Multiset{adm.Int64(i + 1), adm.Int64(i + 2)}},
		adm.Field{Name: "employment", Value: adm.Array{adm.NewObject(
			adm.Field{Name: "organizationName", Value: adm.String("Org")},
			adm.Field{Name: "startDate", Value: start},
		)}},
	)
}

func TestUnnestEmployment(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 10)
	rows := queryRows(t, e, `
		SELECT e.organizationName AS org, COUNT(*) AS n
		FROM GleambookUsers u UNNEST u.employment e
		GROUP BY e.organizationName AS org
		ORDER BY org;`)
	if len(rows) != 5 {
		t.Fatalf("org groups: %d", len(rows))
	}
	if o := rows[0].(*adm.Object); o.Get("org").String() != `"Org0"` {
		t.Errorf("first org: %v", o)
	}
}

func TestBareExpressionStatement(t *testing.T) {
	e := newEngine(t, Config{})
	rows := queryRows(t, e, `1 + 2;`)
	if len(rows) != 1 || rows[0].String() != "3" {
		t.Fatalf("bare expression: %v", rows)
	}
}

func TestPersistenceAcrossCleanRestart(t *testing.T) {
	dir := t.TempDir()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	cfg := Config{DataDir: dir, Now: func() time.Time { return fixed }}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), gleambookDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := e.UpsertValue("GleambookUsers", userObj(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Catalog survived: the type system still validates.
	if _, err := e2.Execute(context.Background(), `UPSERT INTO GleambookUsers ({"id": 100});`); err == nil {
		t.Error("schema lost across restart (validation should fail)")
	}
	n, _ := queryCount(t, e2, "GleambookUsers")
	if n != 40 {
		t.Fatalf("count after restart = %d", n)
	}
}
