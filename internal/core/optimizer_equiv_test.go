package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// seedEquivData loads identical Gleambook content into an engine,
// including secondary indexes so the optimizer has access paths to pick.
func seedEquivData(t testing.TB, e *Engine) {
	t.Helper()
	mustExec(t, e, gleambookDDL)
	mustExec(t, e, `CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);`)
	seedUsers(t, e, 30)
	var sb strings.Builder
	for i := 0; i < 90; i++ {
		loc := ""
		if i%2 == 0 {
			loc = fmt.Sprintf(`"senderLocation": point(%d, %d),`, i%30, i%20)
		}
		fmt.Fprintf(&sb, `UPSERT INTO GleambookMessages ({
			"messageId": %d, "authorId": %d, %s
			"message": "message number %d about topic%d"});`, i, i%30, loc, i, i%7)
	}
	mustExec(t, e, sb.String())
}

// sortedRows renders a result as a sorted multiset for order-insensitive
// comparison.
func sortedRows(t testing.TB, e *Engine, q string) []string {
	t.Helper()
	rows := queryRows(t, e, q)
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestOptimizerOnOffEquivalence runs a corpus of fixed and generated
// queries against two engines over identical data — one with the
// optimizer, one with OptimizerOff — and requires identical result
// multisets. Any rule that changes answers shows up here.
func TestOptimizerOnOffEquivalence(t *testing.T) {
	on := newEngine(t, Config{})
	off := newEngine(t, Config{OptimizerOff: true})
	seedEquivData(t, on)
	seedEquivData(t, off)

	queries := []string{
		// Filters, ranges (index-eligible), constant folding.
		`SELECT VALUE u.name FROM GleambookUsers u WHERE u.id < 5;`,
		`SELECT VALUE u.alias FROM GleambookUsers u WHERE u.id >= 2 + 3 AND u.id <= 10 AND 1 = 1;`,
		`SELECT VALUE u.name FROM GleambookUsers u
			WHERE u.userSince >= datetime("2012-01-01T00:00:00") AND u.userSince <= datetime("2014-12-31T23:59:59");`,
		// 2-way joins: straight, commuted, nested conjunction, constant eq.
		`SELECT u.name AS n, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
			WHERE m.authorId = u.id AND u.id < 6;`,
		`SELECT u.name AS n, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
			WHERE u.id = m.authorId AND m.messageId < 40;`,
		`SELECT u.alias AS a, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
			WHERE (m.authorId = u.id AND u.id < 10) AND m.messageId > 20;`,
		`SELECT u.name AS n, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
			WHERE u.id = 3 AND m.authorId = u.id;`,
		// 3-way join cluster (greedy ordering on, naive nested loops off).
		`SELECT u.name AS n, m1.messageId AS a, m2.messageId AS b
			FROM GleambookMessages m1, GleambookMessages m2, GleambookUsers u
			WHERE m1.authorId = u.id AND m2.authorId = u.id
			  AND m1.messageId < 30 AND m2.messageId < 30 AND m1.messageId < m2.messageId;`,
		// Grouping, aggregates, distinct, order/limit, unnest, subquery.
		`SELECT u.name AS name, COUNT(m) AS cnt
			FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id
			GROUP BY u.name AS name;`,
		`SELECT DISTINCT VALUE m.authorId FROM GleambookMessages m WHERE m.messageId < 50;`,
		`SELECT VALUE u.name FROM GleambookUsers u ORDER BY u.id LIMIT 7 OFFSET 2;`,
		`SELECT VALUE f FROM GleambookUsers u UNNEST u.friendIds f WHERE u.id < 4;`,
		`SELECT VALUE coll_count((SELECT VALUE m FROM GleambookMessages m WHERE m.authorId = u.id))
			FROM GleambookUsers u WHERE u.id < 5;`,
		`SELECT VALUE u.name FROM GleambookUsers u
			WHERE SOME f IN u.friendIds SATISFIES f = 3;`,
	}

	// Generated corpus: random filters and join predicates over a small
	// grammar, deterministic seed so failures replay.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		lo := rng.Intn(25)
		hi := lo + rng.Intn(25)
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		switch rng.Intn(3) {
		case 0:
			queries = append(queries, fmt.Sprintf(
				`SELECT VALUE u.alias FROM GleambookUsers u WHERE u.id %s %d;`, op, lo))
		case 1:
			queries = append(queries, fmt.Sprintf(
				`SELECT u.alias AS a, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
					WHERE m.authorId = u.id AND m.messageId >= %d AND m.messageId <= %d;`, lo, hi))
		case 2:
			queries = append(queries, fmt.Sprintf(
				`SELECT u.id AS uid, m1.messageId AS a, m2.messageId AS b
					FROM GleambookMessages m1, GleambookUsers u, GleambookMessages m2
					WHERE m1.authorId = u.id AND m2.authorId = u.id
					  AND m1.messageId %s %d AND m2.messageId < %d;`, op, lo, hi))
		}
	}

	for i, q := range queries {
		got := sortedRows(t, on, q)
		want := sortedRows(t, off, q)
		if len(got) != len(want) {
			t.Errorf("query %d: %d rows optimized vs %d naive\n%s", i, len(got), len(want), q)
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("query %d row %d differs:\noptimized: %s\nnaive:     %s\n%s",
					i, j, got[j], want[j], q)
				break
			}
		}
	}
}

// TestOptimizerDisableRule checks the per-rule ablation knob: with greedy
// ordering disabled the rule never fires, yet answers are unchanged.
func TestOptimizerDisableRule(t *testing.T) {
	full := newEngine(t, Config{})
	ablated := newEngine(t, Config{OptimizerDisable: []string{"order-joins-greedily"}})
	seedEquivData(t, full)
	seedEquivData(t, ablated)
	q := `SELECT u.name AS n, m1.messageId AS a, m2.messageId AS b
		FROM GleambookMessages m1, GleambookMessages m2, GleambookUsers u
		WHERE m1.authorId = u.id AND m2.authorId = u.id
		  AND m1.messageId < 20 AND m2.messageId < 20;`
	rFull, err := full.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rAb, err := ablated.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if rFull.RulesFired["order-joins-greedily"] == 0 {
		t.Errorf("full engine should fire greedy ordering: %v", rFull.RulesFired)
	}
	if rAb.RulesFired["order-joins-greedily"] != 0 {
		t.Errorf("ablated engine fired a disabled rule: %v", rAb.RulesFired)
	}
	a, b := make([]string, len(rFull.Rows)), make([]string, len(rAb.Rows))
	for i, v := range rFull.Rows {
		a[i] = v.String()
	}
	for i, v := range rAb.Rows {
		b[i] = v.String()
	}
	sort.Strings(a)
	sort.Strings(b)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("ablation changed answers")
	}
}

// TestResultCarriesPlanAndRules checks the observability surface on
// Result: plan text, JSON tree, and per-rule counts.
func TestResultCarriesPlanAndRules(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, gleambookDDL)
	seedUsers(t, e, 10)
	r, err := e.Query(context.Background(),
		`SELECT u.name AS n, m.messageId AS mid FROM GleambookUsers u, GleambookMessages m
			WHERE m.authorId = u.id AND u.id < 3 AND 1 = 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Plan, "scan(GleambookUsers as u)") {
		t.Errorf("plan text: %s", r.Plan)
	}
	if !strings.Contains(r.PlanJSON, `"op":"result"`) {
		t.Errorf("plan JSON: %s", r.PlanJSON)
	}
	if r.RulesFired["recognize-hash-join"] == 0 || r.RulesFired["constant-fold"] == 0 {
		t.Errorf("expected hash-join recognition and constant folding: %v", r.RulesFired)
	}
	// The engine's registry must carry the per-rule counters (the
	// /admin/metrics surface).
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "optimizer_plans_total") {
		t.Error("optimizer counters missing from engine registry")
	}
}
