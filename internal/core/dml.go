package core

import (
	"context"
	"errors"
	"fmt"

	"asterix/internal/adm"
	"asterix/internal/algebricks"
	"asterix/internal/external"
	"asterix/internal/obs"
	"asterix/internal/sqlpp"
	"asterix/internal/txn"
)

// execUpsert evaluates the payload expression and inserts/upserts the
// resulting record(s) as one transaction: WAL first, then LSM apply, with
// record-level locks on the primary keys.
func (e *Engine) execUpsert(ctx context.Context, dataset string, expr sqlpp.Expr, upsert bool) (Result, error) {
	e.mu.Lock()
	d, ok := e.datasets[dataset]
	e.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("core: unknown dataset %q", dataset)
	}
	if d.def.External {
		return Result{}, fmt.Errorf("core: dataset %q is external (read-only)", dataset)
	}
	ev := e.evaluator()
	v, err := ev.Eval(expr, algebricks.NewEnv(nil, nil, nil))
	if err != nil {
		return Result{}, err
	}
	var recs []adm.Value
	switch x := v.(type) {
	case *adm.Object:
		recs = []adm.Value{x}
	case adm.Array:
		recs = x
	case adm.Multiset:
		recs = x
	default:
		return Result{}, fmt.Errorf("core: INSERT/UPSERT payload must be object(s), got %s", v.Kind())
	}
	n, err := e.storeRecords(ctx, d, recs, upsert)
	if err != nil {
		return Result{}, err
	}
	return Result{Kind: ResultDML, Count: n}, nil
}

// rollback aborts tx on an error path. The abort's own error (a failed
// WAL append) is joined with the error being propagated, so neither is
// silently discarded.
func rollback(tx *txn.Txn, err error) error {
	return errors.Join(err, tx.Abort())
}

// storeRecords writes a batch of records transactionally. Lock waits,
// flushes, and merges the batch stalls on are attributed to the
// statement span carried by ctx (nil span outside traced requests).
func (e *Engine) storeRecords(ctx context.Context, d *Dataset, recs []adm.Value, upsert bool) (int64, error) {
	sp := obs.SpanFromContext(ctx)
	tx := e.txmgr.Begin().AttachSpan(sp)
	var count int64
	for _, rv := range recs {
		rec, ok := rv.(*adm.Object)
		if !ok {
			return count, rollback(tx, fmt.Errorf("core: record is %s, not object", rv.Kind()))
		}
		if err := d.typ.Validate(rec); err != nil {
			return count, rollback(tx, err)
		}
		part, keyBytes, _, err := d.locate(rec)
		if err != nil {
			return count, rollback(tx, err)
		}
		if !upsert {
			if _, exists, err := d.getRecord(part, keyBytes); err != nil {
				return count, rollback(tx, err)
			} else if exists {
				return count, rollback(tx, fmt.Errorf("core: duplicate primary key in %s", d.def.Name))
			}
		}
		recBytes := adm.EncodeValue(rec)
		if err := tx.LogUpdate(d.def.Name, int32(part), txn.OpUpsert, keyBytes, recBytes); err != nil {
			return count, rollback(tx, err)
		}
		if err := d.applyUpsert(part, keyBytes, rec, sp); err != nil {
			return count, rollback(tx, err)
		}
		count++
	}
	if err := tx.Commit(); err != nil {
		return count, err
	}
	return count, nil
}

// execDelete deletes matching records: scan (with the statement's
// predicate) to locate victims, then delete transactionally.
func (e *Engine) execDelete(ctx context.Context, s *sqlpp.DeleteStmt) (Result, error) {
	e.mu.Lock()
	d, ok := e.datasets[s.Dataset]
	e.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("core: unknown dataset %q", s.Dataset)
	}
	if d.def.External {
		return Result{}, fmt.Errorf("core: dataset %q is external (read-only)", s.Dataset)
	}
	ev := e.evaluator()
	type victim struct {
		part int
		key  []byte
	}
	var victims []victim
	for p := 0; p < d.def.Partitions; p++ {
		err := d.ScanPartition(p, func(rec adm.Value) error {
			o, ok := rec.(*adm.Object)
			if !ok {
				return nil
			}
			if s.Where != nil {
				env := algebricks.NewEnv(nil, []string{s.Alias}, []adm.Value{o})
				keep, err := ev.Eval(s.Where, env)
				if err != nil {
					return err
				}
				if b, known := adm.Truthy(keep); !known || !b {
					return nil
				}
			}
			_, kb, _, err := d.locate(o)
			if err != nil {
				return err
			}
			victims = append(victims, victim{part: p, key: kb})
			return nil
		})
		if err != nil {
			return Result{}, err
		}
	}
	sp := obs.SpanFromContext(ctx)
	tx := e.txmgr.Begin().AttachSpan(sp)
	for _, v := range victims {
		if err := tx.LogUpdate(d.def.Name, int32(v.part), txn.OpDelete, v.key, nil); err != nil {
			return Result{}, rollback(tx, err)
		}
		if err := d.applyDelete(v.part, v.key, sp); err != nil {
			return Result{}, rollback(tx, err)
		}
	}
	if err := tx.Commit(); err != nil {
		return Result{}, err
	}
	return Result{Kind: ResultDML, Count: int64(len(victims))}, nil
}

// execLoad bulk-imports external data into a native dataset.
func (e *Engine) execLoad(ctx context.Context, s *sqlpp.LoadStmt) (Result, error) {
	e.mu.Lock()
	d, ok := e.datasets[s.Dataset]
	e.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("core: unknown dataset %q", s.Dataset)
	}
	adapter, err := external.New(s.Adapter, s.Params, d.typ)
	if err != nil {
		return Result{}, err
	}
	var recs []adm.Value
	if err := adapter.Scan(0, 1, func(rec adm.Value) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		return Result{}, err
	}
	n, err := e.storeRecords(ctx, d, recs, true)
	if err != nil {
		return Result{}, err
	}
	return Result{Kind: ResultDML, Count: n}, nil
}

// UpsertValue is the programmatic single-record upsert used by feeds and
// the benchmark harness (bypasses SQL parsing, keeps WAL + index
// maintenance).
func (e *Engine) UpsertValue(dataset string, rec *adm.Object) error {
	e.mu.Lock()
	d, ok := e.datasets[dataset]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown dataset %q", dataset)
	}
	_, err := e.storeRecords(context.Background(), d, []adm.Value{rec}, true)
	return err
}

// DeleteKey removes one record by primary key (programmatic path).
func (e *Engine) DeleteKey(dataset string, pk ...adm.Value) error {
	e.mu.Lock()
	d, ok := e.datasets[dataset]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown dataset %q", dataset)
	}
	kb, err := encodePK(pk)
	if err != nil {
		return err
	}
	part := d.partitionOf(pk)
	tx := e.txmgr.Begin()
	if err := tx.LogUpdate(d.def.Name, int32(part), txn.OpDelete, kb, nil); err != nil {
		return rollback(tx, err)
	}
	if err := d.applyDelete(part, kb, nil); err != nil {
		return rollback(tx, err)
	}
	return tx.Commit()
}

// GetKey fetches one record by primary key (programmatic path).
func (e *Engine) GetKey(dataset string, pk ...adm.Value) (*adm.Object, bool, error) {
	e.mu.Lock()
	d, ok := e.datasets[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, false, fmt.Errorf("core: unknown dataset %q", dataset)
	}
	kb, err := encodePK(pk)
	if err != nil {
		return nil, false, err
	}
	return d.getRecord(d.partitionOf(pk), kb)
}
