package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentAdmissionSpills over-subscribes a tiny working-memory pool
// with K concurrent aggregation queries. All of them must complete with
// identical (correct) results — the governor admits each job at its
// minimum grant and denies Grow, so the operators degrade to spilling
// instead of failing — and at no instant may the granted working memory
// exceed the pool.
func TestConcurrentAdmissionSpills(t *testing.T) {
	e := newEngine(t, Config{
		Partitions:    1,
		Nodes:         1,
		WorkingMemory: 64 << 10,
	})
	mustExec(t, e, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	var sb strings.Builder
	sb.WriteString("UPSERT INTO D ([")
	const rows = 3000
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": %d, "grp": "group-%04d", "pad": "%s"}`,
			i, i%1500, strings.Repeat("x", 64))
	}
	sb.WriteString("]);")
	mustExec(t, e, sb.String())

	gov := e.MemGovernor()
	if gov == nil {
		t.Fatal("engine has no memory governor")
	}
	cap := gov.WorkingCap()
	if cap != 64<<10 {
		t.Fatalf("working cap = %d, want %d", cap, 64<<10)
	}

	// Watchdog: granted working memory must never exceed the pool.
	stop := make(chan struct{})
	var overBudget atomic.Int64
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := gov.WorkingGranted(); g > cap {
				overBudget.Store(g)
			}
		}
	}()

	const q = `SELECT g AS grp, COUNT(*) AS n FROM D d GROUP BY d.grp AS g ORDER BY grp LIMIT 5;`
	want := queryRows(t, e, q)
	if len(want) != 5 {
		t.Fatalf("baseline rows = %d, want 5", len(want))
	}

	const K = 4
	var wg sync.WaitGroup
	errs := make([]error, K)
	peaks := make([]int64, K)
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.Query(context.Background(), q)
			if err != nil {
				errs[i] = err
				return
			}
			peaks[i] = r.PeakWorkingMem
			if !reflect.DeepEqual(r.Rows, want) {
				errs[i] = fmt.Errorf("rows diverge: got %v want %v", r.Rows, want)
			}
		}()
	}
	wg.Wait()
	close(stop)
	watch.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if g := overBudget.Load(); g != 0 {
		t.Errorf("granted working memory %d exceeded the %d-byte pool", g, cap)
	}
	for i, p := range peaks {
		if p <= 0 {
			t.Errorf("query %d reported no peak working memory", i)
		}
		if p > cap {
			t.Errorf("query %d peak %d exceeds pool %d", i, p, cap)
		}
	}
	st := gov.StatsSnapshot()
	if st.Waits == 0 {
		t.Errorf("no admission waits recorded under %d-way over-subscription: %+v", K, st)
	}
	if spills := e.Cluster().TotalStats().Spills; spills == 0 {
		t.Error("expected run-file spills under memory pressure, saw none")
	}
}

// TestSingleQueryGetsFullPool verifies admission control does not tax a
// lone query: with no competition, a single job can grow to the whole
// working pool and its in-memory execution shape is unchanged.
func TestSingleQueryGetsFullPool(t *testing.T) {
	e := newEngine(t, Config{
		Partitions:    1,
		Nodes:         1,
		WorkingMemory: 8 << 20,
	})
	mustExec(t, e, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	var sb strings.Builder
	sb.WriteString("UPSERT INTO D ([")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": %d, "grp": %d}`, i, i%100)
	}
	sb.WriteString("]);")
	mustExec(t, e, sb.String())

	rows := queryRows(t, e, `SELECT g AS grp, COUNT(*) AS n FROM D d GROUP BY d.grp AS g ORDER BY grp;`)
	if len(rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(rows))
	}
	if spills := e.Cluster().TotalStats().Spills; spills != 0 {
		t.Errorf("lone query within budget spilled %d times", spills)
	}
}
