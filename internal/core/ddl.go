package core

import (
	"fmt"

	"asterix/internal/metadata"
	"asterix/internal/sqlpp"
)

// typeRefFrom converts a parsed type expression to a metadata TypeRef,
// registering anonymous inline object types under a derived name.
func (e *Engine) typeRefFrom(t sqlpp.TypeExpr, owner string, n *int) (metadata.TypeRef, error) {
	switch {
	case t.Named != "":
		return metadata.TypeRef{Named: t.Named}, nil
	case t.Array != nil:
		inner, err := e.typeRefFrom(*t.Array, owner, n)
		if err != nil {
			return metadata.TypeRef{}, err
		}
		return metadata.TypeRef{Array: &inner}, nil
	case t.Multiset != nil:
		inner, err := e.typeRefFrom(*t.Multiset, owner, n)
		if err != nil {
			return metadata.TypeRef{}, err
		}
		return metadata.TypeRef{Multiset: &inner}, nil
	case t.Object != nil:
		*n++
		name := fmt.Sprintf("%s$anon%d", owner, *n)
		td, err := e.typeDefFrom(name, *t.Object)
		if err != nil {
			return metadata.TypeRef{}, err
		}
		if err := e.catalog.AddType(td, false); err != nil {
			return metadata.TypeRef{}, err
		}
		return metadata.TypeRef{Named: name}, nil
	}
	return metadata.TypeRef{Named: "any"}, nil
}

func (e *Engine) typeDefFrom(name string, body sqlpp.ObjectTypeExpr) (*metadata.TypeDef, error) {
	td := &metadata.TypeDef{Name: name, Closed: body.Closed}
	anon := 0
	for _, f := range body.Fields {
		ref, err := e.typeRefFrom(f.Type, name, &anon)
		if err != nil {
			return nil, err
		}
		td.Fields = append(td.Fields, metadata.FieldDef{Name: f.Name, Type: ref, Optional: f.Optional})
	}
	return td, nil
}

func (e *Engine) execCreateType(s *sqlpp.CreateType) (Result, error) {
	td, err := e.typeDefFrom(s.Name, s.Body)
	if err != nil {
		return Result{}, err
	}
	if err := e.catalog.AddType(td, s.IfNotExists); err != nil {
		return Result{}, err
	}
	// Validate that all referenced types resolve.
	if _, err := e.catalog.ResolveType(s.Name); err != nil {
		e.catalog.DropType(s.Name, true)
		return Result{}, err
	}
	return Result{Kind: ResultDDL}, nil
}

func (e *Engine) execCreateDataset(s *sqlpp.CreateDataset) (Result, error) {
	if len(s.PrimaryKey) == 0 {
		return Result{}, fmt.Errorf("core: dataset %s requires a primary key", s.Name)
	}
	def := &metadata.DatasetDef{
		Name:       s.Name,
		TypeName:   s.TypeName,
		PrimaryKey: s.PrimaryKey,
		Partitions: e.cfg.Partitions,
	}
	if _, err := e.catalog.ResolveType(s.TypeName); err != nil {
		return Result{}, err
	}
	if err := e.catalog.AddDataset(def, s.IfNotExists); err != nil {
		return Result{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, open := e.datasets[s.Name]; open {
		return Result{Kind: ResultDDL}, nil // IF NOT EXISTS hit
	}
	d, err := e.openDataset(def)
	if err != nil {
		return Result{}, err
	}
	e.datasets[s.Name] = d
	return Result{Kind: ResultDDL}, nil
}

func (e *Engine) execCreateExternalDataset(s *sqlpp.CreateExternalDataset) (Result, error) {
	def := &metadata.DatasetDef{
		Name:       s.Name,
		TypeName:   s.TypeName,
		Partitions: e.cfg.Partitions,
		External:   true,
		Adapter:    s.Adapter,
		Params:     s.Params,
	}
	if _, err := e.catalog.ResolveType(s.TypeName); err != nil {
		return Result{}, err
	}
	if err := e.catalog.AddDataset(def, s.IfNotExists); err != nil {
		return Result{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d, err := e.openDataset(def)
	if err != nil {
		return Result{}, err
	}
	e.datasets[s.Name] = d
	return Result{Kind: ResultDDL}, nil
}

func (e *Engine) execCreateIndex(s *sqlpp.CreateIndex) (Result, error) {
	switch s.Kind {
	case "BTREE", "RTREE", "KEYWORD", "ZORDER", "HILBERT", "GRID":
	default:
		return Result{}, fmt.Errorf("core: unknown index type %q", s.Kind)
	}
	if len(s.Fields) != 1 {
		return Result{}, fmt.Errorf("core: composite secondary indexes are not supported (index %s)", s.Name)
	}
	idef := &metadata.IndexDef{Name: s.Name, Dataset: s.Dataset, Fields: s.Fields, Kind: s.Kind}
	if err := e.catalog.AddIndex(idef, s.IfNotExists); err != nil {
		return Result{}, err
	}
	e.mu.Lock()
	d, ok := e.datasets[s.Dataset]
	e.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("core: dataset %q not open", s.Dataset)
	}
	if _, exists := d.idxs[s.Name]; exists {
		return Result{Kind: ResultDDL}, nil
	}
	si, err := d.openIndex(idef)
	if err != nil {
		return Result{}, err
	}
	// Build from existing data before publishing the index.
	if err := d.buildIndex(si); err != nil {
		return Result{}, err
	}
	e.mu.Lock()
	d.idxs[s.Name] = si
	e.mu.Unlock()
	return Result{Kind: ResultDDL}, nil
}

func (e *Engine) execDrop(s *sqlpp.DropStmt) (Result, error) {
	switch s.What {
	case "DATASET":
		if err := e.catalog.DropDataset(s.Name, s.IfExists); err != nil {
			return Result{}, err
		}
		e.mu.Lock()
		d := e.datasets[s.Name]
		delete(e.datasets, s.Name)
		e.mu.Unlock()
		if d != nil {
			d.detachGovernor()
		}
		// Component files are left for the file manager to reuse; a
		// vacuum pass could reclaim them (out of scope).
		return Result{Kind: ResultDDL}, nil
	case "TYPE":
		if err := e.catalog.DropType(s.Name, s.IfExists); err != nil {
			return Result{}, err
		}
		return Result{Kind: ResultDDL}, nil
	case "INDEX":
		if err := e.catalog.DropIndex(s.On, s.Name, s.IfExists); err != nil {
			return Result{}, err
		}
		e.mu.Lock()
		var dropped *SecondaryIndex
		if d, ok := e.datasets[s.On]; ok {
			dropped = d.idxs[s.Name]
			delete(d.idxs, s.Name)
		}
		e.mu.Unlock()
		if dropped != nil {
			dropped.detachGovernor()
		}
		return Result{Kind: ResultDDL}, nil
	case "DATAVERSE":
		return Result{Kind: ResultDDL}, nil
	}
	return Result{}, fmt.Errorf("core: unsupported DROP %s", s.What)
}
