package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"asterix/internal/adm"
)

const pointsDDL = `
CREATE TYPE PointType AS {id: int, loc: point, v: int};
CREATE DATASET Points(PointType) PRIMARY KEY id;
`

func seedPoints(t testing.TB, e *Engine, n int, seed int64) []adm.Point {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]adm.Point, n)
	for i := 0; i < n; i++ {
		p := adm.Point{X: -180 + r.Float64()*360, Y: -90 + r.Float64()*180}
		pts[i] = p
		if err := e.UpsertValue("Points", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "loc", Value: p},
			adm.Field{Name: "v", Value: adm.Int64(int64(i % 97))},
		)); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

// TestAllSpatialIndexKindsAgree is the correctness core of the V-B study:
// every index kind must answer spatial queries identically to a full scan.
func TestAllSpatialIndexKindsAgree(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	pts := seedPoints(t, e, 3000, 11)
	r := rand.New(rand.NewSource(13))
	type query struct {
		rect adm.Rectangle
		want []int
	}
	var queries []query
	for qi := 0; qi < 8; qi++ {
		x, y := -180+r.Float64()*300, -90+r.Float64()*150
		rect := adm.Rectangle{MinX: x, MinY: y, MaxX: x + 10 + r.Float64()*50, MaxY: y + 5 + r.Float64()*25}
		var want []int
		for i, p := range pts {
			if rect.Contains(p.X, p.Y) {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		queries = append(queries, query{rect, want})
	}

	for _, kind := range []string{"RTREE", "ZORDER", "HILBERT", "GRID"} {
		mustExec(t, e, fmt.Sprintf(`CREATE INDEX spIdx ON Points(loc) TYPE %s;`, kind))
		plan, err := e.Explain(fmt.Sprintf(`SELECT VALUE p.id FROM Points p
			WHERE spatial_intersect(p.loc, create_rectangle(%g, %g, %g, %g));`,
			queries[0].rect.MinX, queries[0].rect.MinY, queries[0].rect.MaxX, queries[0].rect.MaxY))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "index-search") {
			t.Fatalf("%s: plan does not use the index:\n%s", kind, plan)
		}
		for qi, q := range queries {
			rows := queryRows(t, e, fmt.Sprintf(`SELECT VALUE p.id FROM Points p
				WHERE spatial_intersect(p.loc, create_rectangle(%g, %g, %g, %g));`,
				q.rect.MinX, q.rect.MinY, q.rect.MaxX, q.rect.MaxY))
			var got []int
			for _, v := range rows {
				n, _ := adm.AsInt(v)
				got = append(got, int(n))
			}
			sort.Ints(got)
			if fmt.Sprint(got) != fmt.Sprint(q.want) {
				t.Fatalf("%s query %d: got %d rows, want %d\n got: %v\nwant: %v",
					kind, qi, len(got), len(q.want), got, q.want)
			}
		}
		mustExec(t, e, `DROP INDEX Points.spIdx;`)
	}
}

// Property: a B+tree secondary index answers random range queries exactly
// like a full scan.
func TestPropBtreeIndexMatchesScan(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	seedPoints(t, e, 2000, 17)
	mustExec(t, e, `CREATE INDEX vIdx ON Points(v);`)
	r := rand.New(rand.NewSource(19))
	for qi := 0; qi < 15; qi++ {
		lo := r.Intn(97)
		hi := lo + r.Intn(97-lo)
		q := fmt.Sprintf(`SELECT VALUE p.id FROM Points p WHERE p.v >= %d AND p.v <= %d;`, lo, hi)
		withIdx := queryRows(t, e, q)
		plan, _ := e.Explain(q)
		if !strings.Contains(plan, "index-search") {
			t.Fatalf("plan missing index:\n%s", plan)
		}
		// Force a scan by disabling the sargable shape (v+0 defeats the
		// field-access pattern matcher).
		scanQ := fmt.Sprintf(`SELECT VALUE p.id FROM Points p WHERE p.v + 0 >= %d AND p.v + 0 <= %d;`, lo, hi)
		scanRows := queryRows(t, e, scanQ)
		a := intsOf(t, withIdx)
		b := intsOf(t, scanRows)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("range [%d,%d]: index %d rows, scan %d rows", lo, hi, len(a), len(b))
		}
	}
}

func intsOf(t *testing.T, rows []adm.Value) []int {
	t.Helper()
	var out []int
	for _, v := range rows {
		n, _ := adm.AsInt(v)
		out = append(out, int(n))
	}
	sort.Ints(out)
	return out
}

func TestIndexMaintainedUnderUpdates(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	seedPoints(t, e, 500, 23)
	mustExec(t, e, `CREATE INDEX vIdx ON Points(v);`)
	// Move record 7 to a new v; old index entry must not resurface.
	mustExec(t, e, `UPSERT INTO Points ({"id": 7, "loc": point(0.0, 0.0), "v": 1000});`)
	rows := queryRows(t, e, `SELECT VALUE p.id FROM Points p WHERE p.v = 1000;`)
	if len(rows) != 1 {
		t.Fatalf("updated record not found via index: %v", rows)
	}
	old := queryRows(t, e, `SELECT VALUE p.v FROM Points p WHERE p.id = 7;`)
	if v, _ := adm.AsInt(old[0]); v != 1000 {
		t.Fatalf("record not updated: %v", old)
	}
	// Delete it; the index entry must go too.
	mustExec(t, e, `DELETE FROM Points p WHERE p.id = 7;`)
	rows = queryRows(t, e, `SELECT VALUE p.id FROM Points p WHERE p.v = 1000;`)
	if len(rows) != 0 {
		t.Fatalf("deleted record visible via index: %v", rows)
	}
}

func TestLoadStatement(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, `
		CREATE TYPE RowType AS {id: int, name: string};
		CREATE DATASET Rows(RowType) PRIMARY KEY id;`)
	path := filepath.Join(t.TempDir(), "rows.json")
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, `{"id": %d, "name": "row%d"}`+"\n", i, i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, fmt.Sprintf(
		`LOAD DATASET Rows USING localfs (("path"="%s"), ("format"="json"));`, path))
	if res[0].Count != 50 {
		t.Fatalf("loaded %d", res[0].Count)
	}
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Rows r;`)
	if n, _ := adm.AsInt(rows[0]); n != 50 {
		t.Fatalf("count after load: %d", n)
	}
}

// TestConcurrentDMLAndQueries exercises the engine under mixed load:
// writers on distinct key ranges with concurrent readers.
func TestConcurrentDMLAndQueries(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	seedPoints(t, e, 200, 29)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := 1000 + base*1000 + i
				err := e.UpsertValue("Points", adm.NewObject(
					adm.Field{Name: "id", Value: adm.Int64(int64(id))},
					adm.Field{Name: "loc", Value: adm.Point{X: 1, Y: 1}},
					adm.Field{Name: "v", Value: adm.Int64(int64(i))},
				))
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Query(context.Background(),
					`SELECT VALUE COUNT(*) FROM Points p;`); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Points p;`)
	if n, _ := adm.AsInt(rows[0]); n != 400 {
		t.Fatalf("final count: %d", n)
	}
}

func TestInsertArrayPayload(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	res := mustExec(t, e, `INSERT INTO Points ([
		{"id": 1, "loc": point(0.0, 0.0), "v": 1},
		{"id": 2, "loc": point(1.0, 1.0), "v": 2}
	]);`)
	if res[0].Count != 2 {
		t.Fatalf("inserted %d", res[0].Count)
	}
}

func TestUnionAll(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	mustExec(t, e, `INSERT INTO Points ([
		{"id": 1, "loc": point(0.0, 0.0), "v": 10},
		{"id": 2, "loc": point(1.0, 1.0), "v": 20},
		{"id": 3, "loc": point(2.0, 2.0), "v": 30}
	]);`)
	rows := queryRows(t, e, `
		SELECT VALUE p.id FROM Points p WHERE p.v < 15
		UNION ALL
		SELECT VALUE p.id FROM Points p WHERE p.v > 25
		UNION ALL
		SELECT VALUE 99 FROM Points p WHERE p.id = 1;`)
	got := intsOf(t, rows)
	if fmt.Sprint(got) != "[1 3 99]" {
		t.Fatalf("union rows: %v", got)
	}
	// Plan contains the union operator.
	plan, err := e.Explain(`SELECT VALUE 1 FROM Points p UNION ALL SELECT VALUE 2 FROM Points p;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "union-all(2)") {
		t.Fatalf("plan:\n%s", plan)
	}
	// Interpreter path (nested union) agrees.
	rows = queryRows(t, e, `SELECT VALUE coll_count((
		SELECT VALUE p.id FROM Points p
		UNION ALL
		SELECT VALUE p.id FROM Points p)) FROM [0] one;`)
	if n, _ := adm.AsInt(rows[0]); n != 6 {
		t.Fatalf("nested union count: %d", n)
	}
}

func TestCompressionRoundTripAndToggle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Compression: true}
	e := newEngine(t, cfg)
	mustExec(t, e, `
		CREATE TYPE BT AS {id: int, blob: string};
		CREATE DATASET Blobs(BT) PRIMARY KEY id;`)
	long := strings.Repeat("compressible text ", 50)
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf(`UPSERT INTO Blobs ({"id": %d, "blob": %q});`, i, long))
	}
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Blobs b;`)
	if rows[0].String() != "100" {
		t.Fatalf("count: %v", rows)
	}
	rec, ok, err := e.GetKey("Blobs", adm.Int64(7))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if rec.Get("blob").String() != fmt.Sprintf("%q", long) {
		t.Fatal("compressed record corrupted")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Reopen WITHOUT compression: old compressed records must still read,
	// and new raw records coexist.
	fixed := e.cfg.Now
	e2, err := Open(Config{DataDir: dir, Compression: false, Now: fixed})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, ok, _ := e2.GetKey("Blobs", adm.Int64(7)); !ok {
		t.Fatal("compressed record unreadable after toggle")
	}
	if _, err := e2.Execute(context.Background(),
		fmt.Sprintf(`UPSERT INTO Blobs ({"id": 200, "blob": %q});`, long)); err != nil {
		t.Fatal(err)
	}
	rows = queryRows(t, e2, `SELECT VALUE COUNT(*) FROM Blobs b;`)
	if rows[0].String() != "101" {
		t.Fatalf("mixed-scheme count: %v", rows)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, `
		CREATE TYPE EventType AS {day: string, seq: int, what: string};
		CREATE DATASET Events(EventType) PRIMARY KEY day, seq;`)
	for d := 0; d < 3; d++ {
		for s := 0; s < 10; s++ {
			mustExec(t, e, fmt.Sprintf(
				`UPSERT INTO Events ({"day": "2019-04-%02d", "seq": %d, "what": "e%d-%d"});`,
				d+1, s, d, s))
		}
	}
	// Same (day) different (seq) are distinct records.
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Events e;`)
	if rows[0].String() != "30" {
		t.Fatalf("count: %v", rows)
	}
	// Replace one composite key.
	mustExec(t, e, `UPSERT INTO Events ({"day": "2019-04-02", "seq": 3, "what": "replaced"});`)
	rows = queryRows(t, e, `SELECT VALUE e.what FROM Events e WHERE e.day = "2019-04-02" AND e.seq = 3;`)
	if len(rows) != 1 || rows[0].String() != `"replaced"` {
		t.Fatalf("composite upsert: %v", rows)
	}
	// Programmatic get/delete with composite pk.
	rec, ok, err := e.GetKey("Events", adm.String("2019-04-01"), adm.Int64(5))
	if err != nil || !ok || rec.Get("what").String() != `"e0-5"` {
		t.Fatalf("composite get: %v %v %v", rec, ok, err)
	}
	if err := e.DeleteKey("Events", adm.String("2019-04-01"), adm.Int64(5)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.GetKey("Events", adm.String("2019-04-01"), adm.Int64(5)); ok {
		t.Fatal("composite delete failed")
	}
}

func TestInsertFromQuery(t *testing.T) {
	e := newEngine(t, Config{})
	mustExec(t, e, pointsDDL)
	seedPoints(t, e, 50, 31)
	mustExec(t, e, `
		CREATE TYPE SummaryType AS {id: int, v: int};
		CREATE DATASET HighV(SummaryType) PRIMARY KEY id;`)
	// INSERT INTO ... (subquery): the payload expression is a SELECT.
	res := mustExec(t, e, `
		INSERT INTO HighV (
			SELECT p.id AS id, p.v AS v FROM Points p WHERE p.v >= 90
		);`)
	want := queryRows(t, e, `SELECT VALUE COUNT(*) FROM Points p WHERE p.v >= 90;`)
	if fmt.Sprint(res[0].Count) != want[0].String() {
		t.Fatalf("insert-from-query count %d, source has %s", res[0].Count, want[0])
	}
	rows := queryRows(t, e, `SELECT VALUE COUNT(*) FROM HighV h;`)
	if rows[0].String() != want[0].String() {
		t.Fatalf("materialized count: %v", rows)
	}
}
