// Package core is the BDMS engine tying the stack together (Figure 1):
// statement execution (DDL, DML, queries), hash-partitioned LSM storage
// with secondary-index maintenance, transactions and recovery, external
// datasets, and partitioned-parallel query execution over Hyracks.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"asterix/internal/adm"
	"asterix/internal/algebricks"
	"asterix/internal/check"
	"asterix/internal/external"
	"asterix/internal/lsm"
	"asterix/internal/metadata"
	"asterix/internal/obs"
	"asterix/internal/rtree"
	"asterix/internal/spatial"
)

// Dataset is an open native dataset: one LSM B+tree per hash partition
// plus its secondary indexes.
type Dataset struct {
	eng   *Engine
	def   *metadata.DatasetDef
	typ   *adm.Type
	parts []*lsm.Tree
	idxs  map[string]*SecondaryIndex // by index name
}

// SecondaryIndex is one open secondary index across all partitions.
type SecondaryIndex struct {
	def   *metadata.IndexDef
	ds    *Dataset
	trees []*lsm.Tree       // BTREE / ZORDER / HILBERT / GRID / KEYWORD
	rts   []*lsm.RTreeIndex // RTREE
	norm  spatial.Normalizer
	grid  spatial.Grid
}

// defaultWorld bounds the curve/grid linearizations (geographic-style
// coordinates; the core API allows custom worlds via index params).
var defaultWorld = [4]float64{-180, -90, 180, 90}

// detachGovernor removes every partition's and index's component-pool
// account (dataset drop): abandoned trees must not keep competing for
// the governor's arbitration.
func (d *Dataset) detachGovernor() {
	for _, t := range d.parts {
		t.Unregister()
	}
	for _, si := range d.idxs {
		si.detachGovernor()
	}
}

// detachGovernor removes the index's component-pool accounts (index drop).
func (si *SecondaryIndex) detachGovernor() {
	for _, t := range si.trees {
		t.Unregister()
	}
	for _, rt := range si.rts {
		rt.Unregister()
	}
}

// openDataset opens (or creates) storage for a dataset definition.
func (e *Engine) openDataset(def *metadata.DatasetDef) (*Dataset, error) {
	var typ *adm.Type
	var err error
	if def.TypeName != "" {
		typ, err = e.catalog.ResolveType(def.TypeName)
		if err != nil {
			return nil, err
		}
	} else {
		typ = adm.AnyType
	}
	d := &Dataset{eng: e, def: def, typ: typ, idxs: map[string]*SecondaryIndex{}}
	if def.External {
		return d, nil
	}
	for p := 0; p < def.Partitions; p++ {
		t, err := lsm.Open(e.bc, fmt.Sprintf("%s/p%d/primary", def.Name, p), lsm.Options{
			MemBudget: e.cfg.MemComponentBudget,
			Policy:    e.cfg.MergePolicy,
			Metrics:   e.reg,
			Gov:       e.gov,
		})
		if err != nil {
			return nil, err
		}
		d.parts = append(d.parts, t)
	}
	for _, idef := range e.catalog.IndexesOf(def.Name) {
		si, err := d.openIndex(idef)
		if err != nil {
			return nil, err
		}
		d.idxs[idef.Name] = si
	}
	return d, nil
}

func (d *Dataset) openIndex(idef *metadata.IndexDef) (*SecondaryIndex, error) {
	si := &SecondaryIndex{def: idef, ds: d}
	si.norm = spatial.NewNormalizer(defaultWorld[0], defaultWorld[1], defaultWorld[2], defaultWorld[3])
	si.grid = spatial.NewGrid(defaultWorld[0], defaultWorld[1], defaultWorld[2], defaultWorld[3], 64, 64)
	e := d.eng
	for p := 0; p < d.def.Partitions; p++ {
		name := fmt.Sprintf("%s/p%d/idx-%s", d.def.Name, p, idef.Name)
		if idef.Kind == "RTREE" {
			rt, err := lsm.OpenRTree(e.bc, name, lsm.RTreeOptions{MemBudget: e.cfg.MemComponentBudget, Metrics: e.reg, Gov: e.gov})
			if err != nil {
				return nil, err
			}
			si.rts = append(si.rts, rt)
			continue
		}
		t, err := lsm.Open(e.bc, name, lsm.Options{
			MemBudget: e.cfg.MemComponentBudget,
			Policy:    e.cfg.MergePolicy,
			Metrics:   e.reg,
			Gov:       e.gov,
		})
		if err != nil {
			return nil, err
		}
		si.trees = append(si.trees, t)
	}
	return si, nil
}

// --- Primary key handling ---

// primaryKeyValues extracts the dataset's primary key fields.
func (d *Dataset) primaryKeyValues(rec *adm.Object) ([]adm.Value, error) {
	pks := make([]adm.Value, len(d.def.PrimaryKey))
	for i, f := range d.def.PrimaryKey {
		v := rec.Get(f)
		if v.Kind() <= adm.KindNull {
			return nil, fmt.Errorf("core: record lacks primary key field %q", f)
		}
		if !v.Kind().IsScalar() {
			return nil, fmt.Errorf("core: primary key field %q has non-scalar kind %s", f, v.Kind())
		}
		pks[i] = v
	}
	return pks, nil
}

// encodePK builds order-preserving key bytes for a primary key.
func encodePK(pks []adm.Value) ([]byte, error) {
	return adm.EncodeCompositeKey(nil, pks...)
}

// partitionOf hashes a primary key to a partition.
func (d *Dataset) partitionOf(pks []adm.Value) int {
	var h uint64 = 14695981039346656037
	for _, v := range pks {
		h = h*1099511628211 ^ adm.Hash64(v)
	}
	return int(h % uint64(d.def.Partitions))
}

// locate computes (partition, key bytes, pk values) for a record.
func (d *Dataset) locate(rec *adm.Object) (int, []byte, []adm.Value, error) {
	pks, err := d.primaryKeyValues(rec)
	if err != nil {
		return 0, nil, nil, err
	}
	kb, err := encodePK(pks)
	if err != nil {
		return 0, nil, nil, err
	}
	return d.partitionOf(pks), kb, pks, nil
}

// --- Mutations (called after WAL logging, or from recovery redo) ---

// applyUpsert installs a record in the primary index and maintains all
// secondary indexes (removing entries of any replaced record first).
// Flush/merge stalls the write triggers are attributed to sp (nil from
// recovery redo and programmatic paths).
func (d *Dataset) applyUpsert(part int, keyBytes []byte, rec *adm.Object, sp *obs.Span) error {
	if old, ok, err := d.getRecord(part, keyBytes); err != nil {
		return err
	} else if ok {
		if err := d.removeSecondaryEntries(part, keyBytes, old, sp); err != nil {
			return err
		}
	}
	stored := encodeRecordBytes(adm.EncodeValue(rec), d.eng.cfg.Compression)
	if err := d.parts[part].UpsertSpan(keyBytes, stored, sp); err != nil {
		return err
	}
	return d.addSecondaryEntries(part, keyBytes, rec, sp)
}

// applyDelete removes a record and its index entries.
func (d *Dataset) applyDelete(part int, keyBytes []byte, sp *obs.Span) error {
	if old, ok, err := d.getRecord(part, keyBytes); err != nil {
		return err
	} else if ok {
		if err := d.removeSecondaryEntries(part, keyBytes, old, sp); err != nil {
			return err
		}
	}
	return d.parts[part].DeleteSpan(keyBytes, sp)
}

func (d *Dataset) getRecord(part int, keyBytes []byte) (*adm.Object, bool, error) {
	data, ok, err := d.parts[part].Get(keyBytes)
	if err != nil || !ok {
		return nil, false, err
	}
	raw, err := decodeRecordBytes(data)
	if err != nil {
		return nil, false, err
	}
	v, err := adm.DecodeValue(raw)
	if err != nil {
		return nil, false, err
	}
	o, ok := v.(*adm.Object)
	if !ok {
		return nil, false, fmt.Errorf("core: stored record is %s, not object", v.Kind())
	}
	return o, true, nil
}

// secondaryEntries computes an index's (key, value) entries for a record.
// Returned keys are composite (secondary key, primary key); values carry
// the secondary key value and pk bytes for post-filtering and fetch.
type secEntry struct {
	key  []byte
	rect rtree.Rect // RTREE only
	val  []byte
}

func (si *SecondaryIndex) entriesFor(keyBytes []byte, rec *adm.Object) ([]secEntry, error) {
	field := si.def.Fields[0]
	fv := rec.Get(field)
	if fv.Kind() <= adm.KindNull {
		return nil, nil // null/missing values are not indexed
	}
	mkVal := func(skey adm.Value) []byte {
		return adm.EncodeValue(adm.Array{skey, adm.Binary(keyBytes)})
	}
	switch si.def.Kind {
	case "BTREE":
		if !fv.Kind().IsScalar() {
			return nil, nil
		}
		kb, err := adm.EncodeKey(nil, fv)
		if err != nil {
			return nil, err
		}
		kb = append(kb, keyBytes...)
		return []secEntry{{key: kb, val: mkVal(fv)}}, nil
	case "ZORDER", "HILBERT":
		pt, ok := fv.(adm.Point)
		if !ok {
			return nil, nil
		}
		x, y := si.norm.Lattice(pt.X, pt.Y)
		var curve uint64
		if si.def.Kind == "ZORDER" {
			curve = spatial.ZOrder(x, y)
		} else {
			curve = spatial.Hilbert(x, y)
		}
		var cb [8]byte
		binary.BigEndian.PutUint64(cb[:], curve)
		kb, err := adm.EncodeKey(nil, adm.Binary(cb[:]))
		if err != nil {
			return nil, err
		}
		kb = append(kb, keyBytes...)
		return []secEntry{{key: kb, val: mkVal(fv)}}, nil
	case "GRID":
		pt, ok := fv.(adm.Point)
		if !ok {
			return nil, nil
		}
		cell := si.grid.Cell(pt.X, pt.Y)
		kb, err := adm.EncodeKey(nil, adm.Int64(cell))
		if err != nil {
			return nil, err
		}
		kb = append(kb, keyBytes...)
		return []secEntry{{key: kb, val: mkVal(fv)}}, nil
	case "KEYWORD":
		s, ok := fv.(adm.String)
		if !ok {
			return nil, nil
		}
		toks := algebricks.Tokenize(string(s))
		seen := map[string]bool{}
		var out []secEntry
		for _, tok := range toks {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			kb, err := adm.EncodeKey(nil, adm.String(tok))
			if err != nil {
				return nil, err
			}
			kb = append(kb, keyBytes...)
			out = append(out, secEntry{key: kb, val: mkVal(adm.String(tok))})
		}
		return out, nil
	case "RTREE":
		pt, ok := fv.(adm.Point)
		if ok {
			return []secEntry{{rect: rtree.PointRect(pt.X, pt.Y)}}, nil
		}
		if r, ok := fv.(adm.Rectangle); ok {
			return []secEntry{{rect: rtree.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}}}, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("core: unknown index kind %q", si.def.Kind)
}

func (d *Dataset) addSecondaryEntries(part int, keyBytes []byte, rec *adm.Object, sp *obs.Span) error {
	for _, si := range d.idxs {
		entries, err := si.entriesFor(keyBytes, rec)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if si.def.Kind == "RTREE" {
				if err := si.rts[part].InsertSpan(e.rect, keyBytes, sp); err != nil {
					return err
				}
			} else if err := si.trees[part].UpsertSpan(e.key, e.val, sp); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Dataset) removeSecondaryEntries(part int, keyBytes []byte, rec *adm.Object, sp *obs.Span) error {
	for _, si := range d.idxs {
		entries, err := si.entriesFor(keyBytes, rec)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if si.def.Kind == "RTREE" {
				if err := si.rts[part].DeleteSpan(e.rect, keyBytes, sp); err != nil {
					return err
				}
			} else if err := si.trees[part].DeleteSpan(e.key, sp); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildIndex populates a fresh secondary index from existing data.
func (d *Dataset) buildIndex(si *SecondaryIndex) error {
	for p := 0; p < d.def.Partitions; p++ {
		err := d.parts[p].Scan(nil, nil, func(k, v []byte) bool {
			raw, err := decodeRecordBytes(v)
			if err != nil {
				return false
			}
			rec, err := adm.DecodeValue(raw)
			if err != nil {
				return false
			}
			o, ok := rec.(*adm.Object)
			if !ok {
				return true
			}
			entries, err := si.entriesFor(append([]byte(nil), k...), o)
			if err != nil {
				return false
			}
			for _, e := range entries {
				if si.def.Kind == "RTREE" {
					if err := si.rts[p].Insert(e.rect, k); err != nil {
						return false
					}
				} else if err := si.trees[p].Upsert(e.key, e.val); err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- algebricks.DataSource ---

// Name implements algebricks.DataSource.
func (d *Dataset) Name() string { return d.def.Name }

// Partitions implements algebricks.DataSource.
func (d *Dataset) Partitions() int { return d.def.Partitions }

// ScanPartition implements algebricks.DataSource over the primary index.
func (d *Dataset) ScanPartition(part int, emit func(adm.Value) error) error {
	if d.def.External {
		typ := d.typ
		adapter, err := external.New(d.def.Adapter, d.def.Params, typ)
		if err != nil {
			return err
		}
		return adapter.Scan(part, d.def.Partitions, emit)
	}
	var scanErr error
	err := d.parts[part].Scan(nil, nil, func(k, v []byte) bool {
		raw, err := decodeRecordBytes(v)
		if err != nil {
			scanErr = err
			return false
		}
		rec, err := adm.DecodeValue(raw)
		if err != nil {
			scanErr = err
			return false
		}
		if err := emit(rec); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return scanErr
}

// Count returns the number of live records across partitions.
func (d *Dataset) Count() (int64, error) {
	var total int64
	for p := range d.parts {
		n, err := d.parts[p].Count()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// LSMStats sums disk-component counts and merge counts over the primary
// index's partitions (the E8 merge-policy ablation metric).
func (d *Dataset) LSMStats() (components, merges int) {
	for _, t := range d.parts {
		components += t.DiskComponents()
		merges += t.Merges
	}
	return components, merges
}

// FlushAll flushes every partition's memory components (primary and
// secondary) to disk components.
func (d *Dataset) FlushAll() error {
	for _, t := range d.parts {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	for _, si := range d.idxs {
		for _, t := range si.trees {
			if err := t.Flush(); err != nil {
				return err
			}
		}
		for _, rt := range si.rts {
			if err := rt.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Validate runs the deep structural validators (internal/check) over the
// dataset's primary partition trees and value-keyed secondary index
// trees. Like every check validator it is a no-op unless invariants are
// enabled (-tags invariants or ASTERIX_INVARIANTS); the crash-recovery
// matrix calls it after every Reopen.
func (d *Dataset) Validate() error {
	for p, t := range d.parts {
		if err := check.Run(t); err != nil {
			return fmt.Errorf("core: dataset %s partition %d: %w", d.def.Name, p, err)
		}
	}
	for name, si := range d.idxs {
		for _, t := range si.trees {
			if err := check.Run(t); err != nil {
				return fmt.Errorf("core: dataset %s index %s: %w", d.def.Name, name, err)
			}
		}
	}
	return nil
}

// --- algebricks.IndexAccessor ---

// Kind implements algebricks.IndexAccessor.
func (si *SecondaryIndex) Kind() string { return si.def.Kind }

// fetchSorted resolves candidate pk byte-keys through the primary index in
// sorted order (the pk-sort-before-fetch optimization of [26]) and emits
// records passing the check predicate.
func (si *SecondaryIndex) fetchSorted(part int, pkSet map[string]bool, check func(*adm.Object) bool, emit func(adm.Value) error) error {
	return si.fetch(part, pkSet, true, check, emit)
}

// fetch resolves candidates with or without the pk sort — the ablation
// knob for experiment E11 (unsorted fetch loses the access locality the
// paper's [26] trick provides).
func (si *SecondaryIndex) fetch(part int, pkSet map[string]bool, sorted bool, check func(*adm.Object) bool, emit func(adm.Value) error) error {
	pks := make([]string, 0, len(pkSet))
	for pk := range pkSet {
		pks = append(pks, pk)
	}
	if sorted {
		sort.Strings(pks)
	}
	for _, pk := range pks {
		rec, ok, err := si.ds.getRecord(part, []byte(pk))
		if err != nil {
			return err
		}
		if !ok {
			continue // index entry raced a delete; primary wins
		}
		if check != nil && !check(rec) {
			continue
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// decodeSecVal splits a secondary-index value into (skey, pk bytes).
func decodeSecVal(v []byte) (adm.Value, []byte, error) {
	val, err := adm.DecodeValue(v)
	if err != nil {
		return nil, nil, err
	}
	arr, ok := val.(adm.Array)
	if !ok || len(arr) != 2 {
		return nil, nil, fmt.Errorf("core: corrupt secondary entry")
	}
	pkb, ok := arr[1].(adm.Binary)
	if !ok {
		return nil, nil, fmt.Errorf("core: corrupt secondary entry pk")
	}
	return arr[0], []byte(pkb), nil
}

// SearchRange implements algebricks.IndexAccessor for BTREE indexes.
func (si *SecondaryIndex) SearchRange(part int, lo, hi adm.Value, loInc, hiInc bool, emit func(adm.Value) error) error {
	if si.def.Kind != "BTREE" {
		return fmt.Errorf("core: SearchRange on %s index", si.def.Kind)
	}
	var loB, hiB []byte
	var err error
	if lo != nil {
		if loB, err = adm.EncodeKey(nil, lo); err != nil {
			return err
		}
	}
	if hi != nil {
		if hiB, err = adm.EncodeKey(nil, hi); err != nil {
			return err
		}
		hiB = append(hiB, 0xFF) // include all pk suffixes under hi
	}
	pks := map[string]bool{}
	var innerErr error
	err = si.trees[part].Scan(loB, hiB, func(k, v []byte) bool {
		skey, pkb, err := decodeSecVal(v)
		if err != nil {
			innerErr = err
			return false
		}
		if lo != nil {
			c := adm.Compare(skey, lo)
			if c < 0 || (c == 0 && !loInc) {
				return true
			}
		}
		if hi != nil {
			c := adm.Compare(skey, hi)
			if c > 0 || (c == 0 && !hiInc) {
				return true
			}
		}
		pks[string(pkb)] = true
		return true
	})
	if err != nil {
		return err
	}
	if innerErr != nil {
		return innerErr
	}
	return si.fetchSorted(part, pks, nil, emit)
}

// SearchSpatial implements algebricks.IndexAccessor for the spatial index
// variants of the Section V-B study.
func (si *SecondaryIndex) SearchSpatial(part int, rect adm.Rectangle, emit func(adm.Value) error) error {
	field := si.def.Fields[0]
	check := func(rec *adm.Object) bool {
		switch p := rec.Get(field).(type) {
		case adm.Point:
			return rect.Contains(p.X, p.Y)
		case adm.Rectangle:
			return rect.Intersects(p)
		}
		return false
	}
	pks := map[string]bool{}
	switch si.def.Kind {
	case "RTREE":
		q := rtree.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
		err := si.rts[part].Search(q, func(r rtree.Rect, key []byte) bool {
			pks[string(key)] = true
			return true
		})
		if err != nil {
			return err
		}
	case "ZORDER", "HILBERT", "GRID":
		if err := si.collectSpatialCandidates(part, rect, pks); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: SearchSpatial on %s index", si.def.Kind)
	}
	return si.fetchSorted(part, pks, check, emit)
}

// SearchSpatialAblation answers a spatial query with the fetch phase's
// pk sort toggled (experiment E11: quantifying the [26] optimization).
// Only meaningful for BTREE-family spatial variants and RTREE.
func (si *SecondaryIndex) SearchSpatialAblation(part int, rect adm.Rectangle, sortedFetch bool, emit func(adm.Value) error) error {
	field := si.def.Fields[0]
	check := func(rec *adm.Object) bool {
		switch p := rec.Get(field).(type) {
		case adm.Point:
			return rect.Contains(p.X, p.Y)
		case adm.Rectangle:
			return rect.Intersects(p)
		}
		return false
	}
	pks := map[string]bool{}
	switch si.def.Kind {
	case "RTREE":
		q := rtree.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
		if err := si.rts[part].Search(q, func(r rtree.Rect, key []byte) bool {
			pks[string(key)] = true
			return true
		}); err != nil {
			return err
		}
	case "ZORDER", "HILBERT", "GRID":
		if err := si.collectSpatialCandidates(part, rect, pks); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: SearchSpatialAblation on %s index", si.def.Kind)
	}
	return si.fetch(part, pks, sortedFetch, check, emit)
}

// SearchSpatialCandidates runs only the index portion of a spatial search,
// returning the candidate primary-key count without fetching records —
// the "index time vs end-to-end time" split at the heart of the paper's
// Section V-B study (experiment E2).
func (si *SecondaryIndex) SearchSpatialCandidates(part int, rect adm.Rectangle) (int, error) {
	n := 0
	switch si.def.Kind {
	case "RTREE":
		q := rtree.Rect{MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY}
		err := si.rts[part].Search(q, func(r rtree.Rect, key []byte) bool {
			n++
			return true
		})
		return n, err
	case "ZORDER", "HILBERT", "GRID":
		pks := map[string]bool{}
		// Reuse the candidate-collection logic by running the search with
		// fetch replaced by counting: factored via a tiny shim below.
		err := si.collectSpatialCandidates(part, rect, pks)
		return len(pks), err
	}
	return 0, fmt.Errorf("core: SearchSpatialCandidates on %s index", si.def.Kind)
}

// collectSpatialCandidates gathers candidate pks for curve/grid indexes.
func (si *SecondaryIndex) collectSpatialCandidates(part int, rect adm.Rectangle, pks map[string]bool) error {
	switch si.def.Kind {
	case "ZORDER", "HILBERT":
		x0, y0 := si.norm.Lattice(rect.MinX, rect.MinY)
		x1, y1 := si.norm.Lattice(rect.MaxX, rect.MaxY)
		// A generous range budget keeps curve false positives low; the
		// paper's §V-B point is precisely that sloppy candidates get
		// amplified by the (dominant) object-fetch phase.
		const curveRangeBudget = 512
		var ranges []spatial.CurveRange
		if si.def.Kind == "ZORDER" {
			ranges = spatial.ZOrderRanges(x0, y0, x1, y1, curveRangeBudget)
		} else {
			ranges = spatial.HilbertRanges(x0, y0, x1, y1, curveRangeBudget)
		}
		for _, r := range ranges {
			var loB, hiB [8]byte
			binary.BigEndian.PutUint64(loB[:], r.Lo)
			binary.BigEndian.PutUint64(hiB[:], r.Hi)
			loK, err := adm.EncodeKey(nil, adm.Binary(loB[:]))
			if err != nil {
				return err
			}
			hiK, err := adm.EncodeKey(nil, adm.Binary(hiB[:]))
			if err != nil {
				return err
			}
			hiK = append(hiK, 0xFF)
			var innerErr error
			err = si.trees[part].Scan(loK, hiK, func(k, v []byte) bool {
				_, pkb, err := decodeSecVal(v)
				if err != nil {
					innerErr = err
					return false
				}
				pks[string(pkb)] = true
				return true
			})
			if err != nil {
				return err
			}
			if innerErr != nil {
				return innerErr
			}
		}
		return nil
	case "GRID":
		for _, cell := range si.grid.CellsInRect(rect.MinX, rect.MinY, rect.MaxX, rect.MaxY) {
			loK, err := adm.EncodeKey(nil, adm.Int64(cell))
			if err != nil {
				return err
			}
			hiK := append(append([]byte(nil), loK...), 0xFF)
			var innerErr error
			err = si.trees[part].Scan(loK, hiK, func(k, v []byte) bool {
				_, pkb, err := decodeSecVal(v)
				if err != nil {
					innerErr = err
					return false
				}
				pks[string(pkb)] = true
				return true
			})
			if err != nil {
				return err
			}
			if innerErr != nil {
				return innerErr
			}
		}
		return nil
	}
	return fmt.Errorf("core: collectSpatialCandidates on %s index", si.def.Kind)
}

// SearchKeyword implements algebricks.IndexAccessor for KEYWORD indexes.
func (si *SecondaryIndex) SearchKeyword(part int, token string, emit func(adm.Value) error) error {
	if si.def.Kind != "KEYWORD" {
		return fmt.Errorf("core: SearchKeyword on %s index", si.def.Kind)
	}
	toks := algebricks.Tokenize(token)
	if len(toks) != 1 {
		return fmt.Errorf("core: keyword search requires a single token, got %q", token)
	}
	loK, err := adm.EncodeKey(nil, adm.String(toks[0]))
	if err != nil {
		return err
	}
	hiK := append(append([]byte(nil), loK...), 0xFF)
	pks := map[string]bool{}
	var innerErr error
	err = si.trees[part].Scan(loK, hiK, func(k, v []byte) bool {
		skey, pkb, err := decodeSecVal(v)
		if err != nil {
			innerErr = err
			return false
		}
		if s, ok := skey.(adm.String); !ok || string(s) != toks[0] {
			return true
		}
		pks[string(pkb)] = true
		return true
	})
	if err != nil {
		return err
	}
	if innerErr != nil {
		return innerErr
	}
	return si.fetchSorted(part, pks, nil, emit)
}
