package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"asterix/internal/adm"
	"asterix/internal/check"
	"asterix/internal/fault"
	"asterix/internal/lsm"
)

const crashDDL = `
CREATE TYPE KVType AS { id: int, val: string };
CREATE DATASET KV(KVType) PRIMARY KEY id;
`

func crashRec(id int) *adm.Object {
	return adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(int64(id))},
		adm.Field{Name: "val", Value: adm.String(fmt.Sprintf("v%04d", id))},
	)
}

// TestCrashRecoveryMatrix is the crash-point matrix: for each armed fault
// point, ingest until the injection surfaces, hard-crash the engine
// (CrashStop: no buffer-cache flush, no checkpoint), disarm, Reopen, and
// verify that recovery (a) replays every acknowledged commit, (b) does
// not resurrect writes whose commit errored — except where the commit
// record itself may already be durable — and (c) leaves every structure
// satisfying its deep validators.
func TestCrashRecoveryMatrix(t *testing.T) {
	cases := []struct {
		name  string
		spec  string
		point string
		// extrasOK: writes whose commit returned an error may still be
		// present after recovery. True for the failed-sync case: the
		// commit record was appended (and may be durable) before the
		// sync error was reported to the client.
		extrasOK bool
		// checkpoints: run Checkpoint between ingest rounds so the
		// flush/merge paths execute and hit their fault points.
		checkpoints bool
	}{
		{"flush-io", fault.PointLSMFlush + ":error:times=1", fault.PointLSMFlush, false, true},
		{"merge-io", fault.PointLSMMerge + ":error:times=1", fault.PointLSMMerge, false, true},
		{"wal-append-torn", fault.PointWALAppend + ":torn:after=25:times=1", fault.PointWALAppend, false, false},
		{"wal-sync", fault.PointWALSync + ":error:after=10:times=1", fault.PointWALSync, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv("ASTERIX_INVARIANTS", "1")
			fault.Disarm()
			defer fault.Disarm()

			fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
			cfg := Config{
				DataDir: t.TempDir(),
				// Merge after two disk components so round two of the
				// checkpointing cases reaches the merge path.
				MergePolicy: lsm.ConstantPolicy{Components: 2},
				Now:         func() time.Time { return fixed },
			}
			e, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Execute(context.Background(), crashDDL); err != nil {
				t.Fatal(err)
			}

			if err := fault.Arm(tc.spec); err != nil {
				t.Fatal(err)
			}
			acked := map[int]bool{}
			failed := map[int]bool{}
			id := 0
			for round := 0; round < 3; round++ {
				for i := 0; i < 20; i++ {
					if err := e.UpsertValue("KV", crashRec(id)); err != nil {
						failed[id] = true
					} else {
						acked[id] = true
					}
					id++
				}
				if tc.checkpoints {
					// The injected flush/merge failure surfaces here;
					// crash consistency must hold either way.
					_ = e.Checkpoint()
				}
			}
			if fault.Fired(tc.point) == 0 {
				t.Fatalf("fault %s never fired (acked=%d failed=%d)", tc.point, len(acked), len(failed))
			}
			if len(acked) == 0 {
				t.Fatal("no acknowledged writes before the crash; matrix case proves nothing")
			}

			if err := e.CrashStop(); err != nil {
				t.Fatalf("crash stop: %v", err)
			}
			fault.Disarm()
			e2, err := e.Reopen()
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", tc.name, err)
			}
			defer e2.Close()

			for id := range acked {
				o, ok, err := e2.GetKey("KV", adm.Int64(int64(id)))
				if err != nil {
					t.Fatalf("get %d after recovery: %v", id, err)
				}
				if !ok {
					t.Fatalf("acknowledged commit %d lost in %s crash", id, tc.name)
				}
				if got := o.Get("val").String(); got != fmt.Sprintf("%q", fmt.Sprintf("v%04d", id)) {
					t.Fatalf("record %d recovered with val %s", id, got)
				}
			}
			for id := range failed {
				_, ok, err := e2.GetKey("KV", adm.Int64(int64(id)))
				if err != nil {
					t.Fatalf("get failed-id %d: %v", id, err)
				}
				if ok && !tc.extrasOK {
					t.Errorf("unacknowledged write %d resurrected by recovery", id)
				}
			}

			// End-to-end read path over recovered state.
			rows := queryRows(t, e2, `SELECT VALUE v.id FROM KV v;`)
			if len(rows) < len(acked) {
				t.Fatalf("scan found %d rows, want >= %d acknowledged", len(rows), len(acked))
			}
			if !tc.extrasOK && len(rows) != len(acked) {
				t.Fatalf("scan found %d rows, want exactly %d", len(rows), len(acked))
			}

			// Deep structural validators over every partition and index.
			d, ok := e2.Dataset("KV")
			if !ok {
				t.Fatal("dataset KV missing after recovery")
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("post-recovery validation: %v", err)
			}
			// The governor's books must balance after recovery too: a
			// crash must not strand working-memory grants or component
			// charges from the pre-crash incarnation.
			check.MustValidate(t, e2.MemGovernor())
		})
	}
}

// TestReopenAfterCleanCrashKeepsWorking makes sure a recovered engine is
// fully writable: new DML lands after the repaired WAL tail and survives a
// second crash/reopen cycle.
func TestCrashReopenTwice(t *testing.T) {
	t.Setenv("ASTERIX_INVARIANTS", "1")
	fault.Disarm()
	defer fault.Disarm()

	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	cfg := Config{DataDir: t.TempDir(), Now: func() time.Time { return fixed }}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), crashDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.UpsertValue("KV", crashRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash with a torn tail in the WAL.
	if err := fault.Arm(fault.PointWALAppend + ":torn:times=1"); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertValue("KV", crashRec(10)); err == nil {
		t.Fatal("torn append must fail the upsert")
	}
	fault.Disarm()
	if err := e.CrashStop(); err != nil {
		t.Fatal(err)
	}

	e2, err := e.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	// The recovered log must accept new appends at the repaired tail.
	for i := 10; i < 20; i++ {
		if err := e2.UpsertValue("KV", crashRec(i)); err != nil {
			t.Fatalf("post-recovery upsert %d: %v", i, err)
		}
	}
	if err := e2.CrashStop(); err != nil {
		t.Fatal(err)
	}

	e3, err := e2.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	rows := queryRows(t, e3, `SELECT VALUE v.id FROM KV v;`)
	if len(rows) != 20 {
		t.Fatalf("after two crash cycles: %d rows, want 20", len(rows))
	}
	d, _ := e3.Dataset("KV")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
