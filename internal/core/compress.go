package core

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Record compression (the "storage compression" contribution §VII credits
// to the open-source community): primary-index record values are
// optionally deflate-compressed. Each stored value carries a scheme tag
// so compressed and raw records coexist (datasets survive toggling the
// option).
const (
	recRaw  = 0x00
	recFlat = 0x01

	// compressMin skips records too small to benefit.
	compressMin = 128
)

// flate writers and readers carry large internal state; pool them rather
// than paying their construction per record.
var (
	flateWriters = sync.Pool{New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	}}
	flateReaders = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// encodeRecordBytes wraps an encoded record for storage.
func encodeRecordBytes(raw []byte, compress bool) []byte {
	if !compress || len(raw) < compressMin {
		return append([]byte{recRaw}, raw...)
	}
	var buf bytes.Buffer
	buf.Grow(len(raw)/2 + 16)
	buf.WriteByte(recFlat)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	_, werr := w.Write(raw)
	cerr := w.Close()
	flateWriters.Put(w)
	if werr != nil || cerr != nil || buf.Len() >= len(raw)+1 {
		return append([]byte{recRaw}, raw...) // incompressible or failed
	}
	return buf.Bytes()
}

// decodeRecordBytes unwraps a stored record value.
func decodeRecordBytes(stored []byte) ([]byte, error) {
	if len(stored) == 0 {
		return nil, fmt.Errorf("core: empty stored record")
	}
	switch stored[0] {
	case recRaw:
		return stored[1:], nil
	case recFlat:
		r := flateReaders.Get().(io.ReadCloser)
		if err := r.(flate.Resetter).Reset(bytes.NewReader(stored[1:]), nil); err != nil {
			flateReaders.Put(r)
			return nil, err
		}
		out, err := io.ReadAll(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		flateReaders.Put(r)
		if err != nil {
			return nil, fmt.Errorf("core: decompress record: %w", err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown record scheme 0x%02x", stored[0])
}
