package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"asterix/internal/adm"
	"asterix/internal/algebricks"
	"asterix/internal/fault"
	"asterix/internal/hyracks"
	"asterix/internal/lsm"
	"asterix/internal/mem"
	"asterix/internal/metadata"
	"asterix/internal/obs"
	"asterix/internal/sqlpp"
	"asterix/internal/storage"
	"asterix/internal/txn"
)

// Config configures an Engine.
type Config struct {
	// DataDir is the root of all persistent state (required).
	DataDir string
	// Partitions is the number of storage/index partitions per dataset —
	// the simulated shared-nothing "nodes" of Figure 1 (default 2).
	Partitions int
	// Nodes is the Hyracks node-controller count (default = Partitions).
	Nodes int
	// PageSize is the buffer-cache page size (default 8192).
	PageSize int
	// FrameSize is the Hyracks tuple-batch size moved through connectors
	// (default 256 tuples).
	FrameSize int
	// TotalMemory, when set, is the single budget of Figure 2: the memory
	// governor splits it across the buffer cache, the LSM component pool,
	// and query working memory. Knobs left unset are derived from it
	// (buffer cache and component pool get a quarter each, working memory
	// the remainder); explicitly-set knobs are honored as carve-outs.
	// Zero means "derive the total from the legacy knobs instead".
	TotalMemory int64
	// BufferPages is the buffer-cache size in pages (default 4096, or
	// TotalMemory/4 worth of pages).
	BufferPages int
	// MemComponentPool caps the governor's shared LSM memory-component
	// pool across all datasets (default 4x MemComponentBudget, or
	// TotalMemory/4).
	MemComponentPool int
	// MemComponentBudget bounds each LSM memory component (default 4 MiB,
	// or MemComponentPool/4).
	MemComponentBudget int
	// WorkingMemory caps the governor's query working-memory pool,
	// shared by all concurrent sorts/joins/aggregations (default 32 MiB,
	// or what TotalMemory leaves after the other pools).
	WorkingMemory int
	// AdmitTimeout bounds how long a query waits for working-memory
	// admission before failing retriably (default 10s).
	AdmitTimeout time.Duration
	// MergePolicy for LSM components (default ConstantPolicy{4}).
	MergePolicy lsm.MergePolicy
	// NoSyncCommits skips the per-commit log fsync (a group-commit
	// stand-in for ingest-heavy workloads and benchmarks; recovery from
	// in-process failures is unaffected).
	NoSyncCommits bool
	// Compression deflate-compresses stored record values (the storage-
	// compression feature §VII credits to community contributors).
	// Compressed and raw records coexist, so the option can be toggled
	// across restarts.
	Compression bool
	// OptimizerOff disables the rule-based plan optimizer entirely:
	// queries run exactly as translated (equivalence testing, worst-case
	// baselines).
	OptimizerOff bool
	// OptimizerDisable names individual rewrite rules to skip (see
	// algebricks.DefaultRules), for experiment ablations such as turning
	// off only greedy join ordering.
	OptimizerDisable []string
	// Metrics, when set, is the observability registry all subsystems
	// publish into; nil = the engine creates its own (see Engine.Metrics).
	Metrics *obs.Registry
	// Now overrides the statement clock (tests); nil = time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.DataDir == "" {
		return c, fmt.Errorf("core: Config.DataDir is required")
	}
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.Nodes <= 0 {
		c.Nodes = c.Partitions
	}
	if c.PageSize <= 0 {
		c.PageSize = 8192
	}
	if c.FrameSize < 0 {
		return c, fmt.Errorf("core: Config.FrameSize must be positive, got %d", c.FrameSize)
	}
	if c.FrameSize == 0 {
		c.FrameSize = 256
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 10 * time.Second
	}
	if c.TotalMemory > 0 {
		// One-knob sizing: derive the pools Figure 2 splits the budget
		// into, honoring any explicitly-set legacy knob as a carve-out.
		if c.TotalMemory < 1<<20 {
			return c, fmt.Errorf("core: Config.TotalMemory %d is below the 1 MiB minimum", c.TotalMemory)
		}
		if c.BufferPages <= 0 {
			c.BufferPages = int(c.TotalMemory/4) / c.PageSize
			if c.BufferPages < 64 {
				c.BufferPages = 64
			}
		}
		if c.MemComponentPool <= 0 {
			c.MemComponentPool = int(c.TotalMemory / 4)
		}
		if c.MemComponentBudget <= 0 {
			c.MemComponentBudget = c.MemComponentPool / 4
			if c.MemComponentBudget < 64<<10 {
				c.MemComponentBudget = 64 << 10
			}
		}
		if c.WorkingMemory <= 0 {
			w := c.TotalMemory - int64(c.BufferPages)*int64(c.PageSize) - int64(c.MemComponentPool)
			if w <= 0 {
				return c, fmt.Errorf("core: Config.TotalMemory %d leaves no working memory after the buffer cache (%d) and component pool (%d)",
					c.TotalMemory, c.BufferPages*c.PageSize, c.MemComponentPool)
			}
			c.WorkingMemory = int(w)
		}
	} else {
		// Legacy knobs: default each pool, then report their sum as the
		// total budget.
		if c.BufferPages <= 0 {
			c.BufferPages = 4096
		}
		if c.MemComponentBudget <= 0 {
			c.MemComponentBudget = 4 << 20
		}
		if c.MemComponentPool <= 0 {
			c.MemComponentPool = 4 * c.MemComponentBudget
		}
		if c.WorkingMemory <= 0 {
			c.WorkingMemory = 32 << 20
		}
		c.TotalMemory = int64(c.BufferPages)*int64(c.PageSize) + int64(c.MemComponentPool) + int64(c.WorkingMemory)
	}
	//lint:ignore obs-nil config defaulting, not instrumentation branching: a real registry keeps Snapshot and /metrics meaningful
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// Engine is the embedded BDMS instance.
type Engine struct {
	cfg     Config
	fm      *storage.FileManager
	bc      *storage.BufferCache
	catalog *metadata.Catalog
	cluster *hyracks.Cluster
	txmgr   *txn.Manager
	gov     *mem.Governor
	opt     *algebricks.Optimizer

	// Observability: the registry is shared by every subsystem; the
	// engine-level instruments below are pushed per statement.
	reg         *obs.Registry
	mStatements *obs.Counter
	mQueries    *obs.Counter
	mStmtErrors *obs.Counter
	mQueryDur   *obs.Histogram

	mu       sync.Mutex
	datasets map[string]*Dataset
}

// Open opens (or creates) an engine instance, running crash recovery from
// the write-ahead log.
func Open(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	fm, err := storage.NewFileManager(filepath.Join(cfg.DataDir, "storage"), cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cat, err := metadata.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	log, err := txn.OpenLog(filepath.Join(cfg.DataDir, "txnlog"))
	if err != nil {
		return nil, err
	}
	cluster, err := hyracks.NewCluster(cfg.Nodes, filepath.Join(cfg.DataDir, "tmp"))
	if err != nil {
		return nil, err
	}
	bc := storage.NewBufferCache(fm, cfg.BufferPages)
	// One governor owns the whole Figure 2 budget: the buffer cache's
	// fixed slice, the shared LSM component pool, and the query working
	// pool every Hyracks job is admitted through.
	gov := mem.NewGovernor(mem.Config{
		BufferCacheBytes: bc.CapacityBytes(),
		ComponentBytes:   int64(cfg.MemComponentPool),
		WorkingBytes:     int64(cfg.WorkingMemory),
		AdmitTimeout:     cfg.AdmitTimeout,
		Metrics:          cfg.Metrics,
	})
	cluster.Gov = gov
	cluster.FrameSize = cfg.FrameSize
	e := &Engine{
		cfg:      cfg,
		fm:       fm,
		bc:       bc,
		catalog:  cat,
		cluster:  cluster,
		txmgr:    txn.NewManager(log),
		gov:      gov,
		datasets: map[string]*Dataset{},
	}
	e.txmgr.NoSync = cfg.NoSyncCommits
	e.registerMetrics(cfg.Metrics)
	// Open all datasets, then redo committed updates since the last
	// checkpoint.
	for name, def := range cat.Datasets {
		d, err := e.openDataset(def)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("core: open dataset %s: %w", name, err)
		}
		e.datasets[name] = d
	}
	if _, err := e.Recover(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// Recover redoes committed updates from the WAL into LSM memory
// components, returning the number of records replayed.
func (e *Engine) Recover() (int, error) {
	return e.txmgr.Recover(func(rec *txn.LogRecord) error {
		d, ok := e.datasets[rec.Dataset]
		if !ok {
			return nil // dataset dropped after the logged update
		}
		switch rec.Op {
		case txn.OpUpsert:
			v, err := adm.DecodeValue(rec.Value)
			if err != nil {
				return err
			}
			o, ok := v.(*adm.Object)
			if !ok {
				return fmt.Errorf("core: recovery: logged value is %s", v.Kind())
			}
			return d.applyUpsert(int(rec.Partition), rec.Key, o, nil)
		case txn.OpDelete:
			return d.applyDelete(int(rec.Partition), rec.Key, nil)
		}
		return nil
	})
}

// Checkpoint flushes all memory components and truncates the redo window.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	datasets := make([]*Dataset, 0, len(e.datasets))
	for _, d := range e.datasets {
		datasets = append(datasets, d)
	}
	e.mu.Unlock()
	for _, d := range datasets {
		if d.def.External {
			continue
		}
		if err := d.FlushAll(); err != nil {
			return err
		}
	}
	if err := e.bc.FlushAll(); err != nil {
		return err
	}
	return e.txmgr.Checkpoint()
}

// Close flushes caches and closes files (without checkpointing; reopen
// will recover from the log). Every stage runs even if an earlier one
// fails; the errors are joined.
func (e *Engine) Close() error {
	return errors.Join(e.bc.FlushAll(), e.fm.Close(), e.txmgr.Log.Close())
}

// CrashStop simulates a hard crash: file handles close WITHOUT flushing
// the buffer cache or checkpointing, so only state already durable (the
// WAL, flushed components, manifests) survives. The engine is unusable
// afterwards; Reopen the DataDir to run recovery.
func (e *Engine) CrashStop() error {
	return errors.Join(e.fm.Close(), e.txmgr.Log.Close())
}

// Reopen opens a fresh engine over this engine's DataDir with the same
// configuration — the crash-recovery path: call CrashStop (or Close)
// first, then Reopen replays the WAL via txn.Manager.Recover into the
// LSM datasets.
func (e *Engine) Reopen() (*Engine, error) {
	return Open(e.cfg)
}

// registerMetrics binds the engine's registry: push-style engine
// instruments plus scrape-time callbacks publishing the private counters
// of the storage buffer cache, Hyracks nodes, and transaction manager.
// LSM flush/merge metrics are pre-created here so exposition always lists
// them; the trees share them by name (see lsm.Options.Metrics).
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.reg = reg
	// One optimizer per engine so per-rule fired counters accumulate in
	// the registry (surfaced at /admin/metrics).
	e.opt = algebricks.NewOptimizer(reg)
	if len(e.cfg.OptimizerDisable) > 0 {
		e.opt.Disabled = map[string]bool{}
		for _, name := range e.cfg.OptimizerDisable {
			e.opt.Disabled[name] = true
		}
	}
	e.mStatements = reg.Counter("engine_statements_total", "statements executed")
	e.mQueries = reg.Counter("engine_queries_total", "query statements executed")
	e.mStmtErrors = reg.Counter("engine_statement_errors_total", "statements that returned an error")
	e.mQueryDur = reg.Histogram("engine_query_duration_seconds", "per-statement wall time", nil)

	reg.Counter("lsm_flushes_total", "LSM memory-component flushes")
	reg.Counter("lsm_merges_total", "LSM disk-component merges")
	reg.Histogram("lsm_flush_duration_seconds", "LSM flush wall time", nil)
	reg.Histogram("lsm_merge_duration_seconds", "LSM merge wall time", nil)

	bc := e.bc
	reg.RegisterFunc("storage_buffercache_hits_total", "buffer-cache page hits", obs.TypeCounter,
		func() float64 { return float64(bc.Stats().Hits) })
	reg.RegisterFunc("storage_buffercache_misses_total", "buffer-cache page misses", obs.TypeCounter,
		func() float64 { return float64(bc.Stats().Misses) })
	reg.RegisterFunc("storage_buffercache_reads_total", "physical page reads", obs.TypeCounter,
		func() float64 { return float64(bc.Stats().Reads) })
	reg.RegisterFunc("storage_buffercache_writes_total", "physical page writes", obs.TypeCounter,
		func() float64 { return float64(bc.Stats().Writes) })
	reg.RegisterFunc("storage_buffercache_hit_ratio", "hits / (hits+misses)", obs.TypeGauge,
		func() float64 { return bc.Stats().HitRatio() })

	cl := e.cluster
	reg.RegisterFunc("hyracks_tuples_in_total", "tuples received by operator tasks", obs.TypeCounter,
		func() float64 { return float64(cl.TotalStats().TuplesIn) })
	reg.RegisterFunc("hyracks_tuples_out_total", "tuples emitted by operator tasks", obs.TypeCounter,
		func() float64 { return float64(cl.TotalStats().TuplesOut) })
	reg.RegisterFunc("hyracks_spills_total", "run-file spills across all nodes", obs.TypeCounter,
		func() float64 { return float64(cl.TotalStats().Spills) })
	reg.RegisterFunc("hyracks_nodes", "node controllers in the cluster", obs.TypeGauge,
		func() float64 { return float64(len(cl.Nodes)) })

	tm := e.txmgr
	reg.RegisterFunc("txn_begins_total", "transactions started", obs.TypeCounter,
		func() float64 { return float64(tm.Stats().Begins) })
	reg.RegisterFunc("txn_commits_total", "transactions committed", obs.TypeCounter,
		func() float64 { return float64(tm.Stats().Commits) })
	reg.RegisterFunc("txn_aborts_total", "transactions aborted", obs.TypeCounter,
		func() float64 { return float64(tm.Stats().Aborts) })
	reg.RegisterFunc("txn_torn_tails_total", "torn WAL tails detected by log scans", obs.TypeCounter,
		func() float64 { return float64(tm.Log.TornTails()) })
	tm.Locks.BindMetrics(reg)

	reg.RegisterFunc("hyracks_job_attempts_total", "job executions including retries", obs.TypeCounter,
		func() float64 { return float64(cl.RetryStats().Attempts) })
	reg.RegisterFunc("hyracks_job_retries_total", "job re-executions after node failures", obs.TypeCounter,
		func() float64 { return float64(cl.RetryStats().Retries) })
	reg.RegisterFunc("hyracks_node_failures_total", "jobs failed by a node death", obs.TypeCounter,
		func() float64 { return float64(cl.RetryStats().NodeFailures) })
	reg.RegisterFunc("hyracks_dead_nodes", "node controllers currently dead", obs.TypeGauge,
		func() float64 { return float64(len(cl.DeadNodeIDs())) })

	fault.BindMetrics(reg)
}

// Metrics returns the engine's observability registry (the HTTP server
// exposes it at /admin/metrics and /admin/stats).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// BufferCacheStats exposes buffer-cache counters (benchmark harness).
func (e *Engine) BufferCacheStats() storage.Stats { return e.bc.Stats() }

// Cluster exposes the Hyracks cluster (benchmark harness).
func (e *Engine) Cluster() *hyracks.Cluster { return e.cluster }

// MemGovernor exposes the memory governor (admission tests, benchmark
// harness).
func (e *Engine) MemGovernor() *mem.Governor { return e.gov }

// Dataset returns an open dataset handle.
func (e *Engine) Dataset(name string) (*Dataset, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.datasets[name]
	return d, ok
}

// SecondaryIndexHandle returns an open secondary index (benchmark harness
// access to index-only operations).
func (e *Engine) SecondaryIndexHandle(dataset, index string) (*SecondaryIndex, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.datasets[dataset]
	if !ok {
		return nil, false
	}
	si, ok := d.idxs[index]
	return si, ok
}

// ResultKind classifies statement results.
type ResultKind int

// Result kinds.
const (
	ResultDDL ResultKind = iota
	ResultDML
	ResultQuery
)

// Result is one statement's outcome.
type Result struct {
	Kind ResultKind
	// Rows holds query results in output order.
	Rows []adm.Value
	// Count is the number of records affected by DML.
	Count int64
	// Plan is the optimized logical plan (queries only).
	Plan string
	// PlanJSON is the same plan as a stable JSON tree.
	PlanJSON string
	// RulesFired maps optimizer rule name -> rewrite sites fired while
	// compiling this query.
	RulesFired map[string]int
	// Attempts is how many times the query's job ran (>1 after a node
	// failure was retried); 0 for non-job statements.
	Attempts int
	// DeadNodes lists nodes observed dead while executing the query.
	DeadNodes []string
	// PeakWorkingMem is the query's high-water mark of granted working
	// memory in bytes (0 for statements that drew none).
	PeakWorkingMem int64
}

// JSONRows renders query rows as JSON strings.
func (r *Result) JSONRows() []string {
	out := make([]string, len(r.Rows))
	for i, v := range r.Rows {
		out[i] = adm.ToJSON(v)
	}
	return out
}

// Execute parses and executes a ;-separated script, returning one Result
// per statement. Execution stops at the first error.
//
// When the context carries an obs.Span (the HTTP server attaches one per
// request), the statement lifecycle is traced into it: a "parse" child,
// then per statement a "statement" child whose subtree holds compile and
// execute phases down to per-operator tasks. Without a span every trace
// call is a nil no-op.
func (e *Engine) Execute(ctx context.Context, script string) ([]Result, error) {
	root := obs.SpanFromContext(ctx)
	ps := root.StartChild("parse")
	stmts, err := sqlpp.ParseScript(script)
	ps.End()
	if err != nil {
		e.mStmtErrors.Inc()
		return nil, err
	}
	var results []Result
	for _, stmt := range stmts {
		ss := root.StartChild("statement")
		start := time.Now()
		r, err := e.executeStmt(obs.ContextWithSpan(ctx, ss), stmt)
		ss.End()
		e.mStatements.Inc()
		e.mQueryDur.Observe(time.Since(start).Seconds())
		if err != nil {
			e.mStmtErrors.Inc()
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Query executes a single query statement and returns its result.
func (e *Engine) Query(ctx context.Context, src string) (*Result, error) {
	results, err := e.Execute(ctx, src)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("core: empty statement")
	}
	last := results[len(results)-1]
	return &last, nil
}

// QueryAST executes an already-parsed query (the AQL front end uses this).
func (e *Engine) QueryAST(ctx context.Context, q *sqlpp.QueryStmt) (*Result, error) {
	r, err := e.executeStmt(ctx, q)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func (e *Engine) executeStmt(ctx context.Context, stmt sqlpp.Statement) (Result, error) {
	// Queries trace their own compile/execute phases in execQuery; every
	// other statement kind is a single "execute" phase.
	if _, isQuery := stmt.(*sqlpp.QueryStmt); !isQuery {
		es := obs.SpanFromContext(ctx).StartChild("execute")
		defer es.End()
	}
	switch s := stmt.(type) {
	case *sqlpp.CreateDataverse, *sqlpp.UseDataverse:
		// Single-dataverse engine: accepted for compatibility.
		return Result{Kind: ResultDDL}, nil
	case *sqlpp.CreateType:
		return e.execCreateType(s)
	case *sqlpp.CreateDataset:
		return e.execCreateDataset(s)
	case *sqlpp.CreateExternalDataset:
		return e.execCreateExternalDataset(s)
	case *sqlpp.CreateIndex:
		return e.execCreateIndex(s)
	case *sqlpp.DropStmt:
		return e.execDrop(s)
	case *sqlpp.LoadStmt:
		return e.execLoad(ctx, s)
	case *sqlpp.InsertStmt:
		return e.execUpsert(ctx, s.Dataset, s.Expr, false)
	case *sqlpp.UpsertStmt:
		return e.execUpsert(ctx, s.Dataset, s.Expr, true)
	case *sqlpp.DeleteStmt:
		return e.execDelete(ctx, s)
	case *sqlpp.QueryStmt:
		return e.execQuery(ctx, s)
	case *sqlpp.ExplainStmt:
		plan, err := e.explainAST(s.Query)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: ResultQuery, Rows: []adm.Value{adm.String(plan)}, Plan: plan}, nil
	}
	return Result{}, fmt.Errorf("core: unsupported statement %T", stmt)
}

// evaluator builds a statement-scoped evaluator.
func (e *Engine) evaluator() *algebricks.Evaluator {
	return &algebricks.Evaluator{
		Catalog: (*engineCatalog)(e),
		Now:     adm.Datetime(e.cfg.Now().UnixMilli()),
	}
}

// engineCatalog adapts Engine to algebricks.Catalog.
type engineCatalog Engine

// Resolve implements algebricks.Catalog.
func (c *engineCatalog) Resolve(name string) (algebricks.DataSource, bool) {
	e := (*Engine)(c)
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.datasets[name]
	if !ok {
		return nil, false
	}
	return d, true
}

// ResolveIndex implements algebricks.Catalog.
func (c *engineCatalog) ResolveIndex(dataset, field string) (algebricks.IndexAccessor, bool) {
	e := (*Engine)(c)
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.datasets[dataset]
	if !ok {
		return nil, false
	}
	for _, si := range d.idxs {
		if len(si.def.Fields) > 0 && si.def.Fields[0] == field {
			return si, true
		}
	}
	return nil, false
}

// execQuery compiles and runs a query: SELECT blocks go through the full
// Algebricks → Hyracks pipeline; bare expressions evaluate directly.
func (e *Engine) execQuery(ctx context.Context, q *sqlpp.QueryStmt) (Result, error) {
	e.mQueries.Inc()
	sp := obs.SpanFromContext(ctx)
	ev := e.evaluator()
	switch q.Body.(type) {
	case *sqlpp.SelectExpr, *sqlpp.UnionExpr:
	default:
		es := sp.StartChild("execute")
		v, err := ev.Eval(q.Body, algebricks.NewEnv(nil, nil, nil))
		es.End()
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: ResultQuery, Rows: []adm.Value{v}}, nil
	}
	cs := sp.StartChild("compile")
	ts := cs.StartChild("translate")
	tr := &algebricks.Translator{Ev: ev, Catalog: ev.Catalog}
	plan, err := tr.TranslateQuery(q.Body)
	ts.End()
	if err != nil {
		cs.End()
		return Result{}, err
	}
	opt := cs.StartChild("optimize")
	var orep algebricks.OptReport
	plan, orep = e.optimizePlan(tr, plan)
	opt.End()
	g := &algebricks.JobGen{
		Cluster:     e.cluster,
		Catalog:     ev.Catalog,
		Ev:          ev,
		Parallelism: e.cfg.Nodes,
	}
	js := cs.StartChild("jobgen")
	coll := &hyracks.Collector{}
	job, err := g.Build(plan, coll)
	js.End()
	cs.End()
	if err != nil {
		return Result{}, err
	}
	// Execute with node-failure retry: the first attempt uses the job
	// built under the compile span; a retry regenerates the job with a
	// fresh collector (sinks hold per-run state) and runs it on the
	// surviving nodes.
	first := true
	es := sp.StartChild("execute")
	rep, err := e.cluster.RunWithRetry(obs.ContextWithSpan(ctx, es), func() (*hyracks.Job, error) {
		if first {
			first = false
			return job, nil
		}
		coll = &hyracks.Collector{}
		return g.Build(plan, coll)
	}, hyracks.RetryPolicy{})
	es.End()
	if err != nil {
		return Result{Attempts: rep.Attempts, DeadNodes: rep.DeadNodes, PeakWorkingMem: rep.PeakWorkingBytes}, err
	}
	es.Add("resultTuples", int64(coll.Len()))
	rows := make([]adm.Value, 0, coll.Len())
	for _, t := range coll.Tuples() {
		rows = append(rows, t[0])
	}
	return Result{
		Kind: ResultQuery, Rows: rows, Plan: algebricks.PlanString(plan),
		PlanJSON: algebricks.PlanJSON(plan), RulesFired: orep.Fired,
		Attempts: rep.Attempts, DeadNodes: rep.DeadNodes, PeakWorkingMem: rep.PeakWorkingBytes,
	}, nil
}

// optimizePlan runs the engine's optimizer, honoring the OptimizerOff
// knob (in which case the plan runs exactly as translated).
func (e *Engine) optimizePlan(tr *algebricks.Translator, plan algebricks.Op) (algebricks.Op, algebricks.OptReport) {
	if e.cfg.OptimizerOff {
		return plan, algebricks.OptReport{}
	}
	return e.opt.Optimize(tr, plan)
}

// Explain returns the optimized plan for a query without running it.
func (e *Engine) Explain(src string) (string, error) {
	q, err := sqlpp.ParseQuery(src)
	if err != nil {
		return "", err
	}
	return e.explainAST(q)
}

// explainAST renders the optimized plan for a parsed query.
func (e *Engine) explainAST(q *sqlpp.QueryStmt) (string, error) {
	switch q.Body.(type) {
	case *sqlpp.SelectExpr, *sqlpp.UnionExpr:
	default:
		return "constant expression\n", nil
	}
	ev := e.evaluator()
	tr := &algebricks.Translator{Ev: ev, Catalog: ev.Catalog}
	plan, err := tr.TranslateQuery(q.Body)
	if err != nil {
		return "", err
	}
	plan, _ = e.optimizePlan(tr, plan)
	return algebricks.PlanString(plan), nil
}

// trimSemis is a small helper for REPLs built on the engine.
func trimSemis(s string) string { return strings.TrimRight(strings.TrimSpace(s), ";") }
