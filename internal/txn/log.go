// Package txn provides AsterixDB-style "NoSQL transactions": record-level
// atomicity and durability via a redo-only write-ahead log, exclusive
// record locks on primary keys for modifications, and crash recovery that
// replays committed updates into LSM memory components (feature 9 of the
// paper's system overview; its importance to productization is Section
// VII's hardening story).
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// RecordType tags log records.
type RecordType uint8

// Log record types.
const (
	RecUpdate RecordType = iota + 1
	RecCommit
	RecAbort
	RecCheckpoint
)

// Op is the logged mutation kind.
type Op uint8

// Mutation kinds.
const (
	OpUpsert Op = iota + 1
	OpDelete
)

// LogRecord is one entry in the WAL.
type LogRecord struct {
	LSN       int64 // byte offset in the log (assigned by Append)
	Type      RecordType
	TxnID     int64
	Dataset   string
	Partition int32
	Op        Op
	Key       []byte
	Value     []byte
	// SafeLSN is, for checkpoints, the LSN from which redo must start.
	SafeLSN int64
}

// LogManager is an append-only, checksummed write-ahead log.
type LogManager struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	path string
}

// OpenLog opens (creating if needed) the log file at dir/txn.log.
func OpenLog(dir string) (*LogManager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "txn.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &LogManager{f: f, size: st.Size(), path: path}, nil
}

// Close closes the log file.
func (lm *LogManager) Close() error { return lm.f.Close() }

// Size returns the current log size (the next LSN).
func (lm *LogManager) Size() int64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.size
}

// Append writes a record and returns its LSN.
func (lm *LogManager) Append(rec *LogRecord) (int64, error) {
	body := encodeRecord(rec)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lsn := lm.size
	//lint:ignore lock-held WAL ordering: appends must be serialized under mu so LSNs match file offsets
	if _, err := lm.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("txn: append: %w", err)
	}
	//lint:ignore lock-held WAL ordering: appends must be serialized under mu so LSNs match file offsets
	if _, err := lm.f.Write(body); err != nil {
		return 0, fmt.Errorf("txn: append: %w", err)
	}
	lm.size += int64(len(hdr) + len(body))
	rec.LSN = lsn
	return lsn, nil
}

// Sync forces the log to stable storage (called at commit when
// durability is requested).
func (lm *LogManager) Sync() error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	//lint:ignore lock-held group commit: syncing under mu lets concurrent committers share one fsync
	return lm.f.Sync()
}

func encodeRecord(r *LogRecord) []byte {
	buf := make([]byte, 0, 64+len(r.Key)+len(r.Value)+len(r.Dataset))
	buf = append(buf, byte(r.Type))
	buf = binary.AppendVarint(buf, r.TxnID)
	buf = binary.AppendUvarint(buf, uint64(len(r.Dataset)))
	buf = append(buf, r.Dataset...)
	buf = binary.AppendVarint(buf, int64(r.Partition))
	buf = append(buf, byte(r.Op))
	buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Value)))
	buf = append(buf, r.Value...)
	buf = binary.AppendVarint(buf, r.SafeLSN)
	return buf
}

func decodeRecord(body []byte) (*LogRecord, error) {
	r := &LogRecord{}
	if len(body) < 2 {
		return nil, fmt.Errorf("txn: short record")
	}
	r.Type = RecordType(body[0])
	pos := 1
	v, n := binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.TxnID = v
	pos += n
	l, n := binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Dataset = string(body[pos : pos+int(l)])
	pos += int(l)
	v, n = binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.Partition = int32(v)
	pos += n
	if pos >= len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.Op = Op(body[pos])
	pos++
	l, n = binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Key = append([]byte(nil), body[pos:pos+int(l)]...)
	pos += int(l)
	l, n = binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Value = append([]byte(nil), body[pos:pos+int(l)]...)
	pos += int(l)
	v, n = binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.SafeLSN = v
	return r, nil
}

// Scan reads records from the given LSN to the end, stopping cleanly at a
// torn tail (a partial record after a crash is ignored).
func (lm *LogManager) Scan(fromLSN int64, fn func(rec *LogRecord) bool) error {
	lm.mu.Lock()
	size := lm.size
	lm.mu.Unlock()
	pos := fromLSN
	for pos < size {
		var hdr [8]byte
		if _, err := lm.f.ReadAt(hdr[:], pos); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn tail
			}
			return err
		}
		bl := int(binary.BigEndian.Uint32(hdr[0:]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		if pos+8+int64(bl) > size {
			return nil // torn tail
		}
		body := make([]byte, bl)
		if _, err := lm.f.ReadAt(body, pos+8); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(body) != sum {
			return nil // torn/corrupt tail: stop replay here
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return err
		}
		rec.LSN = pos
		if !fn(rec) {
			return nil
		}
		pos += 8 + int64(bl)
	}
	return nil
}
