// Package txn provides AsterixDB-style "NoSQL transactions": record-level
// atomicity and durability via a redo-only write-ahead log, exclusive
// record locks on primary keys for modifications, and crash recovery that
// replays committed updates into LSM memory components (feature 9 of the
// paper's system overview; its importance to productization is Section
// VII's hardening story).
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"asterix/internal/fault"
)

// RecordType tags log records.
type RecordType uint8

// Log record types.
const (
	RecUpdate RecordType = iota + 1
	RecCommit
	RecAbort
	RecCheckpoint
)

// Op is the logged mutation kind.
type Op uint8

// Mutation kinds.
const (
	OpUpsert Op = iota + 1
	OpDelete
)

// LogRecord is one entry in the WAL.
type LogRecord struct {
	LSN       int64 // byte offset in the log (assigned by Append)
	Type      RecordType
	TxnID     int64
	Dataset   string
	Partition int32
	Op        Op
	Key       []byte
	Value     []byte
	// SafeLSN is, for checkpoints, the LSN from which redo must start.
	SafeLSN int64
}

// LogManager is an append-only, checksummed write-ahead log.
type LogManager struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	path string
	// wedged is set after an injected torn write: the simulated process
	// died mid-append, so the log refuses further writes until the torn
	// tail is repaired (RepairTail) by a reopen/recovery.
	wedged bool
	// tornTails counts torn or corrupt tails detected by scans (atomic).
	tornTails int64
}

// OpenLog opens (creating if needed) the log file at dir/txn.log.
func OpenLog(dir string) (*LogManager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "txn.log")
	// O_APPEND: writes always land at EOF, so a reopened log appends after
	// the surviving records (and after RepairTail truncates a torn tail,
	// the next append lands exactly at the repaired end).
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &LogManager{f: f, size: st.Size(), path: path}, nil
}

// Close closes the log file.
func (lm *LogManager) Close() error { return lm.f.Close() }

// Size returns the current log size (the next LSN).
func (lm *LogManager) Size() int64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.size
}

// Append writes a record and returns its LSN.
func (lm *LogManager) Append(rec *LogRecord) (int64, error) {
	body := encodeRecord(rec)
	full := make([]byte, 0, 8+len(body))
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	full = append(full, hdr[:]...)
	full = append(full, body...)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.wedged {
		return 0, fmt.Errorf("txn: append: log wedged after torn write")
	}
	lsn := lm.size
	if frag, torn := fault.Tear(fault.PointWALAppend, full); torn {
		// Simulated crash mid-write: a prefix of the record reaches the
		// file and the "process" dies — the log wedges so nothing (not
		// even an abort record) can land after the torn fragment. Only
		// RepairTail (the reopen/recovery path) unwedges it.
		//lint:ignore lock-held,err-discard serialized WAL write of a torn fragment that is garbage by construction; recovery truncates it regardless
		_, _ = lm.f.Write(frag)
		lm.wedged = true
		return 0, fmt.Errorf("txn: append %s: %w", rec.Dataset, fault.ErrInjected)
	}
	//lint:ignore lock-held WAL ordering: appends must be serialized under mu so LSNs match file offsets
	if _, err := lm.f.Write(full); err != nil {
		return 0, fmt.Errorf("txn: append: %w", err)
	}
	lm.size += int64(len(full))
	rec.LSN = lsn
	return lsn, nil
}

// Sync forces the log to stable storage (called at commit when
// durability is requested).
func (lm *LogManager) Sync() error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.wedged {
		return fmt.Errorf("txn: sync: log wedged after torn write")
	}
	if err := fault.Hit(fault.PointWALSync); err != nil {
		return fmt.Errorf("txn: sync: %w", err)
	}
	//lint:ignore lock-held group commit: syncing under mu lets concurrent committers share one fsync
	return lm.f.Sync()
}

// TornTails returns how many torn or corrupt log tails scans have
// detected over this manager's lifetime.
func (lm *LogManager) TornTails() int64 { return atomic.LoadInt64(&lm.tornTails) }

func encodeRecord(r *LogRecord) []byte {
	buf := make([]byte, 0, 64+len(r.Key)+len(r.Value)+len(r.Dataset))
	buf = append(buf, byte(r.Type))
	buf = binary.AppendVarint(buf, r.TxnID)
	buf = binary.AppendUvarint(buf, uint64(len(r.Dataset)))
	buf = append(buf, r.Dataset...)
	buf = binary.AppendVarint(buf, int64(r.Partition))
	buf = append(buf, byte(r.Op))
	buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Value)))
	buf = append(buf, r.Value...)
	buf = binary.AppendVarint(buf, r.SafeLSN)
	return buf
}

func decodeRecord(body []byte) (*LogRecord, error) {
	r := &LogRecord{}
	if len(body) < 2 {
		return nil, fmt.Errorf("txn: short record")
	}
	r.Type = RecordType(body[0])
	pos := 1
	v, n := binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.TxnID = v
	pos += n
	l, n := binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Dataset = string(body[pos : pos+int(l)])
	pos += int(l)
	v, n = binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.Partition = int32(v)
	pos += n
	if pos >= len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.Op = Op(body[pos])
	pos++
	l, n = binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Key = append([]byte(nil), body[pos:pos+int(l)]...)
	pos += int(l)
	l, n = binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(l) > len(body) {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	pos += n
	r.Value = append([]byte(nil), body[pos:pos+int(l)]...)
	pos += int(l)
	v, n = binary.Varint(body[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("txn: corrupt record")
	}
	r.SafeLSN = v
	return r, nil
}

// Scan reads records from the given LSN to the end, stopping cleanly at a
// torn tail (a partial record after a crash is ignored, never surfaced as
// an error that would abort recovery).
func (lm *LogManager) Scan(fromLSN int64, fn func(rec *LogRecord) bool) error {
	_, err := lm.scan(fromLSN, fn)
	return err
}

// scan walks whole, checksummed records from fromLSN and returns the
// offset just past the last one — the valid end of the log. Anything
// after that offset (a partial header, a short body, a checksum mismatch,
// or an undecodable record) is a torn tail: the scan ends there, the
// torn-tail counter ticks, and no error is returned.
func (lm *LogManager) scan(fromLSN int64, fn func(rec *LogRecord) bool) (int64, error) {
	lm.mu.Lock()
	size := lm.size
	lm.mu.Unlock()
	pos := fromLSN
	for pos < size {
		var hdr [8]byte
		if _, err := lm.f.ReadAt(hdr[:], pos); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				lm.noteTornTail()
				return pos, nil
			}
			return pos, err
		}
		bl := int(binary.BigEndian.Uint32(hdr[0:]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		if pos+8+int64(bl) > size {
			lm.noteTornTail()
			return pos, nil
		}
		body := make([]byte, bl)
		if _, err := lm.f.ReadAt(body, pos+8); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				lm.noteTornTail()
				return pos, nil
			}
			return pos, err
		}
		if crc32.ChecksumIEEE(body) != sum {
			lm.noteTornTail()
			return pos, nil
		}
		rec, err := decodeRecord(body)
		if err != nil {
			// Checksummed but undecodable: treat like a torn tail rather
			// than failing recovery — everything before pos is intact.
			lm.noteTornTail()
			return pos, nil
		}
		rec.LSN = pos
		if !fn(rec) {
			return pos, nil
		}
		pos += 8 + int64(bl)
	}
	return pos, nil
}

func (lm *LogManager) noteTornTail() { atomic.AddInt64(&lm.tornTails, 1) }

// RepairTail truncates any torn tail — bytes past the last whole,
// checksummed record — so that post-recovery appends land at an offset
// future scans can reach. Recovery calls it before replay; it also
// clears the wedged state left by an injected torn write. Returns the
// number of bytes dropped.
func (lm *LogManager) RepairTail() (int64, error) {
	validEnd, err := lm.scan(0, func(*LogRecord) bool { return true })
	if err != nil {
		return 0, err
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	// Stat rather than lm.size: an injected torn write reaches the file
	// without ever advancing the in-memory size.
	//lint:ignore lock-held cold recovery path; the tail must not move between measuring and truncating
	st, err := lm.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("txn: repair tail: %w", err)
	}
	dropped := st.Size() - validEnd
	if dropped <= 0 {
		lm.wedged = false
		return 0, nil
	}
	//lint:ignore lock-held truncation must be atomic with respect to concurrent appends
	if err := lm.f.Truncate(validEnd); err != nil {
		return 0, fmt.Errorf("txn: repair tail: %w", err)
	}
	lm.size = validEnd
	lm.wedged = false
	return dropped, nil
}
