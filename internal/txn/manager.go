package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/obs"
)

// ErrLockTimeout marks a lock wait that exceeded the manager's timeout —
// a likely deadlock. It is retriable: the caller may abort and rerun the
// transaction (the server maps it to a retriable error code, not a 500).
var ErrLockTimeout = errors.New("lock wait timeout")

// LockManager grants exclusive record-level locks keyed by (dataset,
// primary-key bytes). Lock waits time out to break deadlocks (AsterixDB
// locks only primary keys for modifications, which with timeouts is
// sufficient for NoSQL-style single-record transactions and simple
// multi-record ones).
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*lockEntry
	Timeout time.Duration

	// Metric handles (nil-safe no-ops until BindMetrics).
	waits    *obs.Counter
	timeouts *obs.Counter
	waitSecs *obs.Histogram
}

// BindMetrics exports lock contention through an obs registry: how many
// acquisitions blocked, how many timed out, and a wait-time histogram.
func (lm *LockManager) BindMetrics(r *obs.Registry) {
	lm.waits = r.Counter("txn_lock_waits_total", "lock acquisitions that blocked on a held lock")
	lm.timeouts = r.Counter("txn_lock_timeouts_total", "lock waits that hit the deadlock timeout")
	lm.waitSecs = r.Histogram("txn_lock_wait_seconds", "time spent waiting for record locks", nil)
}

type lockEntry struct {
	owner   int64
	waiters int
	cond    *sync.Cond
}

// NewLockManager creates a lock manager with the given wait timeout.
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &LockManager{locks: make(map[string]*lockEntry), Timeout: timeout}
}

func lockName(dataset string, key []byte) string {
	return dataset + "\x00" + string(key)
}

// Lock acquires the exclusive lock on (dataset, key) for txnID, waiting up
// to the timeout. Re-acquiring a held lock is a no-op.
func (lm *LockManager) Lock(txnID int64, dataset string, key []byte) error {
	return lm.lock(txnID, dataset, key, nil)
}

// lock is Lock with wait-time attribution: blocked time lands on sp's
// WaitLock category (nil-safe) in addition to the registry histogram.
func (lm *LockManager) lock(txnID int64, dataset string, key []byte, sp *obs.Span) error {
	name := lockName(dataset, key)
	deadline := time.Now().Add(lm.Timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	e, ok := lm.locks[name]
	if !ok {
		e = &lockEntry{owner: txnID}
		e.cond = sync.NewCond(&lm.mu)
		lm.locks[name] = e
		return nil
	}
	if e.owner == txnID {
		return nil
	}
	var waitStart time.Time
	for e.owner != 0 {
		if waitStart.IsZero() {
			waitStart = time.Now()
			lm.waits.Inc()
		}
		if time.Now().After(deadline) {
			lm.timeouts.Inc()
			lm.waitSecs.Observe(time.Since(waitStart).Seconds())
			sp.AddWait(obs.WaitLock, time.Since(waitStart))
			return fmt.Errorf("txn %d: %w on %s (held by txn %d) — possible deadlock", txnID, ErrLockTimeout, dataset, e.owner)
		}
		e.waiters++
		// Timed wait: poll via a helper goroutine waking the cond.
		done := make(chan struct{})
		go func() {
			select {
			case <-time.After(50 * time.Millisecond):
				lm.mu.Lock()
				e.cond.Broadcast()
				lm.mu.Unlock()
			case <-done:
			}
		}()
		e.cond.Wait()
		close(done)
		e.waiters--
	}
	if !waitStart.IsZero() {
		lm.waitSecs.Observe(time.Since(waitStart).Seconds())
		sp.AddWait(obs.WaitLock, time.Since(waitStart))
	}
	e.owner = txnID
	return nil
}

// UnlockAll releases every lock held by txnID.
func (lm *LockManager) UnlockAll(txnID int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for name, e := range lm.locks {
		if e.owner == txnID {
			e.owner = 0
			if e.waiters > 0 {
				e.cond.Broadcast()
			} else {
				delete(lm.locks, name)
			}
		}
	}
}

// Manager coordinates transactions: ids, the WAL, and locks.
type Manager struct {
	Log   *LogManager
	Locks *LockManager
	// NoSync skips the fsync at commit (group-commit stand-in for
	// benchmarks; updates are still WAL-ordered and recoverable from any
	// in-process crash).
	NoSync bool

	mu     sync.Mutex
	nextID int64
	// checkpointLSN is the redo start point recorded by the last
	// checkpoint.
	checkpointLSN int64

	// Lifecycle counters (atomic).
	begins  int64
	commits int64
	aborts  int64
}

// Stats is an atomic snapshot of transaction lifecycle counters.
type Stats struct {
	Begins  int64
	Commits int64
	Aborts  int64
}

// Stats snapshots the manager's counters; safe to call concurrently with
// running transactions.
func (m *Manager) Stats() Stats {
	return Stats{
		Begins:  atomic.LoadInt64(&m.begins),
		Commits: atomic.LoadInt64(&m.commits),
		Aborts:  atomic.LoadInt64(&m.aborts),
	}
}

// NewManager builds a transaction manager over an opened log.
func NewManager(log *LogManager) *Manager {
	return &Manager{Log: log, Locks: NewLockManager(0), nextID: 1}
}

// Txn is one transaction's handle.
type Txn struct {
	ID  int64
	mgr *Manager
	// span receives wait-time attribution (lock waits) for the statement
	// this transaction serves; nil outside traced requests.
	span *obs.Span
	// done guards against double commit/abort.
	done bool
}

// AttachSpan routes the transaction's lock-wait time to a query span
// (nil-safe; attribution only, no behavior change). Returns t for
// chaining off Begin.
func (t *Txn) AttachSpan(sp *obs.Span) *Txn {
	t.span = sp
	return t
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	atomic.AddInt64(&m.begins, 1)
	return &Txn{ID: id, mgr: m}
}

// LogUpdate write-ahead-logs one mutation. The caller applies the change
// to the LSM memory component only after this returns.
func (t *Txn) LogUpdate(dataset string, partition int32, op Op, key, value []byte) error {
	if t.done {
		return fmt.Errorf("txn %d: already finished", t.ID)
	}
	if err := t.mgr.Locks.lock(t.ID, dataset, key, t.span); err != nil {
		return err
	}
	_, err := t.mgr.Log.Append(&LogRecord{
		Type: RecUpdate, TxnID: t.ID, Dataset: dataset,
		Partition: partition, Op: op, Key: key, Value: value,
	})
	return err
}

// Commit writes the commit record, syncs the log, and releases locks.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn %d: already finished", t.ID)
	}
	t.done = true
	if _, err := t.mgr.Log.Append(&LogRecord{Type: RecCommit, TxnID: t.ID}); err != nil {
		return err
	}
	if !t.mgr.NoSync {
		if err := t.mgr.Log.Sync(); err != nil {
			return err
		}
	}
	t.mgr.Locks.UnlockAll(t.ID)
	atomic.AddInt64(&t.mgr.commits, 1)
	return nil
}

// Abort writes an abort record and releases locks. With redo-only logging
// and no-steal memory components, aborted updates are simply never redone;
// the caller must not have applied them to visible state (core applies
// updates only at commit for multi-statement transactions, or uses
// single-statement auto-commit).
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	t.done = true
	if _, err := t.mgr.Log.Append(&LogRecord{Type: RecAbort, TxnID: t.ID}); err != nil {
		return err
	}
	t.mgr.Locks.UnlockAll(t.ID)
	atomic.AddInt64(&t.mgr.aborts, 1)
	return nil
}

// Checkpoint records that all memory components below the current log end
// have been flushed; recovery will start redo from this point.
func (m *Manager) Checkpoint() error {
	safe := m.Log.Size()
	if _, err := m.Log.Append(&LogRecord{Type: RecCheckpoint, SafeLSN: safe}); err != nil {
		return err
	}
	if err := m.Log.Sync(); err != nil {
		return err
	}
	m.mu.Lock()
	m.checkpointLSN = safe
	m.mu.Unlock()
	return nil
}

// Recover replays committed updates since the last checkpoint, calling
// apply for each in log order. It returns the number of records redone.
// A torn tail (crash mid-append) is truncated first so post-recovery
// appends land at a reachable offset, never stranded behind garbage.
func (m *Manager) Recover(apply func(rec *LogRecord) error) (int, error) {
	if _, err := m.Log.RepairTail(); err != nil {
		return 0, err
	}
	// Pass 1: find the last checkpoint and the set of committed txns.
	committed := map[int64]bool{}
	start := int64(0)
	err := m.Log.Scan(0, func(rec *LogRecord) bool {
		switch rec.Type {
		case RecCheckpoint:
			start = rec.SafeLSN
		case RecCommit:
			committed[rec.TxnID] = true
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	// Pass 2: redo committed updates from the checkpoint.
	redone := 0
	var applyErr error
	err = m.Log.Scan(start, func(rec *LogRecord) bool {
		if rec.Type == RecUpdate && committed[rec.TxnID] {
			if e := apply(rec); e != nil {
				applyErr = e
				return false
			}
			redone++
		}
		return true
	})
	if err != nil {
		return redone, err
	}
	if applyErr != nil {
		return redone, applyErr
	}
	// Resume id assignment past anything seen in the log.
	m.mu.Lock()
	for id := range committed {
		if id >= m.nextID {
			m.nextID = id + 1
		}
	}
	m.mu.Unlock()
	return redone, nil
}
