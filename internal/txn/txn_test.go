package txn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"asterix/internal/fault"
	"asterix/internal/obs"
)

func newLog(t testing.TB) (*LogManager, string) {
	t.Helper()
	dir := t.TempDir()
	lm, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lm.Close() })
	return lm, dir
}

func TestLogAppendScanRoundTrip(t *testing.T) {
	lm, _ := newLog(t)
	recs := []*LogRecord{
		{Type: RecUpdate, TxnID: 1, Dataset: "Users", Partition: 2, Op: OpUpsert, Key: []byte("k1"), Value: []byte("v1")},
		{Type: RecUpdate, TxnID: 1, Dataset: "Users", Partition: 0, Op: OpDelete, Key: []byte("k2")},
		{Type: RecCommit, TxnID: 1},
	}
	for _, r := range recs {
		if _, err := lm.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var got []*LogRecord
	if err := lm.Scan(0, func(r *LogRecord) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("scanned %d records", len(got))
	}
	if got[0].Dataset != "Users" || string(got[0].Key) != "k1" || string(got[0].Value) != "v1" {
		t.Errorf("record 0 mismatch: %+v", got[0])
	}
	if got[1].Op != OpDelete || got[1].Partition != 0 {
		t.Errorf("record 1 mismatch: %+v", got[1])
	}
	if got[2].Type != RecCommit {
		t.Errorf("record 2 mismatch: %+v", got[2])
	}
	// LSNs are strictly increasing.
	if !(got[0].LSN < got[1].LSN && got[1].LSN < got[2].LSN) {
		t.Error("LSNs not increasing")
	}
}

func TestLogTornTailIgnored(t *testing.T) {
	lm, dir := newLog(t)
	lm.Append(&LogRecord{Type: RecUpdate, TxnID: 1, Dataset: "d", Op: OpUpsert, Key: []byte("k"), Value: []byte("v")})
	lm.Append(&LogRecord{Type: RecCommit, TxnID: 1})
	lm.Close()
	// Simulate a crash mid-append: garbage partial header at the tail.
	path := filepath.Join(dir, "txn.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 99, 1, 2})
	f.Close()

	lm2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lm2.Close()
	n := 0
	if err := lm2.Scan(0, func(r *LogRecord) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan over torn log returned %d records", n)
	}
}

func TestRecoverReplaysOnlyCommitted(t *testing.T) {
	lm, _ := newLog(t)
	m := NewManager(lm)

	t1 := m.Begin()
	t1.LogUpdate("Users", 0, OpUpsert, []byte("a"), []byte("1"))
	t1.Commit()

	t2 := m.Begin() // never commits (loser)
	t2.LogUpdate("Users", 0, OpUpsert, []byte("b"), []byte("2"))

	t3 := m.Begin()
	t3.LogUpdate("Users", 0, OpDelete, []byte("a"), nil)
	t3.Commit()

	var applied []string
	n, err := m.Recover(func(rec *LogRecord) error {
		applied = append(applied, fmt.Sprintf("%d:%s", rec.Op, rec.Key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("redone %d, want 2 (loser excluded)", n)
	}
	if applied[0] != fmt.Sprintf("%d:a", OpUpsert) || applied[1] != fmt.Sprintf("%d:a", OpDelete) {
		t.Errorf("replay order wrong: %v", applied)
	}
}

func TestCheckpointLimitsRedo(t *testing.T) {
	lm, _ := newLog(t)
	m := NewManager(lm)
	t1 := m.Begin()
	t1.LogUpdate("d", 0, OpUpsert, []byte("old"), []byte("x"))
	t1.Commit()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	t2.LogUpdate("d", 0, OpUpsert, []byte("new"), []byte("y"))
	t2.Commit()

	var keys []string
	if _, err := m.Recover(func(rec *LogRecord) error {
		keys = append(keys, string(rec.Key))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "new" {
		t.Fatalf("redo after checkpoint should only replay 'new': %v", keys)
	}
}

func TestAbortExcludesUpdates(t *testing.T) {
	lm, _ := newLog(t)
	m := NewManager(lm)
	tx := m.Begin()
	tx.LogUpdate("d", 0, OpUpsert, []byte("k"), []byte("v"))
	tx.Abort()
	n, err := m.Recover(func(rec *LogRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("aborted txn was redone (%d records)", n)
	}
	if err := tx.Commit(); err == nil {
		t.Error("commit after abort must fail")
	}
}

func TestLockConflictAndRelease(t *testing.T) {
	lm := NewLockManager(200 * time.Millisecond)
	if err := lm.Lock(1, "d", []byte("k")); err != nil {
		t.Fatal(err)
	}
	// Re-entrant acquire is fine.
	if err := lm.Lock(1, "d", []byte("k")); err != nil {
		t.Fatal(err)
	}
	// Conflicting lock times out.
	if err := lm.Lock(2, "d", []byte("k")); err == nil {
		t.Fatal("conflicting lock should time out")
	}
	// Different key does not conflict.
	if err := lm.Lock(2, "d", []byte("other")); err != nil {
		t.Fatal(err)
	}
	lm.UnlockAll(1)
	if err := lm.Lock(2, "d", []byte("k")); err != nil {
		t.Fatalf("lock after release failed: %v", err)
	}
	lm.UnlockAll(2)
}

func TestLockHandoffUnderContention(t *testing.T) {
	lm := NewLockManager(5 * time.Second)
	var counter int
	var wg sync.WaitGroup
	for g := 1; g <= 8; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := lm.Lock(id, "d", []byte("hot")); err != nil {
					t.Error(err)
					return
				}
				counter++ // protected by the record lock
				lm.UnlockAll(id)
			}
		}(int64(g))
	}
	wg.Wait()
	if counter != 200 {
		t.Fatalf("counter = %d, lock exclusion broken", counter)
	}
}

func TestManagerIDsMonotonic(t *testing.T) {
	lm, _ := newLog(t)
	m := NewManager(lm)
	a, b := m.Begin(), m.Begin()
	if a.ID >= b.ID {
		t.Error("txn ids must increase")
	}
}

func TestRepairTailTruncatesGarbage(t *testing.T) {
	lm, dir := newLog(t)
	lm.Append(&LogRecord{Type: RecUpdate, TxnID: 1, Dataset: "d", Op: OpUpsert, Key: []byte("k"), Value: []byte("v")})
	lm.Append(&LogRecord{Type: RecCommit, TxnID: 1})
	lm.Close()
	// Crash mid-append: a plausible-looking torn header + partial body.
	path := filepath.Join(dir, "txn.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 40, 9, 9, 9, 9, 1, 2, 3})
	f.Close()

	lm2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lm2.Close()
	m := NewManager(lm2)
	m.NoSync = true
	if _, err := m.Recover(func(*LogRecord) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := lm2.TornTails(); got != 1 {
		t.Fatalf("TornTails = %d, want 1", got)
	}
	// Post-repair appends must be reachable by a future scan: without the
	// truncation they would sit behind the garbage and be lost.
	tx := m.Begin()
	if err := tx.LogUpdate("d", 0, OpUpsert, []byte("after"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := lm2.Scan(0, func(r *LogRecord) bool {
		if r.Type == RecUpdate {
			keys = append(keys, string(r.Key))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[1] != "after" {
		t.Fatalf("post-repair append unreachable: scanned keys %v", keys)
	}
}

func TestTornWriteFaultWedgesLog(t *testing.T) {
	fault.Disarm()
	defer fault.Disarm()
	lm, _ := newLog(t)
	m := NewManager(lm)
	m.NoSync = true
	t1 := m.Begin()
	if err := t1.LogUpdate("d", 0, OpUpsert, []byte("pre"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm("txn.wal.append:torn"); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	err := t2.LogUpdate("d", 0, OpUpsert, []byte("torn"), []byte("2"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected torn write, got %v", err)
	}
	fault.Disarm()
	// The log is wedged: even the abort record must not land after the
	// torn fragment.
	if err := t2.Abort(); err == nil {
		t.Fatal("abort should fail on a wedged log")
	}

	// Recovery repairs the tail; the pre-crash commit survives, the torn
	// txn is gone, and the log accepts (reachable) appends again.
	var keys []string
	if _, err := m.Recover(func(rec *LogRecord) error {
		keys = append(keys, string(rec.Key))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "pre" {
		t.Fatalf("recovered keys %v, want [pre]", keys)
	}
	t3 := m.Begin()
	if err := t3.LogUpdate("d", 0, OpUpsert, []byte("post"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWALSyncFault(t *testing.T) {
	fault.Disarm()
	defer fault.Disarm()
	lm, _ := newLog(t)
	m := NewManager(lm)
	if err := fault.Arm("txn.wal.sync:error"); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.LogUpdate("d", 0, OpUpsert, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit with failing sync: got %v", err)
	}
}

func TestLockTimeoutTypedAndMetered(t *testing.T) {
	lm := NewLockManager(100 * time.Millisecond)
	r := obs.NewRegistry()
	lm.BindMetrics(r)
	if err := lm.Lock(1, "d", []byte("k")); err != nil {
		t.Fatal(err)
	}
	err := lm.Lock(2, "d", []byte("k"))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	snap := r.Snapshot()
	if v := snap["txn_lock_waits_total"].(int64); v != 1 {
		t.Fatalf("txn_lock_waits_total = %d, want 1", v)
	}
	if v := snap["txn_lock_timeouts_total"].(int64); v != 1 {
		t.Fatalf("txn_lock_timeouts_total = %d, want 1", v)
	}
	hs := snap["txn_lock_wait_seconds"].(obs.HistogramSnapshot)
	if hs.Count != 1 {
		t.Fatalf("txn_lock_wait_seconds count = %d, want 1", hs.Count)
	}
	lm.UnlockAll(1)
}
