// Package external implements external-dataset adapters (feature 6 of the
// paper's overview): data that lives outside the system — local files
// standing in for the paper's HDFS — made queryable in situ, schema
// applied on read. Figure 3(b)'s delimited-text access log is the
// motivating example.
package external

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asterix/internal/adm"
)

// Adapter scans external data into ADM records.
type Adapter interface {
	// Scan emits every record of the external source belonging to the
	// given partition (records are dealt round-robin across partitions).
	Scan(partition, numPartitions int, emit func(rec adm.Value) error) error
}

// New builds an adapter by name. Supported: "localfs" with params
// "path" (required; a "localhost://" prefix is tolerated), "format" =
// "delimited-text" (params "delimiter", default "|") or "json"/"adm"
// (one JSON object per line). Delimited text needs the dataset's closed
// type to name and type its columns.
func New(name string, params map[string]string, typ *adm.Type) (Adapter, error) {
	switch name {
	case "localfs":
		path := params["path"]
		if path == "" {
			return nil, fmt.Errorf("external: localfs adapter requires a \"path\" parameter")
		}
		path = strings.TrimPrefix(path, "localhost://")
		switch params["format"] {
		case "delimited-text":
			delim := params["delimiter"]
			if delim == "" {
				delim = "|"
			}
			if typ == nil || typ.Tag != adm.TagObject {
				return nil, fmt.Errorf("external: delimited-text requires an object type")
			}
			return &delimitedAdapter{path: path, delim: delim, typ: typ}, nil
		case "json", "adm", "":
			return &jsonLinesAdapter{path: path}, nil
		}
		return nil, fmt.Errorf("external: unknown format %q", params["format"])
	}
	return nil, fmt.Errorf("external: unknown adapter %q", name)
}

// delimitedAdapter parses delimiter-separated text using the dataset
// type's declared field order.
type delimitedAdapter struct {
	path  string
	delim string
	typ   *adm.Type
}

func (a *delimitedAdapter) Scan(partition, numPartitions int, emit func(adm.Value) error) error {
	f, err := os.Open(a.path)
	if err != nil {
		return fmt.Errorf("external: %w", err)
	}
	//lint:ignore err-discard read-only scan; a close failure cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		line := sc.Text()
		lineNo++
		if strings.TrimSpace(line) == "" {
			continue
		}
		if numPartitions > 1 && (lineNo-1)%numPartitions != partition {
			continue
		}
		cols := strings.Split(line, a.delim)
		if len(cols) != len(a.typ.Fields) {
			return fmt.Errorf("external: %s:%d: %d columns, type %s declares %d",
				a.path, lineNo, len(cols), a.typ.Name, len(a.typ.Fields))
		}
		rec := adm.NewObject()
		for i, ft := range a.typ.Fields {
			v, err := parseColumn(cols[i], ft.Type)
			if err != nil {
				return fmt.Errorf("external: %s:%d field %s: %w", a.path, lineNo, ft.Name, err)
			}
			rec.Set(ft.Name, v)
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

func parseColumn(text string, t *adm.Type) (adm.Value, error) {
	if t == nil || t.Tag != adm.TagPrimitive {
		return adm.String(text), nil
	}
	switch t.Prim {
	case adm.KindString:
		return adm.String(text), nil
	case adm.KindInt64:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", text)
		}
		return adm.Int64(i), nil
	case adm.KindDouble:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid double %q", text)
		}
		return adm.Double(f), nil
	case adm.KindBoolean:
		switch strings.ToLower(strings.TrimSpace(text)) {
		case "true", "1":
			return adm.Boolean(true), nil
		case "false", "0":
			return adm.Boolean(false), nil
		}
		return nil, fmt.Errorf("invalid boolean %q", text)
	case adm.KindDatetime:
		return adm.ParseDatetime(strings.TrimSpace(text))
	case adm.KindDate:
		return adm.ParseDate(strings.TrimSpace(text))
	case adm.KindTime:
		return adm.ParseTime(strings.TrimSpace(text))
	}
	return adm.String(text), nil
}

// jsonLinesAdapter parses one JSON value per line.
type jsonLinesAdapter struct {
	path string
}

func (a *jsonLinesAdapter) Scan(partition, numPartitions int, emit func(adm.Value) error) error {
	f, err := os.Open(a.path)
	if err != nil {
		return fmt.Errorf("external: %w", err)
	}
	//lint:ignore err-discard read-only scan; a close failure cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		lineNo++
		if line == "" {
			continue
		}
		if numPartitions > 1 && (lineNo-1)%numPartitions != partition {
			continue
		}
		v, err := adm.ParseJSON([]byte(line))
		if err != nil {
			return fmt.Errorf("external: %s:%d: %w", a.path, lineNo, err)
		}
		if err := emit(v); err != nil {
			return err
		}
	}
	return sc.Err()
}
