package external

import (
	"os"
	"path/filepath"
	"testing"

	"asterix/internal/adm"
)

func accessLogType() *adm.Type {
	return adm.NewObjectType("AccessLogType", true,
		adm.FieldType{Name: "ip", Type: adm.Primitive(adm.KindString)},
		adm.FieldType{Name: "time", Type: adm.Primitive(adm.KindString)},
		adm.FieldType{Name: "user", Type: adm.Primitive(adm.KindString)},
		adm.FieldType{Name: "verb", Type: adm.Primitive(adm.KindString)},
		adm.FieldType{Name: "path", Type: adm.Primitive(adm.KindString)},
		adm.FieldType{Name: "stat", Type: adm.Primitive(adm.KindInt64)},
		adm.FieldType{Name: "size", Type: adm.Primitive(adm.KindInt64)},
	)
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func scanAll(t *testing.T, a Adapter, parts int) []adm.Value {
	t.Helper()
	var out []adm.Value
	for p := 0; p < parts; p++ {
		if err := a.Scan(p, parts, func(rec adm.Value) error {
			out = append(out, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestDelimitedText(t *testing.T) {
	path := writeFile(t, "log.txt",
		"1.2.3.4|2019-03-01T00:00:00|alice|GET|/a|200|123\n"+
			"5.6.7.8|2019-03-02T00:00:00|bob|POST|/b|404|456\n")
	a, err := New("localfs", map[string]string{
		"path": "localhost://" + path, "format": "delimited-text", "delimiter": "|",
	}, accessLogType())
	if err != nil {
		t.Fatal(err)
	}
	recs := scanAll(t, a, 1)
	if len(recs) != 2 {
		t.Fatalf("records: %d", len(recs))
	}
	r0 := recs[0].(*adm.Object)
	if r0.Get("user").String() != `"alice"` {
		t.Errorf("user: %v", r0.Get("user"))
	}
	if v, _ := adm.AsInt(r0.Get("stat")); v != 200 {
		t.Errorf("stat: %v", r0.Get("stat"))
	}
	if r0.Get("path").String() != `"/a"` {
		t.Errorf("path: %v", r0.Get("path"))
	}
}

func TestDelimitedPartitioning(t *testing.T) {
	content := ""
	for i := 0; i < 10; i++ {
		content += "1.1.1.1|t|u|GET|/|200|1\n"
	}
	path := writeFile(t, "log.txt", content)
	a, err := New("localfs", map[string]string{
		"path": path, "format": "delimited-text",
	}, accessLogType())
	if err != nil {
		t.Fatal(err)
	}
	recs := scanAll(t, a, 3)
	if len(recs) != 10 {
		t.Fatalf("partitioned scan lost rows: %d", len(recs))
	}
}

func TestDelimitedColumnMismatch(t *testing.T) {
	path := writeFile(t, "bad.txt", "only|three|cols\n")
	a, _ := New("localfs", map[string]string{
		"path": path, "format": "delimited-text",
	}, accessLogType())
	err := a.Scan(0, 1, func(adm.Value) error { return nil })
	if err == nil {
		t.Fatal("column mismatch must error")
	}
}

func TestDelimitedBadInt(t *testing.T) {
	path := writeFile(t, "bad.txt", "ip|t|u|GET|/|notanint|1\n")
	a, _ := New("localfs", map[string]string{
		"path": path, "format": "delimited-text",
	}, accessLogType())
	if err := a.Scan(0, 1, func(adm.Value) error { return nil }); err == nil {
		t.Fatal("bad integer must error")
	}
}

func TestJSONLines(t *testing.T) {
	path := writeFile(t, "data.json",
		`{"id": 1, "name": "a", "nested": {"x": [1, 2]}}`+"\n\n"+
			`{"id": 2, "name": "b"}`+"\n")
	a, err := New("localfs", map[string]string{"path": path, "format": "json"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := scanAll(t, a, 1)
	if len(recs) != 2 {
		t.Fatalf("records: %d", len(recs))
	}
	o := recs[0].(*adm.Object)
	nested := o.Get("nested").(*adm.Object)
	if arr := nested.Get("x").(adm.Array); len(arr) != 2 {
		t.Errorf("nested: %v", nested)
	}
}

func TestJSONLinesCorrupt(t *testing.T) {
	path := writeFile(t, "bad.json", `{"id": 1`+"\n")
	a, _ := New("localfs", map[string]string{"path": path, "format": "json"}, nil)
	if err := a.Scan(0, 1, func(adm.Value) error { return nil }); err == nil {
		t.Fatal("corrupt json must error")
	}
}

func TestAdapterErrors(t *testing.T) {
	if _, err := New("hdfs", nil, nil); err == nil {
		t.Error("unknown adapter must fail")
	}
	if _, err := New("localfs", map[string]string{}, nil); err == nil {
		t.Error("missing path must fail")
	}
	if _, err := New("localfs", map[string]string{"path": "/x", "format": "avro"}, nil); err == nil {
		t.Error("unknown format must fail")
	}
	if _, err := New("localfs", map[string]string{"path": "/x", "format": "delimited-text"}, nil); err == nil {
		t.Error("delimited-text without type must fail")
	}
	a, _ := New("localfs", map[string]string{"path": "/does/not/exist", "format": "json"}, nil)
	if err := a.Scan(0, 1, func(adm.Value) error { return nil }); err == nil {
		t.Error("missing file must error at scan")
	}
}
