package mem

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func testGovernor(working, component int64) *Governor {
	return NewGovernor(Config{
		WorkingBytes:   working,
		ComponentBytes: component,
		MinTaskGrant:   4 << 10,
		AdmitTimeout:   200 * time.Millisecond,
	})
}

func TestReserveGrowShrinkRelease(t *testing.T) {
	g := testGovernor(1<<20, 1<<20)
	ctx := context.Background()
	gr, err := g.Reserve(ctx, 64<<10)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := g.WorkingGranted(); got != 64<<10 {
		t.Fatalf("granted = %d, want %d", got, 64<<10)
	}
	if !gr.Grow(128 << 10) {
		t.Fatal("Grow within budget denied")
	}
	if got := gr.Granted(); got != 192<<10 {
		t.Fatalf("Granted() = %d, want %d", got, 192<<10)
	}
	gr.Shrink(128 << 10)
	if got := gr.Granted(); got != 64<<10 {
		t.Fatalf("after Shrink Granted() = %d, want %d", got, 64<<10)
	}
	// Shrink never goes below the reservation minimum.
	gr.Shrink(1 << 20)
	if got := gr.Granted(); got != 64<<10 {
		t.Fatalf("Shrink below min: Granted() = %d, want %d", got, 64<<10)
	}
	gr.Release()
	gr.Release() // idempotent
	if got := g.WorkingGranted(); got != 0 {
		t.Fatalf("after Release granted = %d, want 0", got)
	}
}

func TestGrowDeniedAtCapAndWithWaiters(t *testing.T) {
	g := testGovernor(128<<10, 1<<20)
	ctx := context.Background()
	gr, err := g.Reserve(ctx, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Grow(128 << 10) {
		t.Fatal("Grow past the pool cap must be denied")
	}
	// Enqueue a waiter; even a fitting Grow is denied so the waiter can
	// admit.
	done := make(chan *Grant)
	go func() {
		w, err := g.Reserve(ctx, 128<<10)
		if err != nil {
			t.Errorf("waiter Reserve: %v", err)
		}
		done <- w
	}()
	for g.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	if gr.Grow(8 << 10) {
		t.Fatal("Grow with queued waiters must be denied")
	}
	if g.StatsSnapshot().GrowDenied < 2 {
		t.Fatalf("grow-denied counter = %d, want >= 2", g.StatsSnapshot().GrowDenied)
	}
	gr.Release()
	w := <-done
	w.Release()
}

func TestReserveFIFOAndTimeout(t *testing.T) {
	g := testGovernor(100, 1<<20)
	ctx := context.Background()
	first, err := g.Reserve(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Reserve(ctx, 50)
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("want ErrAdmissionTimeout, got %v", err)
	}
	st := g.StatsSnapshot()
	if st.Waits == 0 || st.Timeouts == 0 {
		t.Fatalf("want nonzero waits and timeouts, got %+v", st)
	}
	// Rejection: larger than the whole pool, immediate.
	if _, err := g.Reserve(ctx, 101); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("want ErrAdmissionRejected, got %v", err)
	}
	first.Release()

	// FIFO, no bypass: the first-queued large reservation is granted
	// before the later small one, even though the small one would fit
	// alongside it.
	hold, err := g.Reserve(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i, n := range []int64{80, 30} {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			gr, err := g.Reserve(ctx, n)
			if err != nil {
				t.Errorf("queued Reserve: %v", err)
				return
			}
			order <- i
			gr.Release()
		}()
		// Deterministic queue order.
		for g.Waiters() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	hold.Release()
	wg.Wait()
	if a, b := <-order, <-order; a != 0 || b != 1 {
		t.Fatalf("grant order = %d,%d; want 0,1", a, b)
	}
}

func TestReserveContextCancel(t *testing.T) {
	g := testGovernor(100, 1<<20)
	hold, err := g.Reserve(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Reserve(ctx, 10)
		errc <- err
	}()
	for g.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if g.Waiters() != 0 {
		t.Fatal("cancelled waiter left in queue")
	}
	hold.Release()
	if got := g.WorkingGranted(); got != 0 {
		t.Fatalf("granted = %d after all releases, want 0", got)
	}
}

func TestAdmitJobClampAndPeak(t *testing.T) {
	g := testGovernor(64<<10, 1<<20)
	ctx := context.Background()
	// 64 tasks of 4 KiB would be 256 KiB; the clamp shrinks the per-task
	// minimum so the job fits the 64 KiB pool exactly.
	j, err := g.AdmitJob(ctx, 64)
	if err != nil {
		t.Fatalf("AdmitJob: %v", err)
	}
	if got := g.WorkingGranted(); got != 64<<10 {
		t.Fatalf("job reservation = %d, want %d", got, 64<<10)
	}
	grants := make([]*Grant, 64)
	for i := range grants {
		grants[i] = j.TaskGrant()
		if got := grants[i].Granted(); got != 1<<10 {
			t.Fatalf("task grant = %d, want %d", got, 1<<10)
		}
	}
	if p := j.Peak(); p != 64<<10 {
		t.Fatalf("peak = %d, want %d", p, 64<<10)
	}
	for _, gr := range grants {
		gr.Release()
	}
	j.Release()
	if got := g.WorkingGranted(); got != 0 {
		t.Fatalf("granted = %d after job release, want 0", got)
	}
	if p := j.Peak(); p != 64<<10 {
		t.Fatalf("peak after release = %d, want %d", p, 64<<10)
	}
}

func TestNilGovernorIsUnbudgeted(t *testing.T) {
	var g *Governor
	j, err := g.AdmitJob(context.Background(), 8)
	if err != nil || j != nil {
		t.Fatalf("nil AdmitJob = %v, %v", j, err)
	}
	gr := j.TaskGrant()
	if !gr.Grow(1 << 30) {
		t.Fatal("nil grant Grow must succeed")
	}
	if gr.Granted() < 1<<40 {
		t.Fatal("nil grant must report unbounded memory")
	}
	gr.ShrinkToMin()
	gr.Release()
	j.Release()
	c := g.RegisterComponent("x", nil)
	if fs, err := c.Add(123); fs || err != nil {
		t.Fatalf("nil charge Add = %v, %v", fs, err)
	}
	c.Flushed()
	c.Unregister()
}

// flushableTree is a test double for an LSM tree's arbitration hook.
type flushableTree struct {
	mu      sync.Mutex
	charge  *ComponentCharge
	flushes int
	busy    bool
}

func (f *flushableTree) tryFlush() (bool, error) {
	if f.busy {
		return false, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushes++
	f.charge.Flushed()
	return true, nil
}

func TestComponentArbitrationEarliestFirst(t *testing.T) {
	g := testGovernor(1<<20, 100)
	a := &flushableTree{}
	b := &flushableTree{}
	a.charge = g.RegisterComponent("a", a.tryFlush)
	b.charge = g.RegisterComponent("b", b.tryFlush)

	// Dirty a first, then b; overflow the pool from a third account so
	// neither is "self".
	if fs, err := a.charge.Add(40); fs || err != nil {
		t.Fatalf("a.Add = %v, %v", fs, err)
	}
	if fs, err := b.charge.Add(40); fs || err != nil {
		t.Fatalf("b.Add = %v, %v", fs, err)
	}
	c := &flushableTree{}
	c.charge = g.RegisterComponent("c", c.tryFlush)
	if fs, err := c.charge.Add(30); fs || err != nil {
		t.Fatalf("c.Add = %v, %v", fs, err)
	}
	// Pool was 110 > 100: the earliest-dirty tree (a) must have been
	// flushed, and only it.
	if a.flushes != 1 || b.flushes != 0 {
		t.Fatalf("flushes a=%d b=%d, want 1, 0", a.flushes, b.flushes)
	}
	if got := g.ComponentCharged(); got != 70 {
		t.Fatalf("charged = %d, want 70", got)
	}
	if g.StatsSnapshot().ArbitratedFlushes != 1 {
		t.Fatalf("arbitrated flushes = %d, want 1", g.StatsSnapshot().ArbitratedFlushes)
	}
}

func TestComponentArbitrationSelfAndBusy(t *testing.T) {
	g := testGovernor(1<<20, 100)
	a := &flushableTree{busy: true} // writer lock held elsewhere
	b := &flushableTree{}
	a.charge = g.RegisterComponent("a", a.tryFlush)
	b.charge = g.RegisterComponent("b", b.tryFlush)
	if fs, err := a.charge.Add(80); fs || err != nil {
		t.Fatalf("a.Add = %v, %v", fs, err)
	}
	// b pushes the pool over; a is earliest but busy, so b is told to
	// flush itself (it holds its own writer lock).
	fs, err := b.charge.Add(80)
	if err != nil {
		t.Fatal(err)
	}
	if !fs {
		t.Fatal("want flushSelf=true when the earlier victim is busy")
	}
	if a.flushes != 0 {
		t.Fatal("busy tree must not be flushed")
	}

	// Self earliest: a (no longer busy) adds more; it is the earliest
	// dirty, so it flushes itself rather than deadlocking on its own lock.
	a.busy = false
	b.charge.Flushed()
	fs, err = a.charge.Add(30)
	if err != nil {
		t.Fatal(err)
	}
	if !fs {
		t.Fatal("want flushSelf=true when self is the earliest dirty tree")
	}
}

func TestConcurrentReserveReleaseRace(t *testing.T) {
	g := testGovernor(256<<10, 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				j, err := g.AdmitJob(context.Background(), 4)
				if err != nil {
					t.Errorf("AdmitJob: %v", err)
					return
				}
				gr := j.TaskGrant()
				gr.Grow(GrowChunk)
				gr.ShrinkToMin()
				gr.Release()
				j.Release()
			}
		}()
	}
	wg.Wait()
	if got := g.WorkingGranted(); got != 0 {
		t.Fatalf("granted = %d after all releases, want 0", got)
	}
}
