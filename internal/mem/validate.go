package mem

import "fmt"

// Validate deep-checks the governor's accounting against its own books:
// every byte of workUsed must be explainable by the working-pool cap,
// compUsed must equal the sum of the per-tree component charges, and the
// waiter queue must be consistent with the FIFO pump (nobody both
// granted and queued; the head waiter genuinely blocked). It implements
// check.Validator so tests can call check.MustValidate on a governor at
// any barrier; a nil governor (unbudgeted cluster) is trivially valid.
//
// The component pool is a soft cap — charges legitimately exceed
// ComponentBytes while arbitration is in flight or when no flush victim
// is actionable — so Validate checks the charge ledger's internal
// consistency, not an upper bound on compUsed.
func (g *Governor) Validate() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.workUsed < 0 {
		return fmt.Errorf("mem: workUsed %d is negative", g.workUsed)
	}
	if g.workUsed > g.cfg.WorkingBytes {
		return fmt.Errorf("mem: workUsed %d exceeds the %d-byte working pool (hard cap)",
			g.workUsed, g.cfg.WorkingBytes)
	}

	var sum int64
	for _, c := range g.charges {
		if c.bytes < 0 {
			return fmt.Errorf("mem: component %q charge %d is negative", c.name, c.bytes)
		}
		if c.bytes > 0 && c.firstDirty == 0 {
			return fmt.Errorf("mem: component %q holds %d bytes but is not on the dirty sequence",
				c.name, c.bytes)
		}
		if c.firstDirty > g.dirtySeq {
			return fmt.Errorf("mem: component %q dirty seq %d is ahead of the governor's %d",
				c.name, c.firstDirty, g.dirtySeq)
		}
		sum += c.bytes
	}
	if g.compUsed != sum {
		return fmt.Errorf("mem: compUsed %d != sum of %d registered charges %d",
			g.compUsed, len(g.charges), sum)
	}

	for i, w := range g.waiters {
		if w.granted {
			return fmt.Errorf("mem: waiter %d of %d was granted but never left the queue",
				i, len(g.waiters))
		}
		if w.need <= 0 {
			return fmt.Errorf("mem: waiter %d queued for %d bytes", i, w.need)
		}
	}
	// The pump runs under g.mu on every release, so at rest a queued
	// head waiter must genuinely not fit; a fitting head means a missed
	// pump (the reservation would wait out its whole admission window
	// with memory sitting free).
	if len(g.waiters) > 0 && g.workUsed+g.waiters[0].need <= g.cfg.WorkingBytes {
		return fmt.Errorf("mem: head waiter needs %d bytes with %d free but was not granted",
			g.waiters[0].need, g.cfg.WorkingBytes-g.workUsed)
	}
	return nil
}
