package mem

import (
	"sync"
	"sync/atomic"

	"asterix/internal/obs"
)

// PoolCharge accounts the bytes a buffer pool retains while idle. Pooled
// frames and scratch buffers are working memory the process holds even
// when no query owns them, so each pool reports its retained high-water
// footprint through the governor's metrics surface. The charge is
// observational: it never gates admission (a pool is bounded by its own
// max-entries cap, and dropping an entry frees the memory immediately),
// but it keeps `/admin/metrics` honest about where resident bytes live —
// see docs/MEMORY.md.
type PoolCharge struct {
	held atomic.Int64
}

// Add records delta retained bytes (negative on Get, positive on Put).
// Nil-safe: an uncharged pool costs one branch.
func (pc *PoolCharge) Add(delta int64) {
	if pc == nil {
		return
	}
	pc.held.Add(delta)
}

// Held returns the currently retained bytes (0 for nil).
func (pc *PoolCharge) Held() int64 {
	if pc == nil {
		return 0
	}
	return pc.held.Load()
}

// poolChargeMu guards the governor-independent registration below:
// charges can be created before any governor exists (raw test clusters),
// and several pools may register under one metrics registry.
var (
	poolChargeMu sync.Mutex
	poolCharges  = map[string]*PoolCharge{}
)

// NewPoolCharge creates (or returns the existing) named pool charge and,
// when reg is non-nil, exposes it as a `mem_pool_<name>_retained_bytes`
// gauge. Charges are process-global by name so a pool constructed before
// the metrics registry can still surface once the server wires one up.
func NewPoolCharge(name string, reg *obs.Registry) *PoolCharge {
	poolChargeMu.Lock()
	pc := poolCharges[name]
	if pc == nil {
		pc = &PoolCharge{}
		poolCharges[name] = pc
	}
	poolChargeMu.Unlock()
	// Registry methods are nil-safe: register unconditionally.
	reg.RegisterFunc("mem_pool_"+name+"_retained_bytes",
		"bytes retained by the "+name+" buffer pool while idle", obs.TypeGauge,
		func() float64 { return float64(pc.Held()) })
	return pc
}

// PoolCharge exposes a named pool charge on the governor's metrics
// registry. Nil-safe: a nil governor still returns a usable (unexported)
// charge so pools never branch on governor presence.
func (g *Governor) PoolCharge(name string) *PoolCharge {
	if g == nil {
		return NewPoolCharge(name, nil)
	}
	return NewPoolCharge(name, g.cfg.Metrics)
}
