// Package mem is the engine's memory governor: one total byte budget
// split into the three pools of the paper's Figure 2 — the buffer cache
// (fixed at open), the LSM memory components, and query working memory —
// with a reservation/grant protocol that every memory consumer draws
// from. The governor is the reason N concurrent queries can no longer
// each believe they own the full working budget: a query's job reserves
// its minimum up front (bounded wait, context cancellation), operators
// grow their grants opportunistically, and a denied Grow means "spill",
// not "wait" — so admitted work always makes progress and total granted
// bytes never exceed the budget.
package mem

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"asterix/internal/obs"
)

// GrowChunk is the increment operators use when growing a working-memory
// grant. Coarse enough to keep governor traffic off the per-tuple path,
// small enough that a denied Grow wastes little headroom.
const GrowChunk = 256 << 10

// ErrAdmissionTimeout is wrapped by reservation failures whose bounded
// wait expired: the pool was full of other queries' grants for the whole
// admission window. Retriable — the server maps it to 503.
var ErrAdmissionTimeout = errors.New("memory admission timed out")

// ErrAdmissionRejected is wrapped by reservations that can never succeed
// because they exceed the whole working pool. Not retriable.
var ErrAdmissionRejected = errors.New("memory reservation exceeds pool")

// Config sizes a Governor. Zero fields take defaults.
type Config struct {
	// BufferCacheBytes is the buffer cache's fixed reservation — carved
	// out at open, never granted to anything else (reported, not
	// arbitrated).
	BufferCacheBytes int64
	// ComponentBytes caps the LSM memory-component pool. It is a soft
	// cap: writers are never rejected, but charging past it triggers
	// earliest-flush-first arbitration across all registered trees.
	// Default 16 MiB.
	ComponentBytes int64
	// WorkingBytes caps query working memory (sorts, joins, group
	// tables). A hard cap: reservations wait, grows are denied. Default
	// 32 MiB.
	WorkingBytes int64
	// MinTaskGrant is the minimum guaranteed grant per operator task,
	// reserved at job admission (clamped to WorkingBytes/tasks so a lone
	// job always admits). Default 256 KiB.
	MinTaskGrant int64
	// AdmitTimeout bounds how long a reservation waits for working
	// memory before failing with ErrAdmissionTimeout. Default 10s.
	AdmitTimeout time.Duration
	// Metrics, when set, receives the governor's gauges and counters.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.ComponentBytes <= 0 {
		c.ComponentBytes = 16 << 20
	}
	if c.WorkingBytes <= 0 {
		c.WorkingBytes = 32 << 20
	}
	if c.MinTaskGrant <= 0 {
		c.MinTaskGrant = 256 << 10
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 10 * time.Second
	}
	return c
}

// waiter is one queued working-memory reservation. FIFO with no bypass,
// so a large reservation cannot be starved by a stream of small ones.
type waiter struct {
	need    int64
	ready   chan struct{}
	granted bool
}

// Governor owns the budget. All methods are safe for concurrent use; a
// nil *Governor is a valid "unbudgeted" governor whose grants are
// unbounded (used by raw test clusters until one is installed).
type Governor struct {
	cfg Config

	mu       sync.Mutex
	workUsed int64
	waiters  []*waiter
	charges  []*ComponentCharge
	compUsed int64
	dirtySeq int64

	mWaits      *obs.Counter
	mTimeouts   *obs.Counter
	mRejections *obs.Counter
	mGrowDenied *obs.Counter
	mArbFlushes *obs.Counter
}

// NewGovernor creates a governor over cfg's pools and binds its metrics.
func NewGovernor(cfg Config) *Governor {
	cfg = cfg.withDefaults()
	g := &Governor{cfg: cfg}
	reg := cfg.Metrics
	//lint:ignore obs-nil config defaulting, not instrumentation branching: real handles keep StatsSnapshot meaningful
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g.mWaits = reg.Counter("mem_admission_waits_total", "working-memory reservations that had to wait")
	g.mTimeouts = reg.Counter("mem_admission_timeouts_total", "working-memory reservations that timed out waiting")
	g.mRejections = reg.Counter("mem_admission_rejections_total", "reservations larger than the whole working pool")
	g.mGrowDenied = reg.Counter("mem_grow_denied_total", "grant grows denied (operator spilled instead)")
	g.mArbFlushes = reg.Counter("mem_arbitrated_flushes_total", "LSM flushes triggered by component-pool pressure")
	reg.RegisterFunc("mem_total_budget_bytes", "total governed memory budget", obs.TypeGauge,
		func() float64 {
			return float64(cfg.BufferCacheBytes + cfg.ComponentBytes + cfg.WorkingBytes)
		})
	reg.RegisterFunc("mem_buffercache_reserved_bytes", "fixed buffer-cache reservation", obs.TypeGauge,
		func() float64 { return float64(cfg.BufferCacheBytes) })
	reg.RegisterFunc("mem_working_pool_bytes", "query working-memory pool size", obs.TypeGauge,
		func() float64 { return float64(cfg.WorkingBytes) })
	reg.RegisterFunc("mem_working_granted_bytes", "working-memory bytes currently granted", obs.TypeGauge,
		func() float64 { return float64(g.WorkingGranted()) })
	reg.RegisterFunc("mem_working_waiters", "reservations waiting for working memory", obs.TypeGauge,
		func() float64 { return float64(g.Waiters()) })
	reg.RegisterFunc("mem_component_pool_bytes", "LSM memory-component pool size", obs.TypeGauge,
		func() float64 { return float64(cfg.ComponentBytes) })
	reg.RegisterFunc("mem_component_charged_bytes", "LSM memory-component bytes currently charged", obs.TypeGauge,
		func() float64 { return float64(g.ComponentCharged()) })
	return g
}

// WorkingCap returns the working pool's size in bytes (0 when nil).
func (g *Governor) WorkingCap() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.WorkingBytes
}

// WorkingGranted returns the bytes currently granted from the working
// pool.
func (g *Governor) WorkingGranted() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.workUsed
}

// Waiters returns the number of reservations queued for working memory.
func (g *Governor) Waiters() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

// ComponentCharged returns the bytes currently charged to the LSM
// memory-component pool.
func (g *Governor) ComponentCharged() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.compUsed
}

// Stats is a point-in-time snapshot of the governor's event counters
// (test and experiment assertions; the registry carries the same data).
type Stats struct {
	Waits, Timeouts, Rejections, GrowDenied, ArbitratedFlushes int64
}

// StatsSnapshot reads the counters.
func (g *Governor) StatsSnapshot() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Waits:             g.mWaits.Value(),
		Timeouts:          g.mTimeouts.Value(),
		Rejections:        g.mRejections.Value(),
		GrowDenied:        g.mGrowDenied.Value(),
		ArbitratedFlushes: g.mArbFlushes.Value(),
	}
}

// reserve takes n bytes from the working pool, waiting FIFO behind
// earlier reservations up to AdmitTimeout.
func (g *Governor) reserve(ctx context.Context, n int64) error {
	if n > g.cfg.WorkingBytes {
		g.mRejections.Inc()
		return fmt.Errorf("mem: reservation of %d bytes exceeds the %d-byte working pool: %w",
			n, g.cfg.WorkingBytes, ErrAdmissionRejected)
	}
	g.mu.Lock()
	if len(g.waiters) == 0 && g.workUsed+n <= g.cfg.WorkingBytes {
		g.workUsed += n
		g.mu.Unlock()
		return nil
	}
	w := &waiter{need: n, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	g.mWaits.Inc()

	// Attribute the queued time to the query's span (nil-safe): admission
	// waits are the first place a contended instance loses time.
	waitStart := time.Now()
	span := obs.SpanFromContext(ctx)
	defer func() { span.AddWait(obs.WaitAdmission, time.Since(waitStart)) }()

	timer := time.NewTimer(g.cfg.AdmitTimeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		if !g.abandon(w) {
			// Granted concurrently with the cancellation: give it back.
			g.releaseWorking(n)
		}
		return ctx.Err()
	case <-timer.C:
		if !g.abandon(w) {
			// The grant raced the timer and won: keep it.
			return nil
		}
		g.mTimeouts.Inc()
		return fmt.Errorf("mem: waited %v for %d bytes of working memory: %w",
			g.cfg.AdmitTimeout, n, ErrAdmissionTimeout)
	}
}

// abandon removes w from the wait queue; false means it was already
// granted.
func (g *Governor) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			break
		}
	}
	return true
}

// releaseWorking returns n bytes to the pool and grants queued waiters.
func (g *Governor) releaseWorking(n int64) {
	g.mu.Lock()
	g.workUsed -= n
	if g.workUsed < 0 {
		g.workUsed = 0
	}
	g.pumpLocked()
	g.mu.Unlock()
}

// pumpLocked grants waiters strictly in FIFO order while they fit.
func (g *Governor) pumpLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.workUsed+w.need > g.cfg.WorkingBytes {
			return
		}
		g.workUsed += w.need
		w.granted = true
		close(w.ready)
		g.waiters = g.waiters[1:]
	}
}

// Reserve takes n bytes from the working pool as a standalone grant
// (admission tests, external holds). Nil governor returns an unbounded
// nil grant.
func (g *Governor) Reserve(ctx context.Context, n int64) (*Grant, error) {
	if g == nil {
		return nil, nil
	}
	if err := g.reserve(ctx, n); err != nil {
		return nil, err
	}
	return &Grant{g: g, min: n, n: n}, nil
}

// JobGrant is a job's admission: the sum of its tasks' minimum grants,
// reserved atomically up front so a partially admitted job can never
// deadlock against another (a task holding its grant never blocks on
// memory again — Grow is denial-based, not waiting).
type JobGrant struct {
	g          *Governor
	min        int64 // per-task minimum
	unassigned int64 // reserved bytes not yet carved into task grants
	cur, peak  int64 // live task-granted bytes (guarded by g.mu)
	released   bool
}

// AdmitJob reserves tasks × min(MinTaskGrant, WorkingBytes/tasks) from
// the working pool, waiting up to AdmitTimeout. The clamp guarantees a
// lone job always fits regardless of its width. Nil governor admits
// unbudgeted (nil JobGrant).
func (g *Governor) AdmitJob(ctx context.Context, tasks int) (*JobGrant, error) {
	if g == nil {
		return nil, nil
	}
	if tasks < 1 {
		tasks = 1
	}
	min := g.cfg.MinTaskGrant
	if per := g.cfg.WorkingBytes / int64(tasks); min > per {
		min = per
	}
	if min < 1 {
		min = 1
	}
	need := min * int64(tasks)
	if err := g.reserve(ctx, need); err != nil {
		return nil, err
	}
	return &JobGrant{g: g, min: min, unassigned: need}, nil
}

// TaskGrant carves one task's minimum grant out of the job reservation.
func (j *JobGrant) TaskGrant() *Grant {
	if j == nil {
		return nil
	}
	j.g.mu.Lock()
	defer j.g.mu.Unlock()
	n := j.min
	if n > j.unassigned {
		n = j.unassigned
	}
	j.unassigned -= n
	j.cur += n
	if j.cur > j.peak {
		j.peak = j.cur
	}
	return &Grant{g: j.g, job: j, min: n, n: n}
}

// Peak returns the job's high-water mark of granted working bytes.
func (j *JobGrant) Peak() int64 {
	if j == nil {
		return 0
	}
	j.g.mu.Lock()
	defer j.g.mu.Unlock()
	return j.peak
}

// Release returns the job's unassigned reservation to the pool (task
// grants release themselves). Idempotent.
func (j *JobGrant) Release() {
	if j == nil {
		return
	}
	j.g.mu.Lock()
	if j.released {
		j.g.mu.Unlock()
		return
	}
	j.released = true
	n := j.unassigned
	j.unassigned = 0
	j.g.workUsed -= n
	if j.g.workUsed < 0 {
		j.g.workUsed = 0
	}
	j.g.pumpLocked()
	j.g.mu.Unlock()
}

// Grant is one task's (or holder's) slice of the working pool. A nil
// Grant is unbounded: Granted reports effectively infinite memory and
// Grow always succeeds — raw clusters without a governor behave as
// before. Not safe for concurrent use by multiple goroutines (each task
// owns its grant).
type Grant struct {
	g        *Governor
	job      *JobGrant
	min, n   int64
	released bool
}

// Granted returns the grant's current size in bytes.
func (gr *Grant) Granted() int {
	if gr == nil {
		return math.MaxInt
	}
	gr.g.mu.Lock()
	defer gr.g.mu.Unlock()
	return int(gr.n)
}

// Grow tries to extend the grant by n bytes. It never waits: the grow is
// denied when the pool lacks headroom or reservations are queued behind
// it (running operators degrade to spilling so waiting queries can
// admit). False means "spill now".
func (gr *Grant) Grow(n int) bool {
	if gr == nil {
		return true
	}
	g := gr.g
	g.mu.Lock()
	if gr.released || len(g.waiters) > 0 || g.workUsed+int64(n) > g.cfg.WorkingBytes {
		g.mu.Unlock()
		g.mGrowDenied.Inc()
		return false
	}
	g.workUsed += int64(n)
	gr.n += int64(n)
	if gr.job != nil {
		gr.job.cur += int64(n)
		if gr.job.cur > gr.job.peak {
			gr.job.peak = gr.job.cur
		}
	}
	g.mu.Unlock()
	return true
}

// Shrink returns n bytes of the grant to the pool, never below the
// task's minimum.
func (gr *Grant) Shrink(n int) {
	if gr == nil {
		return
	}
	gr.shrinkTo(gr.g, gr.loadN()-int64(n))
}

// ShrinkToMin returns everything above the task's minimum grant —
// operators call it after a spill empties their buffers.
func (gr *Grant) ShrinkToMin() {
	if gr == nil {
		return
	}
	gr.shrinkTo(gr.g, gr.min)
}

func (gr *Grant) loadN() int64 {
	gr.g.mu.Lock()
	defer gr.g.mu.Unlock()
	return gr.n
}

func (gr *Grant) shrinkTo(g *Governor, target int64) {
	g.mu.Lock()
	if target < gr.min {
		target = gr.min
	}
	if gr.released || gr.n <= target {
		g.mu.Unlock()
		return
	}
	back := gr.n - target
	gr.n = target
	g.workUsed -= back
	if g.workUsed < 0 {
		g.workUsed = 0
	}
	if gr.job != nil {
		gr.job.cur -= back
	}
	g.pumpLocked()
	g.mu.Unlock()
}

// Release returns the whole grant to the pool. Idempotent.
func (gr *Grant) Release() {
	if gr == nil {
		return
	}
	g := gr.g
	g.mu.Lock()
	if gr.released {
		g.mu.Unlock()
		return
	}
	gr.released = true
	g.workUsed -= gr.n
	if g.workUsed < 0 {
		g.workUsed = 0
	}
	if gr.job != nil {
		gr.job.cur -= gr.n
	}
	gr.n = 0
	g.pumpLocked()
	g.mu.Unlock()
}
