package mem

// ComponentCharge is one LSM tree's account against the memory-component
// pool. The pool is a soft cap: writers are never rejected, but when the
// sum of charges exceeds it the governor arbitrates flushes across ALL
// registered trees, earliest-dirty first — the global replacement for
// per-tree thresholds, so one hot tree cannot starve the others of
// ingestion memory.
//
// A nil *ComponentCharge (tree opened without a governor) is a valid
// no-op account.
type ComponentCharge struct {
	g    *Governor
	name string
	// tryFlush attempts to flush the owning tree's memory component
	// WITHOUT blocking on its writer lock. It returns done=false when the
	// lock was busy (a writer is mid-mutation there); the arbiter then
	// moves on to the next-earliest tree instead of deadlocking on a
	// cross-tree lock cycle.
	tryFlush func() (done bool, err error)

	// Guarded by g.mu.
	bytes      int64
	firstDirty int64 // 0 = clean; else the governor-wide dirty sequence
}

// RegisterComponent adds a tree's account to the pool. tryFlush is the
// arbitration hook (see ComponentCharge). Nil governor returns nil.
func (g *Governor) RegisterComponent(name string, tryFlush func() (bool, error)) *ComponentCharge {
	if g == nil {
		return nil
	}
	c := &ComponentCharge{g: g, name: name, tryFlush: tryFlush}
	g.mu.Lock()
	g.charges = append(g.charges, c)
	g.mu.Unlock()
	return c
}

// Unregister removes the account, returning its charged bytes to the
// pool (dataset drop).
func (c *ComponentCharge) Unregister() {
	if c == nil {
		return
	}
	g := c.g
	g.mu.Lock()
	g.compUsed -= c.bytes
	if g.compUsed < 0 {
		g.compUsed = 0
	}
	c.bytes = 0
	c.firstDirty = 0
	for i, q := range g.charges {
		if q == c {
			g.charges = append(g.charges[:i], g.charges[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
}

// Add charges delta bytes (negative for in-place shrink) and, when the
// pool is over budget, arbitrates flushes earliest-dirty-first.
// flushSelf=true means the caller's own tree is the earliest-dirty
// victim: the caller already holds its writer lock, so only it can run
// that flush — it must flush before returning to its client.
//
// The caller MUST hold its tree's writer lock (the same lock its
// tryFlush hook try-acquires), which is what makes cross-tree
// arbitration safe: a victim mid-write is simply skipped this round.
func (c *ComponentCharge) Add(delta int64) (flushSelf bool, err error) {
	if c == nil {
		return false, nil
	}
	g := c.g
	g.mu.Lock()
	c.bytes += delta
	if c.bytes < 0 {
		c.bytes = 0
	}
	g.compUsed += delta
	if g.compUsed < 0 {
		g.compUsed = 0
	}
	if c.firstDirty == 0 && c.bytes > 0 {
		g.dirtySeq++
		c.firstDirty = g.dirtySeq
	}
	g.mu.Unlock()
	return g.arbitrate(c)
}

// Flushed zeroes the account after the owning tree swapped in a fresh
// memory component (caller holds its writer lock, so the charge exactly
// covers the flushed memtable).
func (c *ComponentCharge) Flushed() {
	if c == nil {
		return
	}
	g := c.g
	g.mu.Lock()
	g.compUsed -= c.bytes
	if g.compUsed < 0 {
		g.compUsed = 0
	}
	c.bytes = 0
	c.firstDirty = 0
	g.mu.Unlock()
}

// arbitrate flushes dirty trees, earliest-dirty first, until the pool is
// back under budget or no victim is actionable. Victims whose writer
// lock is busy are skipped for this round (their own write path will
// re-arbitrate). Returns flushSelf=true when self is the chosen victim.
func (g *Governor) arbitrate(self *ComponentCharge) (bool, error) {
	var skip map[*ComponentCharge]bool
	for {
		g.mu.Lock()
		if g.compUsed <= g.cfg.ComponentBytes {
			g.mu.Unlock()
			return false, nil
		}
		var victim *ComponentCharge
		for _, c := range g.charges {
			if c.firstDirty == 0 || skip[c] {
				continue
			}
			if victim == nil || c.firstDirty < victim.firstDirty {
				victim = c
			}
		}
		g.mu.Unlock()
		if victim == nil {
			return false, nil
		}
		if victim == self {
			return true, nil
		}
		done, err := victim.tryFlush()
		if err != nil {
			return false, err
		}
		if done {
			g.mArbFlushes.Inc()
			continue
		}
		if skip == nil {
			skip = map[*ComponentCharge]bool{}
		}
		skip[victim] = true
	}
}
