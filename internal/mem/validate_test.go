package mem

import (
	"context"
	"strings"
	"testing"

	"asterix/internal/check"
)

// The validator must stay quiet across the normal grant/charge life
// cycle — every barrier below is a state the governor reaches in real
// operation.
func TestValidateCleanLifecycle(t *testing.T) {
	g := testGovernor(1<<20, 64<<10)
	ctx := context.Background()
	check.MustValidate(t, g)

	gr, err := g.Reserve(ctx, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	check.MustValidate(t, g)
	if !gr.Grow(64 << 10) {
		t.Fatal("Grow within budget denied")
	}
	check.MustValidate(t, g)

	j, err := g.AdmitJob(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg := j.TaskGrant()
	check.MustValidate(t, g)

	c := g.RegisterComponent("t1", func() (bool, error) { return true, nil })
	if _, err := c.Add(32 << 10); err != nil {
		t.Fatal(err)
	}
	check.MustValidate(t, g)
	c.Flushed()
	check.MustValidate(t, g)
	c.Unregister()

	tg.Release()
	j.Release()
	gr.Release()
	check.MustValidate(t, g)
	if got := g.WorkingGranted(); got != 0 {
		t.Fatalf("granted = %d after full release", got)
	}
}

// A nil governor (raw unbudgeted cluster) validates trivially.
func TestValidateNilGovernor(t *testing.T) {
	var g *Governor
	if err := g.Validate(); err != nil {
		t.Fatalf("nil governor: %v", err)
	}
}

// Corruption self-test: reach into the governor from inside the package
// and break each book the validator audits; every mutation must be
// caught, which proves the validator actually reads the state it claims
// to (a validator that passes corrupted books is worse than none).
func TestValidateDetectsCorruption(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		corrupt func(t *testing.T, g *Governor)
		want    string
	}{
		{
			name:    "negative-workUsed",
			corrupt: func(t *testing.T, g *Governor) { g.workUsed = -1 },
			want:    "negative",
		},
		{
			name:    "workUsed-over-cap",
			corrupt: func(t *testing.T, g *Governor) { g.workUsed = g.cfg.WorkingBytes + 1 },
			want:    "exceeds",
		},
		{
			name: "compUsed-ledger-drift",
			corrupt: func(t *testing.T, g *Governor) {
				c := g.RegisterComponent("drift", nil)
				if _, err := c.Add(8 << 10); err != nil {
					t.Fatal(err)
				}
				g.compUsed += 512 // lost update: pool total no longer the sum of charges
			},
			want: "sum of",
		},
		{
			name: "negative-charge",
			corrupt: func(t *testing.T, g *Governor) {
				c := g.RegisterComponent("neg", nil)
				g.compUsed, c.bytes = -4<<10, -4<<10
			},
			want: "negative",
		},
		{
			name: "dirty-seq-ahead",
			corrupt: func(t *testing.T, g *Governor) {
				c := g.RegisterComponent("seq", nil)
				if _, err := c.Add(1 << 10); err != nil {
					t.Fatal(err)
				}
				c.firstDirty = g.dirtySeq + 7
			},
			want: "ahead",
		},
		{
			name: "granted-waiter-still-queued",
			corrupt: func(t *testing.T, g *Governor) {
				g.waiters = append(g.waiters, &waiter{need: 1 << 10, ready: make(chan struct{}), granted: true})
			},
			want: "never left the queue",
		},
		{
			name: "missed-pump",
			corrupt: func(t *testing.T, g *Governor) {
				// A head waiter that fits means releaseWorking forgot to pump.
				g.waiters = append(g.waiters, &waiter{need: 1 << 10, ready: make(chan struct{})})
			},
			want: "not granted",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGovernor(1<<20, 64<<10)
			gr, err := g.Reserve(ctx, 16<<10)
			if err != nil {
				t.Fatal(err)
			}
			defer gr.Release()
			tc.corrupt(t, g)
			err = g.Validate()
			if err == nil {
				t.Fatalf("validator passed corrupted books (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
