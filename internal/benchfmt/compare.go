package benchfmt

import (
	"fmt"
	"io"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Tolerance is the allowed fractional change before a metric counts
	// as a regression: 0.5 lets a lower-better metric grow to 1.5× the
	// baseline (and a higher-better one shrink to 1/1.5×) before
	// failing. A value exactly at the band edge passes — the gate fires
	// only on strictly worse-than-band. Zero means the default 0.5;
	// benchmark timings on shared CI hosts are that noisy.
	Tolerance float64
	// WallTime also gates each experiment's end-to-end wall time, not
	// just its measurements. Off by default: wall time includes data
	// generation and is the noisiest number in the artifact.
	WallTime bool
	// HardUnits lists measurement units whose regressions are hard
	// failures: deterministic counters (e.g. "allocs/op", "allocs/row")
	// that stay meaningful on noisy shared hosts. A warn-only caller is
	// expected to still fail when HardFail reports true. Wall time is
	// never hard.
	HardUnits []string
}

const defaultTolerance = 0.5

// Delta is one metric's old-vs-new pair.
type Delta struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Unit       string  `json:"unit,omitempty"`
	Better     string  `json:"better"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Ratio is new/old (old > 0 always holds for recorded deltas).
	Ratio float64 `json:"ratio"`
	// Hard marks a delta whose unit is in CompareOptions.HardUnits: its
	// regression fails the gate even under a warn-only policy.
	Hard bool `json:"hard,omitempty"`
}

func (d Delta) String() string {
	arrow := "worse"
	switch {
	case d.Better == HigherBetter && d.New > d.Old:
		arrow = "better"
	case d.Better != HigherBetter && d.New < d.Old:
		arrow = "better"
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g %s (%.2fx, %s-is-better, %s)",
		d.Experiment, d.Metric, d.Old, d.New, d.Unit, d.Ratio, d.Better, arrow)
}

// CompareReport is the outcome of diffing two artifacts.
type CompareReport struct {
	// Regressions are metrics strictly outside the tolerance band in the
	// worse direction. Any entry here (or in Missing) fails the gate.
	Regressions []Delta `json:"regressions,omitempty"`
	// Improvements are metrics outside the band in the better direction
	// (reported so a suspicious 10× "improvement" — often a broken
	// experiment — is visible, but they never fail the gate).
	Improvements []Delta `json:"improvements,omitempty"`
	// Missing lists experiments or metrics present in the baseline but
	// absent from the new run: losing coverage is a regression.
	Missing []string `json:"missing,omitempty"`
	// HardMissing is the subset of Missing that loses a hard-unit
	// measurement (directly, or via a whole missing experiment that
	// carried one): losing a deterministic counter is itself hard.
	HardMissing []string `json:"hard_missing,omitempty"`
	// Added lists experiments/metrics new in this run — informational.
	Added []string `json:"added,omitempty"`
}

// OK reports whether the gate passes (no regressions, nothing missing).
func (r *CompareReport) OK() bool {
	return len(r.Regressions) == 0 && len(r.Missing) == 0
}

// HardFail reports whether a hard-unit metric regressed or went missing
// — the failures a warn-only gate must still honor.
func (r *CompareReport) HardFail() bool {
	if len(r.HardMissing) > 0 {
		return true
	}
	for _, d := range r.Regressions {
		if d.Hard {
			return true
		}
	}
	return false
}

// Format writes a human-readable summary.
func (r *CompareReport) Format(w io.Writer) {
	for _, m := range r.Missing {
		fmt.Fprintf(w, "MISSING  %s\n", m)
	}
	for _, d := range r.Regressions {
		tag := "REGRESS "
		if d.Hard {
			tag = "REGRESS!"
		}
		fmt.Fprintf(w, "%s %s\n", tag, d)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(w, "improve  %s\n", d)
	}
	for _, m := range r.Added {
		fmt.Fprintf(w, "added    %s\n", m)
	}
	if r.OK() {
		fmt.Fprintf(w, "compare: OK (%d improvement(s), %d added)\n", len(r.Improvements), len(r.Added))
	} else {
		hard := ""
		if r.HardFail() {
			hard = ", hard-unit failure"
		}
		fmt.Fprintf(w, "compare: FAIL (%d regression(s), %d missing%s)\n", len(r.Regressions), len(r.Missing), hard)
	}
}

// Compare diffs new against the old baseline. Experiments are matched by
// ID, measurements by name; direction comes from the BASELINE's Better
// field (the baseline defines the contract a new run is held to).
func Compare(old, new_ *Artifact, opts CompareOptions) *CompareReport {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	rep := &CompareReport{}
	hardUnit := map[string]bool{}
	for _, u := range opts.HardUnits {
		hardUnit[u] = true
	}

	seen := map[string]bool{}
	for i := range old.Experiments {
		oe := &old.Experiments[i]
		seen[oe.ID] = true
		ne := new_.Find(oe.ID)
		if ne == nil {
			rep.Missing = append(rep.Missing, "experiment "+oe.ID)
			// Losing a whole experiment loses its counters too: surface
			// each hard-unit measurement it carried.
			for j := range oe.Measurements {
				if om := &oe.Measurements[j]; hardUnit[om.Unit] {
					rep.HardMissing = append(rep.HardMissing,
						fmt.Sprintf("measurement %s %s", oe.ID, om.Name))
				}
			}
			continue
		}
		if opts.WallTime && oe.WallMS > 0 {
			classify(rep, Delta{
				Experiment: oe.ID, Metric: "wall_time", Unit: "ms",
				Better: LowerBetter, Old: oe.WallMS, New: ne.WallMS,
			}, tol)
		}
		for j := range oe.Measurements {
			om := &oe.Measurements[j]
			nm := ne.Measurement(om.Name)
			if nm == nil {
				m := fmt.Sprintf("measurement %s %s", oe.ID, om.Name)
				rep.Missing = append(rep.Missing, m)
				if hardUnit[om.Unit] {
					rep.HardMissing = append(rep.HardMissing, m)
				}
				continue
			}
			if om.Value <= 0 {
				continue // no meaningful ratio against a zero baseline
			}
			better := om.Better
			if better == "" {
				better = LowerBetter
			}
			classify(rep, Delta{
				Experiment: oe.ID, Metric: om.Name, Unit: om.Unit,
				Better: better, Old: om.Value, New: nm.Value,
				Hard: hardUnit[om.Unit],
			}, tol)
		}
		for j := range ne.Measurements {
			if oe.Measurement(ne.Measurements[j].Name) == nil {
				rep.Added = append(rep.Added, fmt.Sprintf("measurement %s %s", oe.ID, ne.Measurements[j].Name))
			}
		}
	}
	for i := range new_.Experiments {
		if !seen[new_.Experiments[i].ID] {
			rep.Added = append(rep.Added, "experiment "+new_.Experiments[i].ID)
		}
	}
	return rep
}

// classify routes a delta into regressions/improvements, or drops it as
// within-band. The band is inclusive: new == old*(1+tol) (or old/(1+tol)
// for higher-better) still passes.
func classify(rep *CompareReport, d Delta, tol float64) {
	d.Ratio = d.New / d.Old
	if d.Better == HigherBetter {
		if d.New*(1+tol) < d.Old {
			rep.Regressions = append(rep.Regressions, d)
		} else if d.New > d.Old*(1+tol) {
			rep.Improvements = append(rep.Improvements, d)
		}
		return
	}
	if d.New > d.Old*(1+tol) {
		rep.Regressions = append(rep.Regressions, d)
	} else if d.New*(1+tol) < d.Old {
		rep.Improvements = append(rep.Improvements, d)
	}
}
