package benchfmt

import (
	"fmt"
	"io"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Tolerance is the allowed fractional change before a metric counts
	// as a regression: 0.5 lets a lower-better metric grow to 1.5× the
	// baseline (and a higher-better one shrink to 1/1.5×) before
	// failing. A value exactly at the band edge passes — the gate fires
	// only on strictly worse-than-band. Zero means the default 0.5;
	// benchmark timings on shared CI hosts are that noisy.
	Tolerance float64
	// WallTime also gates each experiment's end-to-end wall time, not
	// just its measurements. Off by default: wall time includes data
	// generation and is the noisiest number in the artifact.
	WallTime bool
}

const defaultTolerance = 0.5

// Delta is one metric's old-vs-new pair.
type Delta struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Unit       string  `json:"unit,omitempty"`
	Better     string  `json:"better"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Ratio is new/old (old > 0 always holds for recorded deltas).
	Ratio float64 `json:"ratio"`
}

func (d Delta) String() string {
	arrow := "worse"
	switch {
	case d.Better == HigherBetter && d.New > d.Old:
		arrow = "better"
	case d.Better != HigherBetter && d.New < d.Old:
		arrow = "better"
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g %s (%.2fx, %s-is-better, %s)",
		d.Experiment, d.Metric, d.Old, d.New, d.Unit, d.Ratio, d.Better, arrow)
}

// CompareReport is the outcome of diffing two artifacts.
type CompareReport struct {
	// Regressions are metrics strictly outside the tolerance band in the
	// worse direction. Any entry here (or in Missing) fails the gate.
	Regressions []Delta `json:"regressions,omitempty"`
	// Improvements are metrics outside the band in the better direction
	// (reported so a suspicious 10× "improvement" — often a broken
	// experiment — is visible, but they never fail the gate).
	Improvements []Delta `json:"improvements,omitempty"`
	// Missing lists experiments or metrics present in the baseline but
	// absent from the new run: losing coverage is a regression.
	Missing []string `json:"missing,omitempty"`
	// Added lists experiments/metrics new in this run — informational.
	Added []string `json:"added,omitempty"`
}

// OK reports whether the gate passes (no regressions, nothing missing).
func (r *CompareReport) OK() bool {
	return len(r.Regressions) == 0 && len(r.Missing) == 0
}

// Format writes a human-readable summary.
func (r *CompareReport) Format(w io.Writer) {
	for _, m := range r.Missing {
		fmt.Fprintf(w, "MISSING  %s\n", m)
	}
	for _, d := range r.Regressions {
		fmt.Fprintf(w, "REGRESS  %s\n", d)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(w, "improve  %s\n", d)
	}
	for _, m := range r.Added {
		fmt.Fprintf(w, "added    %s\n", m)
	}
	if r.OK() {
		fmt.Fprintf(w, "compare: OK (%d improvement(s), %d added)\n", len(r.Improvements), len(r.Added))
	} else {
		fmt.Fprintf(w, "compare: FAIL (%d regression(s), %d missing)\n", len(r.Regressions), len(r.Missing))
	}
}

// Compare diffs new against the old baseline. Experiments are matched by
// ID, measurements by name; direction comes from the BASELINE's Better
// field (the baseline defines the contract a new run is held to).
func Compare(old, new_ *Artifact, opts CompareOptions) *CompareReport {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = defaultTolerance
	}
	rep := &CompareReport{}

	seen := map[string]bool{}
	for i := range old.Experiments {
		oe := &old.Experiments[i]
		seen[oe.ID] = true
		ne := new_.Find(oe.ID)
		if ne == nil {
			rep.Missing = append(rep.Missing, "experiment "+oe.ID)
			continue
		}
		if opts.WallTime && oe.WallMS > 0 {
			classify(rep, Delta{
				Experiment: oe.ID, Metric: "wall_time", Unit: "ms",
				Better: LowerBetter, Old: oe.WallMS, New: ne.WallMS,
			}, tol)
		}
		for j := range oe.Measurements {
			om := &oe.Measurements[j]
			nm := ne.Measurement(om.Name)
			if nm == nil {
				rep.Missing = append(rep.Missing, fmt.Sprintf("measurement %s %s", oe.ID, om.Name))
				continue
			}
			if om.Value <= 0 {
				continue // no meaningful ratio against a zero baseline
			}
			better := om.Better
			if better == "" {
				better = LowerBetter
			}
			classify(rep, Delta{
				Experiment: oe.ID, Metric: om.Name, Unit: om.Unit,
				Better: better, Old: om.Value, New: nm.Value,
			}, tol)
		}
		for j := range ne.Measurements {
			if oe.Measurement(ne.Measurements[j].Name) == nil {
				rep.Added = append(rep.Added, fmt.Sprintf("measurement %s %s", oe.ID, ne.Measurements[j].Name))
			}
		}
	}
	for i := range new_.Experiments {
		if !seen[new_.Experiments[i].ID] {
			rep.Added = append(rep.Added, "experiment "+new_.Experiments[i].ID)
		}
	}
	return rep
}

// classify routes a delta into regressions/improvements, or drops it as
// within-band. The band is inclusive: new == old*(1+tol) (or old/(1+tol)
// for higher-better) still passes.
func classify(rep *CompareReport, d Delta, tol float64) {
	d.Ratio = d.New / d.Old
	if d.Better == HigherBetter {
		if d.New*(1+tol) < d.Old {
			rep.Regressions = append(rep.Regressions, d)
		} else if d.New > d.Old*(1+tol) {
			rep.Improvements = append(rep.Improvements, d)
		}
		return
	}
	if d.New > d.Old*(1+tol) {
		rep.Regressions = append(rep.Regressions, d)
	} else if d.New*(1+tol) < d.Old {
		rep.Improvements = append(rep.Improvements, d)
	}
}
