// Package benchfmt defines the machine-readable benchmark artifact the
// asterixbench harness emits (BENCH_<n>.json) and the comparator that
// diffs two artifacts with tolerance bands. The JSON artifact — not the
// prose report — is the canonical record of a run: the prose tables are
// a render of it, and regression gating in CI is a diff of two of them.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
)

// SchemaV1 identifies the artifact layout this package writes. Readers
// reject other values rather than misinterpret fields.
const SchemaV1 = "asterixbench/v1"

// Artifact is one full benchmark run: the environment it ran in plus one
// entry per experiment.
type Artifact struct {
	Schema      string       `json:"schema"`
	Env         Environment  `json:"env"`
	Experiments []Experiment `json:"experiments"`
}

// Environment records where and how the run happened — the block that
// makes two artifacts comparable (or visibly not: diffing a laptop run
// against a CI run is a choice, and the env block makes it a visible
// one).
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Commit is the repo HEAD at run time, best-effort ("" when the
	// harness ran outside a git checkout).
	Commit string `json:"commit,omitempty"`
	Scale  string `json:"scale"`
	// Timestamp is RFC3339, stamped by the harness at write time.
	Timestamp string `json:"timestamp,omitempty"`
}

// NewEnvironment captures the current process environment. commit may be
// empty; the harness resolves it separately (os/exec stays out of this
// package so tests and the server can import it freely).
func NewEnvironment(scale, commit string) Environment {
	return Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     commit,
		Scale:      scale,
	}
}

// Experiment is one experiment's structured result.
type Experiment struct {
	ID    string `json:"id"`
	Claim string `json:"claim,omitempty"`
	// WallMS is the experiment's end-to-end wall time in milliseconds
	// (includes data generation and setup, so it gates only coarsely;
	// the Measurements are the precise per-claim numbers).
	WallMS float64 `json:"wall_ms"`
	// Allocs / AllocBytes are the runtime.MemStats deltas across the
	// experiment (cumulative counters, so GC does not deflate them).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// PeakWorkingBytes is the governor's high-water mark of granted
	// working memory across the experiment's jobs (0 when nothing drew
	// from the working pool).
	PeakWorkingBytes int64 `json:"peak_working_bytes,omitempty"`
	// WaitMS rolls up the run's span wait attribution by category
	// (admission, lock, spill, flush, merge, exchange), milliseconds.
	WaitMS map[string]float64 `json:"wait_ms,omitempty"`
	// Measurements are the experiment's named metrics — the numbers its
	// prose table is rendered from and the comparator diffs.
	Measurements []Measurement `json:"measurements,omitempty"`
	// Table is the human-readable rendering (header + rows + notes),
	// preserved so a JSON artifact alone can reproduce the prose report.
	Table Table `json:"table,omitempty"`
}

// Direction of a measurement for regression purposes.
const (
	// LowerBetter marks latencies, byte counts, component counts.
	LowerBetter = "lower"
	// HigherBetter marks throughputs and speedups.
	HigherBetter = "higher"
)

// Measurement is one named metric of an experiment.
type Measurement struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
	// Better is LowerBetter (default when empty) or HigherBetter.
	Better string `json:"better,omitempty"`
}

// Table is the prose rendering of an experiment's results.
type Table struct {
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
}

// Find returns the experiment with the given ID, or nil.
func (a *Artifact) Find(id string) *Experiment {
	for i := range a.Experiments {
		if a.Experiments[i].ID == id {
			return &a.Experiments[i]
		}
	}
	return nil
}

// Measurement returns the named measurement, or nil.
func (e *Experiment) Measurement(name string) *Measurement {
	for i := range e.Measurements {
		if e.Measurements[i].Name == name {
			return &e.Measurements[i]
		}
	}
	return nil
}

// SortedWaits returns the wait categories in descending-milliseconds
// order (stable names for rendering).
func (e *Experiment) SortedWaits() []string {
	names := make([]string, 0, len(e.WaitMS))
	for k := range e.WaitMS {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if e.WaitMS[names[i]] != e.WaitMS[names[j]] {
			return e.WaitMS[names[i]] > e.WaitMS[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// WriteJSON writes the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	a.Schema = SchemaV1
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path (atomically via rename, so a
// crashed run never leaves a half-written baseline).
func (a *Artifact) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Read parses an artifact, rejecting unknown schemas.
func Read(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("benchfmt: parse: %w", err)
	}
	if a.Schema != SchemaV1 {
		return nil, fmt.Errorf("benchfmt: unknown schema %q (want %q)", a.Schema, SchemaV1)
	}
	return &a, nil
}

// ReadFile reads an artifact from disk.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore err-discard read-only scan; a close failure cannot lose data
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
