package benchfmt

import (
	"fmt"
	"io"
)

// WriteText renders the artifact as the prose benchmark report: an
// environment header, then each experiment's table in the harness's
// column-aligned format. The prose report is derived output — the JSON
// artifact is canonical.
func (a *Artifact) WriteText(w io.Writer) {
	e := a.Env
	fmt.Fprintf(w, "# asterixbench  scale=%s  %s %s/%s  cpus=%d gomaxprocs=%d",
		e.Scale, e.GoVersion, e.GOOS, e.GOARCH, e.NumCPU, e.GOMAXPROCS)
	if e.Commit != "" {
		fmt.Fprintf(w, "  commit=%s", e.Commit)
	}
	if e.Timestamp != "" {
		fmt.Fprintf(w, "  at=%s", e.Timestamp)
	}
	fmt.Fprint(w, "\n\n")
	for i := range a.Experiments {
		a.Experiments[i].writeText(w)
	}
}

func (x *Experiment) writeText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", x.ID, x.Claim)
	widths := make([]int, len(x.Table.Header))
	for i, h := range x.Table.Header {
		widths[i] = len(h)
	}
	for _, row := range x.Table.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(x.Table.Header)
	for _, row := range x.Table.Rows {
		printRow(row)
	}
	for _, n := range x.Table.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintf(w, "   -- wall=%.0fms allocs=%d alloc_bytes=%d", x.WallMS, x.Allocs, x.AllocBytes)
	if x.PeakWorkingBytes > 0 {
		fmt.Fprintf(w, " peak_working_bytes=%d", x.PeakWorkingBytes)
	}
	fmt.Fprintln(w)
	if len(x.WaitMS) > 0 {
		fmt.Fprint(w, "   -- waits:")
		for _, k := range x.SortedWaits() {
			fmt.Fprintf(w, " %s=%.1fms", k, x.WaitMS[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
