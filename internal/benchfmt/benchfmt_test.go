package benchfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleArtifact() *Artifact {
	return &Artifact{
		Env: NewEnvironment("small", "abc1234"),
		Experiments: []Experiment{
			{
				ID:     "E1",
				Claim:  "speedup",
				WallMS: 120,
				Allocs: 1000, AllocBytes: 1 << 20,
				PeakWorkingBytes: 4 << 20,
				WaitMS:           map[string]float64{"admission": 12.5, "spill": 1.25},
				Measurements: []Measurement{
					{Name: "scan_p4", Unit: "ms", Value: 30},
					{Name: "speedup_p4", Unit: "x", Value: 3.2, Better: HigherBetter},
				},
				Table: Table{
					Header: []string{"partitions", "time"},
					Rows:   [][]string{{"1", "96.0ms"}, {"4", "30.0ms"}},
					Notes:  []string{"single-node"},
				},
			},
			{
				ID:           "E5",
				Claim:        "memory crossover",
				WallMS:       80,
				Measurements: []Measurement{{Name: "sort_spill", Unit: "ms", Value: 50}},
			},
		},
	}
}

// Round trip: emit to JSON, parse it back, compare against itself — the
// gate must pass with zero deltas.
func TestRoundTripCompareClean(t *testing.T) {
	a := sampleArtifact()
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != SchemaV1 {
		t.Fatalf("schema = %q", b.Schema)
	}
	if b.Env.GOMAXPROCS != a.Env.GOMAXPROCS || b.Env.Commit != "abc1234" || b.Env.Scale != "small" {
		t.Fatalf("env did not round-trip: %+v", b.Env)
	}
	if got := b.Find("E1").WaitMS["admission"]; got != 12.5 {
		t.Fatalf("wait_ms round-trip: %v", got)
	}
	rep := Compare(a, b, CompareOptions{WallTime: true})
	if !rep.OK() {
		var buf bytes.Buffer
		rep.Format(&buf)
		t.Fatalf("self-compare not OK:\n%s", buf.String())
	}
	if len(rep.Regressions)+len(rep.Improvements)+len(rep.Missing)+len(rep.Added) != 0 {
		t.Fatalf("self-compare produced deltas: %+v", rep)
	}
}

func TestReadRejectsUnknownSchema(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema":"asterixbench/v9"}`))
	if err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("err = %v", err)
	}
}

// A synthetic 2x slowdown on a lower-better metric must fail the gate at
// the default tolerance.
func TestCompareDetectsSlowdown(t *testing.T) {
	old := sampleArtifact()
	cur := sampleArtifact()
	cur.Find("E1").Measurement("scan_p4").Value *= 2
	rep := Compare(old, cur, CompareOptions{})
	if rep.OK() {
		t.Fatal("2x slowdown passed the gate")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "scan_p4" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if r := rep.Regressions[0].Ratio; r != 2 {
		t.Fatalf("ratio = %v", r)
	}
}

// Exactly at the band edge passes; epsilon past it fails. Same for the
// higher-better direction.
func TestCompareToleranceBandEdges(t *testing.T) {
	const tol = 0.5
	old := sampleArtifact()

	at := sampleArtifact()
	at.Find("E1").Measurement("scan_p4").Value = 30 * (1 + tol)
	at.Find("E1").Measurement("speedup_p4").Value = 3.2 / (1 + tol)
	if rep := Compare(old, at, CompareOptions{Tolerance: tol}); !rep.OK() {
		t.Fatalf("exactly-at-band failed: %+v", rep.Regressions)
	}

	over := sampleArtifact()
	over.Find("E1").Measurement("scan_p4").Value = 30*(1+tol) + 0.01
	rep := Compare(old, over, CompareOptions{Tolerance: tol})
	if rep.OK() || rep.Regressions[0].Metric != "scan_p4" {
		t.Fatalf("just-over-band passed: %+v", rep)
	}

	slower := sampleArtifact()
	slower.Find("E1").Measurement("speedup_p4").Value = 3.2/(1+tol) - 0.01
	rep = Compare(old, slower, CompareOptions{Tolerance: tol})
	if rep.OK() || rep.Regressions[0].Metric != "speedup_p4" {
		t.Fatalf("higher-better drop passed: %+v", rep)
	}
}

// Losing an experiment (or a measurement) is a regression; gaining one is
// a note.
func TestCompareMissingAndAdded(t *testing.T) {
	old := sampleArtifact()
	cur := sampleArtifact()
	cur.Experiments = cur.Experiments[:1] // drop E5
	cur.Experiments[0].Measurements = append(cur.Experiments[0].Measurements,
		Measurement{Name: "new_metric", Value: 1})
	cur.Experiments = append(cur.Experiments, Experiment{ID: "E99"})

	rep := Compare(old, cur, CompareOptions{})
	if rep.OK() {
		t.Fatal("missing experiment passed the gate")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "experiment E5" {
		t.Fatalf("missing = %v", rep.Missing)
	}
	want := map[string]bool{"measurement E1 new_metric": true, "experiment E99": true}
	if len(rep.Added) != 2 || !want[rep.Added[0]] || !want[rep.Added[1]] {
		t.Fatalf("added = %v", rep.Added)
	}

	// Added-only (no missing) must still pass.
	rep = Compare(old, sampleArtifact(), CompareOptions{})
	if !rep.OK() {
		t.Fatalf("identical compare failed: %+v", rep)
	}
}

// Big improvements are surfaced but never fail the gate.
func TestCompareImprovementReported(t *testing.T) {
	old := sampleArtifact()
	cur := sampleArtifact()
	cur.Find("E1").Measurement("scan_p4").Value = 3 // 10x faster
	rep := Compare(old, cur, CompareOptions{})
	if !rep.OK() {
		t.Fatalf("improvement failed gate: %+v", rep.Regressions)
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Metric != "scan_p4" {
		t.Fatalf("improvements = %+v", rep.Improvements)
	}
}

func TestWriteTextRendersEnvAndWaits(t *testing.T) {
	var buf bytes.Buffer
	sampleArtifact().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"# asterixbench  scale=small",
		"gomaxprocs=",
		"commit=abc1234",
		"== E1: speedup",
		"partitions",
		"note: single-node",
		"waits: admission=12.5ms spill=1.2ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Hard units promote deterministic counters (allocs/op) to failures a
// warn-only caller still honors; other units stay soft.
func TestCompareHardUnits(t *testing.T) {
	mk := func() *Artifact {
		a := sampleArtifact()
		a.Experiments[0].Measurements = append(a.Experiments[0].Measurements,
			Measurement{Name: "pipeline_allocs", Unit: "allocs/op", Value: 4})
		return a
	}
	opts := CompareOptions{HardUnits: []string{"allocs/op", "allocs/row"}}

	clean := Compare(mk(), mk(), opts)
	if !clean.OK() || clean.HardFail() {
		t.Fatalf("identical artifacts failed: %+v", clean)
	}

	// An alloc-counter regression is hard; a timing regression is not.
	allocUp := mk()
	allocUp.Find("E1").Measurement("pipeline_allocs").Value = 40
	rep := Compare(mk(), allocUp, opts)
	if !rep.HardFail() {
		t.Fatalf("10x alloc growth not a hard failure: %+v", rep)
	}
	if len(rep.Regressions) != 1 || !rep.Regressions[0].Hard {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}

	slow := mk()
	slow.Find("E1").Measurement("scan_p4").Value = 300
	rep = Compare(mk(), slow, opts)
	if rep.OK() || rep.HardFail() {
		t.Fatalf("timing regression classified hard: %+v", rep)
	}

	// Losing the counter (directly or with its whole experiment) is hard.
	gone := mk()
	gone.Experiments[0].Measurements = gone.Experiments[0].Measurements[:2]
	rep = Compare(mk(), gone, opts)
	if !rep.HardFail() || len(rep.HardMissing) != 1 {
		t.Fatalf("dropped hard counter not HardMissing: %+v", rep)
	}
	lost := mk()
	lost.Experiments = lost.Experiments[1:]
	rep = Compare(mk(), lost, opts)
	if !rep.HardFail() {
		t.Fatalf("dropped experiment with hard counter not HardFail: %+v", rep)
	}

	var buf bytes.Buffer
	Compare(mk(), allocUp, opts).Format(&buf)
	if !strings.Contains(buf.String(), "REGRESS!") || !strings.Contains(buf.String(), "hard-unit failure") {
		t.Fatalf("hard regression not labeled:\n%s", buf.String())
	}
}
