package hyracks

import (
	"sync"
	"sync/atomic"

	"asterix/internal/adm"
	"asterix/internal/mem"
)

// This file is the frame/tuple buffer recycling layer: the hot exchange
// and spill paths move data in short-lived slice containers (frames of
// tuples, tuple scratch, run-file byte scratch) that used to be allocated
// fresh per batch. Each pool hands containers from a bounded freelist and
// takes them back once the single consumer is done with them.
//
// Safety is not left to review: every pool here is registered in
// cmd/asterixlint's pool registry, and the pool-safety rules prove each
// Get reaches a Put (or an ownership transfer) on every path — see
// "Pool-safety" in docs/STATIC_ANALYSIS.md. The runtime contract the
// analysis encodes:
//
//   - a frame has exactly ONE owner at a time; Put transfers ownership to
//     the pool, after which the container must not be touched;
//   - Put clears the container's elements, so retaining a Tuple read OUT
//     of a recycled frame is always safe (tuples are their own arrays;
//     only the frame's slice-of-headers is recycled);
//   - dropping a container instead of Putting it is benign (GC takes it) —
//     pools bound retained memory, they do not own correctness.

// PoolStats is an atomic snapshot of one pool's traffic.
type PoolStats struct {
	// Gets counts Get calls; Reuses counts the subset served from the
	// freelist (Gets-Reuses were fresh allocations).
	Gets, Reuses int64
	// Puts counts containers handed back; Drops counts the subset the
	// pool discarded (freelist full or container too small to keep).
	Puts, Drops int64
}

// bufPool is the shared freelist core behind FramePool, TuplePool, and
// BytePool: a bounded LIFO of slice containers whose retained bytes are
// charged to a mem.PoolCharge. A nil core (from a nil typed pool) is the
// disabled mode: Get returns nil — callers build with append, so a nil
// container is a valid empty buffer — and Put discards.
type bufPool[E any] struct {
	mu   sync.Mutex
	free [][]E
	// max bounds retained entries; minKeep drops undersized containers so
	// the freelist doesn't silt up with tiny early buffers.
	max     int
	minKeep int
	// elemBytes prices one element header for the retained-bytes charge.
	elemBytes int64
	// clearElems zeroes returned containers (pointer-bearing elements must
	// not pin dead values from inside the freelist).
	clearElems bool
	charge     *mem.PoolCharge

	gets, reuses, puts, drops atomic.Int64
}

func (p *bufPool[E]) get() []E {
	if p == nil {
		return nil
	}
	p.gets.Add(1)
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	b := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.mu.Unlock()
	p.reuses.Add(1)
	p.charge.Add(-int64(cap(b)) * p.elemBytes)
	return b[:0]
}

func (p *bufPool[E]) put(b []E) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.puts.Add(1)
	if cap(b) < p.minKeep {
		p.drops.Add(1)
		return
	}
	if p.clearElems {
		clear(b[:cap(b)])
	}
	p.mu.Lock()
	if len(p.free) >= p.max {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.free = append(p.free, b[:0])
	p.mu.Unlock()
	p.charge.Add(int64(cap(b)) * p.elemBytes)
}

func (p *bufPool[E]) stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Gets: p.gets.Load(), Reuses: p.reuses.Load(),
		Puts: p.puts.Load(), Drops: p.drops.Load(),
	}
}

// FramePool recycles frame containers ([]Tuple) for the exchange paths:
// connWriter batch buffers, merge-input output frames, and the wire
// decoder's per-frame allocation. A nil *FramePool disables pooling (Get
// returns a nil slice to append into; Put is a no-op).
type FramePool struct {
	core      *bufPool[Tuple]
	frameSize int
}

// NewFramePool builds a pool keeping at most maxEntries frames, charging
// retained bytes (frame headers only — 24 bytes per tuple slot) to
// charge. frameSize sets the keep threshold: containers that never grew
// to half a frame are dropped rather than retained.
func NewFramePool(frameSize, maxEntries int, charge *mem.PoolCharge) *FramePool {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &FramePool{
		core: &bufPool[Tuple]{
			max: maxEntries, minKeep: frameSize / 2,
			elemBytes: 24, clearElems: true, charge: charge,
		},
		frameSize: frameSize,
	}
}

// Get returns an empty frame to append tuples into — recycled when the
// freelist has one, otherwise freshly sized to a full frame. The caller
// owns it until Put or an ownership handoff (channel send, transport
// send).
func (p *FramePool) Get() []Tuple {
	if p == nil {
		return nil
	}
	if f := p.core.get(); f != nil {
		return f
	}
	if p.frameSize <= 0 {
		return nil
	}
	return make([]Tuple, 0, p.frameSize)
}

// Put returns a frame to the pool. The frame's tuple headers are cleared;
// the caller must not use the container afterwards. Tuples read out of
// the frame remain valid — they are independent arrays.
func (p *FramePool) Put(f []Tuple) {
	if p == nil {
		return
	}
	p.core.put(f)
}

// Stats snapshots the pool's traffic counters.
func (p *FramePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.core.stats()
}

// TuplePool recycles tuple containers ([]adm.Value) for scratch records
// that are fully consumed before the next Get — spill-record assembly and
// run read-back in group-by and join. The VALUES a tuple holds are never
// pooled (adm values are immutable and shared); only the column-header
// container cycles.
type TuplePool struct{ core *bufPool[adm.Value] }

// NewTuplePool builds a pool keeping at most maxEntries tuple containers.
func NewTuplePool(maxEntries int, charge *mem.PoolCharge) *TuplePool {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &TuplePool{core: &bufPool[adm.Value]{
		max: maxEntries, elemBytes: 16, clearElems: true, charge: charge,
	}}
}

// Get returns an empty tuple container to append values into.
func (p *TuplePool) Get() Tuple {
	if p == nil {
		return nil
	}
	return Tuple(p.core.get())
}

// Put returns a tuple container to the pool; the caller must not use it
// afterwards.
func (p *TuplePool) Put(t Tuple) {
	if p == nil {
		return
	}
	p.core.put(t)
}

// Stats snapshots the pool's traffic counters.
func (p *TuplePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.core.stats()
}

// BytePool recycles byte scratch (run-file encode/decode buffers, wire
// payload scratch). Byte containers are not cleared on Put — they carry
// no pointers.
type BytePool struct{ core *bufPool[byte] }

// NewBytePool builds a pool keeping at most maxEntries buffers.
func NewBytePool(maxEntries int, charge *mem.PoolCharge) *BytePool {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &BytePool{core: &bufPool[byte]{
		max: maxEntries, elemBytes: 1, charge: charge,
	}}
}

// Get returns an empty byte buffer to append into.
func (p *BytePool) Get() []byte {
	if p == nil {
		return nil
	}
	return p.core.get()
}

// Put returns a byte buffer to the pool; the caller must not use it
// afterwards.
func (p *BytePool) Put(b []byte) {
	if p == nil {
		return
	}
	p.core.put(b)
}

// Stats snapshots the pool's traffic counters.
func (p *BytePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.core.stats()
}

// runScratch is the package-global byte pool behind run-file readers and
// writers: sort, join, and group-by all spill through RunWriter/RunReader,
// so their encode/decode scratch shares one bounded freelist instead of
// growing a private buffer per run file.
var runScratch = NewBytePool(64, mem.NewPoolCharge("run_scratch", nil))

// RunScratchStats exposes the shared run-file scratch pool's counters
// (tests assert reuse across spill cycles).
func RunScratchStats() PoolStats { return runScratch.Stats() }

// tupleScratch recycles the tuple containers of spill-record assembly and
// run read-back in group-by and the grace join's probe phase — records
// that are fully consumed (encoded, merged, or copied) before the next
// Get, never handed downstream.
var tupleScratch = NewTuplePool(256, mem.NewPoolCharge("tuple_scratch", nil))

// TupleScratchStats exposes the shared tuple scratch pool's counters.
func TupleScratchStats() PoolStats { return tupleScratch.Stats() }
