package hyracks

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"asterix/internal/adm"
)

func newCluster(t testing.TB, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(nodes, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rangeScan emits tuples (i, i*10) for i in the partition's share of [0, n).
func rangeScan(n int) func(tc *TaskContext, emit func(Tuple) error) error {
	return func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < n; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(i), adm.Int64(i * 10)}); err != nil {
				return err
			}
		}
		return nil
	}
}

func collectInts(coll *Collector, col int) []int {
	var out []int
	for _, t := range coll.Tuples() {
		v, _ := adm.AsInt(t[col])
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

func TestScanFilterSink(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	scan := j.Add(NewScan("scan", 4, rangeScan(100)))
	filter := j.Add(NewFilter("filter", 4, func(tp Tuple) (bool, error) {
		v, _ := adm.AsInt(tp[0])
		return v%2 == 0, nil
	}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 4, coll))
	j.MustConnect(scan, filter, 0, OneToOne())
	j.MustConnect(filter, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	got := collectInts(coll, 0)
	if len(got) != 50 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestHashPartitionConnector(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	scan := j.Add(NewScan("scan", 3, rangeScan(1000)))
	// Count tuples per consumer partition; same key must land on the same
	// partition.
	seen := make([]map[int]bool, 4)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	sink := j.Add(NewFuncSink("sink", 4, func(p int, tp Tuple) error {
		v, _ := adm.AsInt(tp[0])
		seen[p][int(v)] = true
		return nil
	}))
	j.MustConnect(scan, sink, 0, HashPartition(0))
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, m := range seen {
		total += len(m)
		if len(m) == 0 {
			t.Errorf("partition %d got nothing (bad hash spread)", i)
		}
		for k := range m {
			for jx, m2 := range seen {
				if jx != i && m2[k] {
					t.Fatalf("key %d appears in partitions %d and %d", k, i, jx)
				}
			}
		}
	}
	if total != 1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestBroadcastConnector(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	scan := j.Add(NewScan("scan", 1, rangeScan(10)))
	counts := make([]int, 3)
	sink := j.Add(NewFuncSink("sink", 3, func(p int, tp Tuple) error {
		counts[p]++
		return nil
	}))
	j.MustConnect(scan, sink, 0, Broadcast())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	for p, n := range counts {
		if n != 10 {
			t.Errorf("partition %d got %d tuples, want 10", p, n)
		}
	}
}

func TestSortInMemoryAndMergeOrdered(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	n := 5000
	scan := j.Add(NewScan("scan", 4, func(tc *TaskContext, emit func(Tuple) error) error {
		r := rand.New(rand.NewSource(int64(tc.Partition)))
		for i := 0; i < n/4; i++ {
			if err := emit(Tuple{adm.Int64(r.Intn(100000))}); err != nil {
				return err
			}
		}
		return nil
	}))
	cmp := Comparator{Columns: []int{0}}
	sortOp := j.Add(NewSort("sort", 4, cmp))
	coll := &Collector{}
	sink := j.Add(NewOrderedSink("sink", coll))
	j.MustConnect(scan, sortOp, 0, OneToOne())
	j.MustConnect(sortOp, sink, 0, MergeOrdered(cmp))
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	if len(ts) != (n/4)*4 {
		t.Fatalf("got %d tuples", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if adm.Compare(ts[i-1][0], ts[i][0]) > 0 {
			t.Fatalf("global order violated at %d", i)
		}
	}
}

func TestSortSpills(t *testing.T) {
	c := newCluster(t, 1)
	c.MemBudget = 4 << 10 // tiny budget forces spilling
	j := NewJob()
	n := 3000
	scan := j.Add(NewScan("scan", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		r := rand.New(rand.NewSource(9))
		for i := 0; i < n; i++ {
			if err := emit(Tuple{adm.Int64(r.Intn(1 << 20)), adm.String("padding-padding-padding")}); err != nil {
				return err
			}
		}
		return nil
	}))
	cmp := Comparator{Columns: []int{0}}
	sortOp := j.Add(NewSort("sort", 1, cmp))
	coll := &Collector{}
	sink := j.Add(NewOrderedSink("sink", coll))
	j.MustConnect(scan, sortOp, 0, OneToOne())
	j.MustConnect(sortOp, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != n {
		t.Fatalf("got %d tuples", coll.Len())
	}
	ts := coll.Tuples()
	for i := 1; i < len(ts); i++ {
		if adm.Compare(ts[i-1][0], ts[i][0]) > 0 {
			t.Fatalf("order violated at %d", i)
		}
	}
	if c.Nodes[0].Spills == 0 {
		t.Error("expected spills with a 4KB budget")
	}
}

func TestSortDescending(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	scan := j.Add(NewScan("scan", 1, rangeScan(100)))
	cmp := Comparator{Columns: []int{0}, Desc: []bool{true}}
	sortOp := j.Add(NewSort("sort", 1, cmp))
	coll := &Collector{}
	sink := j.Add(NewOrderedSink("sink", coll))
	j.MustConnect(scan, sortOp, 0, OneToOne())
	j.MustConnect(sortOp, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	for i := 1; i < len(ts); i++ {
		if adm.Compare(ts[i-1][0], ts[i][0]) < 0 {
			t.Fatal("descending order violated")
		}
	}
}

func TestHashJoinInner(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	// Left: (i, i*10) for i in 0..99. Right: (i, i*100) for even i in 0..199.
	left := j.Add(NewScan("left", 2, rangeScan(100)))
	right := j.Add(NewScan("right", 2, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < 200; i += tc.NumPartitions {
			if i%2 != 0 {
				continue
			}
			if err := emit(Tuple{adm.Int64(i), adm.Int64(i * 100)}); err != nil {
				return err
			}
		}
		return nil
	}))
	join := j.Add(NewHashJoin("join", 3, []int{0}, []int{0}, InnerJoin, 2, nil))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 3, coll))
	j.MustConnect(left, join, 0, HashPartition(0))
	j.MustConnect(right, join, 1, HashPartition(0))
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	if len(ts) != 50 {
		t.Fatalf("joined %d tuples, want 50", len(ts))
	}
	for _, tp := range ts {
		l, _ := adm.AsInt(tp[0])
		r, _ := adm.AsInt(tp[2])
		if l != r {
			t.Fatalf("mismatched join: %v", tp)
		}
		if v, _ := adm.AsInt(tp[3]); v != l*100 {
			t.Fatalf("right payload wrong: %v", tp)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	left := j.Add(NewScan("left", 1, rangeScan(10)))
	right := j.Add(NewScan("right", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		return emit(Tuple{adm.Int64(3), adm.String("match")})
	}))
	join := j.Add(NewHashJoin("join", 1, []int{0}, []int{0}, LeftOuterJoin, 2, nil))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	if len(ts) != 10 {
		t.Fatalf("outer join returned %d", len(ts))
	}
	matches, misses := 0, 0
	for _, tp := range ts {
		if tp[2].Kind() == adm.KindMissing {
			misses++
		} else {
			matches++
		}
	}
	if matches != 1 || misses != 9 {
		t.Fatalf("matches=%d misses=%d", matches, misses)
	}
}

func TestHashJoinGraceSpill(t *testing.T) {
	c := newCluster(t, 1)
	c.MemBudget = 2 << 10 // force grace mode
	j := NewJob()
	n := 2000
	left := j.Add(NewScan("left", 1, rangeScan(n)))
	right := j.Add(NewScan("right", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := 0; i < n; i++ {
			if err := emit(Tuple{adm.Int64(i), adm.String("right-payload-right-payload")}); err != nil {
				return err
			}
		}
		return nil
	}))
	join := j.Add(NewHashJoin("join", 1, []int{0}, []int{0}, InnerJoin, 2, nil))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != n {
		t.Fatalf("grace join returned %d, want %d", coll.Len(), n)
	}
	if c.Nodes[0].Spills == 0 {
		t.Error("expected grace spills")
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	left := j.Add(NewScan("left", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		emit(Tuple{adm.Null, adm.String("l")})
		return emit(Tuple{adm.Int64(1), adm.String("l")})
	}))
	right := j.Add(NewScan("right", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		emit(Tuple{adm.Null, adm.String("r")})
		return emit(Tuple{adm.Int64(1), adm.String("r")})
	}))
	join := j.Add(NewHashJoin("join", 1, []int{0}, []int{0}, InnerJoin, 2, nil))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 1 {
		t.Fatalf("null keys matched: %d results", coll.Len())
	}
}

func TestNestedLoopJoin(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	left := j.Add(NewScan("left", 1, rangeScan(20)))
	right := j.Add(NewScan("right", 1, rangeScan(20)))
	// Non-equi predicate: l.0 < r.0 - 15.
	join := j.Add(NewNestedLoopJoin("nl", 1, func(l, r Tuple) (bool, error) {
		lv, _ := adm.AsInt(l[0])
		rv, _ := adm.AsInt(r[0])
		return lv < rv-15, nil
	}, InnerJoin, 2))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, Broadcast())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	// Pairs with l < r-15: r in 16..19, l < r-15 -> (0..0, 16), (0..1, 17)... = 1+2+3+4 = 10.
	if coll.Len() != 10 {
		t.Fatalf("NL join returned %d, want 10", coll.Len())
	}
}

func TestGroupByParallel(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	// 1000 tuples, group = i%10, value = i.
	scan := j.Add(NewScan("scan", 4, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < 1000; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(i % 10), adm.Int64(i)}); err != nil {
				return err
			}
		}
		return nil
	}))
	gb := j.Add(NewGroupBy("gb", 3, []int{0}, []AggSpec{CountAgg(-1), SumAgg(1), MinAgg(1), MaxAgg(1), AvgAgg(1)}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 3, coll))
	j.MustConnect(scan, gb, 0, HashPartition(0))
	j.MustConnect(gb, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	if len(ts) != 10 {
		t.Fatalf("groups = %d", len(ts))
	}
	for _, tp := range ts {
		g, _ := adm.AsInt(tp[0])
		cnt, _ := adm.AsInt(tp[1])
		sum, _ := adm.AsInt(tp[2])
		min, _ := adm.AsInt(tp[3])
		max, _ := adm.AsInt(tp[4])
		if cnt != 100 {
			t.Fatalf("group %d count %d", g, cnt)
		}
		// sum of g, g+10, ..., g+990 = 100g + 10*(0+10+...+990)
		want := 100*g + 10*49500/10
		if sum != want {
			t.Fatalf("group %d sum %d, want %d", g, sum, want)
		}
		if min != g || max != g+990 {
			t.Fatalf("group %d min/max %d/%d", g, min, max)
		}
		avg, _ := adm.AsFloat(tp[5])
		if avg != float64(want)/100 {
			t.Fatalf("group %d avg %f", g, avg)
		}
	}
}

func TestGroupBySpill(t *testing.T) {
	c := newCluster(t, 1)
	c.MemBudget = 2 << 10
	j := NewJob()
	scan := j.Add(NewScan("scan", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := 0; i < 5000; i++ {
			if err := emit(Tuple{adm.Int64(i % 500), adm.Int64(1)}); err != nil {
				return err
			}
		}
		return nil
	}))
	gb := j.Add(NewGroupBy("gb", 1, []int{0}, []AggSpec{CountAgg(-1)}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, gb, 0, OneToOne())
	j.MustConnect(gb, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 500 {
		t.Fatalf("groups = %d, want 500 (spill merge broken?)", coll.Len())
	}
	for _, tp := range coll.Tuples() {
		if cnt, _ := adm.AsInt(tp[1]); cnt != 10 {
			t.Fatalf("count = %d, want 10", cnt)
		}
	}
	if c.Nodes[0].Spills == 0 {
		t.Error("expected aggregation spills")
	}
}

func TestDistinct(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	scan := j.Add(NewScan("scan", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := 0; i < 100; i++ {
			if err := emit(Tuple{adm.Int64(i % 7)}); err != nil {
				return err
			}
		}
		return nil
	}))
	d := j.Add(NewDistinct("distinct", 1, 1))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, d, 0, OneToOne())
	j.MustConnect(d, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 7 {
		t.Fatalf("distinct returned %d", coll.Len())
	}
}

func TestLimit(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	scan := j.Add(NewScan("scan", 2, rangeScan(100)))
	lim := j.Add(NewLimit("limit", 1, 5))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, lim, 0, MergeUnordered())
	j.MustConnect(lim, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 5 {
		t.Fatalf("limit returned %d", coll.Len())
	}
}

func TestErrorPropagationCancelsJob(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	scan := j.Add(NewScan("scan", 2, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := 0; ; i++ {
			if tc.Partition == 1 && i == 10 {
				return fmt.Errorf("synthetic failure")
			}
			if i > 1_000_000 {
				return nil
			}
			if err := emit(Tuple{adm.Int64(i)}); err != nil {
				return err
			}
		}
	}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 2, coll))
	j.MustConnect(scan, sink, 0, OneToOne())
	err := c.Run(context.Background(), j)
	if err == nil {
		t.Fatal("job should fail")
	}
}

func TestRunFileRoundTrip(t *testing.T) {
	rw, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{
		{adm.Int64(1), adm.String("a"), adm.Null},
		{adm.NewObject(adm.Field{Name: "x", Value: adm.Int64(2)})},
		{},
	}
	for _, tp := range want {
		if err := rw.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	rr, err := rw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	for i := range want {
		got, ok, err := rr.Next()
		if err != nil || !ok {
			t.Fatalf("next %d: %v %v", i, ok, err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("tuple %d width %d", i, len(got))
		}
		for c := range got {
			if adm.Compare(got[c], want[i][c]) != 0 {
				t.Fatalf("tuple %d col %d: %v != %v", i, c, got[c], want[i][c])
			}
		}
	}
	if _, ok, _ := rr.Next(); ok {
		t.Fatal("extra tuple")
	}
}

func BenchmarkParallelGroupBy(b *testing.B) {
	c := newCluster(b, 4)
	for iter := 0; iter < b.N; iter++ {
		j := NewJob()
		scan := j.Add(NewScan("scan", 4, func(tc *TaskContext, emit func(Tuple) error) error {
			for i := tc.Partition; i < 100000; i += tc.NumPartitions {
				if err := emit(Tuple{adm.Int64(i % 100), adm.Int64(i)}); err != nil {
					return err
				}
			}
			return nil
		}))
		gb := j.Add(NewGroupBy("gb", 4, []int{0}, []AggSpec{CountAgg(-1), SumAgg(1)}))
		coll := &Collector{}
		sink := j.Add(NewSink("sink", 4, coll))
		j.MustConnect(scan, gb, 0, HashPartition(0))
		j.MustConnect(gb, sink, 0, OneToOne())
		if err := c.Run(context.Background(), j); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHashJoinResidualPredicate(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	left := j.Add(NewScan("left", 1, rangeScan(10)))
	right := j.Add(NewScan("right", 1, rangeScan(10)))
	// Keys equal AND the residual demands the right payload be >= 50
	// (i.e. i >= 5).
	residual := func(l, r Tuple) (bool, error) {
		v, _ := adm.AsInt(r[1])
		return v >= 50, nil
	}
	join := j.Add(NewHashJoin("join", 1, []int{0}, []int{0}, LeftOuterJoin, 2, residual))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	ts := coll.Tuples()
	if len(ts) != 10 {
		t.Fatalf("outer join rows: %d", len(ts))
	}
	matches, outers := 0, 0
	for _, tp := range ts {
		if tp[2].Kind() == adm.KindMissing {
			outers++
		} else {
			matches++
		}
	}
	// i in 5..9 match; 0..4 padded.
	if matches != 5 || outers != 5 {
		t.Fatalf("matches=%d outers=%d", matches, outers)
	}
}

func TestHashSemiJoinResidual(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	left := j.Add(NewScan("left", 1, rangeScan(20)))
	right := j.Add(NewScan("right", 1, rangeScan(20)))
	residual := func(l, r Tuple) (bool, error) {
		v, _ := adm.AsInt(r[0])
		return v%2 == 0, nil
	}
	join := j.Add(NewHashJoin("semi", 1, []int{0}, []int{0}, LeftSemiJoin, 2, residual))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 10 {
		t.Fatalf("semi join with residual: %d rows, want 10", coll.Len())
	}
}

func TestRoundRobinConnector(t *testing.T) {
	c := newCluster(t, 1)
	j := NewJob()
	scan := j.Add(NewScan("scan", 1, rangeScan(90)))
	var mu sync.Mutex
	counts := make([]int, 3)
	sink := j.Add(NewFuncSink("sink", 3, func(p int, tp Tuple) error {
		mu.Lock()
		counts[p]++
		mu.Unlock()
		return nil
	}))
	j.MustConnect(scan, sink, 0, RoundRobin())
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p, n := range counts {
		total += n
		if n != 30 {
			t.Errorf("partition %d got %d, want 30 (round robin balance)", p, n)
		}
	}
	if total != 90 {
		t.Fatalf("total %d", total)
	}
}
