package hyracks

import (
	"sort"
	"time"

	"asterix/internal/fault"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// NewSort builds a memory-governed external sort: each partition
// accumulates tuples in its working-memory grant, growing it as the
// buffer fills; a denied Grow spills a sorted run, and runs are merged
// on output. With a single run everything stays in memory (the crossover
// E5 measures).
func NewSort(name string, parallelism int, cmp Comparator) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		Memory:      true,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return runSort(tc, in[0], out[0], cmp)
			})
		},
	}
}

func runSort(tc *TaskContext, in *Input, out *Output, cmp Comparator) error {
	var (
		buf     []Tuple
		bufSize int
		runs    []*RunReader
	)
	spill := func() error {
		if err := fault.Hit(fault.PointSpillIO); err != nil {
			return err
		}
		t0 := time.Now()
		defer func() { tc.AddWait(obs.WaitSpill, time.Since(t0)) }()
		sort.SliceStable(buf, func(i, j int) bool { return cmp.Compare(buf[i], buf[j]) < 0 })
		rw, err := NewRunWriter(tc.TempDir())
		if err != nil {
			return err
		}
		for _, t := range buf {
			if err := rw.Write(t); err != nil {
				rw.Abort()
				return err
			}
		}
		rr, err := rw.Finish()
		if err != nil {
			return err
		}
		runs = append(runs, rr)
		tc.Spill()
		buf = buf[:0]
		bufSize = 0
		tc.Mem.ShrinkToMin()
		return nil
	}

	err := in.ForEach(func(t Tuple) error {
		buf = append(buf, t)
		bufSize += t.EstimateSize()
		for bufSize > tc.Mem.Granted() {
			if !tc.Mem.Grow(mem.GrowChunk) {
				return spill()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	defer func() {
		for _, r := range runs {
			r.Close()
		}
	}()

	sort.SliceStable(buf, func(i, j int) bool { return cmp.Compare(buf[i], buf[j]) < 0 })
	if len(runs) == 0 {
		// Pure in-memory sort.
		for _, t := range buf {
			if err := out.Write(t); err != nil {
				return err
			}
		}
		return nil
	}

	// K-way merge of spilled runs plus the in-memory tail.
	type source struct {
		cur  Tuple
		next func() (Tuple, bool, error)
	}
	var sources []*source
	for _, r := range runs {
		r := r
		// Run read-back is spill I/O: attribute the wait, or the merge
		// phase's disk stalls vanish from the operator's breakdown while
		// the write side (spill above) is fully accounted.
		sources = append(sources, &source{next: func() (Tuple, bool, error) {
			t0 := time.Now()
			t, ok, err := r.Next()
			tc.AddWait(obs.WaitSpill, time.Since(t0))
			return t, ok, err
		}})
	}
	memPos := 0
	sources = append(sources, &source{next: func() (Tuple, bool, error) {
		if memPos >= len(buf) {
			return nil, false, nil
		}
		t := buf[memPos]
		memPos++
		return t, true, nil
	}})
	for _, s := range sources {
		t, ok, err := s.next()
		if err != nil {
			return err
		}
		if ok {
			s.cur = t
		}
	}
	for {
		best := -1
		for i, s := range sources {
			if s.cur == nil {
				continue
			}
			if best == -1 || cmp.Compare(s.cur, sources[best].cur) < 0 {
				best = i
			}
		}
		if best == -1 {
			return nil
		}
		if err := out.Write(sources[best].cur); err != nil {
			return err
		}
		t, ok, err := sources[best].next()
		if err != nil {
			return err
		}
		if ok {
			sources[best].cur = t
		} else {
			sources[best].cur = nil
		}
	}
}
