package hyracks

import (
	"context"
	"fmt"
	"time"

	"asterix/internal/mem"
	"asterix/internal/obs"
)

// TaskContext is handed to each (operator, partition) task.
type TaskContext struct {
	Ctx           context.Context
	Partition     int
	NumPartitions int
	Node          *NodeController
	// Mem is this task's working-memory grant (sorts, joins,
	// aggregation), drawn from the cluster's governor per Figure 2. The
	// task's minimum was reserved at job admission; operators Grow it as
	// their buffers fill and spill when a Grow is denied. Nil for tasks
	// of operators that declared no memory need (unbounded no-op).
	Mem *mem.Grant
	// Span is this task's trace span when the job runs under detailed
	// profiling; nil otherwise (all span methods are nil-safe).
	Span *obs.Span
	// JobSpan is the enclosing statement's span (the server's request
	// span), present even without detailed profiling so wait-time
	// attribution reaches the slow-query log; nil outside traced
	// requests.
	JobSpan *obs.Span
}

// AddWait attributes blocked time (spill I/O, exchange stalls) to the
// task span when detailed profiling is on, otherwise to the job span —
// both nil-safe, so untraced jobs pay only the time.Since call at each
// (rare) wait event.
func (tc *TaskContext) AddWait(k obs.WaitKind, d time.Duration) {
	//lint:ignore obs-nil routing between two sinks, not a call guard: detailed task span wins over the job span
	if tc.Span != nil {
		tc.Span.AddWait(k, d)
		return
	}
	tc.JobSpan.AddWait(k, d)
}

// TempDir returns the node-local spill directory.
func (tc *TaskContext) TempDir() string { return tc.Node.TempDir }

// Spill accounts one run-file spill on the node and, when profiling, the
// task span.
func (tc *TaskContext) Spill() {
	tc.Node.AddSpill()
	tc.Span.AddSpill()
}

// Input is a pull endpoint delivering frames from an upstream connector.
// A frame's container belongs to the consumer once delivered: ForEach
// recycles it after the per-tuple pass, and NextFrame callers should hand
// exhausted frames back with Recycle (dropping one is benign — the GC
// takes it — but defeats pooling).
type Input struct {
	recv func() ([]Tuple, bool, error)
	pool *FramePool
}

// NextFrame returns the next frame, ok=false at end of stream. The caller
// owns the returned frame; Recycle it once its tuples are consumed.
func (in *Input) NextFrame() ([]Tuple, bool, error) { return in.recv() }

// Recycle returns an exhausted frame container to the cluster's pool.
// Tuples already read out of it stay valid (they are independent arrays);
// the container itself must not be used after this call.
func (in *Input) Recycle(frame []Tuple) { in.pool.Put(frame) }

// ForEach drains the input, calling fn per tuple. Each frame's container
// is recycled after its tuples are delivered, so fn must not retain the
// frame slice itself — retaining individual tuples is fine.
func (in *Input) ForEach(fn func(Tuple) error) error {
	for {
		frame, ok, err := in.recv()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, t := range frame {
			if err := fn(t); err != nil {
				return err
			}
		}
		in.pool.Put(frame)
	}
}

// Output is a push endpoint into a downstream connector.
type Output struct {
	write func(Tuple) error
	close func() error
}

// Write emits one tuple.
func (o *Output) Write(t Tuple) error { return o.write(t) }

// Runner is one partition's executable logic for an operator.
type Runner interface {
	Run(tc *TaskContext, in []*Input, out []*Output) error
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(tc *TaskContext, in []*Input, out []*Output) error

// Run implements Runner.
func (f RunnerFunc) Run(tc *TaskContext, in []*Input, out []*Output) error { return f(tc, in, out) }

// Operator describes a logical operator: a factory of per-partition
// runners plus its parallelism.
type Operator struct {
	Name        string
	Parallelism int
	New         func(partition int) Runner
	// Memory marks operators that buffer tuples against the working-
	// memory budget (sort, join, group-by). Each of their tasks gets a
	// minimum grant reserved at job admission; tasks of other operators
	// run with a nil grant.
	Memory bool

	id     int
	inEnds []*edge // ordered by input port
	outs   []*edge
}

// ConnectorKind selects the data-movement pattern of an edge.
type ConnectorKind int

// Connector kinds.
const (
	// ConnOneToOne pipes partition i to partition i (parallelism must match).
	ConnOneToOne ConnectorKind = iota
	// ConnHashPartition routes each tuple by the hash of key columns.
	ConnHashPartition
	// ConnBroadcast sends every tuple to all consumer partitions.
	ConnBroadcast
	// ConnMerge concentrates all producer partitions into consumer
	// partition 0, merging by a comparator if one is given (otherwise
	// arbitrary interleave). Consumer parallelism must be 1.
	ConnMerge
	// ConnRoundRobin scatters tuples round-robin (load balancing).
	ConnRoundRobin
)

// Connector configures an edge.
type Connector struct {
	Kind     ConnectorKind
	HashCols []int      // ConnHashPartition
	Cmp      Comparator // ConnMerge: ordered merge when Columns non-empty
}

// OneToOne returns a one-to-one connector.
func OneToOne() Connector { return Connector{Kind: ConnOneToOne} }

// HashPartition returns a hash-partitioning connector on the columns.
func HashPartition(cols ...int) Connector {
	return Connector{Kind: ConnHashPartition, HashCols: cols}
}

// Broadcast returns a broadcast connector.
func Broadcast() Connector { return Connector{Kind: ConnBroadcast} }

// MergeUnordered concentrates producers into one consumer partition.
func MergeUnordered() Connector { return Connector{Kind: ConnMerge} }

// MergeOrdered concentrates producers into one consumer partition,
// merge-sorting by cmp (producers must emit in cmp order).
func MergeOrdered(cmp Comparator) Connector { return Connector{Kind: ConnMerge, Cmp: cmp} }

// RoundRobin returns a round-robin scatter connector.
func RoundRobin() Connector { return Connector{Kind: ConnRoundRobin} }

type edge struct {
	from, to *Operator
	toPort   int
	conn     Connector
}

// Job is a dataflow DAG under construction.
type Job struct {
	ops   []*Operator
	edges []*edge

	// placement, when set, makes Run execute only this process's share
	// of the DAG and route cross-process edges through the transport.
	// Nil is the single-process mode: every task local.
	placement *Placement

	// peakWorking records the job's high-water mark of granted working
	// memory, set by Run when the job completes.
	peakWorking int64
}

// SetPlacement attaches a multi-process placement to the job (see
// Placement). Call before Run; a nil placement restores single-process
// execution.
func (j *Job) SetPlacement(p *Placement) { j.placement = p }

// PeakWorkingBytes returns the high-water mark of working memory granted
// to the job's tasks during its last Run (0 before the job ran or when
// no operator drew memory).
func (j *Job) PeakWorkingBytes() int64 { return j.peakWorking }

// NewJob creates an empty job.
func NewJob() *Job { return &Job{} }

// Add registers an operator and returns it.
func (j *Job) Add(op *Operator) *Operator {
	if op.Parallelism < 1 {
		op.Parallelism = 1
	}
	op.id = len(j.ops)
	j.ops = append(j.ops, op)
	return op
}

// Connect wires from → to at the consumer's input port.
func (j *Job) Connect(from, to *Operator, port int, conn Connector) error {
	if conn.Kind == ConnOneToOne && from.Parallelism != to.Parallelism {
		return fmt.Errorf("hyracks: one-to-one between parallelism %d and %d", from.Parallelism, to.Parallelism)
	}
	if conn.Kind == ConnMerge && to.Parallelism != 1 {
		return fmt.Errorf("hyracks: merge connector requires consumer parallelism 1, got %d", to.Parallelism)
	}
	e := &edge{from: from, to: to, toPort: port, conn: conn}
	for len(to.inEnds) <= port {
		to.inEnds = append(to.inEnds, nil)
	}
	if to.inEnds[port] != nil {
		return fmt.Errorf("hyracks: input port %d of %s already connected", port, to.Name)
	}
	to.inEnds[port] = e
	from.outs = append(from.outs, e)
	j.edges = append(j.edges, e)
	return nil
}

// MustConnect is Connect that panics on miswiring (plan-construction bug).
func (j *Job) MustConnect(from, to *Operator, port int, conn Connector) {
	if err := j.Connect(from, to, port, conn); err != nil {
		panic(err)
	}
}
