// Package hyracks implements the dataflow runtime of the stack (Figure 4):
// jobs are DAGs of operators and connectors executed with partitioned
// parallelism — one goroutine per (operator, partition) standing in for
// the per-node tasks of a shared-nothing cluster. Data moves in frames
// (tuple batches) through connectors (one-to-one, hash-partitioning,
// broadcast, ordered-merge). Memory-intensive operators (sort, join,
// group-by) honor a working-memory budget and spill to run files, per the
// paper's founding assumption that data and intermediate results exceed
// main memory.
package hyracks

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"asterix/internal/adm"
)

// Tuple is one row: a fixed-width array of ADM values whose layout is
// defined by the plan that produces it.
type Tuple []adm.Value

// Clone copies the tuple (values are immutable and shared).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// EstimateSize approximates the tuple's in-memory footprint in bytes, used
// for working-memory accounting.
func (t Tuple) EstimateSize() int {
	sz := 24
	for _, v := range t {
		sz += estimateValueSize(v)
	}
	return sz
}

// EstimateSizeShallow approximates the tuple's incremental footprint when
// its pointer-typed values are shared with another live tuple — the
// post-Clone case: Clone copies the value slice but *adm.Object columns
// still point at the originals, so deep-counting them double-charges
// memory the table does not own. Pointer-shared values are charged at
// pointer cost; everything else matches EstimateSize.
func (t Tuple) EstimateSizeShallow() int {
	sz := 24
	for _, v := range t {
		sz += estimateValueShallow(v)
	}
	return sz
}

func estimateValueShallow(v adm.Value) int {
	switch x := v.(type) {
	case *adm.Object:
		return 16 // one shared pointer; the object is charged to its owner
	case adm.Array:
		sz := 24
		for _, e := range x {
			sz += estimateValueShallow(e)
		}
		return sz
	case adm.Multiset:
		sz := 24
		for _, e := range x {
			sz += estimateValueShallow(e)
		}
		return sz
	default:
		return estimateValueSize(v)
	}
}

func estimateValueSize(v adm.Value) int {
	switch x := v.(type) {
	case adm.String:
		return 16 + len(x)
	case adm.Binary:
		return 16 + len(x)
	case adm.Array:
		sz := 24
		for _, e := range x {
			sz += estimateValueSize(e)
		}
		return sz
	case adm.Multiset:
		sz := 24
		for _, e := range x {
			sz += estimateValueSize(e)
		}
		return sz
	case *adm.Object:
		sz := 32
		for _, f := range x.Fields() {
			sz += 16 + len(f.Name) + estimateValueSize(f.Value)
		}
		return sz
	default:
		return 16
	}
}

// Comparator orders tuples by a column list with per-column direction.
type Comparator struct {
	Columns []int
	Desc    []bool // parallel to Columns; nil = all ascending
}

// Compare returns the order of a vs b under the comparator.
func (c Comparator) Compare(a, b Tuple) int {
	for i, col := range c.Columns {
		r := adm.Compare(a[col], b[col])
		if r != 0 {
			if c.Desc != nil && c.Desc[i] {
				return -r
			}
			return r
		}
	}
	return 0
}

// HashColumns hashes the listed columns of a tuple (for hash partitioning
// and hash joins).
func HashColumns(t Tuple, cols []int) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range cols {
		h = h*1099511628211 ^ adm.Hash64(t[c])
	}
	return h
}

// --- Run files: spilled tuple streams for sort/join/group-by. ---

// RunWriter writes tuples to a spill file.
type RunWriter struct {
	f   *os.File
	w   *bufio.Writer
	n   int
	buf []byte
}

// NewRunWriter creates a spill file in dir. Its encode scratch comes from
// the shared run-scratch byte pool and is handed on to the RunReader at
// Finish; Abort (or a failed Finish) returns it directly.
func NewRunWriter(dir string) (*RunWriter, error) {
	f, err := os.CreateTemp(dir, "run-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("hyracks: create run file: %w", err)
	}
	return &RunWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), buf: runScratch.Get()}, nil
}

// Write appends one tuple.
func (rw *RunWriter) Write(t Tuple) error {
	rw.buf = rw.buf[:0]
	rw.buf = binary.AppendUvarint(rw.buf, uint64(len(t)))
	for _, v := range t {
		rw.buf = adm.Encode(rw.buf, v)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rw.buf)))
	if _, err := rw.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := rw.w.Write(rw.buf); err != nil {
		return err
	}
	rw.n++
	return nil
}

// Len returns the number of tuples written.
func (rw *RunWriter) Len() int { return rw.n }

// Finish flushes and returns a reader positioned at the start. The file is
// unlinked once the reader is closed. The writer's encode scratch moves to
// the reader (returned to the pool by the reader's Close).
func (rw *RunWriter) Finish() (*RunReader, error) {
	if err := rw.w.Flush(); err != nil {
		runScratch.Put(rw.buf)
		rw.buf = nil
		return nil, err
	}
	if _, err := rw.f.Seek(0, io.SeekStart); err != nil {
		runScratch.Put(rw.buf)
		rw.buf = nil
		return nil, err
	}
	rr := &RunReader{f: rw.f, r: bufio.NewReaderSize(rw.f, 1<<16), remaining: rw.n, buf: rw.buf}
	rw.buf = nil
	return rr, nil
}

// Abort discards the run file without reading it.
func (rw *RunWriter) Abort() {
	name := rw.f.Name()
	//lint:ignore err-discard best-effort cleanup of a spill file that is being thrown away
	rw.f.Close()
	//lint:ignore err-discard best-effort cleanup of a spill file that is being thrown away
	os.Remove(name)
	runScratch.Put(rw.buf)
	rw.buf = nil
}

// RunReader reads back a spilled tuple stream.
type RunReader struct {
	f         *os.File
	r         *bufio.Reader
	remaining int
	buf       []byte

	// Tuples, when set, makes Next build each tuple in a container drawn
	// from the pool. Next then returns POOLED tuples: the caller owns each
	// one until it Puts it back, and must not retain it past the Put (the
	// values read out of it may be retained freely). Leave nil when read-
	// back tuples flow downstream — sort merge output, semi-join probe.
	Tuples *TuplePool
}

// Next returns the next tuple, or ok=false at end.
func (rr *RunReader) Next() (Tuple, bool, error) {
	if rr.remaining == 0 {
		return nil, false, nil
	}
	sz, err := binary.ReadUvarint(rr.r)
	if err != nil {
		return nil, false, fmt.Errorf("hyracks: run read: %w", err)
	}
	if cap(rr.buf) < int(sz) {
		rr.buf = make([]byte, sz)
	}
	rr.buf = rr.buf[:sz]
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		return nil, false, fmt.Errorf("hyracks: run read: %w", err)
	}
	pos := 0
	n, m := binary.Uvarint(rr.buf)
	if m <= 0 {
		return nil, false, fmt.Errorf("hyracks: corrupt run file")
	}
	pos += m
	t := rr.Tuples.Get()
	if cap(t) < int(n) {
		rr.Tuples.Put(t)
		t = make(Tuple, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		v, used, err := adm.Decode(rr.buf[pos:])
		if err != nil {
			rr.Tuples.Put(t)
			return nil, false, err
		}
		t = append(t, v)
		pos += used
	}
	rr.remaining--
	return t, true, nil
}

// Close closes and removes the run file, returning its decode scratch to
// the shared pool.
func (rr *RunReader) Close() error {
	name := rr.f.Name()
	err := rr.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	runScratch.Put(rr.buf)
	rr.buf = nil
	return err
}
