package hyracks

import (
	"fmt"
	"sync"
)

// NewScan builds a source operator: scan is called once per partition and
// emits tuples.
func NewScan(name string, parallelism int, scan func(tc *TaskContext, emit func(Tuple) error) error) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return scan(tc, out[0].Write)
			})
		},
	}
}

// NewMap builds a flat-map operator: fn returns zero or more output tuples
// per input tuple (covering project, assign, filter, and unnest).
func NewMap(name string, parallelism int, fn func(tc *TaskContext, t Tuple, emit func(Tuple) error) error) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return in[0].ForEach(func(t Tuple) error {
					return fn(tc, t, out[0].Write)
				})
			})
		},
	}
}

// NewFilter builds a predicate filter.
func NewFilter(name string, parallelism int, pred func(t Tuple) (bool, error)) *Operator {
	return NewMap(name, parallelism, func(tc *TaskContext, t Tuple, emit func(Tuple) error) error {
		ok, err := pred(t)
		if err != nil {
			return err
		}
		if ok {
			return emit(t)
		}
		return nil
	})
}

// NewLimit passes at most n tuples per partition (a global LIMIT is a
// per-partition limit, a merge, and another limit).
func NewLimit(name string, parallelism int, n int64) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				var count int64
				for {
					frame, ok, err := in[0].NextFrame()
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					for _, t := range frame {
						if count >= n {
							// Drain the rest without emitting (upstream
							// cancellation would need job-level support).
							continue
						}
						count++
						if err := out[0].Write(t); err != nil {
							return err
						}
					}
					in[0].Recycle(frame)
				}
			})
		},
	}
}

// Collector accumulates a job's result tuples (thread-safe).
type Collector struct {
	mu     sync.Mutex
	tuples []Tuple
}

// Add appends a tuple.
func (c *Collector) Add(t Tuple) {
	c.mu.Lock()
	c.tuples = append(c.tuples, t.Clone())
	c.mu.Unlock()
}

// Tuples returns the collected tuples.
func (c *Collector) Tuples() []Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tuples
}

// Len returns the number of collected tuples.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tuples)
}

// NewSink builds a terminal operator that feeds a Collector.
func NewSink(name string, parallelism int, coll *Collector) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return in[0].ForEach(func(t Tuple) error {
					coll.Add(t)
					return nil
				})
			})
		},
	}
}

// NewOrderedSink collects tuples preserving arrival order in a single
// partition (used below a merge connector for ORDER BY results).
func NewOrderedSink(name string, coll *Collector) *Operator {
	return NewSink(name, 1, coll)
}

// NewFuncSink builds a terminal operator calling fn per tuple.
func NewFuncSink(name string, parallelism int, fn func(partition int, t Tuple) error) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(p int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return in[0].ForEach(func(t Tuple) error {
					return fn(p, t)
				})
			})
		},
	}
}

// NewUnionAll concatenates its inputs (all ports) into one stream.
func NewUnionAll(name string, parallelism int, inputs int) *Operator {
	if inputs < 1 {
		inputs = 1
	}
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				if len(in) != inputs {
					return fmt.Errorf("union: expected %d inputs, got %d", inputs, len(in))
				}
				for _, i := range in {
					if err := i.ForEach(out[0].Write); err != nil {
						return err
					}
				}
				return nil
			})
		},
	}
}
