package hyracks

import (
	"context"
	"testing"
	"time"

	"asterix/internal/adm"
)

// These regression tests reproduce exchange deadlocks found at full
// benchmark scale: a merge-type consumer must never stall one producer
// stream while waiting on another when both share an upstream hash
// exchange (the classic distributed-dataflow merge deadlock).

// runWithDeadline fails the test if the job doesn't finish promptly.
func runWithDeadline(t *testing.T, c *Cluster, j *Job) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- c.Run(context.Background(), j) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job deadlocked")
	}
}

// TestNoDeadlockHashExchangeIntoUnorderedMerge: scan → hash exchange →
// group-by(par 2) → unordered merge → sink, with enough tuples to fill
// every channel buffer many times over.
func TestNoDeadlockHashExchangeIntoUnorderedMerge(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	n := 60000
	scan := j.Add(NewScan("scan", 2, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < n; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(i % 1000), adm.Int64(i)}); err != nil {
				return err
			}
		}
		return nil
	}))
	gb := j.Add(NewGroupBy("gb", 2, []int{0}, []AggSpec{CountAgg(-1)}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, gb, 0, HashPartition(0))
	j.MustConnect(gb, sink, 0, MergeUnordered())
	runWithDeadline(t, c, j)
	if coll.Len() != 1000 {
		t.Fatalf("groups: %d", coll.Len())
	}
}

// TestNoDeadlockHashExchangeIntoOrderedMerge: the ordered-merge variant —
// the merging input must buffer streams it is not currently draining.
func TestNoDeadlockHashExchangeIntoOrderedMerge(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	n := 60000
	scan := j.Add(NewScan("scan", 2, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < n; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(i % 1000), adm.Int64(i)}); err != nil {
				return err
			}
		}
		return nil
	}))
	gb := j.Add(NewGroupBy("gb", 2, []int{0}, []AggSpec{CountAgg(-1)}))
	cmp := Comparator{Columns: []int{0}}
	sorter := j.Add(NewSort("sort", 2, cmp))
	coll := &Collector{}
	sink := j.Add(NewOrderedSink("sink", coll))
	j.MustConnect(scan, gb, 0, HashPartition(0))
	j.MustConnect(gb, sorter, 0, OneToOne())
	j.MustConnect(sorter, sink, 0, MergeOrdered(cmp))
	runWithDeadline(t, c, j)
	if coll.Len() != 1000 {
		t.Fatalf("groups: %d", coll.Len())
	}
	ts := coll.Tuples()
	for i := 1; i < len(ts); i++ {
		if adm.Compare(ts[i-1][0], ts[i][0]) > 0 {
			t.Fatal("order violated")
		}
	}
}

// TestNoDeadlockSkewedMerge: all data lands in one consumer partition of
// a hash exchange whose sibling stays empty — the degenerate skew case.
func TestNoDeadlockSkewedMerge(t *testing.T) {
	c := newCluster(t, 2)
	j := NewJob()
	n := 30000
	scan := j.Add(NewScan("scan", 2, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < n; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(7), adm.Int64(i)}); err != nil { // single key
				return err
			}
		}
		return nil
	}))
	gb := j.Add(NewGroupBy("gb", 2, []int{0}, []AggSpec{CountAgg(-1)}))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, gb, 0, HashPartition(0))
	j.MustConnect(gb, sink, 0, MergeUnordered())
	runWithDeadline(t, c, j)
	if coll.Len() != 1 {
		t.Fatalf("groups: %d", coll.Len())
	}
	if v, _ := adm.AsInt(coll.Tuples()[0][1]); v != int64(n) {
		t.Fatalf("count: %d", v)
	}
}
