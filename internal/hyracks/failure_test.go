package hyracks

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"asterix/internal/adm"
	"asterix/internal/fault"
)

// waitForGoroutines polls until the goroutine count drops back to (or
// below) base plus a small slack, failing the test if it never does —
// the leak guard for job teardown.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d at baseline\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestKillNodeMidJoinRetriesOnSurvivors(t *testing.T) {
	c := newCluster(t, 4)
	base := runtime.NumGoroutine()

	var seen int32
	var coll *Collector
	build := func() (*Job, error) {
		j := NewJob()
		left := j.Add(NewScan("left", 4, rangeScan(8000)))
		right := j.Add(NewScan("right", 4, rangeScan(4000)))
		// killer passes tuples through and takes node nc3 down partway
		// through the first attempt (the counter fires exactly once).
		killer := j.Add(NewMap("killer", 4, func(tc *TaskContext, tp Tuple, emit func(Tuple) error) error {
			if atomic.AddInt32(&seen, 1) == 2000 {
				c.Nodes[3].Kill()
			}
			return emit(tp)
		}))
		join := j.Add(NewHashJoin("join", 4, []int{0}, []int{0}, InnerJoin, 2, nil))
		coll = &Collector{}
		sink := j.Add(NewSink("sink", 4, coll))
		j.MustConnect(left, killer, 0, OneToOne())
		j.MustConnect(killer, join, 0, HashPartition(0))
		j.MustConnect(right, join, 1, HashPartition(0))
		j.MustConnect(join, sink, 0, OneToOne())
		return j, nil
	}

	// First, show the bare Run fails fast with a typed node failure.
	j, _ := build()
	err := c.Run(context.Background(), j)
	var nf *NodeFailure
	if !errors.As(err, &nf) {
		t.Fatalf("want *NodeFailure, got %v", err)
	}
	if nf.Node != "nc3" {
		t.Fatalf("failure attributed to %s, want nc3", nf.Node)
	}
	waitForGoroutines(t, base)

	// Then the retry path completes the job on the three survivors.
	rep, err := c.RunWithRetry(context.Background(), build, RetryPolicy{})
	if err != nil {
		t.Fatalf("RunWithRetry on survivors: %v", err)
	}
	if rep.Attempts != 1 {
		// nc3 is already dead at this point, so the rebuilt job runs
		// entirely on survivors and succeeds first try.
		t.Fatalf("attempts = %d, want 1", rep.Attempts)
	}
	if got := len(coll.Tuples()); got != 4000 {
		t.Fatalf("join produced %d tuples on survivors, want 4000", got)
	}
	waitForGoroutines(t, base)

	st := c.RetryStats()
	if st.NodeFailures < 1 {
		t.Fatalf("node failure not counted: %+v", st)
	}
}

func TestRunWithRetryRecoversMidRunKill(t *testing.T) {
	c := newCluster(t, 4)
	base := runtime.NumGoroutine()

	var seen int32
	var coll *Collector
	build := func() (*Job, error) {
		j := NewJob()
		left := j.Add(NewScan("left", 4, rangeScan(6000)))
		killer := j.Add(NewMap("killer", 4, func(tc *TaskContext, tp Tuple, emit func(Tuple) error) error {
			if atomic.AddInt32(&seen, 1) == 1500 {
				c.Nodes[1].Kill()
			}
			return emit(tp)
		}))
		join := j.Add(NewHashJoin("join", 4, []int{0}, []int{0}, InnerJoin, 2, nil))
		right := j.Add(NewScan("right", 4, rangeScan(3000)))
		coll = &Collector{}
		sink := j.Add(NewSink("sink", 4, coll))
		j.MustConnect(left, killer, 0, OneToOne())
		j.MustConnect(killer, join, 0, HashPartition(0))
		j.MustConnect(right, join, 1, HashPartition(0))
		j.MustConnect(join, sink, 0, OneToOne())
		return j, nil
	}

	rep, err := c.RunWithRetry(context.Background(), build, RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatalf("RunWithRetry: %v (report %+v)", err, rep)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure, one success)", rep.Attempts)
	}
	if len(rep.DeadNodes) != 1 || rep.DeadNodes[0] != "nc1" {
		t.Fatalf("dead nodes %v, want [nc1]", rep.DeadNodes)
	}
	if got := len(coll.Tuples()); got != 3000 {
		t.Fatalf("join produced %d tuples, want 3000", got)
	}
	waitForGoroutines(t, base)
	if st := c.RetryStats(); st.Retries != 1 || st.NodeFailures != 1 || st.Attempts != 2 {
		t.Fatalf("retry stats %+v", st)
	}
}

func TestRunFailsWithNoAliveNodes(t *testing.T) {
	c := newCluster(t, 2)
	for _, n := range c.Nodes {
		n.Kill()
	}
	j := NewJob()
	coll := &Collector{}
	scan := j.Add(NewScan("scan", 1, rangeScan(10)))
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(scan, sink, 0, OneToOne())
	if err := c.Run(context.Background(), j); err == nil {
		t.Fatal("Run on a fully-dead cluster must fail")
	}
	c.Nodes[0].Revive()
	if err := c.Run(context.Background(), j); err != nil {
		t.Fatalf("Run after revive: %v", err)
	}
	if len(coll.Tuples()) != 10 {
		t.Fatalf("revived run produced %d tuples", len(coll.Tuples()))
	}
}

func TestNodeCrashFaultPoint(t *testing.T) {
	fault.Disarm()
	defer fault.Disarm()
	c := newCluster(t, 4)
	// The third task to start crashes its node.
	if err := fault.Arm("hyracks.node.crash:error:after=2:times=1"); err != nil {
		t.Fatal(err)
	}
	j := NewJob()
	scan := j.Add(NewScan("scan", 4, rangeScan(1000)))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 4, coll))
	j.MustConnect(scan, sink, 0, OneToOne())
	err := c.Run(context.Background(), j)
	var nf *NodeFailure
	if !errors.As(err, &nf) {
		t.Fatalf("want *NodeFailure from injected crash, got %v", err)
	}
	if len(c.AliveNodes()) != 3 {
		t.Fatalf("alive nodes = %d, want 3", len(c.AliveNodes()))
	}
}

// TestCancelMidQueryNoGoroutineLeak covers the satellite requirement:
// cancelling a running job must return promptly and leak nothing, across
// both the ordered-merge path (unboundedBuffer feeding newMergingInput)
// and the hash-exchange path (connWriter frame buffering).
func TestCancelMidQueryNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	c := newCluster(t, 3)

	// Endless sorted producers into an ordered merge plus a hash exchange:
	// every shutdown path in exec.go is on the hook.
	build := func() *Job {
		j := NewJob()
		scan := j.Add(NewScan("scan", 3, func(tc *TaskContext, emit func(Tuple) error) error {
			for i := 0; ; i++ {
				if err := emit(Tuple{adm.Int64(i), adm.Int64(tc.Partition)}); err != nil {
					return err
				}
			}
		}))
		hashed := j.Add(NewMap("hashed", 3, func(tc *TaskContext, tp Tuple, emit func(Tuple) error) error {
			return emit(tp)
		}))
		coll := &Collector{}
		sink := j.Add(NewOrderedSink("sink", coll))
		j.MustConnect(scan, hashed, 0, HashPartition(0))
		j.MustConnect(hashed, sink, 0, MergeOrdered(Comparator{Columns: []int{0}}))
		return j
	}

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- c.Run(ctx, build()) }()
		time.Sleep(20 * time.Millisecond) // let the pipeline fill
		cancel()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("cancelled run returned nil")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled run did not return promptly")
		}
	}
	waitForGoroutines(t, base)
}
