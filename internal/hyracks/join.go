package hyracks

import (
	"time"

	"asterix/internal/adm"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// JoinKind selects inner or left-outer semantics.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	// LeftSemiJoin emits each left tuple at most once if any match exists
	// (used by the quantified-expression rewrite).
	LeftSemiJoin
)

// NewHashJoin builds an equi-join: port 0 is the left (probe/outer) input,
// port 1 the right (build/inner) input. Output tuples are left ++ right
// (for semi joins, just left). If the build side outgrows what the task's
// working-memory grant can be grown to cover, the operator degrades to a
// grace hash join: both sides are partitioned to spill files and joined
// partition-wise.
//
// residual, if non-nil, is an extra ON predicate checked on each
// key-matching pair — only pairs passing it count as matches (the join
// semantics needed for outer and semi joins whose conditions mix
// equalities with other predicates).
func NewHashJoin(name string, parallelism int, leftCols, rightCols []int, kind JoinKind, rightWidth int, residual func(l, r Tuple) (bool, error)) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		Memory:      true,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return runHashJoin(tc, in[0], in[1], out[0], leftCols, rightCols, kind, rightWidth, residual)
			})
		},
	}
}

func keysEqual(a Tuple, aCols []int, b Tuple, bCols []int) bool {
	for i := range aCols {
		av, bv := a[aCols[i]], b[bCols[i]]
		// SQL join semantics: null/missing never match.
		ak, bk := av.Kind(), bv.Kind()
		if ak <= adm.KindNull || bk <= adm.KindNull {
			return false
		}
		if adm.Compare(av, bv) != 0 {
			return false
		}
	}
	return true
}

func hasNullKey(t Tuple, cols []int) bool {
	for _, c := range cols {
		if t[c].Kind() <= adm.KindNull {
			return true
		}
	}
	return false
}

func runHashJoin(tc *TaskContext, left, right *Input, out *Output, leftCols, rightCols []int, kind JoinKind, rightWidth int, residual func(l, r Tuple) (bool, error)) error {
	matches := func(l, r Tuple) (bool, error) {
		if !keysEqual(l, leftCols, r, rightCols) {
			return false, nil
		}
		if residual == nil {
			return true, nil
		}
		return residual(l, r)
	}
	// Build phase: read the right side into memory, spilling to grace
	// partitions if the budget is exceeded.
	const graceFanout = 16
	var (
		table     = map[uint64][]Tuple{}
		tableSize = 0
		spilled   = false
		buildRuns [graceFanout]*RunWriter
	)
	spillBuild := func(t Tuple) error {
		p := HashColumns(t, rightCols) % graceFanout
		if buildRuns[p] == nil {
			rw, err := NewRunWriter(tc.TempDir())
			if err != nil {
				return err
			}
			buildRuns[p] = rw
			tc.Spill()
		}
		return buildRuns[p].Write(t)
	}
	err := right.ForEach(func(t Tuple) error {
		if spilled {
			return spillBuild(t)
		}
		h := HashColumns(t, rightCols)
		table[h] = append(table[h], t)
		tableSize += t.EstimateSize()
		for tableSize > tc.Mem.Granted() {
			if tc.Mem.Grow(mem.GrowChunk) {
				continue
			}
			// Degrade: move the in-memory table to spill partitions.
			spilled = true
			t0 := time.Now()
			for _, bucket := range table {
				for _, bt := range bucket {
					if err := spillBuild(bt); err != nil {
						return err
					}
				}
			}
			tc.AddWait(obs.WaitSpill, time.Since(t0))
			table = nil
			tableSize = 0
			tc.Mem.ShrinkToMin()
		}
		return nil
	})
	if err != nil {
		return err
	}

	emit := func(l, r Tuple) error {
		if kind == LeftSemiJoin {
			return out.Write(l)
		}
		combined := make(Tuple, 0, len(l)+len(r))
		combined = append(combined, l...)
		combined = append(combined, r...)
		return out.Write(combined)
	}
	emitOuter := func(l Tuple) error {
		combined := make(Tuple, 0, len(l)+rightWidth)
		combined = append(combined, l...)
		for i := 0; i < rightWidth; i++ {
			combined = append(combined, adm.Missing)
		}
		return out.Write(combined)
	}

	if !spilled {
		// In-memory probe.
		return left.ForEach(func(l Tuple) error {
			matched := false
			if !hasNullKey(l, leftCols) {
				h := HashColumns(l, leftCols)
				for _, r := range table[h] {
					ok, err := matches(l, r)
					if err != nil {
						return err
					}
					if ok {
						matched = true
						if kind == LeftSemiJoin {
							return out.Write(l)
						}
						if err := emit(l, r); err != nil {
							return err
						}
					}
				}
			}
			if !matched && kind == LeftOuterJoin {
				return emitOuter(l)
			}
			return nil
		})
	}

	// Grace: partition the probe side the same way.
	var probeRuns [graceFanout]*RunWriter
	err = left.ForEach(func(t Tuple) error {
		p := HashColumns(t, leftCols) % graceFanout
		if probeRuns[p] == nil {
			rw, err := NewRunWriter(tc.TempDir())
			if err != nil {
				return err
			}
			probeRuns[p] = rw
		}
		return probeRuns[p].Write(t)
	})
	if err != nil {
		return err
	}

	// Join each partition pair in memory.
	for p := 0; p < graceFanout; p++ {
		var part map[uint64][]Tuple
		if buildRuns[p] != nil {
			part = map[uint64][]Tuple{}
			tRead := time.Now()
			rr, err := buildRuns[p].Finish()
			if err != nil {
				return err
			}
			for {
				t, ok, err := rr.Next()
				if err != nil {
					rr.Close()
					return err
				}
				if !ok {
					break
				}
				part[HashColumns(t, rightCols)] = append(part[HashColumns(t, rightCols)], t)
			}
			rr.Close()
			tc.AddWait(obs.WaitSpill, time.Since(tRead))
		}
		if probeRuns[p] == nil {
			continue
		}
		// Probe-side read-back is spill I/O like the build side, but its
		// reads interleave with match emission, so attribute each read
		// individually instead of blanketing the whole loop.
		tFin := time.Now()
		rr, err := probeRuns[p].Finish()
		tc.AddWait(obs.WaitSpill, time.Since(tFin))
		if err != nil {
			return err
		}
		if kind != LeftSemiJoin {
			// Inner and outer probes copy the probe tuple into every
			// emitted row, so the read-back container is scratch and
			// recycles per iteration. Semi joins write the probe tuple
			// itself downstream — those must keep fresh tuples.
			rr.Tuples = tupleScratch
		}
		for {
			tNext := time.Now()
			l, ok, err := rr.Next()
			tc.AddWait(obs.WaitSpill, time.Since(tNext))
			if err != nil {
				rr.Close()
				return err
			}
			if !ok {
				break
			}
			matched := false
			if part != nil && !hasNullKey(l, leftCols) {
				h := HashColumns(l, leftCols)
				for _, r := range part[h] {
					ok, err := matches(l, r)
					if err != nil {
						tupleScratch.Put(l)
						rr.Close()
						return err
					}
					if ok {
						matched = true
						if kind == LeftSemiJoin {
							break
						}
						if err := emit(l, r); err != nil {
							tupleScratch.Put(l)
							rr.Close()
							return err
						}
					}
				}
			}
			if matched && kind == LeftSemiJoin {
				if err := out.Write(l); err != nil {
					rr.Close()
					return err
				}
			}
			if !matched && kind == LeftOuterJoin {
				if err := emitOuter(l); err != nil {
					tupleScratch.Put(l)
					rr.Close()
					return err
				}
			}
			if kind != LeftSemiJoin {
				tupleScratch.Put(l)
			}
		}
		rr.Close()
	}
	return nil
}

// NewNestedLoopJoin joins with an arbitrary predicate: port 0 left
// (streamed), port 1 right (materialized in memory). Used for non-equi
// join conditions; the optimizer prefers hash joins when it can. The
// materialized side has no spill path, so its footprint is accounted
// against the task grant best-effort: Grow denials are tolerated (the
// governor's grow-denied counter still records the overrun).
func NewNestedLoopJoin(name string, parallelism int, pred func(l, r Tuple) (bool, error), kind JoinKind, rightWidth int) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		Memory:      true,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				var build []Tuple
				buildSize := 0
				growOK := true
				if err := in[1].ForEach(func(t Tuple) error {
					build = append(build, t)
					buildSize += t.EstimateSize()
					for growOK && buildSize > tc.Mem.Granted() {
						growOK = tc.Mem.Grow(mem.GrowChunk)
					}
					return nil
				}); err != nil {
					return err
				}
				return in[0].ForEach(func(l Tuple) error {
					matched := false
					for _, r := range build {
						ok, err := pred(l, r)
						if err != nil {
							return err
						}
						if !ok {
							continue
						}
						matched = true
						if kind == LeftSemiJoin {
							break
						}
						combined := make(Tuple, 0, len(l)+len(r))
						combined = append(combined, l...)
						combined = append(combined, r...)
						if err := out[0].Write(combined); err != nil {
							return err
						}
					}
					if matched && kind == LeftSemiJoin {
						return out[0].Write(l)
					}
					if !matched && kind == LeftOuterJoin {
						combined := make(Tuple, 0, len(l)+rightWidth)
						combined = append(combined, l...)
						for i := 0; i < rightWidth; i++ {
							combined = append(combined, adm.Missing)
						}
						return out[0].Write(combined)
					}
					return nil
				})
			})
		},
	}
}
