package hyracks

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// NodeFailure is the error a job fails with when a node controller dies
// while one of its tasks is in flight. It is retriable: RunWithRetry
// re-executes the job on the surviving nodes.
type NodeFailure struct {
	Node string // node controller id
	Op   string // operator whose task observed the death
}

func (e *NodeFailure) Error() string {
	return fmt.Sprintf("node %s died running %s", e.Node, e.Op)
}

// RetryPolicy bounds RunWithRetry's re-execution of node-failed jobs with
// exponential backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions, including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 10ms); it
	// doubles per retry up to MaxBackoff (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each delay randomized on top of it, in
	// [0,1]. Zero means the default 0.2; negative disables jitter.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// RunReport describes one RunWithRetry execution.
type RunReport struct {
	// Attempts is how many times the job ran (>= 1 unless build failed).
	Attempts int
	// DeadNodes lists the nodes observed dead over the run.
	DeadNodes []string
	// PeakWorkingBytes is the largest working-memory high-water mark any
	// attempt reached (0 when no operator drew memory).
	PeakWorkingBytes int64
}

// RunWithRetry executes the job produced by build, re-building and
// re-running it on the surviving nodes when a node failure kills an
// attempt, with bounded exponential backoff plus jitter between attempts.
// build must return a fresh Job per call — sinks and collectors hold
// per-run state, so a Job value cannot be re-run. Non-node-failure errors
// are returned immediately.
func (c *Cluster) RunWithRetry(ctx context.Context, build func() (*Job, error), pol RetryPolicy) (RunReport, error) {
	pol = pol.withDefaults()
	var rep RunReport
	backoff := pol.BaseBackoff
	for {
		j, err := build()
		if err != nil {
			return rep, err
		}
		rep.Attempts++
		err = c.Run(ctx, j)
		if p := j.PeakWorkingBytes(); p > rep.PeakWorkingBytes {
			rep.PeakWorkingBytes = p
		}
		if err == nil {
			return rep, nil
		}
		var nf *NodeFailure
		if !errors.As(err, &nf) {
			return rep, err
		}
		rep.DeadNodes = mergeDead(rep.DeadNodes, c.DeadNodeIDs(), nf.Node)
		if rep.Attempts >= pol.MaxAttempts {
			return rep, fmt.Errorf("hyracks: job failed after %d attempts: %w", rep.Attempts, err)
		}
		if len(c.AliveNodes()) == 0 {
			return rep, fmt.Errorf("hyracks: no surviving nodes: %w", err)
		}
		atomic.AddInt64(&c.jobRetries, 1)
		d := backoff
		if pol.Jitter > 0 {
			d += time.Duration(rand.Int63n(int64(float64(backoff)*pol.Jitter) + 1))
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return rep, ctx.Err()
		}
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// mergeDead unions dead-node ids into have, preserving first-seen order.
func mergeDead(have, current []string, extra string) []string {
	seen := make(map[string]bool, len(have))
	for _, id := range have {
		seen[id] = true
	}
	for _, id := range append(current, extra) {
		if id != "" && !seen[id] {
			seen[id] = true
			have = append(have, id)
		}
	}
	return have
}
