package hyracks

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"asterix/internal/fault"
)

// NodeFailure is the error a job fails with when a node controller dies
// while one of its tasks is in flight. It is retriable: RunWithRetry
// re-executes the job on the surviving nodes.
type NodeFailure struct {
	Node string // node controller id
	Op   string // operator whose task observed the death
}

func (e *NodeFailure) Error() string {
	return fmt.Sprintf("node %s died running %s", e.Node, e.Op)
}

// LinkFailure is the error a job fails with when the network transport
// loses a frame stream mid-flight — a dropped connection, a torn frame,
// or a partition — without the remote peer being declared dead. Like
// NodeFailure it is retriable: the exchange protocol never acknowledges
// a frame it did not deliver, so re-running the attempt from scratch on
// a fresh stream is always safe.
type LinkFailure struct {
	Peer string // remote peer / node id the stream was bound for
	Op   string // operator whose task observed the break (may be empty)
	Err  error  // underlying transport error
}

func (e *LinkFailure) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("link to %s failed running %s: %v", e.Peer, e.Op, e.Err)
	}
	return fmt.Sprintf("link to %s failed: %v", e.Peer, e.Err)
}

func (e *LinkFailure) Unwrap() error { return e.Err }

// Retriable reports whether err is a failure class RunWithRetry would
// re-plan around (node death or a broken frame stream), and the dead
// node's id when the error names one. Servers use it to tell clients a
// resend may succeed.
func Retriable(err error) (deadNode string, ok bool) { return retriable(err) }

// retriable reports whether err is a failure class RunWithRetry should
// re-plan around (node death or a broken frame stream).
func retriable(err error) (deadNode string, ok bool) {
	var nf *NodeFailure
	if errors.As(err, &nf) {
		return nf.Node, true
	}
	var lf *LinkFailure
	if errors.As(err, &lf) {
		return "", true
	}
	return "", false
}

// RetryPolicy bounds RunWithRetry's re-execution of node-failed jobs with
// exponential backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions, including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 10ms); it
	// doubles per retry up to MaxBackoff (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each delay randomized on top of it, in
	// [0,1]. Zero means the default 0.2; negative disables jitter.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// RunReport describes one RunWithRetry execution.
type RunReport struct {
	// Attempts is how many times the job ran (>= 1 unless build failed).
	Attempts int
	// DeadNodes lists the nodes observed dead over the run.
	DeadNodes []string
	// PeakWorkingBytes is the largest working-memory high-water mark any
	// attempt reached (0 when no operator drew memory).
	PeakWorkingBytes int64
}

// RunWithRetry executes the job produced by build, re-building and
// re-running it on the surviving nodes when a node or link failure kills
// an attempt, with bounded exponential backoff plus jitter between
// attempts. Jitter is drawn from fault.Int63n, so a run armed with
// ASTERIX_FAULT_SEED has deterministic retry timing end-to-end.
// build must return a fresh Job per call — sinks and collectors hold
// per-run state, so a Job value cannot be re-run. Other errors are
// returned immediately.
func (c *Cluster) RunWithRetry(ctx context.Context, build func() (*Job, error), pol RetryPolicy) (RunReport, error) {
	pol = pol.withDefaults()
	var rep RunReport
	backoff := pol.BaseBackoff
	for {
		j, err := build()
		if err != nil {
			return rep, err
		}
		rep.Attempts++
		err = c.Run(ctx, j)
		if p := j.PeakWorkingBytes(); p > rep.PeakWorkingBytes {
			rep.PeakWorkingBytes = p
		}
		if err == nil {
			return rep, nil
		}
		deadNode, ok := retriable(err)
		if !ok {
			return rep, err
		}
		rep.DeadNodes = mergeDead(rep.DeadNodes, c.DeadNodeIDs(), deadNode)
		if rep.Attempts >= pol.MaxAttempts {
			return rep, fmt.Errorf("hyracks: job failed after %d attempts: %w", rep.Attempts, err)
		}
		if len(c.AliveNodes()) == 0 {
			return rep, fmt.Errorf("hyracks: no surviving nodes: %w", err)
		}
		atomic.AddInt64(&c.jobRetries, 1)
		d := backoff
		if pol.Jitter > 0 {
			d += time.Duration(fault.Int63n(int64(float64(backoff)*pol.Jitter) + 1))
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return rep, ctx.Err()
		}
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// mergeDead unions dead-node ids into have, preserving first-seen order.
func mergeDead(have, current []string, extra string) []string {
	seen := make(map[string]bool, len(have))
	for _, id := range have {
		seen[id] = true
	}
	for _, id := range append(current, extra) {
		if id != "" && !seen[id] {
			seen[id] = true
			have = append(have, id)
		}
	}
	return have
}
