package hyracks

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"asterix/internal/mem"
)

// NodeController is one simulated cluster node: it owns a spill directory
// and I/O counters. Operator partitions are assigned to nodes round-robin,
// standing in for the paper's shared-nothing node controllers (Figure 1).
type NodeController struct {
	ID      string
	TempDir string

	// Counters (atomic).
	TuplesIn  int64
	TuplesOut int64
	Spills    int64

	// Failure state: Kill closes killed so every in-flight task watcher
	// on this node wakes; dead mirrors it for cheap polling.
	killMu sync.Mutex
	killed chan struct{}
	dead   atomic.Bool
}

// Kill marks the node dead and wakes every in-flight task running on it.
// Idempotent.
func (n *NodeController) Kill() {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	if n.dead.Load() {
		return
	}
	if n.killed == nil {
		n.killed = make(chan struct{})
	}
	n.dead.Store(true)
	close(n.killed)
}

// Revive brings a killed node back for future jobs (it does not resurrect
// tasks that already failed).
func (n *NodeController) Revive() {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	if n.dead.Load() {
		n.killed = make(chan struct{})
		n.dead.Store(false)
	}
}

// Dead reports whether the node has been killed.
func (n *NodeController) Dead() bool { return n.dead.Load() }

// killedCh returns the channel closed by Kill (lazily created so
// directly-constructed test nodes behave).
func (n *NodeController) killedCh() <-chan struct{} {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	if n.killed == nil {
		n.killed = make(chan struct{})
	}
	return n.killed
}

func (n *NodeController) addIn(c int64)  { atomic.AddInt64(&n.TuplesIn, c) }
func (n *NodeController) addOut(c int64) { atomic.AddInt64(&n.TuplesOut, c) }

// AddSpill counts one run-file spill on this node.
func (n *NodeController) AddSpill() { atomic.AddInt64(&n.Spills, 1) }

// NodeStats is an atomic snapshot of one node's counters.
type NodeStats struct {
	TuplesIn  int64
	TuplesOut int64
	Spills    int64
}

// Stats snapshots the node's counters with atomic loads — the only
// race-safe way to read them while jobs run (plain field reads race with
// the executor's atomic adds).
func (n *NodeController) Stats() NodeStats {
	return NodeStats{
		TuplesIn:  atomic.LoadInt64(&n.TuplesIn),
		TuplesOut: atomic.LoadInt64(&n.TuplesOut),
		Spills:    atomic.LoadInt64(&n.Spills),
	}
}

// Cluster is a simulated Hyracks cluster: a cluster controller's worth of
// coordination over N node controllers, all in one process.
type Cluster struct {
	Nodes []*NodeController
	// FrameSize is the tuple-batch size moved through connectors.
	FrameSize int
	// MemBudget is the legacy working-memory knob: when no governor is
	// installed before the first Run, it sizes the working pool of the
	// default governor (tests set it directly; the engine installs Gov).
	MemBudget int
	// Gov arbitrates working memory across concurrent jobs. Set it
	// before the first Run; left nil, a governor with MemBudget of
	// working memory is created lazily.
	Gov *mem.Governor

	// Pool recycles exchange frame containers across the cluster's jobs
	// (connWriter batches, merge-input output frames). Left nil it is
	// built lazily on first Run, sized by FrameSize and charged to the
	// governor's metrics; set DisableFramePool to keep the legacy
	// allocate-per-frame behavior (the pooled/unpooled equivalence corpus
	// and the E17 baseline run that way).
	Pool             *FramePool
	DisableFramePool bool

	govOnce  sync.Once
	poolOnce sync.Once

	// Job lifecycle counters (atomic).
	jobAttempts  int64
	jobRetries   int64
	nodeFailures int64
	linkFailures int64
}

// governor resolves the cluster's memory governor, building the default
// one from the legacy MemBudget knob on first use.
func (c *Cluster) governor() *mem.Governor {
	c.govOnce.Do(func() {
		if c.Gov == nil {
			//lint:ignore mem-grant folding the legacy MemBudget knob into the governor default is the one sanctioned read
			c.Gov = mem.NewGovernor(mem.Config{WorkingBytes: int64(c.MemBudget)})
		}
	})
	return c.Gov
}

// FramePool resolves the cluster's frame pool for external sharers —
// the anet peer's receive-side decode takes its frame containers from
// the same pool the executor recycles into, so remote frames round-trip
// through one freelist. Returns nil when DisableFramePool is set (every
// pool operation is nil-safe and degrades to plain allocation).
func (c *Cluster) FramePool() *FramePool { return c.framePool() }

// framePool resolves the cluster's frame pool, building the default one
// on first use (nil while DisableFramePool — every pool operation is
// nil-safe and degrades to plain allocation).
func (c *Cluster) framePool() *FramePool {
	if c.DisableFramePool {
		return nil
	}
	c.poolOnce.Do(func() {
		if c.Pool == nil {
			c.Pool = NewFramePool(c.FrameSize, 256, c.governor().PoolCharge("frame"))
		}
	})
	return c.Pool
}

// RetryStats is an atomic snapshot of the cluster's job retry counters.
type RetryStats struct {
	// Attempts counts job executions, including retries.
	Attempts int64
	// Retries counts re-executions after a node failure.
	Retries int64
	// NodeFailures counts jobs that failed because a node died.
	NodeFailures int64
	// LinkFailures counts jobs that failed because a network frame
	// stream broke (connection reset, partition) without a node dying.
	LinkFailures int64
}

// RetryStats snapshots the retry counters.
func (c *Cluster) RetryStats() RetryStats {
	return RetryStats{
		Attempts:     atomic.LoadInt64(&c.jobAttempts),
		Retries:      atomic.LoadInt64(&c.jobRetries),
		NodeFailures: atomic.LoadInt64(&c.nodeFailures),
		LinkFailures: atomic.LoadInt64(&c.linkFailures),
	}
}

// AliveNodes returns the nodes not currently killed, in id order.
func (c *Cluster) AliveNodes() []*NodeController {
	out := make([]*NodeController, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if !n.Dead() {
			out = append(out, n)
		}
	}
	return out
}

// DeadNodeIDs returns the ids of killed nodes.
func (c *Cluster) DeadNodeIDs() []string {
	var out []string
	for _, n := range c.Nodes {
		if n.Dead() {
			out = append(out, n.ID)
		}
	}
	return out
}

// NewCluster creates an n-node cluster with spill directories under
// baseDir.
func NewCluster(n int, baseDir string) (*Cluster, error) {
	if n < 1 {
		n = 1
	}
	c := &Cluster{FrameSize: 256, MemBudget: 32 << 20}
	for i := 0; i < n; i++ {
		dir := filepath.Join(baseDir, fmt.Sprintf("nc%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("hyracks: node temp dir: %w", err)
		}
		c.Nodes = append(c.Nodes, &NodeController{
			ID: fmt.Sprintf("nc%d", i), TempDir: dir,
			killed: make(chan struct{}),
		})
	}
	return c, nil
}

// NewNamedCluster creates a cluster whose node controllers carry the
// given ids — one per member of a multi-process cluster, local and
// remote alike. Each process holds a controller for EVERY member: the
// local one runs tasks, the remote ones exist so heartbeat failure
// detection can Kill them and the executor's remote-node watchers fire,
// exactly as an in-process Kill does.
func NewNamedCluster(ids []string, baseDir string) (*Cluster, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("hyracks: named cluster needs at least one node id")
	}
	c := &Cluster{FrameSize: 256, MemBudget: 32 << 20}
	for _, id := range ids {
		dir := filepath.Join(baseDir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("hyracks: node temp dir: %w", err)
		}
		c.Nodes = append(c.Nodes, &NodeController{
			ID: id, TempDir: dir,
			killed: make(chan struct{}),
		})
	}
	return c, nil
}

// NodeFor maps an operator partition to its node.
func (c *Cluster) NodeFor(partition int) *NodeController {
	return c.Nodes[partition%len(c.Nodes)]
}

// NodeByID returns the controller with the id, or nil.
func (c *Cluster) NodeByID(id string) *NodeController {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// TotalStats sums counter snapshots across all nodes.
func (c *Cluster) TotalStats() NodeStats {
	var t NodeStats
	for _, n := range c.Nodes {
		s := n.Stats()
		t.TuplesIn += s.TuplesIn
		t.TuplesOut += s.TuplesOut
		t.Spills += s.Spills
	}
	return t
}

// ResetStats zeroes all node counters. Safe to call concurrently with
// running jobs: every counter access is atomic, so a concurrent reset
// simply loses the in-flight job's updates made before the reset (the
// counters stay consistent, never torn).
func (c *Cluster) ResetStats() {
	for _, n := range c.Nodes {
		atomic.StoreInt64(&n.TuplesIn, 0)
		atomic.StoreInt64(&n.TuplesOut, 0)
		atomic.StoreInt64(&n.Spills, 0)
	}
}
