package hyracks

import (
	"context"
	"fmt"
)

// Transport moves frames between the processes of a multi-process
// cluster. The executor routes every connector channel through exactly
// one of two paths: channels whose consumer task runs in this process
// stay on the in-process channel fabric (LocalTransport — the original
// single-process path), and channels whose consumer lives elsewhere are
// handed to the transport, which owns serialization, backpressure, and
// reconnection. The TCP implementation lives in internal/net.
//
// Contract, per job attempt:
//   - OpenEdge is called once per edge before any task starts (the
//     READY/START barrier in Placement guarantees every process has
//     registered its receive queues before the first frame is sent).
//   - For locally-consumed channels the executor passes a receive
//     channel in desc.Recv; the transport must deliver remote frames
//     into it, honoring ctx (a send that can no longer complete because
//     the attempt was cancelled must be dropped, not block forever).
//   - Each remote producer partition signals end-of-stream once per
//     edge; the transport surfaces that by calling desc.EOS once per
//     remote producer, after every frame that producer sent on this
//     edge has been delivered into its receive channel.
//   - CloseJob drops all registrations for the attempt. Frames arriving
//     for an unregistered (stale) attempt are discarded — that is what
//     makes RunWithRetry safe over the network: a retried attempt runs
//     under a fresh attempt-scoped job id and never sees frames from
//     the attempt it replaced.
//   - Send must not retain the frame after it returns: the frame is
//     fully serialized (or the send abandoned) by then, so the caller
//     recycles the container into the cluster's frame pool. Frames the
//     transport delivers INTO desc.Recv transfer ownership to the
//     consumer, which recycles them after its tuple pass.
type Transport interface {
	// OpenEdge registers one edge of a job attempt and returns the
	// handle producers use to reach the edge's remote channels.
	OpenEdge(ctx context.Context, desc EdgeDesc) (EdgeHandle, error)
	// CloseJob drops every registration made for the attempt.
	CloseJob(jobID string)
}

// EdgeDesc describes one connector edge's channel topology to the
// transport.
type EdgeDesc struct {
	// JobID is the attempt-scoped job id ("q17#2"): unique per
	// RunWithRetry attempt, so stale frames from a dead attempt can
	// never be mistaken for live ones.
	JobID string
	// Edge is the edge's index within the job, identical on every
	// process (all processes build the job from the same spec).
	Edge int
	// Owners names the node that consumes each channel; "" means this
	// process. Non-merge connectors have one channel per consumer
	// partition; merge connectors concentrate onto partition 0's node.
	Owners []string
	// Recv holds, for each locally-owned channel, the queue remote
	// frames are delivered into (nil for remote-owned channels).
	Recv []chan []Tuple
	// Producers is the edge's total producer partition count, local and
	// remote combined.
	Producers int
	// Senders is the number of DISTINCT remote processes producing into
	// this edge (0 = unknown; the transport must then assume up to
	// Producers distinct processes). Each sending process holds its own
	// credit window per channel, so this bounds how many windows can be
	// in flight toward one locally-owned channel — which is what sizes
	// the receive queues.
	Senders int
	// EOS is invoked once per remote producer partition that finishes
	// the edge, after all of that producer's frames were delivered.
	EOS func()
	// Fail, when non-nil, aborts the attempt with a (retriable) error —
	// the transport's escape hatch for protocol violations it cannot
	// attribute to any one local task (e.g. a peer overrunning its
	// credit window).
	Fail func(error)
}

// EdgeHandle is the producer-side face of one registered edge.
type EdgeHandle interface {
	// Send delivers a frame to a remote-owned channel, blocking under
	// credit backpressure until the consumer has window for it. It
	// returns a *LinkFailure when the stream breaks (connection reset,
	// partition, peer decline) — retriable via RunWithRetry.
	Send(ctx context.Context, ch int, frame []Tuple) error
	// ProducerDone signals that one local producer partition finished
	// this edge; the transport forwards end-of-stream to every remote
	// node owning channels of the edge.
	ProducerDone() error
}

// Placement makes a job run span processes: it tells the executor which
// (operator, partition) tasks belong to this process, and wires the
// cross-process fabric plus the start barrier. A nil Placement on a Job
// is the single-process mode that existed before the transport: every
// task local, every channel in-process.
type Placement struct {
	// JobID is the attempt-scoped id shared by every process running
	// this attempt.
	JobID string
	// Node is this process's node id (must match a cluster node).
	Node string
	// Assign maps (operator name, partition) to the node id that runs
	// it. Every process must compute the identical assignment.
	Assign func(op string, part int) string
	// Transport carries frames between processes.
	Transport Transport
	// Ready, when non-nil, is called after this process has registered
	// all of its receive queues but before any task starts — the hook
	// the control plane uses to report READY to the driver.
	Ready func()
	// Start, when non-nil, gates task launch: the executor waits for it
	// to close (the driver's START broadcast) after Ready. Without the
	// barrier a fast producer could emit frames at a process that has
	// not registered the attempt yet, and they would be dropped as
	// stale.
	Start <-chan struct{}
	// Abort, when non-nil, lets the control plane fail the run from
	// outside — e.g. a worker reporting a typed NodeFailure or
	// LinkFailure for a task this process never saw.
	Abort <-chan error
}

// localNode resolves the placement's node controller on c.
func (p *Placement) localNode(c *Cluster) (*NodeController, error) {
	for _, n := range c.Nodes {
		if n.ID == p.Node {
			return n, nil
		}
	}
	return nil, fmt.Errorf("hyracks: placement node %q is not in the cluster", p.Node)
}

// LocalTransport is the in-process implementation: every channel is
// owned locally, so there is never a remote send and never a remote
// EOS. It is what a nil-placement run uses implicitly, kept as a named
// type so single-process and multi-process runs share one executor
// path.
type LocalTransport struct{}

type localEdge struct{}

// OpenEdge implements Transport; it rejects remote owners, which cannot
// occur without a real transport.
func (LocalTransport) OpenEdge(_ context.Context, desc EdgeDesc) (EdgeHandle, error) {
	for ch, owner := range desc.Owners {
		if owner != "" {
			return nil, fmt.Errorf("hyracks: local transport cannot reach %s (edge %d ch %d)", owner, desc.Edge, ch)
		}
	}
	return localEdge{}, nil
}

// CloseJob implements Transport.
func (LocalTransport) CloseJob(string) {}

func (localEdge) Send(context.Context, int, []Tuple) error {
	return fmt.Errorf("hyracks: local transport has no remote channels")
}

func (localEdge) ProducerDone() error { return nil }
