package hyracks

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/mem"
)

func TestFramePoolReuseAndBounds(t *testing.T) {
	charge := &mem.PoolCharge{}
	p := NewFramePool(8, 2, charge)

	f := p.Get()
	if cap(f) != 8 || len(f) != 0 {
		t.Fatalf("fresh frame cap=%d len=%d, want 8/0", cap(f), len(f))
	}
	f = append(f, Tuple{adm.Int64(1)})
	p.Put(f)
	if got := charge.Held(); got != 8*24 {
		t.Fatalf("retained charge %d, want %d", got, 8*24)
	}
	g := p.Get()
	if cap(g) != 8 || len(g) != 0 {
		t.Fatalf("recycled frame cap=%d len=%d, want 8/0", cap(g), len(g))
	}
	// The recycled container's old tuple headers must be cleared so the
	// freelist never pins dead tuples.
	if gg := g[:1]; gg[0] != nil {
		t.Fatal("recycled frame still holds the old tuple header")
	}
	if got := charge.Held(); got != 0 {
		t.Fatalf("charge after Get %d, want 0", got)
	}
	st := p.Stats()
	if st.Gets != 2 || st.Reuses != 1 || st.Puts != 1 || st.Drops != 0 {
		t.Fatalf("stats %+v, want gets=2 reuses=1 puts=1 drops=0", st)
	}

	// Undersized containers (below frameSize/2) are dropped, not kept.
	small := make([]Tuple, 0, 2)
	p.Put(small)
	if st := p.Stats(); st.Drops != 1 {
		t.Fatalf("undersized Put not dropped: %+v", st)
	}

	// The freelist is bounded at maxEntries; overflow drops.
	p.Put(g)
	p.Put(make([]Tuple, 0, 8))
	p.Put(make([]Tuple, 0, 8))
	if st := p.Stats(); st.Drops != 2 {
		t.Fatalf("freelist bound not enforced: %+v", st)
	}
}

func TestTuplePoolClearsValues(t *testing.T) {
	p := NewTuplePool(4, &mem.PoolCharge{})
	tp := p.Get()
	tp = append(tp, adm.Int64(7), adm.String("x"))
	p.Put(tp)
	got := p.Get()
	if len(got) != 0 {
		t.Fatalf("recycled tuple len=%d, want 0", len(got))
	}
	if cap(got) < 2 {
		t.Fatalf("recycled tuple cap=%d, want the old container back", cap(got))
	}
	if gg := got[:2]; gg[0] != nil || gg[1] != nil {
		t.Fatal("recycled tuple still pins the old values")
	}
}

func TestNilPoolsAreSafe(t *testing.T) {
	var fp *FramePool
	var tp *TuplePool
	var bp *BytePool
	if f := fp.Get(); f != nil {
		t.Fatal("nil FramePool.Get must return nil")
	}
	fp.Put(nil)
	if tup := tp.Get(); tup != nil {
		t.Fatal("nil TuplePool.Get must return nil")
	}
	tp.Put(nil)
	if b := bp.Get(); b != nil {
		t.Fatal("nil BytePool.Get must return nil")
	}
	bp.Put(nil)
	if st := fp.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats %+v, want zero", st)
	}
}

// exchangeJob builds the pooled hot path end to end: parallel scans hash-
// partitioned into a verifying sink, plus a sorted branch merged ordered
// (the merging input draws its output frames from the pool).
func exchangeJob(rows, parallelism int, coll *Collector, ordered *Collector) *Job {
	j := NewJob()
	scan := j.Add(NewScan("scan", parallelism, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := tc.Partition; i < rows; i += tc.NumPartitions {
			if err := emit(Tuple{adm.Int64(i), adm.Int64(i * 10)}); err != nil {
				return err
			}
		}
		return nil
	}))
	filter := j.Add(NewFilter("filter", parallelism, func(tp Tuple) (bool, error) { return true, nil }))
	sink := j.Add(NewSink("sink", parallelism, coll))
	j.MustConnect(scan, filter, 0, HashPartition(0))
	j.MustConnect(filter, sink, 0, OneToOne())

	scan2 := j.Add(NewScan("scan2", parallelism, func(tc *TaskContext, emit func(Tuple) error) error {
		r := rand.New(rand.NewSource(int64(tc.Partition)))
		for i := 0; i < rows/parallelism; i++ {
			if err := emit(Tuple{adm.Int64(r.Intn(1 << 16))}); err != nil {
				return err
			}
		}
		return nil
	}))
	cmp := Comparator{Columns: []int{0}}
	sortOp := j.Add(NewSort("sort", parallelism, cmp))
	osink := j.Add(NewOrderedSink("osink", ordered))
	j.MustConnect(scan2, sortOp, 0, OneToOne())
	j.MustConnect(sortOp, osink, 0, MergeOrdered(cmp))
	return j
}

// verifyExchange checks exact row counts and tuple integrity: every id
// exactly once, every payload still paired with its id. Aliasing
// corruption from a prematurely recycled frame shows up here as a
// missing, duplicated, or cross-wired row.
func verifyExchange(t *testing.T, coll *Collector, ordered *Collector, rows, parallelism int) {
	t.Helper()
	ts := coll.Tuples()
	if len(ts) != rows {
		t.Fatalf("got %d rows, want %d", len(ts), rows)
	}
	seen := make([]bool, rows)
	for _, tp := range ts {
		id, _ := adm.AsInt(tp[0])
		v, _ := adm.AsInt(tp[1])
		if v != id*10 {
			t.Fatalf("row %d carries payload %d, want %d (aliasing corruption)", id, v, id*10)
		}
		if seen[id] {
			t.Fatalf("row %d delivered twice", id)
		}
		seen[id] = true
	}
	os := ordered.Tuples()
	if len(os) != (rows/parallelism)*parallelism {
		t.Fatalf("ordered branch got %d rows, want %d", len(os), (rows/parallelism)*parallelism)
	}
	for i := 1; i < len(os); i++ {
		if adm.Compare(os[i-1][0], os[i][0]) > 0 {
			t.Fatalf("merge order violated at %d", i)
		}
	}
}

// TestPooledExchangeSoak runs the pooled exchange concurrently and
// repeatedly (several jobs in flight over one shared frame pool) and
// requires exact results every round, plus evidence that the pool
// actually recycled containers.
func TestPooledExchangeSoak(t *testing.T) {
	c := newCluster(t, 2)
	const rows, parallelism, rounds, lanes = 4000, 4, 3, 3
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, lanes)
		colls := make([]*Collector, lanes)
		ords := make([]*Collector, lanes)
		for lane := 0; lane < lanes; lane++ {
			lane := lane
			colls[lane] = &Collector{}
			ords[lane] = &Collector{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[lane] = c.Run(context.Background(), exchangeJob(rows, parallelism, colls[lane], ords[lane]))
			}()
		}
		wg.Wait()
		for lane := 0; lane < lanes; lane++ {
			if errs[lane] != nil {
				t.Fatalf("round %d lane %d: %v", round, lane, errs[lane])
			}
			verifyExchange(t, colls[lane], ords[lane], rows, parallelism)
		}
	}
	st := c.FramePool().Stats()
	if st.Reuses == 0 {
		t.Fatalf("frame pool never recycled a container: %+v", st)
	}
	if st.Gets < st.Reuses {
		t.Fatalf("inconsistent pool stats: %+v", st)
	}
}

// TestPooledUnpooledEquivalence runs identical jobs on a pooled and an
// unpooled cluster and requires byte-identical result multisets — frame
// recycling must be invisible to query answers.
func TestPooledUnpooledEquivalence(t *testing.T) {
	render := func(coll *Collector) []string {
		var out []string
		for _, tp := range coll.Tuples() {
			s := ""
			for i, v := range tp {
				if i > 0 {
					s += "|"
				}
				s += fmt.Sprint(v)
			}
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	run := func(disable bool) ([]string, []string) {
		c := newCluster(t, 2)
		c.DisableFramePool = disable
		coll, ordered := &Collector{}, &Collector{}
		if err := c.Run(context.Background(), exchangeJob(3000, 4, coll, ordered)); err != nil {
			t.Fatal(err)
		}
		var ord []string
		for _, tp := range ordered.Tuples() {
			ord = append(ord, fmt.Sprint(tp[0]))
		}
		return render(coll), ord
	}
	gotP, ordP := run(false)
	gotU, ordU := run(true)
	if len(gotP) != len(gotU) {
		t.Fatalf("pooled %d rows vs unpooled %d", len(gotP), len(gotU))
	}
	for i := range gotP {
		if gotP[i] != gotU[i] {
			t.Fatalf("row %d differs: pooled %q vs unpooled %q", i, gotP[i], gotU[i])
		}
	}
	// The ordered branch is deterministic (seeded scans): exact match.
	if len(ordP) != len(ordU) {
		t.Fatalf("ordered branch %d vs %d rows", len(ordP), len(ordU))
	}
	for i := range ordP {
		if ordP[i] != ordU[i] {
			t.Fatalf("ordered row %d differs: %q vs %q", i, ordP[i], ordU[i])
		}
	}
}
