package hyracks

import (
	"fmt"
	"time"

	"asterix/internal/adm"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// AggSpec is a mergeable aggregate function over tuples. Partial states
// are ADM values so overflowing group tables can spill partial aggregates
// to run files and re-merge them later (hybrid hash aggregation).
type AggSpec struct {
	Name string
	// Init returns the initial partial state.
	Init func() adm.Value
	// Step folds one input tuple into the state.
	Step func(state adm.Value, t Tuple) adm.Value
	// Merge combines two partial states.
	Merge func(a, b adm.Value) adm.Value
	// Finish converts the state to the final value.
	Finish func(state adm.Value) adm.Value
}

// NewGroupBy builds a memory-governed hash aggregation. Input is grouped
// on groupCols; output tuples are the group columns followed by one value
// per aggregate. An upstream hash-partition connector on the group columns
// makes the aggregation partition-parallel.
func NewGroupBy(name string, parallelism int, groupCols []int, aggs []AggSpec) *Operator {
	return &Operator{
		Name:        name,
		Parallelism: parallelism,
		Memory:      true,
		New: func(int) Runner {
			return RunnerFunc(func(tc *TaskContext, in []*Input, out []*Output) error {
				return runGroupBy(tc, in[0], out[0], groupCols, aggs)
			})
		},
	}
}

type group struct {
	key    Tuple // group column values
	states []adm.Value
}

// groupTable is the hash table of a hash aggregation. Its probe path
// runs once per input tuple, so it works out of preallocated scratch —
// an identity column list for hashing extracted keys and a reusable key
// buffer — and is a registered hot-alloc root: probing must never
// allocate. (The old shape rebuilt both per tuple: a fresh key Tuple
// and a fresh []int for HashColumns on every probe.)
type groupTable struct {
	groupCols []int
	idCols    []int // 0..len(groupCols)-1: the extracted key's own columns
	buckets   map[uint64][]*group
	scratch   Tuple
}

func newGroupTable(groupCols []int) *groupTable {
	idCols := make([]int, len(groupCols))
	for i := range idCols {
		idCols[i] = i
	}
	return &groupTable{
		groupCols: groupCols,
		idCols:    idCols,
		buckets:   map[uint64][]*group{},
		scratch:   make(Tuple, len(groupCols)),
	}
}

// key extracts t's group columns into the scratch buffer; the result is
// valid only until the next key or probe call, and must be Cloned to be
// retained.
func (gt *groupTable) key(t Tuple) Tuple {
	for i, c := range gt.groupCols {
		gt.scratch[i] = t[c]
	}
	return gt.scratch
}

func (gt *groupTable) hash(k Tuple) uint64 { return HashColumns(k, gt.idCols) }

// probe finds the group holding t's key. The group is nil for an unseen
// key; the returned hash addresses the bucket an insert must go to.
func (gt *groupTable) probe(t Tuple) (*group, uint64) {
	k := gt.key(t)
	h := gt.hash(k)
	for _, cand := range gt.buckets[h] {
		if groupKeyEq(cand.key, k) {
			return cand, h
		}
	}
	return nil, h
}

// insert adds a group for t's key under bucket h. The scratch key is
// cloned here — the one allocation of the insert path, paid per distinct
// group rather than per tuple.
func (gt *groupTable) insert(h uint64, t Tuple, states []adm.Value) *group {
	g := &group{key: gt.key(t).Clone(), states: states}
	gt.buckets[h] = append(gt.buckets[h], g)
	return g
}

func (gt *groupTable) reset() { gt.buckets = map[uint64][]*group{} }

func groupKeyEq(a, b Tuple) bool {
	for i := range a {
		if adm.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func runGroupBy(tc *TaskContext, in *Input, out *Output, groupCols []int, aggs []AggSpec) error {
	const spillFanout = 8
	var (
		gt      = newGroupTable(groupCols)
		size    = 0
		spills  [spillFanout]*RunWriter
		spilled = false
	)
	// spillGroup writes a group's partial state as key ++ states. The
	// record container is scratch: Write encodes it before returning, so
	// it recycles immediately.
	spillGroup := func(g *group) error {
		p := gt.hash(g.key) % spillFanout
		if spills[p] == nil {
			rw, err := NewRunWriter(tc.TempDir())
			if err != nil {
				return err
			}
			spills[p] = rw
			tc.Spill()
		}
		rec := tupleScratch.Get()
		rec = append(rec, g.key...)
		rec = append(rec, g.states...)
		err := spills[p].Write(rec)
		tupleScratch.Put(rec)
		return err
	}

	step := func(g *group, t Tuple) {
		for i, a := range aggs {
			g.states[i] = a.Step(g.states[i], t)
		}
	}

	err := in.ForEach(func(t Tuple) error {
		g, h := gt.probe(t)
		if g == nil {
			// The key is cloned by insert, so its *adm.Object columns are
			// shared with the source tuple: account them shallowly.
			states := make([]adm.Value, len(aggs))
			for i, a := range aggs {
				states[i] = a.Init()
			}
			g = gt.insert(h, t, states)
			size += g.key.EstimateSizeShallow() + 64
		}
		step(g, t)
		for size > tc.Mem.Granted() {
			if tc.Mem.Grow(mem.GrowChunk) {
				continue
			}
			// Spill the whole table as partial aggregates and start over.
			spilled = true
			t0 := time.Now()
			for _, bucket := range gt.buckets {
				for _, g := range bucket {
					if err := spillGroup(g); err != nil {
						return err
					}
				}
			}
			tc.AddWait(obs.WaitSpill, time.Since(t0))
			gt.reset()
			size = 0
			tc.Mem.ShrinkToMin()
		}
		return nil
	})
	if err != nil {
		return err
	}

	emit := func(g *group) error {
		rec := make(Tuple, 0, len(g.key)+len(aggs))
		rec = append(rec, g.key...)
		for i, a := range aggs {
			rec = append(rec, a.Finish(g.states[i]))
		}
		return out.Write(rec)
	}

	if !spilled {
		for _, bucket := range gt.buckets {
			for _, g := range bucket {
				if err := emit(g); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Flush the residual table, then merge partials partition by
	// partition. Run-file writes and read-back both count as spill I/O.
	tSpill := time.Now()
	for _, bucket := range gt.buckets {
		for _, g := range bucket {
			if err := spillGroup(g); err != nil {
				return err
			}
		}
	}
	tc.AddWait(obs.WaitSpill, time.Since(tSpill))
	for p := 0; p < spillFanout; p++ {
		if spills[p] == nil {
			continue
		}
		tRead := time.Now()
		rr, err := spills[p].Finish()
		if err != nil {
			return err
		}
		// Spilled records carry the key already extracted up front, so the
		// merge table's group columns are the identity list. Read-back
		// records are pooled scratch: probe clones the key and the states
		// are copied (or their VALUES retained, which recycling permits),
		// so each record recycles at the end of its iteration.
		rr.Tuples = tupleScratch
		mt := newGroupTable(gt.idCols)
		for {
			rec, ok, err := rr.Next()
			if err != nil {
				rr.Close()
				return err
			}
			if !ok {
				break
			}
			if len(rec) != len(groupCols)+len(aggs) {
				tupleScratch.Put(rec)
				rr.Close()
				return fmt.Errorf("groupby: corrupt partial record")
			}
			k := rec[:len(groupCols)]
			states := rec[len(groupCols):]
			g, h := mt.probe(k)
			if g == nil {
				mt.insert(h, k, append([]adm.Value(nil), states...))
				tupleScratch.Put(rec)
				continue
			}
			for i, a := range aggs {
				g.states[i] = a.Merge(g.states[i], states[i])
			}
			tupleScratch.Put(rec)
		}
		rr.Close()
		tc.AddWait(obs.WaitSpill, time.Since(tRead))
		for _, bucket := range mt.buckets {
			for _, g := range bucket {
				if err := emit(g); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// --- Standard aggregate specs. ---

// CountAgg counts tuples (COUNT(*)) or non-null/missing values of a
// column (COUNT(col), col >= 0).
func CountAgg(col int) AggSpec {
	return AggSpec{
		Name: "count",
		Init: func() adm.Value { return adm.Int64(0) },
		Step: func(s adm.Value, t Tuple) adm.Value {
			if col >= 0 && t[col].Kind() <= adm.KindNull {
				return s
			}
			return s.(adm.Int64) + 1
		},
		Merge:  func(a, b adm.Value) adm.Value { return a.(adm.Int64) + b.(adm.Int64) },
		Finish: func(s adm.Value) adm.Value { return s },
	}
}

// SumAgg sums a numeric column (null result when no numeric input seen).
func SumAgg(col int) AggSpec {
	return AggSpec{
		Name: "sum",
		Init: func() adm.Value { return adm.Null },
		Step: func(s adm.Value, t Tuple) adm.Value {
			return numericAdd(s, t[col])
		},
		Merge:  numericAdd,
		Finish: func(s adm.Value) adm.Value { return s },
	}
}

func numericAdd(a, b adm.Value) adm.Value {
	if b.Kind() <= adm.KindNull {
		return a
	}
	if a.Kind() <= adm.KindNull {
		return b
	}
	if ai, ok := a.(adm.Int64); ok {
		if bi, ok := b.(adm.Int64); ok {
			return ai + bi
		}
	}
	af, _ := adm.AsFloat(a)
	bf, _ := adm.AsFloat(b)
	return adm.Double(af + bf)
}

// MinAgg / MaxAgg track extremes of a column.
func MinAgg(col int) AggSpec { return extremeAgg("min", col, -1) }

// MaxAgg tracks the maximum of a column.
func MaxAgg(col int) AggSpec { return extremeAgg("max", col, 1) }

func extremeAgg(name string, col int, sign int) AggSpec {
	pick := func(a, b adm.Value) adm.Value {
		if b.Kind() <= adm.KindNull {
			return a
		}
		if a.Kind() <= adm.KindNull {
			return b
		}
		if adm.Compare(b, a)*sign > 0 {
			return b
		}
		return a
	}
	return AggSpec{
		Name:   name,
		Init:   func() adm.Value { return adm.Null },
		Step:   func(s adm.Value, t Tuple) adm.Value { return pick(s, t[col]) },
		Merge:  pick,
		Finish: func(s adm.Value) adm.Value { return s },
	}
}

// AvgAgg averages a numeric column; its partial state is [sum, count].
func AvgAgg(col int) AggSpec {
	return AggSpec{
		Name: "avg",
		Init: func() adm.Value { return adm.Array{adm.Null, adm.Int64(0)} },
		Step: func(s adm.Value, t Tuple) adm.Value {
			st := s.(adm.Array)
			v := t[col]
			if v.Kind() <= adm.KindNull {
				return st
			}
			return adm.Array{numericAdd(st[0], v), st[1].(adm.Int64) + 1}
		},
		Merge: func(a, b adm.Value) adm.Value {
			as, bs := a.(adm.Array), b.(adm.Array)
			return adm.Array{numericAdd(as[0], bs[0]), as[1].(adm.Int64) + bs[1].(adm.Int64)}
		},
		Finish: func(s adm.Value) adm.Value {
			st := s.(adm.Array)
			n := int64(st[1].(adm.Int64))
			if n == 0 || st[0].Kind() <= adm.KindNull {
				return adm.Null
			}
			f, _ := adm.AsFloat(st[0])
			return adm.Double(f / float64(n))
		},
	}
}

// CollectAgg gathers a column's values into an array (ARRAY_AGG / the
// nested results of GROUP AS).
func CollectAgg(col int) AggSpec {
	return AggSpec{
		Name: "collect",
		Init: func() adm.Value { return adm.Array{} },
		Step: func(s adm.Value, t Tuple) adm.Value {
			return append(s.(adm.Array), t[col])
		},
		Merge: func(a, b adm.Value) adm.Value {
			return append(append(adm.Array{}, a.(adm.Array)...), b.(adm.Array)...)
		},
		Finish: func(s adm.Value) adm.Value { return s },
	}
}

// NewDistinct removes duplicate tuples (a group-by on all columns with no
// aggregates).
func NewDistinct(name string, parallelism int, width int) *Operator {
	cols := make([]int, width)
	for i := range cols {
		cols[i] = i
	}
	return NewGroupBy(name, parallelism, cols, nil)
}
