package hyracks

import (
	"fmt"
	"runtime"
	"testing"

	"asterix/internal/adm"
)

// measureAlloc returns the heap bytes retained by n invocations of build
// (keeping every result live), averaged per invocation.
func measureAlloc(n int, build func(i int) Tuple) int {
	keep := make([]Tuple, n)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range keep {
		keep[i] = build(i)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	per := int(after.HeapAlloc-before.HeapAlloc) / n
	runtime.KeepAlive(keep)
	return per
}

func sampleTuple(i int) Tuple {
	obj := adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(int64(i))},
		adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("user-%06d", i))},
		adm.Field{Name: "tags", Value: adm.Array{adm.String("a"), adm.String("b")}},
	)
	return Tuple{adm.Int64(int64(i)), adm.String(fmt.Sprintf("key-%06d", i)), obj}
}

// TestEstimateSizeTracksFootprint pins EstimateSize against the measured
// heap footprint of representative tuples: the estimate must stay within
// 2x of reality in both directions, so spill decisions track actual
// memory pressure.
func TestEstimateSizeTracksFootprint(t *testing.T) {
	const n = 4096
	measured := measureAlloc(n, sampleTuple)
	est := sampleTuple(0).EstimateSize()
	if est*2 < measured {
		t.Fatalf("EstimateSize %d under-counts: measured footprint %d (> 2x estimate)", est, measured)
	}
	if est > measured*2 {
		t.Fatalf("EstimateSize %d over-counts: measured footprint %d (< estimate/2)", est, measured)
	}
}

// TestEstimateSizeShallowSharedObjects checks the post-Clone accounting
// mode: a cloned tuple's *adm.Object columns are pointers shared with
// another live holder, so the shallow estimate must charge them at
// pointer cost while still owning its scalar columns — within 2x of the
// measured incremental footprint, and strictly below the deep estimate.
func TestEstimateSizeShallowSharedObjects(t *testing.T) {
	const n = 4096
	objs := make([]*adm.Object, n)
	for i := range objs {
		objs[i] = sampleTuple(i)[2].(*adm.Object)
	}
	// The group-key scenario shallow accounting serves: a fresh tuple
	// owning its scalar columns but sharing the object with objs.
	measured := measureAlloc(n, func(i int) Tuple {
		return Tuple{adm.Int64(int64(i)), adm.String(fmt.Sprintf("key-%06d", i)), objs[i]}
	})
	runtime.KeepAlive(objs)

	shallow := sampleTuple(0).EstimateSizeShallow()
	deep := sampleTuple(0).EstimateSize()
	if shallow >= deep {
		t.Fatalf("shallow estimate %d must be below deep estimate %d for pointer-shared tuples", shallow, deep)
	}
	if shallow*2 < measured {
		t.Fatalf("EstimateSizeShallow %d under-counts clone: measured %d (> 2x estimate)", shallow, measured)
	}
	if shallow > measured*2 {
		t.Fatalf("EstimateSizeShallow %d over-counts clone: measured %d (< estimate/2)", shallow, measured)
	}
}
