package hyracks

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/fault"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// Run executes a job on the cluster, blocking until completion. The first
// task error cancels the whole job. Partitions are placed on the nodes
// alive when the run starts; a node killed mid-run cancels its tasks,
// which surface as a *NodeFailure (retriable via RunWithRetry).
//
// Before any task starts, the job is admitted through the cluster's
// memory governor: the minimum grants of ALL its memory operators'
// tasks are reserved atomically (bounded wait, typed timeout). Because
// a running task only ever Grows non-blockingly — a denial means spill
// — admitted jobs can never deadlock on memory against each other.
func (c *Cluster) Run(ctx context.Context, j *Job) error {
	atomic.AddInt64(&c.jobAttempts, 1)
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return fmt.Errorf("hyracks: no alive nodes in the cluster")
	}
	// When the caller's span requests detailed profiling, every
	// (operator, partition) task gets its own child span recording wall
	// time, tuple counts, and spills. With no span (or detail off) every
	// task span is nil and all span calls are nil-check no-ops.
	jobSpan := obs.SpanFromContext(ctx)
	traceTasks := jobSpan.Detailed()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Validate wiring.
	for _, op := range j.ops {
		for port, e := range op.inEnds {
			if e == nil {
				return fmt.Errorf("hyracks: %s input port %d unconnected", op.Name, port)
			}
		}
	}

	// Admit the job: one atomic reservation covering every memory task's
	// minimum grant.
	memTasks := 0
	for _, op := range j.ops {
		if op.Memory {
			memTasks += op.Parallelism
		}
	}
	var jobGrant *mem.JobGrant
	if memTasks > 0 {
		jg, err := c.governor().AdmitJob(ctx, memTasks)
		if err != nil {
			return fmt.Errorf("hyracks: job admission: %w", err)
		}
		jobGrant = jg
	}

	// Build per-edge channel fabric.
	type edgeRT struct {
		chans     []chan []Tuple
		producers sync.WaitGroup
	}
	rts := make(map[*edge]*edgeRT, len(j.edges))
	for _, e := range j.edges {
		rt := &edgeRT{}
		n := e.to.Parallelism
		if e.conn.Kind == ConnMerge {
			if len(e.conn.Cmp.Columns) > 0 {
				// Ordered merge needs one stream per producer; the
				// consumer-side merging input buffers them unboundedly to
				// avoid exchange deadlocks (it must be able to wait on a
				// specific stream while others keep producing).
				n = e.from.Parallelism
			} else {
				// Unordered concentration: one shared MPSC channel, so no
				// producer is ever left unread while another is drained.
				n = 1
			}
		}
		rt.chans = make([]chan []Tuple, n)
		for i := range rt.chans {
			rt.chans[i] = make(chan []Tuple, 8)
		}
		rt.producers.Add(e.from.Parallelism)
		rts[e] = rt
		go func(rt *edgeRT) {
			rt.producers.Wait()
			for _, ch := range rt.chans {
				close(ch)
			}
		}(rt)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for _, op := range j.ops {
		for p := 0; p < op.Parallelism; p++ {
			op, p := op, p
			node := alive[p%len(alive)]
			var ts *obs.Span
			if traceTasks {
				ts = jobSpan.StartChild(fmt.Sprintf("%s[%d]", op.Name, p))
			}
			// Every blocking construct of this task selects on tctx, which
			// the watcher cancels the instant the task's node is killed —
			// the whole job then tears down via the usual error path.
			tctx, tcancel := context.WithCancel(ctx)
			go func() {
				select {
				case <-node.killedCh():
					tcancel()
				case <-tctx.Done():
				}
			}()
			send := func(ch chan []Tuple, frame []Tuple) error {
				if err := fault.Hit(fault.PointFrameDelay); err != nil {
					return err
				}
				// Fast path: a non-blocking send costs nothing extra.
				select {
				case ch <- frame:
					return nil
				default:
				}
				// The downstream channel is full — under detailed
				// profiling, attribute the stall to the task's
				// frame-exchange wait (per-frame timing only on the slow
				// path, and only when a task span exists).
				//lint:ignore obs-nil skips the per-frame time.Now on untraced jobs, not a call guard
				if ts != nil {
					t0 := time.Now()
					defer func() { ts.AddWait(obs.WaitExchange, time.Since(t0)) }()
				}
				select {
				case ch <- frame:
					return nil
				case <-tctx.Done():
					return tctx.Err()
				}
			}
			var taskMem *mem.Grant
			if op.Memory {
				taskMem = jobGrant.TaskGrant()
			}
			tc := &TaskContext{
				Ctx:           tctx,
				Partition:     p,
				NumPartitions: op.Parallelism,
				Node:          node,
				Mem:           taskMem,
				Span:          ts,
				JobSpan:       jobSpan,
			}

			// Inputs, ordered by port.
			ins := make([]*Input, len(op.inEnds))
			for port, e := range op.inEnds {
				rt := rts[e]
				switch e.conn.Kind {
				case ConnMerge:
					if len(e.conn.Cmp.Columns) > 0 {
						buffered := make([]chan []Tuple, len(rt.chans))
						for i, ch := range rt.chans {
							buffered[i] = unboundedBuffer(tctx, ch)
						}
						ins[port] = newMergingInput(tctx, buffered, e.conn.Cmp, c.FrameSize, node, ts)
					} else {
						ins[port] = newConcatInput(tctx, rt.chans, node, ts)
					}
				default:
					ch := rt.chans[p]
					ins[port] = &Input{recv: func() ([]Tuple, bool, error) {
						select {
						case f, ok := <-ch:
							if !ok {
								return nil, false, nil
							}
							node.addIn(int64(len(f)))
							ts.AddTuplesIn(int64(len(f)))
							return f, true, nil
						case <-tctx.Done():
							return nil, false, tctx.Err()
						}
					}}
				}
			}

			// Outputs, one per out edge in connection order.
			outs := make([]*Output, len(op.outs))
			writers := make([]*connWriter, len(op.outs))
			for i, e := range op.outs {
				w := &connWriter{
					conn:      e.conn,
					chans:     rts[e].chans,
					frameSize: c.FrameSize,
					producer:  p,
					send:      send,
					node:      node,
					span:      ts,
				}
				if e.conn.Kind == ConnMerge {
					if len(e.conn.Cmp.Columns) > 0 {
						w.mergeChan = rts[e].chans[p]
					} else {
						w.mergeChan = rts[e].chans[0]
					}
				}
				w.buffers = make([][]Tuple, len(w.chans))
				writers[i] = w
				outs[i] = &Output{write: w.Write, close: w.Close}
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer tcancel()         // releases the kill watcher
				defer taskMem.Release() // returns this task's working memory
				runner := op.New(p)
				err := fault.Hit(fault.PointNodeCrash)
				if err != nil {
					// The injected crash takes down the whole node, not
					// just this task.
					node.Kill()
				} else {
					// Label the task's CPU samples so /debug/pprof/profile
					// attributes time to (operator, partition) — combined
					// with the server's query label, a profile reads as
					// "query 42 spent 60% in join[1]".
					pprof.Do(tctx, pprof.Labels(
						"hyracks_op", op.Name,
						"partition", strconv.Itoa(p),
					), func(context.Context) {
						err = runner.Run(tc, ins, outs)
					})
				}
				ts.End()
				if err == nil {
					for _, w := range writers {
						if e := w.Close(); e != nil {
							err = e
							break
						}
					}
				}
				// Producers must be marked done even on error so channel
				// closers terminate.
				for _, e := range op.outs {
					rts[e].producers.Done()
				}
				// A task that failed on a dead node failed BECAUSE the node
				// died (its tctx was cancelled by the watcher); a task that
				// finished before the kill landed keeps its success.
				if err != nil && node.Dead() {
					err = &NodeFailure{Node: node.ID, Op: op.Name}
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					fail(fmt.Errorf("hyracks: %s[%d]: %w", op.Name, p, err))
				} else if err != nil {
					fail(err)
				}
			}()
		}
	}
	wg.Wait()
	if jobGrant != nil {
		j.peakWorking = jobGrant.Peak()
		jobGrant.Release()
	}
	if firstErr != nil {
		var nf *NodeFailure
		if errors.As(firstErr, &nf) {
			atomic.AddInt64(&c.nodeFailures, 1)
		}
		return firstErr
	}
	return ctx.Err()
}

// connWriter routes a producer partition's output tuples into the edge's
// channels with frame batching.
type connWriter struct {
	conn      Connector
	chans     []chan []Tuple
	buffers   [][]Tuple
	frameSize int
	producer  int
	rr        int
	mergeChan chan []Tuple
	mbuf      []Tuple
	send      func(chan []Tuple, []Tuple) error
	node      *NodeController
	span      *obs.Span
	closed    bool
}

func (w *connWriter) Write(t Tuple) error {
	w.node.addOut(1)
	w.span.AddTuplesOut(1)
	switch w.conn.Kind {
	case ConnOneToOne:
		return w.buffered(w.producer, t)
	case ConnHashPartition:
		dst := int(HashColumns(t, w.conn.HashCols) % uint64(len(w.chans)))
		return w.buffered(dst, t)
	case ConnBroadcast:
		for i := range w.chans {
			if err := w.buffered(i, t); err != nil {
				return err
			}
		}
		return nil
	case ConnRoundRobin:
		dst := w.rr % len(w.chans)
		w.rr++
		return w.buffered(dst, t)
	case ConnMerge:
		// One writer-local buffer feeding this producer's merge channel
		// (shared MPSC channel for unordered merges).
		w.mbuf = append(w.mbuf, t)
		if len(w.mbuf) >= w.frameSize {
			f := w.mbuf
			w.mbuf = nil
			return w.send(w.mergeChan, f)
		}
		return nil
	}
	return fmt.Errorf("hyracks: unknown connector kind %d", w.conn.Kind)
}

func (w *connWriter) buffered(dst int, t Tuple) error {
	w.buffers[dst] = append(w.buffers[dst], t)
	if len(w.buffers[dst]) >= w.frameSize {
		f := w.buffers[dst]
		w.buffers[dst] = nil
		return w.send(w.chans[dst], f)
	}
	return nil
}

// Close flushes all partial frames.
func (w *connWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.conn.Kind == ConnMerge {
		if len(w.mbuf) > 0 {
			f := w.mbuf
			w.mbuf = nil
			return w.send(w.mergeChan, f)
		}
		return nil
	}
	for i, buf := range w.buffers {
		if len(buf) > 0 {
			if err := w.send(w.chans[i], buf); err != nil {
				return err
			}
			w.buffers[i] = nil
		}
	}
	return nil
}

// unboundedBuffer decouples a producer channel from its consumer with an
// unbounded in-memory queue: the producer is never blocked by a merge
// consumer that is waiting on a different stream (exchange-deadlock
// avoidance for ordered merges; real Hyracks spills here instead).
func unboundedBuffer(ctx context.Context, in chan []Tuple) chan []Tuple {
	out := make(chan []Tuple, 8)
	go func() {
		defer close(out)
		var queue [][]Tuple
		inOpen := true
		for {
			if len(queue) == 0 {
				if !inOpen {
					return
				}
				select {
				case f, ok := <-in:
					if !ok {
						inOpen = false
						continue
					}
					queue = append(queue, f)
				case <-ctx.Done():
					return
				}
				continue
			}
			if inOpen {
				select {
				case f, ok := <-in:
					if !ok {
						inOpen = false
					} else {
						queue = append(queue, f)
					}
				case out <- queue[0]:
					queue = queue[1:]
				case <-ctx.Done():
					return
				}
			} else {
				select {
				case out <- queue[0]:
					queue = queue[1:]
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// newConcatInput drains k producer channels sequentially (unordered
// concentrator).
func newConcatInput(ctx context.Context, chans []chan []Tuple, node *NodeController, span *obs.Span) *Input {
	idx := 0
	return &Input{recv: func() ([]Tuple, bool, error) {
		for idx < len(chans) {
			select {
			case f, ok := <-chans[idx]:
				if !ok {
					idx++
					continue
				}
				node.addIn(int64(len(f)))
				span.AddTuplesIn(int64(len(f)))
				return f, true, nil
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		return nil, false, nil
	}}
}

// newMergingInput merge-sorts k already-sorted producer channels.
func newMergingInput(ctx context.Context, chans []chan []Tuple, cmp Comparator, frameSize int, node *NodeController, span *obs.Span) *Input {
	type cursor struct {
		frame []Tuple
		pos   int
		done  bool
	}
	curs := make([]cursor, len(chans))
	fill := func(i int) error {
		for !curs[i].done && curs[i].pos >= len(curs[i].frame) {
			select {
			case f, ok := <-chans[i]:
				if !ok {
					curs[i].done = true
					return nil
				}
				node.addIn(int64(len(f)))
				span.AddTuplesIn(int64(len(f)))
				curs[i].frame = f
				curs[i].pos = 0
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	primed := false
	return &Input{recv: func() ([]Tuple, bool, error) {
		if !primed {
			for i := range curs {
				if err := fill(i); err != nil {
					return nil, false, err
				}
			}
			primed = true
		}
		var out []Tuple
		for len(out) < frameSize {
			best := -1
			for i := range curs {
				if curs[i].done || curs[i].pos >= len(curs[i].frame) {
					continue
				}
				if best == -1 || cmp.Compare(curs[i].frame[curs[i].pos], curs[best].frame[curs[best].pos]) < 0 {
					best = i
				}
			}
			if best == -1 {
				break
			}
			out = append(out, curs[best].frame[curs[best].pos])
			curs[best].pos++
			if err := fill(best); err != nil {
				return nil, false, err
			}
		}
		if len(out) == 0 {
			return nil, false, nil
		}
		return out, true, nil
	}}
}
