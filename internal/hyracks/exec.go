package hyracks

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/fault"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// Run executes a job on the cluster, blocking until completion. The first
// task error cancels the whole job. Partitions are placed on the nodes
// alive when the run starts; a node killed mid-run cancels its tasks,
// which surface as a *NodeFailure (retriable via RunWithRetry).
//
// With a Placement attached (SetPlacement), Run executes only this
// process's share of the DAG: channels consumed here stay on the
// in-process fabric, channels consumed elsewhere are routed through the
// placement's Transport, and a remote node's death — reported by
// heartbeat failure detection through NodeController.Kill — fails the
// run with the same *NodeFailure an in-process kill produces. A broken
// frame stream without a dead node surfaces as *LinkFailure, equally
// retriable.
//
// Before any task starts, the job is admitted through the cluster's
// memory governor: the minimum grants of ALL its memory operators'
// tasks are reserved atomically (bounded wait, typed timeout). Because
// a running task only ever Grows non-blockingly — a denial means spill
// — admitted jobs can never deadlock on memory against each other.
func (c *Cluster) Run(ctx context.Context, j *Job) error {
	atomic.AddInt64(&c.jobAttempts, 1)
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return fmt.Errorf("hyracks: no alive nodes in the cluster")
	}
	pl := j.placement
	var localNC *NodeController
	if pl != nil {
		var err error
		if localNC, err = pl.localNode(c); err != nil {
			return err
		}
		if localNC.Dead() {
			return &NodeFailure{Node: localNC.ID, Op: "(startup)"}
		}
	}
	// isLocal reports whether (op, partition) runs in this process.
	isLocal := func(op *Operator, p int) bool {
		return pl == nil || pl.Assign(op.Name, p) == pl.Node
	}
	// When the caller's span requests detailed profiling, every
	// (operator, partition) task gets its own child span recording wall
	// time, tuple counts, and spills. With no span (or detail off) every
	// task span is nil and all span calls are nil-check no-ops.
	jobSpan := obs.SpanFromContext(ctx)
	traceTasks := jobSpan.Detailed()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Validate wiring.
	for _, op := range j.ops {
		for port, e := range op.inEnds {
			if e == nil {
				return fmt.Errorf("hyracks: %s input port %d unconnected", op.Name, port)
			}
		}
	}

	// Admit the job: one atomic reservation covering every LOCAL memory
	// task's minimum grant (each process admits against its own
	// governor).
	memTasks := 0
	for _, op := range j.ops {
		if !op.Memory {
			continue
		}
		for p := 0; p < op.Parallelism; p++ {
			if isLocal(op, p) {
				memTasks++
			}
		}
	}
	var jobGrant *mem.JobGrant
	if memTasks > 0 {
		jg, err := c.governor().AdmitJob(ctx, memTasks)
		if err != nil {
			return fmt.Errorf("hyracks: job admission: %w", err)
		}
		jobGrant = jg
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Build the per-edge fabric. Each edge has one frame channel per
	// consumer-owned slot: channels consumed in this process are real Go
	// channels; channels consumed elsewhere stay nil and sends to them go
	// through the transport. The channels close when every producer —
	// local task or remote peer EOS — has finished, or are abandoned (and
	// drained by task-context cancellation) when the run dies first.
	type edgeRT struct {
		chans   []chan []Tuple
		owners  []string // per-channel consumer node; "" = local
		remote  bool     // any remote-owned channel
		handle  EdgeHandle
		pending int32 // undone producers, local + remote
		done    chan struct{}
	}
	rts := make(map[*edge]*edgeRT, len(j.edges))
	var transport Transport = LocalTransport{}
	if pl != nil && pl.Transport != nil {
		transport = pl.Transport
	}
	jobID := ""
	if pl != nil {
		jobID = pl.JobID
	}
	defer transport.CloseJob(jobID)
	pool := c.framePool()
	for ei, e := range j.edges {
		rt := &edgeRT{}
		n := e.to.Parallelism
		if e.conn.Kind == ConnMerge {
			if len(e.conn.Cmp.Columns) > 0 {
				// Ordered merge needs one stream per producer; the
				// consumer-side merging input buffers them unboundedly to
				// avoid exchange deadlocks (it must be able to wait on a
				// specific stream while others keep producing).
				n = e.from.Parallelism
			} else {
				// Unordered concentration: one shared MPSC channel, so no
				// producer is ever left unread while another is drained.
				n = 1
			}
		}
		rt.chans = make([]chan []Tuple, n)
		rt.owners = make([]string, n)
		for i := range rt.chans {
			// The consumer partition owning channel i: merge connectors
			// concentrate every stream onto consumer partition 0.
			part := i
			if e.conn.Kind == ConnMerge {
				part = 0
			}
			if pl != nil {
				if owner := pl.Assign(e.to.Name, part); owner != pl.Node {
					rt.owners[i] = owner
					rt.remote = true
					continue
				}
			}
			rt.chans[i] = make(chan []Tuple, 8)
		}
		rt.pending = int32(e.from.Parallelism)
		rt.done = make(chan struct{})
		rts[e] = rt
		decr := func() {
			if atomic.AddInt32(&rt.pending, -1) == 0 {
				close(rt.done)
			}
		}
		if pl != nil {
			senders := map[string]bool{}
			for pp := 0; pp < e.from.Parallelism; pp++ {
				if id := pl.Assign(e.from.Name, pp); id != pl.Node {
					senders[id] = true
				}
			}
			h, err := transport.OpenEdge(ctx, EdgeDesc{
				JobID:     pl.JobID,
				Edge:      ei,
				Owners:    rt.owners,
				Recv:      rt.chans,
				Producers: e.from.Parallelism,
				Senders:   len(senders),
				EOS:       decr,
				Fail:      fail,
			})
			if err != nil {
				if jobGrant != nil {
					jobGrant.Release()
				}
				return fmt.Errorf("hyracks: open edge %d: %w", ei, err)
			}
			rt.handle = h
		}
		go func(rt *edgeRT) {
			// Close the local channels once all producers finished. A run
			// that dies first (error, cancellation, a peer that will never
			// EOS) abandons them instead: every consumer recv selects on
			// its task context, so nothing blocks on an unclosed channel.
			select {
			case <-rt.done:
				for _, ch := range rt.chans {
					if ch != nil {
						close(ch)
					}
				}
			case <-ctx.Done():
			}
		}(rt)
	}

	// Control-plane hooks. The remote-node watchers and the abort
	// listener install BEFORE the START barrier: a process whose
	// coordinator (or any depended-on peer) dies while it is parked at
	// the barrier must still fail with the typed retriable error rather
	// than wait forever.
	if pl != nil {
		// Watch every remote node this attempt depends on: a heartbeat
		// timeout Kills its controller, and the watcher converts that
		// into the same retriable NodeFailure an in-process kill raises.
		watched := map[string]bool{pl.Node: true}
		for _, op := range j.ops {
			for p := 0; p < op.Parallelism; p++ {
				id := pl.Assign(op.Name, p)
				if watched[id] {
					continue
				}
				watched[id] = true
				nc := c.NodeByID(id)
				if nc == nil {
					if jobGrant != nil {
						jobGrant.Release()
					}
					return fmt.Errorf("hyracks: placement assigns %s[%d] to unknown node %q", op.Name, p, id)
				}
				go func(nc *NodeController) {
					select {
					case <-nc.killedCh():
						fail(&NodeFailure{Node: nc.ID, Op: "(remote)"})
					case <-ctx.Done():
					}
				}(nc)
			}
		}
		if pl.Abort != nil {
			go func() {
				select {
				case err := <-pl.Abort:
					if err != nil {
						fail(err)
					}
				case <-ctx.Done():
				}
			}()
		}
		if pl.Ready != nil {
			pl.Ready()
		}
		if pl.Start != nil {
			select {
			case <-pl.Start:
			case <-ctx.Done():
				if jobGrant != nil {
					jobGrant.Release()
				}
				// A watcher or the abort listener may have cancelled the
				// run with a typed retriable failure; fail-then-read
				// synchronizes on the errOnce, so that error wins over a
				// bare context.Canceled.
				fail(ctx.Err())
				return firstErr
			}
		}
	}

	for _, op := range j.ops {
		for p := 0; p < op.Parallelism; p++ {
			if !isLocal(op, p) {
				continue
			}
			op, p := op, p
			node := localNC
			if node == nil {
				node = alive[p%len(alive)]
			}
			var ts *obs.Span
			if traceTasks {
				ts = jobSpan.StartChild(fmt.Sprintf("%s[%d]", op.Name, p))
			}
			// Every blocking construct of this task selects on tctx, which
			// the watcher cancels the instant the task's node is killed —
			// the whole job then tears down via the usual error path.
			tctx, tcancel := context.WithCancel(ctx)
			go func() {
				select {
				case <-node.killedCh():
					tcancel()
				case <-tctx.Done():
				}
			}()
			var taskMem *mem.Grant
			if op.Memory {
				taskMem = jobGrant.TaskGrant()
			}
			tc := &TaskContext{
				Ctx:           tctx,
				Partition:     p,
				NumPartitions: op.Parallelism,
				Node:          node,
				Mem:           taskMem,
				Span:          ts,
				JobSpan:       jobSpan,
			}
			send := func(rt *edgeRT, dst int, frame []Tuple) error {
				if err := fault.Hit(fault.PointFrameDelay); err != nil {
					return err
				}
				if rt.owners[dst] != "" {
					// Remote consumer: the transport serializes the frame
					// and blocks under the consumer's credit window. Wire
					// stalls are always attributed (the per-frame clock is
					// noise next to a network round trip). Send's contract
					// is that the frame is fully encoded (or abandoned)
					// before it returns, so the container recycles here
					// either way.
					t0 := time.Now()
					err := rt.handle.Send(tctx, dst, frame)
					tc.AddWait(obs.WaitNet, time.Since(t0))
					pool.Put(frame)
					return err
				}
				ch := rt.chans[dst]
				// Fast path: a non-blocking send costs nothing extra.
				select {
				case ch <- frame:
					return nil
				default:
				}
				// The downstream channel is full — under detailed
				// profiling, attribute the stall to the task's
				// frame-exchange wait (per-frame timing only on the slow
				// path, and only when a task span exists).
				//lint:ignore obs-nil skips the per-frame time.Now on untraced jobs, not a call guard
				if ts != nil {
					t0 := time.Now()
					defer func() { ts.AddWait(obs.WaitExchange, time.Since(t0)) }()
				}
				select {
				case ch <- frame:
					return nil
				case <-tctx.Done():
					return tctx.Err()
				}
			}

			// Inputs, ordered by port.
			ins := make([]*Input, len(op.inEnds))
			for port, e := range op.inEnds {
				rt := rts[e]
				switch e.conn.Kind {
				case ConnMerge:
					if len(e.conn.Cmp.Columns) > 0 {
						buffered := make([]chan []Tuple, len(rt.chans))
						for i, ch := range rt.chans {
							buffered[i] = unboundedBuffer(tctx, ch)
						}
						ins[port] = newMergingInput(tctx, buffered, e.conn.Cmp, c.FrameSize, pool, node, ts)
					} else {
						ins[port] = newConcatInput(tctx, rt.chans, pool, node, ts)
					}
				default:
					ch := rt.chans[p]
					ins[port] = &Input{pool: pool, recv: func() ([]Tuple, bool, error) {
						select {
						case f, ok := <-ch:
							if !ok {
								return nil, false, nil
							}
							node.addIn(int64(len(f)))
							ts.AddTuplesIn(int64(len(f)))
							return f, true, nil
						case <-tctx.Done():
							return nil, false, tctx.Err()
						}
					}}
				}
			}

			// Outputs, one per out edge in connection order.
			outs := make([]*Output, len(op.outs))
			writers := make([]*connWriter, len(op.outs))
			for i, e := range op.outs {
				rt := rts[e]
				w := &connWriter{
					conn:      e.conn,
					nch:       len(rt.chans),
					frameSize: c.FrameSize,
					producer:  p,
					pool:      pool,
					send:      func(dst int, frame []Tuple) error { return send(rt, dst, frame) },
					node:      node,
					span:      ts,
				}
				if e.conn.Kind == ConnMerge {
					if len(e.conn.Cmp.Columns) > 0 {
						w.mergeDst = p
					} else {
						w.mergeDst = 0
					}
				}
				w.buffers = make([][]Tuple, w.nch)
				writers[i] = w
				outs[i] = &Output{write: w.Write, close: w.Close}
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer tcancel()         // releases the kill watcher
				defer taskMem.Release() // returns this task's working memory
				runner := op.New(p)
				err := fault.Hit(fault.PointNodeCrash)
				if err != nil {
					// The injected crash takes down the whole node, not
					// just this task.
					node.Kill()
				} else {
					// Label the task's CPU samples so /debug/pprof/profile
					// attributes time to (operator, partition) — combined
					// with the server's query label, a profile reads as
					// "query 42 spent 60% in join[1]".
					pprof.Do(tctx, pprof.Labels(
						"hyracks_op", op.Name,
						"partition", strconv.Itoa(p),
					), func(context.Context) {
						err = runner.Run(tc, ins, outs)
					})
				}
				ts.End()
				if err == nil {
					for _, w := range writers {
						if e := w.Close(); e != nil {
							err = e
							break
						}
					}
				}
				// Producers must be marked done even on error so channel
				// closers terminate. The wire end-of-stream, though, is a
				// success claim — "every frame I owed this edge arrived
				// before this" — so a FAILED producer must not send it: a
				// reconnect would carry the EOS past the break and the
				// consumer would complete on silently truncated data. Its
				// consumers instead block until the failure status aborts
				// the attempt and the retry supersedes the job id.
				for _, e := range op.outs {
					rt := rts[e]
					if rt.remote && rt.handle != nil && err == nil {
						if pdErr := rt.handle.ProducerDone(); pdErr != nil {
							err = pdErr
						}
					}
					if atomic.AddInt32(&rt.pending, -1) == 0 {
						close(rt.done)
					}
				}
				// A task that failed on a dead node failed BECAUSE the node
				// died (its tctx was cancelled by the watcher); a task that
				// finished before the kill landed keeps its success.
				if err != nil && node.Dead() {
					err = &NodeFailure{Node: node.ID, Op: op.Name}
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					fail(fmt.Errorf("hyracks: %s[%d]: %w", op.Name, p, err))
				} else if err != nil {
					fail(err)
				}
			}()
		}
	}
	wg.Wait()
	if jobGrant != nil {
		j.peakWorking = jobGrant.Peak()
		jobGrant.Release()
	}
	// The remote-node watchers and the abort listener stop on the
	// deferred cancel, so one can be inside fail() right now. An empty
	// Do synchronizes with it — Do returns only after the first call's
	// write to firstErr completed — and consumes the Once, so a watcher
	// firing later can no longer write while firstErr is read.
	errOnce.Do(func() {})
	if firstErr != nil {
		var nf *NodeFailure
		var lf *LinkFailure
		if errors.As(firstErr, &nf) {
			atomic.AddInt64(&c.nodeFailures, 1)
		} else if errors.As(firstErr, &lf) {
			atomic.AddInt64(&c.linkFailures, 1)
		}
		return firstErr
	}
	return ctx.Err()
}

// connWriter routes a producer partition's output tuples into the edge's
// channels with frame batching. Batch buffers start life as recycled
// frame containers: a locally-consumed frame transfers ownership to its
// consumer over the channel (the consumer's Input recycles it after the
// tuple pass), while a remote send recycles it as soon as the transport
// has serialized it.
type connWriter struct {
	conn      Connector
	nch       int
	buffers   [][]Tuple
	frameSize int
	producer  int
	rr        int
	mergeDst  int
	mbuf      []Tuple
	pool      *FramePool
	send      func(dst int, frame []Tuple) error
	node      *NodeController
	span      *obs.Span
	closed    bool
}

func (w *connWriter) Write(t Tuple) error {
	w.node.addOut(1)
	w.span.AddTuplesOut(1)
	switch w.conn.Kind {
	case ConnOneToOne:
		return w.buffered(w.producer, t)
	case ConnHashPartition:
		dst := int(HashColumns(t, w.conn.HashCols) % uint64(w.nch))
		return w.buffered(dst, t)
	case ConnBroadcast:
		for i := 0; i < w.nch; i++ {
			if err := w.buffered(i, t); err != nil {
				return err
			}
		}
		return nil
	case ConnRoundRobin:
		dst := w.rr % w.nch
		w.rr++
		return w.buffered(dst, t)
	case ConnMerge:
		// One writer-local buffer feeding this producer's merge channel
		// (shared MPSC channel for unordered merges).
		if w.mbuf == nil {
			w.mbuf = w.pool.Get()
		}
		w.mbuf = append(w.mbuf, t)
		if len(w.mbuf) >= w.frameSize {
			f := w.mbuf
			w.mbuf = nil
			return w.send(w.mergeDst, f)
		}
		return nil
	}
	return fmt.Errorf("hyracks: unknown connector kind %d", w.conn.Kind)
}

func (w *connWriter) buffered(dst int, t Tuple) error {
	if w.buffers[dst] == nil {
		w.buffers[dst] = w.pool.Get()
	}
	w.buffers[dst] = append(w.buffers[dst], t)
	if len(w.buffers[dst]) >= w.frameSize {
		f := w.buffers[dst]
		w.buffers[dst] = nil
		return w.send(dst, f)
	}
	return nil
}

// Close flushes all partial frames.
func (w *connWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.conn.Kind == ConnMerge {
		if len(w.mbuf) > 0 {
			f := w.mbuf
			w.mbuf = nil
			return w.send(w.mergeDst, f)
		}
		return nil
	}
	for i, buf := range w.buffers {
		if len(buf) > 0 {
			if err := w.send(i, buf); err != nil {
				return err
			}
			w.buffers[i] = nil
		}
	}
	return nil
}

// unboundedBuffer decouples a producer channel from its consumer with an
// unbounded in-memory queue: the producer is never blocked by a merge
// consumer that is waiting on a different stream (exchange-deadlock
// avoidance for ordered merges; real Hyracks spills here instead).
func unboundedBuffer(ctx context.Context, in chan []Tuple) chan []Tuple {
	out := make(chan []Tuple, 8)
	go func() {
		defer close(out)
		var queue [][]Tuple
		inOpen := true
		for {
			if len(queue) == 0 {
				if !inOpen {
					return
				}
				select {
				case f, ok := <-in:
					if !ok {
						inOpen = false
						continue
					}
					queue = append(queue, f)
				case <-ctx.Done():
					return
				}
				continue
			}
			if inOpen {
				select {
				case f, ok := <-in:
					if !ok {
						inOpen = false
					} else {
						queue = append(queue, f)
					}
				case out <- queue[0]:
					queue = queue[1:]
				case <-ctx.Done():
					return
				}
			} else {
				select {
				case out <- queue[0]:
					queue = queue[1:]
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// newConcatInput drains k producer channels sequentially (unordered
// concentrator).
func newConcatInput(ctx context.Context, chans []chan []Tuple, pool *FramePool, node *NodeController, span *obs.Span) *Input {
	idx := 0
	return &Input{pool: pool, recv: func() ([]Tuple, bool, error) {
		for idx < len(chans) {
			select {
			case f, ok := <-chans[idx]:
				if !ok {
					idx++
					continue
				}
				node.addIn(int64(len(f)))
				span.AddTuplesIn(int64(len(f)))
				return f, true, nil
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		return nil, false, nil
	}}
}

// newMergingInput merge-sorts k already-sorted producer channels. Each
// cursor's exhausted frame recycles when the next one replaces it, and
// the merged output frames come from the pool (the downstream Input
// recycles them after the tuple pass); the tuple headers copied from
// cursor frames into the output survive recycling — they are independent
// arrays.
func newMergingInput(ctx context.Context, chans []chan []Tuple, cmp Comparator, frameSize int, pool *FramePool, node *NodeController, span *obs.Span) *Input {
	type cursor struct {
		frame []Tuple
		pos   int
		done  bool
	}
	curs := make([]cursor, len(chans))
	fill := func(i int) error {
		for !curs[i].done && curs[i].pos >= len(curs[i].frame) {
			select {
			case f, ok := <-chans[i]:
				if !ok {
					curs[i].done = true
					pool.Put(curs[i].frame)
					curs[i].frame = nil
					return nil
				}
				node.addIn(int64(len(f)))
				span.AddTuplesIn(int64(len(f)))
				pool.Put(curs[i].frame)
				curs[i].frame = f
				curs[i].pos = 0
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	primed := false
	return &Input{pool: pool, recv: func() ([]Tuple, bool, error) {
		if !primed {
			for i := range curs {
				if err := fill(i); err != nil {
					return nil, false, err
				}
			}
			primed = true
		}
		out := pool.Get()
		for len(out) < frameSize {
			best := -1
			for i := range curs {
				if curs[i].done || curs[i].pos >= len(curs[i].frame) {
					continue
				}
				if best == -1 || cmp.Compare(curs[i].frame[curs[i].pos], curs[best].frame[curs[best].pos]) < 0 {
					best = i
				}
			}
			if best == -1 {
				break
			}
			out = append(out, curs[best].frame[curs[best].pos])
			curs[best].pos++
			if err := fill(best); err != nil {
				pool.Put(out)
				return nil, false, err
			}
		}
		if len(out) == 0 {
			pool.Put(out)
			return nil, false, nil
		}
		return out, true, nil
	}}
}
