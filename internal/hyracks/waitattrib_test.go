package hyracks

import (
	"context"
	"math/rand"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/obs"
)

// These tests guard the wait-attribution plumbing end to end: a spilling
// operator run under a traced job must surface its spill I/O (both the
// run-file writes and the read-back during merge/probe) as WaitSpill on
// the job span. The asterixlint wait-attrib rule statically guarantees
// every blocking call on an operator path is routed through AddWait;
// these tests check the routed time actually reaches the span, which is
// what the slow-query log and E-series wait breakdowns consume.

func runTracedJob(t *testing.T, c *Cluster, j *Job) *obs.Span {
	t.Helper()
	span := obs.NewSpan("test-job")
	ctx := obs.ContextWithSpan(context.Background(), span)
	if err := c.Run(ctx, j); err != nil {
		t.Fatal(err)
	}
	span.End()
	return span
}

// TestSortSpillWaitAttributed covers the external-sort merge phase: run
// read-back is spill I/O and must be attributed (the merge-phase Next
// calls were once untracked, so spill writes showed up in the breakdown
// but the read half of the same I/O vanished).
func TestSortSpillWaitAttributed(t *testing.T) {
	c := newCluster(t, 1)
	c.MemBudget = 4 << 10
	j := NewJob()
	n := 3000
	scan := j.Add(NewScan("scan", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		r := rand.New(rand.NewSource(11))
		for i := 0; i < n; i++ {
			if err := emit(Tuple{adm.Int64(r.Intn(1 << 20)), adm.String("padding-padding-padding")}); err != nil {
				return err
			}
		}
		return nil
	}))
	sortOp := j.Add(NewSort("sort", 1, Comparator{Columns: []int{0}}))
	coll := &Collector{}
	sink := j.Add(NewOrderedSink("sink", coll))
	j.MustConnect(scan, sortOp, 0, OneToOne())
	j.MustConnect(sortOp, sink, 0, OneToOne())

	span := runTracedJob(t, c, j)
	if coll.Len() != n {
		t.Fatalf("got %d tuples, want %d", coll.Len(), n)
	}
	if c.Nodes[0].Spills == 0 {
		t.Fatal("test needs a spilling sort; raise n or lower the budget")
	}
	if got := span.WaitRollup()[obs.WaitSpill]; got <= 0 {
		t.Errorf("spilling sort recorded no WaitSpill time on the job span (got %v)", got)
	}
}

// TestGraceJoinSpillWaitAttributed covers the grace hash join: both the
// build-side partition read-back and the probe-side Finish/Next reads
// are spill I/O. The probe side was once untracked, halving the join's
// visible spill wait.
func TestGraceJoinSpillWaitAttributed(t *testing.T) {
	c := newCluster(t, 1)
	c.MemBudget = 2 << 10
	j := NewJob()
	n := 2000
	left := j.Add(NewScan("left", 1, rangeScan(n)))
	right := j.Add(NewScan("right", 1, func(tc *TaskContext, emit func(Tuple) error) error {
		for i := 0; i < n; i++ {
			if err := emit(Tuple{adm.Int64(i), adm.String("right-payload-right-payload")}); err != nil {
				return err
			}
		}
		return nil
	}))
	join := j.Add(NewHashJoin("join", 1, []int{0}, []int{0}, InnerJoin, 2, nil))
	coll := &Collector{}
	sink := j.Add(NewSink("sink", 1, coll))
	j.MustConnect(left, join, 0, OneToOne())
	j.MustConnect(right, join, 1, OneToOne())
	j.MustConnect(join, sink, 0, OneToOne())

	span := runTracedJob(t, c, j)
	if coll.Len() != n {
		t.Fatalf("grace join returned %d, want %d", coll.Len(), n)
	}
	if c.Nodes[0].Spills == 0 {
		t.Fatal("test needs grace mode; lower the budget")
	}
	if got := span.WaitRollup()[obs.WaitSpill]; got <= 0 {
		t.Errorf("grace join recorded no WaitSpill time on the job span (got %v)", got)
	}
}
