// Package feed implements the Couchbase-Analytics-style shadow-ingest
// pipeline of the paper's Figure 7: an operational key-value front end (a
// stand-in for the Couchbase Data Service) whose ordered mutation stream
// (a DCP analogue) continuously feeds shadow datasets in the analytics
// engine, so analysts can "have their data and query it too" with
// performance isolation between the two sides.
package feed

import (
	"context"
	"fmt"
	"sync"

	"asterix/internal/adm"
	"asterix/internal/obs"
)

// Mutation is one ordered change from the KV store.
type Mutation struct {
	Seq     int64
	Key     string
	Doc     *adm.Object // nil when Deleted
	Deleted bool
}

// KVStore is a tiny operational document store with an ordered,
// replayable change stream. Mutations are retained in a log that streams
// cursor over; writers never block on slow consumers (they only tap a
// non-blocking notification), preserving the front end's latency
// independence — the isolation property Figure 7 is about.
type KVStore struct {
	mu     sync.Mutex
	docs   map[string]*adm.Object
	log    []Mutation // retained change history (DCP backfill + live)
	notify []chan struct{}

	// Ops counts front-end operations (isolation experiment metric).
	Ops int64
}

// NewKVStore creates an empty store.
func NewKVStore() *KVStore {
	return &KVStore{docs: map[string]*adm.Object{}}
}

// wake taps every stream's notifier without blocking (caller holds mu).
func (s *KVStore) wake() {
	for _, ch := range s.notify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Set stores a document and appends the mutation to the stream.
func (s *KVStore) Set(key string, doc *adm.Object) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Ops++
	s.docs[key] = doc
	m := Mutation{Seq: int64(len(s.log)) + 1, Key: key, Doc: doc}
	s.log = append(s.log, m)
	s.wake()
	return m.Seq
}

// Delete removes a document.
func (s *KVStore) Delete(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Ops++
	delete(s.docs, key)
	m := Mutation{Seq: int64(len(s.log)) + 1, Key: key, Deleted: true}
	s.log = append(s.log, m)
	s.wake()
	return m.Seq
}

// Get reads a document (front-end read path).
func (s *KVStore) Get(key string) (*adm.Object, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Ops++
	d, ok := s.docs[key]
	return d, ok
}

// OpsCount returns the front-end operation count (race-safe snapshot).
func (s *KVStore) OpsCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Ops
}

// PublishMetrics registers the store's counters on the registry (the
// ingestion-monitoring requirement of the data-feeds work: the front end
// stays observable without ever blocking on a consumer).
func (s *KVStore) PublishMetrics(reg *obs.Registry) {
	reg.RegisterFunc("feed_kv_ops_total", "front-end KV operations", obs.TypeCounter,
		func() float64 { return float64(s.OpsCount()) })
	reg.RegisterFunc("feed_kv_seq", "current mutation-stream position", obs.TypeGauge,
		func() float64 { return float64(s.Seq()) })
}

// Seq returns the current stream position.
func (s *KVStore) Seq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.log))
}

// Stream returns a channel replaying mutations after fromSeq and then
// delivering live changes (the DCP protocol shape): a cursor over the
// retained log, woken by writers. The channel is closed when ctx is done.
func (s *KVStore) Stream(ctx context.Context, fromSeq int64) <-chan Mutation {
	out := make(chan Mutation, 256)
	wake := make(chan struct{}, 1)
	s.mu.Lock()
	s.notify = append(s.notify, wake)
	s.mu.Unlock()

	go func() {
		defer close(out)
		defer func() {
			s.mu.Lock()
			for i, ch := range s.notify {
				if ch == wake {
					s.notify = append(s.notify[:i], s.notify[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		}()
		next := fromSeq // mutations with Seq > next are pending
		for {
			s.mu.Lock()
			var batch []Mutation
			if int64(len(s.log)) > next {
				batch = append(batch, s.log[next:]...)
			}
			s.mu.Unlock()
			for _, m := range batch {
				select {
				case out <- m:
				case <-ctx.Done():
					return
				}
			}
			next += int64(len(batch))
			if len(batch) == 0 {
				select {
				case <-wake:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// Sink is where shadowed mutations land (implemented by the analytics
// engine).
type Sink interface {
	Upsert(dataset string, rec *adm.Object) error
	Delete(dataset string, pk ...adm.Value) error
}

// ShadowLink continuously applies a KV store's mutation stream to a
// shadow dataset in the analytics engine.
type ShadowLink struct {
	Store   *KVStore
	Sink    Sink
	Dataset string
	// PKField is the document field holding the primary key; when the
	// document lacks it, the KV key is injected as a string.
	PKField string

	mu      sync.Mutex
	applied int64
}

// Applied returns the last applied sequence number (ingest progress).
func (l *ShadowLink) Applied() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied
}

// Lag returns how many mutations the shadow is behind the store.
func (l *ShadowLink) Lag() int64 { return l.Store.Seq() - l.Applied() }

// PublishMetrics registers ingest-progress gauges on the registry.
func (l *ShadowLink) PublishMetrics(reg *obs.Registry) {
	reg.RegisterFunc("feed_applied_seq", "last mutation applied to the shadow dataset", obs.TypeGauge,
		func() float64 { return float64(l.Applied()) })
	reg.RegisterFunc("feed_lag", "mutations the shadow dataset is behind the store", obs.TypeGauge,
		func() float64 { return float64(l.Lag()) })
}

// Run consumes the stream until ctx is done (or an apply error).
func (l *ShadowLink) Run(ctx context.Context, fromSeq int64) error {
	if l.PKField == "" {
		l.PKField = "id"
	}
	for m := range l.Store.Stream(ctx, fromSeq) {
		if err := l.apply(m); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// CatchUp applies everything currently in the stream and returns (batch
// mode, used by tests and benches).
func (l *ShadowLink) CatchUp(ctx context.Context) error {
	if l.PKField == "" {
		l.PKField = "id"
	}
	target := l.Store.Seq()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for m := range l.Store.Stream(cctx, l.Applied()) {
		if err := l.apply(m); err != nil {
			return err
		}
		if m.Seq >= target {
			return nil
		}
	}
	return nil
}

func (l *ShadowLink) apply(m Mutation) error {
	if m.Deleted {
		if err := l.Sink.Delete(l.Dataset, adm.String(m.Key)); err != nil {
			return fmt.Errorf("feed: shadow delete %q: %w", m.Key, err)
		}
	} else {
		// The shadow dataset is keyed by the KV key (deletions in the
		// stream carry only the key), so the key always overwrites the
		// primary-key field.
		doc := adm.NewObject(m.Doc.Fields()...)
		doc.Set(l.PKField, adm.String(m.Key))
		if err := l.Sink.Upsert(l.Dataset, doc); err != nil {
			return fmt.Errorf("feed: shadow upsert %q: %w", m.Key, err)
		}
	}
	l.mu.Lock()
	if m.Seq > l.applied {
		l.applied = m.Seq
	}
	l.mu.Unlock()
	return nil
}
