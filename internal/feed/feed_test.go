package feed

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"asterix/internal/adm"
)

// memSink is a test Sink.
type memSink struct {
	mu   sync.Mutex
	docs map[string]*adm.Object
}

func newMemSink() *memSink { return &memSink{docs: map[string]*adm.Object{}} }

func (s *memSink) Upsert(dataset string, rec *adm.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := rec.Get("id")
	s.docs[adm.ToJSON(id)] = rec
	return nil
}

func (s *memSink) Delete(dataset string, pk ...adm.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.docs, adm.ToJSON(pk[0]))
	return nil
}

func (s *memSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs)
}

func doc(i int) *adm.Object {
	return adm.NewObject(
		adm.Field{Name: "id", Value: adm.String(fmt.Sprintf("doc%d", i))},
		adm.Field{Name: "v", Value: adm.Int64(int64(i))},
	)
}

func TestKVStoreBasics(t *testing.T) {
	s := NewKVStore()
	s.Set("a", doc(1))
	s.Set("b", doc(2))
	if d, ok := s.Get("a"); !ok || d.Get("v").String() != "1" {
		t.Fatal("get a failed")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("delete failed")
	}
	if s.Seq() != 3 {
		t.Fatalf("seq = %d", s.Seq())
	}
}

func TestStreamBackfillThenLive(t *testing.T) {
	s := NewKVStore()
	for i := 0; i < 5; i++ {
		s.Set(fmt.Sprintf("k%d", i), doc(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := s.Stream(ctx, 0)
	// Backfill of 5.
	for i := 0; i < 5; i++ {
		m := <-ch
		if m.Seq != int64(i+1) {
			t.Fatalf("backfill seq %d", m.Seq)
		}
	}
	// Live.
	go s.Set("live", doc(99))
	select {
	case m := <-ch:
		if m.Key != "live" {
			t.Fatalf("live key %q", m.Key)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live mutation not delivered")
	}
}

func TestStreamFromMidpoint(t *testing.T) {
	s := NewKVStore()
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("k%d", i), doc(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := s.Stream(ctx, 7)
	var seqs []int64
	for i := 0; i < 3; i++ {
		m := <-ch
		seqs = append(seqs, m.Seq)
	}
	if seqs[0] != 8 || seqs[2] != 10 {
		t.Fatalf("seqs: %v", seqs)
	}
}

func TestShadowLinkCatchUp(t *testing.T) {
	s := NewKVStore()
	sink := newMemSink()
	for i := 0; i < 20; i++ {
		s.Set(fmt.Sprintf("k%d", i), doc(i))
	}
	s.Delete("k3")
	s.Delete("k7")
	link := &ShadowLink{Store: s, Sink: sink, Dataset: "Shadow", PKField: "id"}
	if err := link.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.len() != 18 {
		t.Fatalf("shadow has %d docs, want 18", sink.len())
	}
	if link.Lag() != 0 {
		t.Fatalf("lag = %d", link.Lag())
	}
	// More mutations; catch up again.
	s.Set("new", doc(100))
	if link.Lag() != 1 {
		t.Fatalf("lag after new mutation = %d", link.Lag())
	}
	if err := link.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.len() != 19 {
		t.Fatalf("shadow has %d docs after second catch-up", sink.len())
	}
}

func TestShadowLinkInjectsKey(t *testing.T) {
	s := NewKVStore()
	sink := newMemSink()
	// Document without an id field: the KV key must be injected.
	s.Set("the-key", adm.NewObject(adm.Field{Name: "v", Value: adm.Int64(1)}))
	link := &ShadowLink{Store: s, Sink: sink, Dataset: "Shadow"}
	if err := link.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.len() != 1 {
		t.Fatal("document not shadowed")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for k := range sink.docs {
		if k != `"the-key"` {
			t.Fatalf("injected key = %s", k)
		}
	}
}

func TestShadowLinkLive(t *testing.T) {
	s := NewKVStore()
	sink := newMemSink()
	link := &ShadowLink{Store: s, Sink: sink, Dataset: "Shadow", PKField: "id"}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- link.Run(ctx, 0) }()
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("k%d", i), doc(i))
	}
	deadline := time.After(3 * time.Second)
	for link.Applied() < 50 {
		select {
		case <-deadline:
			t.Fatalf("shadow only applied %d of 50", link.Applied())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	<-done
	if sink.len() != 50 {
		t.Fatalf("shadow docs = %d", sink.len())
	}
}
