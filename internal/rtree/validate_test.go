package rtree

import "testing"

func TestValidateDetectsLooseMBR(t *testing.T) {
	tr := New()
	for _, e := range randomPoints(300, 3) {
		tr.Insert(e.Rect, e.Payload)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("healthy tree failed validation: %v", err)
	}
	saved := tr.root.rect
	tr.root.rect = Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}
	if err := tr.Validate(); err == nil {
		t.Fatal("validator missed a loose (non-tight) MBR")
	}
	tr.root.rect = saved
}

func TestValidateDetectsCountDrift(t *testing.T) {
	tr := New()
	for _, e := range randomPoints(50, 4) {
		tr.Insert(e.Rect, e.Payload)
	}
	tr.count++
	if err := tr.Validate(); err == nil {
		t.Fatal("validator missed an entry-count drift")
	}
	tr.count--
}
