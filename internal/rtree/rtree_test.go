package rtree

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"asterix/internal/check"
	"asterix/internal/storage"
)

func payload(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func randomPoints(n int, seed int64) []Entry {
	r := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		x, y := r.Float64()*1000, r.Float64()*1000
		es[i] = Entry{Rect: PointRect(x, y), Payload: payload(i)}
	}
	return es
}

// bruteSearch is the reference implementation.
func bruteSearch(es []Entry, q Rect) map[int]bool {
	out := map[int]bool{}
	for _, e := range es {
		if q.Intersects(e.Rect) {
			out[int(binary.BigEndian.Uint64(e.Payload))] = true
		}
	}
	return out
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlap not detected")
	}
	c := Rect{11, 11, 12, 12}
	if a.Intersects(c) {
		t.Error("false overlap")
	}
	if got := a.Union(b); got != (Rect{0, 0, 15, 15}) {
		t.Errorf("union = %v", got)
	}
	if !a.Contains(Rect{1, 1, 2, 2}) || a.Contains(b) {
		t.Error("contains wrong")
	}
	if a.Area() != 100 {
		t.Errorf("area = %f", a.Area())
	}
	// Touching boundaries count as intersecting (closed rectangles).
	if !a.Intersects(Rect{10, 10, 20, 20}) {
		t.Error("touching rects must intersect")
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	es := randomPoints(2000, 42)
	tr := New()
	for _, e := range es {
		tr.Insert(e.Rect, e.Payload)
	}
	if tr.Len() != len(es) {
		t.Fatalf("len = %d", tr.Len())
	}
	check.MustValidate(t, tr)
	r := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		x, y := r.Float64()*900, r.Float64()*900
		query := Rect{x, y, x + r.Float64()*100, y + r.Float64()*100}
		want := bruteSearch(es, query)
		got := map[int]bool{}
		tr.Search(query, func(e Entry) bool {
			got[int(binary.BigEndian.Uint64(e.Payload))] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d, want %d", query, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("query %v: missing %d", query, k)
			}
		}
	}
}

func TestNonPointRects(t *testing.T) {
	tr := New()
	// Overlapping regions (non-point data, the R-tree's advantage per
	// Section V-B).
	for i := 0; i < 100; i++ {
		x := float64(i)
		tr.Insert(Rect{x, 0, x + 10, 10}, payload(i))
	}
	count := 0
	tr.Search(Rect{50, 5, 52, 6}, func(e Entry) bool { count++; return true })
	// Rects with x in [40..52] overlap the query.
	if count != 13 {
		t.Errorf("overlap count = %d, want 13", count)
	}
}

func TestDelete(t *testing.T) {
	es := randomPoints(500, 9)
	tr := New()
	for _, e := range es {
		tr.Insert(e.Rect, e.Payload)
	}
	for i, e := range es {
		if i%2 == 0 {
			if !tr.Delete(e.Rect, e.Payload) {
				t.Fatalf("delete %d failed", i)
			}
		}
	}
	if tr.Len() != 250 {
		t.Errorf("len = %d", tr.Len())
	}
	everything := Rect{-1e18, -1e18, 1e18, 1e18}
	got := map[int]bool{}
	tr.Search(everything, func(e Entry) bool {
		got[int(binary.BigEndian.Uint64(e.Payload))] = true
		return true
	})
	for i := range es {
		want := i%2 == 1
		if got[i] != want {
			t.Fatalf("entry %d presence = %v, want %v", i, got[i], want)
		}
	}
	if tr.Delete(PointRect(-999, -999), payload(0)) {
		t.Error("deleting absent entry should return false")
	}
	// MBRs must have been tightened correctly by the deletions.
	check.MustValidate(t, tr)
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for _, e := range randomPoints(100, 3) {
		tr.Insert(e.Rect, e.Payload)
	}
	n := 0
	tr.Search(Rect{-1e18, -1e18, 1e18, 1e18}, func(e Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func newBC(t testing.TB, pageSize, frames int) (*storage.BufferCache, storage.FileID) {
	t.Helper()
	fm, err := storage.NewFileManager(t.TempDir(), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	bc := storage.NewBufferCache(fm, frames)
	id, err := fm.Open("rt")
	if err != nil {
		t.Fatal(err)
	}
	return bc, id
}

func TestDiskRTreeMatchesBruteForce(t *testing.T) {
	es := randomPoints(3000, 11)
	bc, id := newBC(t, 1024, 256)
	dt, err := BuildDisk(bc, id, append([]Entry(nil), es...))
	if err != nil {
		t.Fatal(err)
	}
	if dt.Count() != int64(len(es)) {
		t.Fatalf("count = %d", dt.Count())
	}
	r := rand.New(rand.NewSource(13))
	for q := 0; q < 40; q++ {
		x, y := r.Float64()*900, r.Float64()*900
		query := Rect{x, y, x + r.Float64()*120, y + r.Float64()*120}
		want := bruteSearch(es, query)
		got := map[int]bool{}
		err := dt.Search(query, func(e Entry) bool {
			got[int(binary.BigEndian.Uint64(e.Payload))] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
	}
}

func TestDiskRTreeReopen(t *testing.T) {
	es := randomPoints(500, 21)
	fm, err := storage.NewFileManager(t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	bc := storage.NewBufferCache(fm, 64)
	id, _ := fm.Open("rt")
	if _, err := BuildDisk(bc, id, append([]Entry(nil), es...)); err != nil {
		t.Fatal(err)
	}
	if err := bc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	dt, err := OpenDisk(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	dt.Search(Rect{-1e18, -1e18, 1e18, 1e18}, func(e Entry) bool { n++; return true })
	if n != len(es) {
		t.Fatalf("full scan found %d of %d", n, len(es))
	}
}

func TestDiskRTreeEmpty(t *testing.T) {
	bc, id := newBC(t, 1024, 16)
	dt, err := BuildDisk(bc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := dt.Search(Rect{0, 0, 1, 1}, func(e Entry) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("empty tree returned %d entries", n)
	}
}

func TestDiskRTreeVariablePayloads(t *testing.T) {
	var es []Entry
	for i := 0; i < 200; i++ {
		es = append(es, Entry{
			Rect:    PointRect(float64(i), float64(i)),
			Payload: []byte(fmt.Sprintf("payload-%d-%s", i, string(make([]byte, i%50)))),
		})
	}
	bc, id := newBC(t, 512, 128)
	dt, err := BuildDisk(bc, id, append([]Entry(nil), es...))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	dt.Search(Rect{-1, -1, 300, 300}, func(e Entry) bool { got++; return true })
	if got != len(es) {
		t.Errorf("got %d of %d", got, len(es))
	}
}

func BenchmarkMemInsert(b *testing.B) {
	es := randomPoints(b.N+1, 1)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(es[i].Rect, es[i].Payload)
	}
}

func BenchmarkMemSearch(b *testing.B) {
	tr := New()
	for _, e := range randomPoints(50000, 2) {
		tr.Insert(e.Rect, e.Payload)
	}
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := r.Float64()*990, r.Float64()*990
		tr.Search(Rect{x, y, x + 10, y + 10}, func(e Entry) bool { return true })
	}
}
