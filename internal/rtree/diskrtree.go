package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"asterix/internal/storage"
)

// DiskRTree is an immutable R-tree packed bottom-up into a page file with
// the STR (Sort-Tile-Recursive) algorithm. It is the disk-component form
// of the LSM R-tree: built once by a flush or merge, then only searched.
type DiskRTree struct {
	bc   *storage.BufferCache
	file storage.FileID

	root   int32
	height int32
	count  int64
}

const (
	diskMetaPage = int32(0)
	diskInterior = 0
	diskLeaf     = 1
)

// BuildDisk packs entries (any order; they are STR-sorted in place) into a
// fresh file and returns the tree.
func BuildDisk(bc *storage.BufferCache, file storage.FileID, entries []Entry) (*DiskRTree, error) {
	if n, err := bc.FileManager().NumPages(file); err != nil {
		return nil, err
	} else if n != 0 {
		return nil, fmt.Errorf("rtree: BuildDisk requires an empty file")
	}
	t := &DiskRTree{bc: bc, file: file, count: int64(len(entries))}
	mp, err := bc.NewPage(file)
	if err != nil {
		return nil, err
	}
	defer bc.Unpin(mp, true)

	pageSize := bc.FileManager().PageSize()
	// Estimate leaf capacity from page size and typical entry size.
	nodeCap := (pageSize - 8) / 48
	if nodeCap < 2 {
		nodeCap = 2
	}
	STRSort(entries, nodeCap)

	type packed struct {
		rect Rect
		page int32
	}
	var level []packed

	// Pack leaves.
	i := 0
	for i < len(entries) {
		p, err := bc.NewPage(file)
		if err != nil {
			return nil, err
		}
		n := 0
		pos := 3
		var rect Rect
		for i+n < len(entries) {
			e := entries[i+n]
			need := 32 + uvarLen(len(e.Payload)) + len(e.Payload)
			if pos+need > pageSize || n >= nodeCap {
				break
			}
			putRect(p.Data[pos:], e.Rect)
			pos += 32
			pos += binary.PutUvarint(p.Data[pos:], uint64(len(e.Payload)))
			pos += copy(p.Data[pos:], e.Payload)
			if n == 0 {
				rect = e.Rect
			} else {
				rect = rect.Union(e.Rect)
			}
			n++
		}
		if n == 0 {
			bc.Unpin(p, false)
			return nil, fmt.Errorf("rtree: entry too large for page")
		}
		p.Data[0] = diskLeaf
		binary.BigEndian.PutUint16(p.Data[1:], uint16(n))
		level = append(level, packed{rect: rect, page: p.ID.Num})
		bc.Unpin(p, true)
		i += n
	}
	t.height = 1
	if len(level) == 0 {
		// Empty tree: a single empty leaf.
		p, err := bc.NewPage(file)
		if err != nil {
			return nil, err
		}
		p.Data[0] = diskLeaf
		level = append(level, packed{page: p.ID.Num})
		bc.Unpin(p, true)
	}

	// Pack interior levels.
	interiorCap := (pageSize - 3) / 36
	for len(level) > 1 {
		var next []packed
		for off := 0; off < len(level); {
			p, err := bc.NewPage(file)
			if err != nil {
				return nil, err
			}
			n := 0
			pos := 3
			var rect Rect
			for off+n < len(level) && n < interiorCap && pos+36 <= pageSize {
				c := level[off+n]
				putRect(p.Data[pos:], c.rect)
				pos += 32
				binary.BigEndian.PutUint32(p.Data[pos:], uint32(c.page))
				pos += 4
				if n == 0 {
					rect = c.rect
				} else {
					rect = rect.Union(c.rect)
				}
				n++
			}
			p.Data[0] = diskInterior
			binary.BigEndian.PutUint16(p.Data[1:], uint16(n))
			next = append(next, packed{rect: rect, page: p.ID.Num})
			bc.Unpin(p, true)
			off += n
		}
		level = next
		t.height++
	}
	t.root = level[0].page
	binary.BigEndian.PutUint32(mp.Data[0:], uint32(t.root))
	binary.BigEndian.PutUint32(mp.Data[4:], uint32(t.height))
	binary.BigEndian.PutUint64(mp.Data[8:], uint64(t.count))
	return t, nil
}

// OpenDisk opens an existing packed R-tree file.
func OpenDisk(bc *storage.BufferCache, file storage.FileID) (*DiskRTree, error) {
	mp, err := bc.Pin(storage.PageID{File: file, Num: diskMetaPage})
	if err != nil {
		return nil, err
	}
	t := &DiskRTree{bc: bc, file: file}
	t.root = int32(binary.BigEndian.Uint32(mp.Data[0:]))
	t.height = int32(binary.BigEndian.Uint32(mp.Data[4:]))
	t.count = int64(binary.BigEndian.Uint64(mp.Data[8:]))
	bc.Unpin(mp, false)
	return t, nil
}

// Count returns the number of entries.
func (t *DiskRTree) Count() int64 { return t.count }

// Search visits all entries intersecting query; fn returning false stops.
func (t *DiskRTree) Search(query Rect, fn func(e Entry) bool) error {
	_, err := t.search(t.root, query, fn)
	return err
}

func (t *DiskRTree) search(page int32, query Rect, fn func(e Entry) bool) (bool, error) {
	p, err := t.bc.Pin(storage.PageID{File: t.file, Num: page})
	if err != nil {
		return false, err
	}
	leaf := p.Data[0] == diskLeaf
	n := int(binary.BigEndian.Uint16(p.Data[1:]))
	if leaf {
		pos := 3
		for i := 0; i < n; i++ {
			r := getRect(p.Data[pos:])
			pos += 32
			l, m := binary.Uvarint(p.Data[pos:])
			pos += m
			payload := p.Data[pos : pos+int(l)]
			pos += int(l)
			if query.Intersects(r) {
				e := Entry{Rect: r, Payload: append([]byte(nil), payload...)}
				if !fn(e) {
					t.bc.Unpin(p, false)
					return false, nil
				}
			}
		}
		t.bc.Unpin(p, false)
		return true, nil
	}
	// Copy child refs out before unpinning, then recurse.
	type childRef struct {
		rect Rect
		page int32
	}
	var kids []childRef
	pos := 3
	for i := 0; i < n; i++ {
		r := getRect(p.Data[pos:])
		pos += 32
		c := int32(binary.BigEndian.Uint32(p.Data[pos:]))
		pos += 4
		if query.Intersects(r) {
			kids = append(kids, childRef{r, c})
		}
	}
	t.bc.Unpin(p, false)
	for _, k := range kids {
		cont, err := t.search(k.page, query, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

func putRect(buf []byte, r Rect) {
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(r.MinX))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(r.MinY))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(r.MaxX))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(r.MaxY))
}

func getRect(buf []byte) Rect {
	return Rect{
		MinX: math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
		MinY: math.Float64frombits(binary.BigEndian.Uint64(buf[8:])),
		MaxX: math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
		MaxY: math.Float64frombits(binary.BigEndian.Uint64(buf[24:])),
	}
}

func uvarLen(x int) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
