// Package rtree implements R-trees for spatial indexing: an in-memory
// R-tree with quadratic split (used as an LSM memory component and for
// standalone indexing) and an immutable, STR-bulk-packed on-disk R-tree
// (used as an LSM disk component). Per the paper's Section V-B conclusion,
// the R-tree is the spatial index AsterixDB ships: it handles point and
// non-point data alike; point entries are stored without degenerate
// bounding boxes (the "small improvement for storage efficiency" the paper
// mentions is reflected here by the packed point-leaf format).
package rtree

import (
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle (a point has Min == Max).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// PointRect makes a degenerate rectangle for a point.
func PointRect(x, y float64) Rect { return Rect{x, y, x, y} }

// Intersects reports rectangle overlap (closed boundaries).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether o lies fully inside r.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && r.MinY <= o.MinY && r.MaxX >= o.MaxX && r.MaxY >= o.MaxY
}

// Union returns the bounding box of both rectangles.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// enlargement returns the area growth of r needed to include o.
func (r Rect) enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

// Entry is a spatial key with an opaque payload (typically an encoded
// primary key).
type Entry struct {
	Rect    Rect
	Payload []byte
}

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5
)

type memNode struct {
	leaf     bool
	rect     Rect
	entries  []Entry    // leaf
	children []*memNode // interior
}

// RTree is an in-memory R-tree with quadratic node splitting.
type RTree struct {
	root  *memNode
	count int
}

// New creates an empty in-memory R-tree.
func New() *RTree {
	return &RTree{root: &memNode{leaf: true}}
}

// Len returns the number of entries.
func (t *RTree) Len() int { return t.count }

// Insert adds an entry.
func (t *RTree) Insert(rect Rect, payload []byte) {
	e := Entry{Rect: rect, Payload: append([]byte(nil), payload...)}
	n1, n2 := t.insert(t.root, e)
	if n2 != nil {
		// Root split.
		root := &memNode{leaf: false, children: []*memNode{n1, n2}}
		root.rect = n1.rect.Union(n2.rect)
		t.root = root
	}
	t.count++
}

func (t *RTree) insert(n *memNode, e Entry) (*memNode, *memNode) {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) == 1 {
			n.rect = e.Rect
		} else {
			n.rect = n.rect.Union(e.Rect)
		}
		if len(n.entries) > maxEntries {
			return t.splitLeaf(n)
		}
		return n, nil
	}
	// Choose the child needing least enlargement (ties: smaller area).
	best := 0
	bestEnl := math.Inf(1)
	for i, c := range n.children {
		enl := c.rect.enlargement(e.Rect)
		if enl < bestEnl || (enl == bestEnl && c.rect.Area() < n.children[best].rect.Area()) {
			best, bestEnl = i, enl
		}
	}
	c1, c2 := t.insert(n.children[best], e)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
	}
	n.rect = n.children[0].rect
	for _, c := range n.children[1:] {
		n.rect = n.rect.Union(c.rect)
	}
	if len(n.children) > maxEntries {
		return t.splitInterior(n)
	}
	return n, nil
}

// quadratic seed selection: the pair wasting the most area together.
func pickSeeds(rects []Rect) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

func (t *RTree) splitLeaf(n *memNode) (*memNode, *memNode) {
	rects := make([]Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.Rect
	}
	g1, g2 := quadraticPartition(rects)
	a := &memNode{leaf: true}
	b := &memNode{leaf: true}
	for _, i := range g1 {
		a.entries = append(a.entries, n.entries[i])
	}
	for _, i := range g2 {
		b.entries = append(b.entries, n.entries[i])
	}
	a.recomputeRect()
	b.recomputeRect()
	return a, b
}

func (t *RTree) splitInterior(n *memNode) (*memNode, *memNode) {
	rects := make([]Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	g1, g2 := quadraticPartition(rects)
	a := &memNode{}
	b := &memNode{}
	for _, i := range g1 {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range g2 {
		b.children = append(b.children, n.children[i])
	}
	a.recomputeRect()
	b.recomputeRect()
	return a, b
}

func (n *memNode) recomputeRect() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.rect = Rect{}
			return
		}
		n.rect = n.entries[0].Rect
		for _, e := range n.entries[1:] {
			n.rect = n.rect.Union(e.Rect)
		}
		return
	}
	if len(n.children) == 0 {
		n.rect = Rect{}
		return
	}
	n.rect = n.children[0].rect
	for _, c := range n.children[1:] {
		n.rect = n.rect.Union(c.rect)
	}
}

// quadraticPartition splits indices 0..len(rects)-1 into two groups per
// Guttman's quadratic algorithm.
func quadraticPartition(rects []Rect) (g1, g2 []int) {
	s1, s2 := pickSeeds(rects)
	g1 = []int{s1}
	g2 = []int{s2}
	r1, r2 := rects[s1], rects[s2]
	assigned := make([]bool, len(rects))
	assigned[s1], assigned[s2] = true, true
	remaining := len(rects) - 2
	for remaining > 0 {
		// Force-assign if one group must take everything to reach min.
		if len(g1)+remaining == minEntries {
			for i := range rects {
				if !assigned[i] {
					g1 = append(g1, i)
					r1 = r1.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		if len(g2)+remaining == minEntries {
			for i := range rects {
				if !assigned[i] {
					g2 = append(g2, i)
					r2 = r2.Union(rects[i])
					assigned[i] = true
				}
			}
			break
		}
		// Pick the entry with max preference difference.
		best, bestDiff, bestTo1 := -1, -1.0, true
		for i := range rects {
			if assigned[i] {
				continue
			}
			d1 := r1.enlargement(rects[i])
			d2 := r2.enlargement(rects[i])
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, best, bestTo1 = diff, i, d1 < d2
			}
		}
		if bestTo1 {
			g1 = append(g1, best)
			r1 = r1.Union(rects[best])
		} else {
			g2 = append(g2, best)
			r2 = r2.Union(rects[best])
		}
		assigned[best] = true
		remaining--
	}
	return g1, g2
}

// Search visits all entries whose rectangles intersect query. fn returning
// false stops the search.
func (t *RTree) Search(query Rect, fn func(e Entry) bool) {
	t.search(t.root, query, fn)
}

func (t *RTree) search(n *memNode, query Rect, fn func(e Entry) bool) bool {
	if n.leaf {
		for _, e := range n.entries {
			if query.Intersects(e.Rect) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if query.Intersects(c.rect) {
			if !t.search(c, query, fn) {
				return false
			}
		}
	}
	return true
}

// Delete removes one entry matching rect and payload exactly, reporting
// whether one was found. Underfull nodes are not condensed (lazy deletion,
// mirroring the LSM antimatter design where deletes are logical anyway).
func (t *RTree) Delete(rect Rect, payload []byte) bool {
	if t.deleteRec(t.root, rect, payload) {
		t.count--
		return true
	}
	return false
}

func (t *RTree) deleteRec(n *memNode, rect Rect, payload []byte) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.Rect == rect && bytesEqual(e.Payload, payload) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recomputeRect()
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if c.rect.Intersects(rect) && t.deleteRec(c, rect, payload) {
			n.recomputeRect()
			return true
		}
	}
	return false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// All visits every entry (used when flushing a memory component).
func (t *RTree) All(fn func(e Entry) bool) {
	t.Search(Rect{math.Inf(-1), math.Inf(-1), math.Inf(1), math.Inf(1)}, fn)
}

// STRSort orders entries by the Sort-Tile-Recursive packing order (sort by
// x-center into vertical slices, then by y-center within each slice),
// which is how disk components are bulk-packed.
func STRSort(entries []Entry, nodeCap int) {
	if len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.MinX+entries[i].Rect.MaxX < entries[j].Rect.MinX+entries[j].Rect.MaxX
	})
	leaves := (len(entries) + nodeCap - 1) / nodeCap
	sliceCount := int(math.Ceil(math.Sqrt(float64(leaves))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	sliceSize := sliceCount * nodeCap
	for off := 0; off < len(entries); off += sliceSize {
		end := off + sliceSize
		if end > len(entries) {
			end = len(entries)
		}
		s := entries[off:end]
		sort.Slice(s, func(i, j int) bool {
			return s[i].Rect.MinY+s[i].Rect.MaxY < s[j].Rect.MinY+s[j].Rect.MaxY
		})
	}
}
