package rtree

import "fmt"

// Validate verifies the in-memory R-tree's structural invariants:
//
//   - every node's MBR is exactly the union of its children's MBRs
//     (leaves: of its entries' rectangles) — containment alone would let
//     bounding boxes drift loose after deletes and silently degrade
//     search pruning, so equality is enforced;
//   - leaves carry entries and no children; interior nodes the reverse;
//   - no node exceeds maxEntries (lazy deletion means no minimum);
//   - all leaves sit at the same depth;
//   - the entry count matches Len().
//
// O(n); intended for tests and opt-in check hooks.
func (t *RTree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	total := 0
	leafDepth := -1
	var walk func(n *memNode, depth int) error
	walk = func(n *memNode, depth int) error {
		if n.leaf {
			if len(n.children) != 0 {
				return fmt.Errorf("rtree: leaf at depth %d has %d children", depth, len(n.children))
			}
			if len(n.entries) > maxEntries {
				return fmt.Errorf("rtree: leaf holds %d entries, max is %d", len(n.entries), maxEntries)
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d, want uniform", leafDepth, depth)
			}
			total += len(n.entries)
			if len(n.entries) > 0 {
				mbr := n.entries[0].Rect
				for _, e := range n.entries[1:] {
					mbr = mbr.Union(e.Rect)
				}
				if n.rect != mbr {
					return fmt.Errorf("rtree: leaf MBR %v is not the union %v of its entries", n.rect, mbr)
				}
			}
			return nil
		}
		if len(n.entries) != 0 {
			return fmt.Errorf("rtree: interior node at depth %d has %d entries", depth, len(n.entries))
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: interior node at depth %d has no children", depth)
		}
		if len(n.children) > maxEntries {
			return fmt.Errorf("rtree: interior node holds %d children, max is %d", len(n.children), maxEntries)
		}
		mbr := n.children[0].rect
		for _, c := range n.children[1:] {
			mbr = mbr.Union(c.rect)
		}
		if n.rect != mbr {
			return fmt.Errorf("rtree: interior MBR %v is not the union %v of its children", n.rect, mbr)
		}
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("rtree: nodes hold %d entries, count says %d", total, t.count)
	}
	return nil
}
