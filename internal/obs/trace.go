package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WaitKind classifies time a query spent blocked rather than computing:
// the wait-attribution categories threaded through the governor, the lock
// manager, the LSM, and the executor. A span accumulates nanoseconds per
// kind, so a slow query's trace answers "where did the time go" — was it
// queued for memory admission, stuck behind a record lock, or grinding
// through spill/flush/merge I/O.
type WaitKind int32

// Wait categories.
const (
	// WaitAdmission is time queued in the memory governor waiting for a
	// working-memory reservation (job admission, standalone reserves).
	WaitAdmission WaitKind = iota
	// WaitLock is time blocked on a record lock in the transaction
	// manager (including waits that ended in ErrLockTimeout).
	WaitLock
	// WaitSpill is run-file spill I/O in memory-governed operators
	// (sort, join, group-by) — writing and re-reading spilled runs.
	WaitSpill
	// WaitFlush is LSM memory-component flush I/O charged to the writer
	// whose put crossed the budget (including governor-arbitrated
	// flushes it waited on).
	WaitFlush
	// WaitMerge is LSM disk-component merge I/O charged to the writer
	// whose flush triggered the merge policy.
	WaitMerge
	// WaitExchange is time a task spent stalled on frame exchange —
	// blocked sends into a full downstream connector channel (recorded
	// only under detailed profiling: it is a per-frame hot path).
	WaitExchange
	// WaitNet is time a task spent stalled on the network transport:
	// blocked on a remote consumer's credit window, on a TCP write into
	// a congested link, or on an injected network delay. The exchange
	// kind covers in-process connector stalls; this one covers the wire.
	WaitNet

	numWaitKinds
)

var waitKindNames = [numWaitKinds]string{
	"admission", "lock", "spill", "flush", "merge", "exchange", "net",
}

// String names the category as it appears in logs and span counters.
func (k WaitKind) String() string {
	if k < 0 || k >= numWaitKinds {
		return "unknown"
	}
	return waitKindNames[k]
}

// WaitProfile is a per-category wait-time rollup (one Duration per
// WaitKind).
type WaitProfile [numWaitKinds]time.Duration

// Total sums all categories.
func (p WaitProfile) Total() time.Duration {
	var t time.Duration
	for _, d := range p {
		t += d
	}
	return t
}

// TopN renders the n largest nonzero categories as
// "admission=120ms lock=40ms spill=8ms" (empty string when all zero).
func (p WaitProfile) TopN(n int) string {
	type kv struct {
		k WaitKind
		d time.Duration
	}
	var top []kv
	for k, d := range p {
		if d > 0 {
			top = append(top, kv{WaitKind(k), d})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].d != top[j].d {
			return top[i].d > top[j].d
		}
		return top[i].k < top[j].k
	})
	if n > 0 && len(top) > n {
		top = top[:n]
	}
	parts := make([]string, len(top))
	for i, e := range top {
		parts[i] = fmt.Sprintf("%s=%s", e.k, e.d.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}

// Span is one timed node in a per-query trace tree: the statement
// lifecycle (parse → compile → execute) down to per-operator,
// per-partition tasks inside the Hyracks executor.
//
// All methods are nil-safe no-ops, so code paths instrument
// unconditionally and pay one nil check when tracing is off. The hot
// executor counters (tuples, spills) are dedicated atomic fields rather
// than map entries so per-tuple accounting never takes a lock.
type Span struct {
	name     string
	start    time.Time
	durNanos int64 // set by End (atomic); 0 = still running
	detailed int32 // propagate per-operator tracing (atomic bool)

	// Hot executor counters (atomic).
	tuplesIn  int64
	tuplesOut int64
	spills    int64

	// Wait-time attribution in nanoseconds per category (atomic).
	waits [numWaitKinds]int64

	mu       sync.Mutex
	counters map[string]int64
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and attaches a child span, inheriting the detailed
// flag. Nil-safe: returns nil on a nil span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	atomic.StoreInt32(&c.detailed, atomic.LoadInt32(&s.detailed))
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	atomic.CompareAndSwapInt64(&s.durNanos, 0, int64(time.Since(s.start))|1)
}

// Duration returns the span's duration (time so far if still running).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if d := atomic.LoadInt64(&s.durNanos); d != 0 {
		return time.Duration(d)
	}
	return time.Since(s.start)
}

// SetDetailed turns per-operator tracing on or off for this span and
// children started afterwards.
func (s *Span) SetDetailed(on bool) {
	if s == nil {
		return
	}
	v := int32(0)
	if on {
		v = 1
	}
	atomic.StoreInt32(&s.detailed, v)
}

// Detailed reports whether per-operator tracing is requested. Nil-safe
// (false), so the executor's check is `span.Detailed()` with no nil test.
func (s *Span) Detailed() bool {
	return s != nil && atomic.LoadInt32(&s.detailed) != 0
}

// Add accumulates a named counter on the span (cold path: takes a lock).
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[key] += n
	s.mu.Unlock()
}

// AddTuplesIn counts tuples received by this span's task.
func (s *Span) AddTuplesIn(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.tuplesIn, n)
}

// AddTuplesOut counts tuples emitted by this span's task.
func (s *Span) AddTuplesOut(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.tuplesOut, n)
}

// AddSpill counts one run-file spill in this span's task.
func (s *Span) AddSpill() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.spills, 1)
}

// AddWait attributes blocked time to a wait category. Nil-safe and
// atomic: governor, lock-manager, LSM, and operator code call it
// unconditionally from any goroutine.
func (s *Span) AddWait(k WaitKind, d time.Duration) {
	if s == nil || d <= 0 || k < 0 || k >= numWaitKinds {
		return
	}
	atomic.AddInt64(&s.waits[k], int64(d))
}

// Waits snapshots this span's own wait times (no descendants).
func (s *Span) Waits() WaitProfile {
	var p WaitProfile
	if s == nil {
		return p
	}
	for k := range p {
		p[k] = time.Duration(atomic.LoadInt64(&s.waits[k]))
	}
	return p
}

// WaitRollup sums wait times over the span and all descendants — the
// per-query "where did the blocked time go" profile the slow-query log
// prints.
func (s *Span) WaitRollup() WaitProfile {
	var p WaitProfile
	if s == nil {
		return p
	}
	for k := range p {
		p[k] = time.Duration(atomic.LoadInt64(&s.waits[k]))
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		cp := c.WaitRollup()
		for k := range p {
			p[k] += cp[k]
		}
	}
	return p
}

// TotalFor sums the durations of all descendant spans (including s) with
// the exact name — e.g. TotalFor("parse") over a request tree.
func (s *Span) TotalFor(name string) time.Duration {
	if s == nil {
		return 0
	}
	var total time.Duration
	if s.name == name {
		total += s.Duration()
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		total += c.TotalFor(name)
	}
	return total
}

// SpanNode is the exported, JSON-friendly form of a span tree.
type SpanNode struct {
	Name       string           `json:"name"`
	DurationUS int64            `json:"durationUs"`
	Duration   string           `json:"duration"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanNode      `json:"children,omitempty"`
}

// Tree snapshots the span and its descendants. Running spans report time
// elapsed so far. Nil-safe: returns nil.
func (s *Span) Tree() *SpanNode {
	if s == nil {
		return nil
	}
	d := s.Duration()
	n := &SpanNode{
		Name:       s.name,
		DurationUS: d.Microseconds(),
		Duration:   d.String(),
	}
	var counters map[string]int64
	add := func(k string, v int64) {
		if v == 0 {
			return
		}
		if counters == nil {
			counters = map[string]int64{}
		}
		counters[k] += v
	}
	add("tuplesIn", atomic.LoadInt64(&s.tuplesIn))
	add("tuplesOut", atomic.LoadInt64(&s.tuplesOut))
	add("spills", atomic.LoadInt64(&s.spills))
	for k := WaitKind(0); k < numWaitKinds; k++ {
		if ns := atomic.LoadInt64(&s.waits[k]); ns > 0 {
			// Round up so a recorded sub-microsecond wait still shows.
			add("wait."+k.String()+".us", (ns+999)/1000)
		}
	}
	s.mu.Lock()
	for k, v := range s.counters {
		add(k, v)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	n.Counters = counters
	for _, c := range kids {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil — and nil composes
// with every nil-safe Span method, so callers never branch.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
