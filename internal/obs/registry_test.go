package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same counter.
	if r.Counter("x_ops_total", "ops").Value() != 5 {
		t.Fatal("re-lookup lost the counter")
	}
	g := r.Gauge("x_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc() // must not panic
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.RegisterFunc("d", "", TypeGauge, func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var s *Span
	s.End()
	s.Add("k", 1)
	s.AddTuplesIn(1)
	s.AddSpill()
	if s.StartChild("x") != nil || s.Tree() != nil || s.Detailed() {
		t.Fatal("nil span not inert")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_duration_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() < 5.5 || h.Sum() > 5.6 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`q_duration_seconds_bucket{le="0.01"} 1`,
		`q_duration_seconds_bucket{le="0.1"} 2`,
		`q_duration_seconds_bucket{le="1"} 3`,
		`q_duration_seconds_bucket{le="+Inf"} 4`,
		`q_duration_seconds_count 4`,
		`# TYPE q_duration_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterFuncAndExposition(t *testing.T) {
	r := NewRegistry()
	n := 42.0
	r.RegisterFunc("sub_thing_total", "callback counter", TypeCounter, func() float64 { return n })
	r.Counter("a_ops_total", "first alphabetically").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# HELP sub_thing_total callback counter\n# TYPE sub_thing_total counter\nsub_thing_total 42\n") {
		t.Errorf("callback exposition wrong:\n%s", out)
	}
	// Output is name-sorted.
	if strings.Index(out, "a_ops_total") > strings.Index(out, "sub_thing_total") {
		t.Error("exposition not sorted by name")
	}
	snap := r.Snapshot()
	if snap["sub_thing_total"] != 42.0 {
		t.Errorf("snapshot callback = %v", snap["sub_thing_total"])
	}
	if snap["a_ops_total"] != int64(1) {
		t.Errorf("snapshot counter = %v", snap["a_ops_total"])
	}
}

// TestConcurrentRegistry hammers get-or-create, updates, and scrapes from
// many goroutines (run under -race by the verify target).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("shared_gauge", "").Add(1)
				r.Histogram("shared_hist", "", nil).Observe(float64(j) / 1000)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
			r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("lost counter updates: %d", got)
	}
	if got := r.Histogram("shared_hist", "", nil).Count(); got != 8000 {
		t.Fatalf("lost observations: %d", got)
	}
}
