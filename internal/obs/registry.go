// Package obs is the dependency-free observability layer shared by every
// subsystem: a concurrent metrics registry (counters, gauges, fixed-bucket
// histograms, scrape-time callbacks) with Prometheus-text and JSON
// exposition, plus a lightweight per-query span tracer (trace.go).
//
// Metric naming convention: <subsystem>_<name>_<unit>, e.g.
// storage_buffercache_hits_total, lsm_flush_duration_seconds.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, or *Registry are no-ops, so instrumented code needs no
// "is observability enabled?" branches — an unwired subsystem pays one
// predictable nil check per event.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// MetricType classifies a metric for exposition.
type MetricType string

// Metric types (Prometheus TYPE names).
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (d must be >= 0 for Prometheus semantics).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// DefBuckets are the default histogram bucket upper bounds, tuned for
// durations in seconds from 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free atomic adds.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []int64   // len(bounds)+1, last is +Inf
	count  int64
	sumBits uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		new := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	typ  MetricType

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // scrape-time callback (counter or gauge)
}

// Registry is a concurrent, name-keyed metric registry. The zero value is
// not usable; create one with NewRegistry. All methods are safe for
// concurrent use, and get-or-create lookups are idempotent so independent
// subsystems may share a metric by name.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) lookup(name string) (*metric, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	return m, ok
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op handle) on a nil registry or a name already registered as a
// different type.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name); ok {
		return m.counter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, typ: TypeCounter, counter: c}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name); ok {
		return m.gauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, help: help, typ: TypeGauge, gauge: g}
	return g
}

// Histogram returns the named histogram, creating it with the bucket upper
// bounds on first use (nil buckets = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name); ok {
		return m.hist
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.hist
	}
	h := newHistogram(buckets)
	r.metrics[name] = &metric{name: name, help: help, typ: TypeHistogram, hist: h}
	return h
}

// RegisterFunc registers a scrape-time callback exposed as typ (counter or
// gauge). Subsystems with existing private counters publish them this way
// without double accounting; fn must be safe for concurrent use.
// Re-registering a name replaces the callback.
func (r *Registry) RegisterFunc(name, help string, typ MetricType, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, typ: typ, fn: fn}
}

// sorted returns metrics in name order (stable exposition).
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		var err error
		switch {
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case m.hist != nil:
			cum := int64(0)
			for i, b := range m.hist.bounds {
				cum += atomic.LoadInt64(&m.hist.counts[i])
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.hist.Count()); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(m.hist.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, m.hist.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is a histogram's JSON form.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → cumulative count
}

// Snapshot returns a point-in-time JSON-friendly view: metric name →
// number (counters, gauges, callbacks) or HistogramSnapshot.
func (r *Registry) Snapshot() map[string]interface{} {
	out := map[string]interface{}{}
	if r == nil {
		return out
	}
	for _, m := range r.sorted() {
		switch {
		case m.fn != nil:
			out[m.name] = m.fn()
		case m.counter != nil:
			out[m.name] = m.counter.Value()
		case m.gauge != nil:
			out[m.name] = m.gauge.Value()
		case m.hist != nil:
			hs := HistogramSnapshot{
				Count:   m.hist.Count(),
				Sum:     m.hist.Sum(),
				Buckets: map[string]int64{},
			}
			cum := int64(0)
			for i, b := range m.hist.bounds {
				cum += atomic.LoadInt64(&m.hist.counts[i])
				hs.Buckets[formatFloat(b)] = cum
			}
			hs.Buckets["+Inf"] = hs.Count
			out[m.name] = hs
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
