package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("request")
	parse := root.StartChild("parse")
	time.Sleep(time.Millisecond)
	parse.End()
	exec := root.StartChild("execute")
	exec.AddTuplesIn(100)
	exec.AddTuplesOut(10)
	exec.AddSpill()
	exec.Add("rows", 10)
	exec.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "request" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if tree.Children[0].Name != "parse" || tree.Children[0].DurationUS < 1000 {
		t.Fatalf("parse child = %+v", tree.Children[0])
	}
	ec := tree.Children[1]
	if ec.Counters["tuplesIn"] != 100 || ec.Counters["tuplesOut"] != 10 ||
		ec.Counters["spills"] != 1 || ec.Counters["rows"] != 10 {
		t.Fatalf("execute counters = %+v", ec.Counters)
	}
	if got := root.TotalFor("parse"); got < time.Millisecond {
		t.Fatalf("TotalFor(parse) = %v", got)
	}
}

func TestSpanDetailedPropagation(t *testing.T) {
	root := NewSpan("request")
	if root.Detailed() {
		t.Fatal("detailed defaults on")
	}
	root.SetDetailed(true)
	c := root.StartChild("stmt")
	if !c.Detailed() {
		t.Fatal("detailed flag not inherited")
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context has a span")
	}
	s := NewSpan("x")
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if ContextWithSpan(context.Background(), nil) == nil {
		t.Fatal("nil span must keep the context usable")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("x")
	s.End()
	d1 := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d2 := s.Duration(); d2 != d1 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
}

// TestSpanConcurrentChildren mirrors the executor: many tasks attach
// children and bump counters concurrently (run under -race).
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("execute")
	root.SetDetailed(true)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("task")
			for j := 0; j < 100; j++ {
				c.AddTuplesIn(1)
				c.AddTuplesOut(1)
			}
			c.End()
			_ = root.Tree() // concurrent snapshot while others still write
		}()
	}
	wg.Wait()
	tree := root.Tree()
	if len(tree.Children) != 16 {
		t.Fatalf("children = %d", len(tree.Children))
	}
	var in int64
	for _, c := range tree.Children {
		in += c.Counters["tuplesIn"]
	}
	if in != 1600 {
		t.Fatalf("tuplesIn sum = %d", in)
	}
}
