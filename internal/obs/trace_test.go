package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("request")
	parse := root.StartChild("parse")
	time.Sleep(time.Millisecond)
	parse.End()
	exec := root.StartChild("execute")
	exec.AddTuplesIn(100)
	exec.AddTuplesOut(10)
	exec.AddSpill()
	exec.Add("rows", 10)
	exec.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "request" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if tree.Children[0].Name != "parse" || tree.Children[0].DurationUS < 1000 {
		t.Fatalf("parse child = %+v", tree.Children[0])
	}
	ec := tree.Children[1]
	if ec.Counters["tuplesIn"] != 100 || ec.Counters["tuplesOut"] != 10 ||
		ec.Counters["spills"] != 1 || ec.Counters["rows"] != 10 {
		t.Fatalf("execute counters = %+v", ec.Counters)
	}
	if got := root.TotalFor("parse"); got < time.Millisecond {
		t.Fatalf("TotalFor(parse) = %v", got)
	}
}

func TestSpanDetailedPropagation(t *testing.T) {
	root := NewSpan("request")
	if root.Detailed() {
		t.Fatal("detailed defaults on")
	}
	root.SetDetailed(true)
	c := root.StartChild("stmt")
	if !c.Detailed() {
		t.Fatal("detailed flag not inherited")
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context has a span")
	}
	s := NewSpan("x")
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if ContextWithSpan(context.Background(), nil) == nil {
		t.Fatal("nil span must keep the context usable")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("x")
	s.End()
	d1 := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d2 := s.Duration(); d2 != d1 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
}

func TestSpanWaitAttribution(t *testing.T) {
	root := NewSpan("request")
	task := root.StartChild("sort[0]")
	root.AddWait(WaitAdmission, 120*time.Millisecond)
	task.AddWait(WaitSpill, 8*time.Millisecond)
	task.AddWait(WaitSpill, 2*time.Millisecond)
	task.AddWait(WaitLock, 40*time.Millisecond)
	task.End()
	root.End()

	if got := task.Waits()[WaitSpill]; got != 10*time.Millisecond {
		t.Fatalf("task spill wait = %v", got)
	}
	// Rollup sums the whole tree.
	p := root.WaitRollup()
	if p[WaitAdmission] != 120*time.Millisecond || p[WaitSpill] != 10*time.Millisecond ||
		p[WaitLock] != 40*time.Millisecond {
		t.Fatalf("rollup = %+v", p)
	}
	if p.Total() != 170*time.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}
	// Top-3 rendering is sorted descending and names the categories.
	if got, want := p.TopN(3), "admission=120ms lock=40ms spill=10ms"; got != want {
		t.Fatalf("TopN = %q, want %q", got, want)
	}
	if got := p.TopN(1); got != "admission=120ms" {
		t.Fatalf("TopN(1) = %q", got)
	}
	// The span tree carries the categories as counters (µs).
	tree := root.Tree()
	if tree.Counters["wait.admission.us"] != 120000 {
		t.Fatalf("tree counters = %+v", tree.Counters)
	}
	if tree.Children[0].Counters["wait.spill.us"] != 10000 {
		t.Fatalf("task counters = %+v", tree.Children[0].Counters)
	}
	// Sub-microsecond waits round up instead of vanishing.
	s := NewSpan("x")
	s.AddWait(WaitFlush, 100*time.Nanosecond)
	if s.Tree().Counters["wait.flush.us"] != 1 {
		t.Fatalf("sub-µs wait dropped: %+v", s.Tree().Counters)
	}
}

func TestSpanWaitNilSafety(t *testing.T) {
	var s *Span
	s.AddWait(WaitLock, time.Second) // must not panic
	if p := s.Waits(); p.Total() != 0 {
		t.Fatalf("nil span waits = %+v", p)
	}
	if p := s.WaitRollup(); p.Total() != 0 {
		t.Fatalf("nil span rollup = %+v", p)
	}
	if got := (WaitProfile{}).TopN(3); got != "" {
		t.Fatalf("empty profile TopN = %q", got)
	}
	if WaitKind(99).String() != "unknown" {
		t.Fatal("out-of-range WaitKind string")
	}
	real := NewSpan("x")
	real.AddWait(WaitKind(99), time.Second) // out of range: ignored
	real.AddWait(WaitLock, -time.Second)    // negative: ignored
	if real.Waits().Total() != 0 {
		t.Fatal("invalid AddWait inputs were recorded")
	}
}

// TestSpanConcurrentChildren mirrors the executor: many tasks attach
// children and bump counters concurrently (run under -race).
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("execute")
	root.SetDetailed(true)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("task")
			for j := 0; j < 100; j++ {
				c.AddTuplesIn(1)
				c.AddTuplesOut(1)
			}
			c.End()
			_ = root.Tree() // concurrent snapshot while others still write
		}()
	}
	wg.Wait()
	tree := root.Tree()
	if len(tree.Children) != 16 {
		t.Fatalf("children = %d", len(tree.Children))
	}
	var in int64
	for _, c := range tree.Children {
		in += c.Counters["tuplesIn"]
	}
	if in != 1600 {
		t.Fatalf("tuplesIn sum = %d", in)
	}
}
