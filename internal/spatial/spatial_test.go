package spatial

import (
	"math/rand"
	"testing"
)

func TestZOrderInterleaving(t *testing.T) {
	// x=0b11, y=0b00 -> 0b0101
	if got := ZOrder(3, 0); got != 0b0101 {
		t.Errorf("ZOrder(3,0) = %b", got)
	}
	// x=0, y=0b11 -> 0b1010
	if got := ZOrder(0, 3); got != 0b1010 {
		t.Errorf("ZOrder(0,3) = %b", got)
	}
	if ZOrder(0, 0) != 0 {
		t.Error("origin should map to 0")
	}
}

func TestZOrderInjective(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[uint64][2]uint32{}
	for i := 0; i < 20000; i++ {
		x, y := r.Uint32(), r.Uint32()
		z := ZOrder(x, y)
		if prev, ok := seen[z]; ok && (prev[0] != x || prev[1] != y) {
			t.Fatalf("collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], x, y, z)
		}
		seen[z] = [2]uint32{x, y}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// On a small grid, consecutive Hilbert positions must be adjacent
	// cells (the curve's defining property). Test an 8x8 corner of the
	// big lattice by enumerating positions 0..63 via inverse search.
	pos := map[uint64][2]uint32{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			h := Hilbert(x<<29, y<<29) // scale up to top 3 bits
			pos[h>>58] = [2]uint32{x, y}
		}
	}
	if len(pos) != 64 {
		t.Fatalf("expected 64 distinct positions, got %d", len(pos))
	}
	for d := uint64(1); d < 64; d++ {
		a, b := pos[d-1], pos[d]
		dx := int(a[0]) - int(b[0])
		dy := int(a[1]) - int(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("positions %d and %d not adjacent: %v -> %v", d-1, d, a, b)
		}
	}
}

func TestHilbertInjective(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	seen := map[uint64][2]uint32{}
	for i := 0; i < 20000; i++ {
		x, y := r.Uint32(), r.Uint32()
		h := Hilbert(x, y)
		if prev, ok := seen[h]; ok && (prev[0] != x || prev[1] != y) {
			t.Fatalf("collision: (%d,%d) and (%d,%d)", prev[0], prev[1], x, y)
		}
		seen[h] = [2]uint32{x, y}
	}
}

func TestNormalizerClamps(t *testing.T) {
	n := NewNormalizer(0, 0, 100, 100)
	if x, y := n.Lattice(-5, 200); x != 0 || y != latticeMax {
		t.Errorf("clamp failed: %d, %d", x, y)
	}
	x1, _ := n.Lattice(10, 0)
	x2, _ := n.Lattice(20, 0)
	if x1 >= x2 {
		t.Error("lattice mapping must be monotone")
	}
}

func TestGridCells(t *testing.T) {
	g := NewGrid(0, 0, 100, 100, 10, 10)
	if g.Cells() != 100 {
		t.Fatalf("cells = %d", g.Cells())
	}
	if c := g.Cell(5, 5); c != 0 {
		t.Errorf("cell(5,5) = %d", c)
	}
	if c := g.Cell(95, 95); c != 99 {
		t.Errorf("cell(95,95) = %d", c)
	}
	if c := g.Cell(150, -10); c != 9 {
		t.Errorf("out-of-world point should clamp: %d", c)
	}
	cells := g.CellsInRect(12, 12, 38, 27)
	// x cells 1..3, y cells 1..2 -> 6 cells.
	if len(cells) != 6 {
		t.Errorf("CellsInRect returned %d cells: %v", len(cells), cells)
	}
}

// Property: curve range decomposition covers every point in the query box.
func TestPropCurveRangesCoverQuery(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x0 := r.Uint32() >> 1
		y0 := r.Uint32() >> 1
		x1 := x0 + uint32(r.Intn(1<<20))
		y1 := y0 + uint32(r.Intn(1<<20))
		for _, curve := range []struct {
			name string
			rs   []CurveRange
			f    func(x, y uint32) uint64
		}{
			{"zorder", ZOrderRanges(x0, y0, x1, y1, 16), ZOrder},
			{"hilbert", HilbertRanges(x0, y0, x1, y1, 16), Hilbert},
		} {
			if len(curve.rs) == 0 {
				t.Fatalf("%s: no ranges", curve.name)
			}
			if len(curve.rs) > 16 {
				t.Fatalf("%s: budget exceeded: %d", curve.name, len(curve.rs))
			}
			// Sample points inside the box; each must fall in some range.
			for s := 0; s < 100; s++ {
				px := x0 + uint32(r.Int63n(int64(x1-x0)+1))
				py := y0 + uint32(r.Int63n(int64(y1-y0)+1))
				pos := curve.f(px, py)
				found := false
				for _, rg := range curve.rs {
					if pos >= rg.Lo && pos <= rg.Hi {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: point (%d,%d) pos %d not covered by %v",
						curve.name, px, py, pos, curve.rs)
				}
			}
		}
	}
}

func TestCurveRangesMerged(t *testing.T) {
	rs := ZOrderRanges(0, 0, 1<<31, 1<<31, 64)
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo <= rs[i-1].Hi {
			t.Fatalf("ranges overlap or unsorted: %v", rs)
		}
	}
}
