// Package spatial provides the space-filling curves and grid partitioning
// used by the alternative spatial indexes of the paper's Section V-B study
// [23]: Z-order (bit interleaving) and Hilbert linearizations for
// LSM-B+tree-over-transformed-keys indexes, and a uniform grid for
// grid-based indexing.
package spatial

// CurveOrder is the number of bits per dimension used by the
// linearizations (32 bits → 64-bit curve positions).
const CurveOrder = 32

// Normalizer maps floating-point coordinates in a bounded world to the
// integer lattice the curves operate on.
type Normalizer struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewNormalizer builds a normalizer for the world rectangle.
func NewNormalizer(minX, minY, maxX, maxY float64) Normalizer {
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	return Normalizer{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

const latticeMax = (1 << CurveOrder) - 1

// Lattice maps (x, y) to lattice coordinates, clamping to the world.
func (n Normalizer) Lattice(x, y float64) (uint32, uint32) {
	fx := (x - n.MinX) / (n.MaxX - n.MinX)
	fy := (y - n.MinY) / (n.MaxY - n.MinY)
	return clamp01ToLattice(fx), clamp01ToLattice(fy)
}

func clamp01ToLattice(f float64) uint32 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return latticeMax
	}
	return uint32(f * float64(latticeMax+1))
}

// ZOrder interleaves the bits of x and y (x in even positions), producing
// the Morton code of the point.
func ZOrder(x, y uint32) uint64 {
	return spreadBits(x) | spreadBits(y)<<1
}

// spreadBits spaces the 32 bits of v into the even bit positions of a
// uint64 (the classic "interleave with magic numbers" routine).
func spreadBits(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Hilbert returns the Hilbert-curve position of (x, y) on a 2^CurveOrder
// square grid. Unlike Z-order, consecutive curve positions are always
// adjacent cells, which gives better range-query clustering.
func Hilbert(x, y uint32) uint64 {
	var d uint64
	rx, ry := uint32(0), uint32(0)
	for s := uint32(1) << (CurveOrder - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// Grid is a uniform W×H grid over a world rectangle; cells are numbered
// row-major.
type Grid struct {
	Norm Normalizer
	W, H int
}

// NewGrid builds a w×h grid over the world rectangle.
func NewGrid(minX, minY, maxX, maxY float64, w, h int) Grid {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Grid{Norm: NewNormalizer(minX, minY, maxX, maxY), W: w, H: h}
}

// Cells returns the total number of cells.
func (g Grid) Cells() int { return g.W * g.H }

// Cell returns the cell containing (x, y).
func (g Grid) Cell(x, y float64) int {
	cx := g.cellX(x)
	cy := g.cellY(y)
	return cy*g.W + cx
}

func (g Grid) cellX(x float64) int {
	f := (x - g.Norm.MinX) / (g.Norm.MaxX - g.Norm.MinX)
	c := int(f * float64(g.W))
	if c < 0 {
		c = 0
	}
	if c >= g.W {
		c = g.W - 1
	}
	return c
}

func (g Grid) cellY(y float64) int {
	f := (y - g.Norm.MinY) / (g.Norm.MaxY - g.Norm.MinY)
	c := int(f * float64(g.H))
	if c < 0 {
		c = 0
	}
	if c >= g.H {
		c = g.H - 1
	}
	return c
}

// CellsInRect returns the ids of all cells overlapping the query
// rectangle.
func (g Grid) CellsInRect(minX, minY, maxX, maxY float64) []int {
	x0, x1 := g.cellX(minX), g.cellX(maxX)
	y0, y1 := g.cellY(minY), g.cellY(maxY)
	out := make([]int, 0, (x1-x0+1)*(y1-y0+1))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			out = append(out, cy*g.W+cx)
		}
	}
	return out
}

// CurveRange describes one contiguous run of curve positions.
type CurveRange struct{ Lo, Hi uint64 }

// ZOrderRanges decomposes a query rectangle (in lattice coordinates) into
// at most maxRanges contiguous Z-order intervals covering it. The
// decomposition recursively splits the quadtree induced by the curve; when
// the budget is exhausted, remaining regions are covered conservatively
// (supersets), so callers must still post-filter by the true predicate.
func ZOrderRanges(x0, y0, x1, y1 uint32, maxRanges int) []CurveRange {
	return curveRanges(x0, y0, x1, y1, maxRanges, ZOrder)
}

// HilbertRanges is ZOrderRanges for the Hilbert curve.
func HilbertRanges(x0, y0, x1, y1 uint32, maxRanges int) []CurveRange {
	return curveRanges(x0, y0, x1, y1, maxRanges, Hilbert)
}

// curveRanges performs breadth-first quadtree decomposition of the query
// box, emitting a curve interval per fully-covered quad cell. Partially-
// covered cells split level by level until the range budget is reached,
// then are emitted as conservative whole-cell intervals - BFS distributes
// the budget evenly over the box instead of refining one corner.
func curveRanges(x0, y0, x1, y1 uint32, maxRanges int, curve func(x, y uint32) uint64) []CurveRange {
	if maxRanges < 1 {
		maxRanges = 1
	}
	type quad struct {
		qx, qy uint32 // cell origin in lattice coords
		size   uint64 // cell edge length (power of two), up to 2^32
	}
	emitCell := func(out []CurveRange, q quad) []CurveRange {
		// For both Z-order and Hilbert, an aligned power-of-two quad
		// cell maps to one contiguous, n-aligned curve run of size^2.
		lo := curve(q.qx, q.qy)
		n := q.size * q.size
		base := lo &^ (n - 1)
		return append(out, CurveRange{Lo: base, Hi: base + n - 1})
	}
	overlaps := func(q quad) (full bool, any bool) {
		qx1 := uint64(q.qx) + q.size - 1
		qy1 := uint64(q.qy) + q.size - 1
		if uint64(x0) > qx1 || uint64(x1) < uint64(q.qx) || uint64(y0) > qy1 || uint64(y1) < uint64(q.qy) {
			return false, false
		}
		full = uint64(x0) <= uint64(q.qx) && uint64(x1) >= qx1 && uint64(y0) <= uint64(q.qy) && uint64(y1) >= qy1
		return full, true
	}

	var out []CurveRange
	level := []quad{{0, 0, 1 << CurveOrder}}
	for len(level) > 0 {
		// Refining this level can at worst quadruple the pending cells;
		// stop when emitted + pending would exceed the budget.
		if len(out)+4*len(level) > maxRanges {
			for _, q := range level {
				out = emitCell(out, q)
			}
			break
		}
		var next []quad
		for _, q := range level {
			full, any := overlaps(q)
			if !any {
				continue
			}
			if full || q.size == 1 {
				out = emitCell(out, q)
				continue
			}
			h := q.size / 2
			next = append(next,
				quad{q.qx, q.qy, h},
				quad{q.qx + uint32(h), q.qy, h},
				quad{q.qx, q.qy + uint32(h), h},
				quad{q.qx + uint32(h), q.qy + uint32(h), h},
			)
		}
		level = next
	}
	return mergeRanges(out)
}

// mergeRanges sorts and coalesces overlapping/adjacent intervals.
func mergeRanges(rs []CurveRange) []CurveRange {
	if len(rs) <= 1 {
		return rs
	}
	// Insertion sort (small n).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if last.Hi == ^uint64(0) || r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
