package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"asterix/internal/core"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	eng, err := core.Open(core.Config{DataDir: t.TempDir(), Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, stmt string) queryResponse {
	t.Helper()
	body := `{"statement": ` + jsonString(stmt) + `}`
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestQueryService(t *testing.T) {
	srv := newServer(t)
	r := post(t, srv, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	if r.Status != "success" {
		t.Fatalf("DDL: %+v", r)
	}
	r = post(t, srv, `UPSERT INTO D ([{"id": 1, "x": "a"}, {"id": 2, "x": "b"}]);`)
	if r.Status != "success" || string(r.Results[0]) != `{"count":2}` {
		t.Fatalf("DML: %+v", r)
	}
	r = post(t, srv, `SELECT VALUE d.x FROM D d ORDER BY d.id;`)
	if r.Status != "success" || len(r.Results) != 2 {
		t.Fatalf("query: %+v", r)
	}
	if string(r.Results[0]) != `"a"` || string(r.Results[1]) != `"b"` {
		t.Fatalf("rows: %v", r.Results)
	}
	if r.Metrics.ResultCount != 2 {
		t.Errorf("metrics: %+v", r.Metrics)
	}
}

func TestQueryServiceErrors(t *testing.T) {
	srv := newServer(t)
	r := post(t, srv, `SELECT VALUE x FROM NoSuchDataset x;`)
	if r.Status != "fatal" || len(r.Errors) == 0 {
		t.Fatalf("expected error response: %+v", r)
	}
	// Empty statement.
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty statement status: %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/query/service")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status: %d", resp.StatusCode)
	}
}

func TestQueryServiceFormEncoding(t *testing.T) {
	srv := newServer(t)
	resp, err := http.PostForm(srv.URL+"/query/service",
		url.Values{"statement": {"SELECT VALUE 1 + 1;"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	json.NewDecoder(resp.Body).Decode(&qr)
	if qr.Status != "success" || string(qr.Results[0]) != "2" {
		t.Fatalf("form query: %+v", qr)
	}
}

func TestPing(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/admin/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ping: %d", resp.StatusCode)
	}
}
