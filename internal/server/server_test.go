package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"asterix/internal/core"
	"asterix/internal/hyracks"
	"asterix/internal/mem"
	"asterix/internal/obs"
	"asterix/internal/txn"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	eng, err := core.Open(core.Config{
		DataDir: t.TempDir(),
		Now:     func() time.Time { return fixed },
		// Tiny memory components so test loads flush to disk and the
		// storage/lsm counters go live.
		MemComponentBudget: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, stmt string) queryResponse {
	t.Helper()
	body := `{"statement": ` + jsonString(stmt) + `}`
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestQueryService(t *testing.T) {
	srv := newServer(t)
	r := post(t, srv, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	if r.Status != "success" {
		t.Fatalf("DDL: %+v", r)
	}
	r = post(t, srv, `UPSERT INTO D ([{"id": 1, "x": "a"}, {"id": 2, "x": "b"}]);`)
	if r.Status != "success" || string(r.Results[0]) != `{"count":2}` {
		t.Fatalf("DML: %+v", r)
	}
	r = post(t, srv, `SELECT VALUE d.x FROM D d ORDER BY d.id;`)
	if r.Status != "success" || len(r.Results) != 2 {
		t.Fatalf("query: %+v", r)
	}
	if string(r.Results[0]) != `"a"` || string(r.Results[1]) != `"b"` {
		t.Fatalf("rows: %v", r.Results)
	}
	if r.Metrics.ResultCount != 2 {
		t.Errorf("metrics: %+v", r.Metrics)
	}
}

func TestQueryServiceErrors(t *testing.T) {
	srv := newServer(t)
	r := post(t, srv, `SELECT VALUE x FROM NoSuchDataset x;`)
	if r.Status != "fatal" || len(r.Errors) == 0 {
		t.Fatalf("expected error response: %+v", r)
	}
	// Empty statement.
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty statement status: %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/query/service")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status: %d", resp.StatusCode)
	}
}

func TestQueryServiceFormEncoding(t *testing.T) {
	srv := newServer(t)
	resp, err := http.PostForm(srv.URL+"/query/service",
		url.Values{"statement": {"SELECT VALUE 1 + 1;"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	json.NewDecoder(resp.Body).Decode(&qr)
	if qr.Status != "success" || string(qr.Results[0]) != "2" {
		t.Fatalf("form query: %+v", qr)
	}
}

// loadGleambook creates a two-partition dataset with enough rows that a
// multi-operator query (scan → join/group → sort) touches every layer.
func loadGleambook(t *testing.T, srv *httptest.Server) {
	t.Helper()
	r := post(t, srv, `
		CREATE TYPE UserT AS {id: int};
		CREATE DATASET Users(UserT) PRIMARY KEY id;
	`)
	if r.Status != "success" {
		t.Fatalf("DDL: %+v", r)
	}
	var sb strings.Builder
	sb.WriteString("UPSERT INTO Users ([")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": %d, "org": "org%d", "score": %d}`, i, i%7, i%13)
	}
	sb.WriteString("]);")
	if r := post(t, srv, sb.String()); r.Status != "success" {
		t.Fatalf("load: %+v", r)
	}
}

func TestAdminMetricsPrometheus(t *testing.T) {
	srv := newServer(t)
	loadGleambook(t, srv)
	// A multi-operator query: group-by with aggregation and ordering.
	r := post(t, srv, `SELECT u.org AS org, COUNT(*) AS n FROM Users u GROUP BY u.org ORDER BY org;`)
	if r.Status != "success" || len(r.Results) != 7 {
		t.Fatalf("query: %+v", r)
	}

	resp, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type: %s", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	// Valid exposition: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric sample %q", line)
		}
	}

	// Live counters from at least four subsystems.
	for _, name := range []string{
		"storage_buffercache_hits_total",
		"hyracks_tuples_in_total",
		"hyracks_tuples_out_total",
		"lsm_flushes_total",
		"txn_commits_total",
		"engine_statements_total",
		"server_requests_total",
		"# TYPE engine_query_duration_seconds histogram",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
	// The query must have moved tuples through hyracks, committed txns,
	// flushed LSM components, and hit the buffer cache.
	for _, want := range []string{"hyracks_tuples_out_total", "txn_commits_total",
		"storage_buffercache_hits_total", "lsm_flushes_total"} {
		v := promValue(t, body, want)
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", want, v)
		}
	}
}

// promValue extracts a sample value from exposition text.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestAdminStatsJSON(t *testing.T) {
	srv := newServer(t)
	post(t, srv, `SELECT VALUE 1 + 1;`)
	resp, err := http.Get(srv.URL + "/admin/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("stats not valid JSON: %v", err)
	}
	if snap["engine_statements_total"].(float64) < 1 {
		t.Errorf("engine_statements_total = %v", snap["engine_statements_total"])
	}
	if _, ok := snap["engine_query_duration_seconds"].(map[string]interface{}); !ok {
		t.Errorf("histogram snapshot missing: %T", snap["engine_query_duration_seconds"])
	}
}

// walkProfile visits every node of a span tree depth-first.
func walkProfile(n *obs.SpanNode, fn func(*obs.SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		walkProfile(c, fn)
	}
}

func postProfile(t *testing.T, srv *httptest.Server, stmt string) queryResponse {
	t.Helper()
	body := `{"statement": ` + jsonString(stmt) + `, "profile": "timings"}`
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func TestProfileTimings(t *testing.T) {
	srv := newServer(t)
	loadGleambook(t, srv)
	r := postProfile(t, srv, `SELECT u.org AS org, COUNT(*) AS n FROM Users u GROUP BY u.org ORDER BY org;`)
	if r.Status != "success" {
		t.Fatalf("query: %+v", r)
	}
	if r.Profile == nil || r.Profile.Name != "request" {
		t.Fatalf("profile missing: %+v", r.Profile)
	}
	// Expanded phase metrics are populated.
	if r.Metrics.ParseTime == "" || r.Metrics.OptimizeTime == "0s" || r.Metrics.ExecuteTime == "0s" {
		t.Errorf("phase metrics empty: %+v", r.Metrics)
	}
	if r.Metrics.ResultSize <= 0 {
		t.Errorf("resultSize = %d", r.Metrics.ResultSize)
	}

	// The span tree holds parse → statement → compile/execute, and under
	// execute the per-operator, per-partition task spans with tuple counts.
	names := map[string]int{}
	var tasks, tuples int64
	walkProfile(r.Profile, func(n *obs.SpanNode) {
		names[n.Name]++
		if strings.Contains(n.Name, "[") { // operator task span, e.g. "sort[0]"
			tasks++
			tuples += n.Counters["tuplesIn"] + n.Counters["tuplesOut"]
		}
	})
	if names["parse"] == 0 || names["statement"] == 0 || names["compile"] == 0 || names["execute"] == 0 {
		t.Fatalf("span tree missing phases: %v", names)
	}
	if tasks == 0 {
		t.Fatalf("no per-operator task spans in profile: %v", names)
	}
	if tuples == 0 {
		t.Fatal("task spans carry no tuple counts")
	}

	// Without the profile flag the response has no span tree.
	r = post(t, srv, `SELECT VALUE 1;`)
	if r.Profile != nil {
		t.Error("profile returned without being requested")
	}
}

func TestSlowQueryLog(t *testing.T) {
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	eng, err := core.Open(core.Config{DataDir: t.TempDir(), Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	var buf strings.Builder
	h := NewHandler(eng, Options{
		SlowQueryThreshold: 1 * time.Nanosecond, // everything is slow
		Logger:             log.New(&buf, "", 0),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	post(t, srv, `SELECT VALUE 40 + 2;`)
	if !strings.Contains(buf.String(), "slow query") || !strings.Contains(buf.String(), "40 + 2") {
		t.Fatalf("slow-query log missing: %q", buf.String())
	}
	resp, _ := http.Get(srv.URL + "/admin/metrics")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if promValue(t, string(raw), "server_slow_queries_total") < 1 {
		t.Error("server_slow_queries_total not incremented")
	}
}

// postSafe is post for use from non-test goroutines (no t.Fatal).
func postSafe(srv *httptest.Server, stmt string, profile bool) (queryResponse, error) {
	body := `{"statement": ` + jsonString(stmt) + `}`
	if profile {
		body = `{"statement": ` + jsonString(stmt) + `, "profile": "timings"}`
	}
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		return queryResponse{}, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	err = json.NewDecoder(resp.Body).Decode(&qr)
	return qr, err
}

// TestWaitAttributionUnderContention drives two real contention paths and
// asserts the time a statement spent blocked is attributed — in the
// metrics block, in the "profile":"timings" span tree, and in the
// slow-query log.
func TestWaitAttributionUnderContention(t *testing.T) {
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	eng, err := core.Open(core.Config{
		DataDir:            t.TempDir(),
		Partitions:         1,
		Nodes:              1,
		WorkingMemory:      64 << 10,
		AdmitTimeout:       5 * time.Second,
		MemComponentBudget: 4 << 10,
		Now:                func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	var buf strings.Builder
	srv := httptest.NewServer(NewHandler(eng, Options{
		SlowQueryThreshold: 1 * time.Nanosecond, // everything is slow
		Logger:             log.New(&buf, "", 0),
	}))
	t.Cleanup(srv.Close)

	r := post(t, srv, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`)
	if r.Status != "success" {
		t.Fatalf("setup: %+v", r)
	}
	var sb strings.Builder
	sb.WriteString("UPSERT INTO D ([")
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": %d, "g": %d}`, i, i%7)
	}
	sb.WriteString("]);")
	if r := post(t, srv, sb.String()); r.Status != "success" {
		t.Fatalf("load: %+v", r)
	}

	// Admission wait: hold the whole working-memory pool, release it only
	// after the query has been waiting a while.
	gov := eng.MemGovernor()
	hold, err := gov.Reserve(context.Background(), gov.WorkingCap())
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		hold.Release()
		close(released)
	}()
	qr := postProfile(t, srv, `SELECT g AS grp, COUNT(*) AS n FROM D d GROUP BY d.g AS g ORDER BY grp;`)
	<-released
	if qr.Status != "success" {
		t.Fatalf("starved-then-released query: %+v", qr)
	}
	if qr.Metrics.WaitTimes["admission"] == "" {
		t.Fatalf("admission wait not attributed: %+v", qr.Metrics)
	}
	adm, err := time.ParseDuration(qr.Metrics.WaitTimes["admission"])
	if err != nil || adm < 20*time.Millisecond {
		t.Fatalf("admission wait = %q, want >= 20ms", qr.Metrics.WaitTimes["admission"])
	}
	// The same attribution must appear as counters in the span tree.
	var admUS int64
	walkProfile(qr.Profile, func(n *obs.SpanNode) {
		admUS += n.Counters["wait.admission.us"]
	})
	if admUS <= 0 {
		t.Fatal("profile span tree carries no wait.admission.us counter")
	}

	// Lock wait: concurrent upserts of the same keys serialize on the lock
	// manager; the losers' wait must be attributed. Whether the writers
	// actually overlap inside the lock window is a scheduling race, so
	// retry the round until one loses — the assertion is about
	// attribution, not about any single round's timing.
	const writers = 3
	lockWaits := 0
	var results []queryResponse
	for round := 0; round < 20 && lockWaits == 0; round++ {
		var wg sync.WaitGroup
		results = make([]queryResponse, writers)
		errs := make([]error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = postSafe(srv, sb.String(), true)
			}(i)
		}
		wg.Wait()
		for i := 0; i < writers; i++ {
			if errs[i] != nil {
				t.Fatalf("writer %d: %v", i, errs[i])
			}
			if results[i].Metrics.WaitTimes["lock"] != "" {
				lockWaits++
			}
		}
	}
	if lockWaits == 0 {
		t.Fatalf("no writer recorded lock wait under contention: %+v",
			[]map[string]string{results[0].Metrics.WaitTimes, results[1].Metrics.WaitTimes, results[2].Metrics.WaitTimes})
	}

	// Slow-query log explains where the time went.
	logged := buf.String()
	if !strings.Contains(logged, "waits: ") || !strings.Contains(logged, "admission=") {
		t.Fatalf("slow-query log lacks wait attribution:\n%s", logged)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
}

func TestPing(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/admin/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ping: %d", resp.StatusCode)
	}
}

// stubEngine lets failure-path tests script Execute's outcome without a
// real engine.
type stubEngine struct {
	res []core.Result
	err error
}

func (s stubEngine) Execute(ctx context.Context, script string) ([]core.Result, error) {
	return s.res, s.err
}

func postRaw(t *testing.T, srv *httptest.Server, stmt string) (int, queryResponse) {
	t.Helper()
	body := `{"statement": ` + jsonString(stmt) + `}`
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, qr
}

func TestLockTimeoutMapsToRetriable503(t *testing.T) {
	reg := obs.NewRegistry()
	eng := stubEngine{err: fmt.Errorf("stmt 1: %w", txn.ErrLockTimeout)}
	srv := httptest.NewServer(NewHandler(eng, Options{Registry: reg}))
	t.Cleanup(srv.Close)

	code, qr := postRaw(t, srv, `UPSERT INTO D ({"id": 1});`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("lock timeout returned HTTP %d, want 503", code)
	}
	if qr.Status != "timeout" || !qr.Retriable {
		t.Fatalf("response %+v, want status=timeout retriable=true", qr)
	}
	if got := reg.Snapshot()["server_retriable_errors_total"]; got != int64(1) {
		t.Fatalf("server_retriable_errors_total = %v, want 1", got)
	}
}

func TestNodeFailureMapsToRetriable503(t *testing.T) {
	eng := stubEngine{err: fmt.Errorf("execute: %w", &hyracks.NodeFailure{Node: "nc2", Op: "join"})}
	srv := httptest.NewServer(NewHandler(eng, Options{Registry: obs.NewRegistry()}))
	t.Cleanup(srv.Close)

	code, qr := postRaw(t, srv, `SELECT VALUE 1;`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("node failure returned HTTP %d, want 503", code)
	}
	if qr.Status != "fatal" || !qr.Retriable {
		t.Fatalf("response %+v, want status=fatal retriable=true", qr)
	}
	if len(qr.Errors) == 0 || !strings.Contains(qr.Errors[0], "nc2") {
		t.Fatalf("error text should name the dead node: %v", qr.Errors)
	}
}

func TestQueryMetricsReportRetryWork(t *testing.T) {
	eng := stubEngine{res: []core.Result{{
		Kind:      core.ResultQuery,
		Attempts:  2,
		DeadNodes: []string{"nc1"},
	}}}
	srv := httptest.NewServer(NewHandler(eng, Options{Registry: obs.NewRegistry()}))
	t.Cleanup(srv.Close)

	code, qr := postRaw(t, srv, `SELECT VALUE 1;`)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if qr.Metrics.JobAttempts != 2 {
		t.Fatalf("jobAttempts = %d, want 2", qr.Metrics.JobAttempts)
	}
	if len(qr.Metrics.DeadNodes) != 1 || qr.Metrics.DeadNodes[0] != "nc1" {
		t.Fatalf("deadNodes = %v, want [nc1]", qr.Metrics.DeadNodes)
	}

	// Single-attempt success must not clutter the metrics block.
	eng2 := stubEngine{res: []core.Result{{Kind: core.ResultQuery, Attempts: 1}}}
	srv2 := httptest.NewServer(NewHandler(eng2, Options{Registry: obs.NewRegistry()}))
	t.Cleanup(srv2.Close)
	_, qr2 := postRaw(t, srv2, `SELECT VALUE 1;`)
	if qr2.Metrics.JobAttempts != 0 || qr2.Metrics.DeadNodes != nil {
		t.Fatalf("clean run leaked retry metrics: %+v", qr2.Metrics)
	}
}

func TestAdmissionTimeoutMapsToRetriable503(t *testing.T) {
	reg := obs.NewRegistry()
	eng := stubEngine{err: fmt.Errorf("stmt 1: %w", mem.ErrAdmissionTimeout)}
	srv := httptest.NewServer(NewHandler(eng, Options{Registry: reg}))
	t.Cleanup(srv.Close)

	code, qr := postRaw(t, srv, `SELECT VALUE 1;`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("admission timeout returned HTTP %d, want 503", code)
	}
	if qr.Status != "timeout" || !qr.Retriable {
		t.Fatalf("response %+v, want status=timeout retriable=true", qr)
	}
	if got := reg.Snapshot()["server_retriable_errors_total"]; got != int64(1) {
		t.Fatalf("server_retriable_errors_total = %v, want 1", got)
	}
}

// TestAdmissionTimeoutEndToEnd drives the whole stack: a held working-memory
// pool makes a real query miss its admission deadline; the service must
// answer 503/timeout/retriable, and the resend after release must succeed.
func TestAdmissionTimeoutEndToEnd(t *testing.T) {
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	eng, err := core.Open(core.Config{
		DataDir:       t.TempDir(),
		Partitions:    1,
		Nodes:         1,
		WorkingMemory: 64 << 10,
		AdmitTimeout:  100 * time.Millisecond,
		Now:           func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(srv.Close)

	r := post(t, srv, `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
		UPSERT INTO D ([{"id": 1, "g": 1}, {"id": 2, "g": 1}, {"id": 3, "g": 2}]);
	`)
	if r.Status != "success" {
		t.Fatalf("setup: %+v", r)
	}

	gov := eng.MemGovernor()
	hold, err := gov.Reserve(context.Background(), gov.WorkingCap())
	if err != nil {
		t.Fatal(err)
	}

	const q = `SELECT g AS grp, COUNT(*) AS n FROM D d GROUP BY d.g AS g ORDER BY grp;`
	code, qr := postRaw(t, srv, q)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("starved query returned HTTP %d, want 503 (%+v)", code, qr)
	}
	if qr.Status != "timeout" || !qr.Retriable {
		t.Fatalf("response %+v, want status=timeout retriable=true", qr)
	}

	hold.Release()
	code, qr = postRaw(t, srv, q)
	if code != http.StatusOK || qr.Status != "success" {
		t.Fatalf("resend after release: HTTP %d %+v", code, qr)
	}
	if len(qr.Results) != 2 {
		t.Fatalf("resend rows = %d, want 2", len(qr.Results))
	}
	if qr.Metrics.PeakWorkingMemBytes <= 0 {
		t.Fatalf("peakWorkingMemBytes = %d, want > 0", qr.Metrics.PeakWorkingMemBytes)
	}
}

// TestStalledClientDisconnected proves the hardened server tears down a
// client that opens a connection and never finishes its request: the
// read-header deadline fires and the connection closes, instead of the
// goroutine idling forever (the bare ListenAndServe behavior).
func TestStalledClientDisconnected(t *testing.T) {
	srv := NewHTTPServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("server missing timeouts: %+v", srv)
	}
	// Shrink the deadlines so the test observes them quickly; the zero
	// values are what production guards against.
	srv.ReadHeaderTimeout = 150 * time.Millisecond
	srv.ReadTimeout = 300 * time.Millisecond

	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close(); <-done })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A torso of a request, then silence.
	if _, err := conn.Write([]byte("POST /query/service HTTP/1.1\r\nHost: x\r\nContent-Le")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	// The server must close the connection — either a bare EOF or an
	// error response (408/400) followed by close; anything but hanging
	// until our own deadline.
	if err == nil {
		body := string(buf[:n])
		if !strings.Contains(body, "408") && !strings.Contains(body, "400") {
			t.Fatalf("unexpected payload for a stalled request: %q", body)
		}
		if _, err = conn.Read(buf); err == nil {
			t.Fatal("connection still open after timeout response")
		}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		t.Fatal("server never disconnected the stalled client")
	}
}

// postBody posts an arbitrary JSON request body to /query/service.
func postBody(t *testing.T, srv *httptest.Server, body string) queryResponse {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query/service", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func TestProfilePlanReturnsPlanAndRules(t *testing.T) {
	srv := newServer(t)
	post(t, srv, `
		CREATE TYPE UT AS {id: int};
		CREATE DATASET U(UT) PRIMARY KEY id;
		CREATE TYPE MT AS {mid: int};
		CREATE DATASET M(MT) PRIMARY KEY mid;
		UPSERT INTO U ([{"id": 1}, {"id": 2}]);
		UPSERT INTO M ([{"mid": 1, "aid": 1}, {"mid": 2, "aid": 2}]);`)
	qr := postBody(t, srv, `{"statement": "SELECT u.id AS a, m.mid AS b FROM U u, M m WHERE m.aid = u.id;", "profile": "plan"}`)
	if qr.Status != "success" {
		t.Fatalf("status %s: %v", qr.Status, qr.Errors)
	}
	if qr.Plan == nil || !strings.Contains(qr.Plan.Text, "join[inner,hash]") {
		t.Fatalf("plan missing or wrong: %+v", qr.Plan)
	}
	var tree struct {
		Op string `json:"op"`
	}
	if err := json.Unmarshal(qr.Plan.Tree, &tree); err != nil || tree.Op == "" {
		t.Fatalf("plan tree not a JSON op node: %v %s", err, qr.Plan.Tree)
	}
	if qr.Metrics.RulesFired["recognize-hash-join"] == 0 {
		t.Errorf("rulesFired missing hash-join recognition: %v", qr.Metrics.RulesFired)
	}
	if len(qr.Results) != 2 {
		t.Errorf("profile=plan must still execute: %d results", len(qr.Results))
	}
}

func TestExplainOnlyFlagDoesNotExecute(t *testing.T) {
	srv := newServer(t)
	post(t, srv, `
		CREATE TYPE UT AS {id: int};
		CREATE DATASET U(UT) PRIMARY KEY id;
		UPSERT INTO U ([{"id": 1}, {"id": 2}, {"id": 3}]);`)
	qr := postBody(t, srv, `{"statement": "SELECT VALUE u.id FROM U u;", "explain": true}`)
	if qr.Status != "success" {
		t.Fatalf("status %s: %v", qr.Status, qr.Errors)
	}
	if qr.Plan == nil || !strings.Contains(qr.Plan.Text, "scan(U as u)") {
		t.Fatalf("explain plan missing: %+v", qr.Plan)
	}
	// No data rows: the single result is the plan string itself.
	if len(qr.Results) != 1 || !strings.HasPrefix(string(qr.Results[0]), `"`) {
		t.Errorf("explain-only should return the plan, not rows: %v", qr.Results)
	}
	// Metrics endpoint carries the per-rule counters.
	resp, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "optimizer_plans_total") {
		t.Error("optimizer counters missing from /admin/metrics")
	}
}
