// Package server exposes the engine over HTTP with an API shaped like
// AsterixDB's query service: POST /query/service with a JSON body
// {"statement": "..."} returns {"status", "results", "metrics"}.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"asterix/internal/adm"
	"asterix/internal/core"
)

// Engine is the statement executor the server fronts.
type Engine interface {
	Execute(ctx context.Context, script string) ([]core.Result, error)
}

// Handler returns the HTTP handler for the query service.
func Handler(e Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/service", func(w http.ResponseWriter, r *http.Request) {
		serveQuery(e, w, r)
	})
	mux.HandleFunc("/admin/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

type queryRequest struct {
	Statement string `json:"statement"`
}

type queryMetrics struct {
	ElapsedTime string `json:"elapsedTime"`
	ResultCount int    `json:"resultCount"`
}

type queryResponse struct {
	Status  string            `json:"status"`
	Results []json.RawMessage `json:"results"`
	Errors  []string          `json:"errors,omitempty"`
	Metrics queryMetrics      `json:"metrics"`
}

func serveQuery(e Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"status":"fatal","errors":["POST required"]}`, http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.Contains(ct, "application/json"):
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
			return
		}
	default:
		// Form encoding (statement=...) like the real service.
		if err := r.ParseForm(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid form body")
			return
		}
		req.Statement = r.PostFormValue("statement")
	}
	if strings.TrimSpace(req.Statement) == "" {
		writeError(w, http.StatusBadRequest, "empty statement")
		return
	}

	start := time.Now()
	results, err := e.Execute(r.Context(), req.Statement)
	resp := queryResponse{Status: "success"}
	if err != nil {
		resp.Status = "fatal"
		resp.Errors = append(resp.Errors, err.Error())
	}
	// Results of the last statement are the response payload (matching
	// the service's behavior for scripts).
	if len(results) > 0 {
		last := results[len(results)-1]
		switch last.Kind {
		case core.ResultQuery:
			for _, v := range last.Rows {
				resp.Results = append(resp.Results, json.RawMessage(adm.ToJSON(v)))
			}
		case core.ResultDML:
			resp.Results = append(resp.Results,
				json.RawMessage(fmt.Sprintf(`{"count":%d}`, last.Count)))
		}
	}
	resp.Metrics = queryMetrics{
		ElapsedTime: time.Since(start).String(),
		ResultCount: len(resp.Results),
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "success" {
		w.WriteHeader(http.StatusInternalServerError)
	}
	json.NewEncoder(w).Encode(&resp)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(&queryResponse{Status: "fatal", Errors: []string{msg}})
}
