// Package server exposes the engine over HTTP with an API shaped like
// AsterixDB's query service: POST /query/service with a JSON body
// {"statement": "..."} returns {"status", "results", "metrics"}, with
// optional per-query profiling ({"profile": "timings"}) mirroring the real
// query service. Admin endpoints expose the shared metrics registry:
// GET /admin/metrics (Prometheus text), GET /admin/stats (JSON snapshot),
// GET /admin/ping, and net/http/pprof under /debug/pprof/.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"asterix/internal/adm"
	"asterix/internal/core"
	"asterix/internal/hyracks"
	"asterix/internal/mem"
	"asterix/internal/obs"
	"asterix/internal/txn"
)

// Engine is the statement executor the server fronts.
type Engine interface {
	Execute(ctx context.Context, script string) ([]core.Result, error)
}

// MetricsProvider is implemented by engines that own an observability
// registry (core.Engine does); the server exposes it on /admin/metrics.
type MetricsProvider interface {
	Metrics() *obs.Registry
}

// Explainer is implemented by engines that can compile a statement to its
// optimized plan without executing it (core.Engine does); it backs the
// explain-only request flag.
type Explainer interface {
	Explain(src string) (string, error)
}

// Options configures the HTTP service.
type Options struct {
	// SlowQueryThreshold is the elapsed time beyond which a statement is
	// logged with its phase timings (default 500ms; negative disables).
	SlowQueryThreshold time.Duration
	// Logger receives slow-query lines (default log.Default()).
	Logger *log.Logger
	// Registry overrides the metrics registry; default is the engine's
	// own (when it implements MetricsProvider) or a fresh one.
	Registry *obs.Registry
}

// Handler returns the HTTP handler for the query service with default
// options.
func Handler(e Engine) http.Handler { return NewHandler(e, Options{}) }

// NewHTTPServer wraps a handler in an http.Server with the timeouts a
// long-lived daemon needs: a client that stalls while sending headers
// or a body, or that stops reading its response, is disconnected
// instead of holding a connection (and its goroutine) forever. Write
// and idle bounds are generous because statements legitimately run for
// seconds; header reads have no such excuse.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// NewHandler returns the HTTP handler for the query service.
func NewHandler(e Engine, opts Options) http.Handler {
	if opts.SlowQueryThreshold == 0 {
		opts.SlowQueryThreshold = 500 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	reg := opts.Registry
	//lint:ignore obs-nil config defaulting, not instrumentation branching: prefer the engine's registry so scrapes see its counters
	if reg == nil {
		if mp, ok := e.(MetricsProvider); ok {
			reg = mp.Metrics()
		} else {
			reg = obs.NewRegistry()
		}
	}
	s := &service{
		eng:       e,
		reg:       reg,
		slow:      opts.SlowQueryThreshold,
		logger:    opts.Logger,
		requests:  reg.Counter("server_requests_total", "query-service requests"),
		errors:    reg.Counter("server_request_errors_total", "query-service requests that failed"),
		retriable: reg.Counter("server_retriable_errors_total", "failed requests the client may safely resend (lock timeout, node failure)"),
		slowQ:     reg.Counter("server_slow_queries_total", "statements over the slow-query threshold"),
		reqDur:    reg.Histogram("server_request_duration_seconds", "query-service request wall time", nil),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query/service", s.serveQuery)
	mux.HandleFunc("/admin/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/admin/metrics", s.serveMetrics)
	mux.HandleFunc("/admin/stats", s.serveStats)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type service struct {
	eng    Engine
	reg    *obs.Registry
	slow   time.Duration
	logger *log.Logger

	requests  *obs.Counter
	errors    *obs.Counter
	retriable *obs.Counter
	slowQ     *obs.Counter
	reqDur    *obs.Histogram

	// queryID numbers requests for pprof labels and the slow-query log.
	queryID uint64
}

func (s *service) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *service) serveStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

type queryRequest struct {
	Statement string `json:"statement"`
	// Profile requests expanded response metrics; "timings" additionally
	// returns the span tree with per-operator, per-partition timings
	// (mirroring AsterixDB's query-service profiling); "plan" returns the
	// optimized logical plan (text and JSON tree) alongside the results.
	Profile string `json:"profile"`
	// Explain compiles and optimizes the statement but does not execute
	// it; the response carries only the plan.
	Explain bool `json:"explain"`
}

// queryMetrics keeps elapsedTime/resultCount stable for old clients and
// adds phase timings, the result payload size, and — when the cluster had
// to work around a dead node — the job attempt count and the nodes seen
// dead during execution.
type queryMetrics struct {
	ElapsedTime  string `json:"elapsedTime"`
	ResultCount  int    `json:"resultCount"`
	ParseTime    string `json:"parseTime"`
	OptimizeTime string `json:"optimizeTime"`
	ExecuteTime  string `json:"executeTime"`
	ResultSize   int64  `json:"resultSize"`
	// JobAttempts is how many times the runtime job executed (>1 means a
	// node failed mid-query and the job was retried on survivors).
	JobAttempts int `json:"jobAttempts,omitempty"`
	// DeadNodes lists node controllers observed dead while the statement
	// ran.
	DeadNodes []string `json:"deadNodes,omitempty"`
	// PeakWorkingMemBytes is the largest working-memory grant the memory
	// governor saw for any statement in the script.
	PeakWorkingMemBytes int64 `json:"peakWorkingMemBytes,omitempty"`
	// RulesFired maps optimizer rule name -> rewrite sites fired while
	// compiling the responded-to query (present with "profile":"plan").
	RulesFired map[string]int `json:"rulesFired,omitempty"`
	// WaitTimes attributes where the statement blocked, by category
	// (admission, lock, spill, flush, merge, exchange); only nonzero
	// categories appear.
	WaitTimes map[string]string `json:"waitTimes,omitempty"`
}

type queryResponse struct {
	Status  string            `json:"status"`
	Results []json.RawMessage `json:"results"`
	Errors  []string          `json:"errors,omitempty"`
	// Retriable tells the client the failure is transient (lock wait
	// timeout, node failure): the same statement may succeed if resent.
	Retriable bool         `json:"retriable,omitempty"`
	Metrics   queryMetrics `json:"metrics"`
	// Profile is the span tree, present only when requested.
	Profile *obs.SpanNode `json:"profile,omitempty"`
	// Plan is the optimized logical plan, present with "profile":"plan"
	// or the explain flag.
	Plan *planPayload `json:"plan,omitempty"`
}

// planPayload carries the optimized plan in both human-readable and
// machine-readable form.
type planPayload struct {
	Text string          `json:"text"`
	Tree json.RawMessage `json:"tree,omitempty"`
}

func (s *service) serveQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"status":"fatal","errors":["POST required"]}`, http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.Contains(ct, "application/json"):
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
			return
		}
	default:
		// Form encoding (statement=...) like the real service.
		if err := r.ParseForm(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid form body")
			return
		}
		req.Statement = r.PostFormValue("statement")
		req.Profile = r.PostFormValue("profile")
		req.Explain = r.PostFormValue("explain") == "true"
	}
	if strings.TrimSpace(req.Statement) == "" {
		writeError(w, http.StatusBadRequest, "empty statement")
		return
	}
	s.requests.Inc()
	if req.Explain {
		s.serveExplain(w, req.Statement)
		return
	}

	// Every request is traced (the spans feed the phase metrics and the
	// slow-query log); per-operator detail is opt-in via the profile flag.
	root := obs.NewSpan("request")
	if req.Profile == "timings" {
		root.SetDetailed(true)
	}
	ctx := obs.ContextWithSpan(r.Context(), root)

	// Label the goroutine (and everything Execute spawns downstream) so CPU
	// profiles group samples by query; the id ties a profile back to the
	// slow-query log.
	qid := strconv.FormatUint(atomic.AddUint64(&s.queryID, 1), 10)
	start := time.Now()
	var results []core.Result
	var err error
	rpprof.Do(ctx, rpprof.Labels("query_id", qid), func(ctx context.Context) {
		results, err = s.eng.Execute(ctx, req.Statement)
	})
	root.End()
	elapsed := time.Since(start)
	s.reqDur.Observe(elapsed.Seconds())

	resp := queryResponse{Status: "success"}
	if err != nil {
		s.errors.Inc()
		resp.Status = "fatal"
		resp.Errors = append(resp.Errors, err.Error())
		var nf *hyracks.NodeFailure
		switch {
		case errors.Is(err, txn.ErrLockTimeout):
			// AsterixDB reports lock-wait expiry as a timeout; the client
			// may simply resend the statement.
			resp.Status = "timeout"
			resp.Retriable = true
			s.retriable.Inc()
		case errors.Is(err, mem.ErrAdmissionTimeout):
			// The memory governor could not admit the query before its
			// wait bound expired; once running queries release working
			// memory a resend will be admitted.
			resp.Status = "timeout"
			resp.Retriable = true
			s.retriable.Inc()
		case errors.As(err, &nf):
			// Retries on survivors were already exhausted (or impossible);
			// resending still helps once nodes rejoin.
			resp.Retriable = true
			s.retriable.Inc()
		}
	}
	// Results of the last statement are the response payload (matching
	// the service's behavior for scripts).
	if len(results) > 0 {
		last := results[len(results)-1]
		switch last.Kind {
		case core.ResultQuery:
			for _, v := range last.Rows {
				resp.Results = append(resp.Results, json.RawMessage(adm.ToJSON(v)))
			}
		case core.ResultDML:
			resp.Results = append(resp.Results,
				json.RawMessage(fmt.Sprintf(`{"count":%d}`, last.Count)))
		}
	}
	var resultSize int64
	for _, raw := range resp.Results {
		resultSize += int64(len(raw))
	}
	// Surface node-failure recovery work: the max attempt count over the
	// script's statements and the union of nodes seen dead. Attempts is
	// reported only when a statement actually re-ran.
	attempts := 0
	var dead []string
	var peakMem int64
	for _, res := range results {
		if res.Attempts > attempts {
			attempts = res.Attempts
		}
		if res.PeakWorkingMem > peakMem {
			peakMem = res.PeakWorkingMem
		}
		for _, id := range res.DeadNodes {
			found := false
			for _, have := range dead {
				if have == id {
					found = true
					break
				}
			}
			if !found {
				dead = append(dead, id)
			}
		}
	}
	if attempts <= 1 {
		attempts = 0
	}
	parseT := root.TotalFor("parse")
	optT := root.TotalFor("compile")
	execT := root.TotalFor("execute")
	waits := root.WaitRollup()
	resp.Metrics = queryMetrics{
		ElapsedTime:         elapsed.String(),
		ResultCount:         len(resp.Results),
		ParseTime:           parseT.String(),
		OptimizeTime:        optT.String(),
		ExecuteTime:         execT.String(),
		ResultSize:          resultSize,
		JobAttempts:         attempts,
		DeadNodes:           dead,
		PeakWorkingMemBytes: peakMem,
	}
	for k, d := range waits {
		if d > 0 {
			if resp.Metrics.WaitTimes == nil {
				resp.Metrics.WaitTimes = map[string]string{}
			}
			resp.Metrics.WaitTimes[obs.WaitKind(k).String()] = d.String()
		}
	}
	if req.Profile == "timings" {
		resp.Profile = root.Tree()
	}
	if req.Profile == "plan" {
		// Plan of the last statement that produced one (matching the
		// results payload, which is also the last statement's).
		for i := len(results) - 1; i >= 0; i-- {
			if results[i].Plan != "" {
				resp.Plan = &planPayload{Text: results[i].Plan}
				if results[i].PlanJSON != "" {
					resp.Plan.Tree = json.RawMessage(results[i].PlanJSON)
				}
				resp.Metrics.RulesFired = results[i].RulesFired
				break
			}
		}
	}
	if s.slow >= 0 && elapsed >= s.slow {
		s.slowQ.Inc()
		line := fmt.Sprintf("server: slow query #%s (%v; parse=%v optimize=%v execute=%v", qid,
			elapsed, parseT, optT, execT)
		if top := waits.TopN(3); top != "" {
			line += "; waits: " + top
		}
		s.logger.Printf("%s): %s", line, truncateStmt(req.Statement))
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "success" {
		if resp.Retriable {
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
	}
	//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
	json.NewEncoder(w).Encode(&resp)
}

// serveExplain answers an explain-only request: the statement is parsed
// and optimized but never executed, and the response carries only the
// plan.
func (s *service) serveExplain(w http.ResponseWriter, statement string) {
	ex, ok := s.eng.(Explainer)
	if !ok {
		writeError(w, http.StatusNotImplemented, "engine does not support explain")
		return
	}
	start := time.Now()
	plan, err := ex.Explain(statement)
	elapsed := time.Since(start)
	resp := queryResponse{Status: "success"}
	if err != nil {
		s.errors.Inc()
		resp.Status = "fatal"
		resp.Errors = append(resp.Errors, err.Error())
	} else {
		resp.Plan = &planPayload{Text: plan}
		if raw, jerr := json.Marshal(plan); jerr == nil {
			resp.Results = append(resp.Results, json.RawMessage(raw))
		}
	}
	resp.Metrics = queryMetrics{
		ElapsedTime: elapsed.String(),
		ResultCount: len(resp.Results),
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "success" {
		w.WriteHeader(http.StatusInternalServerError)
	}
	//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
	json.NewEncoder(w).Encode(&resp)
}

// truncateStmt bounds slow-query log lines (statements can be whole
// scripts).
func truncateStmt(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 500 {
		return s[:500] + "…"
	}
	return s
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
	json.NewEncoder(w).Encode(&queryResponse{Status: "fatal", Errors: []string{msg}})
}
