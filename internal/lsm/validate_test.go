package lsm

import "testing"

func flushedTree(t *testing.T) *Tree {
	t.Helper()
	bc, _ := newEnv(t, 1024, 512)
	tr, err := Open(bc, "v", Options{MemBudget: 1 << 30, Policy: NoMergePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 2; gen++ {
		for i := 0; i < 100; i++ {
			tr.Upsert(ikey(i), ikey(i+gen))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestValidateDetectsComponentDisorder(t *testing.T) {
	tr := flushedTree(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("healthy tree failed validation: %v", err)
	}
	tr.mu.Lock()
	tr.disk[0], tr.disk[1] = tr.disk[1], tr.disk[0]
	tr.mu.Unlock()
	if err := tr.Validate(); err == nil {
		t.Fatal("validator missed out-of-order components")
	}
	tr.mu.Lock()
	tr.disk[0], tr.disk[1] = tr.disk[1], tr.disk[0]
	tr.mu.Unlock()
}

func TestValidateDetectsDroppedInList(t *testing.T) {
	tr := flushedTree(t)
	tr.disk[0].dropped = true
	if err := tr.Validate(); err == nil {
		t.Fatal("validator missed a dropped component in the live list")
	}
	tr.disk[0].dropped = false
}

func TestValidateDetectsManifestDrift(t *testing.T) {
	tr := flushedTree(t)
	// A component the manifest does not know about.
	tr.mu.Lock()
	extra := tr.disk[0]
	tr.disk = append([]*diskComponent{{seq: tr.seq, file: extra.file, bt: extra.bt, bloom: extra.bloom, refs: 1}}, tr.disk...)
	tr.seq++
	tr.mu.Unlock()
	if err := tr.Validate(); err == nil {
		t.Fatal("validator missed a component missing from the manifest")
	}
}
