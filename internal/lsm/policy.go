package lsm

// MergePolicy decides which disk components to merge after a flush. Sizes
// are entry counts, newest component first. PickMerge returns an inclusive
// index range and ok=true to request a merge.
//
// The policy menagerie mirrors AsterixDB's: no-merge (pure append),
// constant-components (bounded read amplification, high write
// amplification), and prefix/tiered (merge runs of similar size). The E8
// bench compares them.
type MergePolicy interface {
	PickMerge(sizes []int64) (lo, hi int, ok bool)
}

// NoMergePolicy never merges; read amplification grows with every flush.
type NoMergePolicy struct{}

// PickMerge implements MergePolicy.
func (NoMergePolicy) PickMerge([]int64) (int, int, bool) { return 0, 0, false }

// ConstantPolicy keeps at most Components disk components by merging all
// of them whenever the bound is exceeded.
type ConstantPolicy struct {
	Components int
}

// PickMerge implements MergePolicy.
func (p ConstantPolicy) PickMerge(sizes []int64) (int, int, bool) {
	max := p.Components
	if max < 1 {
		max = 1
	}
	if len(sizes) > max {
		return 0, len(sizes) - 1, true
	}
	return 0, 0, false
}

// TieredPolicy merges a run of components when a newer component has grown
// to within Ratio of the size of the run of older ones — the classic
// size-tiered scheme (AsterixDB's "prefix" policy is a close relative).
type TieredPolicy struct {
	// Ratio is the size multiple between tiers (default 3).
	Ratio float64
	// MinComponents is the run length that triggers a merge (default 3).
	MinComponents int
}

// PickMerge implements MergePolicy.
func (p TieredPolicy) PickMerge(sizes []int64) (int, int, bool) {
	ratio := p.Ratio
	if ratio <= 1 {
		ratio = 3
	}
	minRun := p.MinComponents
	if minRun < 2 {
		minRun = 3
	}
	// Find the longest newest-prefix of components whose sizes are within
	// ratio of each other; merge it when long enough.
	run := 1
	for i := 1; i < len(sizes); i++ {
		a, b := float64(sizes[i-1]), float64(sizes[i])
		if a == 0 || b == 0 {
			break
		}
		if b/a <= ratio && a/b <= ratio {
			run++
		} else {
			break
		}
	}
	if run >= minRun {
		return 0, run - 1, true
	}
	return 0, 0, false
}
