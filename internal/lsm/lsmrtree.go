package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/mem"
	"asterix/internal/obs"
	"asterix/internal/rtree"
	"asterix/internal/storage"
)

// RTreeIndex is an LSM R-tree: an in-memory R-tree component plus
// immutable STR-packed disk components. Deletes are antimatter entries
// that cancel matching (rect, key) pairs in older components — the design
// the paper says was adopted into AsterixDB after the Section V-B study.
type RTreeIndex struct {
	bc        *storage.BufferCache
	name      string
	memBudget int
	maxComps  int

	// wmu serializes mutations and flushes; the governor's arbitration
	// hook try-acquires it (see Tree.wmu).
	wmu sync.Mutex
	// charge accounts the memory component against the governor's shared
	// component pool (nil without a governor).
	charge *mem.ComponentCharge

	mu      sync.RWMutex
	mem     *rtree.RTree // payload: flag byte + primary key
	memSize int
	disk    []*rtreeComponent // newest first
	seq     int

	Flushes int
	Merges  int

	// Registry metrics (nil-safe no-ops when RTreeOptions.Metrics unset).
	mFlushes  *obs.Counter
	mMerges   *obs.Counter
	mFlushDur *obs.Histogram
	mMergeDur *obs.Histogram
}

type rtreeComponent struct {
	seq  int
	file storage.FileID
	rt   *rtree.DiskRTree

	// refs: 1 for the index's component list plus 1 per reader snapshot;
	// files are destroyed when the last reference drops (see Tree).
	refs int32
}

// RTreeOptions configures an LSM R-tree.
type RTreeOptions struct {
	MemBudget int // bytes; default 4 MiB
	MaxComps  int // full-merge when exceeded; default 4
	// Metrics, when set, receives the shared LSM flush/merge counters
	// and duration histograms.
	Metrics *obs.Registry
	// Gov, when set, charges the memory component to the governor's
	// shared component pool (see Options.Gov).
	Gov *mem.Governor
}

// OpenRTree opens (or creates) the LSM R-tree named by the file prefix.
func OpenRTree(bc *storage.BufferCache, name string, opts RTreeOptions) (*RTreeIndex, error) {
	if opts.MemBudget <= 0 {
		opts.MemBudget = 4 << 20
	}
	if opts.MaxComps <= 0 {
		opts.MaxComps = 4
	}
	t := &RTreeIndex{
		bc:        bc,
		name:      name,
		memBudget: opts.MemBudget,
		maxComps:  opts.MaxComps,
		mem:       rtree.New(),
	}
	t.charge = opts.Gov.RegisterComponent(name, t.tryFlushForGovernor)
	t.mFlushes = opts.Metrics.Counter("lsm_flushes_total", "LSM memory-component flushes")
	t.mMerges = opts.Metrics.Counter("lsm_merges_total", "LSM disk-component merges")
	t.mFlushDur = opts.Metrics.Histogram("lsm_flush_duration_seconds", "LSM flush wall time", nil)
	t.mMergeDur = opts.Metrics.Histogram("lsm_merge_duration_seconds", "LSM merge wall time", nil)
	data, err := os.ReadFile(t.manifestPath())
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var seqs []int
	for _, f := range strings.Fields(string(data)) {
		var s int
		if _, err := fmt.Sscanf(f, "%d", &s); err != nil {
			return nil, fmt.Errorf("lsm: corrupt rtree manifest %q", f)
		}
		seqs = append(seqs, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, s := range seqs {
		file, err := bc.FileManager().Open(t.componentFileName(s))
		if err != nil {
			return nil, err
		}
		rt, err := rtree.OpenDisk(bc, file)
		if err != nil {
			return nil, err
		}
		t.disk = append(t.disk, &rtreeComponent{seq: s, file: file, rt: rt, refs: 1})
		if s >= t.seq {
			t.seq = s + 1
		}
	}
	return t, nil
}

func (t *RTreeIndex) manifestPath() string {
	return filepath.Join(t.bc.FileManager().Root(), filepath.FromSlash(t.name)+".manifest")
}

func (t *RTreeIndex) componentFileName(seq int) string {
	return fmt.Sprintf("%s.r%06d", t.name, seq)
}

func (t *RTreeIndex) writeManifest() error {
	var sb strings.Builder
	for _, c := range t.disk {
		fmt.Fprintf(&sb, "%d\n", c.seq)
	}
	path := t.manifestPath()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func flagged(key []byte, tombstone bool) []byte {
	out := make([]byte, 0, len(key)+1)
	if tombstone {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, key...)
}

// Insert adds a live (rect, key) entry.
func (t *RTreeIndex) Insert(r rtree.Rect, key []byte) error {
	return t.InsertSpan(r, key, nil)
}

// InsertSpan is Insert with wait-time attribution: governor arbitration
// and flushes/merges triggered by this write are charged to sp (nil for
// no attribution).
func (t *RTreeIndex) InsertSpan(r rtree.Rect, key []byte, sp *obs.Span) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.mu.Lock()
	// If an antimatter entry for this pair is pending in memory, the
	// insert simply revives it.
	t.mem.Delete(r, flagged(key, true))
	t.mem.Insert(r, flagged(key, false))
	t.memSize += len(key) + 64
	t.mu.Unlock()
	return t.afterPut(len(key)+64, sp)
}

// Delete records the removal of (rect, key): it cancels any in-memory live
// entry and inserts antimatter to cancel older disk entries.
func (t *RTreeIndex) Delete(r rtree.Rect, key []byte) error {
	return t.DeleteSpan(r, key, nil)
}

// DeleteSpan is Delete with wait-time attribution (see InsertSpan).
func (t *RTreeIndex) DeleteSpan(r rtree.Rect, key []byte, sp *obs.Span) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.mu.Lock()
	t.mem.Delete(r, flagged(key, false))
	t.mem.Insert(r, flagged(key, true))
	t.memSize += len(key) + 64
	t.mu.Unlock()
	return t.afterPut(len(key)+64, sp)
}

// afterPut charges the mutation to the governor and applies the per-index
// budget. Caller holds t.wmu. Arbitration time counts as flush wait on
// sp (see Tree.afterPut).
func (t *RTreeIndex) afterPut(delta int, sp *obs.Span) error {
	var t0 time.Time
	//lint:ignore obs-nil skips time.Now on the untraced write hot path, not a call guard
	if sp != nil {
		t0 = time.Now()
	}
	flushSelf, err := t.charge.Add(int64(delta))
	//lint:ignore obs-nil skips time.Since on the untraced write hot path, not a call guard
	if sp != nil {
		sp.AddWait(obs.WaitFlush, time.Since(t0))
	}
	if err != nil {
		return err
	}
	t.mu.RLock()
	over := t.memSize >= t.memBudget
	t.mu.RUnlock()
	if flushSelf || over {
		return t.flushLocked(sp)
	}
	return nil
}

// Unregister removes the index's account from the governor's component
// pool (index or dataset drop).
func (t *RTreeIndex) Unregister() {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.charge.Unregister()
	t.charge = nil
}

// tryFlushForGovernor is the arbitration hook: flush if the writer lock
// is free, otherwise report busy so the arbiter skips this index.
func (t *RTreeIndex) tryFlushForGovernor() (bool, error) {
	if !t.wmu.TryLock() {
		return false, nil
	}
	defer t.wmu.Unlock()
	return true, t.flushLocked(nil)
}

// snapshotComps acquires a reference-counted component view.
func (t *RTreeIndex) snapshotComps() []*rtreeComponent {
	t.mu.RLock()
	comps := append([]*rtreeComponent(nil), t.disk...)
	for _, c := range comps {
		atomic.AddInt32(&c.refs, 1)
	}
	t.mu.RUnlock()
	return comps
}

// releaseComps drops references, destroying merged-away components on the
// last release.
func (t *RTreeIndex) releaseComps(comps []*rtreeComponent) error {
	var firstErr error
	for _, c := range comps {
		if atomic.AddInt32(&c.refs, -1) == 0 {
			if err := t.bc.Evict(c.file); err != nil && firstErr == nil {
				firstErr = err
				continue
			}
			if err := t.bc.FileManager().Delete(t.componentFileName(c.seq)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Search visits live keys whose rects intersect query, applying antimatter
// cancellation across components (newest wins).
func (t *RTreeIndex) Search(query rtree.Rect, fn func(r rtree.Rect, key []byte) bool) error {
	comps := t.snapshotComps()
	defer t.releaseComps(comps)
	t.mu.RLock()
	mem := t.mem
	t.mu.RUnlock()

	type pairKey string
	mk := func(r rtree.Rect, key []byte) pairKey {
		return pairKey(fmt.Sprintf("%v|%s", r, key))
	}
	seen := map[pairKey]bool{} // pair already decided (live emitted or cancelled)
	stopped := false
	visit := func(r rtree.Rect, payload []byte) bool {
		tomb := payload[0] == 1
		key := payload[1:]
		pk := mk(r, key)
		if seen[pk] {
			return true
		}
		seen[pk] = true
		if !tomb {
			if !fn(r, append([]byte(nil), key...)) {
				stopped = true
				return false
			}
		}
		return true
	}
	mem.Search(query, func(e rtree.Entry) bool { return visit(e.Rect, e.Payload) })
	if stopped {
		return nil
	}
	for _, c := range comps {
		err := c.rt.Search(query, func(e rtree.Entry) bool { return visit(e.Rect, e.Payload) })
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// MemSize returns the memory component's approximate byte size.
func (t *RTreeIndex) MemSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.memSize
}

// DiskComponents returns the number of disk components.
func (t *RTreeIndex) DiskComponents() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.disk)
}

// Flush packs the memory component into a new disk component.
func (t *RTreeIndex) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.flushLocked(nil)
}

// flushLocked is Flush with t.wmu held (no put can race the swap). The
// flush and any merge it triggers are charged to sp as flush/merge wait.
func (t *RTreeIndex) flushLocked(sp *obs.Span) error {
	flushStart := time.Now()
	t.mu.Lock()
	if t.mem.Len() == 0 {
		t.mu.Unlock()
		return nil
	}
	mem := t.mem
	seq := t.seq
	t.seq++
	t.mu.Unlock()

	var entries []rtree.Entry
	mem.All(func(e rtree.Entry) bool {
		entries = append(entries, e)
		return true
	})
	file, err := t.bc.FileManager().Open(t.componentFileName(seq))
	if err != nil {
		return err
	}
	rt, err := rtree.BuildDisk(t.bc, file, entries)
	if err != nil {
		return err
	}
	if err := t.bc.FlushFile(file); err != nil {
		return err
	}

	t.mu.Lock()
	t.disk = append([]*rtreeComponent{{seq: seq, file: file, rt: rt, refs: 1}}, t.disk...)
	t.mem = rtree.New()
	t.memSize = 0
	t.Flushes++
	err = t.writeManifest()
	needMerge := len(t.disk) > t.maxComps
	t.mu.Unlock()
	t.charge.Flushed()
	t.mFlushes.Inc()
	t.mFlushDur.Observe(time.Since(flushStart).Seconds())
	sp.AddWait(obs.WaitFlush, time.Since(flushStart))
	if err != nil {
		return err
	}
	if needMerge {
		return t.mergeAll(sp)
	}
	return nil
}

// mergeAll performs a full merge of every disk component, cancelling
// antimatter pairs and dropping the antimatter itself. Merge wall time
// is charged to sp as merge wait.
func (t *RTreeIndex) mergeAll(sp *obs.Span) error {
	mergeStart := time.Now()
	t.mu.Lock()
	victims := append([]*rtreeComponent(nil), t.disk...)
	for _, c := range victims {
		atomic.AddInt32(&c.refs, 1) // hold while merging
	}
	seq := t.seq
	t.seq++
	t.mu.Unlock()
	if len(victims) < 2 {
		for _, c := range victims {
			atomic.AddInt32(&c.refs, -1)
		}
		return nil
	}

	// Newest-first traversal with pair cancellation.
	type pairKey string
	decided := map[pairKey]bool{}
	var live []rtree.Entry
	everything := rtree.Rect{MinX: -1e308, MinY: -1e308, MaxX: 1e308, MaxY: 1e308}
	for _, c := range victims {
		err := c.rt.Search(everything, func(e rtree.Entry) bool {
			pk := pairKey(fmt.Sprintf("%v|%s", e.Rect, e.Payload[1:]))
			if decided[pk] {
				return true
			}
			decided[pk] = true
			if e.Payload[0] == 0 {
				live = append(live, e)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	file, err := t.bc.FileManager().Open(t.componentFileName(seq))
	if err != nil {
		return err
	}
	rt, err := rtree.BuildDisk(t.bc, file, live)
	if err != nil {
		return err
	}
	if err := t.bc.FlushFile(file); err != nil {
		return err
	}

	t.mu.Lock()
	t.disk = []*rtreeComponent{{seq: seq, file: file, rt: rt, refs: 1}}
	t.Merges++
	err = t.writeManifest()
	t.mu.Unlock()
	t.mMerges.Inc()
	t.mMergeDur.Observe(time.Since(mergeStart).Seconds())
	sp.AddWait(obs.WaitMerge, time.Since(mergeStart))
	if err != nil {
		return err
	}
	// Drop the merge's hold and the list's reference; destruction waits
	// for any concurrent readers.
	if err := t.releaseComps(victims); err != nil {
		return err
	}
	return t.releaseComps(victims)
}
