// Package lsm implements the log-structured merge storage layer: every
// dataset partition and secondary index in the system is an LSM index with
// an in-memory component (bounded by the ingestion budget of Figure 2), a
// stack of immutable disk components, antimatter (tombstone) deletes, per-
// component bloom filters, and pluggable merge policies.
package lsm

import (
	"bytes"
	"math/rand"
	"sync"
)

// memEntry is one key's newest state in the memory component.
type memEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

const maxSkipHeight = 16

type skipNode struct {
	entry memEntry
	next  [maxSkipHeight]*skipNode
}

// memTable is a skiplist-based sorted map acting as the LSM memory
// component. Safe for concurrent use.
type memTable struct {
	mu     sync.RWMutex
	head   *skipNode
	height int
	count  int
	bytes  int
	rng    *rand.Rand
}

func newMemTable() *memTable {
	return &memTable{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(1)),
	}
}

// put upserts the key's state and returns the byte-size delta it caused
// (negative when a replace shrinks the stored value) so callers can keep
// external memory accounting exact.
func (m *memTable) put(key, value []byte, tombstone bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var update [maxSkipHeight]*skipNode
	x := m.head
	for i := m.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].entry.key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.entry.key, key) {
		delta := len(value) - len(n.entry.value)
		m.bytes += delta
		n.entry.value = append([]byte(nil), value...)
		n.entry.tombstone = tombstone
		return delta
	}
	h := 1
	for h < maxSkipHeight && m.rng.Intn(2) == 0 {
		h++
	}
	if h > m.height {
		for i := m.height; i < h; i++ {
			update[i] = m.head
		}
		m.height = h
	}
	n := &skipNode{entry: memEntry{
		key:       append([]byte(nil), key...),
		value:     append([]byte(nil), value...),
		tombstone: tombstone,
	}}
	for i := 0; i < h; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.count++
	delta := len(key) + len(value) + 32
	m.bytes += delta
	return delta
}

// get returns the key's state if present.
func (m *memTable) get(key []byte) (value []byte, tombstone, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	for i := m.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].entry.key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.entry.key, key) {
		return n.entry.value, n.entry.tombstone, true
	}
	return nil, false, false
}

// size returns the approximate bytes held.
func (m *memTable) size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// len returns the number of distinct keys.
func (m *memTable) len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// scan visits entries (including tombstones) with lo <= key <= hi in
// order; nil bounds are unbounded. fn returning false stops.
func (m *memTable) scan(lo, hi []byte, fn func(e memEntry) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	if lo != nil {
		for i := m.height - 1; i >= 0; i-- {
			for x.next[i] != nil && bytes.Compare(x.next[i].entry.key, lo) < 0 {
				x = x.next[i]
			}
		}
	}
	for n := x.next[0]; n != nil; n = n.next[0] {
		if hi != nil && bytes.Compare(n.entry.key, hi) > 0 {
			return
		}
		if !fn(n.entry) {
			return
		}
	}
}
