package lsm

import (
	"bytes"
	"fmt"
	"sync/atomic"
)

// Validate verifies the LSM tree's component invariants:
//
//   - disk component sequence numbers are strictly decreasing newest
//     first. Position order is the recency order the k-way merges trust,
//     and the manifest round-trip (readManifest sorts by seq) silently
//     assumes the two agree — a merge policy picking lo > 0 would break
//     this, and this check is what would catch it;
//   - the next sequence number is above every live component's;
//   - every listed component is referenced and not dropped;
//   - each component's B+tree passes its own deep validation, with keys
//     in strict order and every value carrying a flag byte;
//   - each component's bloom filter answers mayContain=true for every
//     key actually present (no false negatives);
//   - the on-disk manifest lists exactly the live components.
//
// O(total entries); intended for tests and opt-in check hooks.
func (t *Tree) Validate() error {
	comps := t.snapshot()
	defer func() {
		// Validation is read-only: releasing the snapshot cannot be the
		// last reference while the components remain in the tree's list.
		_ = t.release(comps)
	}()
	t.mu.RLock()
	nextSeq := t.seq
	t.mu.RUnlock()

	for i, c := range comps {
		if i > 0 && comps[i-1].seq <= c.seq {
			return fmt.Errorf("lsm: components out of order: position %d has seq %d, position %d has seq %d (newest-first must be strictly decreasing)",
				i-1, comps[i-1].seq, i, c.seq)
		}
		if c.seq >= nextSeq {
			return fmt.Errorf("lsm: component seq %d >= next seq %d", c.seq, nextSeq)
		}
		// The list holds one reference and this snapshot another.
		if refs := atomic.LoadInt32(&c.refs); refs < 2 {
			return fmt.Errorf("lsm: live component seq %d has %d refs, want >= 2 (list + snapshot)", c.seq, refs)
		}
		if c.dropped {
			return fmt.Errorf("lsm: component seq %d is in the list but marked dropped", c.seq)
		}
		if err := c.bt.Validate(); err != nil {
			return fmt.Errorf("lsm: component seq %d: %w", c.seq, err)
		}
		var prev []byte
		var scanErr error
		err := c.bt.Scan(nil, nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				scanErr = fmt.Errorf("lsm: component seq %d keys not strictly increasing", c.seq)
				return false
			}
			prev = append(prev[:0], k...)
			if len(v) < 1 || v[0] > 1 {
				scanErr = fmt.Errorf("lsm: component seq %d value missing antimatter flag byte", c.seq)
				return false
			}
			if !c.bloom.mayContain(k) {
				scanErr = fmt.Errorf("lsm: component seq %d bloom filter false negative", c.seq)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
	}

	manifest, err := t.readManifest()
	if err != nil {
		return err
	}
	// Compare against the current list, which may have advanced past our
	// snapshot under concurrent flushes; in the single-threaded test and
	// hook contexts the two are identical.
	t.mu.RLock()
	live := make([]int, len(t.disk))
	for i, c := range t.disk {
		live[i] = c.seq
	}
	t.mu.RUnlock()
	if len(manifest) != len(live) {
		return fmt.Errorf("lsm: manifest lists %d components, tree has %d", len(manifest), len(live))
	}
	for i := range live {
		if manifest[i] != live[i] {
			return fmt.Errorf("lsm: manifest seq %d at position %d, tree has %d", manifest[i], i, live[i])
		}
	}
	return nil
}
