package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"asterix/internal/check"
	"asterix/internal/fault"
	"asterix/internal/mem"
	"asterix/internal/rtree"
	"asterix/internal/storage"
)

// mustValidate runs the deep LSM and buffer-cache validators and checks
// for leaked pins; called at the end of tests that exercised flushes,
// merges, or reopen.
func mustValidate(t *testing.T, tr *Tree, bc *storage.BufferCache) {
	t.Helper()
	check.MustValidate(t, tr)
	check.MustValidate(t, bc)
	if n := bc.Pinned(); n != 0 {
		t.Errorf("buffer cache still holds %d pins after the test", n)
	}
}

func newEnv(t testing.TB, pageSize, frames int) (*storage.BufferCache, string) {
	t.Helper()
	dir := t.TempDir()
	fm, err := storage.NewFileManager(dir, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	return storage.NewBufferCache(fm, frames), dir
}

func ikey(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestMemTableBasics(t *testing.T) {
	m := newMemTable()
	m.put([]byte("b"), []byte("2"), false)
	m.put([]byte("a"), []byte("1"), false)
	m.put([]byte("c"), []byte("3"), true)
	if v, tomb, ok := m.get([]byte("a")); !ok || tomb || string(v) != "1" {
		t.Fatalf("get a: %q %v %v", v, tomb, ok)
	}
	if _, tomb, ok := m.get([]byte("c")); !ok || !tomb {
		t.Fatal("tombstone lost")
	}
	if _, _, ok := m.get([]byte("zz")); ok {
		t.Fatal("phantom key")
	}
	var keys []string
	m.scan(nil, nil, func(e memEntry) bool {
		keys = append(keys, string(e.key))
		return true
	})
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("scan order: %v", keys)
	}
	// Bounded scan.
	keys = nil
	m.scan([]byte("b"), []byte("b"), func(e memEntry) bool {
		keys = append(keys, string(e.key))
		return true
	})
	if fmt.Sprint(keys) != "[b]" {
		t.Fatalf("bounded scan: %v", keys)
	}
	if m.len() != 3 {
		t.Fatalf("len = %d", m.len())
	}
}

func TestMemTableOrderedUnderRandomInserts(t *testing.T) {
	m := newMemTable()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		m.put(ikey(r.Intn(1000)), ikey(i), false)
	}
	var prev []byte
	m.scan(nil, nil, func(e memEntry) bool {
		if prev != nil && string(prev) >= string(e.key) {
			t.Fatalf("out of order: %x after %x", e.key, prev)
		}
		prev = append(prev[:0], e.key...)
		return true
	})
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(ikey(i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(ikey(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
	fp := 0
	for i := 1000; i < 11000; i++ {
		if b.mayContain(ikey(i)) {
			fp++
		}
	}
	if fp > 500 { // expect ~1%, allow 5%
		t.Errorf("false positive rate too high: %d/10000", fp)
	}
}

func TestTreeGetUpsertDelete(t *testing.T) {
	bc, _ := newEnv(t, 1024, 256)
	tr, err := Open(bc, "ds/primary", Options{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Upsert(ikey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 5 {
		if err := tr.Delete(ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		v, ok, err := tr.Get(ikey(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if ok {
				t.Fatalf("deleted key %d still visible", i)
			}
		} else if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q %v", i, v, ok)
		}
	}
}

func TestTreeFlushAndNewestWins(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	tr, err := Open(bc, "t", Options{MemBudget: 1 << 30, Policy: NoMergePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	// Three generations of the same keys across three components.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 200; i++ {
			tr.Upsert(ikey(i), []byte(fmt.Sprintf("gen%d-%d", gen, i)))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.DiskComponents() != 3 {
		t.Fatalf("components = %d", tr.DiskComponents())
	}
	for i := 0; i < 200; i++ {
		v, ok, err := tr.Get(ikey(i))
		if err != nil || !ok {
			t.Fatal(err, ok)
		}
		if string(v) != fmt.Sprintf("gen2-%d", i) {
			t.Fatalf("key %d: newest-wins violated: %q", i, v)
		}
	}
	// Scan must also see exactly one (newest) version per key.
	n := 0
	err = tr.Scan(nil, nil, func(k, v []byte) bool {
		if string(v) != fmt.Sprintf("gen2-%d", int(binary.BigEndian.Uint64(k))) {
			t.Fatalf("scan got %q", v)
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("scan found %d", n)
	}
	mustValidate(t, tr, bc)
}

func TestTreeScanAcrossMemAndDisk(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	tr, _ := Open(bc, "t", Options{MemBudget: 1 << 30, Policy: NoMergePolicy{}})
	// Even keys on disk.
	for i := 0; i < 400; i += 2 {
		tr.Upsert(ikey(i), []byte("disk"))
	}
	tr.Flush()
	// Odd keys in memory; delete some even ones from memory (antimatter).
	for i := 1; i < 400; i += 2 {
		tr.Upsert(ikey(i), []byte("mem"))
	}
	for i := 0; i < 400; i += 20 {
		tr.Delete(ikey(i))
	}
	var got []int
	err := tr.Scan(ikey(10), ikey(50), func(k, v []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 10..50 minus {20, 40} (deleted; 10, 30, 50 wait: deletes are 0,20,40,...).
	want := []int{}
	for i := 10; i <= 50; i++ {
		if i%20 == 0 {
			continue
		}
		want = append(want, i)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan got %v, want %v", got, want)
	}
}

func TestTreeAutoFlushOnBudget(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	tr, _ := Open(bc, "t", Options{MemBudget: 8 << 10, Policy: NoMergePolicy{}})
	for i := 0; i < 2000; i++ {
		tr.Upsert(ikey(i), make([]byte, 32))
	}
	if tr.Flushes == 0 {
		t.Error("expected automatic flushes when exceeding the memory budget")
	}
	n, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("count = %d", n)
	}
}

func TestConstantPolicyMerges(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	tr, _ := Open(bc, "t", Options{MemBudget: 1 << 30, Policy: ConstantPolicy{Components: 2}})
	for gen := 0; gen < 6; gen++ {
		for i := gen * 100; i < (gen+1)*100; i++ {
			tr.Upsert(ikey(i), ikey(i))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.DiskComponents() > 2 {
		t.Errorf("constant policy exceeded bound: %d components", tr.DiskComponents())
	}
	if tr.Merges == 0 {
		t.Error("expected merges")
	}
	n, _ := tr.Count()
	if n != 600 {
		t.Fatalf("count after merges = %d", n)
	}
	mustValidate(t, tr, bc)
}

func TestMergeDropsTombstones(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	tr, _ := Open(bc, "t", Options{MemBudget: 1 << 30, Policy: NoMergePolicy{}})
	for i := 0; i < 100; i++ {
		tr.Upsert(ikey(i), ikey(i))
	}
	tr.Flush()
	for i := 0; i < 100; i += 2 {
		tr.Delete(ikey(i))
	}
	tr.Flush()
	if err := tr.mergeRange(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if tr.DiskComponents() != 1 {
		t.Fatalf("components = %d", tr.DiskComponents())
	}
	n, _ := tr.Count()
	if n != 50 {
		t.Fatalf("count = %d", n)
	}
	// The merged component must physically contain only 50 entries
	// (tombstones dropped in a full merge).
	tr.mu.RLock()
	physical := tr.disk[0].bt.Count()
	tr.mu.RUnlock()
	if physical != 50 {
		t.Errorf("physical entries = %d, tombstones not dropped", physical)
	}
	mustValidate(t, tr, bc)
}

func TestTreeReopenFromManifest(t *testing.T) {
	dir := t.TempDir()
	fm, err := storage.NewFileManager(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bc := storage.NewBufferCache(fm, 256)
	tr, _ := Open(bc, "ds/p0/pk", Options{MemBudget: 1 << 30, Policy: NoMergePolicy{}})
	for i := 0; i < 300; i++ {
		tr.Upsert(ikey(i), ikey(i))
	}
	tr.Flush()
	for i := 300; i < 400; i++ {
		tr.Upsert(ikey(i), ikey(i))
	}
	tr.Flush()
	bc.FlushAll()
	fm.Close()

	fm2, _ := storage.NewFileManager(dir, 1024)
	defer fm2.Close()
	bc2 := storage.NewBufferCache(fm2, 256)
	tr2, err := Open(bc2, "ds/p0/pk", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.DiskComponents() != 2 {
		t.Fatalf("reopened components = %d", tr2.DiskComponents())
	}
	n, _ := tr2.Count()
	if n != 400 {
		t.Fatalf("reopened count = %d", n)
	}
	if _, ok, _ := tr2.Get(ikey(42)); !ok {
		t.Error("key lost across reopen")
	}
	mustValidate(t, tr2, bc2)
}

// Property: LSM tree matches a reference map under random ops with
// periodic flushes and merges.
func TestPropTreeMatchesReference(t *testing.T) {
	bc, _ := newEnv(t, 1024, 1024)
	tr, _ := Open(bc, "t", Options{MemBudget: 1 << 30, Policy: ConstantPolicy{Components: 3}})
	ref := map[string]string{}
	r := rand.New(rand.NewSource(21))
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("k%03d", r.Intn(300))
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := fmt.Sprintf("v%d", op)
			tr.Upsert([]byte(k), []byte(v))
			ref[k] = v
		case 6, 7:
			tr.Delete([]byte(k))
			delete(ref, k)
		case 8:
			if err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
		case 9:
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, inRef := ref[k]
			if ok != inRef || (ok && string(v) != want) {
				t.Fatalf("op %d: get(%s) = %q,%v want %q,%v", op, k, v, ok, want, inRef)
			}
		}
	}
	// Final full comparison via scan.
	got := map[string]string{}
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("scan size %d != ref %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("key %s: %q != %q", k, got[k], v)
		}
	}
	mustValidate(t, tr, bc)
}

func TestLSMRTreeInsertSearchDelete(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	rt, err := OpenRTree(bc, "idx/spatial", RTreeOptions{MemBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		x := float64(i % 20)
		y := float64(i / 20)
		if err := rt.Insert(rtree.PointRect(x, y), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	rt.Search(rtree.Rect{MinX: 0, MinY: 0, MaxX: 4.5, MaxY: 4.5}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 25 {
		t.Fatalf("search found %d, want 25", count)
	}
	// Delete a few and verify they disappear.
	rt.Delete(rtree.PointRect(0, 0), ikey(0))
	rt.Delete(rtree.PointRect(1, 0), ikey(1))
	count = 0
	rt.Search(rtree.Rect{MinX: 0, MinY: 0, MaxX: 4.5, MaxY: 4.5}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 23 {
		t.Fatalf("after deletes found %d, want 23", count)
	}
}

func TestLSMRTreeAntimatterAcrossComponents(t *testing.T) {
	bc, _ := newEnv(t, 1024, 512)
	rt, _ := OpenRTree(bc, "sp", RTreeOptions{MemBudget: 1 << 30, MaxComps: 100})
	for i := 0; i < 100; i++ {
		rt.Insert(rtree.PointRect(float64(i), 0), ikey(i))
	}
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete half after the flush: antimatter lives in memory, data on disk.
	for i := 0; i < 100; i += 2 {
		rt.Delete(rtree.PointRect(float64(i), 0), ikey(i))
	}
	count := 0
	rt.Search(rtree.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 1}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("found %d, want 50", count)
	}
	// Flush the antimatter too; still 50 visible across two components.
	rt.Flush()
	if rt.DiskComponents() != 2 {
		t.Fatalf("components = %d", rt.DiskComponents())
	}
	count = 0
	rt.Search(rtree.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 1}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("after antimatter flush found %d, want 50", count)
	}
	// Full merge cancels pairs and drops antimatter.
	if err := rt.mergeAll(nil); err != nil {
		t.Fatal(err)
	}
	if rt.DiskComponents() != 1 {
		t.Fatalf("components after merge = %d", rt.DiskComponents())
	}
	count = 0
	rt.Search(rtree.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 1}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("after merge found %d, want 50", count)
	}
}

func TestLSMRTreeReopen(t *testing.T) {
	dir := t.TempDir()
	fm, _ := storage.NewFileManager(dir, 1024)
	bc := storage.NewBufferCache(fm, 256)
	rt, _ := OpenRTree(bc, "sp", RTreeOptions{MemBudget: 1 << 30})
	for i := 0; i < 50; i++ {
		rt.Insert(rtree.PointRect(float64(i), float64(i)), ikey(i))
	}
	rt.Flush()
	bc.FlushAll()
	fm.Close()

	fm2, _ := storage.NewFileManager(dir, 1024)
	defer fm2.Close()
	bc2 := storage.NewBufferCache(fm2, 256)
	rt2, err := OpenRTree(bc2, "sp", RTreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	rt2.Search(rtree.Rect{MinX: -1, MinY: -1, MaxX: 100, MaxY: 100}, func(r rtree.Rect, key []byte) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("reopened search found %d", count)
	}
}

func TestTieredPolicy(t *testing.T) {
	p := TieredPolicy{Ratio: 3, MinComponents: 3}
	if _, _, ok := p.PickMerge([]int64{100, 90}); ok {
		t.Error("two components should not merge with MinComponents=3")
	}
	lo, hi, ok := p.PickMerge([]int64{100, 90, 110})
	if !ok || lo != 0 || hi != 2 {
		t.Errorf("similar sizes should merge: %d..%d %v", lo, hi, ok)
	}
	if _, _, ok := p.PickMerge([]int64{10, 9, 10000}); ok {
		t.Error("dissimilar run should not merge")
	}
}

func BenchmarkTreeUpsert(b *testing.B) {
	bc, _ := newEnv(b, 4096, 2048)
	tr, _ := Open(bc, "bench", Options{MemBudget: 8 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Upsert(ikey(i), ikey(i))
	}
}

func BenchmarkTreeGet(b *testing.B) {
	bc, _ := newEnv(b, 4096, 2048)
	tr, _ := Open(bc, "bench", Options{MemBudget: 1 << 20})
	for i := 0; i < 50000; i++ {
		tr.Upsert(ikey(i), ikey(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(ikey(i % 50000))
	}
}

// TestTreeConcurrentReadersAndWriter exercises the LSM tree under a
// writer with periodic flushes and concurrent point readers.
func TestTreeConcurrentReadersAndWriter(t *testing.T) {
	bc, _ := newEnv(t, 1024, 1024)
	tr, _ := Open(bc, "conc", Options{MemBudget: 32 << 10, Policy: ConstantPolicy{Components: 3}})
	const n = 3000
	done := make(chan error, 4)
	go func() {
		for i := 0; i < n; i++ {
			if err := tr.Upsert(ikey(i), ikey(i*7)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for g := 0; g < 3; g++ {
		go func(seed int) {
			for i := 0; i < 2000; i++ {
				k := (seed*31 + i*17) % n
				v, ok, err := tr.Get(ikey(k))
				if err != nil {
					done <- err
					return
				}
				if ok && string(v) != string(ikey(k*7)) {
					done <- fmt.Errorf("key %d: wrong value", k)
					return
				}
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All writes present afterwards.
	cnt, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("count = %d, want %d", cnt, n)
	}
	mustValidate(t, tr, bc)
}

func TestFlushFaultKeepsDataAndRetries(t *testing.T) {
	fault.Disarm()
	defer fault.Disarm()
	bc, _ := newEnv(t, 512, 64)
	tr, err := Open(bc, "d/faultflush", Options{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Upsert(ikey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fault.Arm("lsm.flush.io:error"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("flush with armed fault: got %v", err)
	}
	fault.Disarm()
	// The data never left the memory component; a retry flushes it.
	if tr.MemSize() == 0 {
		t.Fatal("failed flush emptied the memtable")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, ok, err := tr.Get(ikey(i)); err != nil || !ok {
			t.Fatalf("key %d lost after failed+retried flush (ok=%v err=%v)", i, ok, err)
		}
	}
	mustValidate(t, tr, bc)
}

func TestMergeFaultReleasesVictims(t *testing.T) {
	fault.Disarm()
	defer fault.Disarm()
	bc, _ := newEnv(t, 512, 64)
	tr, err := Open(bc, "d/faultmerge", Options{MemBudget: 1 << 20, Policy: ConstantPolicy{Components: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Two flushes, then a third whose maybeMerge will pick a merge and
	// hit the armed fault.
	for round := 0; round < 2; round++ {
		for i := round * 30; i < (round+1)*30; i++ {
			if err := tr.Upsert(ikey(i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fault.Arm("lsm.merge.io:error"); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 90; i++ {
		if err := tr.Upsert(ikey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("merge with armed fault: got %v", err)
	}
	fault.Disarm()
	// The victims must still be live (refs released, not dropped): every
	// key remains readable and the structure validates.
	for i := 0; i < 90; i++ {
		if _, ok, err := tr.Get(ikey(i)); err != nil || !ok {
			t.Fatalf("key %d lost after failed merge (ok=%v err=%v)", i, ok, err)
		}
	}
	comps := tr.snapshot()
	for _, c := range comps {
		if got := atomic.LoadInt32(&c.refs); got != 2 {
			t.Fatalf("component seq %d refs = %d after failed merge, want 2 (list + snapshot)", c.seq, got)
		}
	}
	if err := tr.release(comps); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tr, bc)
}

// TestGovernorArbitratedFlush overflows a shared component pool from a
// second tree and checks the earliest-dirty tree is the one flushed —
// cross-tree arbitration replacing the per-tree threshold.
func TestGovernorArbitratedFlush(t *testing.T) {
	bc, _ := newEnv(t, 1024, 256)
	gov := mem.NewGovernor(mem.Config{ComponentBytes: 4 << 10, WorkingBytes: 1 << 20})
	// Per-tree budgets far above the pool: only the governor can flush.
	opts := Options{MemBudget: 1 << 30, Gov: gov}
	a, err := Open(bc, "arb/a", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(bc, "arb/b", opts)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 100)
	// Dirty a first with ~2 KiB, then push b past the 4 KiB pool.
	for i := 0; i < 16; i++ {
		if err := a.Upsert(ikey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := b.Upsert(ikey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if a.Flushes == 0 {
		t.Fatalf("earliest-dirty tree a not flushed (a=%d b=%d)", a.Flushes, b.Flushes)
	}
	if got := gov.ComponentCharged(); got > 4<<10 {
		t.Fatalf("component pool still over budget after arbitration: %d", got)
	}
	if gov.StatsSnapshot().ArbitratedFlushes == 0 {
		t.Fatal("arbitrated-flush counter stayed zero")
	}
	mustValidate(t, a, bc)
	mustValidate(t, b, bc)
}
