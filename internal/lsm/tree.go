package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/btree"
	"asterix/internal/check"
	"asterix/internal/fault"
	"asterix/internal/mem"
	"asterix/internal/obs"
	"asterix/internal/storage"
)

// Tree is an LSM B+tree: one mutable memory component plus a stack of
// immutable, bloom-guarded disk components. It is the storage form of
// every primary index and every value-keyed secondary index.
type Tree struct {
	bc        *storage.BufferCache
	name      string // file-name prefix ("dataset/part0/primary")
	memBudget int
	policy    MergePolicy

	// wmu serializes mutations and flushes. The governor's arbitration
	// hook try-acquires it, so a tree mid-write is skipped rather than
	// deadlocked on when another tree's ingestion overflows the pool.
	wmu sync.Mutex
	// charge is this tree's account against the governor's memory-
	// component pool (nil without a governor: per-tree budget only).
	charge *mem.ComponentCharge

	mu   sync.RWMutex
	mem  *memTable
	disk []*diskComponent // newest first
	seq  int

	// Stats for the merge-policy ablation (experiment E8).
	Flushes int
	Merges  int

	// Registry metrics (nil-safe no-ops when Options.Metrics is unset).
	mFlushes  *obs.Counter
	mMerges   *obs.Counter
	mFlushDur *obs.Histogram
	mMergeDur *obs.Histogram

	// OnFlush, if set, is called after each flush completes (the
	// transaction log uses it to advance the checkpoint LSN).
	OnFlush func()
}

type diskComponent struct {
	seq   int
	file  storage.FileID
	bt    *btree.BTree
	bloom *bloomFilter

	// refs counts users of the component: 1 for the tree's component
	// list plus 1 per in-flight reader snapshot. A merge "deletes" a
	// component by dropping the list's reference; the files are
	// destroyed only when the last reader releases (dropped is set then).
	refs    int32
	dropped bool
}

// Options configures an LSM tree.
type Options struct {
	// MemBudget is the memory-component byte budget; exceeding it
	// triggers a flush. Default 4 MiB.
	MemBudget int
	// Policy is the merge policy. Default ConstantPolicy{Components: 4}.
	Policy MergePolicy
	// Metrics, when set, receives flush/merge counters and duration
	// histograms (shared by name across all trees on the registry).
	Metrics *obs.Registry
	// Gov, when set, charges the memory component to the governor's
	// shared component pool: overflowing the pool flushes the earliest-
	// dirty tree across the whole engine, not just this one.
	Gov *mem.Governor
}

func (o Options) withDefaults() Options {
	if o.MemBudget <= 0 {
		o.MemBudget = 4 << 20
	}
	if o.Policy == nil {
		o.Policy = ConstantPolicy{Components: 4}
	}
	return o
}

// Open opens (or creates) the LSM tree named by the file prefix, reloading
// any disk components recorded in its manifest.
func Open(bc *storage.BufferCache, name string, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	t := &Tree{
		bc:        bc,
		name:      name,
		memBudget: opts.MemBudget,
		policy:    opts.Policy,
		mem:       newMemTable(),
	}
	registerTreeMetrics(t, opts.Metrics)
	t.charge = opts.Gov.RegisterComponent(name, t.tryFlushForGovernor)
	seqs, err := t.readManifest()
	if err != nil {
		return nil, err
	}
	for _, s := range seqs {
		c, err := t.openComponent(s)
		if err != nil {
			return nil, err
		}
		t.disk = append(t.disk, c)
		if s >= t.seq {
			t.seq = s + 1
		}
	}
	return t, nil
}

// registerTreeMetrics binds the shared LSM metrics (get-or-create, so
// every tree on the same registry shares them). Nil registry = nil
// handles = no-op updates.
func registerTreeMetrics(t *Tree, reg *obs.Registry) {
	t.mFlushes = reg.Counter("lsm_flushes_total", "LSM memory-component flushes")
	t.mMerges = reg.Counter("lsm_merges_total", "LSM disk-component merges")
	t.mFlushDur = reg.Histogram("lsm_flush_duration_seconds", "LSM flush wall time", nil)
	t.mMergeDur = reg.Histogram("lsm_merge_duration_seconds", "LSM merge wall time", nil)
}

func (t *Tree) manifestPath() string {
	return filepath.Join(t.bc.FileManager().Root(), filepath.FromSlash(t.name)+".manifest")
}

// readManifest returns the live component sequence numbers, newest first.
func (t *Tree) readManifest() ([]int, error) {
	data, err := os.ReadFile(t.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lsm: read manifest: %w", err)
	}
	var seqs []int
	for _, line := range strings.Fields(string(data)) {
		var s int
		if _, err := fmt.Sscanf(line, "%d", &s); err != nil {
			return nil, fmt.Errorf("lsm: corrupt manifest %q", line)
		}
		seqs = append(seqs, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	return seqs, nil
}

// writeManifest persists the current component list (caller holds t.mu).
func (t *Tree) writeManifest() error {
	var sb strings.Builder
	for _, c := range t.disk {
		fmt.Fprintf(&sb, "%d\n", c.seq)
	}
	path := t.manifestPath()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	return os.Rename(tmp, path)
}

func (t *Tree) componentFileName(seq int) string {
	return fmt.Sprintf("%s.c%06d", t.name, seq)
}

// openComponent opens a disk component, rebuilding its bloom filter from a
// key scan (the filter is held in memory only).
func (t *Tree) openComponent(seq int) (*diskComponent, error) {
	file, err := t.bc.FileManager().Open(t.componentFileName(seq))
	if err != nil {
		return nil, err
	}
	bt, err := btree.Open(t.bc, file)
	if err != nil {
		return nil, err
	}
	bloom := newBloom(int(bt.Count()))
	err = bt.Scan(nil, nil, func(k, v []byte) bool {
		bloom.add(k)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &diskComponent{seq: seq, file: file, bt: bt, bloom: bloom, refs: 1}, nil
}

// value encoding inside disk components: flag byte (1 = antimatter) +
// payload.

func encodeFlagged(value []byte, tombstone bool) []byte {
	out := make([]byte, 0, len(value)+1)
	if tombstone {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, value...)
}

// memRef returns the current memory component. Flush swaps the pointer
// under t.mu, so every access outside Flush goes through here.
func (t *Tree) memRef() *memTable {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem
}

// Upsert inserts or replaces the value stored under key.
func (t *Tree) Upsert(key, value []byte) error { return t.UpsertSpan(key, value, nil) }

// UpsertSpan is Upsert with wait-time attribution: governor arbitration,
// flushes, and merges triggered by this write are charged to sp (nil for
// no attribution).
func (t *Tree) UpsertSpan(key, value []byte, sp *obs.Span) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.afterPut(t.memRef().put(key, value, false), sp)
}

// Delete records an antimatter entry for key (the key need not exist).
func (t *Tree) Delete(key []byte) error { return t.DeleteSpan(key, nil) }

// DeleteSpan is Delete with wait-time attribution (see UpsertSpan).
func (t *Tree) DeleteSpan(key []byte, sp *obs.Span) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.afterPut(t.memRef().put(key, nil, true), sp)
}

// afterPut charges the mutation's byte delta to the governor (which may
// arbitrate flushes of OTHER trees, or elect this one) and then applies
// the per-tree budget. Caller holds t.wmu. Arbitration time — this
// writer stalled flushing OTHER trees' components — counts as flush
// wait on sp, as does a flush of this tree's own component.
func (t *Tree) afterPut(delta int, sp *obs.Span) error {
	var t0 time.Time
	//lint:ignore obs-nil skips time.Now on the untraced write hot path, not a call guard
	if sp != nil {
		t0 = time.Now()
	}
	flushSelf, err := t.charge.Add(int64(delta))
	//lint:ignore obs-nil skips time.Since on the untraced write hot path, not a call guard
	if sp != nil {
		sp.AddWait(obs.WaitFlush, time.Since(t0))
	}
	if err != nil {
		return err
	}
	if flushSelf || t.memRef().size() >= t.memBudget {
		return t.flushLocked(sp)
	}
	return nil
}

// Unregister removes the tree's account from the governor's component
// pool (dataset drop); the tree keeps working against its per-tree
// budget only.
func (t *Tree) Unregister() {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.charge.Unregister()
	t.charge = nil
}

// tryFlushForGovernor is the arbitration hook: flush if the writer lock
// is free, otherwise report busy so the arbiter skips this tree.
func (t *Tree) tryFlushForGovernor() (bool, error) {
	if !t.wmu.TryLock() {
		return false, nil
	}
	defer t.wmu.Unlock()
	return true, t.flushLocked(nil)
}

// snapshot acquires a reference-counted view of the disk components.
func (t *Tree) snapshot() []*diskComponent {
	t.mu.RLock()
	//lint:ignore hot-alloc per-scan snapshot of the component list: O(components) once per scan, not per entry
	comps := append([]*diskComponent(nil), t.disk...)
	for _, c := range comps {
		atomic.AddInt32(&c.refs, 1)
	}
	t.mu.RUnlock()
	return comps
}

// release drops snapshot references, destroying components whose last
// reference this was (they were merged away while being read).
func (t *Tree) release(comps []*diskComponent) error {
	var firstErr error
	for _, c := range comps {
		if atomic.AddInt32(&c.refs, -1) == 0 {
			//lint:ignore hot-alloc runs only when the last reference to a merged-away component drops — once per component lifetime, not per scan entry
			if err := t.destroyComponent(c); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// destroyComponent evicts and deletes a fully-released component's file.
func (t *Tree) destroyComponent(c *diskComponent) error {
	if err := t.bc.Evict(c.file); err != nil {
		return err
	}
	return t.bc.FileManager().Delete(t.componentFileName(c.seq))
}

// Get returns the newest live value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if v, tomb, ok := t.memRef().get(key); ok {
		if tomb {
			return nil, false, nil
		}
		return v, true, nil
	}
	comps := t.snapshot()
	defer t.release(comps)
	for _, c := range comps {
		if !c.bloom.mayContain(key) {
			continue
		}
		v, ok, err := c.bt.Search(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if v[0] == 1 {
				return nil, false, nil
			}
			return append([]byte(nil), v[1:]...), true, nil
		}
	}
	return nil, false, nil
}

// Scan visits live entries with lo <= key <= hi in key order, newest
// version winning; fn returning false stops early.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	// Snapshot the memory component's range (bounded by the mem budget).
	type flaggedEntry struct {
		key, value []byte
		tombstone  bool
	}
	var memRun []flaggedEntry
	//lint:ignore hot-alloc per-scan closure capturing the memRun accumulator: one allocation per scan setup
	t.memRef().scan(lo, hi, func(e memEntry) bool {
		memRun = append(memRun, flaggedEntry{e.key, e.value, e.tombstone})
		return true
	})
	comps := t.snapshot()
	defer t.release(comps)

	// K-way merge: source 0 is the memory run (newest), then disk
	// components newest-first. Lowest source index wins ties.
	//lint:ignore hot-alloc per-scan iterator table: O(components) once per scan setup
	iters := make([]*btree.Iterator, len(comps))
	for i, c := range comps {
		iters[i] = c.bt.NewIterator(lo, hi)
	}
	memPos := 0
	for {
		// Find the smallest key among sources; newest source wins ties.
		var bestKey []byte
		bestSrc := -1
		if memPos < len(memRun) {
			bestKey = memRun[memPos].key
			bestSrc = 0
		}
		for i, it := range iters {
			if !it.Valid() {
				if err := it.Err(); err != nil {
					return err
				}
				continue
			}
			if bestSrc == -1 || bytes.Compare(it.Key(), bestKey) < 0 {
				bestKey = it.Key()
				bestSrc = i + 1
			}
		}
		if bestSrc == -1 {
			return nil
		}
		// Emit the winner; advance every source sitting on this key.
		var value []byte
		tombstone := false
		if bestSrc == 0 {
			value = memRun[memPos].value
			tombstone = memRun[memPos].tombstone
		} else {
			v := iters[bestSrc-1].Value()
			tombstone = v[0] == 1
			//lint:ignore hot-alloc the emitted value must outlive the iterator advance below (and callers may retain it), so it is copied out of the page-backed buffer
			value = append([]byte(nil), v[1:]...)
		}
		if memPos < len(memRun) && bytes.Equal(memRun[memPos].key, bestKey) {
			memPos++
		}
		for _, it := range iters {
			if it.Valid() && bytes.Equal(it.Key(), bestKey) {
				it.Next()
			}
		}
		if !tombstone {
			//lint:ignore hot-alloc user-supplied visitor callback: its allocation behavior belongs to the caller, not the scan kernel
			if !fn(bestKey, value) {
				return nil
			}
		}
	}
}

// MemSize returns the memory component's approximate byte size.
func (t *Tree) MemSize() int { return t.memRef().size() }

// DiskComponents returns the current number of disk components.
func (t *Tree) DiskComponents() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.disk)
}

// Flush persists the memory component as a new disk component and applies
// the merge policy.
func (t *Tree) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.flushLocked(nil)
}

// flushLocked is Flush with t.wmu held: holding the writer mutex means no
// put can land in the old memory component between the snapshot scan and
// the pointer swap; concurrent readers are safe because they take the
// pointer via memRef. The flush (and any merge it triggers) is charged
// to sp as flush/merge wait; sp is nil for flushes no statement waits on.
func (t *Tree) flushLocked(sp *obs.Span) error {
	flushStart := time.Now()
	t.mu.Lock()
	mem := t.mem
	if mem.len() == 0 {
		t.mu.Unlock()
		return nil
	}
	seq := t.seq
	t.seq++
	t.mu.Unlock()

	fname := t.componentFileName(seq)
	// A flush that crashed before reaching the manifest can leave an
	// orphan component file under this name (the seq counter restarts
	// from the manifest on reopen); opening it as-is would misparse the
	// stale pages, so drop any leftover first.
	if err := t.bc.FileManager().Delete(fname); err != nil {
		return err
	}
	file, err := t.bc.FileManager().Open(fname)
	if err != nil {
		return err
	}
	bt, err := btree.Open(t.bc, file)
	if err != nil {
		return err
	}
	bloom := newBloom(mem.len())

	// Snapshot the memtable in order, then bulk load.
	var entries []memEntry
	mem.scan(nil, nil, func(e memEntry) bool {
		entries = append(entries, e)
		return true
	})
	i := 0
	err = bt.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(entries) {
			return nil, nil, false
		}
		e := entries[i]
		i++
		bloom.add(e.key)
		return e.key, encodeFlagged(e.value, e.tombstone), true
	})
	if err != nil {
		return err
	}
	// Injected flush I/O failure: the component is built in the buffer
	// cache but never made durable or added to the manifest; the memory
	// component keeps the data, so nothing committed is lost.
	if err := fault.Hit(fault.PointLSMFlush); err != nil {
		return fmt.Errorf("lsm: flush %s: %w", t.name, err)
	}
	if err := t.bc.FlushFile(file); err != nil {
		return err
	}

	t.mu.Lock()
	t.disk = append([]*diskComponent{{seq: seq, file: file, bt: bt, bloom: bloom, refs: 1}}, t.disk...)
	t.mem = newMemTable()
	t.Flushes++
	err = t.writeManifest()
	t.mu.Unlock()
	t.charge.Flushed()
	t.mFlushes.Inc()
	t.mFlushDur.Observe(time.Since(flushStart).Seconds())
	sp.AddWait(obs.WaitFlush, time.Since(flushStart))
	if err != nil {
		return err
	}
	if t.OnFlush != nil {
		t.OnFlush()
	}
	// Component sequencing + manifest walk in invariant builds.
	if err := check.Run(t); err != nil {
		return err
	}
	return t.maybeMerge(sp)
}

// maybeMerge consults the policy and merges one component range.
func (t *Tree) maybeMerge(sp *obs.Span) error {
	t.mu.RLock()
	sizes := make([]int64, len(t.disk))
	for i, c := range t.disk {
		sizes[i] = c.bt.Count()
	}
	t.mu.RUnlock()
	lo, hi, ok := t.policy.PickMerge(sizes)
	if !ok {
		return nil
	}
	return t.mergeRange(lo, hi, sp)
}

// mergeRange merges disk components [lo..hi] (newest-first indexes) into
// one. Tombstones are dropped only when the merge includes the oldest
// component. Merge wall time is charged to sp as merge wait (merges run
// on the writer's thread, so the triggering statement really does stall
// for the whole merge).
func (t *Tree) mergeRange(lo, hi int, sp *obs.Span) error {
	mergeStart := time.Now()
	t.mu.RLock()
	if lo < 0 || hi >= len(t.disk) || lo >= hi {
		t.mu.RUnlock()
		return nil
	}
	victims := append([]*diskComponent(nil), t.disk[lo:hi+1]...)
	for _, c := range victims {
		atomic.AddInt32(&c.refs, 1) // hold them while merging
	}
	dropTombstones := hi == len(t.disk)-1
	t.mu.RUnlock()

	seq := func() int {
		t.mu.Lock()
		defer t.mu.Unlock()
		s := t.seq
		t.seq++
		return s
	}()
	fname := t.componentFileName(seq)
	// Same orphan hazard as Flush: a crashed merge can leave a stale file
	// under a seq the reopened tree will hand out again.
	if err := t.bc.FileManager().Delete(fname); err != nil {
		return errors.Join(err, t.release(victims))
	}
	file, err := t.bc.FileManager().Open(fname)
	if err != nil {
		return errors.Join(err, t.release(victims))
	}
	bt, err := btree.Open(t.bc, file)
	if err != nil {
		return errors.Join(err, t.release(victims))
	}
	total := int64(0)
	for _, c := range victims {
		total += c.bt.Count()
	}
	bloom := newBloom(int(total))

	iters := make([]*btree.Iterator, len(victims))
	for i, c := range victims {
		iters[i] = c.bt.NewIterator(nil, nil)
	}
	var mergeErr error
	err = bt.BulkLoad(func() ([]byte, []byte, bool) {
		for {
			var bestKey []byte
			bestSrc := -1
			for i, it := range iters {
				if !it.Valid() {
					if e := it.Err(); e != nil {
						mergeErr = e
						return nil, nil, false
					}
					continue
				}
				if bestSrc == -1 || bytes.Compare(it.Key(), bestKey) < 0 {
					bestKey = it.Key()
					bestSrc = i
				}
			}
			if bestSrc == -1 {
				return nil, nil, false
			}
			value := append([]byte(nil), iters[bestSrc].Value()...)
			for _, it := range iters {
				if it.Valid() && bytes.Equal(it.Key(), bestKey) {
					it.Next()
				}
			}
			if dropTombstones && value[0] == 1 {
				continue
			}
			bloom.add(bestKey)
			return append([]byte(nil), bestKey...), value, true
		}
	})
	if err != nil {
		return errors.Join(err, t.release(victims))
	}
	if mergeErr != nil {
		return errors.Join(mergeErr, t.release(victims))
	}
	// Injected merge I/O failure: the victims stay live (their refs are
	// released below) and the half-built component never reaches the
	// manifest.
	if err := fault.Hit(fault.PointLSMMerge); err != nil {
		return errors.Join(fmt.Errorf("lsm: merge %s: %w", t.name, err), t.release(victims))
	}
	if err := t.bc.FlushFile(file); err != nil {
		return errors.Join(err, t.release(victims))
	}

	t.mu.Lock()
	newDisk := append([]*diskComponent(nil), t.disk[:lo]...)
	newDisk = append(newDisk, &diskComponent{seq: seq, file: file, bt: bt, bloom: bloom, refs: 1})
	newDisk = append(newDisk, t.disk[hi+1:]...)
	t.disk = newDisk
	t.Merges++
	for _, c := range victims {
		c.dropped = true
	}
	err = t.writeManifest()
	t.mu.Unlock()
	t.mMerges.Inc()
	t.mMergeDur.Observe(time.Since(mergeStart).Seconds())
	sp.AddWait(obs.WaitMerge, time.Since(mergeStart))
	if err != nil {
		return err
	}
	// Drop the list's reference and the merge's own hold; files are
	// destroyed when the last concurrent reader releases.
	if err := t.release(victims); err != nil {
		return err
	}
	if err := t.release(victims); err != nil {
		return err
	}
	return check.Run(t)
}

// Count estimates the number of live keys by a full scan (exact but O(n));
// intended for tests and small datasets.
func (t *Tree) Count() (int64, error) {
	var n int64
	err := t.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
	return n, err
}
