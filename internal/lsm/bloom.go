package lsm

import "hash/fnv"

// bloomFilter is a fixed-size Bloom filter guarding point lookups into a
// disk component (each disk component carries one, as in AsterixDB's LSM
// B+tree).
type bloomFilter struct {
	bits []uint64
	k    int
}

// newBloom sizes a filter for n keys at ~10 bits/key (k=7 ≈ 1% FPR).
func newBloom(n int) *bloomFilter {
	if n < 16 {
		n = 16
	}
	words := (n*10 + 63) / 64
	return &bloomFilter{bits: make([]uint64, words), k: 7}
}

func bloomHashes(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	//lint:ignore err-discard hash.Hash documents that Write never returns an error
	h.Write(key)
	h1 := h.Sum64()
	//lint:ignore err-discard hash.Hash documents that Write never returns an error
	h.Write([]byte{0x9e})
	return h1, h.Sum64()
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHashes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHashes(key)
	m := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
