// Package mapreduce is a from-scratch mini MapReduce engine in the mold
// of early Hadoop: map tasks that materialize partitioned, sorted
// intermediate files to disk; a hard barrier between phases; and reduce
// tasks that re-read, merge, and group those files. It exists as the
// baseline for experiment E4 — the paper's Section IV judgment that
// "MapReduce was not a sensible runtime platform for efficient,
// database-style query processing" needs the contender implemented to be
// measured. (The real project once built a Hadoop-compatible engine on
// Hyracks; this clone reproduces the execution model, not the API.)
package mapreduce

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"asterix/internal/adm"
)

// Pair is one intermediate key/value record.
type Pair struct {
	Key, Value adm.Value
}

// Job describes a MapReduce job.
type Job struct {
	Name string
	// NumMaps map tasks read Input(task, emit); NumReduces reduce tasks.
	NumMaps    int
	NumReduces int
	// Input feeds records to one map task.
	Input func(task int, emit func(rec adm.Value) error) error
	// Map emits intermediate pairs for one record.
	Map func(rec adm.Value, emit func(k, v adm.Value) error) error
	// Combine optionally pre-aggregates map-side (nil = none).
	Combine func(key adm.Value, values []adm.Value, emit func(v adm.Value) error) error
	// Reduce folds each key's values into output records.
	Reduce func(key adm.Value, values []adm.Value, emit func(out adm.Value) error) error
	// TmpDir hosts the materialized shuffle files.
	TmpDir string
}

// Stats reports a run's I/O behavior (the measurable cost of the model).
type Stats struct {
	MapOutputRecords int64
	ShuffleBytes     int64
	SpillFiles       int
}

// Run executes the job, returning reduce outputs and shuffle statistics.
// Map tasks run concurrently, then a barrier, then reduce tasks — the
// materialize-everything dataflow that a pipelined engine avoids.
func Run(job *Job) ([]adm.Value, Stats, error) {
	var stats Stats
	if job.NumMaps < 1 || job.NumReduces < 1 {
		return nil, stats, fmt.Errorf("mapreduce: NumMaps and NumReduces must be >= 1")
	}
	dir, err := os.MkdirTemp(job.TmpDir, "mr-"+job.Name+"-*")
	if err != nil {
		return nil, stats, err
	}
	//lint:ignore err-discard best-effort cleanup of the job's private temp dir
	defer os.RemoveAll(dir)

	// --- Map phase ---
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for m := 0; m < job.NumMaps; m++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			if err := runMapTask(job, task, dir, &mu, &stats); err != nil {
				fail(err)
			}
		}(m)
	}
	wg.Wait() // the barrier
	if firstErr != nil {
		return nil, stats, firstErr
	}

	// --- Reduce phase ---
	outs := make([][]adm.Value, job.NumReduces)
	for r := 0; r < job.NumReduces; r++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			out, err := runReduceTask(job, task, dir)
			if err != nil {
				fail(err)
				return
			}
			outs[task] = out
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	var all []adm.Value
	for _, o := range outs {
		all = append(all, o...)
	}
	return all, stats, nil
}

func shufflePath(dir string, mapTask, reduceTask int) string {
	return filepath.Join(dir, fmt.Sprintf("m%04d-r%04d.shuffle", mapTask, reduceTask))
}

func runMapTask(job *Job, task int, dir string, mu *sync.Mutex, stats *Stats) error {
	// Buffer pairs per reduce partition.
	parts := make([][]Pair, job.NumReduces)
	var outRecs int64
	err := job.Input(task, func(rec adm.Value) error {
		return job.Map(rec, func(k, v adm.Value) error {
			p := int(adm.Hash64(k) % uint64(job.NumReduces))
			parts[p] = append(parts[p], Pair{Key: k, Value: v})
			outRecs++
			return nil
		})
	})
	if err != nil {
		return err
	}
	var shuffleBytes int64
	files := 0
	for r, pairs := range parts {
		if len(pairs) == 0 {
			continue
		}
		sort.SliceStable(pairs, func(i, j int) bool {
			return adm.Compare(pairs[i].Key, pairs[j].Key) < 0
		})
		if job.Combine != nil {
			combined, err := combineRun(job, pairs)
			if err != nil {
				return err
			}
			pairs = combined
		}
		n, err := writeShuffleFile(shufflePath(dir, task, r), pairs)
		if err != nil {
			return err
		}
		shuffleBytes += n
		files++
	}
	mu.Lock()
	stats.MapOutputRecords += outRecs
	stats.ShuffleBytes += shuffleBytes
	stats.SpillFiles += files
	mu.Unlock()
	return nil
}

func combineRun(job *Job, pairs []Pair) ([]Pair, error) {
	var out []Pair
	i := 0
	for i < len(pairs) {
		j := i + 1
		for j < len(pairs) && adm.Compare(pairs[j].Key, pairs[i].Key) == 0 {
			j++
		}
		vals := make([]adm.Value, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, pairs[k].Value)
		}
		err := job.Combine(pairs[i].Key, vals, func(v adm.Value) error {
			out = append(out, Pair{Key: pairs[i].Key, Value: v})
			return nil
		})
		if err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

func writeShuffleFile(path string, pairs []Pair) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var total int64
	var buf []byte
	for _, p := range pairs {
		buf = buf[:0]
		buf = adm.Encode(buf, p.Key)
		buf = adm.Encode(buf, p.Value)
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(buf)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return 0, errors.Join(err, f.Close())
		}
		if _, err := w.Write(buf); err != nil {
			return 0, errors.Join(err, f.Close())
		}
		total += int64(n + len(buf))
	}
	if err := w.Flush(); err != nil {
		return 0, errors.Join(err, f.Close())
	}
	return total, f.Close()
}

func readShuffleFile(path string) ([]Pair, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	//lint:ignore err-discard read-only scan; a close failure cannot lose data
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var out []Pair
	for {
		sz, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		k, n, err := adm.Decode(buf)
		if err != nil {
			return nil, err
		}
		v, _, err := adm.Decode(buf[n:])
		if err != nil {
			return nil, err
		}
		out = append(out, Pair{Key: k, Value: v})
	}
}

func runReduceTask(job *Job, task int, dir string) ([]adm.Value, error) {
	// Fetch + merge all map outputs for this partition.
	var all []Pair
	for m := 0; m < job.NumMaps; m++ {
		pairs, err := readShuffleFile(shufflePath(dir, m, task))
		if err != nil {
			return nil, err
		}
		all = append(all, pairs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		return adm.Compare(all[i].Key, all[j].Key) < 0
	})
	var out []adm.Value
	i := 0
	for i < len(all) {
		j := i + 1
		for j < len(all) && adm.Compare(all[j].Key, all[i].Key) == 0 {
			j++
		}
		vals := make([]adm.Value, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, all[k].Value)
		}
		err := job.Reduce(all[i].Key, vals, func(o adm.Value) error {
			out = append(out, o)
			return nil
		})
		if err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// Chain runs a sequence of jobs where each stage's output feeds the next
// stage's input (Hadoop-style multi-job queries, e.g. join then group).
func Chain(tmpDir string, stages ...*Job) ([]adm.Value, Stats, error) {
	var data []adm.Value
	var total Stats
	for i, job := range stages {
		if i > 0 {
			prev := data
			job.Input = func(task int, emit func(adm.Value) error) error {
				for k, rec := range prev {
					if k%job.NumMaps == task {
						if err := emit(rec); err != nil {
							return err
						}
					}
				}
				return nil
			}
		}
		if job.TmpDir == "" {
			job.TmpDir = tmpDir
		}
		out, st, err := Run(job)
		if err != nil {
			return nil, total, err
		}
		total.MapOutputRecords += st.MapOutputRecords
		total.ShuffleBytes += st.ShuffleBytes
		total.SpillFiles += st.SpillFiles
		data = out
	}
	return data, total, nil
}
