package mapreduce

import (
	"fmt"
	"testing"

	"asterix/internal/adm"
)

// wordCountJob is the canonical test job.
func wordCountJob(tmp string, docs []string) *Job {
	return &Job{
		Name:       "wordcount",
		NumMaps:    3,
		NumReduces: 2,
		TmpDir:     tmp,
		Input: func(task int, emit func(adm.Value) error) error {
			for i, d := range docs {
				if i%3 == task {
					if err := emit(adm.String(d)); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Map: func(rec adm.Value, emit func(k, v adm.Value) error) error {
			for _, w := range splitWords(string(rec.(adm.String))) {
				if err := emit(adm.String(w), adm.Int64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(key adm.Value, values []adm.Value, emit func(adm.Value) error) error {
			var sum int64
			for _, v := range values {
				n, _ := adm.AsInt(v)
				sum += n
			}
			return emit(adm.NewObject(
				adm.Field{Name: "word", Value: key},
				adm.Field{Name: "count", Value: adm.Int64(sum)},
			))
		},
	}
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a", "c c c", "d"}
	out, stats, err := Run(wordCountJob(t.TempDir(), docs))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, o := range out {
		obj := o.(*adm.Object)
		n, _ := adm.AsInt(obj.Get("count"))
		counts[string(obj.Get("word").(adm.String))] = n
	}
	want := map[string]int64{"a": 3, "b": 2, "c": 4, "d": 1}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%s] = %d, want %d", w, counts[w], n)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("words: %v", counts)
	}
	if stats.MapOutputRecords != 10 {
		t.Errorf("map output records = %d", stats.MapOutputRecords)
	}
	if stats.ShuffleBytes == 0 || stats.SpillFiles == 0 {
		t.Error("shuffle must be materialized to disk")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	docs := []string{"x x x x x x x x", "x x x x x x x x"}
	plain := wordCountJob(t.TempDir(), docs)
	_, noCombine, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	combined := wordCountJob(t.TempDir(), docs)
	combined.Combine = func(key adm.Value, values []adm.Value, emit func(adm.Value) error) error {
		var sum int64
		for _, v := range values {
			n, _ := adm.AsInt(v)
			sum += n
		}
		return emit(adm.Int64(sum))
	}
	out, withCombine, err := Run(combined)
	if err != nil {
		t.Fatal(err)
	}
	if withCombine.ShuffleBytes >= noCombine.ShuffleBytes {
		t.Errorf("combiner should shrink shuffle: %d vs %d", withCombine.ShuffleBytes, noCombine.ShuffleBytes)
	}
	obj := out[0].(*adm.Object)
	if n, _ := adm.AsInt(obj.Get("count")); n != 16 {
		t.Errorf("combined count = %d", n)
	}
}

// TestReduceSideJoin exercises the classic MR equi-join pattern used by
// the E4 comparison.
func TestReduceSideJoin(t *testing.T) {
	users := make([]adm.Value, 5)
	for i := range users {
		users[i] = adm.NewObject(
			adm.Field{Name: "tag", Value: adm.String("u")},
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("user%d", i))},
		)
	}
	msgs := make([]adm.Value, 12)
	for i := range msgs {
		msgs[i] = adm.NewObject(
			adm.Field{Name: "tag", Value: adm.String("m")},
			adm.Field{Name: "authorId", Value: adm.Int64(int64(i % 5))},
			adm.Field{Name: "mid", Value: adm.Int64(int64(i))},
		)
	}
	all := append(append([]adm.Value{}, users...), msgs...)
	job := &Job{
		Name: "join", NumMaps: 2, NumReduces: 2, TmpDir: t.TempDir(),
		Input: func(task int, emit func(adm.Value) error) error {
			for i, r := range all {
				if i%2 == task {
					if err := emit(r); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Map: func(rec adm.Value, emit func(k, v adm.Value) error) error {
			o := rec.(*adm.Object)
			if o.Get("tag").String() == `"u"` {
				return emit(o.Get("id"), rec)
			}
			return emit(o.Get("authorId"), rec)
		},
		Reduce: func(key adm.Value, values []adm.Value, emit func(adm.Value) error) error {
			var user *adm.Object
			var ms []*adm.Object
			for _, v := range values {
				o := v.(*adm.Object)
				if o.Get("tag").String() == `"u"` {
					user = o
				} else {
					ms = append(ms, o)
				}
			}
			if user == nil {
				return nil
			}
			for _, m := range ms {
				if err := emit(adm.NewObject(
					adm.Field{Name: "name", Value: user.Get("name")},
					adm.Field{Name: "mid", Value: m.Get("mid")},
				)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	out, _, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 12 {
		t.Fatalf("join produced %d rows, want 12", len(out))
	}
}

func TestChainTwoJobs(t *testing.T) {
	// Stage 1: word count. Stage 2: histogram of counts.
	docs := []string{"a b a", "b c", "a", "c c c", "d"}
	stage1 := wordCountJob(t.TempDir(), docs)
	stage2 := &Job{
		Name: "hist", NumMaps: 2, NumReduces: 1,
		Map: func(rec adm.Value, emit func(k, v adm.Value) error) error {
			o := rec.(*adm.Object)
			return emit(o.Get("count"), adm.Int64(1))
		},
		Reduce: func(key adm.Value, values []adm.Value, emit func(adm.Value) error) error {
			return emit(adm.NewObject(
				adm.Field{Name: "count", Value: key},
				adm.Field{Name: "words", Value: adm.Int64(int64(len(values)))},
			))
		},
	}
	out, _, err := Chain(t.TempDir(), stage1, stage2)
	if err != nil {
		t.Fatal(err)
	}
	// counts: a=3,b=2,c=4,d=1 -> histogram: 1->1, 2->1, 3->1, 4->1.
	if len(out) != 4 {
		t.Fatalf("histogram rows: %d (%v)", len(out), out)
	}
}

func TestErrorsPropagate(t *testing.T) {
	job := wordCountJob(t.TempDir(), []string{"a"})
	job.Map = func(rec adm.Value, emit func(k, v adm.Value) error) error {
		return fmt.Errorf("boom")
	}
	if _, _, err := Run(job); err == nil {
		t.Fatal("map error should fail the job")
	}
}
