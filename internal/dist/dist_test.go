package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"asterix/internal/fault"
	"asterix/internal/hyracks"
	anet "asterix/internal/net"
	"asterix/internal/obs"
)

// distNode is one simulated process: cluster view, peer endpoint, and
// control plane.
type distNode struct {
	id      string
	cluster *hyracks.Cluster
	peer    *anet.Peer
	node    *Node
	metrics *obs.Registry
}

// startDist boots an in-process mesh of member processes, each with its
// own cluster view, peer, and control plane, cross-wired by address.
func startDist(t *testing.T, ids []string) map[string]*distNode {
	t.Helper()
	nodes := map[string]*distNode{}
	for _, id := range ids {
		cl, err := hyracks.NewNamedCluster(ids, t.TempDir())
		if err != nil {
			t.Fatalf("cluster %s: %v", id, err)
		}
		nd := NewNode(cl)
		nd.ReadyTimeout = 500 * time.Millisecond
		reg := obs.NewRegistry()
		p, err := anet.NewPeer(anet.Options{
			ID:                id,
			ListenAddr:        "127.0.0.1:0",
			Metrics:           reg,
			OnPeerDown:        nd.OnPeerDown,
			OnControl:         nd.HandleControl,
			HeartbeatInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("peer %s: %v", id, err)
		}
		nd.Bind(p)
		nodes[id] = &distNode{id: id, cluster: cl, peer: p, node: nd, metrics: reg}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a.id != b.id {
				a.peer.AddPeer(b.id, b.peer.Addr())
			}
		}
	}
	// Warm the mesh until a full round of control sends succeeds in every
	// direction: simultaneous dials dedupe down to one connection per
	// pair, and a send racing that convergence can fail transiently.
	warm := func() bool {
		ok := true
		for _, a := range nodes {
			for _, b := range nodes {
				if a.id != b.id && a.peer.SendControl(b.id, []byte(`{"type":"noop"}`)) != nil {
					ok = false
				}
			}
		}
		return ok
	}
	deadline := time.Now().Add(5 * time.Second)
	for rounds := 0; rounds < 2; {
		if warm() {
			rounds++
			time.Sleep(50 * time.Millisecond) // let dedupe losers drain
			continue
		}
		rounds = 0
		if time.Now().After(deadline) {
			t.Fatal("mesh never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.node.Close()
			n.peer.Close()
		}
	})
	return nodes
}

// joinSpec is the canonical distributed query: two generated relations
// hash-partitioned into a 3-way join, concentrated to a collect sink on
// the coordinator. Expected cardinality: each key in [0,keyMod) appears
// leftRows*leftPar/keyMod times left and rightRows*rightPar/keyMod
// times right.
func joinSpec(id string) (*Spec, int) {
	const (
		keyMod    = 100
		leftRows  = 200 // per partition, 3 partitions
		rightRows = 100
	)
	spec := &Spec{
		ID: id,
		Ops: []OpSpec{
			{Kind: "gen", Name: "left", Parallelism: 3, Rows: leftRows, KeyMod: keyMod},
			{Kind: "gen", Name: "right", Parallelism: 3, Rows: rightRows, KeyMod: keyMod},
			{Kind: "hashjoin", Name: "join", Parallelism: 3, LeftCols: []int{0}, RightCols: []int{0}, RightWidth: 2},
			{Kind: "collect", Name: "out", Pin: PinCoordinator},
		},
		Edges: []EdgeSpec{
			{From: 0, To: 2, Port: 0, Conn: "hash", HashCols: []int{0}},
			{From: 1, To: 2, Port: 1, Conn: "hash", HashCols: []int{0}},
			{From: 2, To: 3, Port: 0, Conn: "merge"},
		},
	}
	want := (3 * leftRows / keyMod) * (3 * rightRows / keyMod) * keyMod
	return spec, want
}

func TestDistributedJoin(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb", "nc"})
	spec, want := joinSpec("q-join")
	rows, rep, err := nodes["na"].node.Run(context.Background(), spec, hyracks.RetryPolicy{})
	if err != nil {
		t.Fatalf("distributed join: %v", err)
	}
	if len(rows) != want {
		t.Fatalf("join produced %d rows, want %d", len(rows), want)
	}
	if rep.Attempts != 1 {
		t.Fatalf("clean run took %d attempts", rep.Attempts)
	}
	// The data plane must actually have crossed processes.
	snap := nodes["nb"].metrics.Snapshot()
	if v, _ := snap["net_frames_sent_total"].(int64); v == 0 {
		t.Fatalf("worker nb sent no frames: %v", snap)
	}
}

func TestDistributedGroupBy(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb"})
	spec := &Spec{
		ID: "q-group",
		Ops: []OpSpec{
			{Kind: "gen", Name: "src", Parallelism: 2, Rows: 300, KeyMod: 10},
			{Kind: "groupby", Name: "agg", Parallelism: 2, GroupCols: []int{0},
				Aggs: []AggSpec{{Kind: "count", Col: 0}}},
			{Kind: "collect", Name: "out", Pin: PinCoordinator},
		},
		Edges: []EdgeSpec{
			{From: 0, To: 1, Port: 0, Conn: "hash", HashCols: []int{0}},
			{From: 1, To: 2, Port: 0, Conn: "merge"},
		},
	}
	rows, _, err := nodes["na"].node.Run(context.Background(), spec, hyracks.RetryPolicy{})
	if err != nil {
		t.Fatalf("distributed group-by: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d groups, want 10", len(rows))
	}
}

// TestConcurrentRunsSameSpecID drives two simultaneous Runs of specs
// sharing one spec id. Their attempt job ids must not collide: a
// collision makes workers dedupe-drop the second job message, the READY
// barrier then times out and Kill()s perfectly healthy members, and the
// poisoned cluster view breaks every later query.
func TestConcurrentRunsSameSpecID(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb", "nc"})
	type res struct {
		rows int
		err  error
	}
	ch := make(chan res, 2)
	for i := 0; i < 2; i++ {
		spec, _ := joinSpec("q-dup")
		go func(spec *Spec) {
			rows, _, err := nodes["na"].node.Run(context.Background(), spec,
				hyracks.RetryPolicy{MaxAttempts: 2})
			ch <- res{len(rows), err}
		}(spec)
	}
	_, want := joinSpec("q-dup")
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatalf("concurrent run failed: %v", r.err)
		}
		if r.rows != want {
			t.Fatalf("concurrent run got %d rows, want %d", r.rows, want)
		}
	}
	for _, nc := range nodes["na"].cluster.Nodes {
		if nc.Dead() {
			t.Fatalf("healthy member %s was killed by a job-id collision", nc.ID)
		}
	}
}

// TestRetryAfterWorkerDeath kills a worker process before the run and
// verifies the ready barrier declares it dead and the retry lands on
// the survivors — the distributed analog of the in-process
// RunWithRetry node-failure path.
func TestRetryAfterWorkerDeath(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb", "nc"})
	// The mesh is warm (nc has been heard from); now take it down hard.
	nodes["nc"].node.Close()
	nodes["nc"].peer.Close()

	spec, want := joinSpec("q-dead")
	rows, rep, err := nodes["na"].node.Run(context.Background(), spec, hyracks.RetryPolicy{MaxAttempts: 4})
	if err != nil {
		t.Fatalf("run after worker death: %v", err)
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	if rep.Attempts < 2 {
		t.Fatalf("expected a retry, got %d attempts", rep.Attempts)
	}
	found := false
	for _, id := range rep.DeadNodes {
		found = found || id == "nc"
	}
	if !found {
		t.Fatalf("dead node nc not reported: %v", rep.DeadNodes)
	}
}

// TestPartitionDuringExchange partitions a worker mid-run: the attempt
// dies with a retriable failure, and once the injected partition heals
// (bounded times=) a later attempt completes with the exact expected
// cardinality — no duplicated and no silently lost rows, because stale
// attempts' frames are dropped by attempt-scoped job ids and a dropped
// frame always breaks its stream.
func TestPartitionDuringExchange(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb", "nc"})
	// Let nb's first probes pass (job dissemination, barrier), then
	// partition it for a bounded burst that lands in the exchange phase.
	if err := fault.Arm("net.partition:error:after=12:times=60:tag=nb"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	defer fault.Disarm()

	spec, want := joinSpec("q-part")
	rows, rep, err := nodes["na"].node.Run(context.Background(), spec,
		hyracks.RetryPolicy{MaxAttempts: 8, BaseBackoff: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("run under partition: %v", err)
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d (acknowledged results must survive the partition)", len(rows), want)
	}
	if rep.Attempts < 2 {
		t.Fatalf("partition did not force a retry (%d attempts)", rep.Attempts)
	}
	st := nodes["na"].cluster.RetryStats()
	if st.NodeFailures+st.LinkFailures == 0 {
		t.Fatalf("no failure classified: %+v", st)
	}
}

// TestConnResetMidFrame tears the driver's own connections mid-frame.
// The receiver's framing (length + CRC) rejects the truncated message
// and the connection resets; depending on where the tear lands the
// control plane heals it in place (bounded resend) or the attempt
// retries — either way the result must be exact, never silently short.
func TestConnResetMidFrame(t *testing.T) {
	nodes := startDist(t, []string{"na", "nb", "nc"})
	if err := fault.Arm("net.conn.reset:torn:times=5:tag=na"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	defer fault.Disarm()

	spec, want := joinSpec("q-reset")
	rows, _, err := nodes["na"].node.Run(context.Background(), spec,
		hyracks.RetryPolicy{MaxAttempts: 8, BaseBackoff: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("run under conn resets: %v", err)
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	snap := nodes["na"].metrics.Snapshot()
	if v, _ := snap["net_conn_resets_total"].(int64); v == 0 {
		t.Fatalf("no connection resets counted: %v", snap)
	}
}

// TestNoGoroutineLeakAfterRuns closes the whole mesh after several
// distributed runs (including a failed one) and verifies the process
// returns to its goroutine baseline: no stuck inject loops, barrier
// waiters, or coordination goroutines.
func TestNoGoroutineLeakAfterRuns(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		nodes := startDist(t, []string{"na", "nb", "nc"})
		spec, _ := joinSpec("q-leak")
		if _, _, err := nodes["na"].node.Run(context.Background(), spec, hyracks.RetryPolicy{}); err != nil {
			t.Fatalf("clean run: %v", err)
		}
		// One failing run: partition nb permanently, bounded attempts.
		if err := fault.Arm("net.partition:error:tag=nb"); err != nil {
			t.Fatalf("arm: %v", err)
		}
		defer fault.Disarm()
		spec2, _ := joinSpec("q-leak2")
		_, _, err := nodes["na"].node.Run(context.Background(), spec2,
			hyracks.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond})
		_ = err // success or failure, only teardown hygiene matters here
		for _, n := range nodes {
			n.node.Close()
			n.peer.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d -> %d\n%s", before, g, buf[:runtime.Stack(buf, true)])
	}
}

// TestSpecValidation exercises build-time rejection paths.
func TestSpecValidation(t *testing.T) {
	env := &BuildEnv{Node: "na", Coordinator: "na", Result: &hyracks.Collector{}}
	cases := []*Spec{
		{ID: "", Ops: []OpSpec{{Kind: "gen", Name: "g", Parallelism: 1}}},
		{ID: "x", Ops: []OpSpec{{Kind: "nope", Name: "g", Parallelism: 1}}},
		{ID: "x", Ops: []OpSpec{{Kind: "collect", Name: "out"}}}, // unpinned collect
		{ID: "x", Ops: []OpSpec{{Kind: "gen", Name: "g", Parallelism: 1}},
			Edges: []EdgeSpec{{From: 0, To: 5, Conn: "1to1"}}},
		{ID: "x", Ops: []OpSpec{{Kind: "gen", Name: "g", Parallelism: 1}, {Kind: "collect", Name: "o", Pin: "na"}},
			Edges: []EdgeSpec{{From: 0, To: 1, Conn: "teleport"}}},
	}
	for i, spec := range cases {
		if _, err := BuildJob(spec, env); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	if _, err := Assign(&Spec{Ops: []OpSpec{{Name: "a"}, {Name: "a"}}}, []string{"n1"}, "n1"); err == nil {
		t.Error("duplicate op name accepted")
	}
	if _, err := Assign(&Spec{}, nil, "n1"); err == nil {
		t.Error("empty member list accepted")
	}
}

func TestAssignDeterminism(t *testing.T) {
	spec, _ := joinSpec("q")
	a1, err := Assign(spec, []string{"nc", "na", "nb"}, "na")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assign(spec, []string{"nb", "nc", "na"}, "na")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatalf("assignment depends on member order:\n%v\n%v", a1, a2)
	}
	for _, id := range a1["out"] {
		if id != "na" {
			t.Fatalf("pinned collect placed on %s", id)
		}
	}
}

func TestStatusErrClassification(t *testing.T) {
	var nf *hyracks.NodeFailure
	var lf *hyracks.LinkFailure

	st := ctlMsg{}
	classifyErr(&st, &hyracks.NodeFailure{Node: "n7", Op: "join"})
	if st.ErrKind != "node" || st.ErrNode != "n7" {
		t.Fatalf("node failure classified as %+v", st)
	}
	if err := st.statusErr(); !errors.As(err, &nf) || nf.Node != "n7" {
		t.Fatalf("round trip lost type: %v", err)
	}

	st = ctlMsg{}
	classifyErr(&st, fmt.Errorf("wrapped: %w", &hyracks.LinkFailure{Peer: "n2", Err: errors.New("boom")}))
	if st.ErrKind != "link" || st.ErrNode != "n2" {
		t.Fatalf("link failure classified as %+v", st)
	}
	if err := st.statusErr(); !errors.As(err, &lf) || lf.Peer != "n2" {
		t.Fatalf("round trip lost type: %v", err)
	}

	st = ctlMsg{}
	classifyErr(&st, errors.New("plain"))
	if st.ErrKind != "error" {
		t.Fatalf("plain error classified as %+v", st)
	}
	if err := st.statusErr(); err == nil || errors.As(err, &nf) || errors.As(err, &lf) {
		t.Fatalf("plain error became retriable: %v", err)
	}
}
