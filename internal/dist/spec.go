// Package dist is the control plane of a multi-process cluster: it
// turns a serializable job spec into identical hyracks DAGs on every
// participating node process, coordinates the READY/START barrier over
// the anet control channel, routes worker failures back to the driver,
// and drives retry-safe re-execution (RunWithRetry) with attempt-scoped
// job ids so a retried attempt never sees the dead attempt's frames.
package dist

import (
	"fmt"
	"sort"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
)

// Spec is a serializable dataflow job: operators by registered kind,
// edges by operator index. Every process of an attempt builds its DAG
// from the same spec, so plan shape is structurally identical
// everywhere and only the placement decides which tasks run locally.
type Spec struct {
	// ID names the job; each attempt runs under the attempt-scoped id
	// "ID#n".
	ID    string     `json:"id"`
	Ops   []OpSpec   `json:"ops"`
	Edges []EdgeSpec `json:"edges"`
}

// OpSpec describes one operator. Kind selects a registered builder;
// the remaining fields are that builder's parameters (unused fields
// stay zero).
type OpSpec struct {
	Kind        string `json:"kind"`
	Name        string `json:"name"`
	Parallelism int    `json:"parallelism"`
	// Pin forces every partition of the operator onto one node: a node
	// id, or PinCoordinator to follow the driving process (the collect
	// sink is pinned there so results land where the query ran).
	Pin string `json:"pin,omitempty"`

	// gen: Rows per partition; keys are sequential int64s modulo KeyMod
	// (0 = no wrap), so two gen operators with the same KeyMod produce
	// joinable key sets deterministically.
	Rows   int64 `json:"rows,omitempty"`
	KeyMod int64 `json:"keyMod,omitempty"`

	// filter: keep tuples whose column Col (int64) satisfies
	// value % Mod == Keep.
	Col  int   `json:"col,omitempty"`
	Mod  int64 `json:"mod,omitempty"`
	Keep int64 `json:"keep,omitempty"`

	// hashjoin: equi-join input port 0 (left) with port 1 (right).
	LeftCols   []int `json:"leftCols,omitempty"`
	RightCols  []int `json:"rightCols,omitempty"`
	RightWidth int   `json:"rightWidth,omitempty"`

	// groupby: hash aggregation.
	GroupCols []int     `json:"groupCols,omitempty"`
	Aggs      []AggSpec `json:"aggs,omitempty"`
}

// AggSpec selects one aggregate for a groupby operator.
type AggSpec struct {
	Kind string `json:"kind"` // count | sum | min | max | avg
	Col  int    `json:"col"`
}

// EdgeSpec wires Ops[From] to input port Port of Ops[To].
type EdgeSpec struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Port     int    `json:"port"`
	Conn     string `json:"conn"` // 1to1 | hash | broadcast | merge | rr
	HashCols []int  `json:"hashCols,omitempty"`
}

// PinCoordinator pins an operator to whichever node drives the job.
const PinCoordinator = "@coordinator"

// BuildEnv is the per-process context handed to op builders.
type BuildEnv struct {
	// Node is the building process's node id.
	Node string
	// Coordinator is the driving node's id (what PinCoordinator
	// resolves to).
	Coordinator string
	// Result receives collect-op tuples. Every process builds the
	// collect sink against its own collector, but only the process the
	// op is pinned to ever runs it, so results accumulate exactly where
	// the driver reads them.
	Result *hyracks.Collector
}

// Builder constructs one operator from its spec.
type Builder func(op OpSpec, env *BuildEnv) (*hyracks.Operator, error)

var builders = map[string]Builder{}

// RegisterOp registers a builder for an operator kind. Kinds must be
// registered identically in every process of the cluster (same binary,
// same init), or specs will build on some nodes and fail on others.
func RegisterOp(kind string, b Builder) {
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("dist: op kind %q registered twice", kind))
	}
	builders[kind] = b
}

func init() {
	RegisterOp("gen", buildGen)
	RegisterOp("filter", buildFilter)
	RegisterOp("hashjoin", buildHashJoin)
	RegisterOp("groupby", buildGroupBy)
	RegisterOp("collect", buildCollect)
}

// buildGen emits Rows tuples per partition: (int64 key, string tag).
// Keys are globally sequential across partitions, wrapped at KeyMod, so
// the data is deterministic regardless of which node runs the task.
func buildGen(op OpSpec, _ *BuildEnv) (*hyracks.Operator, error) {
	rows, keyMod := op.Rows, op.KeyMod
	return hyracks.NewScan(op.Name, op.Parallelism, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
		base := int64(tc.Partition) * rows
		for i := int64(0); i < rows; i++ {
			k := base + i
			if keyMod > 0 {
				k %= keyMod
			}
			t := hyracks.Tuple{adm.Int64(k), adm.String(fmt.Sprintf("%s-%d-%d", op.Name, tc.Partition, i))}
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}), nil
}

func buildFilter(op OpSpec, _ *BuildEnv) (*hyracks.Operator, error) {
	if op.Mod <= 0 {
		return nil, fmt.Errorf("dist: filter %s needs mod > 0", op.Name)
	}
	col, mod, keep := op.Col, op.Mod, op.Keep
	return hyracks.NewFilter(op.Name, op.Parallelism, func(t hyracks.Tuple) (bool, error) {
		if col >= len(t) {
			return false, fmt.Errorf("dist: filter %s: column %d out of range", op.Name, col)
		}
		v, ok := t[col].(adm.Int64)
		if !ok {
			return false, fmt.Errorf("dist: filter %s: column %d is not int64", op.Name, col)
		}
		return int64(v)%mod == keep, nil
	}), nil
}

func buildHashJoin(op OpSpec, _ *BuildEnv) (*hyracks.Operator, error) {
	if len(op.LeftCols) == 0 || len(op.LeftCols) != len(op.RightCols) {
		return nil, fmt.Errorf("dist: hashjoin %s needs matching leftCols/rightCols", op.Name)
	}
	return hyracks.NewHashJoin(op.Name, op.Parallelism, op.LeftCols, op.RightCols,
		hyracks.InnerJoin, op.RightWidth, nil), nil
}

func buildGroupBy(op OpSpec, _ *BuildEnv) (*hyracks.Operator, error) {
	aggs := make([]hyracks.AggSpec, 0, len(op.Aggs))
	for _, a := range op.Aggs {
		switch a.Kind {
		case "count":
			aggs = append(aggs, hyracks.CountAgg(a.Col))
		case "sum":
			aggs = append(aggs, hyracks.SumAgg(a.Col))
		case "min":
			aggs = append(aggs, hyracks.MinAgg(a.Col))
		case "max":
			aggs = append(aggs, hyracks.MaxAgg(a.Col))
		case "avg":
			aggs = append(aggs, hyracks.AvgAgg(a.Col))
		default:
			return nil, fmt.Errorf("dist: groupby %s: unknown aggregate %q", op.Name, a.Kind)
		}
	}
	return hyracks.NewGroupBy(op.Name, op.Parallelism, op.GroupCols, aggs), nil
}

func buildCollect(op OpSpec, env *BuildEnv) (*hyracks.Operator, error) {
	if op.Pin == "" {
		return nil, fmt.Errorf("dist: collect %s must be pinned (results need one home)", op.Name)
	}
	return hyracks.NewSink(op.Name, 1, env.Result), nil
}

// BuildJob materializes the spec into a hyracks DAG using the
// registered builders. Every process of an attempt calls this with its
// own env and gets a structurally identical job.
func BuildJob(spec *Spec, env *BuildEnv) (*hyracks.Job, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("dist: spec needs an id")
	}
	j := hyracks.NewJob()
	ops := make([]*hyracks.Operator, len(spec.Ops))
	for i, os := range spec.Ops {
		b := builders[os.Kind]
		if b == nil {
			return nil, fmt.Errorf("dist: unknown op kind %q (op %d)", os.Kind, i)
		}
		op, err := b(os, env)
		if err != nil {
			return nil, err
		}
		ops[i] = j.Add(op)
	}
	for i, es := range spec.Edges {
		if es.From < 0 || es.From >= len(ops) || es.To < 0 || es.To >= len(ops) {
			return nil, fmt.Errorf("dist: edge %d references unknown op", i)
		}
		var conn hyracks.Connector
		switch es.Conn {
		case "1to1":
			conn = hyracks.OneToOne()
		case "hash":
			conn = hyracks.HashPartition(es.HashCols...)
		case "broadcast":
			conn = hyracks.Broadcast()
		case "merge":
			conn = hyracks.MergeUnordered()
		case "rr":
			conn = hyracks.RoundRobin()
		default:
			return nil, fmt.Errorf("dist: edge %d: unknown connector %q", i, es.Conn)
		}
		if err := j.Connect(ops[es.From], ops[es.To], es.Port, conn); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// Assign computes the attempt's (operator, partition) → node placement
// over the alive members: pinned operators go wholly to their pin
// (PinCoordinator resolves to coordinator), everything else spreads
// round-robin over the members in sorted-id order. The driver computes
// it ONCE per attempt and ships the result in the job message, so every
// process places tasks identically even if their liveness views drift
// mid-attempt.
func Assign(spec *Spec, members []string, coordinator string) (map[string][]string, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("dist: no alive members to place on")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	assign := make(map[string][]string, len(spec.Ops))
	for _, os := range spec.Ops {
		par := os.Parallelism
		if par < 1 || os.Kind == "collect" {
			par = 1
		}
		nodes := make([]string, par)
		for p := 0; p < par; p++ {
			switch os.Pin {
			case "":
				nodes[p] = sorted[p%len(sorted)]
			case PinCoordinator:
				nodes[p] = coordinator
			default:
				nodes[p] = os.Pin
			}
		}
		if _, dup := assign[os.Name]; dup {
			return nil, fmt.Errorf("dist: duplicate operator name %q", os.Name)
		}
		assign[os.Name] = nodes
	}
	return assign, nil
}

// assignFunc adapts a shipped assignment table to Placement.Assign.
func assignFunc(assign map[string][]string) func(op string, part int) string {
	return func(op string, part int) string {
		nodes := assign[op]
		if len(nodes) == 0 {
			return ""
		}
		return nodes[part%len(nodes)]
	}
}
