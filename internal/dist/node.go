package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	anet "asterix/internal/net"

	"asterix/internal/hyracks"
)

// Control-plane message, JSON over anet's control channel. The sender's
// node id arrives out of band (anet stamps it), so messages carry only
// job-scoped fields.
type ctlMsg struct {
	Type        string              `json:"type"` // job | ready | start | status | cancel
	JobID       string              `json:"jobID"`
	Coordinator string              `json:"coordinator,omitempty"`
	Assign      map[string][]string `json:"assign,omitempty"`
	Spec        *Spec               `json:"spec,omitempty"`
	// status: the worker attempt's outcome, classified so the driver can
	// re-raise the exact retriable type.
	ErrKind string `json:"errKind,omitempty"` // "" (success) | node | link | error
	ErrNode string `json:"errNode,omitempty"`
	ErrMsg  string `json:"errMsg,omitempty"`
}

// Node is one process's control-plane endpoint: the worker half builds
// and runs job attempts on request, the driver half (Run) coordinates
// attempts across the cluster. Wire it to a peer with
// Options.OnControl = node.HandleControl, then Bind.
type Node struct {
	cluster *hyracks.Cluster

	// ReadyTimeout bounds how long the driver waits for every
	// participant's READY before declaring laggards dead and retrying
	// (default 10s).
	ReadyTimeout time.Duration

	mu     sync.Mutex
	peer   *anet.Peer
	jobs   map[string]*workerJob // attempts this process runs for a remote driver
	runs   map[string]*driverRun // attempts this process is driving
	closed bool
	// seq (atomic) numbers this driver's Runs: without it, two
	// concurrent Runs of the same spec id would mint colliding attempt
	// job ids — the workers would dedupe-drop the second job message,
	// its READY barrier would time out, and healthy members would be
	// Kill()ed for nothing.
	seq uint64
}

// workerJob is one attempt being executed on behalf of a remote driver.
type workerJob struct {
	startOnce sync.Once
	start     chan struct{}
	cancel    context.CancelFunc
}

// driverRun is one attempt's coordination state on the driver.
type driverRun struct {
	jobID    string
	remotes  []string
	need     map[string]bool
	readyCh  chan string
	start    chan struct{}
	abort    chan error
	done     chan struct{}
	doneOnce sync.Once
	result   *hyracks.Collector
}

// NewNode creates the control-plane endpoint for a cluster whose
// controllers carry the member ids (hyracks.NewNamedCluster).
func NewNode(cluster *hyracks.Cluster) *Node {
	return &Node{
		cluster:      cluster,
		ReadyTimeout: 10 * time.Second,
		jobs:         map[string]*workerJob{},
		runs:         map[string]*driverRun{},
	}
}

// Bind attaches the peer the node sends through. NewPeer needs the
// control handler and the handler needs the peer, so construction is
// two-phase: NewNode → NewPeer(OnControl: node.HandleControl) → Bind.
// Control messages arriving before Bind are dropped (nothing can be in
// flight for this process before it can answer).
func (n *Node) Bind(p *anet.Peer) {
	n.mu.Lock()
	n.peer = p
	n.mu.Unlock()
}

// Close cancels every attempt this process is executing for remote
// drivers. In-flight driver Runs fail through their abort channels as
// workers and peers go away.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	jobs := make([]*workerJob, 0, len(n.jobs))
	for _, wj := range n.jobs {
		jobs = append(jobs, wj)
	}
	n.mu.Unlock()
	for _, wj := range jobs {
		wj.cancel()
	}
}

// OnPeerDown is the anet failure-detection hook: a peer gone silent is
// a dead member, and killing its controller wakes every in-flight task
// watcher exactly as an in-process kill does.
func (n *Node) OnPeerDown(id string) {
	if nc := n.cluster.NodeByID(id); nc != nil {
		nc.Kill()
	}
}

// OnPeerUp is the mirror hook: a peer heard from again after being
// declared down — healed partition, restarted process — is Revived so
// later attempts may place tasks on it again (in-flight attempts that
// already counted it dead still retry; Revive never resurrects tasks).
func (n *Node) OnPeerUp(id string) {
	if nc := n.cluster.NodeByID(id); nc != nil {
		nc.Revive()
	}
}

// HandleControl is the anet control dispatcher (Options.OnControl).
func (n *Node) HandleControl(from string, payload []byte) {
	var msg ctlMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return // malformed control traffic: drop, the CRC already passed so this is a version skew
	}
	switch msg.Type {
	case "job":
		n.startWorkerJob(from, msg)
	case "start":
		n.mu.Lock()
		wj := n.jobs[msg.JobID]
		n.mu.Unlock()
		if wj != nil {
			wj.startOnce.Do(func() { close(wj.start) })
		}
	case "cancel":
		n.mu.Lock()
		wj := n.jobs[msg.JobID]
		n.mu.Unlock()
		if wj != nil {
			wj.cancel()
		}
	case "ready":
		n.mu.Lock()
		run := n.runs[msg.JobID]
		n.mu.Unlock()
		if run != nil {
			select {
			case run.readyCh <- from:
			default:
			}
		}
	case "status":
		n.mu.Lock()
		run := n.runs[msg.JobID]
		n.mu.Unlock()
		if run != nil {
			if err := msg.statusErr(); err != nil {
				select {
				case run.abort <- err:
				default:
				}
			}
		}
	}
}

// statusErr re-raises a worker's classified failure as the typed error
// the driver's RunWithRetry understands.
func (m *ctlMsg) statusErr() error {
	switch m.ErrKind {
	case "":
		return nil
	case "node":
		return &hyracks.NodeFailure{Node: m.ErrNode, Op: "(worker)"}
	case "link":
		return &hyracks.LinkFailure{Peer: m.ErrNode, Err: errors.New(m.ErrMsg)}
	default:
		return fmt.Errorf("dist: worker failure: %s", m.ErrMsg)
	}
}

// classifyErr is the inverse: fold a local attempt error into the
// status message.
func classifyErr(st *ctlMsg, err error) {
	if err == nil {
		return
	}
	var nf *hyracks.NodeFailure
	var lf *hyracks.LinkFailure
	switch {
	case errors.As(err, &nf):
		st.ErrKind, st.ErrNode = "node", nf.Node
	case errors.As(err, &lf):
		st.ErrKind, st.ErrNode = "link", lf.Peer
	default:
		st.ErrKind = "error"
	}
	st.ErrMsg = err.Error()
}

func marshal(m ctlMsg) []byte {
	//lint:ignore err-discard ctlMsg is strings and ints only; Marshal is infallible here
	b, _ := json.Marshal(m)
	return b
}

// sendCtl delivers one control message, retrying across transient link
// churn. A fault- or churn-reset connection heals within a heartbeat,
// but the protocol's one-shot messages (status, start, cancel) are lost
// forever if their single write races the reconnect — a lost status in
// particular stalls the driving attempt with no failure to observe,
// because the worker that failed is still perfectly alive. Retries stop
// once the peer is declared dead (heartbeat failure detection owns that
// outcome) or the deadline passes.
func (n *Node) sendCtl(peer *anet.Peer, to string, payload []byte, deadline time.Duration) error {
	var err error
	backoff := 10 * time.Millisecond
	for end := time.Now().Add(deadline); ; {
		if nc := n.cluster.NodeByID(to); nc != nil && nc.Dead() {
			return fmt.Errorf("dist: peer %s is dead", to)
		}
		if err = peer.SendControl(to, payload); err == nil {
			return nil
		}
		if time.Now().After(end) {
			return err
		}
		time.Sleep(backoff)
		if backoff < 160*time.Millisecond {
			backoff *= 2
		}
	}
}

// startWorkerJob launches one attempt on behalf of a remote driver:
// build the DAG from the shipped spec, park at the START barrier, run,
// report status. Cancellation comes from the driver's cancel broadcast,
// Node.Close, or — via the executor's own watchers — the death of any
// node the attempt depends on.
func (n *Node) startWorkerJob(coord string, msg ctlMsg) {
	if msg.Spec == nil || msg.JobID == "" {
		return
	}
	n.mu.Lock()
	if n.closed || n.peer == nil || n.jobs[msg.JobID] != nil {
		n.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	wj := &workerJob{start: make(chan struct{}), cancel: cancel}
	n.jobs[msg.JobID] = wj
	peer := n.peer
	n.mu.Unlock()

	go func() {
		defer func() {
			n.mu.Lock()
			delete(n.jobs, msg.JobID)
			n.mu.Unlock()
			cancel()
		}()
		err := n.runWorkerAttempt(ctx, coord, msg, wj)
		st := ctlMsg{Type: "status", JobID: msg.JobID}
		classifyErr(&st, err)
		// The status MUST land: the driver of a failed attempt otherwise
		// waits forever, since this worker is alive and no watcher fires.
		// Past the retry window the driver is dead or partitioned, and
		// heartbeat failure detection resolves the attempt instead.
		n.sendCtl(peer, coord, marshal(st), 5*time.Second)
	}()
}

func (n *Node) runWorkerAttempt(ctx context.Context, coord string, msg ctlMsg, wj *workerJob) error {
	self := n.peer.ID()
	env := &BuildEnv{Node: self, Coordinator: coord, Result: &hyracks.Collector{}}
	job, err := BuildJob(msg.Spec, env)
	if err != nil {
		return err
	}
	job.SetPlacement(&hyracks.Placement{
		JobID:     msg.JobID,
		Node:      self,
		Assign:    assignFunc(msg.Assign),
		Transport: n.peer,
		Ready: func() {
			// Recoverable if lost — the barrier declares this worker dead at
			// ReadyTimeout and the attempt retries — but riding out brief
			// churn avoids burning an attempt on it.
			n.sendCtl(n.peer, coord, marshal(ctlMsg{Type: "ready", JobID: msg.JobID}), 2*time.Second)
		},
		Start: wj.start,
	})
	return n.cluster.Run(ctx, job)
}

// Run drives a spec to completion across the cluster, retrying on node
// and link failures per the policy. Per attempt it: computes the
// placement over currently-alive members, broadcasts the job (spec +
// assignment) under a fresh attempt-scoped id, builds its own share,
// waits for every participant's READY (laggards past ReadyTimeout are
// declared dead, aborting the attempt into a retry on the survivors),
// broadcasts START, and runs. Worker-side failures flow back as typed
// status messages into the attempt's abort channel.
func (n *Node) Run(ctx context.Context, spec *Spec, pol hyracks.RetryPolicy) ([]hyracks.Tuple, hyracks.RunReport, error) {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	if peer == nil {
		return nil, hyracks.RunReport{}, fmt.Errorf("dist: node is not bound to a peer")
	}
	self := peer.ID()
	// The job id carries the driver's node id and a per-driver run
	// nonce besides the attempt counter: concurrent Runs of the same
	// spec — on this driver or racing drivers — must never collide in
	// the workers' attempt registries.
	runSeq := atomic.AddUint64(&n.seq, 1)
	attempt := 0
	var last *driverRun
	build := func() (*hyracks.Job, error) {
		if last != nil {
			n.finishRun(last)
			last = nil
		}
		attempt++
		jobID := fmt.Sprintf("%s@%s.%d#%d", spec.ID, self, runSeq, attempt)
		members := make([]string, 0, len(n.cluster.Nodes))
		selfAlive := false
		for _, nc := range n.cluster.AliveNodes() {
			members = append(members, nc.ID)
			selfAlive = selfAlive || nc.ID == self
		}
		if !selfAlive {
			return nil, fmt.Errorf("dist: driving node %s is marked dead", self)
		}
		assign, err := Assign(spec, members, self)
		if err != nil {
			return nil, err
		}
		run := &driverRun{
			jobID:   jobID,
			need:    map[string]bool{},
			readyCh: make(chan string, len(members)+1),
			start:   make(chan struct{}),
			abort:   make(chan error, len(members)+1),
			done:    make(chan struct{}),
			result:  &hyracks.Collector{},
		}
		// Only members that actually own tasks participate in the
		// barrier; an idle member never opens edges and never READYs.
		participants := map[string]bool{}
		for _, nodes := range assign {
			for _, id := range nodes {
				participants[id] = true
			}
		}
		for id := range participants {
			run.need[id] = true
			if id != self {
				run.remotes = append(run.remotes, id)
			}
		}
		env := &BuildEnv{Node: self, Coordinator: self, Result: run.result}
		job, err := BuildJob(spec, env)
		if err != nil {
			return nil, err
		}
		n.mu.Lock()
		n.runs[jobID] = run
		n.mu.Unlock()
		jm := marshal(ctlMsg{Type: "job", JobID: jobID, Coordinator: self, Assign: assign, Spec: spec})
		for _, r := range run.remotes {
			// Bounded retry smooths transient connection churn; past that
			// the READY barrier is the failure detector — a worker that
			// never got the job never READYs, gets declared dead at the
			// timeout, and the attempt retries on the survivors.
			n.sendCtl(peer, r, jm, 2*time.Second)
		}
		go n.coordinate(run)
		job.SetPlacement(&hyracks.Placement{
			JobID:     jobID,
			Node:      self,
			Assign:    assignFunc(assign),
			Transport: peer,
			Ready: func() {
				select {
				case run.readyCh <- self:
				default:
				}
			},
			Start: run.start,
			Abort: run.abort,
		})
		last = run
		return job, nil
	}
	rep, err := n.cluster.RunWithRetry(ctx, build, pol)
	var result []hyracks.Tuple
	if last != nil {
		if err == nil {
			result = last.result.Tuples()
		}
		n.finishRun(last)
	}
	return result, rep, err
}

// coordinate runs one attempt's READY/START barrier: collect READY from
// every participant, then release them all. A participant silent past
// ReadyTimeout is declared dead (Kill feeds the executor's watchers)
// and the attempt aborts into a retry.
func (n *Node) coordinate(run *driverRun) {
	timeout := n.ReadyTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	ready := map[string]bool{}
	for len(ready) < len(run.need) {
		select {
		case id := <-run.readyCh:
			if run.need[id] {
				ready[id] = true
			}
		case <-timer.C:
			for id := range run.need {
				if ready[id] {
					continue
				}
				if nc := n.cluster.NodeByID(id); nc != nil {
					nc.Kill()
				}
				select {
				case run.abort <- &hyracks.NodeFailure{Node: id, Op: "(ready barrier)"}:
				default:
				}
			}
			return
		case <-run.done:
			return
		}
	}
	close(run.start)
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	// START must reach every participant: a worker parked at the barrier
	// sends nothing, so a lost START stalls the attempt invisibly. If a
	// send stays down past the window the peer is partitioned, and
	// failure detection aborts the attempt through the watchers.
	sm := marshal(ctlMsg{Type: "start", JobID: run.jobID})
	for _, r := range run.remotes {
		go n.sendCtl(peer, r, sm, 5*time.Second)
	}
}

// finishRun tears one attempt down: deregister (stale control traffic
// for it is dropped from here on), stop the coordinator goroutine, and
// tell the workers to cancel whatever of the attempt is still running.
func (n *Node) finishRun(run *driverRun) {
	run.doneOnce.Do(func() { close(run.done) })
	n.mu.Lock()
	delete(n.runs, run.jobID)
	peer := n.peer
	n.mu.Unlock()
	// Cancels ride the same retry so a worker parked at the START
	// barrier of an abandoned attempt is reliably released; async so a
	// dead remote cannot stall the driver's next attempt.
	cm := marshal(ctlMsg{Type: "cancel", JobID: run.jobID})
	for _, r := range run.remotes {
		go n.sendCtl(peer, r, cm, 2*time.Second)
	}
}
