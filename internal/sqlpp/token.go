// Package sqlpp implements the SQL++ query language: lexer, parser, and
// AST. SQL++ extends SQL for semi-structured, schema-optional data (nested
// objects, multisets, missing vs null) and is AsterixDB's current query
// language; the deprecated AQL front end (package aql) parses to the same
// AST, mirroring how the real system implemented SQL++ "as a peer of AQL"
// sharing the Algebricks algebra underneath.
package sqlpp

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokQuotedIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp // operators and punctuation
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // keyword text is upper-cased
	Pos  int    // byte offset
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords is the SQL++ reserved-word set (subset sufficient for the
// implemented grammar; identifiers matching these must be quoted).
var keywords = map[string]bool{
	"SELECT": true, "VALUE": true, "FROM": true, "WHERE": true, "AS": true,
	"LET": true, "WITH": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true,
	"JOIN": true, "LEFT": true, "OUTER": true, "INNER": true, "ON": true,
	"UNNEST": true, "DISTINCT": true, "ALL": true, "UNION": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "MISSING": true, "UNKNOWN": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "SOME": true, "EVERY": true,
	"SATISFIES": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CREATE": true, "DROP": true, "DATAVERSE": true, "USE": true,
	"TYPE": true, "DATASET": true, "EXTERNAL": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "CLOSED": true, "OPEN": true, "IF": true,
	"INSERT": true, "UPSERT": true, "DELETE": true, "INTO": true,
	"USING": true, "LOAD": true, "RETURNING": true, "EXPLAIN": true,
	// AQL keywords (the lexer is shared by the deprecated AQL front end).
	"FOR": true, "RETURN": true,
}

// IsKeyword reports whether an upper-cased word is reserved.
func IsKeyword(s string) bool { return keywords[s] }
