package sqlpp

import (
	"fmt"
	"strings"
)

// Lexer tokenizes SQL++ (and AQL) source text.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1} }

// SyntaxError reports a lexical or parse error with position.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d: %s", e.Line, e.Msg)
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: lx.pos, Line: lx.line}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if IsKeyword(up) {
			return Token{Kind: TokKeyword, Text: up, Pos: start, Line: lx.line}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start, Line: lx.line}, nil
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	case c == '"' || c == '\'':
		return lx.lexString(c)
	case c == '`':
		// Backquoted identifier.
		lx.pos++
		s := strings.IndexByte(lx.src[lx.pos:], '`')
		if s < 0 {
			return Token{}, lx.errf("unterminated quoted identifier")
		}
		word := lx.src[lx.pos : lx.pos+s]
		lx.pos += s + 1
		return Token{Kind: TokQuotedIdent, Text: word, Pos: start, Line: lx.line}, nil
	}
	// Operators, longest first.
	for _, op := range []string{"<=", ">=", "!=", "<>", "||", "{{", "}}"} {
		if strings.HasPrefix(lx.src[lx.pos:], op) {
			lx.pos += len(op)
			return Token{Kind: TokOp, Text: op, Pos: start, Line: lx.line}, nil
		}
	}
	single := "+-*/%=<>().,;:[]{}?@^"
	if strings.IndexByte(single, c) >= 0 {
		lx.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start, Line: lx.line}, nil
	}
	return Token{}, lx.errf("unexpected character %q", c)
}

func (lx *Lexer) lexNumber() (Token, error) {
	start := lx.pos
	isFloat := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c >= '0' && c <= '9' {
			lx.pos++
		} else if c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			isFloat = true
			lx.pos++
		} else if c == 'e' || c == 'E' {
			isFloat = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		} else {
			break
		}
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: lx.src[start:lx.pos], Pos: start, Line: lx.line}, nil
}

func (lx *Lexer) lexString(quote byte) (Token, error) {
	start := lx.pos
	lx.pos++
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start, Line: lx.line}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated string")
			}
			e := lx.src[lx.pos]
			lx.pos++
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '"', '\'', '`', '/':
				sb.WriteByte(e)
			default:
				return Token{}, lx.errf("invalid escape \\%c", e)
			}
		case '\n':
			return Token{}, lx.errf("newline in string literal")
		default:
			sb.WriteByte(c)
			lx.pos++
		}
	}
	return Token{}, lx.errf("unterminated string")
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
