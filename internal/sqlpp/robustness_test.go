package sqlpp

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws structured garbage at the parser: random
// token soup assembled from real lexemes. The parser must return errors,
// never panic — front-line input handling for a system with users (§VII).
func TestParserNeverPanics(t *testing.T) {
	lexemes := []string{
		"SELECT", "VALUE", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
		"LET", "WITH", "AS", "JOIN", "ON", "UNNEST", "SOME", "EVERY",
		"SATISFIES", "CASE", "WHEN", "THEN", "ELSE", "END", "AND", "OR",
		"NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "MISSING", "UNION",
		"ALL", "CREATE", "DROP", "DATASET", "TYPE", "INDEX", "PRIMARY",
		"KEY", "INSERT", "UPSERT", "DELETE", "INTO", "USING", "EXISTS",
		"ident", "x", "ds", "f1", `"str"`, "'str2'", "`q id`", "42", "3.14",
		"(", ")", "{", "}", "{{", "}}", "[", "]", ",", ";", ":", ".", "*",
		"+", "-", "/", "%", "=", "!=", "<", "<=", ">", ">=", "||", "?",
	}
	r := rand.New(rand.NewSource(99))
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("parser panicked: %v", p)
		}
	}()
	for trial := 0; trial < 3000; trial++ {
		n := 1 + r.Intn(25)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(lexemes[r.Intn(len(lexemes))])
			sb.WriteByte(' ')
		}
		sb.WriteByte(';')
		// Errors are fine and expected; panics are not.
		_, _ = ParseScript(sb.String())
	}
}

// TestLexerNeverPanics feeds raw random bytes to the lexer.
func TestLexerNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("lexer panicked: %v", p)
		}
	}()
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, r.Intn(60))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		lx := NewLexer(string(b))
		for i := 0; i < 100; i++ {
			tok, err := lx.Next()
			if err != nil || tok.Kind == TokEOF {
				break
			}
		}
	}
}
