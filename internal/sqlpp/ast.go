package sqlpp

import "asterix/internal/adm"

// Statement is any parsed SQL++ (or AQL) statement.
type Statement interface{ stmtNode() }

// --- DDL ---

// CreateDataverse is CREATE DATAVERSE name.
type CreateDataverse struct {
	Name        string
	IfNotExists bool
}

// UseDataverse is USE name.
type UseDataverse struct{ Name string }

// TypeExpr denotes a type in DDL: exactly one field is set.
type TypeExpr struct {
	Named    string    // reference to a named or primitive type
	Array    *TypeExpr // [T]
	Multiset *TypeExpr // {{T}}
	Object   *ObjectTypeExpr
}

// ObjectTypeExpr is an inline object type body.
type ObjectTypeExpr struct {
	Closed bool
	Fields []TypeField
}

// TypeField is one declared field.
type TypeField struct {
	Name     string
	Type     TypeExpr
	Optional bool
}

// CreateType is CREATE TYPE name AS [CLOSED] { ... }.
type CreateType struct {
	Name        string
	Body        ObjectTypeExpr
	IfNotExists bool
}

// CreateDataset is CREATE DATASET name(Type) PRIMARY KEY field.
type CreateDataset struct {
	Name        string
	TypeName    string
	PrimaryKey  []string
	IfNotExists bool
}

// CreateExternalDataset is CREATE EXTERNAL DATASET name(Type) USING
// adapter (params).
type CreateExternalDataset struct {
	Name        string
	TypeName    string
	Adapter     string
	Params      map[string]string
	IfNotExists bool
}

// CreateIndex is CREATE INDEX name ON ds(field,...) TYPE kind.
type CreateIndex struct {
	Name        string
	Dataset     string
	Fields      []string
	Kind        string // BTREE (default), RTREE, KEYWORD, ZORDER, HILBERT, GRID
	IfNotExists bool
}

// DropStmt is DROP DATASET|TYPE|INDEX|DATAVERSE name.
type DropStmt struct {
	What     string // DATASET, TYPE, INDEX, DATAVERSE
	Name     string
	On       string // for DROP INDEX ds.idx: dataset name
	IfExists bool
}

// LoadStmt is LOAD DATASET name USING adapter (params): bulk import.
type LoadStmt struct {
	Dataset string
	Adapter string
	Params  map[string]string
}

func (*CreateDataverse) stmtNode()       {}
func (*UseDataverse) stmtNode()          {}
func (*CreateType) stmtNode()            {}
func (*CreateDataset) stmtNode()         {}
func (*CreateExternalDataset) stmtNode() {}
func (*CreateIndex) stmtNode()           {}
func (*DropStmt) stmtNode()              {}
func (*LoadStmt) stmtNode()              {}

// --- DML ---

// InsertStmt is INSERT INTO ds (expr); the expression may be a single
// object or a collection of objects.
type InsertStmt struct {
	Dataset string
	Expr    Expr
}

// UpsertStmt is UPSERT INTO ds (expr).
type UpsertStmt struct {
	Dataset string
	Expr    Expr
}

// DeleteStmt is DELETE FROM ds [AS v] [WHERE cond].
type DeleteStmt struct {
	Dataset string
	Alias   string
	Where   Expr
}

func (*InsertStmt) stmtNode() {}
func (*UpsertStmt) stmtNode() {}
func (*DeleteStmt) stmtNode() {}

// QueryStmt is a top-level query.
type QueryStmt struct{ Body Expr }

func (*QueryStmt) stmtNode() {}

// ExplainStmt is EXPLAIN <query>: return the optimized plan as text.
type ExplainStmt struct{ Query *QueryStmt }

func (*ExplainStmt) stmtNode() {}

// --- Expressions ---

// Expr is any SQL++ expression.
type Expr interface{ exprNode() }

// Literal is a constant.
type Literal struct{ Value adm.Value }

// VarRef references a variable in scope.
type VarRef struct{ Name string }

// FieldAccess is base.field.
type FieldAccess struct {
	Base  Expr
	Field string
}

// IndexAccess is base[idx].
type IndexAccess struct {
	Base  Expr
	Index Expr
}

// Call is fn(args...); DISTINCT supports COUNT(DISTINCT x).
type Call struct {
	Fn       string // lower-cased
	Args     []Expr
	Distinct bool
}

// Unary is op x (-, NOT).
type Unary struct {
	Op string
	X  Expr
}

// Binary is l op r; Op in {+ - * / % || = != < <= > >= AND OR LIKE}.
type Binary struct {
	Op   string
	L, R Expr
}

// IsExpr is x IS [NOT] NULL|MISSING|UNKNOWN.
type IsExpr struct {
	X      Expr
	What   string // NULL, MISSING, UNKNOWN
	Negate bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// InExpr is x [NOT] IN coll.
type InExpr struct {
	X, Coll Expr
	Negate  bool
}

// CaseExpr is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenThen
	Else    Expr
}

// WhenThen is one CASE arm.
type WhenThen struct{ When, Then Expr }

// QuantifiedExpr is SOME|EVERY v IN coll SATISFIES pred.
type QuantifiedExpr struct {
	Some      bool // else EVERY
	Var       string
	In        Expr
	Satisfies Expr
}

// ExistsExpr is [NOT] EXISTS expr.
type ExistsExpr struct {
	X      Expr
	Negate bool
}

// ObjectConstructor is { "name": expr, ... }.
type ObjectConstructor struct{ Fields []ObjectField }

// ObjectField is one constructed field; Name may be a computed expression.
type ObjectField struct {
	Name  Expr
	Value Expr
}

// ArrayConstructor is [e, ...].
type ArrayConstructor struct{ Elems []Expr }

// MultisetConstructor is {{e, ...}}.
type MultisetConstructor struct{ Elems []Expr }

// SelectExpr is a (possibly nested) SFW query block.
type SelectExpr struct {
	With    []LetClause
	Select  SelectClause
	From    []FromTerm
	Lets    []LetClause
	Where   Expr
	GroupBy []GroupKey
	GroupAs string
	Having  Expr
	OrderBy []OrderItem
	Limit   Expr
	Offset  Expr
}

// LetClause binds a name to an expression.
type LetClause struct {
	Var  string
	Expr Expr
}

// SelectClause is the projection list.
type SelectClause struct {
	Distinct bool
	Star     bool
	Value    Expr // SELECT VALUE expr
	Items    []Projection
}

// Projection is expr [AS alias].
type Projection struct {
	Expr  Expr
	Alias string
}

// JoinKindAST distinguishes join flavors in the AST.
type JoinKindAST int

// AST join kinds.
const (
	JoinInner JoinKindAST = iota
	JoinLeftOuter
)

// FromTerm is one FROM item with its chained joins and unnests.
type FromTerm struct {
	Expr  Expr
	Alias string
	Links []FromLink
}

// FromLink is a JOIN or UNNEST hanging off a from-term.
type FromLink struct {
	IsJoin bool
	Kind   JoinKindAST
	Expr   Expr
	Alias  string
	On     Expr // joins only
}

// GroupKey is expr [AS alias].
type GroupKey struct {
	Expr  Expr
	Alias string
}

// OrderItem is expr [ASC|DESC].
type OrderItem struct {
	Expr Expr
	Desc bool
}

// UnionExpr is block UNION ALL block [UNION ALL ...]; each block is a
// SelectExpr (bag-union semantics, no duplicate elimination).
type UnionExpr struct{ Blocks []Expr }

func (*UnionExpr) exprNode() {}

func (*Literal) exprNode()             {}
func (*VarRef) exprNode()              {}
func (*FieldAccess) exprNode()         {}
func (*IndexAccess) exprNode()         {}
func (*Call) exprNode()                {}
func (*Unary) exprNode()               {}
func (*Binary) exprNode()              {}
func (*IsExpr) exprNode()              {}
func (*Between) exprNode()             {}
func (*InExpr) exprNode()              {}
func (*CaseExpr) exprNode()            {}
func (*QuantifiedExpr) exprNode()      {}
func (*ExistsExpr) exprNode()          {}
func (*ObjectConstructor) exprNode()   {}
func (*ArrayConstructor) exprNode()    {}
func (*MultisetConstructor) exprNode() {}
func (*SelectExpr) exprNode()          {}
