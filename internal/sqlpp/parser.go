package sqlpp

import (
	"fmt"
	"strconv"
	"strings"

	"asterix/internal/adm"
)

// Parser is a recursive-descent SQL++ parser.
type Parser struct {
	lx    *Lexer
	tok   Token
	next  Token
	err   error
	depth int
}

// maxExprDepth bounds expression-nesting recursion so a hostile
// multi-megabyte query ("(((((...") returns an error instead of
// overflowing the goroutine stack.
const maxExprDepth = 10000

// NewParser creates a parser over src.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseScript parses a whole ;-separated script.
func ParseScript(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.tok.Kind == TokEOF {
			if p.err != nil {
				return nil, p.err
			}
			return stmts, nil
		}
		s, err := p.ParseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.tok.Kind != TokEOF && !p.acceptOp(";") {
			return nil, p.errf("expected ';' after statement, got %s", p.tok)
		}
	}
}

// ParseQuery parses a single query expression (for APIs that accept just a
// query).
func ParseQuery(src string) (*QueryStmt, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlpp: expected a single query, got %d statements", len(stmts))
	}
	q, ok := stmts[0].(*QueryStmt)
	if !ok {
		return nil, fmt.Errorf("sqlpp: statement is not a query")
	}
	return q, nil
}

func (p *Parser) advance() error {
	p.tok = p.next
	// Lexer errors are sticky: accept* callers discard advance's return,
	// so the lookahead is pinned at EOF to guarantee every parsing loop
	// terminates, and errf surfaces the recorded error.
	if p.err != nil {
		p.next = Token{Kind: TokEOF, Line: p.tok.Line}
		return p.err
	}
	t, err := p.lx.Next()
	if err != nil {
		p.err = err
		p.next = Token{Kind: TokEOF, Line: p.tok.Line}
		return err
	}
	p.next = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	if p.err != nil {
		return p.err
	}
	return &SyntaxError{Line: p.tok.Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isKw(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %s", kw, p.tok)
	}
	return nil
}

func (p *Parser) isOp(op string) bool {
	return p.tok.Kind == TokOp && p.tok.Text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.advance()
		return true
	}
	// "}}" is lexed greedily for multiset literals; when a single "}" is
	// needed (nested object constructors ending in "}}"), split the token.
	if op == "}" && p.isOp("}}") {
		p.tok.Text = "}"
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %s", op, p.tok)
	}
	return nil
}

// parseIdent accepts a plain or quoted identifier.
func (p *Parser) parseIdent() (string, error) {
	switch p.tok.Kind {
	case TokIdent, TokQuotedIdent:
		name := p.tok.Text
		p.advance()
		return name, nil
	}
	return "", p.errf("expected identifier, got %s", p.tok)
}

// parseName accepts identifiers and (for field names) string literals.
func (p *Parser) parseName() (string, error) {
	if p.tok.Kind == TokString {
		name := p.tok.Text
		p.advance()
		return name, nil
	}
	return p.parseIdent()
}

// parseQualifiedName parses a possibly dotted name (dataverse.dataset).
func (p *Parser) parseQualifiedName() (string, error) {
	first, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	parts := []string{first}
	for p.isOp(".") && (p.next.Kind == TokIdent || p.next.Kind == TokQuotedIdent) {
		p.advance()
		n, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		parts = append(parts, n)
	}
	return strings.Join(parts, "."), nil
}

// Exported low-level hooks used by the AQL front end (package aql), which
// shares this lexer and expression grammar while providing its own FLWOR
// clause structure.

// ParseExpression parses one expression at the current position.
func (p *Parser) ParseExpression() (Expr, error) { return p.parseExpr() }

// ParseIdentifier parses one identifier.
func (p *Parser) ParseIdentifier() (string, error) { return p.parseIdent() }

// AcceptKeyword consumes kw if present.
func (p *Parser) AcceptKeyword(kw string) bool { return p.acceptKw(kw) }

// PeekKeyword reports whether the current token is kw.
func (p *Parser) PeekKeyword(kw string) bool { return p.isKw(kw) }

// ExpectKeyword consumes kw or errors.
func (p *Parser) ExpectKeyword(kw string) error { return p.expectKw(kw) }

// AcceptOperator consumes op if present.
func (p *Parser) AcceptOperator(op string) bool { return p.acceptOp(op) }

// ExpectOperator consumes op or errors.
func (p *Parser) ExpectOperator(op string) error { return p.expectOp(op) }

// PeekIdent reports whether the current token is a plain identifier with
// the given text (for AQL's soft keywords).
func (p *Parser) PeekIdent(text string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, text)
}

// AtEOF reports end of input.
func (p *Parser) AtEOF() bool { return p.tok.Kind == TokEOF }

// Errorf builds a positioned syntax error.
func (p *Parser) Errorf(format string, args ...any) error { return p.errf(format, args...) }

// ParseStatement parses one statement.
func (p *Parser) ParseStatement() (Statement, error) {
	switch {
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("USE"):
		p.advance()
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &UseDataverse{Name: name}, nil
	case p.isKw("INSERT"), p.isKw("UPSERT"):
		return p.parseUpsertInsert()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("LOAD"):
		return p.parseLoad()
	case p.acceptKw("EXPLAIN"):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: &QueryStmt{Body: e}}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &QueryStmt{Body: e}, nil
	}
}

func (p *Parser) parseIfNotExists() (bool, error) {
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKw("DATAVERSE"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		return &CreateDataverse{Name: name, IfNotExists: ine}, nil

	case p.acceptKw("TYPE"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		body, err := p.parseObjectTypeBody()
		if err != nil {
			return nil, err
		}
		return &CreateType{Name: name, Body: *body, IfNotExists: ine}, nil

	case p.acceptKw("EXTERNAL"):
		if err := p.expectKw("DATASET"); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		typeName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if err := p.expectKw("USING"); err != nil {
			return nil, err
		}
		adapter, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		return &CreateExternalDataset{Name: name, TypeName: typeName, Adapter: adapter, Params: params}, nil

	case p.acceptKw("DATASET"):
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		typeName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if err := p.expectKw("PRIMARY"); err != nil {
			return nil, err
		}
		if err := p.expectKw("KEY"); err != nil {
			return nil, err
		}
		var pk []string
		for {
			f, err := p.parseName()
			if err != nil {
				return nil, err
			}
			pk = append(pk, f)
			if !p.acceptOp(",") {
				break
			}
		}
		return &CreateDataset{Name: name, TypeName: typeName, PrimaryKey: pk, IfNotExists: ine}, nil

	case p.acceptKw("INDEX"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		ds, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var fields []string
		for {
			f, err := p.parseName()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		kind := "BTREE"
		if p.acceptKw("TYPE") {
			k, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			kind = strings.ToUpper(k)
		}
		return &CreateIndex{Name: name, Dataset: ds, Fields: fields, Kind: kind, IfNotExists: ine}, nil
	}
	return nil, p.errf("expected DATAVERSE, TYPE, DATASET, EXTERNAL DATASET or INDEX after CREATE")
}

// parseObjectTypeBody parses [CLOSED|OPEN] { field: type, ... }.
func (p *Parser) parseObjectTypeBody() (*ObjectTypeExpr, error) {
	body := &ObjectTypeExpr{}
	if p.acceptKw("CLOSED") {
		body.Closed = true
	} else {
		p.acceptKw("OPEN")
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	if p.acceptOp("}") {
		return body, nil
	}
	for {
		fname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		ft, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		optional := p.acceptOp("?")
		body.Fields = append(body.Fields, TypeField{Name: fname, Type: ft, Optional: optional})
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return body, nil
	}
}

func (p *Parser) parseTypeExpr() (TypeExpr, error) {
	switch {
	case p.acceptOp("["):
		inner, err := p.parseTypeExpr()
		if err != nil {
			return TypeExpr{}, err
		}
		if err := p.expectOp("]"); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Array: &inner}, nil
	case p.acceptOp("{{"):
		inner, err := p.parseTypeExpr()
		if err != nil {
			return TypeExpr{}, err
		}
		if err := p.expectOp("}}"); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Multiset: &inner}, nil
	case p.isOp("{"):
		body, err := p.parseObjectTypeBody()
		if err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Object: body}, nil
	default:
		name, err := p.parseIdent()
		if err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Named: name}, nil
	}
}

// parseParams parses (("k"="v"), ("k"="v"), ...).
func (p *Parser) parseParams() (map[string]string, error) {
	params := map[string]string{}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, p.errf("expected parameter name string, got %s", p.tok)
		}
		k := p.tok.Text
		p.advance()
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, p.errf("expected parameter value string, got %s", p.tok)
		}
		v := p.tok.Text
		p.advance()
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		params[k] = v
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return params, nil
	}
}

func (p *Parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	var what string
	switch {
	case p.acceptKw("DATASET"):
		what = "DATASET"
	case p.acceptKw("TYPE"):
		what = "TYPE"
	case p.acceptKw("DATAVERSE"):
		what = "DATAVERSE"
	case p.acceptKw("INDEX"):
		what = "INDEX"
	default:
		return nil, p.errf("expected DATASET, TYPE, DATAVERSE or INDEX after DROP")
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	st := &DropStmt{What: what, Name: name}
	if what == "INDEX" {
		// DROP INDEX dataset.index.
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			st.On = name[:i]
			st.Name = name[i+1:]
		} else {
			return nil, p.errf("DROP INDEX requires dataset.index")
		}
	}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	return st, nil
}

func (p *Parser) parseUpsertInsert() (Statement, error) {
	isUpsert := p.isKw("UPSERT")
	p.advance()
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	ds, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	// Parenthesized payload is conventional but optional.
	hadParen := p.acceptOp("(")
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if hadParen {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if isUpsert {
		return &UpsertStmt{Dataset: ds, Expr: e}, nil
	}
	return &InsertStmt{Dataset: ds, Expr: e}, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ds, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	alias := lastPathPart(ds)
	if p.acceptKw("AS") {
		alias, err = p.parseIdent()
		if err != nil {
			return nil, err
		}
	} else if p.tok.Kind == TokIdent {
		alias = p.tok.Text
		p.advance()
	}
	var where Expr
	if p.acceptKw("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &DeleteStmt{Dataset: ds, Alias: alias, Where: where}, nil
}

func (p *Parser) parseLoad() (Statement, error) {
	p.advance() // LOAD
	if err := p.expectKw("DATASET"); err != nil {
		return nil, err
	}
	ds, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("USING"); err != nil {
		return nil, err
	}
	adapter, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	return &LoadStmt{Dataset: ds, Adapter: adapter, Params: params}, nil
}

func lastPathPart(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// --- Expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL/MISSING/UNKNOWN
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		switch {
		case p.acceptKw("NULL"):
			return &IsExpr{X: l, What: "NULL", Negate: neg}, nil
		case p.acceptKw("MISSING"):
			return &IsExpr{X: l, What: "MISSING", Negate: neg}, nil
		case p.acceptKw("UNKNOWN"):
			return &IsExpr{X: l, What: "UNKNOWN", Negate: neg}, nil
		}
		return nil, p.errf("expected NULL, MISSING or UNKNOWN after IS")
	}
	neg := false
	if p.isKw("NOT") && (p.next.Kind == TokKeyword && (p.next.Text == "BETWEEN" || p.next.Text == "IN" || p.next.Text == "LIKE")) {
		p.advance()
		neg = true
	}
	switch {
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.acceptKw("IN"):
		coll, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &InExpr{X: l, Coll: coll, Negate: neg}, nil
	case p.acceptKw("LIKE"):
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&Binary{Op: "LIKE", L: l, R: r})
		if neg {
			e = &Unary{Op: "NOT", X: e}
		}
		return e, nil
	}
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.isOp(op) {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isOp("||"):
			op = "||"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("*"):
			op = "*"
		case p.isOp("/"):
			op = "/"
		case p.isOp("%"):
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, p.errf("expression nesting exceeds %d levels", maxExprDepth)
	}
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp(".") && (p.next.Kind == TokIdent || p.next.Kind == TokQuotedIdent):
			p.advance()
			f, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			e = &FieldAccess{Base: e, Field: f}
		case p.acceptOp("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &IndexAccess{Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokInt:
		i, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", p.tok.Text)
		}
		p.advance()
		return &Literal{Value: adm.Int64(i)}, nil
	case p.tok.Kind == TokFloat:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", p.tok.Text)
		}
		p.advance()
		return &Literal{Value: adm.Double(f)}, nil
	case p.tok.Kind == TokString:
		s := p.tok.Text
		p.advance()
		return &Literal{Value: adm.String(s)}, nil
	case p.acceptKw("TRUE"):
		return &Literal{Value: adm.Boolean(true)}, nil
	case p.acceptKw("FALSE"):
		return &Literal{Value: adm.Boolean(false)}, nil
	case p.acceptKw("NULL"):
		return &Literal{Value: adm.Null}, nil
	case p.acceptKw("MISSING"):
		return &Literal{Value: adm.Missing}, nil
	case p.isKw("CASE"):
		return p.parseCase()
	case p.isKw("SOME"), p.isKw("EVERY"):
		return p.parseQuantified()
	case p.isKw("EXISTS"):
		p.advance()
		x, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{X: x}, nil
	case p.isKw("SELECT"), p.isKw("WITH"), p.isKw("FROM"):
		return p.parseSelectCompound()
	case p.acceptOp("("):
		var e Expr
		var err error
		if p.isKw("SELECT") || p.isKw("WITH") || p.isKw("FROM") {
			e, err = p.parseSelectCompound()
		} else {
			e, err = p.parseExpr()
		}
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.acceptOp("{{"):
		m := &MultisetConstructor{}
		if p.acceptOp("}}") {
			return m, nil
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Elems = append(m.Elems, e)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp("}}"); err != nil {
				return nil, err
			}
			return m, nil
		}
	case p.acceptOp("{"):
		return p.parseObjectConstructor()
	case p.acceptOp("["):
		a := &ArrayConstructor{}
		if p.acceptOp("]") {
			return a, nil
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Elems = append(a.Elems, e)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return a, nil
		}
	case p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent:
		name := p.tok.Text
		p.advance()
		if p.acceptOp("(") {
			call := &Call{Fn: strings.ToLower(name)}
			if p.acceptKw("DISTINCT") {
				call.Distinct = true
			}
			// COUNT(*) special case.
			if p.acceptOp("*") {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptOp(")") {
				return call, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
		}
		return &VarRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token %s in expression", p.tok)
}

func (p *Parser) parseObjectConstructor() (Expr, error) {
	o := &ObjectConstructor{}
	if p.acceptOp("}") {
		return o, nil
	}
	for {
		var nameExpr Expr
		switch {
		case p.tok.Kind == TokString && p.next.Kind == TokOp && p.next.Text == ":":
			nameExpr = &Literal{Value: adm.String(p.tok.Text)}
			p.advance()
		case p.tok.Kind == TokIdent || p.tok.Kind == TokQuotedIdent:
			// { alias: expr } or shorthand { v } meaning {"v": v}.
			name := p.tok.Text
			p.advance()
			if !p.isOp(":") {
				o.Fields = append(o.Fields, ObjectField{
					Name:  &Literal{Value: adm.String(name)},
					Value: &VarRef{Name: name},
				})
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp("}"); err != nil {
					return nil, err
				}
				return o, nil
			}
			nameExpr = &Literal{Value: adm.String(name)}
		default:
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			nameExpr = e
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		o.Fields = append(o.Fields, ObjectField{Name: nameExpr, Value: v})
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return o, nil
	}
}

func (p *Parser) parseCase() (Expr, error) {
	p.advance() // CASE
	c := &CaseExpr{}
	if !p.isKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenThen{When: w, Then: t})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseQuantified() (Expr, error) {
	some := p.isKw("SOME")
	p.advance()
	v, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("IN"); err != nil {
		return nil, err
	}
	coll, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SATISFIES"); err != nil {
		return nil, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &QuantifiedExpr{Some: some, Var: v, In: coll, Satisfies: pred}, nil
}

// parseSelectCompound parses a select block optionally chained with
// UNION ALL into further blocks.
func (p *Parser) parseSelectCompound() (Expr, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.isKw("UNION") {
		return first, nil
	}
	u := &UnionExpr{Blocks: []Expr{first}}
	for p.acceptKw("UNION") {
		if err := p.expectKw("ALL"); err != nil {
			return nil, err
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		u.Blocks = append(u.Blocks, next)
	}
	return u, nil
}

// parseSelect parses a full SFW block (optionally WITH-prefixed, and
// accepting the FROM-first order SQL++ also allows).
func (p *Parser) parseSelect() (Expr, error) {
	sel := &SelectExpr{}
	if p.acceptKw("WITH") {
		for {
			v, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.With = append(sel.With, LetClause{Var: v, Expr: e})
			if !p.acceptOp(",") {
				break
			}
		}
	}

	fromFirst := false
	if p.isKw("FROM") {
		fromFirst = true
		if err := p.parseFromClause(sel); err != nil {
			return nil, err
		}
		if err := p.parseLetWhereGroup(sel); err != nil {
			return nil, err
		}
	}

	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if p.acceptKw("DISTINCT") {
		sel.Select.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	switch {
	case p.acceptKw("VALUE"):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Select.Value = e
	case p.acceptOp("*"):
		sel.Select.Star = true
	default:
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			alias := ""
			if p.acceptKw("AS") {
				alias, err = p.parseIdent()
				if err != nil {
					return nil, err
				}
			} else if p.tok.Kind == TokIdent {
				alias = p.tok.Text
				p.advance()
			} else {
				alias = implicitAlias(e)
			}
			sel.Select.Items = append(sel.Select.Items, Projection{Expr: e, Alias: alias})
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if !fromFirst {
		if p.isKw("FROM") {
			if err := p.parseFromClause(sel); err != nil {
				return nil, err
			}
		}
		if err := p.parseLetWhereGroup(sel); err != nil {
			return nil, err
		}
	}

	// ORDER BY / LIMIT / OFFSET always come last.
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *Parser) parseFromClause(sel *SelectExpr) error {
	if err := p.expectKw("FROM"); err != nil {
		return err
	}
	for {
		term, err := p.parseFromTerm()
		if err != nil {
			return err
		}
		sel.From = append(sel.From, *term)
		if !p.acceptOp(",") {
			return nil
		}
	}
}

func (p *Parser) parseFromTerm() (*FromTerm, error) {
	e, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	term := &FromTerm{Expr: e, Alias: implicitAlias(e)}
	if p.acceptKw("AS") {
		term.Alias, err = p.parseIdent()
		if err != nil {
			return nil, err
		}
	} else if p.tok.Kind == TokIdent {
		term.Alias = p.tok.Text
		p.advance()
	}
	if term.Alias == "" {
		return nil, p.errf("FROM term requires an alias")
	}
	for {
		switch {
		case p.isKw("JOIN") || p.isKw("INNER") || p.isKw("LEFT"):
			link := FromLink{IsJoin: true, Kind: JoinInner}
			if p.acceptKw("LEFT") {
				p.acceptKw("OUTER")
				link.Kind = JoinLeftOuter
			} else {
				p.acceptKw("INNER")
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			je, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			link.Expr = je
			link.Alias = implicitAlias(je)
			if p.acceptKw("AS") {
				link.Alias, err = p.parseIdent()
				if err != nil {
					return nil, err
				}
			} else if p.tok.Kind == TokIdent {
				link.Alias = p.tok.Text
				p.advance()
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			link.On, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			term.Links = append(term.Links, link)
		case p.acceptKw("UNNEST"):
			ue, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			link := FromLink{Expr: ue, Alias: implicitAlias(ue)}
			if p.acceptKw("AS") {
				link.Alias, err = p.parseIdent()
				if err != nil {
					return nil, err
				}
			} else if p.tok.Kind == TokIdent {
				link.Alias = p.tok.Text
				p.advance()
			}
			if link.Alias == "" {
				return nil, p.errf("UNNEST requires an alias")
			}
			term.Links = append(term.Links, link)
		default:
			return term, nil
		}
	}
}

func (p *Parser) parseLetWhereGroup(sel *SelectExpr) error {
	for p.acceptKw("LET") {
		for {
			v, err := p.parseIdent()
			if err != nil {
				return err
			}
			if err := p.expectOp("="); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			sel.Lets = append(sel.Lets, LetClause{Var: v, Expr: e})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			gk := GroupKey{Expr: e, Alias: implicitAlias(e)}
			if p.acceptKw("AS") {
				gk.Alias, err = p.parseIdent()
				if err != nil {
					return err
				}
			}
			if gk.Alias == "" {
				return p.errf("GROUP BY key requires AS alias (or use a named expression)")
			}
			sel.GroupBy = append(sel.GroupBy, gk)
			if !p.acceptOp(",") {
				break
			}
		}
		if p.acceptKw("GROUP") {
			if err := p.expectKw("AS"); err != nil {
				return err
			}
			g, err := p.parseIdent()
			if err != nil {
				return err
			}
			sel.GroupAs = g
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Having = e
	}
	return nil
}

// implicitAlias derives an alias from a variable or path expression.
func implicitAlias(e Expr) string {
	switch x := e.(type) {
	case *VarRef:
		return x.Name
	case *FieldAccess:
		return x.Field
	}
	return ""
}
