package sqlpp

import "testing"

// FuzzSQLPPParse checks that the parser never panics: any input must
// either parse or return an error. The seeds cover every statement kind
// plus inputs shaped like past robustness bugs (unterminated strings,
// deep nesting, stray operators).
func FuzzSQLPPParse(f *testing.F) {
	seeds := []string{
		``,
		`SELECT VALUE 1;`,
		`SELECT u.name FROM Users u WHERE u.id = 3 ORDER BY u.name LIMIT 5;`,
		`SELECT g.uid, COUNT(*) AS n FROM Msgs g GROUP BY g.uid HAVING COUNT(*) > 1;`,
		`SELECT u.name FROM Users u, u.friends f WHERE SOME m IN u.msgs SATISFIES m.len > 10;`,
		`CREATE TYPE T AS { id: int64, name: string };`,
		`CREATE TYPE C AS CLOSED { id: int64 };`,
		`CREATE DATASET Users(T) PRIMARY KEY id;`,
		`CREATE EXTERNAL DATASET Logs(L) USING localfs (("path"="x"),("format"="delimited-text"));`,
		`CREATE INDEX iAge ON Users(age) TYPE BTREE;`,
		`CREATE INDEX iLoc ON Users(loc) TYPE RTREE;`,
		`INSERT INTO Users ({"id": 1, "name": "a"});`,
		`UPSERT INTO Users ([{"id": 1}, {"id": 2}]);`,
		`DELETE FROM Users u WHERE u.id = 9;`,
		`LOAD DATASET Users USING localfs (("path"="f"),("format"="adm"));`,
		`DROP DATASET Users;`,
		`FOR $u IN dataset Users RETURN $u;`,
		`SELECT VALUE [1, 2.5, "s", true, null, missing];`,
		`SELECT VALUE {"a": {"b": {"c": [[[1]]]}}};`,
		`SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM D d;`,
		`SELECT VALUE 1 + 2 * 3 - 4 / 5 || 'x';`,
		"SELECT VALUE 'unterminated",
		`SELECT VALUE "unterminated`,
		`((((((((((`,
		`SELECT FROM WHERE;`,
		"\x00\xff SELECT",
		`/* comment only */`,
		`-- line comment`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The contract under fuzz is "no panic": errors are expected on
		// arbitrary input, results are not inspected.
		stmts, err := ParseScript(src)
		_ = stmts
		_ = err
	})
}
