package sqlpp

import (
	"strings"
	"testing"

	"asterix/internal/adm"
)

// figure3DDL is the paper's Figure 3(a,b) nearly verbatim.
const figure3DDL = `
CREATE TYPE GleambookUserType AS {
	id: int,
	alias: string,
	name: string,
	userSince: datetime,
	friendIds: {{ int }},
	employment: [EmploymentType]
};

CREATE TYPE GleambookMessageType AS {
	messageId: int,
	authorId: int,
	inResponseTo: int?,
	senderLocation: point?,
	message: string
};

CREATE TYPE EmploymentType AS {
	organizationName: string,
	startDate: date,
	endDate: date?
};

CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId;

CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
CREATE INDEX gbAuthorIdx ON GleambookMessages(authorId) TYPE BTREE;
CREATE INDEX gbSenderLocIndex ON GleambookMessages(senderLocation) TYPE RTREE;
CREATE INDEX gbMessageIdx ON GleambookMessages(message) TYPE KEYWORD;

CREATE TYPE AccessLogType AS CLOSED {
	ip: string,
	time: string,
	user: string,
	verb: string,
	'path': string,
	stat: int32,
	size: int32
};

CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
	(("path"="localhost:///Users/mjc/extdemo/accesses.txt"),
	 ("format"="delimited-text"), ("delimiter"="|"));
`

func TestParseFigure3DDL(t *testing.T) {
	stmts, err := ParseScript(figure3DDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 11 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	ct := stmts[0].(*CreateType)
	if ct.Name != "GleambookUserType" || ct.Body.Closed {
		t.Errorf("type 0: %+v", ct)
	}
	if len(ct.Body.Fields) != 6 {
		t.Fatalf("user type fields = %d", len(ct.Body.Fields))
	}
	if f := ct.Body.Fields[4]; f.Name != "friendIds" || f.Type.Multiset == nil || f.Type.Multiset.Named != "int" {
		t.Errorf("friendIds field wrong: %+v", f)
	}
	if f := ct.Body.Fields[5]; f.Type.Array == nil || f.Type.Array.Named != "EmploymentType" {
		t.Errorf("employment field wrong: %+v", f)
	}
	mt := stmts[1].(*CreateType)
	if !mt.Body.Fields[2].Optional || !mt.Body.Fields[3].Optional {
		t.Error("optional fields not marked")
	}
	ds := stmts[3].(*CreateDataset)
	if ds.Name != "GleambookUsers" || ds.TypeName != "GleambookUserType" || ds.PrimaryKey[0] != "id" {
		t.Errorf("dataset: %+v", ds)
	}
	idx := stmts[7].(*CreateIndex)
	if idx.Kind != "RTREE" || idx.Fields[0] != "senderLocation" {
		t.Errorf("rtree index: %+v", idx)
	}
	alt := stmts[8].(*CreateIndex)
	if alt.Kind != "KEYWORD" {
		t.Errorf("keyword index: %+v", alt)
	}
	closed := stmts[10].(*CreateExternalDataset)
	if closed.Adapter != "localfs" || closed.Params["format"] != "delimited-text" || closed.Params["delimiter"] != "|" {
		t.Errorf("external dataset: %+v", closed)
	}
	closedTy := stmts[9].(*CreateType)
	if !closedTy.Body.Closed {
		t.Error("AccessLogType should be CLOSED")
	}
	// The quoted 'path' field parses as a name.
	found := false
	for _, f := range closedTy.Body.Fields {
		if f.Name == "path" {
			found = true
		}
	}
	if !found {
		t.Error("'path' field missing")
	}
}

// figure3Query is the paper's Figure 3(c) query.
const figure3Query = `
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
      user.alias = logrec.user
  AND datetime(logrec.time) >= startTime
  AND datetime(logrec.time) <= endTime
GROUP BY nf;
`

func TestParseFigure3Query(t *testing.T) {
	stmts, err := ParseScript(figure3Query)
	if err != nil {
		t.Fatal(err)
	}
	q := stmts[0].(*QueryStmt)
	sel := q.Body.(*SelectExpr)
	if len(sel.With) != 2 || sel.With[0].Var != "endTime" || sel.With[1].Var != "startTime" {
		t.Fatalf("WITH clause: %+v", sel.With)
	}
	if len(sel.Select.Items) != 2 || sel.Select.Items[0].Alias != "numFriends" || sel.Select.Items[1].Alias != "activeUsers" {
		t.Fatalf("projections: %+v", sel.Select.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Alias != "user" {
		t.Fatalf("FROM: %+v", sel.From)
	}
	if len(sel.Lets) != 1 || sel.Lets[0].Var != "nf" {
		t.Fatalf("LET: %+v", sel.Lets)
	}
	qf, ok := sel.Where.(*QuantifiedExpr)
	if !ok || !qf.Some || qf.Var != "logrec" {
		t.Fatalf("WHERE should be a SOME quantifier: %T", sel.Where)
	}
	// SATISFIES body must contain the two AND-ed datetime bounds.
	b, ok := qf.Satisfies.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("satisfies: %T", qf.Satisfies)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Alias != "nf" {
		t.Fatalf("GROUP BY: %+v", sel.GroupBy)
	}
}

// figure3Upsert is the paper's Figure 3(d) statement.
const figure3Upsert = `
UPSERT INTO GleambookUsers (
	{"id":667,
	 "alias":"dfrump",
	 "name":"DonaldFrump",
	 "nickname":"Frumpkin",
	 "userSince":datetime("2017-01-01T00:00:00"),
	 "friendIds":{{}},
	 "employment":[{"organizationName":"USA",
	                "startDate":date("2017-01-20")}],
	 "gender":"M"}
);
`

func TestParseFigure3Upsert(t *testing.T) {
	stmts, err := ParseScript(figure3Upsert)
	if err != nil {
		t.Fatal(err)
	}
	up := stmts[0].(*UpsertStmt)
	if up.Dataset != "GleambookUsers" {
		t.Fatalf("dataset: %s", up.Dataset)
	}
	obj := up.Expr.(*ObjectConstructor)
	if len(obj.Fields) != 8 {
		t.Fatalf("constructed fields = %d", len(obj.Fields))
	}
	// friendIds is an empty multiset constructor.
	var friendIdx int
	for i, f := range obj.Fields {
		if lit, ok := f.Name.(*Literal); ok && lit.Value == adm.String("friendIds") {
			friendIdx = i
		}
	}
	if _, ok := obj.Fields[friendIdx].Value.(*MultisetConstructor); !ok {
		t.Errorf("friendIds should be multiset constructor: %T", obj.Fields[friendIdx].Value)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		`SELECT VALUE 1 + 2 * 3`,
		`SELECT VALUE -x.y[0].z FROM ds x`,
		`SELECT VALUE a LIKE "%foo%" FROM ds a`,
		`SELECT VALUE CASE WHEN x > 1 THEN "big" ELSE "small" END FROM ds x`,
		`SELECT VALUE CASE x WHEN 1 THEN "one" END FROM ds x`,
		`SELECT x.a, COUNT(*) AS n FROM ds x GROUP BY x.a AS a HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10 OFFSET 2`,
		`SELECT DISTINCT VALUE x FROM ds x WHERE x BETWEEN 1 AND 10`,
		`SELECT VALUE x FROM ds x WHERE x.v IN [1, 2, 3]`,
		`SELECT VALUE x FROM ds x WHERE x.v NOT IN [1] AND x.w IS NOT MISSING`,
		`SELECT VALUE {"k": x, "nested": {"a": [1, {{2}}]}} FROM ds x`,
		`SELECT u.name, m.message FROM Users u JOIN Messages m ON m.authorId = u.id`,
		`SELECT u.name FROM Users u LEFT OUTER JOIN Msgs m ON m.a = u.id WHERE m.a IS MISSING`,
		`SELECT e.organizationName FROM Users u UNNEST u.employment e`,
		`SELECT VALUE EVERY f IN u.friendIds SATISFIES f > 0 FROM Users u`,
		`SELECT VALUE EXISTS (SELECT VALUE 1 FROM ds x)`,
		`FROM Users u WHERE u.id = 1 SELECT u.name`,
		`SELECT g FROM ds x GROUP BY x.k AS k GROUP AS g`,
		`SELECT VALUE t FROM ds t ORDER BY t.a, t.b DESC`,
	}
	for _, src := range cases {
		if _, err := ParseScript(src + ";"); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`SELECT`,
		`SELECT VALUE`,
		`SELECT VALUE 1 FROM`,
		`CREATE DATASET d PRIMARY KEY x`, // missing type
		`CREATE INDEX ON ds(x)`,
		`FROM ds x`, // no SELECT
		`SELECT VALUE x FROM ds x GROUP BY`,
		`SELECT VALUE (1 + ) FROM ds x`,
		`UPSERT INTO`,
		`SELECT VALUE "unterminated`,
		`SELECT VALUE x..y FROM ds x`,
		`SELECT VALUE CASE END`,
	}
	for _, src := range cases {
		if _, err := ParseScript(src + ";"); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
-- line comment
SELECT VALUE 1 /* block
comment */ + 2;
`
	stmts, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseDeleteAndDrop(t *testing.T) {
	stmts, err := ParseScript(`
		DELETE FROM Users u WHERE u.id = 5;
		DROP DATASET Users IF EXISTS;
		DROP INDEX Users.idx;
	`)
	if err != nil {
		t.Fatal(err)
	}
	del := stmts[0].(*DeleteStmt)
	if del.Dataset != "Users" || del.Alias != "u" || del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
	drop := stmts[1].(*DropStmt)
	if drop.What != "DATASET" || !drop.IfExists {
		t.Errorf("drop: %+v", drop)
	}
	di := stmts[2].(*DropStmt)
	if di.What != "INDEX" || di.On != "Users" || di.Name != "idx" {
		t.Errorf("drop index: %+v", di)
	}
}

func TestParseLoad(t *testing.T) {
	stmts, err := ParseScript(`LOAD DATASET Users USING localfs (("path"="/tmp/u.json"), ("format"="json"));`)
	if err != nil {
		t.Fatal(err)
	}
	ld := stmts[0].(*LoadStmt)
	if ld.Dataset != "Users" || ld.Params["format"] != "json" {
		t.Errorf("load: %+v", ld)
	}
}

func TestLexerTokens(t *testing.T) {
	lx := NewLexer("SELECT x <= 3.5 != 'str' `quoted id` {{")
	var kinds []TokKind
	var texts []string
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "x", "<=", "3.5", "!=", "str", "quoted id", "{{"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("texts = %v", texts)
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[3] != TokFloat || kinds[5] != TokString || kinds[6] != TokQuotedIdent {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestParseUnionAll(t *testing.T) {
	stmts, err := ParseScript(`
		SELECT VALUE 1 FROM D d
		UNION ALL
		SELECT VALUE 2 FROM E e
		UNION ALL
		SELECT VALUE 3 FROM F f;`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := stmts[0].(*QueryStmt).Body.(*UnionExpr)
	if !ok {
		t.Fatalf("expected UnionExpr, got %T", stmts[0].(*QueryStmt).Body)
	}
	if len(u.Blocks) != 3 {
		t.Fatalf("blocks: %d", len(u.Blocks))
	}
	// UNION without ALL is rejected (bag semantics only).
	if _, err := ParseScript(`SELECT VALUE 1 FROM D d UNION SELECT VALUE 2 FROM E e;`); err == nil {
		t.Error("UNION without ALL should fail")
	}
	// Parenthesized union as a subquery expression.
	if _, err := ParseScript(`SELECT VALUE coll_count((SELECT VALUE 1 FROM D d UNION ALL SELECT VALUE 2 FROM E e)) FROM [1] x;`); err != nil {
		t.Errorf("nested union: %v", err)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q, err := ParseQuery(`SELECT VALUE 1 + 2 * 3 - 4 FROM [0] x;`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*SelectExpr)
	// ((1 + (2*3)) - 4): top is '-'.
	top := sel.Select.Value.(*Binary)
	if top.Op != "-" {
		t.Fatalf("top op: %s", top.Op)
	}
	add := top.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("second op: %s", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatalf("inner op: %s", mul.Op)
	}
	// AND binds tighter than OR.
	q, _ = ParseQuery(`SELECT VALUE a OR b AND c FROM [0] x;`)
	or := q.Body.(*SelectExpr).Select.Value.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("boolean top: %s", or.Op)
	}
	if and := or.R.(*Binary); and.Op != "AND" {
		t.Fatalf("boolean inner: %s", and.Op)
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	if _, err := ParseScript(`select value u.x from Users u where u.y > 1 order by u.x limit 2;`); err != nil {
		t.Fatal(err)
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	stmts, err := ParseScript("SELECT VALUE u.`weird name` FROM `My Dataset` u;")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*QueryStmt).Body.(*SelectExpr)
	fa := sel.Select.Value.(*FieldAccess)
	if fa.Field != "weird name" {
		t.Errorf("field: %q", fa.Field)
	}
	if vr := sel.From[0].Expr.(*VarRef); vr.Name != "My Dataset" {
		t.Errorf("dataset: %q", vr.Name)
	}
}

func TestParseDeepNesting(t *testing.T) {
	src := `SELECT VALUE ((((1))))` + ` FROM [0] x;`
	if _, err := ParseScript(src); err != nil {
		t.Fatal(err)
	}
	// Deeply nested subqueries parse too.
	if _, err := ParseScript(`SELECT VALUE (SELECT VALUE (SELECT VALUE y FROM [2] y) FROM [1] z) FROM [0] x;`); err != nil {
		t.Fatal(err)
	}
}
