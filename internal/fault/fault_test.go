package fault

import (
	"errors"
	"strings"
	"testing"
	"time"

	"asterix/internal/obs"
)

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with empty registry")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	buf := []byte("hello")
	out, torn := Tear("anything", buf)
	if torn || len(out) != len(buf) {
		t.Fatalf("disarmed Tear tore: torn=%v len=%d", torn, len(out))
	}
}

func TestArmErrorOnce(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("lsm.flush.io:error"); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("not armed after Arm")
	}
	err := Hit(PointLSMFlush)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit: want ErrInjected, got %v", err)
	}
	// Default times=1: the second hit passes.
	if err := Hit(PointLSMFlush); err != nil {
		t.Fatalf("second hit should pass, got %v", err)
	}
	if got := Hits(PointLSMFlush); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
	if got := Fired(PointLSMFlush); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestAfterAndTimes(t *testing.T) {
	Disarm()
	defer Disarm()
	ArmPoint(Point{Name: "x", Mode: ModeError, After: 2, Times: 2})
	var errs int
	for i := 0; i < 10; i++ {
		if Hit("x") != nil {
			errs++
			if i < 2 {
				t.Fatalf("fired during after-window at hit %d", i)
			}
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want 2", errs)
	}
}

func TestTimesZeroUnlimited(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("x:error:times=0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if Hit("x") == nil {
			t.Fatalf("hit %d did not fire with times=0 (unlimited)", i)
		}
	}
}

func TestTornWrite(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("txn.wal.append:torn"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	out, torn := Tear(PointWALAppend, buf)
	if !torn {
		t.Fatal("expected torn write")
	}
	if len(out) >= len(buf) {
		t.Fatalf("torn prefix len %d not shorter than %d", len(out), len(buf))
	}
	// Second tear passes through (times=1 default).
	out, torn = Tear(PointWALAppend, buf)
	if torn || len(out) != len(buf) {
		t.Fatal("second tear should pass through")
	}
}

func TestDelayMode(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("hyracks.frame.delay:delay=10ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(PointFrameDelay); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
	// Delay defaults to unlimited times.
	start = time.Now()
	_ = Hit(PointFrameDelay)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("second delay too short: %v", d)
	}
}

func TestPanicMode(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("x:panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Hit("x")
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []bool {
		Disarm()
		Seed(42)
		ArmPoint(Point{Name: "x", Mode: ModeError, P: 0.5, Times: -1})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Hit("x") != nil
		}
		Disarm()
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d — not probabilistic", fired, len(a))
	}
}

func TestMultiPointSpec(t *testing.T) {
	Disarm()
	defer Disarm()
	if err := Arm("a:error, b:torn:after=1 ,c:delay=1ms"); err != nil {
		t.Fatal(err)
	}
	snap := Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	if snap[0].Name != "a" || snap[1].Name != "b" || snap[2].Name != "c" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}

func TestBadSpecs(t *testing.T) {
	for _, spec := range []string{
		":error",
		"x:bogus",
		"x:delay=notadur",
		"x:after=-1",
		"x:p=2",
		"x:p=0",
		"x:times=abc",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
	Disarm()
}

func TestMetricsBinding(t *testing.T) {
	Disarm()
	defer Disarm()
	r := obs.NewRegistry()
	BindMetrics(r)
	if err := Arm("lsm.flush.io:error"); err != nil {
		t.Fatal(err)
	}
	_ = Hit(PointLSMFlush)
	snap := r.Snapshot()
	if v, ok := snap["fault_injected_total"].(int64); !ok || v < 1 {
		t.Fatalf("fault_injected_total = %v", snap["fault_injected_total"])
	}
	if v, ok := snap["fault_lsm_flush_io_injected_total"].(int64); !ok || v < 1 {
		t.Fatalf("per-point counter = %v", snap["fault_lsm_flush_io_injected_total"])
	}
	if v, ok := snap["fault_armed"].(float64); !ok || v != 1 {
		t.Fatalf("fault_armed = %v", snap["fault_armed"])
	}
	Disarm()
	if v := r.Snapshot()["fault_armed"].(float64); v != 0 {
		t.Fatalf("fault_armed after Disarm = %v", v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fault_lsm_flush_io_injected_total") {
		t.Fatal("prometheus exposition missing per-point counter")
	}
	// Unbind so later tests/benchmarks don't write into this registry.
	reg.mu.Lock()
	reg.metrics = nil
	reg.mu.Unlock()
}

// BenchmarkHitDisarmed is the zero-cost acceptance check: a disarmed
// probe must be one atomic load.
func BenchmarkHitDisarmed(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(PointLSMFlush); err != nil {
			b.Fatal(err)
		}
	}
}
