// Package fault is the deterministic fault-injection subsystem: a
// registry of named fault points that production code probes via guarded
// helpers (Hit, Tear) which compile down to a single atomic load when no
// fault is armed. Faults are armed programmatically (Arm) or from the
// ASTERIX_FAULTS environment variable, and every point keeps a hit
// counter that can be exported through the internal/obs registry.
//
// Spec grammar (comma-separated points):
//
//	point[:mode][:key=value]...
//
// where mode is one of error (default), panic, torn, or delay=<dur>, and
// the keys are:
//
//	after=N   skip the first N hits before firing (default 0)
//	times=N   fire at most N times, then become a no-op (default 1; 0 = unlimited)
//	p=F       fire with probability F per eligible hit (default 1.0,
//	          drawn from the registry's seeded PRNG — see Seed)
//	tag=S     fire only for probes carrying scope tag S (HitTag/TearTag);
//	          network points tag probes with the local peer id
//
// Examples:
//
//	ASTERIX_FAULTS='lsm.flush.io:error'
//	ASTERIX_FAULTS='txn.wal.append:torn,hyracks.frame.delay:delay=2ms:times=0'
//	ASTERIX_FAULTS='hyracks.node.crash:error:after=3:times=1'
//
// The guarded helpers are the ONLY fault API production code may call
// (enforced by the asterixlint fault-gate rule): everything else —
// Arm, Disarm, Seed, Hits — is harness configuration.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/obs"
)

// Canonical fault-point names. Points are plain strings — subsystems may
// invent their own — but the ones threaded through this repository are
// declared here so docs, specs, and tests share one spelling.
const (
	// PointNodeCrash kills the node controller about to run a task.
	PointNodeCrash = "hyracks.node.crash"
	// PointFrameDelay delays (or fails) a connector frame send.
	PointFrameDelay = "hyracks.frame.delay"
	// PointSpillIO fails a sort run-file spill.
	PointSpillIO = "hyracks.spill.io"
	// PointLSMFlush fails an LSM memory-component flush before it is
	// made durable (the manifest is never updated).
	PointLSMFlush = "lsm.flush.io"
	// PointLSMMerge fails an LSM merge before installing the component.
	PointLSMMerge = "lsm.merge.io"
	// PointWALSync fails the write-ahead-log fsync at commit.
	PointWALSync = "txn.wal.sync"
	// PointWALAppend tears a write-ahead-log append: only a prefix of
	// the record reaches the file, simulating a crash mid-write.
	PointWALAppend = "txn.wal.append"
	// PointPageWrite fails a storage-layer page write.
	PointPageWrite = "storage.write.io"

	// PointNetDrop drops an outbound data frame on the floor and resets
	// the connection, like a lost packet followed by a peer RST. The
	// sending task fails with a retriable link failure; nothing is
	// silently lost.
	PointNetDrop = "net.drop"
	// PointNetDelay stalls an outbound data frame (arm with delay=…),
	// simulating a slow or congested link.
	PointNetDelay = "net.delay"
	// PointNetPartition isolates a process from the data-plane mesh:
	// while armed, its outbound sends fail and inbound messages are
	// dropped, so peers stop hearing its heartbeats and eventually
	// declare it dead. Arm with times=0 for a lasting partition, or tag=
	// to partition one peer of an in-process mesh.
	PointNetPartition = "net.partition"
	// PointNetConnReset tears an outbound frame mid-write (torn mode)
	// and resets the connection: the receiver sees a short or
	// CRC-corrupt frame on the wire.
	PointNetConnReset = "net.conn.reset"
)

// ErrInjected is the sentinel wrapped by every injected error; callers
// test with errors.Is.
var ErrInjected = errors.New("injected fault")

// Mode is a fault point's behavior when it fires.
type Mode int

// Fault modes.
const (
	// ModeError makes Hit return an injected error.
	ModeError Mode = iota
	// ModePanic makes Hit panic (a hard in-process crash).
	ModePanic
	// ModeDelay makes Hit sleep for the configured duration.
	ModeDelay
	// ModeTorn makes Tear return a truncated prefix (Hit on a torn
	// point behaves like ModeError).
	ModeTorn
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeTorn:
		return "torn"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Point configures one named fault point.
type Point struct {
	Name  string
	Mode  Mode
	Delay time.Duration
	// After skips the first After eligible hits.
	After int64
	// Times bounds how often the point fires (0 = unlimited).
	Times int64
	// P is the per-hit firing probability in (0,1]; 0 means 1.0.
	P float64
	// Tag scopes the point to probes carrying the same tag (HitTag,
	// TearTag). Empty matches every probe — including plain Hit/Tear.
	// Network points use the local peer id as the tag, so an in-process
	// mesh can partition one peer: `net.partition:error:times=0:tag=b`.
	Tag string

	hits  int64 // total Hit/Tear probes while armed (atomic)
	fired int64 // times the point actually fired (atomic)
}

// registry is the armed fault set. One package-level instance: faults are
// process-wide by design (a crash is a process-wide event).
type registry struct {
	mu      sync.Mutex
	points  map[string]*Point
	rng     *rand.Rand
	metrics *obs.Registry
}

var (
	// armed is the fast-path gate: when 0, Hit and Tear return
	// immediately after a single atomic load.
	armed atomic.Int32
	reg   = &registry{points: map[string]*Point{}, rng: rand.New(rand.NewSource(1))}
)

func init() {
	if spec := os.Getenv("ASTERIX_FAULTS"); spec != "" {
		if err := Arm(spec); err != nil {
			// Arming from a malformed env var must be loud: silently
			// running without faults would invalidate a fault-matrix run.
			panic(fmt.Sprintf("fault: bad ASTERIX_FAULTS: %v", err))
		}
	}
	if s := os.Getenv("ASTERIX_FAULT_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("fault: bad ASTERIX_FAULT_SEED: %v", err))
		}
		Seed(n)
	}
}

// Armed reports whether any fault point is armed. It is the zero-cost
// guard: one atomic load.
func Armed() bool { return armed.Load() != 0 }

// Hit probes the named fault point. Disarmed (the common case) it is a
// single atomic load and returns nil. Armed, it increments the point's
// hit counter and — when the point is eligible to fire — injects the
// configured behavior: an error (wrapping ErrInjected), a panic, or a
// delay. Unknown points return nil.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	//lint:ignore hot-alloc,wait-attrib armed fault-injection slow path: only tests arm points, and an armed hit exists to inject errors/delays, so its allocations and sleeps are intentional
	return reg.hit(name, "")
}

// HitTag probes the named fault point with a scope tag: a point armed
// with tag=T fires only for probes carrying T, while an untagged point
// fires for every probe. The network layer tags probes with the local
// peer id so one peer of an in-process mesh can be faulted alone.
func HitTag(name, tag string) error {
	if armed.Load() == 0 {
		return nil
	}
	return reg.hit(name, tag)
}

// Tear probes a torn-write fault point: when the point is armed in
// ModeTorn and eligible, it returns a strict prefix of buf and true; the
// caller should write only the prefix and fail the operation (wrapping
// ErrInjected), simulating a crash mid-write. Otherwise returns buf,
// false.
func Tear(name string, buf []byte) ([]byte, bool) {
	if armed.Load() == 0 {
		return buf, false
	}
	return reg.tear(name, "", buf)
}

// TearTag is Tear with a scope tag (see HitTag).
func TearTag(name, tag string, buf []byte) ([]byte, bool) {
	if armed.Load() == 0 {
		return buf, false
	}
	return reg.tear(name, tag, buf)
}

func (r *registry) lookup(name string) *Point {
	r.mu.Lock()
	p := r.points[name]
	r.mu.Unlock()
	return p
}

// eligible counts one hit and decides whether the point fires now.
func (r *registry) eligible(p *Point) bool {
	n := atomic.AddInt64(&p.hits, 1)
	if n <= p.After {
		return false
	}
	if p.P > 0 && p.P < 1 {
		r.mu.Lock()
		roll := r.rng.Float64()
		r.mu.Unlock()
		if roll >= p.P {
			return false
		}
	}
	if p.Times > 0 {
		if atomic.AddInt64(&p.fired, 1) > p.Times {
			atomic.AddInt64(&p.fired, -1)
			return false
		}
		return true
	}
	atomic.AddInt64(&p.fired, 1)
	return true
}

func (r *registry) hit(name, tag string) error {
	p := r.lookup(name)
	if p == nil || (p.Tag != "" && p.Tag != tag) || !r.eligible(p) {
		return nil
	}
	r.countFire(name)
	switch p.Mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case ModeDelay:
		time.Sleep(p.Delay)
		return nil
	default: // ModeError, ModeTorn
		return fmt.Errorf("fault: %s: %w", name, ErrInjected)
	}
}

func (r *registry) tear(name, tag string, buf []byte) ([]byte, bool) {
	p := r.lookup(name)
	if p == nil || p.Mode != ModeTorn || (p.Tag != "" && p.Tag != tag) || !r.eligible(p) {
		return buf, false
	}
	r.countFire(name)
	return buf[:len(buf)/2], true
}

// countFire pushes one firing into the bound obs registry (nil-safe).
func (r *registry) countFire(name string) {
	r.mu.Lock()
	m := r.metrics
	r.mu.Unlock()
	m.Counter("fault_injected_total", "fault injections across all points").Inc()
	m.Counter(metricName(name), "injections at fault point "+name).Inc()
}

func metricName(point string) string {
	s := strings.NewReplacer(".", "_", "-", "_").Replace(point)
	return "fault_" + s + "_injected_total"
}

// Arm parses a fault spec (see the package comment for the grammar) and
// arms its points, adding to any already armed.
func Arm(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parsePoint(part)
		if err != nil {
			return err
		}
		ArmPoint(p)
	}
	return nil
}

// ArmPoint arms one configured point (programmatic API for tests).
func ArmPoint(p Point) {
	if p.Times == 0 && p.Mode != ModeDelay {
		// Error-like faults default to firing once: crash tests want one
		// deterministic failure, not a permanently broken subsystem.
		p.Times = 1
	}
	reg.mu.Lock()
	reg.points[p.Name] = &p
	// Pre-create the per-point counter so exposition lists it even before
	// the first injection (nil-safe when no registry is bound).
	reg.metrics.Counter(metricName(p.Name), "injections at fault point "+p.Name)
	reg.mu.Unlock()
	armed.Store(1)
}

func parsePoint(s string) (Point, error) {
	fields := strings.Split(s, ":")
	p := Point{Name: fields[0], Mode: ModeError}
	if p.Name == "" {
		return p, fmt.Errorf("fault: empty point name in %q", s)
	}
	for _, f := range fields[1:] {
		switch {
		case f == "error":
			p.Mode = ModeError
		case f == "panic":
			p.Mode = ModePanic
		case f == "torn":
			p.Mode = ModeTorn
		case strings.HasPrefix(f, "delay="):
			d, err := time.ParseDuration(strings.TrimPrefix(f, "delay="))
			if err != nil {
				return p, fmt.Errorf("fault: %s: bad delay %q", p.Name, f)
			}
			p.Mode = ModeDelay
			p.Delay = d
			if p.Times == 0 {
				p.Times = -1 // delays default to every hit
			}
		case strings.HasPrefix(f, "after="):
			n, err := strconv.ParseInt(strings.TrimPrefix(f, "after="), 10, 64)
			if err != nil || n < 0 {
				return p, fmt.Errorf("fault: %s: bad after %q", p.Name, f)
			}
			p.After = n
		case strings.HasPrefix(f, "times="):
			n, err := strconv.ParseInt(strings.TrimPrefix(f, "times="), 10, 64)
			if err != nil || n < 0 {
				return p, fmt.Errorf("fault: %s: bad times %q", p.Name, f)
			}
			if n == 0 {
				n = -1 // explicit times=0 means unlimited
			}
			p.Times = n
		case strings.HasPrefix(f, "p="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(f, "p="), 64)
			if err != nil || v <= 0 || v > 1 {
				return p, fmt.Errorf("fault: %s: bad probability %q", p.Name, f)
			}
			p.P = v
		case strings.HasPrefix(f, "tag="):
			p.Tag = strings.TrimPrefix(f, "tag=")
			if p.Tag == "" {
				return p, fmt.Errorf("fault: %s: empty tag", p.Name)
			}
		default:
			return p, fmt.Errorf("fault: %s: unknown option %q", p.Name, f)
		}
	}
	return p, nil
}

// Disarm clears every armed point and restores the zero-cost path.
func Disarm() {
	reg.mu.Lock()
	reg.points = map[string]*Point{}
	reg.mu.Unlock()
	armed.Store(0)
}

// Seed reseeds the registry's PRNG (probabilistic points and Int63n);
// runs with the same seed and spec fire identically.
func Seed(n int64) {
	reg.mu.Lock()
	reg.rng = rand.New(rand.NewSource(n))
	reg.mu.Unlock()
}

// Int63n draws a value in [0, n) from the registry's seeded PRNG. It is
// the randomness source for robustness-machinery jitter (retry backoff,
// reconnect backoff): drawing it here instead of the global math/rand
// makes a fault-matrix run with ASTERIX_FAULT_SEED deterministic
// end-to-end, retry timing included. n <= 0 returns 0.
func Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	reg.mu.Lock()
	v := reg.rng.Int63n(n)
	reg.mu.Unlock()
	return v
}

// Hits returns the named point's probe count (0 if not armed).
func Hits(name string) int64 {
	p := reg.lookup(name)
	if p == nil {
		return 0
	}
	return atomic.LoadInt64(&p.hits)
}

// Fired returns how many times the named point actually injected.
func Fired(name string) int64 {
	p := reg.lookup(name)
	if p == nil {
		return 0
	}
	return atomic.LoadInt64(&p.fired)
}

// Snapshot returns per-point hit and fire counts, sorted by name.
type PointStats struct {
	Name  string
	Mode  Mode
	Hits  int64
	Fired int64
}

// Snapshot lists the armed points and their counters.
func Snapshot() []PointStats {
	reg.mu.Lock()
	out := make([]PointStats, 0, len(reg.points))
	for _, p := range reg.points {
		out = append(out, PointStats{
			Name:  p.Name,
			Mode:  p.Mode,
			Hits:  atomic.LoadInt64(&p.hits),
			Fired: atomic.LoadInt64(&p.fired),
		})
	}
	reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BindMetrics exports the fault subsystem through an obs registry: a
// fault_armed gauge, a fault_injected_total counter, and one counter per
// armed point (fault_<point>_injected_total). Call once at engine open;
// later Arm calls register their points on the same registry.
func BindMetrics(r *obs.Registry) {
	reg.mu.Lock()
	reg.metrics = r
	for name := range reg.points {
		r.Counter(metricName(name), "injections at fault point "+name)
	}
	reg.mu.Unlock()
	r.RegisterFunc("fault_armed", "1 when any fault point is armed", obs.TypeGauge,
		func() float64 {
			if Armed() {
				return 1
			}
			return 0
		})
}
