// Package linearhash implements classic linear hashing (Litwin) over the
// storage buffer cache: a dynamically growing hash file with a split
// pointer, bucket doubling, and overflow-page chains.
//
// It exists to reproduce the paper's Section V-C lesson (via Goetz
// Graefe): hashing's O(1) lookup looks attractive next to a B+tree's
// O(log_f N), but with a modest buffer-cache allocation their practical
// I/O costs converge — and linear hashing has no efficient analogue of the
// B+tree's sorted bulk load.
package linearhash

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"asterix/internal/storage"
)

const (
	metaPage       = int32(0)
	noPage         = int32(-1)
	initialBuckets = 4
	// splitThreshold is the load factor (entries per primary bucket)
	// above which an insert triggers a bucket split.
	splitThreshold = 0.8
)

// LinearHash is a linear hash table in one page file.
type LinearHash struct {
	bc   *storage.BufferCache
	file storage.FileID

	level    int32 // number of completed doublings
	next     int32 // next bucket to split
	count    int64
	freeHead int32   // head of free-page list (chained via page next field)
	dir      []int32 // bucket number -> primary page
	dirPages []int32 // pages storing the directory itself
}

// Open opens (or initializes) a linear hash file.
func Open(bc *storage.BufferCache, file storage.FileID) (*LinearHash, error) {
	lh := &LinearHash{bc: bc, file: file, freeHead: noPage}
	n, err := bc.FileManager().NumPages(file)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		mp, err := bc.NewPage(file)
		if err != nil {
			return nil, err
		}
		for i := 0; i < initialBuckets; i++ {
			p, err := bc.NewPage(file)
			if err != nil {
				bc.Unpin(mp, true)
				return nil, err
			}
			initBucketPage(p.Data)
			lh.dir = append(lh.dir, p.ID.Num)
			bc.Unpin(p, true)
		}
		lh.writeMeta(mp.Data)
		bc.Unpin(mp, true)
		return lh, nil
	}
	mp, err := bc.Pin(storage.PageID{File: file, Num: metaPage})
	if err != nil {
		return nil, err
	}
	lh.level = int32(binary.BigEndian.Uint32(mp.Data[0:]))
	lh.next = int32(binary.BigEndian.Uint32(mp.Data[4:]))
	lh.count = int64(binary.BigEndian.Uint64(mp.Data[8:]))
	lh.freeHead = int32(binary.BigEndian.Uint32(mp.Data[16:]))
	nb := int(binary.BigEndian.Uint32(mp.Data[20:]))
	ndp := int(binary.BigEndian.Uint32(mp.Data[24:]))
	lh.dirPages = make([]int32, ndp)
	for i := 0; i < ndp; i++ {
		lh.dirPages[i] = int32(binary.BigEndian.Uint32(mp.Data[28+4*i:]))
	}
	bc.Unpin(mp, false)
	// Load the directory from its pages.
	perPage := bc.FileManager().PageSize() / 4
	lh.dir = make([]int32, 0, nb)
	for _, dp := range lh.dirPages {
		p, err := bc.Pin(storage.PageID{File: file, Num: dp})
		if err != nil {
			return nil, err
		}
		for i := 0; i < perPage && len(lh.dir) < nb; i++ {
			lh.dir = append(lh.dir, int32(binary.BigEndian.Uint32(p.Data[4*i:])))
		}
		bc.Unpin(p, false)
	}
	if len(lh.dir) != nb {
		return nil, fmt.Errorf("linearhash: directory truncated (%d of %d buckets)", len(lh.dir), nb)
	}
	return lh, nil
}

func (lh *LinearHash) writeMeta(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:], uint32(lh.level))
	binary.BigEndian.PutUint32(buf[4:], uint32(lh.next))
	binary.BigEndian.PutUint64(buf[8:], uint64(lh.count))
	binary.BigEndian.PutUint32(buf[16:], uint32(lh.freeHead))
	binary.BigEndian.PutUint32(buf[20:], uint32(len(lh.dir)))
	binary.BigEndian.PutUint32(buf[24:], uint32(len(lh.dirPages)))
	for i, p := range lh.dirPages {
		binary.BigEndian.PutUint32(buf[28+4*i:], uint32(p))
	}
}

// syncMeta persists the split state and the directory (spread over
// dedicated directory pages, growing the chain as buckets are added).
func (lh *LinearHash) syncMeta() error {
	pageSize := lh.bc.FileManager().PageSize()
	perPage := pageSize / 4
	need := (len(lh.dir) + perPage - 1) / perPage
	for len(lh.dirPages) < need {
		p, err := lh.bc.NewPage(lh.file)
		if err != nil {
			return err
		}
		lh.dirPages = append(lh.dirPages, p.ID.Num)
		lh.bc.Unpin(p, true)
	}
	if 28+4*len(lh.dirPages) > pageSize {
		return fmt.Errorf("linearhash: directory page list exceeds meta page")
	}
	for i := 0; i < need; i++ {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: lh.dirPages[i]})
		if err != nil {
			return err
		}
		for j := 0; j < perPage; j++ {
			idx := i*perPage + j
			if idx >= len(lh.dir) {
				break
			}
			binary.BigEndian.PutUint32(p.Data[4*j:], uint32(lh.dir[idx]))
		}
		lh.bc.Unpin(p, true)
	}
	mp, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: metaPage})
	if err != nil {
		return err
	}
	lh.writeMeta(mp.Data)
	lh.bc.Unpin(mp, true)
	return nil
}

// Count returns the number of entries.
func (lh *LinearHash) Count() int64 { return lh.count }

// Buckets returns the number of primary buckets.
func (lh *LinearHash) Buckets() int { return len(lh.dir) }

// Bucket page layout: [count uint16][next int32][entries...]
// entry: klen uvarint, key, vlen uvarint, value.

func initBucketPage(buf []byte) {
	binary.BigEndian.PutUint16(buf[0:], 0)
	n := noPage
	binary.BigEndian.PutUint32(buf[2:], uint32(n))
}

type bucketPage struct {
	next int32
	keys [][]byte
	vals [][]byte
}

func decodeBucket(buf []byte) *bucketPage {
	b := &bucketPage{}
	cnt := int(binary.BigEndian.Uint16(buf[0:]))
	b.next = int32(binary.BigEndian.Uint32(buf[2:]))
	pos := 6
	for i := 0; i < cnt; i++ {
		kl, m := binary.Uvarint(buf[pos:])
		pos += m
		b.keys = append(b.keys, append([]byte(nil), buf[pos:pos+int(kl)]...))
		pos += int(kl)
		vl, m := binary.Uvarint(buf[pos:])
		pos += m
		b.vals = append(b.vals, append([]byte(nil), buf[pos:pos+int(vl)]...))
		pos += int(vl)
	}
	return b
}

func (b *bucketPage) encode(buf []byte) {
	binary.BigEndian.PutUint16(buf[0:], uint16(len(b.keys)))
	binary.BigEndian.PutUint32(buf[2:], uint32(b.next))
	pos := 6
	for i, k := range b.keys {
		pos += binary.PutUvarint(buf[pos:], uint64(len(k)))
		pos += copy(buf[pos:], k)
		pos += binary.PutUvarint(buf[pos:], uint64(len(b.vals[i])))
		pos += copy(buf[pos:], b.vals[i])
	}
}

func (b *bucketPage) size() int {
	sz := 6
	for i, k := range b.keys {
		sz += uvarintLen(len(k)) + len(k) + uvarintLen(len(b.vals[i])) + len(b.vals[i])
	}
	return sz
}

func uvarintLen(x int) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	//lint:ignore err-discard hash.Hash documents that Write never returns an error
	h.Write(key)
	return h.Sum64()
}

// bucketFor maps a hash to the current bucket number per the linear
// hashing addressing rule.
func (lh *LinearHash) bucketFor(h uint64) int32 {
	n := uint64(initialBuckets) << uint(lh.level)
	b := int32(h % n)
	if b < lh.next {
		b = int32(h % (n * 2))
	}
	return b
}

// Search returns the value stored under key.
func (lh *LinearHash) Search(key []byte) ([]byte, bool, error) {
	page := lh.dir[lh.bucketFor(hashKey(key))]
	for page != noPage {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
		if err != nil {
			return nil, false, err
		}
		b := decodeBucket(p.Data)
		lh.bc.Unpin(p, false)
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				return b.vals[i], true, nil
			}
		}
		page = b.next
	}
	return nil, false, nil
}

// MaxEntrySize returns the largest key+value the table accepts.
func (lh *LinearHash) MaxEntrySize() int {
	return (lh.bc.FileManager().PageSize() - 16) / 4
}

// Insert upserts key → value, splitting a bucket when the load factor
// exceeds the threshold.
func (lh *LinearHash) Insert(key, value []byte) error {
	if len(key)+len(value) > lh.MaxEntrySize() {
		return fmt.Errorf("linearhash: entry of %d bytes exceeds max %d", len(key)+len(value), lh.MaxEntrySize())
	}
	replaced, err := lh.insertIntoBucket(lh.dir[lh.bucketFor(hashKey(key))], key, value)
	if err != nil {
		return err
	}
	if !replaced {
		lh.count++
	}
	// Split policy: keep average chain occupancy under threshold.
	capacityPerPage := float64(lh.bc.FileManager().PageSize()-6) / float64(len(key)+len(value)+4)
	if capacityPerPage < 1 {
		capacityPerPage = 1
	}
	if float64(lh.count) > splitThreshold*capacityPerPage*float64(len(lh.dir)) {
		if err := lh.split(); err != nil {
			return err
		}
	}
	return lh.syncMeta()
}

// insertIntoBucket upserts within a chain: a first pass replaces the key
// wherever it lives; otherwise a second pass inserts into the first page
// with room, extending the overflow chain if none has any.
func (lh *LinearHash) insertIntoBucket(head int32, key, value []byte) (replaced bool, err error) {
	pageSize := lh.bc.FileManager().PageSize()
	// Pass 1: replace in place if present.
	for page := head; page != noPage; {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
		if err != nil {
			return false, err
		}
		b := decodeBucket(p.Data)
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				b.vals[i] = value
				if b.size() <= pageSize {
					b.encode(p.Data)
					lh.bc.Unpin(p, true)
					return true, nil
				}
				// Grew past the page: remove here, re-insert below.
				b.keys = append(b.keys[:i], b.keys[i+1:]...)
				b.vals = append(b.vals[:i], b.vals[i+1:]...)
				b.encode(p.Data)
				lh.bc.Unpin(p, true)
				_, err := lh.insertIntoBucket(head, key, value)
				return true, err
			}
		}
		next := b.next
		lh.bc.Unpin(p, false)
		page = next
	}
	// Pass 2: insert into the first page with room.
	for page := head; ; {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
		if err != nil {
			return false, err
		}
		b := decodeBucket(p.Data)
		b.keys = append(b.keys, key)
		b.vals = append(b.vals, value)
		if b.size() <= pageSize {
			b.encode(p.Data)
			lh.bc.Unpin(p, true)
			return false, nil
		}
		b.keys = b.keys[:len(b.keys)-1]
		b.vals = b.vals[:len(b.vals)-1]
		if b.next != noPage {
			next := b.next
			lh.bc.Unpin(p, false)
			page = next
			continue
		}
		of, err := lh.allocPage()
		if err != nil {
			lh.bc.Unpin(p, false)
			return false, err
		}
		b.next = of
		b.encode(p.Data)
		lh.bc.Unpin(p, true)
		page = of
	}
}

// allocPage takes a page from the free list or extends the file.
func (lh *LinearHash) allocPage() (int32, error) {
	if lh.freeHead != noPage {
		num := lh.freeHead
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: num})
		if err != nil {
			return 0, err
		}
		b := decodeBucket(p.Data)
		lh.freeHead = b.next
		initBucketPage(p.Data)
		lh.bc.Unpin(p, true)
		return num, nil
	}
	p, err := lh.bc.NewPage(lh.file)
	if err != nil {
		return 0, err
	}
	initBucketPage(p.Data)
	num := p.ID.Num
	lh.bc.Unpin(p, true)
	return num, nil
}

func (lh *LinearHash) freePage(num int32) error {
	p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: num})
	if err != nil {
		return err
	}
	b := &bucketPage{next: lh.freeHead}
	b.encode(p.Data)
	lh.bc.Unpin(p, true)
	lh.freeHead = num
	return nil
}

// split performs one linear-hashing split of bucket lh.next.
func (lh *LinearHash) split() error {
	oldBucket := lh.next
	// Collect all entries of the splitting chain.
	var keys, vals [][]byte
	page := lh.dir[oldBucket]
	first := true
	for page != noPage {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
		if err != nil {
			return err
		}
		b := decodeBucket(p.Data)
		keys = append(keys, b.keys...)
		vals = append(vals, b.vals...)
		nextPage := b.next
		if first {
			// Reset the primary page in place.
			initBucketPage(p.Data)
			lh.bc.Unpin(p, true)
			first = false
		} else {
			lh.bc.Unpin(p, false)
			if err := lh.freePage(page); err != nil {
				return err
			}
		}
		page = nextPage
	}
	// Make the buddy bucket.
	buddyPage, err := lh.allocPage()
	if err != nil {
		return err
	}
	lh.dir = append(lh.dir, buddyPage)
	buddy := int32(len(lh.dir) - 1)

	// Advance split state before rehashing so bucketFor maps correctly.
	lh.next++
	n := int32(initialBuckets) << uint(lh.level)
	if lh.next == n {
		lh.level++
		lh.next = 0
	}

	for i, k := range keys {
		target := lh.bucketFor(hashKey(k))
		if target != oldBucket && target != buddy {
			return fmt.Errorf("linearhash: rehash of split bucket %d landed in %d", oldBucket, target)
		}
		if _, err := lh.insertIntoBucket(lh.dir[target], k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes key, reporting whether it was present.
func (lh *LinearHash) Delete(key []byte) (bool, error) {
	page := lh.dir[lh.bucketFor(hashKey(key))]
	for page != noPage {
		p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
		if err != nil {
			return false, err
		}
		b := decodeBucket(p.Data)
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				b.keys = append(b.keys[:i], b.keys[i+1:]...)
				b.vals = append(b.vals[:i], b.vals[i+1:]...)
				b.encode(p.Data)
				lh.bc.Unpin(p, true)
				lh.count--
				return true, lh.syncMeta()
			}
		}
		next := b.next
		lh.bc.Unpin(p, false)
		page = next
	}
	return false, nil
}

// Scan visits all entries in unspecified (hash) order.
func (lh *LinearHash) Scan(fn func(key, value []byte) bool) error {
	for _, page := range lh.dir {
		for page != noPage {
			p, err := lh.bc.Pin(storage.PageID{File: lh.file, Num: page})
			if err != nil {
				return err
			}
			b := decodeBucket(p.Data)
			lh.bc.Unpin(p, false)
			for i, k := range b.keys {
				if !fn(k, b.vals[i]) {
					return nil
				}
			}
			page = b.next
		}
	}
	return nil
}
