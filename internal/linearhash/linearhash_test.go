package linearhash

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"asterix/internal/storage"
)

func newLH(t testing.TB, pageSize, frames int) (*LinearHash, *storage.FileManager, string) {
	t.Helper()
	dir := t.TempDir()
	fm, err := storage.NewFileManager(dir, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	bc := storage.NewBufferCache(fm, frames)
	id, err := fm.Open("lh")
	if err != nil {
		t.Fatal(err)
	}
	lh, err := Open(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	return lh, fm, dir
}

func ikey(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestInsertSearch(t *testing.T) {
	lh, _, _ := newLH(t, 512, 128)
	n := 2000
	for i := 0; i < n; i++ {
		if err := lh.Insert(ikey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if lh.Count() != int64(n) {
		t.Fatalf("count = %d", lh.Count())
	}
	if lh.Buckets() <= 4 {
		t.Error("expected splits to have grown the bucket count")
	}
	for i := 0; i < n; i++ {
		v, ok, err := lh.Search(ikey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: ok=%v v=%q", i, ok, v)
		}
	}
	if _, ok, _ := lh.Search(ikey(n + 5)); ok {
		t.Error("absent key found")
	}
}

func TestUpsertReplaces(t *testing.T) {
	lh, _, _ := newLH(t, 512, 32)
	lh.Insert([]byte("k"), []byte("v1"))
	lh.Insert([]byte("k"), []byte("v2"))
	v, ok, _ := lh.Search([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	if lh.Count() != 1 {
		t.Errorf("count = %d", lh.Count())
	}
}

func TestDelete(t *testing.T) {
	lh, _, _ := newLH(t, 512, 64)
	for i := 0; i < 500; i++ {
		lh.Insert(ikey(i), ikey(i))
	}
	for i := 0; i < 500; i += 3 {
		ok, err := lh.Delete(ikey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete %d reported absent", i)
		}
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := lh.Search(ikey(i))
		want := i%3 != 0
		if ok != want {
			t.Fatalf("key %d presence = %v, want %v", i, ok, want)
		}
	}
	if ok, _ := lh.Delete(ikey(0)); ok {
		t.Error("double delete should report absent")
	}
}

func TestScanVisitsAll(t *testing.T) {
	lh, _, _ := newLH(t, 512, 64)
	n := 800
	for i := 0; i < n; i++ {
		lh.Insert(ikey(i), ikey(i))
	}
	seen := map[int]bool{}
	err := lh.Scan(func(k, v []byte) bool {
		seen[int(binary.BigEndian.Uint64(k))] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scan saw %d of %d", len(seen), n)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fm, err := storage.NewFileManager(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	bc := storage.NewBufferCache(fm, 64)
	id, _ := fm.Open("lh")
	lh, err := Open(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	n := 1500 // enough to force several splits and a multi-page directory
	for i := 0; i < n; i++ {
		lh.Insert(ikey(i), ikey(i))
	}
	if err := bc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fm.Close()

	fm2, _ := storage.NewFileManager(dir, 512)
	defer fm2.Close()
	bc2 := storage.NewBufferCache(fm2, 64)
	id2, _ := fm2.Open("lh")
	lh2, err := Open(bc2, id2)
	if err != nil {
		t.Fatal(err)
	}
	if lh2.Count() != int64(n) {
		t.Fatalf("reopened count = %d", lh2.Count())
	}
	for i := 0; i < n; i++ {
		if _, ok, _ := lh2.Search(ikey(i)); !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
}

func TestLargeValuesOverflowChains(t *testing.T) {
	lh, _, _ := newLH(t, 512, 64)
	// Values near the max entry size force overflow chains quickly.
	big := make([]byte, lh.MaxEntrySize()-16)
	for i := 0; i < 60; i++ {
		if err := lh.Insert(ikey(i), big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		v, ok, err := lh.Search(ikey(i))
		if err != nil || !ok || len(v) != len(big) {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := lh.Insert([]byte("x"), make([]byte, lh.MaxEntrySize()+1)); err == nil {
		t.Error("oversize entry must be rejected")
	}
}

// Property: the table matches a reference map under random operations.
func TestPropMatchesReferenceMap(t *testing.T) {
	lh, _, _ := newLH(t, 512, 256)
	ref := map[string]string{}
	r := rand.New(rand.NewSource(13))
	for op := 0; op < 6000; op++ {
		k := fmt.Sprintf("key%04d", r.Intn(900))
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val%d", op)
			if err := lh.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 2:
			ok, err := lh.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if _, inRef := ref[k]; ok != inRef {
				t.Fatalf("delete(%s) = %v, ref %v", k, ok, inRef)
			}
			delete(ref, k)
		}
	}
	if lh.Count() != int64(len(ref)) {
		t.Fatalf("count %d != ref %d", lh.Count(), len(ref))
	}
	for k, v := range ref {
		got, ok, err := lh.Search([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("key %s: got %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	lh, _, _ := newLH(b, 4096, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lh.Insert(ikey(i), ikey(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	lh, _, _ := newLH(b, 4096, 1024)
	for i := 0; i < 10000; i++ {
		lh.Insert(ikey(i), ikey(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lh.Search(ikey(i % 10000))
	}
}
