package adm

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

const millisPerDay = 24 * 60 * 60 * 1000

// ParseDatetime parses an ISO-8601 datetime ("2017-01-20T10:30:00",
// optionally with fractional seconds or a trailing Z) into a Datetime.
func ParseDatetime(s string) (Datetime, error) {
	layouts := []string{
		"2006-01-02T15:04:05.999Z07:00",
		"2006-01-02T15:04:05.999",
		"2006-01-02T15:04:05",
		"2006-01-02T15:04",
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return Datetime(t.UnixMilli()), nil
		}
	}
	return 0, fmt.Errorf("adm: invalid datetime literal %q", s)
}

// FormatDatetime renders a Datetime in ISO-8601 UTC form.
func FormatDatetime(dt Datetime) string {
	t := time.UnixMilli(int64(dt)).UTC()
	if t.Nanosecond() == 0 {
		return t.Format("2006-01-02T15:04:05")
	}
	return t.Format("2006-01-02T15:04:05.000")
}

// ParseDate parses "2017-01-20" into a Date (days since epoch).
func ParseDate(s string) (Date, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("adm: invalid date literal %q", s)
	}
	return Date(t.Unix() / (24 * 3600)), nil
}

// FormatDate renders a Date as "2006-01-02".
func FormatDate(d Date) string {
	return time.Unix(int64(d)*24*3600, 0).UTC().Format("2006-01-02")
}

// ParseTime parses "15:04:05[.000]" into a Time (ms since midnight).
func ParseTime(s string) (Time, error) {
	for _, l := range []string{"15:04:05.999", "15:04:05", "15:04"} {
		if t, err := time.Parse(l, s); err == nil {
			return Time(t.Hour()*3600000 + t.Minute()*60000 + t.Second()*1000 + t.Nanosecond()/1e6), nil
		}
	}
	return 0, fmt.Errorf("adm: invalid time literal %q", s)
}

// FormatTime renders a Time as "15:04:05[.000]".
func FormatTime(t Time) string {
	ms := int(t)
	h, ms := ms/3600000, ms%3600000
	m, ms := ms/60000, ms%60000
	s, ms := ms/1000, ms%1000
	if ms == 0 {
		return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
	}
	return fmt.Sprintf("%02d:%02d:%02d.%03d", h, m, s, ms)
}

// ParseDuration parses an ISO-8601 duration, e.g. "P30D", "P1Y2M",
// "PT1H30M", "P1DT12H".
func ParseDuration(s string) (Duration, error) {
	orig := s
	if len(s) == 0 || s[0] != 'P' {
		return Duration{}, fmt.Errorf("adm: invalid duration literal %q", orig)
	}
	s = s[1:]
	var d Duration
	inTime := false
	for len(s) > 0 {
		if s[0] == 'T' {
			inTime = true
			s = s[1:]
			continue
		}
		i := 0
		for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
			i++
		}
		if i == 0 || i == len(s) {
			return Duration{}, fmt.Errorf("adm: invalid duration literal %q", orig)
		}
		n, err := strconv.ParseFloat(s[:i], 64)
		if err != nil {
			return Duration{}, fmt.Errorf("adm: invalid duration literal %q", orig)
		}
		unit := s[i]
		s = s[i+1:]
		switch {
		case unit == 'Y' && !inTime:
			d.Months += int32(n * 12)
		case unit == 'M' && !inTime:
			d.Months += int32(n)
		case unit == 'W' && !inTime:
			d.Millis += int64(n * 7 * millisPerDay)
		case unit == 'D' && !inTime:
			d.Millis += int64(n * millisPerDay)
		case unit == 'H' && inTime:
			d.Millis += int64(n * 3600000)
		case unit == 'M' && inTime:
			d.Millis += int64(n * 60000)
		case unit == 'S' && inTime:
			d.Millis += int64(n * 1000)
		default:
			return Duration{}, fmt.Errorf("adm: invalid duration unit %q in %q", string(unit), orig)
		}
	}
	return d, nil
}

// FormatDuration renders a Duration in ISO-8601 form.
func FormatDuration(d Duration) string {
	var sb strings.Builder
	sb.WriteByte('P')
	months := d.Months
	if y := months / 12; y != 0 {
		fmt.Fprintf(&sb, "%dY", y)
		months %= 12
	}
	if months != 0 {
		fmt.Fprintf(&sb, "%dM", months)
	}
	ms := d.Millis
	if days := ms / millisPerDay; days != 0 {
		fmt.Fprintf(&sb, "%dD", days)
		ms %= millisPerDay
	}
	if ms != 0 {
		sb.WriteByte('T')
		if h := ms / 3600000; h != 0 {
			fmt.Fprintf(&sb, "%dH", h)
			ms %= 3600000
		}
		if m := ms / 60000; m != 0 {
			fmt.Fprintf(&sb, "%dM", m)
			ms %= 60000
		}
		if ms != 0 {
			if ms%1000 == 0 {
				fmt.Fprintf(&sb, "%dS", ms/1000)
			} else {
				fmt.Fprintf(&sb, "%gS", float64(ms)/1000)
			}
		}
	}
	if sb.Len() == 1 {
		sb.WriteString("T0S")
	}
	return sb.String()
}

// AddDuration adds a duration to a datetime, handling the month component
// calendar-correctly.
func AddDuration(dt Datetime, d Duration) Datetime {
	t := time.UnixMilli(int64(dt)).UTC()
	if d.Months != 0 {
		t = t.AddDate(0, int(d.Months), 0)
	}
	return Datetime(t.UnixMilli() + d.Millis)
}

// SubDuration subtracts a duration from a datetime.
func SubDuration(dt Datetime, d Duration) Datetime {
	return AddDuration(dt, Duration{Months: -d.Months, Millis: -d.Millis})
}
