package adm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary storage encoding: each value is a 1-byte kind tag followed by a
// kind-specific payload. Variable-length payloads are uvarint
// length-prefixed. This is the on-disk record format for LSM components
// and the frame format for Hyracks data movement.

// Encode appends the binary encoding of v to buf and returns the result.
func Encode(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch x := v.(type) {
	case missingValue, nullValue:
	case Boolean:
		if x {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case Int64:
		buf = binary.AppendVarint(buf, int64(x))
	case Double:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(x)))
	case String:
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case Date:
		buf = binary.AppendVarint(buf, int64(x))
	case Time:
		buf = binary.AppendVarint(buf, int64(x))
	case Datetime:
		buf = binary.AppendVarint(buf, int64(x))
	case Duration:
		buf = binary.AppendVarint(buf, int64(x.Months))
		buf = binary.AppendVarint(buf, x.Millis)
	case Point:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.X))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.Y))
	case Rectangle:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.MinX))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.MinY))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.MaxX))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.MaxY))
	case UUID:
		buf = append(buf, x[:]...)
	case Binary:
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case Array:
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		for _, e := range x {
			buf = Encode(buf, e)
		}
	case Multiset:
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		for _, e := range x {
			buf = Encode(buf, e)
		}
	case *Object:
		fs := x.Fields()
		buf = binary.AppendUvarint(buf, uint64(len(fs)))
		for _, f := range fs {
			buf = binary.AppendUvarint(buf, uint64(len(f.Name)))
			buf = append(buf, f.Name...)
			buf = Encode(buf, f.Value)
		}
	default:
		panic(fmt.Sprintf("adm: cannot encode %T", v))
	}
	return buf
}

// EncodeValue returns a fresh encoding of v.
func EncodeValue(v Value) []byte { return Encode(nil, v) }

// Decode decodes one value from data, returning it and the number of bytes
// consumed.
func Decode(data []byte) (Value, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("adm: decode: empty input")
	}
	k := Kind(data[0])
	pos := 1
	fail := func(what string) (Value, int, error) {
		return nil, 0, fmt.Errorf("adm: decode %s: truncated or invalid input", what)
	}
	switch k {
	case KindMissing:
		return Missing, pos, nil
	case KindNull:
		return Null, pos, nil
	case KindBoolean:
		if pos >= len(data) {
			return fail("boolean")
		}
		return Boolean(data[pos] != 0), pos + 1, nil
	case KindInt64:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("int64")
		}
		return Int64(i), pos + n, nil
	case KindDouble:
		if pos+8 > len(data) {
			return fail("double")
		}
		return Double(math.Float64frombits(binary.BigEndian.Uint64(data[pos:]))), pos + 8, nil
	case KindString:
		l, n := binary.Uvarint(data[pos:])
		// The length check stays in uint64: converting an adversarial l
		// to int first can overflow negative and slip past the bound.
		if n <= 0 || l > uint64(len(data)-pos-n) {
			return fail("string")
		}
		pos += n
		return String(data[pos : pos+int(l)]), pos + int(l), nil
	case KindDate:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("date")
		}
		return Date(i), pos + n, nil
	case KindTime:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("time")
		}
		return Time(i), pos + n, nil
	case KindDatetime:
		i, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("datetime")
		}
		return Datetime(i), pos + n, nil
	case KindDuration:
		months, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("duration")
		}
		pos += n
		millis, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fail("duration")
		}
		return Duration{Months: int32(months), Millis: millis}, pos + n, nil
	case KindPoint:
		if pos+16 > len(data) {
			return fail("point")
		}
		x := math.Float64frombits(binary.BigEndian.Uint64(data[pos:]))
		y := math.Float64frombits(binary.BigEndian.Uint64(data[pos+8:]))
		return Point{X: x, Y: y}, pos + 16, nil
	case KindRectangle:
		if pos+32 > len(data) {
			return fail("rectangle")
		}
		var f [4]float64
		for i := range f {
			f[i] = math.Float64frombits(binary.BigEndian.Uint64(data[pos+8*i:]))
		}
		return Rectangle{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}, pos + 32, nil
	case KindUUID:
		if pos+16 > len(data) {
			return fail("uuid")
		}
		var u UUID
		copy(u[:], data[pos:pos+16])
		return u, pos + 16, nil
	case KindBinary:
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 || l > uint64(len(data)-pos-n) {
			return fail("binary")
		}
		pos += n
		b := make(Binary, l)
		copy(b, data[pos:pos+int(l)])
		return b, pos + int(l), nil
	case KindArray, KindMultiset:
		cnt, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return fail("collection")
		}
		pos += n
		// Cap the preallocation: cnt is untrusted and every element costs
		// at least one input byte, so a huge count on a short input must
		// not allocate ahead of decoding.
		elems := make([]Value, 0, min(cnt, uint64(len(data)-pos)))
		for i := uint64(0); i < cnt; i++ {
			e, n, err := Decode(data[pos:])
			if err != nil {
				return nil, 0, err
			}
			elems = append(elems, e)
			pos += n
		}
		if k == KindArray {
			return Array(elems), pos, nil
		}
		return Multiset(elems), pos, nil
	case KindObject:
		cnt, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return fail("object")
		}
		pos += n
		// Same untrusted-count cap as collections above.
		o := &Object{fields: make([]Field, 0, min(cnt, uint64(len(data)-pos)))}
		for i := uint64(0); i < cnt; i++ {
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || l > uint64(len(data)-pos-n) {
				return fail("object field name")
			}
			pos += n
			name := string(data[pos : pos+int(l)])
			pos += int(l)
			v, n2, err := Decode(data[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += n2
			o.fields = append(o.fields, Field{Name: name, Value: v})
		}
		return o, pos, nil
	}
	return nil, 0, fmt.Errorf("adm: decode: unknown kind tag %d", data[0])
}

// DecodeValue decodes a value that occupies the whole input.
func DecodeValue(data []byte) (Value, error) {
	v, n, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("adm: decode: %d trailing bytes", len(data)-n)
	}
	return v, nil
}

// EncodeKey appends an order-preserving encoding of a scalar value:
// bytes.Compare over encodings agrees with Compare over values. Used as
// the key format for B+trees and other ordered indexes. Only scalar kinds
// are supported; numerics (int64/double) share one encoding so that their
// numeric cross-kind order is preserved.
func EncodeKey(buf []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case missingValue:
		return append(buf, 0x00), nil
	case nullValue:
		return append(buf, 0x01), nil
	case Boolean:
		if x {
			return append(buf, 0x02, 1), nil
		}
		return append(buf, 0x02, 0), nil
	case Int64:
		buf = append(buf, 0x03)
		return appendOrderedFloat(buf, float64(x)), nil
	case Double:
		buf = append(buf, 0x03)
		return appendOrderedFloat(buf, float64(x)), nil
	case String:
		buf = append(buf, 0x04)
		return appendEscapedBytes(buf, []byte(x)), nil
	case Date:
		buf = append(buf, 0x05)
		return appendOrderedInt(buf, int64(x)), nil
	case Time:
		buf = append(buf, 0x06)
		return appendOrderedInt(buf, int64(x)), nil
	case Datetime:
		buf = append(buf, 0x07)
		return appendOrderedInt(buf, int64(x)), nil
	case Duration:
		buf = append(buf, 0x08)
		buf = appendOrderedInt(buf, int64(x.Months)*30*millisPerDay+x.Millis)
		buf = appendOrderedInt(buf, int64(x.Months))
		return appendOrderedInt(buf, x.Millis), nil
	case Point:
		buf = append(buf, 0x09)
		buf = appendOrderedFloat(buf, x.X)
		return appendOrderedFloat(buf, x.Y), nil
	case UUID:
		buf = append(buf, 0x0B)
		return append(buf, x[:]...), nil
	case Binary:
		buf = append(buf, 0x0C)
		return appendEscapedBytes(buf, x), nil
	}
	return nil, fmt.Errorf("adm: %s values cannot be index keys", v.Kind())
}

// EncodeCompositeKey encodes several scalar values into one
// order-preserving composite key.
func EncodeCompositeKey(buf []byte, vs ...Value) ([]byte, error) {
	var err error
	for _, v := range vs {
		buf, err = EncodeKey(buf, v)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendOrderedInt encodes an int64 so unsigned byte order matches signed
// numeric order (flip the sign bit, big endian).
func appendOrderedInt(buf []byte, i int64) []byte {
	u := uint64(i) ^ (1 << 63)
	return binary.BigEndian.AppendUint64(buf, u)
}

// appendOrderedFloat encodes a float64 order-preservingly: positive values
// get their sign bit set; negative values are bitwise inverted.
func appendOrderedFloat(buf []byte, f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return binary.BigEndian.AppendUint64(buf, u)
}

// appendEscapedBytes encodes a byte string with 0x00-escaping and a
// 0x00 0x00 terminator so that concatenated composite keys preserve
// lexicographic order: 0x00 in the data becomes 0x00 0xFF.
func appendEscapedBytes(buf, data []byte) []byte {
	for _, b := range data {
		if b == 0x00 {
			buf = append(buf, 0x00, 0xFF)
		} else {
			buf = append(buf, b)
		}
	}
	return append(buf, 0x00, 0x00)
}
