package adm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// ParseJSON parses a JSON text (with the ADM extension of {{ ... }}
// multiset literals) into a Value. Numbers without a fraction or exponent
// become Int64; others become Double.
func ParseJSON(data []byte) (Value, error) {
	p := &jsonParser{data: data}
	p.skipWS()
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.data) {
		return nil, p.errf("trailing data at offset %d", p.pos)
	}
	return v, nil
}

// MustParseJSON is ParseJSON that panics on error; for tests and literals.
func MustParseJSON(data string) Value {
	v, err := ParseJSON([]byte(data))
	if err != nil {
		panic(err)
	}
	return v
}

type jsonParser struct {
	data []byte
	pos  int
}

func (p *jsonParser) errf(format string, args ...any) error {
	return fmt.Errorf("adm: json parse: "+format, args...)
}

func (p *jsonParser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) peek() byte {
	if p.pos < len(p.data) {
		return p.data[p.pos]
	}
	return 0
}

func (p *jsonParser) parseValue() (Value, error) {
	p.skipWS()
	if p.pos >= len(p.data) {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		if p.pos+1 < len(p.data) && p.data[p.pos+1] == '{' {
			return p.parseMultiset()
		}
		return p.parseObject()
	case c == '[':
		return p.parseArray()
	case c == '"':
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return String(s), nil
	case c == 't':
		if err := p.expect("true"); err != nil {
			return nil, err
		}
		return Boolean(true), nil
	case c == 'f':
		if err := p.expect("false"); err != nil {
			return nil, err
		}
		return Boolean(false), nil
	case c == 'n':
		if err := p.expect("null"); err != nil {
			return nil, err
		}
		return Null, nil
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	}
	return nil, p.errf("unexpected character %q at offset %d", p.data[p.pos], p.pos)
}

func (p *jsonParser) expect(lit string) error {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errf("expected %q at offset %d", lit, p.pos)
	}
	p.pos += len(lit)
	return nil
}

func (p *jsonParser) parseNumber() (Value, error) {
	start := p.pos
	isFloat := false
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
		} else if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			isFloat = true
			p.pos++
		} else {
			break
		}
	}
	text := string(p.data[start:p.pos])
	if !isFloat {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return Int64(i), nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, p.errf("invalid number %q", text)
	}
	return Double(f), nil
}

func (p *jsonParser) parseString() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("expected string at offset %d", p.pos)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return sb.String(), nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return "", p.errf("unterminated escape")
			}
			e := p.data[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				sb.WriteByte(e)
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case 'u':
				r, err := p.parseHex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) && p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
					p.pos += 2
					r2, err := p.parseHex4()
					if err != nil {
						return "", err
					}
					r = utf16.DecodeRune(r, r2)
				}
				sb.WriteRune(r)
			default:
				return "", p.errf("invalid escape \\%c", e)
			}
		default:
			_, size := utf8.DecodeRune(p.data[p.pos:])
			sb.Write(p.data[p.pos : p.pos+size])
			p.pos += size
		}
	}
	return "", p.errf("unterminated string")
}

func (p *jsonParser) parseHex4() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.errf("truncated \\u escape")
	}
	n, err := strconv.ParseUint(string(p.data[p.pos:p.pos+4]), 16, 32)
	if err != nil {
		return 0, p.errf("invalid \\u escape")
	}
	p.pos += 4
	return rune(n), nil
}

func (p *jsonParser) parseObject() (Value, error) {
	p.pos++ // '{'
	o := NewObject()
	p.skipWS()
	if p.peek() == '}' {
		p.pos++
		return o, nil
	}
	for {
		p.skipWS()
		name, err := p.parseString()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.peek() != ':' {
			return nil, p.errf("expected ':' at offset %d", p.pos)
		}
		p.pos++
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		o.Set(name, v)
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return o, nil
		default:
			return nil, p.errf("expected ',' or '}' at offset %d", p.pos)
		}
	}
}

func (p *jsonParser) parseArray() (Value, error) {
	p.pos++ // '['
	a := Array{}
	p.skipWS()
	if p.peek() == ']' {
		p.pos++
		return a, nil
	}
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		a = append(a, v)
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return a, nil
		default:
			return nil, p.errf("expected ',' or ']' at offset %d", p.pos)
		}
	}
}

func (p *jsonParser) parseMultiset() (Value, error) {
	p.pos += 2 // '{{'
	m := Multiset{}
	p.skipWS()
	if p.peek() == '}' && p.pos+1 < len(p.data) && p.data[p.pos+1] == '}' {
		p.pos += 2
		return m, nil
	}
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		m = append(m, v)
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '}' {
				return nil, p.errf("expected '}}' at offset %d", p.pos)
			}
			p.pos += 2
			return m, nil
		default:
			return nil, p.errf("expected ',' or '}}' at offset %d", p.pos)
		}
	}
}

// quoteJSON writes s as a JSON string literal (strconv.Quote is Go
// syntax, not JSON: it emits \x and \U escapes JSON parsers reject).
func quoteJSON(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case '\b':
			sb.WriteString(`\b`)
		case '\f':
			sb.WriteString(`\f`)
		default:
			if r < 0x20 {
				fmt.Fprintf(sb, `\u%04x`, r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
}

// SerializeJSON renders a value as strict JSON (suitable for API results):
// temporal and spatial values become their ISO / textual forms as strings,
// multisets become arrays, missing becomes null at top level (inside
// objects, missing fields are simply omitted by construction).
func SerializeJSON(sb *strings.Builder, v Value) {
	switch x := v.(type) {
	case missingValue, nullValue:
		sb.WriteString("null")
	case Boolean:
		if x {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case Int64:
		sb.WriteString(strconv.FormatInt(int64(x), 10))
	case Double:
		sb.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 64))
	case String:
		quoteJSON(sb, string(x))
	case Date:
		quoteJSON(sb, FormatDate(x))
	case Time:
		quoteJSON(sb, FormatTime(x))
	case Datetime:
		quoteJSON(sb, FormatDatetime(x))
	case Duration:
		quoteJSON(sb, FormatDuration(x))
	case Point:
		fmt.Fprintf(sb, `{"point":[%g,%g]}`, x.X, x.Y)
	case Rectangle:
		fmt.Fprintf(sb, `{"rectangle":[%g,%g,%g,%g]}`, x.MinX, x.MinY, x.MaxX, x.MaxY)
	case UUID:
		quoteJSON(sb, fmt.Sprintf("%x", x[:]))
	case Binary:
		quoteJSON(sb, fmt.Sprintf("%X", []byte(x)))
	case Array:
		sb.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				sb.WriteByte(',')
			}
			SerializeJSON(sb, e)
		}
		sb.WriteByte(']')
	case Multiset:
		sb.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				sb.WriteByte(',')
			}
			SerializeJSON(sb, e)
		}
		sb.WriteByte(']')
	case *Object:
		sb.WriteByte('{')
		first := true
		for _, f := range x.Fields() {
			if f.Value.Kind() == KindMissing {
				continue
			}
			if !first {
				sb.WriteByte(',')
			}
			first = false
			quoteJSON(sb, f.Name)
			sb.WriteByte(':')
			SerializeJSON(sb, f.Value)
		}
		sb.WriteByte('}')
	}
}

// ToJSON returns the strict-JSON rendering of v.
func ToJSON(v Value) string {
	var sb strings.Builder
	SerializeJSON(&sb, v)
	return sb.String()
}
