package adm

import (
	"bytes"
	"testing"
)

// FuzzADMBinaryRoundTrip checks the canonical-fixpoint property of the
// binary codec: any input the decoder accepts must re-encode to a form
// that decodes and re-encodes to identical bytes. (The first encoding may
// differ from arbitrary fuzz input — e.g. non-minimal varints — but one
// decode/encode pass must reach a fixpoint.) It also serves as a
// crash/OOM harness for the decoder on adversarial bytes.
func FuzzADMBinaryRoundTrip(f *testing.F) {
	seeds := []Value{
		Missing,
		Null,
		Boolean(true),
		Int64(-42),
		Double(3.25),
		String("gleambook"),
		Date(18000),
		Time(12 * 3600 * 1000),
		Datetime(1554076800000),
		Duration{Months: 14, Millis: 86400000},
		Point{X: 1.5, Y: -2.5},
		Rectangle{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		UUID{0x9e, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		Binary{0xde, 0xad, 0xbe, 0xef},
		Array{Int64(1), String("x"), Null},
		Multiset{Boolean(false), Double(0)},
		func() Value {
			o := NewObject()
			o.Set("id", Int64(7))
			o.Set("name", String("alice"))
			o.Set("tags", Array{String("a"), String("b")})
			return o
		}(),
	}
	for _, v := range seeds {
		f.Add(EncodeValue(v))
	}
	// A few invalid seeds so the corpus covers error paths.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{byte(KindArray), 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		v1, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		e1 := EncodeValue(v1)
		v2, err := DecodeValue(e1)
		if err != nil {
			t.Fatalf("re-decode of encoded value failed: %v\nvalue: %v\nencoding: %x", err, v1, e1)
		}
		e2 := EncodeValue(v2)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding is not a fixpoint:\n e1=%x\n e2=%x", e1, e2)
		}
	})
}
