package adm

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestParseJSONBasics(t *testing.T) {
	v := MustParseJSON(`{"id": 1, "name": "alice", "score": 2.5,
		"tags": ["a", "b"], "friends": {{1, 2, 3}}, "extra": null, "ok": true}`)
	o, ok := v.(*Object)
	if !ok {
		t.Fatalf("expected object, got %T", v)
	}
	if !Equal(o.Get("id"), Int64(1)) {
		t.Errorf("id = %v", o.Get("id"))
	}
	if o.Get("id").Kind() != KindInt64 {
		t.Errorf("integer literal should parse as int64, got %s", o.Get("id").Kind())
	}
	if o.Get("score").Kind() != KindDouble {
		t.Errorf("fractional literal should parse as double")
	}
	if o.Get("friends").Kind() != KindMultiset {
		t.Errorf("{{...}} should parse as multiset, got %s", o.Get("friends").Kind())
	}
	if o.Get("extra").Kind() != KindNull {
		t.Errorf("null should parse as null")
	}
}

func TestParseJSONEscapes(t *testing.T) {
	v := MustParseJSON(`"a\nb\tA😀"`)
	want := "a\nb\tA\U0001F600"
	if string(v.(String)) != want {
		t.Errorf("got %q, want %q", v, want)
	}
}

func TestParseJSONErrors(t *testing.T) {
	bad := []string{``, `{`, `[1,`, `{"a"}`, `tru`, `{"a":1}x`, `"unterminated`, `{{1,}`, `01a`}
	for _, s := range bad {
		if _, err := ParseJSON([]byte(s)); err == nil {
			t.Errorf("ParseJSON(%q) should fail", s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		v := randomValue(r, 2)
		// JSON round-trip only holds for pure-JSON values; skip others.
		if !jsonRepresentable(v) {
			continue
		}
		s := ToJSON(v)
		got, err := ParseJSON([]byte(s))
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		if Compare(v, got) != 0 {
			t.Fatalf("json round trip changed %v -> %v (text %q)", v, got, s)
		}
	}
}

func jsonRepresentable(v Value) bool {
	switch x := v.(type) {
	case nullValue, Boolean, Int64, String:
		return true
	case Double:
		f := float64(x)
		return f == f && f != float64(int64(f)) // avoid NaN and int-valued doubles
	case Array:
		for _, e := range x {
			if !jsonRepresentable(e) {
				return false
			}
		}
		return true
	case *Object:
		for _, f := range x.Fields() {
			if !jsonRepresentable(f.Value) {
				return false
			}
		}
		return true
	}
	return false
}

func TestTemporalParsing(t *testing.T) {
	dt, err := ParseDatetime("2017-01-20T10:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDatetime(dt) != "2017-01-20T10:30:00" {
		t.Errorf("datetime round trip: %s", FormatDatetime(dt))
	}
	d, err := ParseDate("2017-01-20")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "2017-01-20" {
		t.Errorf("date round trip: %s", FormatDate(d))
	}
	tm, err := ParseTime("23:59:59.500")
	if err != nil {
		t.Fatal(err)
	}
	if FormatTime(tm) != "23:59:59.500" {
		t.Errorf("time round trip: %s", FormatTime(tm))
	}
	du, err := ParseDuration("P30D")
	if err != nil {
		t.Fatal(err)
	}
	if du.Millis != 30*millisPerDay || du.Months != 0 {
		t.Errorf("P30D parsed as %+v", du)
	}
	du2, err := ParseDuration("P1Y2MT3H4M5S")
	if err != nil {
		t.Fatal(err)
	}
	if du2.Months != 14 || du2.Millis != 3*3600000+4*60000+5000 {
		t.Errorf("P1Y2MT3H4M5S parsed as %+v", du2)
	}
	if _, err := ParseDuration("30D"); err == nil {
		t.Error("duration without P should fail")
	}
}

func TestAddDuration(t *testing.T) {
	dt, _ := ParseDatetime("2017-01-31T00:00:00")
	got := AddDuration(dt, Duration{Months: 1})
	// Go's AddDate normalizes Jan 31 + 1 month to Mar 3 (2017 not a leap year).
	if FormatDatetime(got) != "2017-03-03T00:00:00" {
		t.Errorf("add 1 month to Jan 31: %s", FormatDatetime(got))
	}
	end, _ := ParseDatetime("2018-06-15T12:00:00")
	start := SubDuration(end, Duration{Millis: 30 * millisPerDay})
	if FormatDatetime(start) != "2018-05-16T12:00:00" {
		t.Errorf("minus P30D: %s", FormatDatetime(start))
	}
}

// Property: EncodeKey preserves Compare order for scalar values.
func TestPropKeyEncodingPreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var vals []Value
	for i := 0; i < 400; i++ {
		v := randomValue(r, 0)
		if v.Kind().IsScalar() && v.Kind() != KindRectangle {
			vals = append(vals, v)
		}
	}
	// Also adversarial strings containing 0x00 bytes.
	vals = append(vals, String("a\x00b"), String("a\x00"), String("a"), String("a\x01"), String(""))
	type kv struct {
		v Value
		k []byte
	}
	var ks []kv
	for _, v := range vals {
		k, err := EncodeKey(nil, v)
		if err != nil {
			t.Fatalf("EncodeKey(%v): %v", v, err)
		}
		ks = append(ks, kv{v, k})
	}
	sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i].k, ks[j].k) < 0 })
	for i := 1; i < len(ks); i++ {
		a, b := ks[i-1], ks[i]
		if a.v.Kind() == b.v.Kind() || (a.v.Kind().IsNumeric() && b.v.Kind().IsNumeric()) {
			if Compare(a.v, b.v) > 0 {
				t.Fatalf("key order disagrees with value order: %v (key %x) before %v (key %x)",
					a.v, a.k, b.v, b.k)
			}
		}
	}
}

func TestCompositeKeyOrder(t *testing.T) {
	// ("a", 2) < ("a", 10) must hold even though "2" > "1" textually.
	k1, err := EncodeCompositeKey(nil, String("a"), Int64(2))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := EncodeCompositeKey(nil, String("a"), Int64(10))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Compare(k1, k2) >= 0 {
		t.Error(`("a",2) should sort before ("a",10)`)
	}
	// ("a\x00", 1) vs ("a", 1): "a" < "a\x00".
	k3, _ := EncodeCompositeKey(nil, String("a\x00"), Int64(1))
	k4, _ := EncodeCompositeKey(nil, String("a"), Int64(1))
	if bytes.Compare(k4, k3) >= 0 {
		t.Error(`("a",1) should sort before ("a\x00",1)`)
	}
}

func TestEncodeKeyRejectsNonScalar(t *testing.T) {
	if _, err := EncodeKey(nil, Array{Int64(1)}); err == nil {
		t.Error("arrays must be rejected as keys")
	}
	if _, err := EncodeKey(nil, NewObject()); err == nil {
		t.Error("objects must be rejected as keys")
	}
}

func TestDecodeCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		v := randomValue(r, 2)
		data := EncodeValue(v)
		if len(data) < 2 {
			continue
		}
		trunc := data[:r.Intn(len(data)-1)+1]
		if val, n, err := Decode(trunc); err == nil && n == len(trunc) {
			// Truncation at a value boundary can decode legitimately; only
			// flag decodes that consumed everything but produced a value
			// of a different kind family than plausible.
			_ = val
		}
	}
	// Explicit corrupt cases must error.
	if _, err := DecodeValue(nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := DecodeValue([]byte{0xFE}); err == nil {
		t.Error("unknown tag must fail")
	}
	if _, err := DecodeValue([]byte{byte(KindString), 0x05, 'a'}); err == nil {
		t.Error("truncated string must fail")
	}
}
