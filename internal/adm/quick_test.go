package adm

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickValue wraps a generated scalar Value for testing/quick.
type quickScalar struct{ V Value }

// Generate implements quick.Generator, producing random scalar values.
func (quickScalar) Generate(r *rand.Rand, size int) reflect.Value {
	var v Value
	switch r.Intn(8) {
	case 0:
		v = Boolean(r.Intn(2) == 0)
	case 1:
		v = Int64(r.Int63() - r.Int63())
	case 2:
		v = Double(r.NormFloat64() * float64(r.Intn(1e6)+1))
	case 3:
		b := make([]byte, r.Intn(size+1))
		for i := range b {
			b[i] = byte(r.Intn(128))
		}
		v = String(b)
	case 4:
		v = Datetime(r.Int63n(4e12) - 2e12)
	case 5:
		v = Date(r.Int31n(60000) - 30000)
	case 6:
		v = Time(r.Int31n(86400000))
	default:
		v = Point{X: r.NormFloat64() * 100, Y: r.NormFloat64() * 100}
	}
	return reflect.ValueOf(quickScalar{V: v})
}

// Property (quick): binary encoding round-trips scalar values.
func TestQuickEncodeDecodeScalar(t *testing.T) {
	f := func(s quickScalar) bool {
		got, err := DecodeValue(EncodeValue(s.V))
		return err == nil && Compare(got, s.V) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): EncodeKey is order-preserving for same-kind scalars
// (and across the int64/double numeric family).
func TestQuickKeyEncodingOrder(t *testing.T) {
	comparableKinds := func(a, b Value) bool {
		if a.Kind() == b.Kind() {
			return true
		}
		return a.Kind().IsNumeric() && b.Kind().IsNumeric()
	}
	f := func(a, b quickScalar) bool {
		if !comparableKinds(a.V, b.V) {
			return true // vacuous
		}
		ka, err1 := EncodeKey(nil, a.V)
		kb, err2 := EncodeKey(nil, b.V)
		if err1 != nil || err2 != nil {
			return false
		}
		cmpVals := Compare(a.V, b.V)
		cmpKeys := bytes.Compare(ka, kb)
		if cmpVals < 0 {
			return cmpKeys < 0
		}
		if cmpVals > 0 {
			return cmpKeys > 0
		}
		return cmpKeys == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): Compare is antisymmetric and hashing respects
// equality on scalars.
func TestQuickCompareAndHash(t *testing.T) {
	f := func(a, b quickScalar) bool {
		if Compare(a.V, b.V) != -Compare(b.V, a.V) {
			return false
		}
		if Compare(a.V, b.V) == 0 && Hash64(a.V) != Hash64(b.V) {
			return false
		}
		return Compare(a.V, a.V) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): JSON serialization of int64/string/bool arrays
// re-parses to an equal value.
func TestQuickJSONRoundTripSimple(t *testing.T) {
	f := func(ints []int64, strs []string, flag bool) bool {
		arr := Array{Boolean(flag)}
		for _, i := range ints {
			arr = append(arr, Int64(i))
		}
		for _, s := range strs {
			arr = append(arr, String(s))
		}
		parsed, err := ParseJSON([]byte(ToJSON(arr)))
		return err == nil && Compare(arr, parsed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
