package adm

import (
	"fmt"
	"strings"
)

// TypeTag identifies the structural category of a Type.
type TypeTag uint8

// Type tags.
const (
	TagAny TypeTag = iota
	TagPrimitive
	TagObject
	TagArray
	TagMultiset
)

// Type describes an ADM type. Types may be anonymous (nested inside other
// types) or named (registered in the metadata catalog). The zero value is
// not valid; use the constructors.
//
// ADM's optional schema philosophy: an object type lists declared fields;
// instances of an *open* type may carry extra, undeclared fields, while a
// *closed* type forbids them. Declared fields may be optional ("?"),
// admitting null/missing.
type Type struct {
	Tag  TypeTag
	Name string // non-empty for named types

	// Primitive
	Prim Kind

	// Object
	Fields []FieldType
	Closed bool

	// Array / Multiset
	Elem *Type
}

// FieldType is one declared field of an object type.
type FieldType struct {
	Name     string
	Type     *Type
	Optional bool
}

// AnyType admits every value.
var AnyType = &Type{Tag: TagAny, Name: "any"}

// Primitive returns the (shared) primitive type for a kind.
func Primitive(k Kind) *Type {
	return &Type{Tag: TagPrimitive, Name: k.String(), Prim: k}
}

// NewObjectType builds an object type. closed forbids undeclared fields.
func NewObjectType(name string, closed bool, fields ...FieldType) *Type {
	return &Type{Tag: TagObject, Name: name, Closed: closed, Fields: fields}
}

// NewArrayType builds an ordered-list type.
func NewArrayType(elem *Type) *Type { return &Type{Tag: TagArray, Elem: elem} }

// NewMultisetType builds an unordered-list type.
func NewMultisetType(elem *Type) *Type { return &Type{Tag: TagMultiset, Elem: elem} }

// Field returns the declared field type, if any.
func (t *Type) Field(name string) (FieldType, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldType{}, false
}

// String renders the type in DDL-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "any"
	}
	switch t.Tag {
	case TagAny:
		return "any"
	case TagPrimitive:
		return t.Prim.String()
	case TagArray:
		return "[" + t.Elem.String() + "]"
	case TagMultiset:
		return "{{" + t.Elem.String() + "}}"
	case TagObject:
		if t.Name != "" {
			return t.Name
		}
		var sb strings.Builder
		sb.WriteByte('{')
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			sb.WriteString(f.Type.String())
			if f.Optional {
				sb.WriteByte('?')
			}
		}
		sb.WriteByte('}')
		return sb.String()
	}
	return "?"
}

// TypeError describes a value failing type validation.
type TypeError struct {
	Path string
	Msg  string
}

func (e *TypeError) Error() string {
	if e.Path == "" {
		return "adm: type error: " + e.Msg
	}
	return "adm: type error at " + e.Path + ": " + e.Msg
}

// Validate checks that v conforms to t, implementing ADM's open/closed and
// optional-field semantics.
func (t *Type) Validate(v Value) error { return t.validate(v, "$") }

func (t *Type) validate(v Value, path string) error {
	if t == nil || t.Tag == TagAny {
		return nil
	}
	switch t.Tag {
	case TagPrimitive:
		k := v.Kind()
		if k == t.Prim {
			return nil
		}
		// int64 is acceptable where double is declared (numeric promotion).
		if t.Prim == KindDouble && k == KindInt64 {
			return nil
		}
		return &TypeError{Path: path, Msg: fmt.Sprintf("expected %s, got %s", t.Prim, k)}
	case TagArray:
		a, ok := v.(Array)
		if !ok {
			return &TypeError{Path: path, Msg: fmt.Sprintf("expected array, got %s", v.Kind())}
		}
		for i, e := range a {
			if err := t.Elem.validate(e, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case TagMultiset:
		m, ok := v.(Multiset)
		if !ok {
			return &TypeError{Path: path, Msg: fmt.Sprintf("expected multiset, got %s", v.Kind())}
		}
		for i, e := range m {
			if err := t.Elem.validate(e, fmt.Sprintf("%s{{%d}}", path, i)); err != nil {
				return err
			}
		}
		return nil
	case TagObject:
		o, ok := v.(*Object)
		if !ok {
			return &TypeError{Path: path, Msg: fmt.Sprintf("expected object, got %s", v.Kind())}
		}
		for _, f := range t.Fields {
			fv := o.Get(f.Name)
			fk := fv.Kind()
			if fk == KindMissing || fk == KindNull {
				if f.Optional {
					continue
				}
				return &TypeError{Path: path, Msg: fmt.Sprintf("required field %q is %s", f.Name, fk)}
			}
			if err := f.Type.validate(fv, path+"."+f.Name); err != nil {
				return err
			}
		}
		if t.Closed {
			for _, f := range o.Fields() {
				if _, declared := t.Field(f.Name); !declared {
					return &TypeError{Path: path, Msg: fmt.Sprintf("closed type %s forbids undeclared field %q", t.Name, f.Name)}
				}
			}
		}
		return nil
	}
	return nil
}
