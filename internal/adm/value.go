// Package adm implements the Asterix Data Model (ADM): a superset of JSON
// with object-database extensions — richer primitive types (temporal,
// spatial, binary), multisets in addition to arrays, and a distinction
// between null (known to be absent) and missing (not present at all).
//
// ADM values are immutable once constructed and safe for concurrent reads.
package adm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value. The numeric order of kinds
// defines the cross-kind total order used for sorting heterogeneous data:
// missing < null < boolean < numbers < string < temporal < spatial <
// binary < array < multiset < object.
type Kind uint8

// Value kinds, in cross-kind sort order.
const (
	KindMissing Kind = iota
	KindNull
	KindBoolean
	KindInt64
	KindDouble
	KindString
	KindDate
	KindTime
	KindDatetime
	KindDuration
	KindPoint
	KindRectangle
	KindUUID
	KindBinary
	KindArray
	KindMultiset
	KindObject
)

var kindNames = [...]string{
	KindMissing:   "missing",
	KindNull:      "null",
	KindBoolean:   "boolean",
	KindInt64:     "int64",
	KindDouble:    "double",
	KindString:    "string",
	KindDate:      "date",
	KindTime:      "time",
	KindDatetime:  "datetime",
	KindDuration:  "duration",
	KindPoint:     "point",
	KindRectangle: "rectangle",
	KindUUID:      "uuid",
	KindBinary:    "binary",
	KindArray:     "array",
	KindMultiset:  "multiset",
	KindObject:    "object",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsNumeric reports whether the kind is a numeric type.
func (k Kind) IsNumeric() bool { return k == KindInt64 || k == KindDouble }

// IsScalar reports whether the kind is a scalar (non-collection, non-object)
// type, and hence usable as an index key.
func (k Kind) IsScalar() bool { return k > KindNull && k < KindArray }

// Value is an immutable ADM value.
type Value interface {
	Kind() Kind
	// String renders the value as an ADM literal (JSON extended with
	// constructor syntax for non-JSON types).
	String() string
}

// Missing is the ADM "missing" value: the field was not present at all.
type missingValue struct{}

// Null is the ADM "null" value: the field is present and known to be null.
type nullValue struct{}

// Missing and Null are the singleton instances of the two absent-value kinds.
var (
	Missing Value = missingValue{}
	Null    Value = nullValue{}
)

func (missingValue) Kind() Kind     { return KindMissing }
func (missingValue) String() string { return "missing" }
func (nullValue) Kind() Kind        { return KindNull }
func (nullValue) String() string    { return "null" }

// Boolean is an ADM boolean.
type Boolean bool

func (Boolean) Kind() Kind { return KindBoolean }
func (b Boolean) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Int64 is an ADM 64-bit signed integer (ADM's int8/16/32/64 collapse to a
// single 64-bit representation here).
type Int64 int64

func (Int64) Kind() Kind       { return KindInt64 }
func (i Int64) String() string { return strconv.FormatInt(int64(i), 10) }

// Double is an ADM IEEE-754 double.
type Double float64

func (Double) Kind() Kind { return KindDouble }
func (d Double) String() string {
	f := float64(d)
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Keep doubles visually distinct from ints in literal output.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// String is an ADM UTF-8 string.
type String string

func (String) Kind() Kind       { return KindString }
func (s String) String() string { return strconv.Quote(string(s)) }

// Date is days since the Unix epoch.
type Date int32

func (Date) Kind() Kind       { return KindDate }
func (d Date) String() string { return `date("` + FormatDate(d) + `")` }

// Time is milliseconds since midnight.
type Time int32

func (Time) Kind() Kind       { return KindTime }
func (t Time) String() string { return `time("` + FormatTime(t) + `")` }

// Datetime is milliseconds since the Unix epoch (UTC).
type Datetime int64

func (Datetime) Kind() Kind { return KindDatetime }
func (t Datetime) String() string {
	return `datetime("` + FormatDatetime(t) + `")`
}

// Duration is an ISO-8601 duration split into a month part and a
// millisecond part, since months have no fixed length in milliseconds.
type Duration struct {
	Months int32
	Millis int64
}

func (Duration) Kind() Kind { return KindDuration }
func (d Duration) String() string {
	return `duration("` + FormatDuration(d) + `")`
}

// Point is a 2-D point (the paper's "simple (Googlemap style) spatial"
// attribute type).
type Point struct{ X, Y float64 }

func (Point) Kind() Kind { return KindPoint }
func (p Point) String() string {
	return fmt.Sprintf(`point("%g,%g")`, p.X, p.Y)
}

// Rectangle is an axis-aligned 2-D rectangle (bounding box).
type Rectangle struct{ MinX, MinY, MaxX, MaxY float64 }

func (Rectangle) Kind() Kind { return KindRectangle }
func (r Rectangle) String() string {
	return fmt.Sprintf(`rectangle("%g,%g %g,%g")`, r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Contains reports whether (x, y) lies inside or on the rectangle boundary.
func (r Rectangle) Contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// Intersects reports whether two rectangles overlap.
func (r Rectangle) Intersects(o Rectangle) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// UUID is a 128-bit identifier.
type UUID [16]byte

func (UUID) Kind() Kind { return KindUUID }
func (u UUID) String() string {
	return fmt.Sprintf(`uuid("%x-%x-%x-%x-%x")`, u[0:4], u[4:6], u[6:8], u[8:10], u[10:16])
}

// Binary is an opaque byte string.
type Binary []byte

func (Binary) Kind() Kind       { return KindBinary }
func (b Binary) String() string { return fmt.Sprintf(`hex("%X")`, []byte(b)) }

// Array is an ordered list of values.
type Array []Value

func (Array) Kind() Kind { return KindArray }
func (a Array) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range a {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Multiset is an unordered bag of values. Its literal syntax is {{ ... }}.
type Multiset []Value

func (Multiset) Kind() Kind { return KindMultiset }
func (m Multiset) String() string {
	var sb strings.Builder
	sb.WriteString("{{")
	for i, v := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v.String())
	}
	sb.WriteString("}}")
	return sb.String()
}

// Field is a named field of an Object.
type Field struct {
	Name  string
	Value Value
}

// Object is an ADM object (record). Field order is preserved as
// constructed; lookup is by name. Objects are the unit of storage in
// datasets.
type Object struct {
	fields []Field
}

// NewObject builds an object from fields, keeping their order. Duplicate
// names keep the last occurrence.
func NewObject(fields ...Field) *Object {
	o := &Object{fields: make([]Field, 0, len(fields))}
	for _, f := range fields {
		o.Set(f.Name, f.Value)
	}
	return o
}

func (*Object) Kind() Kind { return KindObject }

// Len returns the number of fields.
func (o *Object) Len() int { return len(o.fields) }

// Fields returns the fields in construction order. The returned slice must
// not be modified.
func (o *Object) Fields() []Field { return o.fields }

// Get returns the value of the named field, or Missing if absent.
func (o *Object) Get(name string) Value {
	for _, f := range o.fields {
		if f.Name == name {
			return f.Value
		}
	}
	return Missing
}

// Has reports whether the named field is present.
func (o *Object) Has(name string) bool {
	for _, f := range o.fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// Set sets the named field, replacing any existing value. It is intended
// for use during construction only; objects must not be mutated after
// being shared.
func (o *Object) Set(name string, v Value) {
	for i, f := range o.fields {
		if f.Name == name {
			o.fields[i].Value = v
			return
		}
	}
	o.fields = append(o.fields, Field{Name: name, Value: v})
}

// Without returns a copy of the object without the named field.
func (o *Object) Without(name string) *Object {
	out := &Object{fields: make([]Field, 0, len(o.fields))}
	for _, f := range o.fields {
		if f.Name != name {
			out.fields = append(out.fields, f)
		}
	}
	return out
}

// smallObjectFields bounds the stack-resident index buffers the compare
// and hash kernels use to visit object fields (and multiset elements) in
// canonical order without allocating. Wider values fall back to the
// sorted-copy path.
const smallObjectFields = 16

// sortedIdx writes the name-sorted order of o's fields into idx, which
// must have length len(o.fields). Insertion sort: quadratic, but only
// run on ≤ smallObjectFields inputs, and allocation-free so the hot
// comparator/hash kernels can call it per tuple.
func (o *Object) sortedIdx(idx []int32) {
	for i := range o.fields {
		j := i
		for j > 0 && o.fields[idx[j-1]].Name > o.fields[i].Name {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = int32(i)
	}
}

// sortedFields returns the fields sorted by name (for canonical hashing and
// equality), without modifying the object.
func (o *Object) sortedFields() []Field {
	fs := make([]Field, len(o.fields))
	copy(fs, o.fields)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	return fs
}

func (o *Object) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, f := range o.fields {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Quote(f.Name))
		sb.WriteByte(':')
		sb.WriteString(f.Value.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// AsFloat converts a numeric value to float64. ok is false for
// non-numeric values.
func AsFloat(v Value) (f float64, ok bool) {
	switch x := v.(type) {
	case Int64:
		return float64(x), true
	case Double:
		return float64(x), true
	}
	return 0, false
}

// AsInt converts an integer-valued numeric value to int64.
func AsInt(v Value) (i int64, ok bool) {
	switch x := v.(type) {
	case Int64:
		return int64(x), true
	case Double:
		f := float64(x)
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			return int64(f), true
		}
	}
	return 0, false
}

// Truthy implements SQL++ boolean coercion: only boolean true is true;
// null/missing propagate as unknown (reported via ok=false).
func Truthy(v Value) (val, known bool) {
	switch x := v.(type) {
	case Boolean:
		return bool(x), true
	case missingValue, nullValue:
		return false, false
	}
	return false, false
}
