package adm

import (
	"strings"
	"testing"
)

// gleambookUserType mirrors Figure 3(a) of the paper.
func gleambookUserType() *Type {
	employment := NewObjectType("EmploymentType", false,
		FieldType{Name: "organizationName", Type: Primitive(KindString)},
		FieldType{Name: "startDate", Type: Primitive(KindDate)},
		FieldType{Name: "endDate", Type: Primitive(KindDate), Optional: true},
	)
	return NewObjectType("GleambookUserType", false,
		FieldType{Name: "id", Type: Primitive(KindInt64)},
		FieldType{Name: "alias", Type: Primitive(KindString)},
		FieldType{Name: "name", Type: Primitive(KindString)},
		FieldType{Name: "userSince", Type: Primitive(KindDatetime)},
		FieldType{Name: "friendIds", Type: NewMultisetType(Primitive(KindInt64))},
		FieldType{Name: "employment", Type: NewArrayType(employment)},
	)
}

func validUser() *Object {
	since, _ := ParseDatetime("2017-01-01T00:00:00")
	start, _ := ParseDate("2017-01-20")
	return NewObject(
		Field{"id", Int64(667)},
		Field{"alias", String("dfrump")},
		Field{"name", String("DonaldFrump")},
		Field{"userSince", since},
		Field{"friendIds", Multiset{}},
		Field{"employment", Array{NewObject(
			Field{"organizationName", String("USA")},
			Field{"startDate", start},
		)}},
	)
}

func TestValidateOpenTypeAllowsExtraFields(t *testing.T) {
	ut := gleambookUserType()
	u := validUser()
	u.Set("nickname", String("Frumpkin")) // undeclared field, open type
	if err := ut.Validate(u); err != nil {
		t.Fatalf("open type should allow extra fields: %v", err)
	}
}

func TestValidateClosedTypeForbidsExtraFields(t *testing.T) {
	closed := NewObjectType("AccessLogType", true,
		FieldType{Name: "ip", Type: Primitive(KindString)},
		FieldType{Name: "user", Type: Primitive(KindString)},
		FieldType{Name: "stat", Type: Primitive(KindInt64)},
	)
	rec := NewObject(
		Field{"ip", String("1.2.3.4")},
		Field{"user", String("alice")},
		Field{"stat", Int64(200)},
	)
	if err := closed.Validate(rec); err != nil {
		t.Fatalf("conforming record rejected: %v", err)
	}
	rec.Set("surprise", Int64(1))
	err := closed.Validate(rec)
	if err == nil {
		t.Fatal("closed type must forbid undeclared fields")
	}
	if !strings.Contains(err.Error(), "surprise") {
		t.Errorf("error should name the offending field: %v", err)
	}
}

func TestValidateRequiredAndOptional(t *testing.T) {
	ut := gleambookUserType()
	u := validUser()
	if err := ut.Validate(u); err != nil {
		t.Fatalf("valid user rejected: %v", err)
	}
	// Missing required field.
	if err := ut.Validate(u.Without("alias")); err == nil {
		t.Error("missing required field must fail validation")
	}
	// Optional endDate may be absent or null.
	emp := u.Get("employment").(Array)[0].(*Object)
	emp.Set("endDate", Null)
	if err := ut.Validate(u); err != nil {
		t.Errorf("optional field set to null should pass: %v", err)
	}
}

func TestValidateKindMismatch(t *testing.T) {
	ut := gleambookUserType()
	u := validUser()
	u.Set("id", String("not-a-number"))
	err := ut.Validate(u)
	if err == nil {
		t.Fatal("wrong field kind must fail")
	}
	var te *TypeError
	if !asTypeError(err, &te) {
		t.Fatalf("expected *TypeError, got %T", err)
	}
	if !strings.Contains(te.Path, "id") {
		t.Errorf("error path should mention id: %q", te.Path)
	}
}

func asTypeError(err error, out **TypeError) bool {
	te, ok := err.(*TypeError)
	if ok {
		*out = te
	}
	return ok
}

func TestValidateNumericPromotion(t *testing.T) {
	ty := NewObjectType("T", false, FieldType{Name: "x", Type: Primitive(KindDouble)})
	if err := ty.Validate(NewObject(Field{"x", Int64(3)})); err != nil {
		t.Errorf("int64 should be accepted where double is declared: %v", err)
	}
}

func TestValidateNestedCollections(t *testing.T) {
	ty := NewArrayType(NewMultisetType(Primitive(KindInt64)))
	ok := Array{Multiset{Int64(1), Int64(2)}, Multiset{}}
	if err := ty.Validate(ok); err != nil {
		t.Errorf("valid nested collection rejected: %v", err)
	}
	bad := Array{Multiset{String("x")}}
	if err := ty.Validate(bad); err == nil {
		t.Error("string inside {{int64}} must fail")
	}
}

func TestAnyTypeAdmitsEverything(t *testing.T) {
	for _, v := range []Value{Missing, Null, Int64(1), NewObject(), Array{Multiset{}}} {
		if err := AnyType.Validate(v); err != nil {
			t.Errorf("any must admit %v: %v", v, err)
		}
	}
}

func TestTypeString(t *testing.T) {
	ty := NewObjectType("", false,
		FieldType{Name: "a", Type: Primitive(KindInt64)},
		FieldType{Name: "b", Type: NewArrayType(Primitive(KindString)), Optional: true},
	)
	want := "{a: int64, b: [string]?}"
	if got := ty.String(); got != want {
		t.Errorf("Type.String() = %q, want %q", got, want)
	}
}
