package adm

import (
	"bytes"
	"hash/fnv"
	"math"
	"sort"
)

// Compare defines a total order over all ADM values. Values of different
// kinds order by kind rank, except that int64 and double compare
// numerically with each other. Within a kind the natural order applies;
// objects compare by their name-sorted field lists, collections
// element-wise. Missing sorts before null, which sorts before everything
// else (the order AsterixDB uses for ORDER BY).
func Compare(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	if ka.IsNumeric() && kb.IsNumeric() {
		fa, _ := AsFloat(a)
		fb, _ := AsFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindMissing, KindNull:
		return 0
	case KindBoolean:
		x, y := a.(Boolean), b.(Boolean)
		switch {
		case !bool(x) && bool(y):
			return -1
		case bool(x) && !bool(y):
			return 1
		}
		return 0
	case KindString:
		x, y := a.(String), b.(String)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case KindDate:
		return cmpInt(int64(a.(Date)), int64(b.(Date)))
	case KindTime:
		return cmpInt(int64(a.(Time)), int64(b.(Time)))
	case KindDatetime:
		return cmpInt(int64(a.(Datetime)), int64(b.(Datetime)))
	case KindDuration:
		// Order by an approximate total duration (month = 30 days), then
		// by components for determinism.
		x, y := a.(Duration), b.(Duration)
		ax := int64(x.Months)*30*millisPerDay + x.Millis
		ay := int64(y.Months)*30*millisPerDay + y.Millis
		if c := cmpInt(ax, ay); c != 0 {
			return c
		}
		if c := cmpInt(int64(x.Months), int64(y.Months)); c != 0 {
			return c
		}
		return cmpInt(x.Millis, y.Millis)
	case KindPoint:
		x, y := a.(Point), b.(Point)
		if c := cmpFloat(x.X, y.X); c != 0 {
			return c
		}
		return cmpFloat(x.Y, y.Y)
	case KindRectangle:
		x, y := a.(Rectangle), b.(Rectangle)
		for _, p := range [][2]float64{{x.MinX, y.MinX}, {x.MinY, y.MinY}, {x.MaxX, y.MaxX}, {x.MaxY, y.MaxY}} {
			if c := cmpFloat(p[0], p[1]); c != 0 {
				return c
			}
		}
		return 0
	case KindUUID:
		x, y := a.(UUID), b.(UUID)
		return bytes.Compare(x[:], y[:])
	case KindBinary:
		return bytes.Compare(a.(Binary), b.(Binary))
	case KindArray:
		return compareSeq(a.(Array), b.(Array))
	case KindMultiset:
		// Multisets are unordered bags: compare their sorted element lists.
		return compareSeq(sortedElems(a.(Multiset)), sortedElems(b.(Multiset)))
	case KindObject:
		x, y := a.(*Object).sortedFields(), b.(*Object).sortedFields()
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		for i := 0; i < n; i++ {
			if x[i].Name != y[i].Name {
				if x[i].Name < y[i].Name {
					return -1
				}
				return 1
			}
			if c := Compare(x[i].Value, y[i].Value); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(x)), int64(len(y)))
	}
	return 0
}

func sortedElems(m Multiset) []Value {
	s := make([]Value, len(m))
	copy(s, m)
	sort.Slice(s, func(i, j int) bool { return Compare(s[i], s[j]) < 0 })
	return s
}

func compareSeq(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports deep equality under Compare's semantics. Note that like
// Compare it treats int64(2) and double(2.0) as equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash64 computes a 64-bit hash of a value, consistent with Equal: equal
// values hash identically (numerics hash via their float64 image).
func Hash64(v Value) uint64 {
	h := fnv.New64a()
	hashInto(h.(hashWriter), v)
	return h.Sum64()
}

type hashWriter interface {
	Write(p []byte) (int, error)
	Sum64() uint64
}

func hashInto(h hashWriter, v Value) {
	var tag [1]byte
	k := v.Kind()
	if k == KindDouble || k == KindInt64 {
		tag[0] = byte(KindDouble) // numeric types hash uniformly
	} else {
		tag[0] = byte(k)
	}
	h.Write(tag[:])
	switch x := v.(type) {
	case missingValue, nullValue:
	case Boolean:
		if x {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case Int64:
		writeU64(h, math.Float64bits(float64(x)))
	case Double:
		writeU64(h, math.Float64bits(float64(x)))
	case String:
		h.Write([]byte(x))
	case Date:
		writeU64(h, uint64(int64(x)))
	case Time:
		writeU64(h, uint64(int64(x)))
	case Datetime:
		writeU64(h, uint64(int64(x)))
	case Duration:
		writeU64(h, uint64(int64(x.Months)))
		writeU64(h, uint64(x.Millis))
	case Point:
		writeU64(h, math.Float64bits(x.X))
		writeU64(h, math.Float64bits(x.Y))
	case Rectangle:
		writeU64(h, math.Float64bits(x.MinX))
		writeU64(h, math.Float64bits(x.MinY))
		writeU64(h, math.Float64bits(x.MaxX))
		writeU64(h, math.Float64bits(x.MaxY))
	case UUID:
		h.Write(x[:])
	case Binary:
		h.Write(x)
	case Array:
		for _, e := range x {
			hashInto(h, e)
		}
	case Multiset:
		// Order-insensitive: XOR of element hashes folded in.
		var acc uint64
		for _, e := range x {
			acc ^= Hash64(e)
		}
		writeU64(h, acc)
	case *Object:
		for _, f := range x.sortedFields() {
			h.Write([]byte(f.Name))
			hashInto(h, f.Value)
		}
	}
}

func writeU64(h hashWriter, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}
