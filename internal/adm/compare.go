package adm

import (
	"bytes"
	"math"
	"sort"
)

// Compare defines a total order over all ADM values. Values of different
// kinds order by kind rank, except that int64 and double compare
// numerically with each other. Within a kind the natural order applies;
// objects compare by their name-sorted field lists, collections
// element-wise. Missing sorts before null, which sorts before everything
// else (the order AsterixDB uses for ORDER BY).
func Compare(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	if ka.IsNumeric() && kb.IsNumeric() {
		fa, _ := AsFloat(a)
		fb, _ := AsFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindMissing, KindNull:
		return 0
	case KindBoolean:
		x, y := a.(Boolean), b.(Boolean)
		switch {
		case !bool(x) && bool(y):
			return -1
		case bool(x) && !bool(y):
			return 1
		}
		return 0
	case KindString:
		x, y := a.(String), b.(String)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case KindDate:
		return cmpInt(int64(a.(Date)), int64(b.(Date)))
	case KindTime:
		return cmpInt(int64(a.(Time)), int64(b.(Time)))
	case KindDatetime:
		return cmpInt(int64(a.(Datetime)), int64(b.(Datetime)))
	case KindDuration:
		// Order by an approximate total duration (month = 30 days), then
		// by components for determinism.
		x, y := a.(Duration), b.(Duration)
		ax := int64(x.Months)*30*millisPerDay + x.Millis
		ay := int64(y.Months)*30*millisPerDay + y.Millis
		if c := cmpInt(ax, ay); c != 0 {
			return c
		}
		if c := cmpInt(int64(x.Months), int64(y.Months)); c != 0 {
			return c
		}
		return cmpInt(x.Millis, y.Millis)
	case KindPoint:
		x, y := a.(Point), b.(Point)
		if c := cmpFloat(x.X, y.X); c != 0 {
			return c
		}
		return cmpFloat(x.Y, y.Y)
	case KindRectangle:
		x, y := a.(Rectangle), b.(Rectangle)
		if c := cmpFloat(x.MinX, y.MinX); c != 0 {
			return c
		}
		if c := cmpFloat(x.MinY, y.MinY); c != 0 {
			return c
		}
		if c := cmpFloat(x.MaxX, y.MaxX); c != 0 {
			return c
		}
		return cmpFloat(x.MaxY, y.MaxY)
	case KindUUID:
		x, y := a.(UUID), b.(UUID)
		return bytes.Compare(x[:], y[:])
	case KindBinary:
		return bytes.Compare(a.(Binary), b.(Binary))
	case KindArray:
		return compareSeq(a.(Array), b.(Array))
	case KindMultiset:
		// Multisets are unordered bags: compare their sorted element lists.
		return compareMultisets(a.(Multiset), b.(Multiset))
	case KindObject:
		return compareObjects(a.(*Object), b.(*Object))
	}
	return 0
}

// compareMultisets compares two bags by their sorted element orders.
// Bags up to smallObjectFields elements sort through stack-resident
// index arrays; only wider ones fall back to the allocating sorted-copy
// path.
func compareMultisets(x, y Multiset) int {
	nx, ny := len(x), len(y)
	if nx > smallObjectFields || ny > smallObjectFields {
		//lint:ignore hot-alloc wide multiset (> 16 elements) takes the allocating sorted-copy slow path; typical keys stay on the stack path above
		return compareSeq(sortedElems(x), sortedElems(y))
	}
	var bx, by [smallObjectFields]int32
	ix, iy := bx[:nx], by[:ny]
	sortedValueIdx(x, ix)
	sortedValueIdx(y, iy)
	n := nx
	if ny < n {
		n = ny
	}
	for i := 0; i < n; i++ {
		if c := Compare(x[ix[i]], y[iy[i]]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(nx), int64(ny))
}

// compareObjects compares by name-sorted field lists. Objects up to
// smallObjectFields fields sort through stack-resident index arrays.
func compareObjects(x, y *Object) int {
	nx, ny := len(x.fields), len(y.fields)
	if nx > smallObjectFields || ny > smallObjectFields {
		//lint:ignore hot-alloc wide object (> 16 fields) takes the allocating sorted-copy slow path; typical records stay on the stack path above
		return compareFieldSeq(x.sortedFields(), y.sortedFields())
	}
	var bx, by [smallObjectFields]int32
	ix, iy := bx[:nx], by[:ny]
	x.sortedIdx(ix)
	y.sortedIdx(iy)
	n := nx
	if ny < n {
		n = ny
	}
	for i := 0; i < n; i++ {
		fx, fy := &x.fields[ix[i]], &y.fields[iy[i]]
		if fx.Name != fy.Name {
			if fx.Name < fy.Name {
				return -1
			}
			return 1
		}
		if c := Compare(fx.Value, fy.Value); c != 0 {
			return c
		}
	}
	return cmpInt(int64(nx), int64(ny))
}

func compareFieldSeq(x, y []Field) int {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		if x[i].Name != y[i].Name {
			if x[i].Name < y[i].Name {
				return -1
			}
			return 1
		}
		if c := Compare(x[i].Value, y[i].Value); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(x)), int64(len(y)))
}

// sortedValueIdx writes the Compare-sorted order of vals into idx
// (insertion sort: quadratic, but only ever run on small inputs, and it
// keeps the whole sort allocation-free).
func sortedValueIdx(vals []Value, idx []int32) {
	for i := range vals {
		j := i
		for j > 0 && Compare(vals[idx[j-1]], vals[i]) > 0 {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = int32(i)
	}
}

func sortedElems(m Multiset) []Value {
	s := make([]Value, len(m))
	copy(s, m)
	sort.Slice(s, func(i, j int) bool { return Compare(s[i], s[j]) < 0 })
	return s
}

func compareSeq(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports deep equality under Compare's semantics. Note that like
// Compare it treats int64(2) and double(2.0) as equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a parameters (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash64 computes a 64-bit hash of a value, consistent with Equal: equal
// values hash identically (numerics hash via their float64 image). The
// FNV-1a fold is inlined over a plain uint64 state — the earlier
// hash/fnv version allocated the hash object and boxed every Write —
// and produces bit-identical results to it.
func Hash64(v Value) uint64 {
	return hashValue(fnvOffset64, v)
}

// hashValue folds v into the running FNV-1a state h.
func hashValue(h uint64, v Value) uint64 {
	k := v.Kind()
	if k == KindDouble || k == KindInt64 {
		h = fnvByte(h, byte(KindDouble)) // numeric types hash uniformly
	} else {
		h = fnvByte(h, byte(k))
	}
	switch x := v.(type) {
	case missingValue, nullValue:
	case Boolean:
		if x {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	case Int64:
		h = fnvU64(h, math.Float64bits(float64(x)))
	case Double:
		h = fnvU64(h, math.Float64bits(float64(x)))
	case String:
		h = fnvString(h, string(x))
	case Date:
		h = fnvU64(h, uint64(int64(x)))
	case Time:
		h = fnvU64(h, uint64(int64(x)))
	case Datetime:
		h = fnvU64(h, uint64(int64(x)))
	case Duration:
		h = fnvU64(h, uint64(int64(x.Months)))
		h = fnvU64(h, uint64(x.Millis))
	case Point:
		h = fnvU64(h, math.Float64bits(x.X))
		h = fnvU64(h, math.Float64bits(x.Y))
	case Rectangle:
		h = fnvU64(h, math.Float64bits(x.MinX))
		h = fnvU64(h, math.Float64bits(x.MinY))
		h = fnvU64(h, math.Float64bits(x.MaxX))
		h = fnvU64(h, math.Float64bits(x.MaxY))
	case UUID:
		h = fnvBytes(h, x[:])
	case Binary:
		h = fnvBytes(h, x)
	case Array:
		for _, e := range x {
			h = hashValue(h, e)
		}
	case Multiset:
		// Order-insensitive: XOR of element hashes folded in.
		var acc uint64
		for _, e := range x {
			acc ^= Hash64(e)
		}
		h = fnvU64(h, acc)
	case *Object:
		if n := len(x.fields); n <= smallObjectFields {
			var buf [smallObjectFields]int32
			idx := buf[:n]
			x.sortedIdx(idx)
			for _, i := range idx {
				f := &x.fields[i]
				h = fnvString(h, f.Name)
				h = hashValue(h, f.Value)
			}
		} else {
			//lint:ignore hot-alloc wide object (> 16 fields) takes the allocating sorted-copy slow path; typical records stay on the stack path above
			for _, f := range x.sortedFields() {
				h = fnvString(h, f.Name)
				h = hashValue(h, f.Value)
			}
		}
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvU64(h, u uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ uint64(byte(u>>i))) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// fnvString folds a string without converting it to []byte.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}
