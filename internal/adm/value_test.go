package adm

import (
	"math/rand"
	"testing"
)

func TestKindOrder(t *testing.T) {
	ordered := []Kind{KindMissing, KindNull, KindBoolean, KindInt64, KindDouble,
		KindString, KindDate, KindTime, KindDatetime, KindDuration, KindPoint,
		KindRectangle, KindUUID, KindBinary, KindArray, KindMultiset, KindObject}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1] >= ordered[i] {
			t.Fatalf("kind order broken at %s >= %s", ordered[i-1], ordered[i])
		}
	}
}

func TestObjectBasics(t *testing.T) {
	o := NewObject(
		Field{"id", Int64(1)},
		Field{"name", String("alice")},
	)
	if got := o.Get("id"); !Equal(got, Int64(1)) {
		t.Errorf("Get(id) = %v", got)
	}
	if got := o.Get("nope"); got.Kind() != KindMissing {
		t.Errorf("Get(nope) = %v, want missing", got)
	}
	o.Set("name", String("bob"))
	if got := o.Get("name"); !Equal(got, String("bob")) {
		t.Errorf("after Set, name = %v", got)
	}
	if o.Len() != 2 {
		t.Errorf("Len = %d, want 2", o.Len())
	}
	w := o.Without("name")
	if w.Has("name") || !w.Has("id") {
		t.Errorf("Without(name) kept wrong fields: %v", w)
	}
	if o.Len() != 2 {
		t.Errorf("Without mutated receiver")
	}
}

func TestValueStringLiterals(t *testing.T) {
	dt, _ := ParseDatetime("2017-01-01T00:00:00")
	cases := []struct {
		v    Value
		want string
	}{
		{Missing, "missing"},
		{Null, "null"},
		{Boolean(true), "true"},
		{Int64(-42), "-42"},
		{Double(2.5), "2.5"},
		{Double(3), "3.0"},
		{String("hi"), `"hi"`},
		{dt, `datetime("2017-01-01T00:00:00")`},
		{Point{1, 2}, `point("1,2")`},
		{Array{Int64(1), Int64(2)}, "[1,2]"},
		{Multiset{Int64(1)}, "{{1}}"},
		{NewObject(Field{"a", Int64(1)}), `{"a":1}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v-kind) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(Int64(2), Double(2.0)) != 0 {
		t.Error("int64 2 should equal double 2.0")
	}
	if Compare(Int64(2), Double(2.5)) != -1 {
		t.Error("int64 2 should be < double 2.5")
	}
	if Compare(Double(-1), Int64(0)) != -1 {
		t.Error("double -1 should be < int64 0")
	}
}

func TestCompareCollections(t *testing.T) {
	a := Array{Int64(1), Int64(2)}
	b := Array{Int64(1), Int64(3)}
	if Compare(a, b) != -1 {
		t.Error("[1,2] < [1,3]")
	}
	if Compare(a, Array{Int64(1)}) != 1 {
		t.Error("[1,2] > [1]")
	}
	o1 := NewObject(Field{"b", Int64(2)}, Field{"a", Int64(1)})
	o2 := NewObject(Field{"a", Int64(1)}, Field{"b", Int64(2)})
	if Compare(o1, o2) != 0 {
		t.Error("objects should compare field-name-sorted, ignoring insertion order")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int64(7), Double(7)},
		{NewObject(Field{"a", Int64(1)}, Field{"b", Int64(2)}),
			NewObject(Field{"b", Int64(2)}, Field{"a", Int64(1)})},
		{Multiset{Int64(1), Int64(2)}, Multiset{Int64(2), Int64(1)}},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("expected %v == %v", p[0], p[1])
		}
		if Hash64(p[0]) != Hash64(p[1]) {
			t.Errorf("hashes differ for equal values %v and %v", p[0], p[1])
		}
	}
	if Hash64(Int64(1)) == Hash64(Int64(2)) {
		t.Error("suspicious hash collision for 1 and 2")
	}
}

func TestTruthy(t *testing.T) {
	if v, ok := Truthy(Boolean(true)); !v || !ok {
		t.Error("true should be truthy and known")
	}
	if v, ok := Truthy(Boolean(false)); v || !ok {
		t.Error("false should be falsy and known")
	}
	if _, ok := Truthy(Null); ok {
		t.Error("null truthiness should be unknown")
	}
	if _, ok := Truthy(Int64(1)); ok {
		t.Error("non-boolean truthiness should be unknown (SQL++ strictness)")
	}
}

// randomValue generates an arbitrary ADM value of bounded depth.
func randomValue(r *rand.Rand, depth int) Value {
	max := 13
	if depth > 0 {
		max = 16
	}
	switch r.Intn(max) {
	case 0:
		return Missing
	case 1:
		return Null
	case 2:
		return Boolean(r.Intn(2) == 0)
	case 3:
		return Int64(r.Int63() - r.Int63())
	case 4:
		return Double(r.NormFloat64() * 1e6)
	case 5:
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(b)
	case 6:
		return Date(r.Int31n(50000) - 25000)
	case 7:
		return Time(r.Int31n(86400000))
	case 8:
		return Datetime(r.Int63n(4e12) - 2e12)
	case 9:
		return Duration{Months: r.Int31n(100), Millis: r.Int63n(1e10)}
	case 10:
		return Point{X: r.NormFloat64() * 100, Y: r.NormFloat64() * 100}
	case 11:
		x1, y1 := r.Float64()*100, r.Float64()*100
		return Rectangle{MinX: x1, MinY: y1, MaxX: x1 + r.Float64()*10, MaxY: y1 + r.Float64()*10}
	case 12:
		b := make(Binary, r.Intn(12))
		r.Read(b)
		return b
	case 13:
		n := r.Intn(4)
		a := make(Array, n)
		for i := range a {
			a[i] = randomValue(r, depth-1)
		}
		return a
	case 14:
		n := r.Intn(4)
		m := make(Multiset, n)
		for i := range m {
			m[i] = randomValue(r, depth-1)
		}
		return m
	default:
		n := r.Intn(5)
		o := NewObject()
		for i := 0; i < n; i++ {
			o.Set(string(rune('a'+r.Intn(8))), randomValue(r, depth-1))
		}
		return o
	}
}

// Property: encode/decode round-trips every value.
func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		v := randomValue(r, 3)
		data := EncodeValue(v)
		got, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if Compare(v, got) != 0 {
			t.Fatalf("round trip changed value: %v -> %v", v, got)
		}
	}
}

// Property: Compare is a total order (antisymmetric, transitive on samples,
// reflexive).
func TestPropCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]Value, 60)
	for i := range vals {
		vals[i] = randomValue(r, 2)
	}
	for _, a := range vals {
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, same) != 0", a)
		}
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("antisymmetry violated: %v vs %v", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

// Property: equal values hash equal.
func TestPropHashRespectsEquality(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 2)
		data := EncodeValue(v)
		w, err := DecodeValue(data)
		if err != nil {
			t.Fatal(err)
		}
		if Hash64(v) != Hash64(w) {
			t.Fatalf("hash not stable across encode/decode for %v", v)
		}
	}
}
