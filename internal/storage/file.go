// Package storage provides the lowest layer of the stack: page-structured
// files on one or more I/O devices and a pin/unpin buffer cache with CLOCK
// eviction. Every persistent index (B+tree, R-tree, linear hash, LSM disk
// components) performs its I/O through this package, so its statistics are
// the system's I/O ground truth (the substrate behind Figure 2 of the
// paper).
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"asterix/internal/fault"
)

// FileID identifies an open page file within a FileManager.
type FileID int32

// PageID names one page of one file.
type PageID struct {
	File FileID
	Num  int32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.Num) }

// FileManager owns page-structured files under a root directory (one
// "I/O device"). All methods are safe for concurrent use.
type FileManager struct {
	mu       sync.Mutex
	root     string
	pageSize int
	files    map[FileID]*pageFile
	byName   map[string]FileID
	nextID   FileID
}

type pageFile struct {
	name  string
	f     *os.File
	pages int32
}

// NewFileManager creates a file manager rooted at dir, creating it if
// needed.
func NewFileManager(dir string, pageSize int) (*FileManager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &FileManager{
		root:     dir,
		pageSize: pageSize,
		files:    make(map[FileID]*pageFile),
		byName:   make(map[string]FileID),
	}, nil
}

// PageSize returns the page size in bytes.
func (fm *FileManager) PageSize() int { return fm.pageSize }

// Root returns the root directory.
func (fm *FileManager) Root() string { return fm.root }

// Open opens (creating if absent) the named page file and returns its id.
// Names may contain '/' subdirectories.
func (fm *FileManager) Open(name string) (FileID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if id, ok := fm.byName[name]; ok {
		return id, nil
	}
	path := filepath.Join(fm.root, filepath.FromSlash(name))
	//lint:ignore lock-held name->id assignment must be atomic with file creation; opens are rare and short
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("storage: open %s: %w", name, err)
	}
	//lint:ignore lock-held name->id assignment must be atomic with file creation; opens are rare and short
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: open %s: %w", name, err)
	}
	//lint:ignore lock-held name->id assignment must be atomic with file creation; opens are rare and short
	st, err := f.Stat()
	if err != nil {
		//lint:ignore lock-held error path of a rare open; the handle must not leak
		return 0, errors.Join(fmt.Errorf("storage: stat %s: %w", name, err), f.Close())
	}
	id := fm.nextID
	fm.nextID++
	fm.files[id] = &pageFile{name: name, f: f, pages: int32(st.Size() / int64(fm.pageSize))}
	fm.byName[name] = id
	return id, nil
}

// NumPages returns the number of allocated pages in the file.
func (fm *FileManager) NumPages(id FileID) (int32, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	pf, ok := fm.files[id]
	if !ok {
		return 0, fmt.Errorf("storage: unknown file %d", id)
	}
	return pf.pages, nil
}

// Allocate extends the file by one zeroed page and returns its number.
func (fm *FileManager) Allocate(id FileID) (int32, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	pf, ok := fm.files[id]
	if !ok {
		return 0, fmt.Errorf("storage: unknown file %d", id)
	}
	n := pf.pages
	pf.pages++
	zero := make([]byte, fm.pageSize)
	//lint:ignore lock-held the page count and the extending write must be atomic or two allocators hand out the same page
	if _, err := pf.f.WriteAt(zero, int64(n)*int64(fm.pageSize)); err != nil {
		return 0, fmt.Errorf("storage: extend %s: %w", pf.name, err)
	}
	return n, nil
}

// ReadPage reads page num of file id into buf (len must equal page size).
func (fm *FileManager) ReadPage(id FileID, num int32, buf []byte) error {
	fm.mu.Lock()
	pf, ok := fm.files[id]
	fm.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: unknown file %d", id)
	}
	if _, err := pf.f.ReadAt(buf, int64(num)*int64(fm.pageSize)); err != nil {
		return fmt.Errorf("storage: read %s page %d: %w", pf.name, num, err)
	}
	return nil
}

// WritePage writes buf to page num of file id.
func (fm *FileManager) WritePage(id FileID, num int32, buf []byte) error {
	fm.mu.Lock()
	pf, ok := fm.files[id]
	fm.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: unknown file %d", id)
	}
	if err := fault.Hit(fault.PointPageWrite); err != nil {
		return fmt.Errorf("storage: write %s page %d: %w", pf.name, num, err)
	}
	if _, err := pf.f.WriteAt(buf, int64(num)*int64(fm.pageSize)); err != nil {
		return fmt.Errorf("storage: write %s page %d: %w", pf.name, num, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (fm *FileManager) Sync(id FileID) error {
	fm.mu.Lock()
	pf, ok := fm.files[id]
	fm.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: unknown file %d", id)
	}
	return pf.f.Sync()
}

// Delete closes and removes the named file.
func (fm *FileManager) Delete(name string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	id, ok := fm.byName[name]
	var cerr error
	if ok {
		pf := fm.files[id]
		//lint:ignore lock-held table removal must be atomic with closing or a reader revives the dying handle
		cerr = pf.f.Close()
		delete(fm.files, id)
		delete(fm.byName, name)
	}
	path := filepath.Join(fm.root, filepath.FromSlash(name))
	//lint:ignore lock-held table removal must be atomic with the unlink; deletes are rare and short
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return errors.Join(fmt.Errorf("storage: delete %s: %w", name, err), cerr)
	}
	return cerr
}

// Name returns the name a file was opened under.
func (fm *FileManager) Name(id FileID) string {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if pf, ok := fm.files[id]; ok {
		return pf.name
	}
	return ""
}

// Close closes all open files.
func (fm *FileManager) Close() error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	var firstErr error
	for _, pf := range fm.files {
		//lint:ignore lock-held shutdown path: the table is emptied atomically with closing the handles
		if err := pf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	fm.files = make(map[FileID]*pageFile)
	fm.byName = make(map[string]FileID)
	return firstErr
}
