package storage

import (
	"fmt"
	"sync"
)

// Page is a pinned buffer-cache frame. The caller may read Data freely and
// write it only if it will Unpin with dirty=true.
type Page struct {
	ID   PageID
	Data []byte

	frame int // index in the cache's frame table
}

// Stats counts buffer-cache activity. Reads/Writes are physical I/Os; a
// high hit ratio is the point of Figure 2's buffer cache.
type Stats struct {
	Hits   int64
	Misses int64
	Reads  int64
	Writes int64
}

// HitRatio returns hits / (hits+misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type frame struct {
	page  Page
	valid bool
	dirty bool
	pins  int
	ref   bool // CLOCK reference bit
}

// BufferCache is a fixed-size page cache over a FileManager, with pin/unpin
// semantics and CLOCK (second-chance) eviction. It is safe for concurrent
// use.
type BufferCache struct {
	fm *FileManager

	mu     sync.Mutex
	frames []frame
	table  map[PageID]int
	hand   int
	stats  Stats
}

// NewBufferCache creates a cache of numFrames pages over fm.
func NewBufferCache(fm *FileManager, numFrames int) *BufferCache {
	if numFrames < 1 {
		numFrames = 1
	}
	bc := &BufferCache{
		fm:     fm,
		frames: make([]frame, numFrames),
		table:  make(map[PageID]int, numFrames),
	}
	for i := range bc.frames {
		bc.frames[i].page.Data = make([]byte, fm.PageSize())
		bc.frames[i].page.frame = i
	}
	return bc
}

// FileManager returns the underlying file manager.
func (bc *BufferCache) FileManager() *FileManager { return bc.fm }

// CapacityBytes returns the cache's fixed memory footprint (frames ×
// page size) — the buffer-cache slice of the Figure 2 budget that the
// memory governor reports as permanently reserved.
func (bc *BufferCache) CapacityBytes() int64 {
	return int64(len(bc.frames)) * int64(bc.fm.PageSize())
}

// Pin fetches the page into the cache (reading it if absent) and pins it.
func (bc *BufferCache) Pin(pid PageID) (*Page, error) {
	bc.mu.Lock()
	if i, ok := bc.table[pid]; ok {
		f := &bc.frames[i]
		f.pins++
		f.ref = true
		bc.stats.Hits++
		p := &f.page
		bc.mu.Unlock()
		return p, nil
	}
	bc.stats.Misses++
	//lint:ignore hot-alloc cache-miss eviction path: runs only when the working set outgrows the pool, and its cost is the page I/O, not the error-path allocations
	i, err := bc.evictLocked()
	if err != nil {
		bc.mu.Unlock()
		return nil, err
	}
	f := &bc.frames[i]
	f.page.ID = pid
	f.valid = true
	f.dirty = false
	f.pins = 1
	f.ref = true
	bc.table[pid] = i
	bc.stats.Reads++
	// Read outside the lock would need per-frame latching; at this
	// system's scale a short critical section is the simpler invariant.
	//lint:ignore hot-alloc cache-miss disk read: the page I/O dominates; ReadPage's error-path formatting never runs on the hot path
	if err := bc.fm.ReadPage(pid.File, pid.Num, f.page.Data); err != nil {
		f.valid = false
		f.pins = 0
		delete(bc.table, pid)
		bc.mu.Unlock()
		return nil, err
	}
	p := &f.page
	bc.mu.Unlock()
	return p, nil
}

// NewPage allocates a fresh page at the end of the file and returns it
// pinned and zeroed (counted as a logical write, not a read).
func (bc *BufferCache) NewPage(file FileID) (*Page, error) {
	num, err := bc.fm.Allocate(file)
	if err != nil {
		return nil, err
	}
	pid := PageID{File: file, Num: num}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	i, err := bc.evictLocked()
	if err != nil {
		return nil, err
	}
	f := &bc.frames[i]
	f.page.ID = pid
	for j := range f.page.Data {
		f.page.Data[j] = 0
	}
	f.valid = true
	f.dirty = true
	f.pins = 1
	f.ref = true
	bc.table[pid] = i
	return &f.page, nil
}

// Unpin releases a pin; dirty marks the page modified.
func (bc *BufferCache) Unpin(p *Page, dirty bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	f := &bc.frames[p.frame]
	if !f.valid || f.page.ID != p.ID {
		panic(fmt.Sprintf("storage: unpin of unowned page %v", p.ID))
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: double unpin of page %v", p.ID))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// evictLocked finds a free or evictable frame using the CLOCK policy,
// writing back a dirty victim. Caller holds bc.mu.
func (bc *BufferCache) evictLocked() (int, error) {
	n := len(bc.frames)
	for pass := 0; pass < 2*n+1; pass++ {
		i := bc.hand
		bc.hand = (bc.hand + 1) % n
		f := &bc.frames[i]
		if !f.valid {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false // second chance
			continue
		}
		if f.dirty {
			bc.stats.Writes++
			if err := bc.fm.WritePage(f.page.ID.File, f.page.ID.Num, f.page.Data); err != nil {
				return 0, err
			}
		}
		delete(bc.table, f.page.ID)
		f.valid = false
		return i, nil
	}
	return 0, fmt.Errorf("storage: buffer cache exhausted (all %d frames pinned)", n)
}

// FlushFile writes back all dirty cached pages of the file.
func (bc *BufferCache) FlushFile(file FileID) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for i := range bc.frames {
		f := &bc.frames[i]
		if f.valid && f.dirty && f.page.ID.File == file {
			bc.stats.Writes++
			if err := bc.fm.WritePage(f.page.ID.File, f.page.ID.Num, f.page.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// FlushAll writes back every dirty page.
func (bc *BufferCache) FlushAll() error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for i := range bc.frames {
		f := &bc.frames[i]
		if f.valid && f.dirty {
			bc.stats.Writes++
			if err := bc.fm.WritePage(f.page.ID.File, f.page.ID.Num, f.page.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Evict drops all cached pages of the file (flushing dirty ones). Used
// when a file is deleted after an LSM merge.
func (bc *BufferCache) Evict(file FileID) error {
	if err := bc.FlushFile(file); err != nil {
		return err
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for i := range bc.frames {
		f := &bc.frames[i]
		if f.valid && f.page.ID.File == file {
			if f.pins > 0 {
				return fmt.Errorf("storage: evicting pinned page %v", f.page.ID)
			}
			delete(bc.table, f.page.ID)
			f.valid = false
		}
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (bc *BufferCache) Stats() Stats {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.stats
}

// ResetStats zeroes the counters (benchmark harness support). Safe to
// call concurrently with running jobs: counters are guarded by the cache
// mutex, so a concurrent reset only discards updates that happened-before
// it, never tears a snapshot.
func (bc *BufferCache) ResetStats() {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.stats = Stats{}
}
