package storage

import "fmt"

// Validate verifies the buffer cache's internal accounting:
//
//   - every page-table entry points at a valid frame holding that page;
//   - every valid frame is reachable through the table (no orphans, and
//     hence no two frames caching the same page);
//   - pin counts are never negative;
//   - every frame's buffer is exactly one page.
//
// Safe to call concurrently with cache traffic; it holds the cache mutex
// for the duration of the walk.
func (bc *BufferCache) Validate() error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	valid := 0
	for i := range bc.frames {
		f := &bc.frames[i]
		if len(f.page.Data) != bc.fm.PageSize() {
			return fmt.Errorf("storage: frame %d buffer is %d bytes, page size is %d", i, len(f.page.Data), bc.fm.PageSize())
		}
		if f.page.frame != i {
			return fmt.Errorf("storage: frame %d back-pointer says %d", i, f.page.frame)
		}
		if f.pins < 0 {
			return fmt.Errorf("storage: frame %d has negative pin count %d", i, f.pins)
		}
		if !f.valid {
			if f.pins != 0 {
				return fmt.Errorf("storage: invalid frame %d holds %d pins", i, f.pins)
			}
			continue
		}
		valid++
		j, ok := bc.table[f.page.ID]
		if !ok {
			return fmt.Errorf("storage: frame %d caches page %v not present in the table", i, f.page.ID)
		}
		if j != i {
			return fmt.Errorf("storage: page %v cached in frames %d and %d", f.page.ID, i, j)
		}
	}
	if len(bc.table) != valid {
		return fmt.Errorf("storage: table has %d entries but %d frames are valid", len(bc.table), valid)
	}
	return nil
}

// Pinned returns the total pin count across all frames. A quiescent cache
// (no operation in flight) must report zero: every Pin is matched by an
// Unpin. Tests assert this between operations to catch pin leaks.
func (bc *BufferCache) Pinned() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	total := 0
	for i := range bc.frames {
		if bc.frames[i].valid {
			total += bc.frames[i].pins
		}
	}
	return total
}
