package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"asterix/internal/check"
)

// validateQuiescent runs the cache's deep accounting validator and
// asserts every pin has been released.
func validateQuiescent(t *testing.T, bc *BufferCache) {
	t.Helper()
	check.MustValidate(t, bc)
	if n := bc.Pinned(); n != 0 {
		t.Errorf("quiescent cache holds %d pins", n)
	}
}

func newFM(t *testing.T, pageSize int) *FileManager {
	t.Helper()
	fm, err := NewFileManager(t.TempDir(), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	return fm
}

func TestFileManagerAllocateReadWrite(t *testing.T) {
	fm := newFM(t, 512)
	id, err := fm.Open("ds/part0/primary")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fm.NumPages(id); n != 0 {
		t.Fatalf("new file has %d pages", n)
	}
	p0, err := fm.Allocate(id)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := fm.Allocate(id)
	if p0 != 0 || p1 != 1 {
		t.Fatalf("allocation order: %d, %d", p0, p1)
	}
	buf := make([]byte, 512)
	copy(buf, "hello page")
	if err := fm.WritePage(id, 1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := fm.ReadPage(id, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("read != write")
	}
	// Page 0 must be zeroed.
	if err := fm.ReadPage(id, 0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
}

func TestFileManagerReopenSameID(t *testing.T) {
	fm := newFM(t, 256)
	a, _ := fm.Open("x")
	b, _ := fm.Open("x")
	if a != b {
		t.Error("reopening should return same id")
	}
	if fm.Name(a) != "x" {
		t.Errorf("Name = %q", fm.Name(a))
	}
}

func TestFileManagerDelete(t *testing.T) {
	fm := newFM(t, 256)
	id, _ := fm.Open("gone")
	if _, err := fm.Allocate(id); err != nil {
		t.Fatal(err)
	}
	if err := fm.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	id2, err := fm.Open("gone")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fm.NumPages(id2); n != 0 {
		t.Error("deleted file not empty on reopen")
	}
	// Deleting a nonexistent file is not an error.
	if err := fm.Delete("never-existed"); err != nil {
		t.Errorf("delete nonexistent: %v", err)
	}
}

func TestBufferCacheHitAndMiss(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 4)
	id, _ := fm.Open("f")
	p, err := bc.NewPage(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data, "cached!")
	pid := p.ID
	bc.Unpin(p, true)

	p2, err := bc.Pin(pid)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2.Data[:7]) != "cached!" {
		t.Error("cache lost page content")
	}
	bc.Unpin(p2, false)
	st := bc.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
	if st.Reads != 0 {
		t.Errorf("reads = %d, want 0 (page never left cache)", st.Reads)
	}
	validateQuiescent(t, bc)
}

func TestBufferCacheEvictionWritesBack(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 2) // tiny cache forces eviction
	id, _ := fm.Open("f")
	var pids []PageID
	for i := 0; i < 5; i++ {
		p, err := bc.NewPage(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Data[0] = byte(i + 1)
		pids = append(pids, p.ID)
		bc.Unpin(p, true)
	}
	// All five pages must be readable with correct content.
	for i, pid := range pids {
		p, err := bc.Pin(pid)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data[0] != byte(i+1) {
			t.Errorf("page %d content lost: %d", i, p.Data[0])
		}
		bc.Unpin(p, false)
	}
	if st := bc.Stats(); st.Writes == 0 {
		t.Error("evictions should have caused physical writes")
	}
	validateQuiescent(t, bc)
}

func TestBufferCacheAllPinnedFails(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 2)
	id, _ := fm.Open("f")
	a, _ := bc.NewPage(id)
	b, _ := bc.NewPage(id)
	if _, err := bc.NewPage(id); err == nil {
		t.Error("pinning beyond capacity must fail")
	}
	bc.Unpin(a, false)
	bc.Unpin(b, false)
	if _, err := bc.NewPage(id); err != nil {
		t.Errorf("after unpinning, allocation should work: %v", err)
	}
}

func TestBufferCacheDoubleUnpinPanics(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 2)
	id, _ := fm.Open("f")
	p, _ := bc.NewPage(id)
	bc.Unpin(p, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	bc.Unpin(p, false)
}

func TestBufferCacheFlushAndEvict(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 8)
	id, _ := fm.Open("f")
	p, _ := bc.NewPage(id)
	copy(p.Data, "durable")
	pid := p.ID
	bc.Unpin(p, true)
	if err := bc.FlushFile(id); err != nil {
		t.Fatal(err)
	}
	// Direct file read must see flushed content.
	raw := make([]byte, 256)
	if err := fm.ReadPage(id, pid.Num, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[:7]) != "durable" {
		t.Error("flush did not reach disk")
	}
	if err := bc.Evict(id); err != nil {
		t.Fatal(err)
	}
	// Re-pin must do a physical read.
	before := bc.Stats().Reads
	p2, err := bc.Pin(pid)
	if err != nil {
		t.Fatal(err)
	}
	bc.Unpin(p2, false)
	if bc.Stats().Reads != before+1 {
		t.Error("evict should have dropped the page from cache")
	}
	validateQuiescent(t, bc)
}

func TestBufferCacheConcurrentAccess(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 16)
	id, _ := fm.Open("f")
	var pids []PageID
	for i := 0; i < 32; i++ {
		p, err := bc.NewPage(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Data[0] = byte(i)
		pids = append(pids, p.ID)
		bc.Unpin(p, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pid := pids[(seed*31+i)%len(pids)]
				p, err := bc.Pin(pid)
				if err != nil {
					errCh <- err
					return
				}
				if p.Data[0] != byte(pid.Num) {
					errCh <- fmt.Errorf("page %v content %d", pid, p.Data[0])
					bc.Unpin(p, false)
					return
				}
				bc.Unpin(p, false)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	validateQuiescent(t, bc)
}

func TestStatsHitRatio(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Errorf("hit ratio = %f", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty stats ratio should be 0")
	}
}
