package storage

import "testing"

func TestValidateDetectsNegativePins(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 4)
	id, _ := fm.Open("f")
	p, err := bc.NewPage(id)
	if err != nil {
		t.Fatal(err)
	}
	bc.Unpin(p, false)
	if err := bc.Validate(); err != nil {
		t.Fatalf("healthy cache failed validation: %v", err)
	}
	bc.mu.Lock()
	bc.frames[p.frame].pins = -1
	bc.mu.Unlock()
	if err := bc.Validate(); err == nil {
		t.Fatal("validator missed a negative pin count")
	}
	bc.mu.Lock()
	bc.frames[p.frame].pins = 0
	bc.mu.Unlock()
}

func TestValidateDetectsOrphanFrame(t *testing.T) {
	fm := newFM(t, 256)
	bc := NewBufferCache(fm, 4)
	id, _ := fm.Open("f")
	p, err := bc.NewPage(id)
	if err != nil {
		t.Fatal(err)
	}
	bc.Unpin(p, false)
	bc.mu.Lock()
	delete(bc.table, p.ID)
	bc.mu.Unlock()
	if err := bc.Validate(); err == nil {
		t.Fatal("validator missed a valid frame absent from the page table")
	}
	bc.mu.Lock()
	bc.table[p.ID] = p.frame
	bc.mu.Unlock()
}
