// Package anet is the TCP frame transport behind the hyracks Transport
// interface: a length-prefixed, CRC-checked message protocol carrying
// data frames, per-channel credit grants, end-of-stream markers,
// heartbeats, and opaque control messages between the node processes of
// a multi-process cluster. It owns connection pooling with
// reconnect-on-failure (bounded exponential backoff plus seedable
// jitter), per-frame write deadlines, heartbeat-based peer failure
// detection, and the network fault points (net.drop, net.delay,
// net.partition, net.conn.reset).
//
// The package is named anet so importers are never ambiguous against
// the stdlib net package it is built on.
package anet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
)

// Wire format: every message is a 12-byte header followed by a payload.
//
//	offset  size  field
//	0       2     magic 0xA5 0x7E
//	2       1     message type
//	3       1     flags (reserved, 0)
//	4       4     payload length, big-endian
//	8       4     CRC-32C (Castagnoli) of the payload, big-endian
//
// The CRC is over the payload only: a torn or corrupted frame fails the
// check and the connection is reset — a frame is either delivered whole
// or the stream breaks, never silently truncated.
const (
	headerLen  = 12
	magic0     = 0xA5
	magic1     = 0x7E
	maxPayload = 64 << 20 // hard cap: reject absurd lengths before allocating
)

// Message types.
const (
	msgHello     = byte(1) // payload: sender node id (raw bytes)
	msgHeartbeat = byte(2) // payload: empty
	msgData      = byte(3) // payload: jobID, edge, channel, tuple frame
	msgEOS       = byte(4) // payload: jobID, edge — one producer finished the edge
	msgCredit    = byte(5) // payload: jobID, edge, channel, n — consumer window return
	msgControl   = byte(6) // payload: opaque control-plane bytes (internal/dist)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendMsg appends a framed message (header + payload) to buf.
func appendMsg(buf []byte, typ byte, payload []byte) []byte {
	var h [headerLen]byte
	h[0], h[1] = magic0, magic1
	h[2] = typ
	binary.BigEndian.PutUint32(h[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(h[8:12], crc32.Checksum(payload, crcTable))
	buf = append(buf, h[:]...)
	return append(buf, payload...)
}

// readMsg reads one framed message, validating magic, length bound, and
// payload CRC. A validation failure is a protocol error: the caller must
// reset the connection (the stream can no longer be trusted).
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	typ, payload, err = decodeHeaderAndBodyInto(h, r, nil)
	return typ, payload, err
}

// readMsgReuse is readMsg with a per-connection decode scratch buffer: the
// payload decodes into scratch when it fits (one allocation per high-water
// mark instead of one per message), and the possibly-grown scratch is
// returned for the connection's next read. The payload therefore ALIASES
// scratch — it is valid only until the next readMsgReuse on the same
// scratch, so the caller must fully consume or copy it first. Data frames
// qualify (adm.Decode copies string and binary bytes out of the payload);
// control payloads that outlive the dispatch must be copied.
func readMsgReuse(r io.Reader, scratch []byte) (typ byte, payload, next []byte, err error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, scratch, err
	}
	typ, payload, err = decodeHeaderAndBodyInto(h, r, scratch)
	if cap(payload) > cap(scratch) {
		scratch = payload[:0]
	}
	return typ, payload, scratch, err
}

func decodeHeaderAndBodyInto(h [headerLen]byte, r io.Reader, scratch []byte) (byte, []byte, error) {
	if h[0] != magic0 || h[1] != magic1 {
		return 0, nil, fmt.Errorf("anet: bad magic %02x%02x", h[0], h[1])
	}
	n := binary.BigEndian.Uint32(h[4:8])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("anet: payload length %d exceeds cap", n)
	}
	var payload []byte
	if uint32(cap(scratch)) >= n {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("anet: short payload: %w", err)
	}
	want := binary.BigEndian.Uint32(h[8:12])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return 0, nil, fmt.Errorf("anet: payload CRC mismatch (got %08x want %08x)", got, want)
	}
	return h[2], payload, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", nil, fmt.Errorf("anet: bad string length")
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return 0, nil, fmt.Errorf("anet: bad uvarint")
	}
	return n, p[w:], nil
}

// edgeRef is the (job attempt, edge) address shared by data, EOS, and
// credit payloads.
type edgeRef struct {
	jobID string
	edge  int
}

func appendEdgeRef(buf []byte, ref edgeRef) []byte {
	buf = appendString(buf, ref.jobID)
	return binary.AppendUvarint(buf, uint64(ref.edge))
}

func readEdgeRef(p []byte) (edgeRef, []byte, error) {
	var ref edgeRef
	var err error
	if ref.jobID, p, err = readString(p); err != nil {
		return ref, nil, err
	}
	e, p, err := readUvarint(p)
	if err != nil {
		return ref, nil, err
	}
	ref.edge = int(e)
	return ref, p, nil
}

// encodeDataPayload serializes one frame for a (job, edge, channel):
// edge ref, channel, tuple count, then each tuple as a column count
// followed by binary ADM values.
func encodeDataPayload(buf []byte, ref edgeRef, ch int, frame []hyracks.Tuple) []byte {
	buf = appendEdgeRef(buf, ref)
	buf = binary.AppendUvarint(buf, uint64(ch))
	buf = binary.AppendUvarint(buf, uint64(len(frame)))
	for _, t := range frame {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, v := range t {
			buf = adm.Encode(buf, v)
		}
	}
	return buf
}

// decodeDataPayload is the inverse of encodeDataPayload. It validates
// every length against the remaining input, so truncated or fuzzed
// payloads fail with an error instead of panicking or over-allocating.
//
// The frame container comes from pool (nil-safe: a nil pool allocates
// fresh). On success the POOLED frame transfers to the caller, who must
// route it to a consumer or Put it back; every error path returns the
// container to the pool itself, so a failed decode never leaks one.
// Decoded values never alias p — adm.Decode copies string and binary
// bytes — so the payload buffer may be reused immediately.
func decodeDataPayload(p []byte, pool *hyracks.FramePool) (ref edgeRef, ch int, frame []hyracks.Tuple, err error) {
	if ref, p, err = readEdgeRef(p); err != nil {
		return ref, 0, nil, err
	}
	c, p, err := readUvarint(p)
	if err != nil {
		return ref, 0, nil, err
	}
	ch = int(c)
	n, p, err := readUvarint(p)
	if err != nil {
		return ref, 0, nil, err
	}
	if n > uint64(len(p)) { // each tuple needs ≥ 1 byte
		return ref, 0, nil, fmt.Errorf("anet: frame claims %d tuples in %d bytes", n, len(p))
	}
	frame = pool.Get()
	if frame == nil {
		frame = make([]hyracks.Tuple, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		cols, rest, err := readUvarint(p)
		if err != nil {
			pool.Put(frame)
			return ref, 0, nil, err
		}
		p = rest
		if cols > uint64(len(p)) {
			pool.Put(frame)
			return ref, 0, nil, fmt.Errorf("anet: tuple claims %d columns in %d bytes", cols, len(p))
		}
		t := make(hyracks.Tuple, 0, cols)
		for j := uint64(0); j < cols; j++ {
			v, w, err := adm.Decode(p)
			if err != nil {
				pool.Put(frame)
				return ref, 0, nil, fmt.Errorf("anet: tuple value: %w", err)
			}
			t = append(t, v)
			p = p[w:]
		}
		frame = append(frame, t)
	}
	if len(p) != 0 {
		pool.Put(frame)
		return ref, 0, nil, fmt.Errorf("anet: %d trailing bytes after frame", len(p))
	}
	return ref, ch, frame, nil
}

// encodeCreditPayload serializes a credit return for (job, edge,
// channel): n frames of window handed back to the sender.
func encodeCreditPayload(buf []byte, ref edgeRef, ch, n int) []byte {
	buf = appendEdgeRef(buf, ref)
	buf = binary.AppendUvarint(buf, uint64(ch))
	return binary.AppendUvarint(buf, uint64(n))
}

func decodeCreditPayload(p []byte) (ref edgeRef, ch, n int, err error) {
	if ref, p, err = readEdgeRef(p); err != nil {
		return ref, 0, 0, err
	}
	c, p, err := readUvarint(p)
	if err != nil {
		return ref, 0, 0, err
	}
	cr, p, err := readUvarint(p)
	if err != nil {
		return ref, 0, 0, err
	}
	if len(p) != 0 {
		return ref, 0, 0, fmt.Errorf("anet: %d trailing bytes after credit", len(p))
	}
	return ref, int(c), int(cr), nil
}
