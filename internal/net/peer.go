package anet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/fault"
	"asterix/internal/hyracks"
	"asterix/internal/mem"
	"asterix/internal/obs"
)

// Options configures a Peer.
type Options struct {
	// ID is this process's node id (must match its cluster node id).
	ID string
	// ListenAddr is the data-plane listen address ("host:port"; port 0
	// picks a free port — see Peer.Addr).
	ListenAddr string
	// Peers maps remote node ids to their data-plane addresses.
	Peers map[string]string
	// Gov, when non-nil, charges receive-window buffers to the memory
	// governor: each registered edge reserves its receive queues'
	// capacity before frames flow.
	Gov *mem.Governor
	// FramePool, when non-nil, supplies the frame containers inbound data
	// frames decode into (share the hyracks cluster's pool so receive-side
	// frames recycle through the same bounded freelist the executor
	// drains into). Nil keeps allocate-per-frame decoding.
	FramePool *hyracks.FramePool
	// Metrics, when non-nil, receives the net_* counters.
	Metrics *obs.Registry
	// OnPeerDown is invoked (once per down transition) when a peer that
	// had been heard from goes silent past the heartbeat timeout — the
	// hook that feeds NodeController.Kill.
	OnPeerDown func(id string)
	// OnPeerUp is invoked (once per up transition) when a peer
	// previously declared down is heard from again — a healed partition
	// or a restarted process. The mirror hook, feeding
	// NodeController.Revive. A later silence re-fires OnPeerDown.
	OnPeerUp func(id string)
	// OnControl receives opaque control-plane messages (internal/dist).
	OnControl func(from string, payload []byte)

	// HeartbeatInterval is the keepalive send period (default 250ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which a previously-heard
	// peer is declared down (default 8× the interval).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds each frame write (default 5s): a stalled TCP
	// buffer fails the send instead of wedging the producer forever.
	WriteTimeout time.Duration
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (default 2s; the first
	// retry waits HeartbeatInterval, doubling per failure plus jitter
	// drawn from the fault registry's seeded PRNG).
	MaxBackoff time.Duration
	// CreditWindow is how many frames a sender may have in flight per
	// channel before the consumer must hand window back (default 16).
	CreditWindow int
	// FrameBytes is the per-frame byte estimate used to charge receive
	// queues to the governor (default 64 KiB).
	FrameBytes int64
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 8 * o.HeartbeatInterval
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.CreditWindow <= 0 {
		o.CreditWindow = 16
	}
	if o.FrameBytes <= 0 {
		o.FrameBytes = 64 << 10
	}
	return o
}

// netMetrics is the package's obs surface; all fields tolerate a nil
// registry (every counter method is nil-safe).
type netMetrics struct {
	framesSent, framesRecv   *obs.Counter
	bytesSent, bytesRecv     *obs.Counter
	eosSent, eosRecv         *obs.Counter
	staleDrops, injectedDrop *obs.Counter
	connResets, reconnects   *obs.Counter
	hbTimeouts, creditStalls *obs.Counter
}

func newNetMetrics(r *obs.Registry) netMetrics {
	return netMetrics{
		framesSent:   r.Counter("net_frames_sent_total", "Data frames written to the wire."),
		framesRecv:   r.Counter("net_frames_recv_total", "Data frames accepted off the wire."),
		bytesSent:    r.Counter("net_bytes_sent_total", "Payload bytes written to the wire."),
		bytesRecv:    r.Counter("net_bytes_recv_total", "Payload bytes read off the wire."),
		eosSent:      r.Counter("net_eos_sent_total", "End-of-stream markers sent."),
		eosRecv:      r.Counter("net_eos_recv_total", "End-of-stream markers received."),
		staleDrops:   r.Counter("net_stale_frames_total", "Frames discarded for unregistered (stale) job attempts."),
		injectedDrop: r.Counter("net_frames_dropped_total", "Frames dropped by injected network faults."),
		connResets:   r.Counter("net_conn_resets_total", "Connections reset on error, fault, or protocol violation."),
		reconnects:   r.Counter("net_reconnects_total", "Successful dials after at least one failure."),
		hbTimeouts:   r.Counter("net_heartbeat_timeouts_total", "Peers declared down after heartbeat silence."),
		creditStalls: r.Counter("net_credit_stalls_total", "Sends that blocked waiting for consumer credit."),
	}
}

// peerConn is one live connection to a peer. Writes are serialized by
// wmu and bounded by a per-frame deadline.
type peerConn struct {
	id        string // remote peer id
	initiator string // who dialed: dedupe keeps min(initiator) per peer
	c         net.Conn
	wmu       sync.Mutex
	closed    atomic.Bool
}

func (pc *peerConn) close() {
	if pc.closed.CompareAndSwap(false, true) {
		pc.c.Close()
	}
}

// peerState is per-remote-peer bookkeeping that outlives any one
// connection: last-heard time for failure detection and the reconnect
// backoff schedule.
type peerState struct {
	lastSeen atomic.Int64 // unix nanos of last processed inbound message; 0 = never heard
	down     atomic.Bool  // declared dead (OnPeerDown fired)

	mu         sync.Mutex // guards the dial schedule
	dialing    bool
	failures   int
	nextDial   time.Time
	everDialOK bool
}

// Peer is one process's endpoint in the cluster mesh: a listener, a
// pool of at-most-one connection per remote peer, heartbeating, failure
// detection, and the frame fabric implementing hyracks.Transport.
type Peer struct {
	opt Options
	m   netMetrics
	ln  net.Listener

	mu     sync.Mutex
	addrs  map[string]string // peer id → dial address
	conns  map[string]*peerConn
	peers  map[string]*peerState
	jobs   map[string]*jobState
	closed chan struct{}
	wg     sync.WaitGroup
}

// NewPeer binds the listen address and starts the accept and heartbeat
// loops. Close releases everything.
func NewPeer(opt Options) (*Peer, error) {
	opt = opt.withDefaults()
	if opt.ID == "" {
		return nil, fmt.Errorf("anet: peer needs an id")
	}
	ln, err := net.Listen("tcp", opt.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("anet: listen %s: %w", opt.ListenAddr, err)
	}
	p := &Peer{
		opt:    opt,
		m:      newNetMetrics(opt.Metrics),
		ln:     ln,
		addrs:  map[string]string{},
		conns:  map[string]*peerConn{},
		peers:  map[string]*peerState{},
		jobs:   map[string]*jobState{},
		closed: make(chan struct{}),
	}
	for id, addr := range opt.Peers {
		p.addrs[id] = addr
		p.peers[id] = &peerState{}
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.heartbeatLoop()
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() string { return p.opt.ID }

// AddPeer registers (or updates) a remote peer's dial address — used
// when listen ports are allocated dynamically and the member list is
// only complete after every process has bound.
func (p *Peer) AddPeer(id, addr string) {
	p.mu.Lock()
	p.addrs[id] = addr
	if p.peers[id] == nil {
		p.peers[id] = &peerState{}
	}
	p.mu.Unlock()
}

// peerIDs snapshots the known remote ids.
func (p *Peer) peerIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.addrs))
	for id := range p.addrs {
		ids = append(ids, id)
	}
	return ids
}

// Addr returns the bound listen address (resolves port 0).
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Close stops the listener, closes every connection, and waits for the
// peer's goroutines.
func (p *Peer) Close() {
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		return
	default:
	}
	close(p.closed)
	conns := make([]*peerConn, 0, len(p.conns))
	for _, pc := range p.conns {
		conns = append(conns, pc)
	}
	jobs := make([]string, 0, len(p.jobs))
	for id := range p.jobs {
		jobs = append(jobs, id)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, pc := range conns {
		pc.close()
	}
	for _, id := range jobs {
		p.CloseJob(id)
	}
	p.wg.Wait()
}

func (p *Peer) isClosed() bool {
	select {
	case <-p.closed:
		return true
	default:
		return false
	}
}

// peer returns (lazily creating) the persistent state for a peer id.
func (p *Peer) peer(id string) *peerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := p.peers[id]
	if ps == nil {
		ps = &peerState{}
		p.peers[id] = ps
	}
	return ps
}

// acceptLoop admits inbound connections: the first message must be a
// hello naming the remote peer, after which the connection joins the
// pool and its reader starts.
func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			if p.isClosed() {
				return
			}
			continue
		}
		p.wg.Add(1)
		go func(c net.Conn) {
			defer p.wg.Done()
			c.SetReadDeadline(time.Now().Add(p.opt.DialTimeout))
			typ, payload, err := readMsg(c)
			if err != nil || typ != msgHello || len(payload) == 0 {
				c.Close()
				return
			}
			c.SetReadDeadline(time.Time{})
			from := string(payload)
			pc := &peerConn{id: from, initiator: from, c: c}
			if p.isClosed() {
				pc.close()
				return
			}
			// The dedupe in register only decides which connection this
			// side SENDS on. An inbound connection is always drained: the
			// remote may have committed writes to it before our verdict
			// (e.g. a reconnect racing the stale conn's EOF), and closing
			// it unread would drop those messages after the sender saw
			// the write succeed.
			p.register(pc)
			p.readLoop(pc)
		}(c)
	}
}

// register adds a connection to the pool, enforcing at most one per
// peer. When both sides dialed simultaneously each end holds two
// connections; both deterministically keep the one initiated by the
// smaller id, so the mesh converges on a single duplex link per pair.
func (p *Peer) register(pc *peerConn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isClosed() {
		return false
	}
	old := p.conns[pc.id]
	if old != nil {
		keepNew := pc.initiator < old.initiator
		if !keepNew {
			return false
		}
		old.close()
	}
	p.conns[pc.id] = pc
	return true
}

// unregister drops the connection if it is still the registered one.
func (p *Peer) unregister(pc *peerConn) {
	p.mu.Lock()
	if p.conns[pc.id] == pc {
		delete(p.conns, pc.id)
	}
	p.mu.Unlock()
	pc.close()
}

// connFor returns the pooled connection to a peer, dialing synchronously
// when none exists. Dial failures surface to the caller; background
// reconnection with backoff is the heartbeat loop's job.
func (p *Peer) connFor(id string) (*peerConn, error) {
	p.mu.Lock()
	pc := p.conns[id]
	p.mu.Unlock()
	if pc != nil {
		return pc, nil
	}
	return p.dial(id)
}

// dial connects to a configured peer, sends hello, and registers the
// connection. At most one dial per peer runs at a time.
func (p *Peer) dial(id string) (*peerConn, error) {
	p.mu.Lock()
	addr, ok := p.addrs[id]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("anet: unknown peer %q", id)
	}
	ps := p.peer(id)
	ps.mu.Lock()
	if ps.dialing {
		ps.mu.Unlock()
		return nil, fmt.Errorf("anet: dial to %s already in flight", id)
	}
	ps.dialing = true
	ps.mu.Unlock()
	defer func() {
		ps.mu.Lock()
		ps.dialing = false
		ps.mu.Unlock()
	}()

	if err := p.linkFault(id); err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", addr, p.opt.DialTimeout)
	if err != nil {
		ps.mu.Lock()
		ps.failures++
		ps.nextDial = time.Now().Add(p.redialBackoff(ps.failures))
		ps.mu.Unlock()
		return nil, fmt.Errorf("anet: dial %s (%s): %w", id, addr, err)
	}
	pc := &peerConn{id: id, initiator: p.opt.ID, c: c}
	if err := p.writeMsg(pc, msgHello, []byte(p.opt.ID)); err != nil {
		pc.close()
		return nil, err
	}
	if !p.register(pc) {
		// Lost the dedupe race: the peer's own dial won. Use theirs.
		pc.close()
		p.mu.Lock()
		winner := p.conns[id]
		p.mu.Unlock()
		if winner == nil {
			return nil, fmt.Errorf("anet: connection to %s lost in dedupe", id)
		}
		return winner, nil
	}
	ps.mu.Lock()
	if ps.failures > 0 {
		p.m.reconnects.Inc()
	}
	ps.failures = 0
	ps.nextDial = time.Time{}
	ps.everDialOK = true
	ps.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.readLoop(pc)
	}()
	return pc, nil
}

// redialBackoff is the wait before dial attempt n+1: exponential from
// one heartbeat interval, capped at MaxBackoff, plus up to 25% jitter
// drawn from the fault registry's seeded PRNG (deterministic under
// ASTERIX_FAULT_SEED).
func (p *Peer) redialBackoff(failures int) time.Duration {
	d := p.opt.HeartbeatInterval
	for i := 1; i < failures && d < p.opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.opt.MaxBackoff {
		d = p.opt.MaxBackoff
	}
	return d + time.Duration(fault.Int63n(int64(d)/4+1))
}

// linkFault probes the partition fault point for this process's
// outbound path.
func (p *Peer) linkFault(peerID string) error {
	if err := fault.HitTag(fault.PointNetPartition, p.opt.ID); err != nil {
		return fmt.Errorf("anet: partitioned from %s: %w", peerID, err)
	}
	return nil
}

// writeMsg frames and writes one message under the connection's write
// lock with a per-frame deadline. Any failure closes the connection:
// a stream that lost bytes can never carry another valid frame.
func (p *Peer) writeMsg(pc *peerConn, typ byte, payload []byte) error {
	wire := appendMsg(nil, typ, payload)
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.closed.Load() {
		return fmt.Errorf("anet: connection to %s is closed", pc.id)
	}
	// Injected mid-frame tear: write a prefix, then reset the
	// connection — the receiver observes a short/corrupt frame exactly
	// as if the kernel had split an interrupted send.
	if torn, fired := fault.TearTag(fault.PointNetConnReset, p.opt.ID, wire); fired {
		//lint:ignore lock-held,err-discard deliberate torn write under wmu: the prefix must not interleave with a whole frame, and its error is moot — the connection is reset either way
		pc.c.SetWriteDeadline(time.Now().Add(p.opt.WriteTimeout))
		//lint:ignore lock-held,err-discard deliberate torn write under wmu: the prefix must not interleave with a whole frame, and its error is moot — the connection is reset either way
		pc.c.Write(torn)
		p.m.connResets.Inc()
		p.unregister(pc)
		return fmt.Errorf("anet: connection to %s reset mid-frame: %w", pc.id, fault.ErrInjected)
	}
	//lint:ignore lock-held wmu exists to serialize frame writes — interleaved writes corrupt the stream; the deadline bounds the hold
	pc.c.SetWriteDeadline(time.Now().Add(p.opt.WriteTimeout))
	//lint:ignore lock-held wmu exists to serialize frame writes — interleaved writes corrupt the stream; the deadline bounds the hold
	if _, err := pc.c.Write(wire); err != nil {
		p.m.connResets.Inc()
		p.unregister(pc)
		return fmt.Errorf("anet: write to %s: %w", pc.id, err)
	}
	p.m.bytesSent.Add(int64(len(wire)))
	return nil
}

// send routes one message to a peer through the pool, applying the
// outbound partition fault.
func (p *Peer) send(peerID string, typ byte, payload []byte) error {
	if err := p.linkFault(peerID); err != nil {
		return err
	}
	pc, err := p.connFor(peerID)
	if err != nil {
		return err
	}
	return p.writeMsg(pc, typ, payload)
}

// SendControl delivers an opaque control-plane message to a peer (the
// internal/dist job protocol rides on this).
func (p *Peer) SendControl(peerID string, payload []byte) error {
	body := appendString(nil, p.opt.ID)
	body = append(body, payload...)
	return p.send(peerID, msgControl, body)
}

// readLoop drains one connection, dispatching messages until the stream
// breaks. Every processed message refreshes the peer's last-seen time.
// Payloads decode into a per-connection scratch buffer reused across
// messages: every dispatch below fully consumes its payload before the
// next read (data frames copy their bytes out during ADM decode), and the
// one handler that may retain bytes — OnControl — gets a copy.
func (p *Peer) readLoop(pc *peerConn) {
	ps := p.peer(pc.id)
	defer p.unregister(pc)
	var scratch []byte
	for {
		var typ byte
		var payload []byte
		var err error
		typ, payload, scratch, err = readMsgReuse(pc.c, scratch)
		if err != nil {
			if !pc.closed.Load() && !p.isClosed() {
				p.m.connResets.Inc()
			}
			return
		}
		p.m.bytesRecv.Add(int64(headerLen + len(payload)))
		// Inbound half of an armed partition: drop everything without
		// refreshing last-seen, so the silent peer is eventually
		// declared down on both sides.
		if fault.HitTag(fault.PointNetPartition, p.opt.ID) != nil {
			p.m.injectedDrop.Inc()
			continue
		}
		ps.lastSeen.Store(time.Now().UnixNano())
		if ps.down.CompareAndSwap(true, false) {
			// Back from the dead — a healed partition or a restarted
			// process. Re-arm failure detection and the dial schedule,
			// and give the control plane its up transition.
			ps.mu.Lock()
			ps.failures = 0
			ps.nextDial = time.Time{}
			ps.mu.Unlock()
			if p.opt.OnPeerUp != nil {
				p.opt.OnPeerUp(pc.id)
			}
		}
		switch typ {
		case msgHeartbeat:
			// last-seen refresh is the whole message.
		case msgData:
			p.deliverData(pc.id, payload)
		case msgEOS:
			p.deliverEOS(pc.id, payload)
		case msgCredit:
			p.deliverCredit(payload)
		case msgControl:
			from, body, err := readString(payload)
			if err == nil && p.opt.OnControl != nil {
				// body aliases the reused scratch; the control plane may
				// hold it past this dispatch, so it gets its own copy.
				p.opt.OnControl(from, append([]byte(nil), body...))
			}
		case msgHello:
			// Redundant hello on an established connection: ignore.
		default:
			// Unknown type from a future version: tolerated, counted as
			// nothing — the CRC already proved it arrived intact.
		}
	}
}

// heartbeatLoop keeps every configured peer link warm (dialing with
// backoff when down) and declares peers dead after heartbeat silence.
func (p *Peer) heartbeatLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.opt.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-p.closed:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, id := range p.peerIDs() {
			ps := p.peer(id)
			// Failure detection: silence from a peer we had heard. The
			// latch fires OnPeerDown once per down transition; readLoop
			// clears it when the peer is heard again, so a later silence
			// fires again. Deliberately no continue — a down peer keeps
			// being dialed and heartbeated below, otherwise two mutually
			// down-latched peers would never heal a partition (neither
			// side would ever dial the other again).
			if last := ps.lastSeen.Load(); last != 0 &&
				now.Sub(time.Unix(0, last)) > p.opt.HeartbeatTimeout {
				if ps.down.CompareAndSwap(false, true) {
					p.m.hbTimeouts.Inc()
					p.mu.Lock()
					pc := p.conns[id]
					p.mu.Unlock()
					if pc != nil {
						p.unregister(pc)
					}
					if p.opt.OnPeerDown != nil {
						p.opt.OnPeerDown(id)
					}
				}
			}
			// Keepalive / reconnect. Respect the backoff schedule.
			p.mu.Lock()
			pc := p.conns[id]
			p.mu.Unlock()
			if pc == nil {
				ps.mu.Lock()
				wait := ps.nextDial.After(now)
				ps.mu.Unlock()
				if wait {
					continue
				}
				var err error
				if pc, err = p.connFor(id); err != nil {
					continue
				}
			}
			if p.linkFault(id) != nil {
				continue // partitioned: suppress outbound heartbeats
			}
			p.writeMsg(pc, msgHeartbeat, nil)
		}
	}
}
