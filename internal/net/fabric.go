package anet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asterix/internal/fault"
	"asterix/internal/hyracks"
	"asterix/internal/mem"
)

// jobState holds one job attempt's edge registrations. Its context is
// derived from the run's: CloseJob cancels it, so every inject goroutine
// terminates no matter which of run-teardown or Peer.Close came first.
type jobState struct {
	ctx    context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	edges  map[int]*edgeState
}

// edgeState is one registered edge: local receive queues, remote-channel
// credit pools, and the distinct remote owners that get this process's
// end-of-stream markers.
type edgeState struct {
	desc         hyracks.EdgeDesc
	remoteOwners []string
	queues       map[int]*recvQueue
	credits      map[int]chan struct{}
	grant        *mem.Grant
	// broken latches when a peer violates the edge's protocol (receive
	// queue overrun): a poisoned edge never fires EOS — a dropped frame
	// must not end in a "complete" stream — and the attempt is failed
	// with a retriable LinkFailure instead.
	broken atomic.Bool
}

// recvQueue decouples a connection's read loop from one local channel's
// consumer: the reader enqueues without blocking (the credit window
// bounds what honest senders can have outstanding), and the queue's
// inject goroutine moves frames into the executor's channel, returning
// credit as the consumer drains. One slow channel therefore never
// head-of-line-blocks the connection it shares with other channels.
type recvQueue struct {
	items chan recvItem
}

type recvItem struct {
	from  string
	frame []hyracks.Tuple
	eos   *eosBarrier
}

// eosBarrier makes end-of-stream ordered with data: one remote
// producer's EOS is enqueued behind its frames in every local queue of
// the edge, and the edge-level EOS callback fires only when the last
// queue has drained past its marker — so channels never close while a
// delivered frame is still queued.
type eosBarrier struct {
	pending int32
}

// OpenEdge implements hyracks.Transport.
func (p *Peer) OpenEdge(ctx context.Context, desc hyracks.EdgeDesc) (hyracks.EdgeHandle, error) {
	p.mu.Lock()
	js := p.jobs[desc.JobID]
	if js == nil {
		jctx, jcancel := context.WithCancel(ctx)
		js = &jobState{ctx: jctx, cancel: jcancel, edges: map[int]*edgeState{}}
		p.jobs[desc.JobID] = js
	}
	p.mu.Unlock()

	es := &edgeState{
		desc:    desc,
		queues:  map[int]*recvQueue{},
		credits: map[int]chan struct{}{},
	}
	w := p.opt.CreditWindow
	// Credit windows are per sending PROCESS per channel: every remote
	// producer process holds its own w-frame pool for the same channel,
	// so a queue must absorb w frames from each of them (worst case: a
	// concentrating edge pulls every producer into one channel), plus one
	// EOS marker per producer partition. Sized this way, honest senders
	// can never overflow a queue — overflow is a protocol violation.
	senders := desc.Senders
	if senders <= 0 || senders > desc.Producers {
		senders = desc.Producers
	}
	qcap := w*maxInt(1, senders) + maxInt(1, desc.Producers)
	locals := 0
	seen := map[string]bool{}
	for ch, owner := range desc.Owners {
		if owner == "" {
			if desc.Recv[ch] == nil {
				return nil, fmt.Errorf("anet: edge %d channel %d is local but has no receive queue", desc.Edge, ch)
			}
			es.queues[ch] = &recvQueue{items: make(chan recvItem, qcap)}
			locals++
			continue
		}
		pool := make(chan struct{}, w)
		for i := 0; i < w; i++ {
			pool <- struct{}{}
		}
		es.credits[ch] = pool
		if !seen[owner] {
			seen[owner] = true
			es.remoteOwners = append(es.remoteOwners, owner)
		}
	}

	// Charge the receive window to the memory governor before frames
	// flow: the recv queues are real buffered memory this process holds
	// on behalf of remote producers — one full credit window per sending
	// process per local channel.
	if locals > 0 && p.opt.Gov != nil {
		need := int64(locals) * int64(w*maxInt(1, senders)) * p.opt.FrameBytes
		rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
		grant, err := p.opt.Gov.Reserve(rctx, need)
		rcancel()
		if err != nil {
			return nil, fmt.Errorf("anet: recv-window reservation (%d bytes): %w", need, err)
		}
		es.grant = grant
	}

	js.mu.Lock()
	if _, dup := js.edges[desc.Edge]; dup {
		js.mu.Unlock()
		es.grant.Release()
		return nil, fmt.Errorf("anet: edge %d already registered for job %s", desc.Edge, desc.JobID)
	}
	js.edges[desc.Edge] = es
	js.mu.Unlock()

	for ch, q := range es.queues {
		p.wg.Add(1)
		go func(ch int, q *recvQueue) {
			defer p.wg.Done()
			p.injectLoop(js, es, ch, q)
		}(ch, q)
	}
	return &edgeHandle{p: p, js: js, es: es}, nil
}

// CloseJob implements hyracks.Transport: it drops the attempt's
// registrations (subsequent frames for it are counted stale and
// discarded), releases governor reservations, and stops the inject
// goroutines.
func (p *Peer) CloseJob(jobID string) {
	p.mu.Lock()
	js := p.jobs[jobID]
	delete(p.jobs, jobID)
	p.mu.Unlock()
	if js == nil {
		return
	}
	js.cancel()
	js.mu.Lock()
	defer js.mu.Unlock()
	for _, es := range js.edges {
		es.grant.Release()
		es.grant = nil
	}
}

// lookupEdge resolves a live (job, edge) registration.
func (p *Peer) lookupEdge(ref edgeRef) *edgeState {
	p.mu.Lock()
	js := p.jobs[ref.jobID]
	p.mu.Unlock()
	if js == nil {
		return nil
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.edges[ref.edge]
}

// deliverData routes one inbound data frame into its receive queue.
// Unknown attempts are stale by construction — the READY/START barrier
// guarantees live attempts are registered everywhere before the first
// frame — so the frame is dropped and counted, never misdelivered. The
// decoded frame rides a pooled container: enqueueing transfers it to the
// consumer (whose Input recycles it after the tuple pass); every dropped
// frame recycles here.
func (p *Peer) deliverData(from string, payload []byte) {
	ref, ch, frame, err := decodeDataPayload(payload, p.opt.FramePool)
	if err != nil {
		p.m.staleDrops.Inc()
		return
	}
	es := p.lookupEdge(ref)
	if es == nil {
		p.m.staleDrops.Inc()
		p.opt.FramePool.Put(frame)
		return
	}
	q := es.queues[ch]
	if q == nil {
		p.m.staleDrops.Inc()
		p.opt.FramePool.Put(frame)
		return
	}
	if es.broken.Load() {
		p.m.staleDrops.Inc() // edge already poisoned: the attempt is dying
		p.opt.FramePool.Put(frame)
		return
	}
	select {
	case q.items <- recvItem{from: from, frame: frame}:
		p.m.framesRecv.Inc()
	default:
		// The queue is sized so every honest sender's full credit window
		// and EOS markers fit: overflow means the peer violated its
		// window, and a silent drop here would let the consumer complete
		// on truncated data (the sender saw success and its EOS still
		// arrives). Treat it as a protocol violation instead.
		p.protocolViolation(from, es, ref)
		p.opt.FramePool.Put(frame)
	}
}

// protocolViolation handles a peer overrunning a receive queue. The
// queues are sized so honest senders cannot overflow them, so overflow
// means a broken peer: poison the edge (its EOS can never fire, so a
// lost frame can never end in a "complete" stream), reset the
// connection, and fail the attempt with a retriable LinkFailure so
// RunWithRetry replans it.
func (p *Peer) protocolViolation(from string, es *edgeState, ref edgeRef) {
	es.broken.Store(true)
	p.m.connResets.Inc()
	p.mu.Lock()
	pc := p.conns[from]
	p.mu.Unlock()
	if pc != nil {
		p.unregister(pc)
	}
	if es.desc.Fail != nil {
		es.desc.Fail(&hyracks.LinkFailure{Peer: from,
			Err: fmt.Errorf("anet: peer %s overran edge %d's receive window", from, ref.edge)})
	}
}

// deliverEOS fans one remote producer's end-of-stream marker into every
// local queue of the edge (see eosBarrier).
func (p *Peer) deliverEOS(from string, payload []byte) {
	ref, _, err := readEdgeRef(payload)
	if err != nil {
		return
	}
	es := p.lookupEdge(ref)
	if es == nil {
		return
	}
	if es.broken.Load() {
		return // edge poisoned by a protocol violation: the attempt is dead
	}
	p.m.eosRecv.Inc()
	if len(es.queues) == 0 {
		es.desc.EOS()
		return
	}
	b := &eosBarrier{pending: int32(len(es.queues))}
	for _, q := range es.queues {
		select {
		case q.items <- recvItem{from: from, eos: b}:
		default:
			// Queue sized for every producer's EOS marker: overflow means
			// the peer EOSed more than once (or overran its window), and
			// firing the edge EOS from here could close recv channels
			// while frames are still queued. Protocol violation.
			p.protocolViolation(from, es, ref)
			return
		}
	}
}

// deliverCredit returns window to a sender-side credit pool.
func (p *Peer) deliverCredit(payload []byte) {
	ref, ch, n, err := decodeCreditPayload(payload)
	if err != nil {
		return
	}
	es := p.lookupEdge(ref)
	if es == nil {
		return
	}
	pool := es.credits[ch]
	if pool == nil {
		return
	}
	for i := 0; i < n; i++ {
		select {
		case pool <- struct{}{}:
		default:
			return // over-credit from a confused peer: cap at the window
		}
	}
}

// injectLoop moves one receive queue's frames into the executor's
// channel, returning credit to each sending peer as the consumer drains
// (batched at half a window to amortize the control traffic).
func (p *Peer) injectLoop(js *jobState, es *edgeState, ch int, q *recvQueue) {
	recv := es.desc.Recv[ch]
	ref := edgeRef{jobID: es.desc.JobID, edge: es.desc.Edge}
	threshold := maxInt(1, p.opt.CreditWindow/2)
	owed := map[string]int{}
	flush := func(from string) {
		n := owed[from]
		if n == 0 {
			return
		}
		owed[from] = 0
		// Best-effort: a lost credit message means a broken link, and
		// the attempt is about to die of that anyway.
		p.send(from, msgCredit, encodeCreditPayload(nil, ref, ch, n))
	}
	for {
		select {
		case it := <-q.items:
			if it.eos != nil {
				if atomic.AddInt32(&it.eos.pending, -1) == 0 && !es.broken.Load() {
					es.desc.EOS()
				}
				flush(it.from)
				continue
			}
			select {
			case recv <- it.frame:
				owed[it.from]++
				if owed[it.from] >= threshold {
					flush(it.from)
				}
			case <-js.ctx.Done():
				return
			}
		case <-js.ctx.Done():
			return
		}
	}
}

// edgeHandle implements hyracks.EdgeHandle over the peer mesh.
type edgeHandle struct {
	p  *Peer
	js *jobState
	es *edgeState
}

// Send implements hyracks.EdgeHandle: it blocks for consumer credit,
// applies the injected network faults, and delivers the frame to the
// channel's owning peer. Every failure is a *hyracks.LinkFailure —
// retriable, because an undelivered frame always breaks the stream
// rather than vanishing.
func (h *edgeHandle) Send(ctx context.Context, ch int, frame []hyracks.Tuple) error {
	owner := h.es.desc.Owners[ch]
	pool := h.es.credits[ch]
	// Credit window: the fast path costs one channel receive.
	select {
	case <-pool:
	default:
		h.p.m.creditStalls.Inc()
		select {
		case <-pool:
		case <-ctx.Done():
			return ctx.Err()
		case <-h.js.ctx.Done():
			return h.js.ctx.Err()
		case <-h.p.closed:
			return &hyracks.LinkFailure{Peer: owner, Err: fmt.Errorf("anet: peer closed")}
		}
	}
	// net.delay armed as delay=… stalls here; armed as error it breaks
	// the link like any transport failure.
	if err := fault.HitTag(fault.PointNetDelay, h.p.opt.ID); err != nil {
		return &hyracks.LinkFailure{Peer: owner, Err: err}
	}
	// net.drop: the frame is discarded AND the connection reset, so the
	// loss is never silent — the receiver's stream breaks and the
	// attempt retries.
	if err := fault.HitTag(fault.PointNetDrop, h.p.opt.ID); err != nil {
		h.p.m.injectedDrop.Inc()
		h.p.m.connResets.Inc()
		h.p.mu.Lock()
		pc := h.p.conns[owner]
		h.p.mu.Unlock()
		if pc != nil {
			h.p.unregister(pc)
		}
		return &hyracks.LinkFailure{Peer: owner, Err: err}
	}
	payload := encodeDataPayload(nil, edgeRef{jobID: h.es.desc.JobID, edge: h.es.desc.Edge}, ch, frame)
	if err := h.p.send(owner, msgData, payload); err != nil {
		return &hyracks.LinkFailure{Peer: owner, Err: err}
	}
	h.p.m.framesSent.Inc()
	return nil
}

// ProducerDone implements hyracks.EdgeHandle: one local producer
// finished the edge, so every remote owner gets an end-of-stream marker
// (ordered after the producer's frames on each shared connection).
func (h *edgeHandle) ProducerDone() error {
	ref := edgeRef{jobID: h.es.desc.JobID, edge: h.es.desc.Edge}
	var firstErr error
	for _, owner := range h.es.remoteOwners {
		if err := h.p.send(owner, msgEOS, appendEdgeRef(nil, ref)); err != nil {
			if firstErr == nil {
				firstErr = &hyracks.LinkFailure{Peer: owner, Err: err}
			}
			continue
		}
		h.p.m.eosSent.Inc()
	}
	return firstErr
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
