package anet

import (
	"bytes"
	"strings"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
)

func testFrame() []hyracks.Tuple {
	return []hyracks.Tuple{
		{adm.Int64(1), adm.String("alice")},
		{adm.Int64(2), adm.String("bob"), adm.Double(2.5)},
		{},
	}
}

func TestDataPayloadRoundTrip(t *testing.T) {
	ref := edgeRef{jobID: "q1#2", edge: 3}
	p := encodeDataPayload(nil, ref, 7, testFrame())
	gotRef, ch, frame, err := decodeDataPayload(p, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotRef != ref || ch != 7 {
		t.Fatalf("got ref=%+v ch=%d", gotRef, ch)
	}
	if len(frame) != 3 || len(frame[0]) != 2 || len(frame[1]) != 3 || len(frame[2]) != 0 {
		t.Fatalf("frame shape: %v", frame)
	}
	if frame[1][1].Kind() != adm.KindString {
		t.Fatalf("column type lost: %#v", frame[1][1])
	}
	if frame[0][0].Kind() != adm.KindInt64 || frame[0][0].(adm.Int64) != 1 {
		t.Fatalf("column value lost: %#v", frame[0][0])
	}
}

func TestCreditPayloadRoundTrip(t *testing.T) {
	p := encodeCreditPayload(nil, edgeRef{jobID: "j", edge: 1}, 4, 9)
	ref, ch, n, err := decodeCreditPayload(p)
	if err != nil || ref.jobID != "j" || ref.edge != 1 || ch != 4 || n != 9 {
		t.Fatalf("got %v %d %d err=%v", ref, ch, n, err)
	}
}

func TestMsgRoundTripAndCRC(t *testing.T) {
	payload := encodeDataPayload(nil, edgeRef{jobID: "j", edge: 0}, 0, testFrame())
	wire := appendMsg(nil, msgData, payload)
	typ, got, err := readMsg(bytes.NewReader(wire))
	if err != nil || typ != msgData || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: typ=%d err=%v", typ, err)
	}
	// Flip one payload byte: the CRC must reject the frame.
	bad := append([]byte(nil), wire...)
	bad[headerLen+3] ^= 0x40
	if _, _, err := readMsg(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt frame accepted: %v", err)
	}
	// Torn mid-payload: short read, never a hang or panic.
	if _, _, err := readMsg(bytes.NewReader(wire[:len(wire)/2])); err == nil {
		t.Fatal("torn frame accepted")
	}
	// Bad magic.
	bad = append([]byte(nil), wire...)
	bad[0] = 0x00
	if _, _, err := readMsg(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Absurd length must be rejected before allocation.
	bad = append([]byte(nil), wire...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readMsg(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzFrameDecode hammers the data-frame decoder with torn, mutated,
// and adversarial payloads: it must return an error or a well-formed
// frame, never panic or over-allocate (the length-vs-remaining checks).
func FuzzFrameDecode(f *testing.F) {
	f.Add(encodeDataPayload(nil, edgeRef{jobID: "q1#1", edge: 2}, 1, testFrame()))
	f.Add(encodeDataPayload(nil, edgeRef{jobID: "", edge: 0}, 0, nil))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, ch, frame, err := decodeDataPayload(data, nil)
		if err != nil {
			return
		}
		// A successful decode must re-encode to a decodable payload of
		// identical shape.
		re := encodeDataPayload(nil, ref, ch, frame)
		ref2, ch2, frame2, err := decodeDataPayload(re, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if ref2 != ref || ch2 != ch || len(frame2) != len(frame) {
			t.Fatalf("round trip drift: %v/%v %d/%d %d/%d", ref, ref2, ch, ch2, len(frame), len(frame2))
		}
	})
}
