package anet

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asterix/internal/adm"
	"asterix/internal/fault"
	"asterix/internal/hyracks"
	"asterix/internal/obs"
)

// simNode is one simulated node process: a peer endpoint plus its own
// cluster view (every process holds controllers for every member).
type simNode struct {
	id      string
	peer    *Peer
	cluster *hyracks.Cluster
	metrics *obs.Registry
}

// startMesh boots one Peer per id on loopback with dynamic ports, wires
// the full address book, and gives each node a named cluster whose
// remote controllers are killed by that node's failure detector.
func startMesh(t *testing.T, ids []string, tune func(id string, o *Options)) map[string]*simNode {
	t.Helper()
	nodes := map[string]*simNode{}
	for _, id := range ids {
		cl, err := hyracks.NewNamedCluster(ids, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		o := Options{
			ID:                id,
			ListenAddr:        "127.0.0.1:0",
			Metrics:           reg,
			FramePool:         cl.FramePool(),
			HeartbeatInterval: 25 * time.Millisecond,
			OnPeerDown: func(down string) {
				if nc := cl.NodeByID(down); nc != nil {
					nc.Kill()
				}
			},
			OnPeerUp: func(up string) {
				if nc := cl.NodeByID(up); nc != nil {
					nc.Revive()
				}
			},
		}
		if tune != nil {
			tune(id, &o)
		}
		p, err := NewPeer(o)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = &simNode{id: id, peer: p, cluster: cl, metrics: reg}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a.id != b.id {
				a.peer.AddPeer(b.id, b.peer.Addr())
			}
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.peer.Close()
		}
	})
	return nodes
}

// runPlaced executes the same job spec on every node of the mesh with a
// shared START barrier, returning the per-node Run errors.
func runPlaced(ctx context.Context, nodes map[string]*simNode, jobID string,
	build func(n *simNode) *hyracks.Job, assign func(op string, part int) string) map[string]error {
	// A failed node cancels the others, standing in for the dist control
	// plane's failure-status abort: a failed producer withholds its wire
	// EOS (it would legitimize a truncated stream), so its consumers
	// block until told the attempt is dead.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := make(chan struct{})
	var readyWG sync.WaitGroup
	readyWG.Add(len(nodes))
	go func() {
		readyWG.Wait()
		close(start)
	}()
	errs := map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := build(n)
			j.SetPlacement(&hyracks.Placement{
				JobID:     jobID,
				Node:      n.id,
				Assign:    assign,
				Transport: n.peer,
				Ready:     readyWG.Done,
				Start:     start,
			})
			err := n.cluster.Run(ctx, j)
			mu.Lock()
			errs[n.id] = err
			mu.Unlock()
			if err != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
	return errs
}

// genOp emits rows [base, base+count) on each partition; used as the
// distributed source.
func genOp(parallelism, rowsPerPart int) *hyracks.Operator {
	return hyracks.NewScan("gen", parallelism, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
		base := tc.Partition * rowsPerPart
		for i := 0; i < rowsPerPart; i++ {
			if err := emit(hyracks.Tuple{adm.Int64(base + i), adm.String("row-payload")}); err != nil {
				return err
			}
		}
		return nil
	})
}

func counterValue(reg *obs.Registry, name string) int64 {
	snap := reg.Snapshot()
	if v, ok := snap[name]; ok {
		switch x := v.(type) {
		case int64:
			return x
		case float64:
			return int64(x)
		}
	}
	return 0
}

// TestTwoPeerExchange proves the tentpole end to end in miniature: two
// node processes, a hash-partitioned producer spanning both, and a
// merge-concentrated collector on one — frames cross the wire with
// credit backpressure, EOS closes the stream, and every row arrives
// exactly once.
func TestTwoPeerExchange(t *testing.T) {
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	const rows = 500
	var collMu sync.Mutex
	colls := map[string]*hyracks.Collector{}
	errs := runPlaced(context.Background(), nodes, "x1#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(2, rows))
		coll := &hyracks.Collector{}
		collMu.Lock()
		colls[n.id] = coll
		collMu.Unlock()
		sink := j.Add(hyracks.NewSink("collect", 1, coll))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "collect" {
			return "na"
		}
		return []string{"na", "nb"}[part%2]
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
	}
	got := colls["na"].Len()
	if got != 2*rows {
		t.Fatalf("collector on na has %d rows, want %d", got, 2*rows)
	}
	if colls["nb"].Len() != 0 {
		t.Fatalf("collector on nb has %d rows, want 0", colls["nb"].Len())
	}
	// The wire must actually have carried nb's half.
	sent := counterValue(nodes["nb"].metrics, "net_frames_sent_total")
	if sent == 0 {
		t.Fatal("nb sent no frames over the wire")
	}
	recv := counterValue(nodes["na"].metrics, "net_frames_recv_total")
	if recv == 0 {
		t.Fatal("na received no frames over the wire")
	}
}

// TestCreditBackpressure squeezes a big transfer through a 2-frame
// credit window: the sender must stall (observable in the counter) and
// still deliver every row exactly once.
func TestCreditBackpressure(t *testing.T) {
	nodes := startMesh(t, []string{"na", "nb"}, func(id string, o *Options) {
		o.CreditWindow = 2
	})
	const rows = 2000
	coll := &hyracks.Collector{}
	errs := runPlaced(context.Background(), nodes, "bp#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(1, rows))
		sink := j.Add(hyracks.NewSink("collect", 1, coll))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "gen" {
			return "nb"
		}
		return "na"
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
	}
	if coll.Len() != rows {
		t.Fatalf("got %d rows, want %d", coll.Len(), rows)
	}
	if counterValue(nodes["nb"].metrics, "net_credit_stalls_total") == 0 {
		t.Fatal("a 2-frame window moved 2000 rows without one credit stall")
	}
}

// TestHeartbeatFailureDetection kills one node process mid-run; the
// survivor's detector must declare it dead, kill its controller, and
// fail the run with a retriable NodeFailure.
func TestHeartbeatFailureDetection(t *testing.T) {
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	// Warm the link so nb has been heard from.
	if err := nodes["na"].peer.SendControl("nb", []byte("ping")); err != nil {
		t.Fatalf("warm-up send: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes["na"].peer.peer("nb").lastSeen.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("na never heard from nb")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Hard-kill nb's process.
	nodes["nb"].peer.Close()
	for !nodes["na"].cluster.NodeByID("nb").Dead() {
		if time.Now().After(deadline) {
			t.Fatal("na never declared nb dead after heartbeat silence")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if counterValue(nodes["na"].metrics, "net_heartbeat_timeouts_total") == 0 {
		t.Fatal("heartbeat timeout not counted")
	}
	// A run placed across the dead node must fail with NodeFailure.
	j := hyracks.NewJob()
	gen := j.Add(genOp(2, 10))
	coll := &hyracks.Collector{}
	sink := j.Add(hyracks.NewSink("collect", 1, coll))
	j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
	start := make(chan struct{})
	close(start)
	j.SetPlacement(&hyracks.Placement{
		JobID: "hb#1", Node: "na", Transport: nodes["na"].peer, Start: start,
		Assign: func(op string, part int) string {
			if op == "gen" && part == 1 {
				return "nb"
			}
			return "na"
		},
	})
	err := nodes["na"].cluster.Run(context.Background(), j)
	var nf *hyracks.NodeFailure
	if !errors.As(err, &nf) || nf.Node != "nb" {
		t.Fatalf("want NodeFailure{nb}, got %v", err)
	}
}

// TestNetDropBreaksStream arms net.drop on the sending process: the
// dropped frame resets the connection and the sending task fails with a
// retriable LinkFailure — never a silent gap in the data.
func TestNetDropBreaksStream(t *testing.T) {
	defer fault.Disarm()
	if err := fault.Arm("net.drop:error:after=2:tag=nb"); err != nil {
		t.Fatal(err)
	}
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	coll := &hyracks.Collector{}
	errs := runPlaced(context.Background(), nodes, "drop#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(1, 5000))
		sink := j.Add(hyracks.NewSink("collect", 1, coll))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "gen" {
			return "nb"
		}
		return "na"
	})
	var lf *hyracks.LinkFailure
	if !errors.As(errs["nb"], &lf) {
		t.Fatalf("sender should fail with LinkFailure, got %v", errs["nb"])
	}
	if !errors.Is(errs["nb"], fault.ErrInjected) {
		t.Fatalf("link failure should wrap the injected fault: %v", errs["nb"])
	}
	if counterValue(nodes["nb"].metrics, "net_frames_dropped_total") == 0 {
		t.Fatal("drop not counted")
	}
	if counterValue(nodes["nb"].metrics, "net_conn_resets_total") == 0 {
		t.Fatal("drop must reset the connection")
	}
}

// TestConnResetMidFrame arms the torn-write fault: the receiver sees a
// truncated wire frame (caught by length/CRC framing), the connection
// resets, and the sender surfaces a retriable LinkFailure.
func TestConnResetMidFrame(t *testing.T) {
	defer fault.Disarm()
	if err := fault.Arm("net.conn.reset:torn:after=1:tag=nb"); err != nil {
		t.Fatal(err)
	}
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	coll := &hyracks.Collector{}
	errs := runPlaced(context.Background(), nodes, "torn#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(1, 5000))
		sink := j.Add(hyracks.NewSink("collect", 1, coll))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "gen" {
			return "nb"
		}
		return "na"
	})
	var lf *hyracks.LinkFailure
	if !errors.As(errs["nb"], &lf) {
		t.Fatalf("sender should fail with LinkFailure, got %v", errs["nb"])
	}
	if !strings.Contains(errs["nb"].Error(), "reset mid-frame") {
		t.Fatalf("unexpected failure: %v", errs["nb"])
	}
}

// TestStaleAttemptFramesDropped delivers frames for an unregistered
// job attempt: they must be counted stale and discarded, not crash or
// leak into a later attempt.
func TestStaleAttemptFramesDropped(t *testing.T) {
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	payload := encodeDataPayload(nil, edgeRef{jobID: "ghost#9", edge: 0}, 0, testFrame())
	if err := nodes["nb"].peer.send("na", msgData, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for counterValue(nodes["na"].metrics, "net_stale_frames_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale frame never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterClose runs a cross-peer job, closes the mesh,
// and checks the process goroutine count returns to baseline — the
// crash-matrix condition that transports never leak watchers, inject
// loops, or readers.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		nodes := startMesh(t, []string{"na", "nb", "nc"}, nil)
		coll := &hyracks.Collector{}
		errs := runPlaced(context.Background(), nodes, "leak#1", func(n *simNode) *hyracks.Job {
			j := hyracks.NewJob()
			gen := j.Add(genOp(3, 200))
			sink := j.Add(hyracks.NewSink("collect", 1, coll))
			j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
			return j
		}, func(op string, part int) string {
			if op == "collect" {
				return "na"
			}
			return []string{"na", "nb", "nc"}[part%3]
		})
		for id, err := range errs {
			if err != nil {
				t.Fatalf("node %s: %v", id, err)
			}
		}
		if coll.Len() != 600 {
			t.Fatalf("got %d rows, want 600", coll.Len())
		}
		for _, n := range nodes {
			n.peer.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWaitNetAttribution checks that wire stalls show up in the span
// wait profile under the net kind.
func TestWaitNetAttribution(t *testing.T) {
	defer fault.Disarm()
	if err := fault.Arm("net.delay:delay=5ms:times=3:tag=nb"); err != nil {
		t.Fatal(err)
	}
	nodes := startMesh(t, []string{"na", "nb"}, nil)
	span := obs.NewSpan("job")
	ctx := obs.ContextWithSpan(context.Background(), span)
	coll := &hyracks.Collector{}
	errs := runPlaced(ctx, nodes, "wait#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(1, 2000))
		sink := j.Add(hyracks.NewSink("collect", 1, coll))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "gen" {
			return "nb"
		}
		return "na"
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
	}
	if coll.Len() != 2000 {
		t.Fatalf("got %d rows, want 2000", coll.Len())
	}
	if w := span.WaitRollup()[obs.WaitNet]; w < 5*time.Millisecond {
		t.Fatalf("net wait %v not attributed (want ≥ 5ms)", w)
	}
}

// TestConcentratedMergeExact is the topology that can overrun a receive
// queue sized for one sender's window: an unordered merge concentrates
// every producer of a 3-node mesh onto ONE channel, and each remote
// producer process holds its own credit window for it. With a slow
// consumer keeping the queue under pressure, every row must still
// arrive exactly once — an overflow-turned-silent-drop would show up as
// a short count.
func TestConcentratedMergeExact(t *testing.T) {
	nodes := startMesh(t, []string{"na", "nb", "nc"}, func(id string, o *Options) {
		o.CreditWindow = 4
	})
	const rowsPerPart = 4000
	var got atomic.Int64
	errs := runPlaced(context.Background(), nodes, "conc#1", func(n *simNode) *hyracks.Job {
		j := hyracks.NewJob()
		gen := j.Add(genOp(3, rowsPerPart))
		sink := j.Add(hyracks.NewFuncSink("collect", 1, func(_ int, t hyracks.Tuple) error {
			// Stall roughly once per frame so the receive queue stays
			// under pressure while both remote windows are in flight.
			if got.Add(1)%256 == 0 {
				time.Sleep(time.Millisecond)
			}
			return nil
		}))
		j.MustConnect(gen, sink, 0, hyracks.MergeUnordered())
		return j
	}, func(op string, part int) string {
		if op == "collect" {
			return "na"
		}
		return []string{"na", "nb", "nc"}[part%3]
	})
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
	}
	if got.Load() != 3*rowsPerPart {
		t.Fatalf("concentrated merge delivered %d rows, want %d (frames lost to queue overflow?)",
			got.Load(), 3*rowsPerPart)
	}
}

// TestRecvOverflowPoisonsEdge drives a receive queue past its capacity
// by hand (a peer violating its credit window): the overflow must fail
// the attempt with a retriable LinkFailure, and the poisoned edge must
// never fire EOS — a dropped frame must not end in a "complete" stream.
func TestRecvOverflowPoisonsEdge(t *testing.T) {
	p, err := NewPeer(Options{ID: "na", ListenAddr: "127.0.0.1:0",
		Metrics: obs.NewRegistry(), CreditWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	failed := make(chan error, 1)
	eos := make(chan struct{}, 4)
	recv := make(chan []hyracks.Tuple) // never read: the consumer is wedged
	ref := edgeRef{jobID: "v#1", edge: 0}
	if _, err := p.OpenEdge(context.Background(), hyracks.EdgeDesc{
		JobID:     ref.jobID,
		Edge:      ref.edge,
		Owners:    []string{""},
		Recv:      []chan []hyracks.Tuple{recv},
		Producers: 1,
		Senders:   1,
		EOS:       func() { eos <- struct{}{} },
		Fail: func(err error) {
			select {
			case failed <- err:
			default:
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Queue capacity is w*senders + producers = 2 and the inject
	// goroutine can hold one more: a burst of 5 frames must overflow.
	payload := encodeDataPayload(nil, ref, 0, testFrame())
	for i := 0; i < 5; i++ {
		p.deliverData("nb", payload)
	}
	select {
	case err := <-failed:
		var lf *hyracks.LinkFailure
		if !errors.As(err, &lf) {
			t.Fatalf("overflow should fail as LinkFailure, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("credit-window overrun never failed the attempt")
	}
	p.deliverEOS("nb", appendEdgeRef(nil, ref))
	select {
	case <-eos:
		t.Fatal("EOS fired on an edge that dropped a frame")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestPeerDownRevivesOnHeal latches a peer down behind a partition,
// heals it, and requires the detector to hear the peer again (revive)
// and to fire again on a second silence — failure detection must not be
// one-shot per process lifetime.
func TestPeerDownRevivesOnHeal(t *testing.T) {
	defer fault.Disarm()
	var ups, downs atomic.Int32
	nodes := startMesh(t, []string{"na", "nb"}, func(id string, o *Options) {
		if id != "na" {
			return
		}
		innerUp, innerDown := o.OnPeerUp, o.OnPeerDown
		o.OnPeerUp = func(peer string) { ups.Add(1); innerUp(peer) }
		o.OnPeerDown = func(peer string) { downs.Add(1); innerDown(peer) }
	})
	deadline := time.Now().Add(10 * time.Second)
	warm := func(a, b string) bool { return nodes[a].peer.peer(b).lastSeen.Load() != 0 }
	for !(warm("na", "nb") && warm("nb", "na")) {
		if time.Now().After(deadline) {
			t.Fatal("mesh never warmed up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wait := func(cond func() bool, what string) {
		t.Helper()
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	nb := func() *hyracks.NodeController { return nodes["na"].cluster.NodeByID("nb") }

	if err := fault.Arm("net.partition:error:times=0:tag=nb"); err != nil {
		t.Fatal(err)
	}
	wait(func() bool { return nb().Dead() }, "first down transition")

	// Heal: both sides are down-latched, so convergence needs the
	// detector to keep dialing and heartbeating a down peer.
	fault.Disarm()
	wait(func() bool { return !nb().Dead() && ups.Load() >= 1 }, "revive after heal")

	// A second silence must fire detection again.
	if err := fault.Arm("net.partition:error:times=0:tag=nb"); err != nil {
		t.Fatal(err)
	}
	wait(func() bool { return nb().Dead() && downs.Load() >= 2 }, "second down transition")
}

// TestPartitionIsolatesPeer arms a lasting partition on one node of a
// three-node mesh (scoped by tag): both sides must eventually declare
// each other dead while the unpartitioned pair stays healthy.
func TestPartitionIsolatesPeer(t *testing.T) {
	defer fault.Disarm()
	nodes := startMesh(t, []string{"na", "nb", "nc"}, nil)
	// Let the mesh warm up so everyone has heard everyone.
	deadline := time.Now().Add(5 * time.Second)
	warm := func(a, b string) bool { return nodes[a].peer.peer(b).lastSeen.Load() != 0 }
	for !(warm("na", "nb") && warm("na", "nc") && warm("nb", "na") && warm("nc", "na")) {
		if time.Now().After(deadline) {
			t.Fatal("mesh never warmed up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := fault.Arm("net.partition:error:times=0:tag=nc"); err != nil {
		t.Fatal(err)
	}
	for !nodes["na"].cluster.NodeByID("nc").Dead() {
		if time.Now().After(deadline) {
			t.Fatal("na never declared partitioned nc dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if nodes["na"].cluster.NodeByID("nb").Dead() {
		t.Fatal("unpartitioned nb wrongly declared dead on na")
	}
	if !nodes["na"].cluster.NodeByID("nc").Dead() {
		t.Fatal("partitioned nc not declared dead on na")
	}
}

// TestPooledExchangeSoakUnderDelay is the pooled-frame aliasing soak:
// a 3-node mesh moves hash-partitioned rows through pooled frame
// containers on both the send path (connWriter batches recycle after
// the transport serializes them) and the receive path (inbound frames
// decode into containers drawn from the cluster pool), while net.delay
// randomly stalls nb's outbound frames. Every round must deliver every
// row exactly once with its payload still paired to its id — a frame
// recycled while the wire or a consumer still held it would corrupt
// pairs or counts — and the pool must show real recycling.
func TestPooledExchangeSoakUnderDelay(t *testing.T) {
	defer fault.Disarm()
	if err := fault.Arm("net.delay:delay=1ms:p=0.2:times=0:tag=nb"); err != nil {
		t.Fatal(err)
	}
	nodes := startMesh(t, []string{"na", "nb", "nc"}, nil)
	// Warm the mesh: with two producer partitions per node, cold
	// concurrent first-sends to the same peer race the dialer; the
	// heartbeat loop establishes the links first.
	deadline := time.Now().Add(5 * time.Second)
	for _, a := range []string{"na", "nb", "nc"} {
		for _, b := range []string{"na", "nb", "nc"} {
			if a == b {
				continue
			}
			for nodes[a].peer.peer(b).lastSeen.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("mesh never warmed up")
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	const rows, parts, rounds = 6000, 6, 3
	for round := 0; round < rounds; round++ {
		var mu sync.Mutex
		seen := make([]int64, rows)
		dup := false
		errs := runPlaced(context.Background(), nodes, "soak#"+string(rune('a'+round)), func(n *simNode) *hyracks.Job {
			j := hyracks.NewJob()
			gen := j.Add(hyracks.NewScan("gen", parts, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
				for i := tc.Partition; i < rows; i += tc.NumPartitions {
					if err := emit(hyracks.Tuple{adm.Int64(i), adm.Int64(i * 10)}); err != nil {
						return err
					}
				}
				return nil
			}))
			sink := j.Add(hyracks.NewFuncSink("verify", 3, func(_ int, tp hyracks.Tuple) error {
				id, _ := adm.AsInt(tp[0])
				v, _ := adm.AsInt(tp[1])
				if v != id*10 {
					return errors.New("aliasing corruption: payload no longer pairs with id")
				}
				mu.Lock()
				seen[id]++
				if seen[id] > 1 {
					dup = true
				}
				mu.Unlock()
				return nil
			}))
			j.MustConnect(gen, sink, 0, hyracks.HashPartition(0))
			return j
		}, func(op string, part int) string {
			return []string{"na", "nb", "nc"}[part%3]
		})
		for id, err := range errs {
			if err != nil {
				t.Fatalf("round %d node %s: %v", round, id, err)
			}
		}
		missing := 0
		for _, n := range seen {
			if n == 0 {
				missing++
			}
		}
		if missing > 0 || dup {
			t.Fatalf("round %d: %d rows missing, dup=%v", round, missing, dup)
		}
	}
	reused := int64(0)
	for _, n := range nodes {
		reused += n.cluster.FramePool().Stats().Reuses
	}
	if reused == 0 {
		t.Fatal("frame pools never recycled a container across the soak")
	}
}
