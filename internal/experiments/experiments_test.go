package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps the smoke tests fast.
var tiny = Scale{Users: 200, Messages: 600, Points: 2000, Keys: 2000,
	LogLines: 200, SortRows: 3000, Queries: 1}

func runExp(t *testing.T, f func(Scale, string) (*Report, error)) *Report {
	t.Helper()
	rep, err := f(tiny, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), rep.ID) {
		t.Error("report print missing id")
	}
	return rep
}

func TestE1ScaleOut(t *testing.T) {
	rep := runExp(t, E1ScaleOut)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "1" || rep.Rows[2][0] != "4" {
		t.Errorf("partition column: %v", rep.Rows)
	}
}

func TestE2Spatial(t *testing.T) {
	rep := runExp(t, E2Spatial)
	// 4 index kinds × 3 selectivities.
	if len(rep.Rows) != 12 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	// Same selectivity row blocks must agree on result count across
	// index kinds (they answer the same query).
	bySel := map[string]string{}
	for _, row := range rep.Rows {
		key := row[1]
		if prev, ok := bySel[key]; ok {
			if prev != row[5] {
				t.Errorf("selectivity %s: result count differs across indexes: %s vs %s",
					key, prev, row[5])
			}
		} else {
			bySel[key] = row[5]
		}
	}
	// Candidates >= rows (superset property).
	for _, row := range rep.Rows {
		c, _ := strconv.Atoi(row[2])
		n, _ := strconv.Atoi(row[5])
		if c < n {
			t.Errorf("%s: candidates %d < results %d", row[0], c, n)
		}
	}
}

func TestE3BtreeVsHash(t *testing.T) {
	rep := runExp(t, E3BtreeVsHash)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "B+tree" || rep.Rows[1][0] != "linear-hash" {
		t.Errorf("structure column: %v", rep.Rows)
	}
}

func TestE4MRvsHyracks(t *testing.T) {
	rep := runExp(t, E4MRvsHyracks)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	// Both engines must produce the same number of result groups.
	if rep.Rows[0][3] != rep.Rows[1][3] {
		t.Errorf("result rows differ: hyracks %s vs mr %s", rep.Rows[0][3], rep.Rows[1][3])
	}
	// MR must actually shuffle bytes to disk.
	if rep.Rows[1][2] == "0" {
		t.Error("mapreduce reported no shuffle bytes")
	}
}

func TestE5MemoryBudget(t *testing.T) {
	rep := runExp(t, E5MemoryBudget)
	if len(rep.Rows) != 6 {
		t.Fatalf("rows: %d, want 3 budget sweeps + 3 concurrent queries", len(rep.Rows))
	}
	// Tightest budget must spill; largest must not.
	if rep.Rows[0][2] != "0" {
		t.Errorf("over-provisioned sort spilled: %v", rep.Rows[0])
	}
	if rep.Rows[2][2] == "0" {
		t.Errorf("tight-budget sort did not spill: %v", rep.Rows[2])
	}
	// Concurrent queries sharing one governed pool all completed and
	// report a nonzero granted peak.
	for _, row := range rep.Rows[3:] {
		if !strings.HasPrefix(row[0], "conc-q") {
			t.Errorf("concurrent row mislabeled: %v", row)
		}
		if row[3] == "0KB" {
			t.Errorf("concurrent query reported no peak grant: %v", row)
		}
	}
}

func TestE6HTAPIsolation(t *testing.T) {
	rep := runExp(t, E6HTAPIsolation)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[1][3] != "0" {
		t.Errorf("shadow lag nonzero after catch-up: %v", rep.Rows[1])
	}
}

func TestE7AqlVsSqlpp(t *testing.T) {
	rep := runExp(t, E7AqlVsSqlpp)
	for _, row := range rep.Rows {
		if row[4] != "true" {
			t.Errorf("results differ for %s", row[0])
		}
	}
}

func TestE8MergePolicy(t *testing.T) {
	rep := runExp(t, E8MergePolicy)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	noneComps, _ := strconv.Atoi(rep.Rows[0][2])
	constComps, _ := strconv.Atoi(rep.Rows[1][2])
	if noneComps <= constComps {
		t.Errorf("no-merge should accumulate more components: none=%d constant=%d",
			noneComps, constComps)
	}
}

func TestE9Figure3(t *testing.T) {
	rep := runExp(t, E9Figure3)
	if len(rep.Rows) != 1 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[0][3] == "0" {
		t.Error("figure 3 query returned no groups")
	}
}

func TestE10Recovery(t *testing.T) {
	rep := runExp(t, E10Recovery)
	if rep.Rows[0][4] != "true" {
		t.Error("recovery verification failed")
	}
}

func TestE13NodeFailure(t *testing.T) {
	rep := runExp(t, E13NodeFailure)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "healthy" || rep.Rows[1][0] != "node-killed" {
		t.Errorf("scenario column: %v", rep.Rows)
	}
	// The wounded run must have retried and named the dead node.
	if rep.Rows[1][2] == "1" || rep.Rows[1][3] == "" {
		t.Errorf("no retry recorded: %v", rep.Rows[1])
	}
	// Same answer either way.
	if rep.Rows[0][4] != rep.Rows[1][4] {
		t.Errorf("row counts differ: %v", rep.Rows)
	}
}

func TestE15DistJoinLinkFault(t *testing.T) {
	rep := runExp(t, E15DistJoinLinkFault)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "clean" || rep.Rows[1][0] != "link-fault" {
		t.Errorf("scenario column: %v", rep.Rows)
	}
	// The fault run must have retried, and both runs must agree on the
	// exact join cardinality — a short count is silent data loss.
	if rep.Rows[1][2] == "1" {
		t.Errorf("no retry recorded: %v", rep.Rows[1])
	}
	if rep.Rows[0][3] != rep.Rows[1][3] {
		t.Errorf("row counts differ: %v", rep.Rows)
	}
}

func TestE14HotPathAllocs(t *testing.T) {
	rep := runExp(t, E14HotPathAllocs)
	if len(rep.Measurements) < 6 {
		t.Fatalf("measurements: %d, want >= 6", len(rep.Measurements))
	}
	// The experiment itself fails when a small-shape kernel allocates;
	// here just check the wide fallback really is the allocating
	// baseline so the before/after story holds.
	for _, m := range rep.Measurements {
		if m.Name == "adm_compare_object_wide" && m.Value <= 0 {
			t.Errorf("wide compare should allocate (it is the legacy path), got %v", m.Value)
		}
	}
}

func TestE17PooledBuffers(t *testing.T) {
	rep := runExp(t, E17PooledBuffers)
	get := func(name string) float64 {
		for _, m := range rep.Measurements {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("measurement %s missing", name)
		return 0
	}
	// The experiment fails itself when pooling buys nothing; assert the
	// artifact carries both sides of each before/after pair.
	if p, u := get("exchange_allocs_per_row_pooled"), get("exchange_allocs_per_row_unpooled"); p >= u {
		t.Errorf("exchange pooled %.2f >= unpooled %.2f", p, u)
	}
	if p, u := get("wire_decode_allocs_per_frame_pooled"), get("wire_decode_allocs_per_frame_unpooled"); p >= u {
		t.Errorf("wire decode pooled %.2f >= unpooled %.2f", p, u)
	}
}
