package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"asterix/internal/adm"
	"asterix/internal/benchfmt"
	"asterix/internal/btree"
	"asterix/internal/core"
	"asterix/internal/hyracks"
	"asterix/internal/linearhash"
	"asterix/internal/lsm"
	"asterix/internal/mapreduce"
	"asterix/internal/mem"
	"asterix/internal/obs"
	"asterix/internal/storage"
)

// Scale sets workload sizes; Small keeps tests/benches fast, Full is the
// asterixbench default.
type Scale struct {
	Users    int
	Messages int
	Points   int
	Keys     int
	LogLines int
	SortRows int
	Queries  int
}

// Small is the CI-friendly scale.
var Small = Scale{Users: 2000, Messages: 6000, Points: 20000, Keys: 20000,
	LogLines: 2000, SortRows: 30000, Queries: 3}

// Full is the report-quality scale.
var Full = Scale{Users: 20000, Messages: 60000, Points: 200000, Keys: 200000,
	LogLines: 20000, SortRows: 500000, Queries: 5}

// Report is one experiment's result: the prose table plus the typed
// measurements and wait attribution the BENCH_<n>.json artifact is built
// from.
type Report struct {
	ID     string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Measurements are the experiment's named metrics — what the
	// regression comparator diffs (the prose rows are for humans).
	Measurements []benchfmt.Measurement
	// PeakWorking is the high-water mark of granted working memory the
	// experiment observed across its jobs (0 when nothing drew from the
	// governor's working pool).
	PeakWorking int64

	// span is the experiment's root trace span; queries run under
	// Ctx() attribute admission/lock/spill/flush/merge/exchange waits
	// to it.
	span *obs.Span
}

// Ctx returns a context carrying the experiment's root span, so engine
// calls made with it feed the artifact's wait-time rollup.
func (r *Report) Ctx() context.Context {
	//lint:ignore obs-nil lazy creation of the root span, not instrumentation branching
	if r.span == nil {
		r.span = obs.NewSpan(r.ID)
	}
	return obs.ContextWithSpan(context.Background(), r.span)
}

// Waits returns the experiment's accumulated wait attribution
// (WaitRollup is nil-safe: no Ctx call means an all-zero profile).
func (r *Report) Waits() obs.WaitProfile {
	return r.span.WaitRollup()
}

// Measure records a lower-is-better metric (times, bytes, I/O counts).
func (r *Report) Measure(name, unit string, value float64) {
	r.Measurements = append(r.Measurements, benchfmt.Measurement{
		Name: name, Unit: unit, Value: value, Better: benchfmt.LowerBetter,
	})
}

// MeasureHigher records a higher-is-better metric (speedups, rates).
func (r *Report) MeasureHigher(name, unit string, value float64) {
	r.Measurements = append(r.Measurements, benchfmt.Measurement{
		Name: name, Unit: unit, Value: value, Better: benchfmt.HigherBetter,
	})
}

// notePeak raises the experiment's working-memory high-water mark.
func (r *Report) notePeak(bytes int64) {
	if bytes > r.PeakWorking {
		r.PeakWorking = bytes
	}
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Claim)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(r.Header)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }

func fixedClock() func() time.Time {
	t, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	return func() time.Time { return t }
}

// newEngine builds an engine under dir. Commit fsyncs are off: the
// experiments measure engine behavior, not the host's fsync latency
// (group commit would amortize it in a production configuration).
func newEngine(dir string, partitions int, policy lsm.MergePolicy, memBudget int) (*core.Engine, error) {
	return core.Open(core.Config{
		DataDir:            dir,
		Partitions:         partitions,
		Nodes:              partitions,
		MergePolicy:        policy,
		MemComponentBudget: memBudget,
		NoSyncCommits:      true,
		Now:                fixedClock(),
	})
}

func ingestGleambook(e *core.Engine, users, messages int, seed int64) error {
	if _, err := e.Execute(context.Background(), gleambookDDL); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < users; i++ {
		if err := e.UpsertValue("GleambookUsers", GenUser(i, users, r)); err != nil {
			return err
		}
	}
	for i := 0; i < messages; i++ {
		if err := e.UpsertValue("GleambookMessages", GenMessage(i, users, r)); err != nil {
			return err
		}
	}
	return nil
}

// E1ScaleOut regenerates the scale-out claim (§III / [13]): the same
// workload across 1..P partitions should speed up with P.
func E1ScaleOut(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E1",
		Claim:  "storage and query scale with hash partitioning (shape: speedup grows with partitions)",
		Header: []string{"partitions", "gomaxprocs", "ingest", "query(avg)", "speedup"},
		Notes: []string{fmt.Sprintf(
			"host has %d CPU core(s) visible to Go — wall-clock speedup is bounded by that; "+
				"the structural property (goroutine-per-partition tasks, hash exchanges) is exercised regardless",
			runtime.GOMAXPROCS(0))},
	}
	query := `
		SELECT u.id AS id, COUNT(m) AS cnt
		FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id
		GROUP BY u.id AS id;`
	var base time.Duration
	for _, p := range []int{1, 2, 4} {
		dir := filepath.Join(workDir, fmt.Sprintf("e1-p%d", p))
		e, err := newEngine(dir, p, nil, 0)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := ingestGleambook(e, scale.Users, scale.Messages, 1); err != nil {
			e.Close()
			return nil, err
		}
		ingest := time.Since(t0)
		var total time.Duration
		for q := 0; q < scale.Queries; q++ {
			t1 := time.Now()
			res, err := e.Query(rep.Ctx(), query)
			if err != nil {
				e.Close()
				return nil, err
			}
			total += time.Since(t1)
			rep.notePeak(res.PeakWorkingMem)
		}
		avg := total / time.Duration(scale.Queries)
		if p == 1 {
			base = avg
		}
		speedup := float64(base) / float64(avg)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(p), fmt.Sprint(runtime.GOMAXPROCS(0)), ms(ingest), ms(avg),
			fmt.Sprintf("%.2fx", speedup),
		})
		rep.Measure(fmt.Sprintf("ingest_p%d", p), "ms", float64(ingest.Microseconds())/1000)
		rep.Measure(fmt.Sprintf("query_p%d", p), "ms", float64(avg.Microseconds())/1000)
		if p > 1 {
			rep.MeasureHigher(fmt.Sprintf("speedup_p%d", p), "x", speedup)
		}
		e.Close()
		//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
		os.RemoveAll(dir)
	}
	return rep, nil
}

// E2Spatial regenerates the Section V-B study [23]: different spatial
// indexes differ in index-portion time, but end-to-end query times land
// close together because the object fetch dominates.
func E2Spatial(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E2",
		Claim:  "LSM spatial index choice matters for index time but washes out end-to-end (±10% band)",
		Header: []string{"index", "selectivity", "candidates", "index-only", "end-to-end", "rows"},
		Notes: []string{
			"candidate counts > rows show curve/grid false positives filtered after the (dominant) fetch",
		},
	}
	dir := filepath.Join(workDir, "e2")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(dir, 2, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	ctx := rep.Ctx()
	if _, err := e.Execute(ctx, `
		CREATE TYPE PointType AS {id: int, loc: point, payload: string};
		CREATE DATASET Points(PointType) PRIMARY KEY id;`); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < scale.Points; i++ {
		if err := e.UpsertValue("Points", GenPoint(i, r)); err != nil {
			return nil, err
		}
	}
	kinds := []string{"RTREE", "ZORDER", "HILBERT", "GRID"}
	sels := []float64{0.0001, 0.001, 0.01}
	// One query rectangle per selectivity, shared by every index kind so
	// the kinds answer identical queries.
	qr := rand.New(rand.NewSource(7))
	rects := make(map[float64]adm.Rectangle, len(sels))
	for _, sel := range sels {
		w := 360 * math.Sqrt(sel)
		h := 180 * math.Sqrt(sel)
		x := -180 + qr.Float64()*(360-w)
		y := -90 + qr.Float64()*(180-h)
		rects[sel] = adm.Rectangle{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
	}
	for _, kind := range kinds {
		if _, err := e.Execute(ctx, fmt.Sprintf(
			`CREATE INDEX spIdx ON Points(loc) TYPE %s;`, kind)); err != nil {
			return nil, err
		}
		si, ok := e.SecondaryIndexHandle("Points", "spIdx")
		if !ok {
			return nil, fmt.Errorf("index handle missing")
		}
		for _, sel := range sels {
			rect := rects[sel]
			t0 := time.Now()
			cands := 0
			for p := 0; p < 2; p++ {
				n, err := si.SearchSpatialCandidates(p, rect)
				if err != nil {
					return nil, err
				}
				cands += n
			}
			idxOnly := time.Since(t0)

			q := fmt.Sprintf(`SELECT VALUE p.id FROM Points p
				WHERE spatial_intersect(p.loc, create_rectangle(%g, %g, %g, %g));`,
				rect.MinX, rect.MinY, rect.MaxX, rect.MaxY)
			t1 := time.Now()
			res, err := e.Query(ctx, q)
			if err != nil {
				return nil, err
			}
			endToEnd := time.Since(t1)
			rep.Rows = append(rep.Rows, []string{
				kind, fmt.Sprintf("%.4f", sel), fmt.Sprint(cands),
				ms(idxOnly), ms(endToEnd), fmt.Sprint(len(res.Rows)),
			})
			if sel == 0.01 {
				rep.Measure("idx_only_"+strings.ToLower(kind), "ms", float64(idxOnly.Microseconds())/1000)
				rep.Measure("end_to_end_"+strings.ToLower(kind), "ms", float64(endToEnd.Microseconds())/1000)
			}
		}
		if _, err := e.Execute(ctx, `DROP INDEX Points.spIdx;`); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// E3BtreeVsHash regenerates the Section V-C lesson (Graefe): point-lookup
// I/O converges under a modest buffer cache, while the B+tree has a
// sorted bulk load that linear hashing lacks.
func E3BtreeVsHash(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E3",
		Claim:  "B+tree vs linear hashing: same practical lookup I/O; only the B+tree bulk-loads",
		Header: []string{"structure", "load-mode", "load-time", "lookup(avg I/O)", "lookup-time"},
	}
	dir := filepath.Join(workDir, "e3")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	fm, err := storage.NewFileManager(dir, 4096)
	if err != nil {
		return nil, err
	}
	//lint:ignore err-discard benchmark scratch teardown is best-effort
	defer fm.Close()
	const cachePages = 256 // a modest memory allocation
	n := scale.Keys

	key := func(i int) []byte {
		return []byte(fmt.Sprintf("key%012d", i))
	}
	val := func(i int) []byte {
		return []byte(fmt.Sprintf("value-%d-%032d", i, i))
	}

	// B+tree, sorted bulk load.
	bcB := storage.NewBufferCache(fm, cachePages)
	fileB, err := fm.Open("btree")
	if err != nil {
		return nil, err
	}
	bt, err := btree.Open(bcB, fileB)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	i := 0
	err = bt.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k, v := key(i), val(i)
		i++
		return k, v, true
	})
	if err != nil {
		return nil, err
	}
	btLoad := time.Since(t0)

	// Linear hashing: record-at-a-time inserts (no bulk load exists).
	bcH := storage.NewBufferCache(fm, cachePages)
	fileH, err := fm.Open("lhash")
	if err != nil {
		return nil, err
	}
	lh, err := linearhash.Open(bcH, fileH)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if err := lh.Insert(key(i), val(i)); err != nil {
			return nil, err
		}
	}
	lhLoad := time.Since(t0)

	// Random lookups under the modest cache.
	lookups := 5000
	r := rand.New(rand.NewSource(3))
	probes := make([]int, lookups)
	for i := range probes {
		probes[i] = r.Intn(n)
	}
	bcB.ResetStats()
	t0 = time.Now()
	for _, p := range probes {
		if _, ok, err := bt.Search(key(p)); err != nil || !ok {
			return nil, fmt.Errorf("btree lookup failed: %v %v", ok, err)
		}
	}
	btTime := time.Since(t0)
	btIO := float64(bcB.Stats().Reads) / float64(lookups)

	bcH.ResetStats()
	t0 = time.Now()
	for _, p := range probes {
		if _, ok, err := lh.Search(key(p)); err != nil || !ok {
			return nil, fmt.Errorf("hash lookup failed: %v %v", ok, err)
		}
	}
	lhTime := time.Since(t0)
	lhIO := float64(bcH.Stats().Reads) / float64(lookups)

	rep.Rows = append(rep.Rows,
		[]string{"B+tree", "sorted bulk load", ms(btLoad), fmt.Sprintf("%.2f", btIO), ms(btTime)},
		[]string{"linear-hash", "per-record insert", ms(lhLoad), fmt.Sprintf("%.2f", lhIO), ms(lhTime)},
	)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("load ratio (hash/btree): %.1fx — the missing-bulk-load cost", float64(lhLoad)/float64(btLoad)))
	rep.Measure("btree_bulk_load", "ms", float64(btLoad.Microseconds())/1000)
	rep.Measure("lhash_load", "ms", float64(lhLoad.Microseconds())/1000)
	rep.Measure("btree_lookup_io", "reads/lookup", btIO)
	rep.Measure("lhash_lookup_io", "reads/lookup", lhIO)
	return rep, nil
}

// E4MRvsHyracks regenerates the Section IV judgment: the same
// join+aggregate runs as a two-stage MapReduce chain (materialized
// shuffle, phase barriers) and as a pipelined parallel query.
func E4MRvsHyracks(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E4",
		Claim:  "MapReduce's materialize-and-barrier model loses to pipelined parallel query execution",
		Header: []string{"engine", "time", "shuffle-bytes", "result-rows"},
	}
	dir := filepath.Join(workDir, "e4")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(filepath.Join(dir, "engine"), 2, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if err := ingestGleambook(e, scale.Users, scale.Messages, 4); err != nil {
		return nil, err
	}

	// SQL++ side: per-author message counts joined with user names.
	query := `
		SELECT u.name AS name, COUNT(m) AS cnt
		FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id
		GROUP BY u.name AS name;`
	t0 := time.Now()
	res, err := e.Query(rep.Ctx(), query)
	if err != nil {
		return nil, err
	}
	hyracksTime := time.Since(t0)
	rep.notePeak(res.PeakWorkingMem)
	rep.Rows = append(rep.Rows, []string{
		"hyracks (SQL++)", ms(hyracksTime), "0", fmt.Sprint(len(res.Rows)),
	})

	// MapReduce side over the same data (read from the engine's own
	// partitions, like an MR job scanning the cluster's files).
	users, _ := e.Dataset("GleambookUsers")
	msgs, _ := e.Dataset("GleambookMessages")
	read := func(d interface {
		Partitions() int
		ScanPartition(int, func(adm.Value) error) error
	}) ([]adm.Value, error) {
		var out []adm.Value
		for p := 0; p < d.Partitions(); p++ {
			if err := d.ScanPartition(p, func(rec adm.Value) error {
				out = append(out, rec)
				return nil
			}); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	t0 = time.Now()
	uRecs, err := read(users)
	if err != nil {
		return nil, err
	}
	mRecs, err := read(msgs)
	if err != nil {
		return nil, err
	}
	tagged := make([]adm.Value, 0, len(uRecs)+len(mRecs))
	for _, u := range uRecs {
		o := adm.NewObject(u.(*adm.Object).Fields()...)
		o.Set("$tag", adm.String("u"))
		tagged = append(tagged, o)
	}
	for _, m := range mRecs {
		o := adm.NewObject(m.(*adm.Object).Fields()...)
		o.Set("$tag", adm.String("m"))
		tagged = append(tagged, o)
	}
	joinStage := &mapreduce.Job{
		Name: "join", NumMaps: 2, NumReduces: 2, TmpDir: dir,
		Input: func(task int, emit func(adm.Value) error) error {
			for i, rec := range tagged {
				if i%2 == task {
					if err := emit(rec); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Map: func(rec adm.Value, emit func(k, v adm.Value) error) error {
			o := rec.(*adm.Object)
			if o.Get("$tag").String() == `"u"` {
				return emit(o.Get("id"), rec)
			}
			return emit(o.Get("authorId"), rec)
		},
		Reduce: func(key adm.Value, values []adm.Value, emit func(adm.Value) error) error {
			var name adm.Value = adm.Null
			cnt := int64(0)
			for _, v := range values {
				o := v.(*adm.Object)
				if o.Get("$tag").String() == `"u"` {
					name = o.Get("name")
				} else {
					cnt++
				}
			}
			if name.Kind() <= adm.KindNull || cnt == 0 {
				return nil
			}
			return emit(adm.NewObject(
				adm.Field{Name: "name", Value: name},
				adm.Field{Name: "cnt", Value: adm.Int64(cnt)},
			))
		},
	}
	mrOut, stats, err := mapreduce.Run(joinStage)
	if err != nil {
		return nil, err
	}
	mrTime := time.Since(t0)
	rep.Rows = append(rep.Rows, []string{
		"mapreduce", ms(mrTime), fmt.Sprint(stats.ShuffleBytes), fmt.Sprint(len(mrOut)),
	})
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("hyracks speedup: %.1fx", float64(mrTime)/float64(hyracksTime)))
	rep.Measure("hyracks_time", "ms", float64(hyracksTime.Microseconds())/1000)
	rep.Measure("mapreduce_time", "ms", float64(mrTime.Microseconds())/1000)
	rep.MeasureHigher("hyracks_speedup", "x", float64(mrTime)/float64(hyracksTime))
	return rep, nil
}

// E5MemoryBudget regenerates the Figure 2 memory story: budgeted sorts
// degrade gracefully (spill) as the working memory shrinks below the
// data, and concurrent queries sharing one governed pool all complete by
// trading memory for spilling.
func E5MemoryBudget(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E5",
		Claim:  "operators spill and complete when data exceeds working memory (graceful degradation)",
		Header: []string{"budget", "time", "spill-runs", "peak-grant"},
	}
	dir := filepath.Join(workDir, "e5")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	rows := scale.SortRows
	dataBytes := rows * 64
	budgets := []int{dataBytes * 2, dataBytes / 4, dataBytes / 16}
	budgetLabels := []string{"sort_mem2x", "sort_mem_quarter", "sort_mem_16th"}
	for bi, budget := range budgets {
		cluster, err := hyracks.NewCluster(1, dir)
		if err != nil {
			return nil, err
		}
		cluster.Gov = mem.NewGovernor(mem.Config{WorkingBytes: int64(budget)})
		j := hyracks.NewJob()
		scan := j.Add(hyracks.NewScan("gen", 1, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
			r := rand.New(rand.NewSource(5))
			for i := 0; i < rows; i++ {
				if err := emit(hyracks.Tuple{adm.Int64(r.Int63()), adm.String("payload-padding-1234567890")}); err != nil {
					return err
				}
			}
			return nil
		}))
		cmp := hyracks.Comparator{Columns: []int{0}}
		sortOp := j.Add(hyracks.NewSort("sort", 1, cmp))
		count := 0
		sink := j.Add(hyracks.NewFuncSink("sink", 1, func(p int, t hyracks.Tuple) error {
			count++
			return nil
		}))
		j.MustConnect(scan, sortOp, 0, hyracks.OneToOne())
		j.MustConnect(sortOp, sink, 0, hyracks.OneToOne())
		t0 := time.Now()
		if err := cluster.Run(rep.Ctx(), j); err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		if count != rows {
			return nil, fmt.Errorf("sort lost rows: %d of %d", count, rows)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dKB", budget/1024), ms(elapsed), fmt.Sprint(cluster.Nodes[0].Stats().Spills),
			fmt.Sprintf("%dKB", j.PeakWorkingBytes()/1024),
		})
		rep.Measure(budgetLabels[bi], "ms", float64(elapsed.Microseconds())/1000)
		rep.notePeak(j.PeakWorkingBytes())
	}

	// Concurrent variant: M simultaneous heavy group-by queries share one
	// governor whose pool holds about half of one query's hash table. The
	// governor admits each at its minimum grant and denies growth under
	// contention, so every query completes by spilling instead of failing.
	const concurrent = 3
	concBudget := dataBytes / 2
	cluster, err := hyracks.NewCluster(1, dir)
	if err != nil {
		return nil, err
	}
	gov := mem.NewGovernor(mem.Config{WorkingBytes: int64(concBudget)})
	cluster.Gov = gov
	type concRes struct {
		elapsed time.Duration
		peak    int64
		groups  int
		err     error
	}
	results := make([]concRes, concurrent)
	ctx := rep.Ctx() // resolve once: the span is goroutine-safe, lazy init is not
	var wg sync.WaitGroup
	for q := 0; q < concurrent; q++ {
		q := q
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := hyracks.NewJob()
			scan := j.Add(hyracks.NewScan("gen", 1, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
				r := rand.New(rand.NewSource(int64(100 + q)))
				for i := 0; i < rows; i++ {
					t := hyracks.Tuple{adm.Int64(r.Int63n(int64(rows / 4))), adm.String("payload-padding-1234567890")}
					if err := emit(t); err != nil {
						return err
					}
				}
				return nil
			}))
			gb := j.Add(hyracks.NewGroupBy("gb", 1, []int{0}, []hyracks.AggSpec{hyracks.CountAgg(-1)}))
			n := 0
			sink := j.Add(hyracks.NewFuncSink("sink", 1, func(p int, t hyracks.Tuple) error {
				n++
				return nil
			}))
			j.MustConnect(scan, gb, 0, hyracks.OneToOne())
			j.MustConnect(gb, sink, 0, hyracks.OneToOne())
			t0 := time.Now()
			err := cluster.Run(ctx, j)
			results[q] = concRes{elapsed: time.Since(t0), peak: j.PeakWorkingBytes(), groups: n, err: err}
		}()
	}
	wg.Wait()
	var concMax time.Duration
	for q, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("concurrent query %d: %w", q, r.err)
		}
		if r.groups == 0 {
			return nil, fmt.Errorf("concurrent query %d produced no groups", q)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("conc-q%d/%dKB", q, concBudget/1024), ms(r.elapsed), "-",
			fmt.Sprintf("%dKB", r.peak/1024),
		})
		rep.notePeak(r.peak)
		if r.elapsed > concMax {
			concMax = r.elapsed
		}
	}
	rep.Measure("concurrent_makespan", "ms", float64(concMax.Microseconds())/1000)
	st := gov.StatsSnapshot()
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"concurrent: %d group-by queries over one %dKB pool; admission waits=%d grow-denials=%d spills=%d",
		concurrent, concBudget/1024, st.Waits, st.GrowDenied, cluster.Nodes[0].Stats().Spills))
	return rep, nil
}
