package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"asterix/internal/adm"
	"asterix/internal/aql"
	"asterix/internal/core"
	"asterix/internal/dist"
	"asterix/internal/fault"
	"asterix/internal/feed"
	"asterix/internal/hyracks"
	"asterix/internal/lsm"
	anet "asterix/internal/net"
	"asterix/internal/obs"
)

// E6HTAPIsolation regenerates the Figure 7 story: a KV front end keeps
// serving operations while its mutation stream feeds a shadow dataset that
// heavy analytics queries run against.
func E6HTAPIsolation(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E6",
		Claim:  "shadow-ingest analytics: front-end ops continue while analytics runs (performance isolation)",
		Header: []string{"phase", "frontend-ops/s", "analytics-queries", "shadow-lag"},
	}
	dir := filepath.Join(workDir, "e6")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(dir, 2, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	ctx := rep.Ctx()
	if _, err := e.Execute(ctx, `
		CREATE TYPE DocType AS {id: string};
		CREATE DATASET Shadow(DocType) PRIMARY KEY id;`); err != nil {
		return nil, err
	}

	store := feed.NewKVStore()
	link := &feed.ShadowLink{Store: store, Sink: engineSink{e}, Dataset: "Shadow", PKField: "id"}

	// Seed the store and shadow it.
	r := rand.New(rand.NewSource(6))
	for i := 0; i < scale.Users; i++ {
		store.Set(fmt.Sprintf("doc%d", i), adm.NewObject(
			adm.Field{Name: "v", Value: adm.Int64(int64(r.Intn(100)))},
			adm.Field{Name: "grp", Value: adm.Int64(int64(i % 50))},
		))
	}
	if err := link.CatchUp(ctx); err != nil {
		return nil, err
	}

	frontendOps := func(n int) time.Duration {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				store.Set(fmt.Sprintf("doc%d", r.Intn(scale.Users)), adm.NewObject(
					adm.Field{Name: "v", Value: adm.Int64(int64(i))},
					adm.Field{Name: "grp", Value: adm.Int64(int64(i % 50))},
				))
			} else {
				store.Get(fmt.Sprintf("doc%d", r.Intn(scale.Users)))
			}
		}
		return time.Since(t0)
	}

	// Phase A: front end alone.
	opsN := scale.Users * 2
	alone := frontendOps(opsN)

	// Phase B: concurrent analytics on the shadow.
	var queries int64
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := e.Query(ctx, `
				SELECT s.grp AS grp, COUNT(*) AS n, AVG(s.v) AS avgv
				FROM Shadow s GROUP BY s.grp AS grp;`)
			if err != nil {
				done <- err
				return
			}
			atomic.AddInt64(&queries, 1)
		}
	}()
	concurrent := frontendOps(opsN)
	close(stop)
	if err := <-done; err != nil {
		return nil, err
	}
	if err := link.CatchUp(ctx); err != nil {
		return nil, err
	}

	rate := func(d time.Duration) string {
		return fmt.Sprintf("%.0f", float64(opsN)/d.Seconds())
	}
	rep.Rows = append(rep.Rows,
		[]string{"frontend alone", rate(alone), "0", "-"},
		[]string{"frontend + analytics", rate(concurrent), fmt.Sprint(atomic.LoadInt64(&queries)), fmt.Sprint(link.Lag())},
	)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("slowdown under concurrent analytics: %.2fx (isolation: no locks shared; remaining cost is CPU sharing)",
			float64(concurrent)/float64(alone)))
	rep.MeasureHigher("frontend_alone_ops", "ops/s", float64(opsN)/alone.Seconds())
	rep.MeasureHigher("frontend_concurrent_ops", "ops/s", float64(opsN)/concurrent.Seconds())
	rep.Measure("analytics_slowdown", "x", float64(concurrent)/float64(alone))
	return rep, nil
}

// engineSink adapts the engine to feed.Sink.
type engineSink struct{ e *core.Engine }

func (s engineSink) Upsert(dataset string, rec *adm.Object) error {
	return s.e.UpsertValue(dataset, rec)
}
func (s engineSink) Delete(dataset string, pk ...adm.Value) error {
	return s.e.DeleteKey(dataset, pk...)
}

// E7AqlVsSqlpp regenerates the peer-language claim: AQL and SQL++ versions
// of the same queries return identical results with comparable times,
// because they share the algebra and runtime.
func E7AqlVsSqlpp(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E7",
		Claim:  "AQL and SQL++ are peers over one algebra: identical results, comparable times",
		Header: []string{"query", "sqlpp", "aql", "ratio", "rows-equal"},
	}
	dir := filepath.Join(workDir, "e7")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(dir, 2, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if err := ingestGleambook(e, scale.Users, scale.Messages, 7); err != nil {
		return nil, err
	}
	ctx := rep.Ctx()
	pairs := []struct {
		name, sqlpp, aql string
	}{
		{
			"filter-project",
			`SELECT VALUE u.alias FROM GleambookUsers u WHERE u.id < 100 ORDER BY u.alias;`,
			`for $u in dataset GleambookUsers where $u.id < 100 order by $u.alias return $u.alias`,
		},
		{
			"group-count",
			`SELECT VALUE COUNT(m) FROM GleambookMessages m GROUP BY m.authorId AS a ORDER BY a LIMIT 50;`,
			`for $m in dataset GleambookMessages group by $a := $m.authorId with $m order by $a limit 50 return count($m)`,
		},
	}
	for _, p := range pairs {
		t0 := time.Now()
		sqlRes, err := e.Query(ctx, p.sqlpp)
		if err != nil {
			return nil, fmt.Errorf("sqlpp %s: %w", p.name, err)
		}
		sqlTime := time.Since(t0)

		q, err := aql.Parse(p.aql)
		if err != nil {
			return nil, fmt.Errorf("aql parse %s: %w", p.name, err)
		}
		t0 = time.Now()
		aqlRes, err := e.QueryAST(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("aql %s: %w", p.name, err)
		}
		aqlTime := time.Since(t0)

		equal := len(sqlRes.Rows) == len(aqlRes.Rows)
		if equal {
			for i := range sqlRes.Rows {
				if adm.Compare(sqlRes.Rows[i], aqlRes.Rows[i]) != 0 {
					equal = false
					break
				}
			}
		}
		rep.Rows = append(rep.Rows, []string{
			p.name, ms(sqlTime), ms(aqlTime),
			fmt.Sprintf("%.2f", float64(aqlTime)/float64(sqlTime)),
			fmt.Sprint(equal),
		})
		rep.Measure("sqlpp_"+p.name, "ms", float64(sqlTime.Microseconds())/1000)
		rep.Measure("aql_"+p.name, "ms", float64(aqlTime.Microseconds())/1000)
		if !equal {
			return nil, fmt.Errorf("E7: %s: AQL and SQL++ results differ", p.name)
		}
	}
	return rep, nil
}

// E8MergePolicy is the LSM merge-policy ablation: no-merge accumulates
// components (fast ingest, slow reads); merging bounds read cost at write
// cost.
func E8MergePolicy(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E8",
		Claim:  "LSM merge policy trades ingest cost against read amplification",
		Header: []string{"policy", "ingest", "components", "merges", "get(avg)"},
	}
	policies := []struct {
		name   string
		policy lsm.MergePolicy
	}{
		{"none", lsm.NoMergePolicy{}},
		{"constant(4)", lsm.ConstantPolicy{Components: 4}},
		{"tiered", lsm.TieredPolicy{}},
	}
	for _, pc := range policies {
		dir := filepath.Join(workDir, "e8-"+pc.name)
		e, err := newEngine(dir, 1, pc.policy, 24<<10) // tiny budget → many flushes
		if err != nil {
			return nil, err
		}
		if _, err := e.Execute(context.Background(), `
			CREATE TYPE KT AS {id: int, pad: string};
			CREATE DATASET KV(KT) PRIMARY KEY id;`); err != nil {
			e.Close()
			return nil, err
		}
		t0 := time.Now()
		pad := adm.String(string(make([]byte, 100)))
		for i := 0; i < scale.Keys; i++ {
			if err := e.UpsertValue("KV", adm.NewObject(
				adm.Field{Name: "id", Value: adm.Int64(int64(i))},
				adm.Field{Name: "pad", Value: pad},
			)); err != nil {
				e.Close()
				return nil, err
			}
		}
		ingest := time.Since(t0)
		ds, _ := e.Dataset("KV")
		comps, merges := ds.LSMStats()

		r := rand.New(rand.NewSource(8))
		probes := 2000
		t0 = time.Now()
		for i := 0; i < probes; i++ {
			if _, ok, err := e.GetKey("KV", adm.Int64(int64(r.Intn(scale.Keys)))); err != nil || !ok {
				e.Close()
				return nil, fmt.Errorf("get failed: %v %v", ok, err)
			}
		}
		get := time.Since(t0) / time.Duration(probes)
		rep.Rows = append(rep.Rows, []string{
			pc.name, ms(ingest), fmt.Sprint(comps), fmt.Sprint(merges),
			fmt.Sprintf("%.1fµs", float64(get.Nanoseconds())/1000),
		})
		key := strings.NewReplacer("(", "", ")", "").Replace(pc.name)
		rep.Measure("ingest_"+key, "ms", float64(ingest.Microseconds())/1000)
		rep.Measure("get_"+key, "us", float64(get.Nanoseconds())/1000)
		rep.Measure("components_"+key, "count", float64(comps))
		e.Close()
		//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
		os.RemoveAll(dir)
	}
	return rep, nil
}

// E9Figure3 runs the paper's own Figure 3(c) query (stored ⨝ external with
// a quantifier and grouping) end-to-end at scale.
func E9Figure3(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E9",
		Claim:  "the paper's Figure 3 application runs end-to-end (DDL, external data, quantified join, grouping)",
		Header: []string{"users", "log-lines", "query-time", "groups"},
	}
	dir := filepath.Join(workDir, "e9")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(filepath.Join(dir, "engine"), 2, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	ctx := rep.Ctx()
	if _, err := e.Execute(ctx, gleambookDDL); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < scale.Users; i++ {
		if err := e.UpsertValue("GleambookUsers", GenUser(i, scale.Users, r)); err != nil {
			return nil, err
		}
	}
	logPath, err := WriteAccessLog(dir, scale.LogLines, scale.Users, 9)
	if err != nil {
		return nil, err
	}
	if _, err := e.Execute(ctx, accessLogDDL(logPath)); err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := e.Query(ctx, `
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
      user.alias = logrec.user
  AND datetime(logrec.time) >= startTime
  AND datetime(logrec.time) <= endTime
GROUP BY nf;`)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)
	rep.notePeak(res.PeakWorkingMem)
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprint(scale.Users), fmt.Sprint(scale.LogLines), ms(elapsed), fmt.Sprint(len(res.Rows)),
	})
	rep.Measure("figure3_query", "ms", float64(elapsed.Microseconds())/1000)
	return rep, nil
}

// E10Recovery measures WAL redo: ingest, lose all memory components, and
// replay committed updates.
func E10Recovery(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E10",
		Claim:  "crash recovery replays committed updates from the redo log into memory components",
		Header: []string{"records", "ingest", "recovery", "records/s", "verified"},
	}
	dir := filepath.Join(workDir, "e10")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	cfg := core.Config{DataDir: dir, Partitions: 2, NoSyncCommits: true, Now: fixedClock()}
	e, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if _, err := e.Execute(ctx, `
		CREATE TYPE KT AS {id: int, v: int};
		CREATE DATASET KV(KT) PRIMARY KEY id;`); err != nil {
		e.Close()
		return nil, err
	}
	n := scale.Keys / 2
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := e.UpsertValue("KV", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "v", Value: adm.Int64(int64(i * 3))},
		)); err != nil {
			e.Close()
			return nil, err
		}
	}
	ingest := time.Since(t0)
	// "Crash": close without checkpoint — memory components are lost and
	// only the WAL survives.
	if err := e.Close(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	e2, err := core.Open(cfg) // recovery happens here
	if err != nil {
		return nil, err
	}
	defer e2.Close()
	recovery := time.Since(t0)
	// Verify a sample.
	verified := true
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		id := r.Intn(n)
		rec, ok, err := e2.GetKey("KV", adm.Int64(int64(id)))
		if err != nil || !ok {
			verified = false
			break
		}
		if v, _ := adm.AsInt(rec.Get("v")); v != int64(id*3) {
			verified = false
			break
		}
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprint(n), ms(ingest), ms(recovery),
		fmt.Sprintf("%.0f", float64(n)/recovery.Seconds()),
		fmt.Sprint(verified),
	})
	rep.Measure("wal_ingest", "ms", float64(ingest.Microseconds())/1000)
	rep.Measure("recovery", "ms", float64(recovery.Microseconds())/1000)
	rep.MeasureHigher("recovery_rate", "records/s", float64(n)/recovery.Seconds())
	if !verified {
		return nil, fmt.Errorf("E10: recovered data failed verification")
	}
	return rep, nil
}

// E13NodeFailure kills a node controller partway through a scale-out
// join (§VII hardening: fault tolerance): the bare job fails fast with a
// typed node failure, and the engine's retry path re-executes on the
// survivors — the query completes with the same answer, one retry later.
func E13NodeFailure(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E13",
		Claim:  "a node death mid-query fails fast; the retry path completes the job on the survivors",
		Header: []string{"scenario", "query", "attempts", "dead-nodes", "rows"},
	}
	dir := filepath.Join(workDir, "e13")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	e, err := newEngine(dir, 4, nil, 0)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if err := ingestGleambook(e, scale.Users, scale.Messages, 13); err != nil {
		return nil, err
	}
	query := `
		SELECT u.id AS id, COUNT(m) AS cnt
		FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id
		GROUP BY u.id AS id;`

	t0 := time.Now()
	healthy, err := e.Query(rep.Ctx(), query)
	if err != nil {
		return nil, err
	}
	healthyT := time.Since(t0)
	rep.notePeak(healthy.PeakWorkingMem)
	rep.Rows = append(rep.Rows, []string{
		"healthy", ms(healthyT), fmt.Sprint(healthy.Attempts), "-", fmt.Sprint(len(healthy.Rows)),
	})

	// Crash the node whose task is the third to start on the next job,
	// then run the identical query: attempt one dies with the node,
	// attempt two runs on the three survivors.
	//lint:ignore fault-gate the experiment harness arms the crash deliberately; disarmed again below
	if err := fault.Arm(fault.PointNodeCrash + ":error:after=2:times=1"); err != nil {
		return nil, err
	}
	//lint:ignore fault-gate harness cleanup of its own arming
	defer fault.Disarm()
	t0 = time.Now()
	wounded, err := e.Query(rep.Ctx(), query)
	if err != nil {
		return nil, fmt.Errorf("E13: query did not survive the node failure: %w", err)
	}
	woundedT := time.Since(t0)
	rep.Rows = append(rep.Rows, []string{
		"node-killed", ms(woundedT), fmt.Sprint(wounded.Attempts),
		strings.Join(wounded.DeadNodes, " "), fmt.Sprint(len(wounded.Rows)),
	})
	rep.Measure("healthy_query", "ms", float64(healthyT.Microseconds())/1000)
	rep.Measure("node_killed_query", "ms", float64(woundedT.Microseconds())/1000)
	if wounded.Attempts < 2 || len(wounded.DeadNodes) == 0 {
		return nil, fmt.Errorf("E13: expected a retried job, got attempts=%d dead=%v",
			wounded.Attempts, wounded.DeadNodes)
	}
	if len(wounded.Rows) != len(healthy.Rows) {
		return nil, fmt.Errorf("E13: survivor run returned %d rows, healthy run %d",
			len(wounded.Rows), len(healthy.Rows))
	}
	st := e.Cluster().RetryStats()
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"cluster counters: attempts=%d retries=%d node-failures=%d; survivors=%d/4",
		st.Attempts, st.Retries, st.NodeFailures, len(e.Cluster().AliveNodes())))
	return rep, nil
}

// allocsPerRun reports the average heap allocations of one call to f,
// measured exactly via the runtime's malloc counter (the same technique
// as testing.AllocsPerRun, without importing testing into the product
// binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up: one-time lazy initialization doesn't count
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// E14HotPathAllocs audits the per-tuple kernels the hot-alloc lint rule
// guards. The ADM comparator and hash are measured on both the typical
// small shapes (which must run allocation-free through the stack-index
// path) and on wide shapes, which still take the pre-optimization
// sorted-copy fallback — so the wide numbers double as the "before"
// measurement of the eliminated allocations. The group-by row measures
// whole-pipeline allocations per input tuple; its "before" shape paid
// two extra allocations per probe (a fresh key Tuple and a fresh column
// list for hashing).
func E14HotPathAllocs(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E14",
		Claim:  "ADM compare/hash kernels and the group-by probe are allocation-free on typical shapes (wide fallbacks double as the pre-optimization baseline)",
		Header: []string{"kernel", "shape", "allocs/op"},
	}
	mkObj := func(fields int, salt int64) *adm.Object {
		fs := make([]adm.Field, fields)
		for i := range fs {
			fs[i] = adm.Field{Name: fmt.Sprintf("f%02d", (i*7)%fields), Value: adm.Int64(int64(i) + salt)}
		}
		return adm.NewObject(fs...)
	}
	smallA, smallB := mkObj(8, 0), mkObj(8, 1)
	wideA, wideB := mkObj(24, 0), mkObj(24, 1)
	// Pre-box the multiset as a Value: converting a slice header to an
	// interface at the call site allocates, and that belongs to the
	// caller's shape, not the kernel under measurement.
	var smallSet adm.Value = adm.Multiset{adm.Int64(3), adm.String("b"), adm.Int64(1), adm.String("a")}

	measure := func(name, shape string, f func()) float64 {
		n := allocsPerRun(200, f)
		rep.Rows = append(rep.Rows, []string{name, shape, fmt.Sprintf("%.1f", n)})
		rep.Measure(name, "allocs/op", n)
		return n
	}
	small := measure("adm_compare_object_small", "8 fields", func() { adm.Compare(smallA, smallB) })
	wide := measure("adm_compare_object_wide", "24 fields (legacy path)", func() { adm.Compare(wideA, wideB) })
	if small > 0 {
		return nil, fmt.Errorf("E14: small-object Compare allocates %.1f/op, want 0", small)
	}
	hsmall := measure("adm_hash_object_small", "8 fields", func() { adm.Hash64(smallA) })
	measure("adm_hash_object_wide", "24 fields (legacy path)", func() { adm.Hash64(wideA) })
	if hsmall > 0 {
		return nil, fmt.Errorf("E14: small-object Hash64 allocates %.1f/op, want 0", hsmall)
	}
	msmall := measure("adm_compare_multiset_small", "4 elements", func() { adm.Compare(smallSet, smallSet) })
	if msmall > 0 {
		return nil, fmt.Errorf("E14: small-multiset Compare allocates %.1f/op, want 0", msmall)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"wide-object fallback (the pre-optimization code path for ALL shapes) pays %.1f allocs per Compare; typical shapes now pay 0", wide))

	// Whole-pipeline check: allocations per input tuple of an in-memory
	// group-by job. The probe path used to add 2 allocs/tuple on top of
	// the pipeline's own framing.
	dir := filepath.Join(workDir, "e14")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	rows := scale.SortRows
	runJob := func() (float64, error) {
		cluster, err := hyracks.NewCluster(1, dir)
		if err != nil {
			return 0, err
		}
		j := hyracks.NewJob()
		scan := j.Add(hyracks.NewScan("gen", 1, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
			r := rand.New(rand.NewSource(14))
			for i := 0; i < rows; i++ {
				if err := emit(hyracks.Tuple{adm.Int64(r.Int63n(64)), adm.Int64(int64(i))}); err != nil {
					return err
				}
			}
			return nil
		}))
		gb := j.Add(hyracks.NewGroupBy("agg", 1, []int{0}, []hyracks.AggSpec{hyracks.CountAgg(-1)}))
		groups := 0
		sink := j.Add(hyracks.NewFuncSink("sink", 1, func(p int, t hyracks.Tuple) error {
			groups++
			return nil
		}))
		j.MustConnect(scan, gb, 0, hyracks.OneToOne())
		j.MustConnect(gb, sink, 0, hyracks.OneToOne())
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := cluster.Run(rep.Ctx(), j); err != nil {
			return 0, err
		}
		runtime.ReadMemStats(&after)
		if groups == 0 {
			return 0, fmt.Errorf("E14: group-by produced no groups")
		}
		return float64(after.Mallocs-before.Mallocs) / float64(rows), nil
	}
	if _, err := runJob(); err != nil { // warm up temp dirs and code paths
		return nil, err
	}
	perRow, err := runJob()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, []string{"groupby_pipeline", fmt.Sprintf("%d rows, 64 groups", rows), fmt.Sprintf("%.2f", perRow)})
	rep.Measure("groupby_pipeline_allocs_per_row", "allocs/row", perRow)
	return rep, nil
}

// E15DistJoinLinkFault extends E13 across the process seam: the same
// join shape, but the data plane is the TCP frame transport — three
// cluster members with their own liveness views and control planes,
// meshed over loopback sockets. The clean run baselines the wire cost;
// the fault run injects a link failure (net.drop: frame discarded AND
// connection reset) mid-exchange and measures what the retry-on-
// survivors path pays for the same exact answer.
func E15DistJoinLinkFault(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E15",
		Claim:  "a distributed join over the TCP frame transport survives an injected link fault: failure detection plus one re-execution buys the same exact answer",
		Header: []string{"scenario", "query", "attempts", "rows"},
	}
	dir := filepath.Join(workDir, "e15")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)

	type member struct {
		node *dist.Node
		peer *anet.Peer
		reg  *obs.Registry
	}
	ids := []string{"na", "nb", "nc"}
	members := map[string]*member{}
	defer func() {
		for _, m := range members {
			m.node.Close()
			m.peer.Close()
		}
	}()
	for _, id := range ids {
		mdir := filepath.Join(dir, id)
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			return nil, err
		}
		cl, err := hyracks.NewNamedCluster(ids, mdir)
		if err != nil {
			return nil, err
		}
		nd := dist.NewNode(cl)
		nd.ReadyTimeout = 2 * time.Second
		reg := obs.NewRegistry()
		p, err := anet.NewPeer(anet.Options{
			ID:                id,
			ListenAddr:        "127.0.0.1:0",
			Metrics:           reg,
			OnPeerDown:        nd.OnPeerDown,
			OnControl:         nd.HandleControl,
			HeartbeatInterval: 25 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		nd.Bind(p)
		members[id] = &member{node: nd, peer: p, reg: reg}
	}
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				members[a].peer.AddPeer(b, members[b].peer.Addr())
			}
		}
	}
	// Let simultaneous dials dedupe down to one connection per pair: the
	// mesh is converged once a full round of control sends succeeds in
	// every direction, twice in a row.
	deadline := time.Now().Add(5 * time.Second)
	for rounds := 0; rounds < 2; {
		ok := true
		for _, a := range ids {
			for _, b := range ids {
				if a != b && members[a].peer.SendControl(b, []byte(`{"type":"noop"}`)) != nil {
					ok = false
				}
			}
		}
		if ok {
			rounds++
			time.Sleep(50 * time.Millisecond)
			continue
		}
		rounds = 0
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("E15: transport mesh never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The canonical distributed join: both sides wrap onto 100 keys, so
	// the exact cardinality (6 left x 3 right per key) is the loss probe.
	mkSpec := func(id string) *dist.Spec {
		return &dist.Spec{
			ID: id,
			Ops: []dist.OpSpec{
				{Kind: "gen", Name: "left", Parallelism: 3, Rows: 200, KeyMod: 100},
				{Kind: "gen", Name: "right", Parallelism: 3, Rows: 100, KeyMod: 100},
				{Kind: "hashjoin", Name: "join", Parallelism: 3, LeftCols: []int{0}, RightCols: []int{0}, RightWidth: 2},
				{Kind: "collect", Name: "out", Pin: dist.PinCoordinator},
			},
			Edges: []dist.EdgeSpec{
				{From: 0, To: 2, Port: 0, Conn: "hash", HashCols: []int{0}},
				{From: 1, To: 2, Port: 1, Conn: "hash", HashCols: []int{0}},
				{From: 2, To: 3, Port: 0, Conn: "merge"},
			},
		}
	}
	const want = 1800

	t0 := time.Now()
	rows, runRep, err := members["na"].node.Run(rep.Ctx(), mkSpec("e15-clean"), hyracks.RetryPolicy{})
	if err != nil {
		return nil, fmt.Errorf("E15: clean distributed join: %w", err)
	}
	cleanT := time.Since(t0)
	if len(rows) != want {
		return nil, fmt.Errorf("E15: clean run returned %d rows, want %d", len(rows), want)
	}
	rep.Rows = append(rep.Rows, []string{
		"clean", ms(cleanT), fmt.Sprint(runRep.Attempts), fmt.Sprint(len(rows)),
	})

	// One link fault: after two clean sends, nb's outbound data frames
	// are dropped (and the connection reset — loss is never silent)
	// three times. The attempt breaks, the driver aborts it, and the
	// retry re-exchanges everything over the healed link.
	//lint:ignore fault-gate the experiment harness arms the link fault deliberately; disarmed again below
	if err := fault.Arm(fault.PointNetDrop + ":error:after=2:times=3:tag=nb"); err != nil {
		return nil, err
	}
	//lint:ignore fault-gate harness cleanup of its own arming
	defer fault.Disarm()
	t0 = time.Now()
	rows, runRep, err = members["na"].node.Run(rep.Ctx(), mkSpec("e15-drop"), hyracks.RetryPolicy{MaxAttempts: 6})
	if err != nil {
		return nil, fmt.Errorf("E15: join did not survive the link fault: %w", err)
	}
	faultT := time.Since(t0)
	if len(rows) != want {
		return nil, fmt.Errorf("E15: fault run returned %d rows, want %d — a lost frame went unnoticed", len(rows), want)
	}
	if runRep.Attempts < 2 {
		return nil, fmt.Errorf("E15: link fault forced no retry (attempts=%d)", runRep.Attempts)
	}
	rep.Rows = append(rep.Rows, []string{
		"link-fault", ms(faultT), fmt.Sprint(runRep.Attempts), fmt.Sprint(len(rows)),
	})

	rep.Measure("dist_join_clean", "ms", float64(cleanT.Microseconds())/1000)
	rep.Measure("dist_join_linkfault", "ms", float64(faultT.Microseconds())/1000)
	rep.Measure("linkfault_attempts", "attempts", float64(runRep.Attempts))
	snap := members["nb"].reg.Snapshot()
	counter := func(name string) int64 {
		v, _ := snap[name].(int64)
		return v
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"nb transport counters: frames_sent=%d dropped=%d conn_resets=%d stale_frames=%d",
		counter("net_frames_sent_total"), counter("net_frames_dropped_total"),
		counter("net_conn_resets_total"), counter("net_stale_frames_total")))
	return rep, nil
}

// All returns every experiment in id order.
func All() []NamedExperiment {
	return []NamedExperiment{
		{"E1", E1ScaleOut}, {"E2", E2Spatial}, {"E3", E3BtreeVsHash},
		{"E4", E4MRvsHyracks}, {"E5", E5MemoryBudget}, {"E6", E6HTAPIsolation},
		{"E7", E7AqlVsSqlpp}, {"E8", E8MergePolicy}, {"E9", E9Figure3},
		{"E10", E10Recovery}, {"E11", E11PKSortAblation},
		{"E12", E12Compression}, {"E13", E13NodeFailure},
		{"E14", E14HotPathAllocs}, {"E15", E15DistJoinLinkFault},
		{"E16", E16OptimizerJoinOrder}, {"E17", E17PooledBuffers},
	}
}

// NamedExperiment pairs an experiment id with its runner.
type NamedExperiment struct {
	ID  string
	Run func(scale Scale, workDir string) (*Report, error)
}

// E11PKSortAblation quantifies the pk-sort-before-fetch optimization the
// paper credits ([26], §V-B): resolving secondary-index candidates
// through the primary index in key order preserves access locality in the
// buffer cache; random-order fetch loses it. An ablation of one of the
// "usual tricks" the end-to-end spatial results depend on.
func E11PKSortAblation(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E11",
		Claim:  "pk-sorted candidate fetch ([26]) beats random-order fetch via buffer-cache locality",
		Header: []string{"fetch-order", "rows", "time", "physical-reads"},
	}
	dir := filepath.Join(workDir, "e11")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)
	// A small buffer cache makes locality visible.
	e, err := core.Open(core.Config{
		DataDir:       dir,
		Partitions:    1,
		BufferPages:   96,
		NoSyncCommits: true,
		Now:           fixedClock(),
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Execute(ctx, `
		CREATE TYPE PointType AS {id: int, loc: point, payload: string};
		CREATE DATASET Points(PointType) PRIMARY KEY id;`); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < scale.Points; i++ {
		if err := e.UpsertValue("Points", GenPoint(i, r)); err != nil {
			return nil, err
		}
	}
	if _, err := e.Execute(ctx, `CREATE INDEX spIdx ON Points(loc) TYPE RTREE;`); err != nil {
		return nil, err
	}
	// Flush so fetches actually touch disk components via the cache.
	if err := e.Checkpoint(); err != nil {
		return nil, err
	}
	si, ok := e.SecondaryIndexHandle("Points", "spIdx")
	if !ok {
		return nil, fmt.Errorf("index handle missing")
	}
	rect := adm.Rectangle{MinX: -60, MinY: -30, MaxX: 60, MaxY: 30} // ~1/6 of the world
	for _, sorted := range []bool{true, false} {
		// Warm-up pass so both arms start from comparable cache states.
		if err := si.SearchSpatialAblation(0, rect, sorted, func(adm.Value) error { return nil }); err != nil {
			return nil, err
		}
		before := e.BufferCacheStats().Reads
		rows := 0
		t0 := time.Now()
		for q := 0; q < 3; q++ {
			rows = 0
			if err := si.SearchSpatialAblation(0, rect, sorted, func(adm.Value) error {
				rows++
				return nil
			}); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(t0) / 3
		reads := (e.BufferCacheStats().Reads - before) / 3
		label, key := "pk-sorted", "pk_sorted"
		if !sorted {
			label, key = "random-order", "random_order"
		}
		rep.Rows = append(rep.Rows, []string{label, fmt.Sprint(rows), ms(elapsed), fmt.Sprint(reads)})
		rep.Measure("fetch_"+key, "ms", float64(elapsed.Microseconds())/1000)
		rep.Measure("reads_"+key, "pages", float64(reads))
	}
	return rep, nil
}

// E12Compression measures the storage-compression feature §VII credits to
// community contributors: bytes on disk and scan cost with record
// compression on vs off.
func E12Compression(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E12",
		Claim:  "record compression shrinks storage at modest scan cost (the §VII community feature)",
		Header: []string{"compression", "ingest", "storage-bytes", "full-scan"},
	}
	for _, compress := range []bool{false, true} {
		dir := filepath.Join(workDir, fmt.Sprintf("e12-%v", compress))
		e, err := core.Open(core.Config{
			DataDir:       dir,
			Partitions:    1,
			Compression:   compress,
			NoSyncCommits: true,
			Now:           fixedClock(),
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		if _, err := e.Execute(ctx, `
			CREATE TYPE BT AS {id: int, blob: string};
			CREATE DATASET Blobs(BT) PRIMARY KEY id;`); err != nil {
			e.Close()
			return nil, err
		}
		// Realistically compressible payloads (log-line-ish text).
		r := rand.New(rand.NewSource(12))
		n := scale.Keys / 4
		t0 := time.Now()
		for i := 0; i < n; i++ {
			blob := fmt.Sprintf("GET /api/v2/users/%d?session=%08x&lang=en-US status=200 bytes=%d agent=Mozilla/5.0",
				r.Intn(5000), r.Uint32(), 100+r.Intn(900))
			blob = blob + blob // double for compressibility
			if err := e.UpsertValue("Blobs", adm.NewObject(
				adm.Field{Name: "id", Value: adm.Int64(int64(i))},
				adm.Field{Name: "blob", Value: adm.String(blob)},
			)); err != nil {
				e.Close()
				return nil, err
			}
		}
		ingest := time.Since(t0)
		if err := e.Checkpoint(); err != nil {
			e.Close()
			return nil, err
		}
		size, err := dirSize(filepath.Join(dir, "storage"))
		if err != nil {
			e.Close()
			return nil, err
		}
		t0 = time.Now()
		res, err := e.Query(ctx, `SELECT VALUE COUNT(*) FROM Blobs b;`)
		if err != nil {
			e.Close()
			return nil, err
		}
		scan := time.Since(t0)
		if cnt, _ := adm.AsInt(res.Rows[0]); cnt != int64(n) {
			e.Close()
			return nil, fmt.Errorf("E12: scan count %d != %d", cnt, n)
		}
		e.Close()
		label := "off"
		if compress {
			label = "on"
		}
		rep.Rows = append(rep.Rows, []string{label, ms(ingest), fmt.Sprint(size), ms(scan)})
		rep.Measure("storage_bytes_"+label, "bytes", float64(size))
		rep.Measure("scan_"+label, "ms", float64(scan.Microseconds())/1000)
		//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
		os.RemoveAll(dir)
	}
	return rep, nil
}

// dirSize sums file sizes under root.
func dirSize(root string) (int64, error) {
	var total int64
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
