package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
	anet "asterix/internal/net"
)

// E17PooledBuffers measures what the frame/tuple buffer pools buy on the
// two hot paths they cover: the in-process exchange (connWriter batches
// and merge cursors drawing output frames from the cluster pool) and the
// wire-decode path (inbound data frames decoding into pooled containers
// instead of allocate-per-frame). Each path runs the identical workload
// pooled and unpooled (DisableFramePool / a nil transport pool) and
// reports steady-state allocations per row resp. per frame. The pooled
// variant must allocate strictly less, verify the exact same answers,
// and show actual freelist reuse — pooling that never recycles is dead
// weight the pool-safety lint would have to justify for nothing.
func E17PooledBuffers(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E17",
		Claim:  "pooled frame/tuple buffers cut steady-state allocations on the exchange and wire-decode hot paths without changing any answer",
		Header: []string{"path", "variant", "allocs/unit", "pool reuses"},
	}
	dir := filepath.Join(workDir, "e17")

	// --- exchange path: parallel scans hash-partitioned into a sink ---
	rows := scale.SortRows
	const parallelism = 4
	runExchange := func(disable bool) (float64, int64, error) {
		cluster, err := hyracks.NewCluster(2, dir)
		if err != nil {
			return 0, 0, err
		}
		// Small frames make the exchange's per-frame costs visible per
		// row (the default 256-tuple frames amortize a frame allocation
		// down into measurement noise).
		cluster.FrameSize = 16
		cluster.DisableFramePool = disable
		runJob := func() error {
			j := hyracks.NewJob()
			scan := j.Add(hyracks.NewScan("gen", parallelism, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
				for i := tc.Partition; i < rows; i += tc.NumPartitions {
					if err := emit(hyracks.Tuple{adm.Int64(int64(i)), adm.Int64(int64(i) * 10)}); err != nil {
						return err
					}
				}
				return nil
			}))
			var mu sync.Mutex
			got := 0
			sink := j.Add(hyracks.NewFuncSink("sink", parallelism, func(p int, t hyracks.Tuple) error {
				id, _ := adm.AsInt(t[0])
				v, _ := adm.AsInt(t[1])
				if v != id*10 {
					return fmt.Errorf("row %d carries payload %d, want %d (aliasing corruption)", id, v, id*10)
				}
				mu.Lock()
				got++
				mu.Unlock()
				return nil
			}))
			j.MustConnect(scan, sink, 0, hyracks.HashPartition(0))
			if err := cluster.Run(rep.Ctx(), j); err != nil {
				return err
			}
			if got != rows {
				return fmt.Errorf("exchange delivered %d rows, want %d", got, rows)
			}
			return nil
		}
		if err := runJob(); err != nil { // warm up code paths and the freelist
			return 0, 0, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := runJob(); err != nil {
			return 0, 0, err
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(rows), cluster.FramePool().Stats().Reuses, nil
	}

	exPooled, exReuses, err := runExchange(false)
	if err != nil {
		return nil, fmt.Errorf("E17 pooled exchange: %w", err)
	}
	exUnpooled, _, err := runExchange(true)
	if err != nil {
		return nil, fmt.Errorf("E17 unpooled exchange: %w", err)
	}
	if exReuses == 0 {
		return nil, fmt.Errorf("E17: the pooled exchange never recycled a frame")
	}
	if exPooled >= exUnpooled {
		return nil, fmt.Errorf("E17: pooled exchange allocates %.2f/row, unpooled %.2f — pooling bought nothing", exPooled, exUnpooled)
	}
	rep.Rows = append(rep.Rows,
		[]string{"exchange", "pooled", fmt.Sprintf("%.2f", exPooled), fmt.Sprint(exReuses)},
		[]string{"exchange", "unpooled", fmt.Sprintf("%.2f", exUnpooled), "-"})
	rep.Measure("exchange_allocs_per_row_pooled", "allocs/row", exPooled)
	rep.Measure("exchange_allocs_per_row_unpooled", "allocs/row", exUnpooled)

	// --- wire-decode path: a two-peer loopback edge over real TCP ---
	const tuplesPerFrame = 8
	frames := rows / 2
	wirePooled, wireReuses, err := runWireDecode(rep, frames, tuplesPerFrame, true)
	if err != nil {
		return nil, fmt.Errorf("E17 pooled wire decode: %w", err)
	}
	wireUnpooled, _, err := runWireDecode(rep, frames, tuplesPerFrame, false)
	if err != nil {
		return nil, fmt.Errorf("E17 unpooled wire decode: %w", err)
	}
	if wireReuses == 0 {
		return nil, fmt.Errorf("E17: the wire decoder never recycled a frame")
	}
	if wirePooled >= wireUnpooled {
		return nil, fmt.Errorf("E17: pooled wire decode allocates %.2f/frame, unpooled %.2f — pooling bought nothing", wirePooled, wireUnpooled)
	}
	rep.Rows = append(rep.Rows,
		[]string{"wire-decode", "pooled", fmt.Sprintf("%.2f", wirePooled), fmt.Sprint(wireReuses)},
		[]string{"wire-decode", "unpooled", fmt.Sprintf("%.2f", wireUnpooled), "-"})
	rep.Measure("wire_decode_allocs_per_frame_pooled", "allocs/op", wirePooled)
	rep.Measure("wire_decode_allocs_per_frame_unpooled", "allocs/op", wireUnpooled)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"pooled exchange saves %.2f allocs/row and pooled decode %.2f allocs/frame on identical, verified answers",
		exUnpooled-exPooled, wireUnpooled-wirePooled))
	return rep, nil
}

// runWireDecode streams frames of small tuples from one peer to another
// over loopback TCP and reports process-wide allocations per frame. The
// sender side is identical in both variants, so the pooled-vs-unpooled
// delta isolates the receive path: decodeDataPayload drawing its frame
// container from the transport's pool (the consumer recycles each frame
// after verifying it) versus allocating one per frame.
func runWireDecode(rep *Report, frames, tuplesPerFrame int, pooled bool) (float64, int64, error) {
	var pool *hyracks.FramePool
	if pooled {
		pool = hyracks.NewFramePool(tuplesPerFrame, 64, nil)
	}
	recv, err := anet.NewPeer(anet.Options{ID: "rx", ListenAddr: "127.0.0.1:0", FramePool: pool})
	if err != nil {
		return 0, 0, err
	}
	defer recv.Close()
	send, err := anet.NewPeer(anet.Options{ID: "tx", ListenAddr: "127.0.0.1:0"})
	if err != nil {
		return 0, 0, err
	}
	defer send.Close()
	recv.AddPeer("tx", send.Addr())
	send.AddPeer("rx", recv.Addr())

	// One edge, one channel, owned by the receiver. The consumer verifies
	// every tuple and recycles the container — it owns delivered frames.
	round := func(jobID string, n int) (float64, error) {
		recvCh := make(chan []hyracks.Tuple, 8)
		done := make(chan error, 1)
		if _, err := recv.OpenEdge(rep.Ctx(), hyracks.EdgeDesc{
			JobID: jobID, Edge: 0, Owners: []string{""},
			Recv: []chan []hyracks.Tuple{recvCh}, Producers: 1, Senders: 1,
			EOS: func() { close(recvCh) },
		}); err != nil {
			return 0, err
		}
		defer recv.CloseJob(jobID)
		sh, err := send.OpenEdge(rep.Ctx(), hyracks.EdgeDesc{
			JobID: jobID, Edge: 0, Owners: []string{"rx"},
			Recv: []chan []hyracks.Tuple{nil}, Producers: 1, Senders: 1,
		})
		if err != nil {
			return 0, err
		}
		defer send.CloseJob(jobID)

		go func() {
			total := 0
			for frame := range recvCh {
				for _, t := range frame {
					id, _ := adm.AsInt(t[0])
					v, _ := adm.AsInt(t[1])
					if v != id*10 {
						done <- fmt.Errorf("frame tuple %d carries %d, want %d (decode aliasing)", id, v, id*10)
						return
					}
					total++
				}
				pool.Put(frame) // nil-safe: a no-op when unpooled
			}
			if want := n * tuplesPerFrame; total != want {
				done <- fmt.Errorf("received %d tuples, want %d", total, want)
				return
			}
			done <- nil
		}()

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		frame := make([]hyracks.Tuple, tuplesPerFrame)
		for f := 0; f < n; f++ {
			for i := range frame {
				id := int64(f*tuplesPerFrame + i)
				frame[i] = hyracks.Tuple{adm.Int64(id), adm.Int64(id * 10)}
			}
			if err := sh.Send(rep.Ctx(), 0, frame); err != nil {
				return 0, err
			}
		}
		if err := sh.ProducerDone(); err != nil {
			return 0, err
		}
		if err := <-done; err != nil {
			return 0, err
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(n), nil
	}

	if _, err := round("e17-warm", maxFrames(frames/10, 8)); err != nil { // dials, handshakes, code paths
		return 0, 0, err
	}
	perFrame, err := round("e17-measure", frames)
	if err != nil {
		return 0, 0, err
	}
	return perFrame, pool.Stats().Reuses, nil
}

func maxFrames(a, b int) int {
	if a > b {
		return a
	}
	return b
}
